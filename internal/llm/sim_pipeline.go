package llm

import (
	"encoding/json"
	"strconv"
	"strings"
)

// decidePipeline handles NL2ML tasks (paper §3.4). With BridgeScope the
// model abstracts the whole workflow into one (possibly nested) proxy unit;
// with the generic toolkit it must route every byte of data through its own
// context, reading observations and re-emitting them as tool arguments.
func (m *Sim) decidePipeline(st *State) *Decision {
	if st.HasTool("proxy") {
		return m.decidePipelineProxy(st)
	}
	return m.decidePipelineManual(st)
}

// --- BridgeScope: proxy-unit construction ---

func (m *Sim) decidePipelineProxy(st *State) *Decision {
	t := st.Task

	if !st.Called("get_schema") {
		return &Decision{
			Thought: m.thought("Retrieve the schema to ground the extraction query."),
			Calls:   []ToolCall{{Tool: "get_schema"}},
		}
	}
	// Occasional extra inspection call (the fraction above the 3-call
	// minimum in Table 2).
	if m.draw(t, "inspectextra") < m.profile.InspectExtra && !st.Called("get_object") && st.HasTool("get_object") {
		table := "house"
		if len(t.Tables) > 0 {
			table = t.Tables[0]
		}
		return &Decision{
			Thought: m.thought("Double-check the table's column details before building the workflow."),
			Calls:   []ToolCall{{Tool: "get_object", Args: map[string]any{"object": table}}},
		}
	}
	if !st.Called("proxy") {
		spec := m.buildProxySpec(st)
		return &Decision{
			Thought: m.thought("Abstract the workflow into a proxy unit so the data never flows through me."),
			Calls:   []ToolCall{{Tool: "proxy", Args: spec}},
		}
	}
	last := st.LastObservation()
	if last != nil && last.IsError {
		if st.CallCount("proxy") >= 2 {
			return &Decision{
				Thought:     m.thought("The workflow keeps failing."),
				Abort:       true,
				AbortReason: "pipeline execution failed",
			}
		}
		spec := m.buildProxySpec(st)
		return &Decision{
			Thought: m.thought("Fix the proxy unit and retry."),
			Calls:   []ToolCall{{Tool: "proxy", Args: spec}},
		}
	}
	answer := "Workflow completed."
	if last != nil {
		answer = "Workflow completed. Result:\n" + last.Observation
	}
	return &Decision{Thought: m.thought("Report the workflow result."), Final: answer}
}

// buildProxySpec constructs the nested proxy unit for the task's pipeline,
// matching the paper's Figure 3 / §2.5 structure:
//
//	level 1: train(features <- select, target <- select)
//	level 2: train(features <- zscore(features <- select), target <- select)
//	level 3: predict(model_id <- train(...level 2...), features <- select)
func (m *Sim) buildProxySpec(st *State) map[string]any {
	p := st.Task.Pipeline

	featureSel := map[string]any{
		"__tool__":      "select",
		"__args__":      map[string]any{"sql": p.DataSQL},
		"__transform__": "matrix:" + strings.Join(p.FeatureCols, ","),
	}
	targetSel := map[string]any{
		"__tool__":      "select",
		"__args__":      map[string]any{"sql": p.DataSQL},
		"__transform__": "vector:" + p.TargetCol,
	}

	var features any = featureSel
	if p.Normalize {
		features = map[string]any{
			"__tool__":      "zscore_normalize",
			"__args__":      map[string]any{"features": featureSel},
			"__transform__": "lambda x: x",
		}
	}

	trainArgs := map[string]any{"features": features, "target": targetSel}
	if !p.Predict {
		return map[string]any{"target_tool": p.ModelTool, "tool_args": trainArgs}
	}
	return map[string]any{
		"target_tool": "predict",
		"tool_args": map[string]any{
			"model_id": map[string]any{
				"__tool__":      p.ModelTool,
				"__args__":      trainArgs,
				"__transform__": "field:model_id",
			},
			"features": map[string]any{
				"__tool__":      "select",
				"__args__":      map[string]any{"sql": p.PredictSQL},
				"__transform__": "matrix:" + strings.Join(p.FeatureCols, ","),
			},
		},
	}
}

// --- PG-MCP: manual data routing through the model's own context ---

func (m *Sim) decidePipelineManual(st *State) *Decision {
	t := st.Task
	p := t.Pipeline

	if st.HasTool("get_schema") && !st.Called("get_schema") {
		return &Decision{
			Thought: m.thought("Retrieve the schema to ground the extraction query."),
			Calls:   []ToolCall{{Tool: "get_schema"}},
		}
	}
	if last := st.LastObservation(); last != nil && last.IsError {
		return &Decision{
			Thought:     m.thought("A pipeline step failed and I cannot reroute the data."),
			Abort:       true,
			AbortReason: "pipeline execution failed",
		}
	}

	// Step 1: extract the data (and, for prediction tasks, the prediction
	// rows in the same turn).
	if m.manualSelectObs(st, p.DataSQL) == "" {
		calls := []ToolCall{{Tool: "execute_sql", Args: map[string]any{"sql": p.DataSQL}}}
		if p.Predict {
			calls = append(calls, ToolCall{Tool: "execute_sql", Args: map[string]any{"sql": p.PredictSQL}})
		}
		return &Decision{Thought: m.thought("Query the training data."), Calls: calls}
	}

	// Step 2: parse the query observation back out of context — this is
	// the "LLM as data router" anti-pattern the proxy eliminates.
	features, target, perr := m.parseDataObservation(st, p.DataSQL, p.FeatureCols, p.TargetCol)
	if perr != "" {
		return &Decision{
			Thought:     m.thought("The query result in my context is too large or garbled to copy reliably."),
			Abort:       true,
			AbortReason: perr,
		}
	}

	// Step 3: optional normalization.
	var trainFeatures any = features
	if p.Normalize {
		obs := st.Observation("zscore_normalize")
		if obs == "" {
			return &Decision{
				Thought: m.thought("Normalize the features, copying the data into the tool call."),
				Calls: []ToolCall{{Tool: "zscore_normalize", Args: map[string]any{
					"features": features,
				}}},
			}
		}
		var parsed map[string]any
		if err := json.Unmarshal([]byte(obs), &parsed); err != nil {
			return &Decision{
				Thought:     m.thought("I cannot recover the normalized matrix from context."),
				Abort:       true,
				AbortReason: "failed to route normalized data",
			}
		}
		trainFeatures = parsed
	}

	// Step 4: training.
	trainObs := st.Observation(p.ModelTool)
	if trainObs == "" {
		return &Decision{
			Thought: m.thought("Train the model, copying the feature matrix into the call."),
			Calls: []ToolCall{{Tool: p.ModelTool, Args: map[string]any{
				"features": trainFeatures,
				"target":   target,
			}}},
		}
	}

	// Step 5: optional prediction.
	if p.Predict && !st.Called("predict") {
		modelID := extractJSONField(trainObs, "model_id")
		if modelID == "" {
			return &Decision{
				Thought:     m.thought("The training result lacks a model handle."),
				Abort:       true,
				AbortReason: "failed to route model handle",
			}
		}
		predFeatures, _, perr := m.parseDataObservation(st, p.PredictSQL, p.FeatureCols, "")
		if perr != "" {
			return &Decision{Thought: m.thought("Cannot recover prediction rows."), Abort: true, AbortReason: perr}
		}
		return &Decision{
			Thought: m.thought("Predict with the trained model."),
			Calls: []ToolCall{{Tool: "predict", Args: map[string]any{
				"model_id": modelID,
				"features": predFeatures,
			}}},
		}
	}

	last := st.LastObservation()
	answer := "Workflow completed."
	if last != nil && !last.IsError {
		answer = "Workflow completed. Result:\n" + last.Observation
	}
	return &Decision{Thought: m.thought("Report the workflow result."), Final: answer}
}

// manualSelectObs finds the observation of a specific executed query.
func (m *Sim) manualSelectObs(st *State, sql string) string {
	for _, step := range st.Steps {
		if step.IsError {
			continue
		}
		if got, ok := step.Call.Args["sql"].(string); ok && got == sql {
			return step.Observation
		}
	}
	return ""
}

// parseDataObservation re-reads a tabular observation into a feature matrix
// and target vector — simulating the LLM copying data out of its own
// context window. targetCol may be empty (features only).
func (m *Sim) parseDataObservation(st *State, sql string, featureCols []string, targetCol string) ([][]float64, []float64, string) {
	obs := m.manualSelectObs(st, sql)
	if obs == "" {
		return nil, nil, "query result not found in context"
	}
	lines := strings.Split(obs, "\n")
	if len(lines) < 2 {
		return nil, nil, "query result has no rows to copy"
	}
	header := strings.Split(lines[0], " | ")
	colIdx := func(name string) int {
		for i, h := range header {
			if strings.EqualFold(strings.TrimSpace(h), name) {
				return i
			}
		}
		return -1
	}
	var fIdx []int
	for _, c := range featureCols {
		i := colIdx(c)
		if i < 0 {
			return nil, nil, "column " + c + " not present in copied result"
		}
		fIdx = append(fIdx, i)
	}
	tIdx := -1
	if targetCol != "" {
		tIdx = colIdx(targetCol)
		if tIdx < 0 {
			return nil, nil, "column " + targetCol + " not present in copied result"
		}
	}
	var features [][]float64
	var target []float64
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "(") {
			continue
		}
		parts := strings.Split(line, " | ")
		if len(parts) < len(header) {
			continue
		}
		row := make([]float64, len(fIdx))
		ok := true
		for j, i := range fIdx {
			f, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				ok = false
				break
			}
			row[j] = f
		}
		if !ok {
			continue
		}
		if tIdx >= 0 {
			f, err := strconv.ParseFloat(strings.TrimSpace(parts[tIdx]), 64)
			if err != nil {
				continue
			}
			target = append(target, f)
		}
		features = append(features, row)
	}
	if len(features) == 0 {
		return nil, nil, "no usable rows recovered from context"
	}
	return features, target, ""
}

// extractJSONField pulls a string field out of a JSON observation.
func extractJSONField(obs, field string) string {
	var parsed map[string]any
	if err := json.Unmarshal([]byte(obs), &parsed); err != nil {
		return ""
	}
	v, _ := parsed[field].(string)
	return v
}
