package llm

// Profile parameterizes a simulated model's behaviour. The two built-in
// profiles are calibrated so the experiment harness reproduces the shapes
// (and approximate magnitudes) of the paper's Figures 5–6 and Tables 1–2.
type Profile struct {
	// ModelName identifies the profile.
	ModelName string

	// Window is the context window in tokens (GPT-4o 128k, Claude-4 200k).
	Window int

	// SQLSkill is the probability of semantically correct SQL once the
	// needed context is available. Residual mistakes hit both toolkits
	// equally (Fig 5b shows comparable accuracy).
	SQLSkill float64

	// SchemaHallucination is the probability of inventing identifiers when
	// generating SQL before retrieving the schema (PG-MCP⁻ path, Fig 5a).
	SchemaHallucination float64

	// RetryBlind is the probability that, after an unknown-identifier
	// error, the model retries another guessed statement before thinking
	// to introspect the catalog (adds futile retries).
	RetryBlind float64

	// ValueHallucination is the probability of writing a predicate value
	// that does not match stored data when exemplars were not retrieved.
	ValueHallucination float64

	// ValueRecovery is the probability of noticing an implausible empty
	// result and issuing a discovery query (SELECT DISTINCT ...) to repair
	// the predicate.
	ValueRecovery float64

	// TxnAwarenessExplicit is the probability of wrapping a write task in
	// a transaction when explicit begin/commit tools exist (≈1 with
	// BridgeScope's prompt).
	TxnAwarenessExplicit float64

	// TxnAwarenessGeneric is the same probability when only a generic
	// execute_sql tool exists (PG-MCP "rarely recognizes the need").
	TxnAwarenessGeneric float64

	// EarlyAbortSkill is the probability of recognizing, from the exposed
	// tool set alone, that a write task is infeasible — before any tool
	// call (the (N, write) fast path of §3.3).
	EarlyAbortSkill float64

	// MisjudgeAbort is the probability of wrongly aborting a feasible
	// write task (the small gap below ratio 1.0 in Fig 5c).
	MisjudgeAbort float64

	// InspectExtra is the probability of an extra context call
	// (get_object / get_value) beyond the minimum on data-intensive tasks
	// (the +0.4 calls above 3 in Table 2).
	InspectExtra float64

	// ThoughtTokens approximates the reasoning text emitted per decision.
	ThoughtTokens int
}

// GPT4o returns the calibrated GPT-4o profile.
func GPT4o() Profile {
	return Profile{
		ModelName:            "gpt-4o-sim",
		Window:               128_000,
		SQLSkill:             0.86,
		SchemaHallucination:  0.85,
		RetryBlind:           0.60,
		ValueHallucination:   0.55,
		ValueRecovery:        0.80,
		TxnAwarenessExplicit: 0.99,
		TxnAwarenessGeneric:  0.12,
		EarlyAbortSkill:      0.55,
		MisjudgeAbort:        0.03,
		InspectExtra:         0.37,
		ThoughtTokens:        60,
	}
}

// Claude4 returns the calibrated Claude-4 profile. Its stronger reasoning
// shows up as earlier aborts on infeasible tasks and better repair
// behaviour, matching the paper's observation that improvements are "more
// pronounced for Claude-4".
func Claude4() Profile {
	return Profile{
		ModelName:            "claude-4-sim",
		Window:               200_000,
		SQLSkill:             0.90,
		SchemaHallucination:  0.80,
		RetryBlind:           0.40,
		ValueHallucination:   0.45,
		ValueRecovery:        0.92,
		TxnAwarenessExplicit: 1.0,
		TxnAwarenessGeneric:  0.10,
		EarlyAbortSkill:      0.90,
		MisjudgeAbort:        0.02,
		InspectExtra:         0.40,
		ThoughtTokens:        80,
	}
}
