package llm

import (
	"strings"
	"testing"

	"bridgescope/internal/mcp"
	"bridgescope/internal/task"
)

// Flow tests for the PG-MCP⁻ hallucination/repair loop and the manual
// (LLM-routed) pipeline — the behaviours behind Figure 5(a) and Table 2.

func minusTools() []mcp.ToolInfo { return []mcp.ToolInfo{{Name: "execute_sql"}} }

func birdTaskWithVariants() *task.Task {
	return &task.Task{
		ID: "t-halluc", NL: "count clothes", Kind: task.Read,
		Tables:          []string{"items"},
		GoldSQL:         []string{"SELECT COUNT(*) FROM items WHERE category = 'women'"},
		CorruptIdentSQL: []string{"SELECT COUNT(*) FROM items WHERE item_category = 'women'"},
		WrongValueSQL:   []string{"SELECT COUNT(*) FROM items WHERE category = 'women''s wear'"},
		NeedsValue:      true,
		ValueTable:      "items", ValueColumn: "category", ValueKey: "women's wear",
	}
}

func TestMinusFlowRepairsAfterIdentError(t *testing.T) {
	// Force the hallucination branch by scanning seeds for one where the
	// first decision is a blind attempt (the 0.85-probability branch).
	var m *Sim
	var st *State
	var first *Decision
	for seed := int64(0); seed < 40; seed++ {
		m = NewSim(GPT4o(), seed)
		st = &State{Task: birdTaskWithVariants(), Tools: minusTools()}
		d, err := m.Decide(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Calls) > 0 {
			if sql, _ := d.Calls[0].Args["sql"].(string); strings.Contains(sql, "item_category") {
				first = d
				break
			}
		}
	}
	if first == nil {
		t.Fatal("no seed produced the hallucination branch")
	}
	// The corrupt attempt fails with an unknown-identifier error.
	st.Steps = append(st.Steps, Step{
		Call:        first.Calls[0],
		Observation: `ERROR: unknown column "item_category"`,
		IsError:     true,
	})
	// The model must now either retry blindly (another corrupt attempt) or
	// introspect the catalog; run the loop until it issues a discovery
	// query, then confirm it switches to a correct statement.
	for turn := 0; turn < 6; turn++ {
		d, err := m.Decide(st)
		if err != nil {
			t.Fatal(err)
		}
		if d.Abort {
			t.Fatalf("flow aborted prematurely: %s", d.AbortReason)
		}
		if len(d.Calls) == 0 {
			t.Fatalf("unexpected final: %+v", d)
		}
		sql, _ := d.Calls[0].Args["sql"].(string)
		switch {
		case strings.Contains(sql, "information_schema"):
			st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: "CREATE TABLE items (\n  category TEXT\n);"})
		case strings.Contains(sql, "item_category"):
			st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: `ERROR: unknown column "item_category"`, IsError: true})
		default:
			// A statement with real identifiers: repair achieved.
			if !strings.Contains(sql, "category = ") {
				t.Fatalf("unexpected statement %q", sql)
			}
			return
		}
	}
	t.Fatal("model never recovered from hallucinated identifiers")
}

func TestGenericEmptyResultRecovery(t *testing.T) {
	// Pick a seed where the model hallucinates the predicate value and
	// recovers via a DISTINCT discovery query.
	for seed := int64(0); seed < 60; seed++ {
		m := NewSim(Claude4(), seed)
		tk := birdTaskWithVariants()
		st := &State{Task: tk, Tools: []mcp.ToolInfo{{Name: "get_schema"}, {Name: "execute_sql"}}}
		st.Steps = append(st.Steps, Step{Call: ToolCall{Tool: "get_schema"}, Observation: "CREATE TABLE items (\n  category TEXT\n);"})
		d, err := m.Decide(st)
		if err != nil {
			t.Fatal(err)
		}
		sql, _ := d.Calls[0].Args["sql"].(string)
		if !strings.Contains(sql, "women''s wear") {
			continue // this seed used the gold value
		}
		// The wrong value returns an empty result.
		st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: "COUNT(*)\n0\n(1 rows)"})
		d, err = m.Decide(st)
		if err != nil {
			t.Fatal(err)
		}
		if d.Final != "" {
			continue // this seed accepted the wrong answer (the 8% path)
		}
		dsql, _ := d.Calls[0].Args["sql"].(string)
		if !strings.Contains(dsql, "DISTINCT") {
			t.Fatalf("expected a DISTINCT discovery query, got %q", dsql)
		}
		st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: "category\nwomen\nmen\n(2 rows)"})
		d, err = m.Decide(st)
		if err != nil {
			t.Fatal(err)
		}
		gsql, _ := d.Calls[0].Args["sql"].(string)
		if !strings.Contains(gsql, "'women'") {
			t.Fatalf("expected retry with gold value, got %q", gsql)
		}
		return
	}
	t.Fatal("no seed exercised the recovery path")
}

func TestManualPipelineRoutesDataThroughContext(t *testing.T) {
	m := NewSim(Claude4(), 3)
	tk := &task.Task{
		ID: "ml-manual", NL: "train", Kind: task.Read, Tables: []string{"house"},
		Pipeline: &task.Pipeline{
			Level:       2,
			DataSQL:     "SELECT a, b, y FROM house",
			FeatureCols: []string{"a", "b"},
			TargetCol:   "y",
			Normalize:   true,
			ModelTool:   "train_linear_regression",
		},
	}
	st := &State{Task: tk, Tools: []mcp.ToolInfo{
		{Name: "get_schema"}, {Name: "execute_sql"},
		{Name: "zscore_normalize"}, {Name: "train_linear_regression"},
	}}
	// Turn 1: schema.
	d, _ := m.Decide(st)
	if d.Calls[0].Tool != "get_schema" {
		t.Fatalf("expected schema first, got %+v", d)
	}
	st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: "CREATE TABLE house (...)"})
	// Turn 2: data extraction.
	d, _ = m.Decide(st)
	if sql, _ := d.Calls[0].Args["sql"].(string); sql != tk.Pipeline.DataSQL {
		t.Fatalf("expected data query, got %+v", d)
	}
	st.Steps = append(st.Steps, Step{
		Call:        d.Calls[0],
		Observation: "a | b | y\n1 | 2 | 10\n2 | 4 | 20\n3 | 6 | 30\n(3 rows)",
	})
	// Turn 3: normalization with the parsed matrix inlined.
	d, _ = m.Decide(st)
	if d.Calls[0].Tool != "zscore_normalize" {
		t.Fatalf("expected zscore, got %+v", d)
	}
	feats, ok := d.Calls[0].Args["features"].([][]float64)
	if !ok || len(feats) != 3 || feats[2][1] != 6 {
		t.Fatalf("matrix not copied from context: %#v", d.Calls[0].Args["features"])
	}
	st.Steps = append(st.Steps, Step{
		Call:        d.Calls[0],
		Observation: `{"features":[[-1,-1],[0,0],[1,1]],"means":[2,4],"stds":[0.8,1.6]}`,
	})
	// Turn 4: training with the normalized payload and the target vector.
	d, _ = m.Decide(st)
	if d.Calls[0].Tool != "train_linear_regression" {
		t.Fatalf("expected training, got %+v", d)
	}
	if _, ok := d.Calls[0].Args["features"].(map[string]any); !ok {
		t.Fatalf("normalized payload not routed: %#v", d.Calls[0].Args["features"])
	}
	target, ok := d.Calls[0].Args["target"].([]float64)
	if !ok || len(target) != 3 || target[2] != 30 {
		t.Fatalf("target vector not routed: %#v", d.Calls[0].Args["target"])
	}
	st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: `{"model_id":"model-1","rmse_test":1.0}`})
	// Turn 5: final.
	d, _ = m.Decide(st)
	if d.Final == "" {
		t.Fatalf("expected final, got %+v", d)
	}
}
