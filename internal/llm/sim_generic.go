package llm

import (
	"fmt"
	"strings"
)

// decideBirdGeneric is the PG-MCP flow: a single execute_sql tool (plus
// get_schema for the full baseline). Without privilege annotations or
// per-action tools, the model discovers infeasibility only through engine
// errors, and without explicit transaction tools it rarely thinks to wrap
// modifications — exactly the deficits §3.2–3.3 measure.
func (m *Sim) decideBirdGeneric(st *State) *Decision {
	t := st.Task
	p := m.profile

	schemaKnown := m.genericSchemaKnown(st)
	attempts := mainSQLAttempts(st)
	last := st.LastObservation()

	// React to the previous observation first.
	if last != nil && last.IsError {
		switch {
		case isPermissionText(last.Observation):
			// Privilege violations surface only at execution time. Weaker
			// models retry once, and often probe the catalog for their
			// grants before accepting defeat — all wasted reasoning steps
			// that privilege-aware tooling avoids (§3.3).
			if m.permissionErrors(st) == 1 {
				if m.draw(t, "perm_retry") < p.RetryBlind {
					return m.genericExecuteTurn(st, m.genericChooseSQL(st), "Maybe a different phrasing is allowed; retry.")
				}
				if !m.diagnosedPrivileges(st) && m.draw(t, "perm_diag") < 0.75 {
					return &Decision{
						Thought: m.thought("Check what privileges this role actually holds."),
						Calls: []ToolCall{{Tool: "execute_sql", Args: map[string]any{
							"sql": "SELECT grantee, table_name, privilege_type FROM information_schema.role_table_grants",
						}}},
					}
				}
			}
			if m.inTxn(st) {
				return &Decision{
					Thought: m.thought("Denied mid-transaction; roll back."),
					Calls:   []ToolCall{{Tool: "execute_sql", Args: map[string]any{"sql": "ROLLBACK"}}},
				}
			}
			return &Decision{
				Thought:     m.thought("The database denied the operation; the task is infeasible for this user."),
				Abort:       true,
				AbortReason: "infeasible: permission denied by the database",
			}
		case isUnknownIdentText(last.Observation):
			// Hallucinated identifiers. Either blindly guess again or
			// introspect the catalog.
			if !schemaKnown {
				key := fmt.Sprintf("retryblind%d", m.identErrors(st))
				if m.identErrors(st) <= 2 && m.draw(t, key) < p.RetryBlind && len(t.CorruptIdentSQL) > 0 {
					return m.genericExecuteTurn(st, t.CorruptIdentSQL, "Perhaps a small naming fix works; try again.")
				}
				return m.genericDiscoverSchema(st)
			}
			if attempts >= 3 {
				return m.genericAbortFailure(st)
			}
			return m.genericExecuteTurn(st, t.GoldSQL, "Use the documented schema names this time.")
		default:
			// Constraint or syntax failure: retry once with gold, else abort.
			if attempts >= 3 {
				return m.genericAbortFailure(st)
			}
			return m.genericExecuteTurn(st, t.GoldSQL, "Correct the statement and retry.")
		}
	}

	// The grants listing confirmed the missing privilege -> abort.
	if m.permissionErrors(st) > 0 && m.diagnosedPrivileges(st) {
		if m.inTxn(st) {
			return &Decision{
				Thought: m.thought("The grants confirm the privilege is missing; roll back."),
				Calls:   []ToolCall{{Tool: "execute_sql", Args: map[string]any{"sql": "ROLLBACK"}}},
			}
		}
		return &Decision{
			Thought:     m.thought("The grants confirm this role cannot perform the task."),
			Abort:       true,
			AbortReason: "infeasible: required privilege not granted",
		}
	}

	// Rollback just completed -> abort.
	if last != nil && !last.IsError && isRollbackSQL(last) {
		return &Decision{
			Thought:     m.thought("Changes were rolled back."),
			Abort:       true,
			AbortReason: "task aborted after rollback",
		}
	}

	// Schema acquisition.
	if !schemaKnown {
		if st.HasTool("get_schema") {
			return &Decision{
				Thought: m.thought("Inspect the schema before writing SQL."),
				Calls:   []ToolCall{{Tool: "get_schema"}},
			}
		}
		// PG-MCP⁻: no schema tool. Most attempts start from a guessed
		// schema (the hallucination path); otherwise introspect via SQL.
		if attempts == 0 && m.identErrors(st) == 0 {
			if m.draw(t, "halluc_schema") < p.SchemaHallucination && len(t.CorruptIdentSQL) > 0 {
				return m.genericExecuteTurn(st, t.CorruptIdentSQL, "Write the SQL from memory of typical schemas.")
			}
			return m.genericDiscoverSchema(st)
		}
	}

	// Empty-result repair for value-dependent predicates (§2.2): the wrong
	// exemplar produced zero rows; a capable model notices and discovers
	// the real values.
	if t.NeedsValue && m.wrongValueExecuted(st) && !m.discoveredValues(st) {
		if m.draw(t, "value_recover") < p.ValueRecovery {
			return &Decision{
				Thought: m.thought("Zero rows is implausible; check what values the column actually stores."),
				Calls: []ToolCall{{Tool: "execute_sql", Args: map[string]any{
					"sql": fmt.Sprintf("SELECT DISTINCT %s FROM %s LIMIT 20", t.ValueColumn, t.ValueTable),
				}}},
			}
		}
		return m.finalize(st) // accepts the wrong (empty) answer
	}
	if t.NeedsValue && m.wrongValueExecuted(st) && m.discoveredValues(st) && !m.goldExecuted(st) {
		return m.genericExecuteTurn(st, t.GoldSQL, "Retry with the actual stored value.")
	}

	if attempts == 0 {
		return m.genericExecuteTurn(st, m.genericChooseSQL(st), "Execute the task's SQL.")
	}
	if !lastMainSQLSucceeded(st) && attempts < 3 {
		return m.genericExecuteTurn(st, t.GoldSQL, "Retry with corrected statements.")
	}
	return m.finalize(st)
}

func (m *Sim) genericAbortFailure(st *State) *Decision {
	if m.inTxn(st) {
		return &Decision{
			Thought: m.thought("Too many failures; roll back."),
			Calls:   []ToolCall{{Tool: "execute_sql", Args: map[string]any{"sql": "ROLLBACK"}}},
		}
	}
	return &Decision{
		Thought:     m.thought("Too many failures; abort."),
		Abort:       true,
		AbortReason: "repeated execution failures",
	}
}

// genericSchemaKnown reports whether the model has seen schema text: via
// get_schema or an information_schema introspection query.
func (m *Sim) genericSchemaKnown(st *State) bool {
	if st.Called("get_schema") {
		return true
	}
	for _, step := range st.Steps {
		if step.IsError {
			continue
		}
		if sql, ok := step.Call.Args["sql"].(string); ok &&
			strings.Contains(strings.ToLower(sql), "information_schema") {
			return true
		}
	}
	return false
}

func (m *Sim) genericDiscoverSchema(st *State) *Decision {
	return &Decision{
		Thought: m.thought("Introspect the catalog to learn the real schema."),
		Calls: []ToolCall{{Tool: "execute_sql", Args: map[string]any{
			"sql": "SELECT table_name, column_name, data_type FROM information_schema.columns",
		}}},
	}
}

// genericChooseSQL mirrors chooseBirdSQL for the generic toolkit: no
// get_value tool exists, so value hallucination depends only on whether a
// discovery query ran.
func (m *Sim) genericChooseSQL(st *State) []string {
	t := st.Task
	p := m.profile
	if t.NeedsValue && !m.discoveredValues(st) &&
		m.draw(t, "halluc_value") < p.ValueHallucination && len(t.WrongValueSQL) > 0 {
		return t.WrongValueSQL
	}
	if m.draw(t, "semantic") >= p.SQLSkill && len(t.SemanticWrongSQL) > 0 {
		return t.SemanticWrongSQL
	}
	return t.GoldSQL
}

// genericExecuteTurn emits the statements through execute_sql, wrapping
// writes in BEGIN/COMMIT only when the model's (weak) generic transaction
// awareness fires.
func (m *Sim) genericExecuteTurn(st *State, sqls []string, note string) *Decision {
	t := st.Task
	p := m.profile
	var calls []ToolCall
	useTxn := t.Kind.IsWrite() && m.draw(t, "txn") < p.TxnAwarenessGeneric
	if useTxn && !m.inTxn(st) {
		calls = append(calls, ToolCall{Tool: "execute_sql", Args: map[string]any{"sql": "BEGIN"}})
	}
	for _, sql := range sqls {
		calls = append(calls, ToolCall{Tool: "execute_sql", Args: map[string]any{"sql": sql}})
	}
	if useTxn {
		calls = append(calls, ToolCall{Tool: "execute_sql", Args: map[string]any{"sql": "COMMIT"}})
	}
	return &Decision{Thought: m.thought(note), Calls: calls}
}

// wrongValueExecuted reports whether a WrongValueSQL statement ran
// successfully (producing a misleading empty result).
func (m *Sim) wrongValueExecuted(st *State) bool {
	wrong := map[string]bool{}
	for _, s := range st.Task.WrongValueSQL {
		wrong[s] = true
	}
	for _, step := range st.Steps {
		if step.IsError {
			continue
		}
		if sql, ok := step.Call.Args["sql"].(string); ok && wrong[sql] {
			return true
		}
	}
	return false
}

func (m *Sim) goldExecuted(st *State) bool {
	gold := map[string]bool{}
	for _, s := range st.Task.GoldSQL {
		gold[s] = true
	}
	for _, step := range st.Steps {
		if step.IsError {
			continue
		}
		if sql, ok := step.Call.Args["sql"].(string); ok && gold[sql] {
			return true
		}
	}
	return false
}

// diagnosedPrivileges reports whether a grants-introspection query already
// ran successfully.
func (m *Sim) diagnosedPrivileges(st *State) bool {
	for _, step := range st.Steps {
		if step.IsError {
			continue
		}
		if sql, ok := step.Call.Args["sql"].(string); ok &&
			strings.Contains(sql, "role_table_grants") {
			return true
		}
	}
	return false
}

// permissionErrors counts permission-denied observations.
func (m *Sim) permissionErrors(st *State) int {
	n := 0
	for _, step := range st.Steps {
		if step.IsError && isPermissionText(step.Observation) {
			n++
		}
	}
	return n
}

// identErrors counts unknown-identifier observations.
func (m *Sim) identErrors(st *State) int {
	n := 0
	for _, step := range st.Steps {
		if step.IsError && isUnknownIdentText(step.Observation) {
			n++
		}
	}
	return n
}
