package llm

import (
	"fmt"
	"strings"

	"bridgescope/internal/task"
)

// Sim is the simulated model. It is stateless across Decide calls: every
// choice is derived from the visible State plus deterministic draws, so a
// run can be replayed or resumed.
type Sim struct {
	profile Profile
	seed    int64
}

// NewSim creates a simulated model with the given behaviour profile; seed
// namespaces all stochastic draws.
func NewSim(profile Profile, seed int64) *Sim {
	return &Sim{profile: profile, seed: seed}
}

// Name implements Model.
func (m *Sim) Name() string { return m.profile.ModelName }

// ContextWindow implements Model.
func (m *Sim) ContextWindow() int { return m.profile.Window }

// Profile returns the behaviour profile.
func (m *Sim) Profile() Profile { return m.profile }

func (m *Sim) draw(t *task.Task, key string) float64 {
	return draw(m.seed, t.ID, key)
}

// thought pads a phase description to roughly the profile's reasoning
// verbosity, for realistic completion-token accounting.
func (m *Sim) thought(text string) string {
	words := strings.Count(text, " ") + 1
	need := m.profile.ThoughtTokens*3/4 - words // ~0.75 words per token
	if need > 0 {
		text += strings.Repeat(" considering the database state and the task requirements", (need+7)/8)
	}
	return text
}

// Decide implements Model.
func (m *Sim) Decide(st *State) (*Decision, error) {
	if st.Task == nil {
		return nil, fmt.Errorf("sim: state has no task")
	}
	if st.Task.Pipeline != nil {
		return m.decidePipeline(st), nil
	}
	if m.modularToolkit(st) {
		return m.decideBirdModular(st), nil
	}
	if st.HasTool("execute_sql") {
		return m.decideBirdGeneric(st), nil
	}
	return &Decision{
		Thought:     m.thought("No database tools are available."),
		Abort:       true,
		AbortReason: "no database tools available",
	}, nil
}

func (m *Sim) modularToolkit(st *State) bool {
	for _, name := range []string{"select", "insert", "update", "delete"} {
		if st.HasTool(name) {
			return true
		}
	}
	return false
}

func toolForKind(k task.Kind) string {
	switch k {
	case task.Insert:
		return "insert"
	case task.Update:
		return "update"
	case task.Delete:
		return "delete"
	}
	return "select"
}

// sqlToolNames are the tools whose calls count as "executing task SQL".
var sqlToolNames = map[string]bool{
	"select": true, "insert": true, "update": true, "delete": true,
	"create_table": true, "drop_table": true, "alter_table": true,
	"execute_sql": true,
}

// mainSQLAttempts counts turns that executed one of the task's statement
// variants (not discovery queries).
func mainSQLAttempts(st *State) int {
	variants := map[string]bool{}
	for _, group := range [][]string{st.Task.GoldSQL, st.Task.CorruptIdentSQL, st.Task.WrongValueSQL, st.Task.SemanticWrongSQL} {
		for _, s := range group {
			variants[s] = true
		}
	}
	n := 0
	for _, step := range st.Steps {
		if !sqlToolNames[step.Call.Tool] {
			continue
		}
		if sql, ok := step.Call.Args["sql"].(string); ok && variants[sql] {
			n++
		}
	}
	return n
}

// lastMainSQLSucceeded reports whether the final statement of the task's
// most recent attempt executed without error.
func lastMainSQLSucceeded(st *State) bool {
	variants := map[string]bool{}
	for _, group := range [][]string{st.Task.GoldSQL, st.Task.WrongValueSQL, st.Task.SemanticWrongSQL} {
		for _, s := range group {
			variants[s] = true
		}
	}
	for i := len(st.Steps) - 1; i >= 0; i-- {
		step := st.Steps[i]
		if !sqlToolNames[step.Call.Tool] {
			continue
		}
		if sql, ok := step.Call.Args["sql"].(string); ok && variants[sql] {
			return !step.IsError
		}
	}
	return false
}

func isPermissionText(s string) bool {
	lo := strings.ToLower(s)
	return strings.Contains(lo, "permission denied") || strings.Contains(lo, "lacks")
}

func isUnknownIdentText(s string) bool {
	lo := strings.ToLower(s)
	return strings.Contains(lo, "does not exist") || strings.Contains(lo, "unknown column") ||
		strings.Contains(lo, "unknown table")
}

// --- BridgeScope (modular toolkit) flow ---

func (m *Sim) decideBirdModular(st *State) *Decision {
	t := st.Task
	p := m.profile

	// Infeasibility visible from the exposed tool set: the action tool for
	// a write task is simply absent (paper §3.3, the (N, write) case).
	if need := toolForKind(t.Kind); !st.HasTool(need) {
		if st.Called("get_schema") || m.draw(t, "earlyabort") < p.EarlyAbortSkill {
			return &Decision{
				Thought:     m.thought(fmt.Sprintf("The %s tool is not exposed to me, so I cannot perform this task.", need)),
				Abort:       true,
				AbortReason: fmt.Sprintf("infeasible: the %s operation is not available under current privileges", need),
			}
		}
		// A weaker model double-checks the schema before concluding.
		return &Decision{
			Thought: m.thought("Let me inspect the schema before judging feasibility."),
			Calls:   []ToolCall{{Tool: "get_schema"}},
		}
	}

	if !st.Called("get_schema") {
		return &Decision{
			Thought: m.thought("First retrieve the database schema to ground the SQL."),
			Calls:   []ToolCall{{Tool: "get_schema"}},
		}
	}
	schemaObs := st.Observation("get_schema")

	// Hierarchical schema mode: fetch details for the task's tables.
	if strings.Contains(schemaObs, "get_object") && !st.Called("get_object") {
		var calls []ToolCall
		for _, tbl := range t.Tables {
			calls = append(calls, ToolCall{Tool: "get_object", Args: map[string]any{"object": tbl}})
		}
		return &Decision{
			Thought: m.thought("The schema listing is names-only; fetch the task's objects."),
			Calls:   calls,
		}
	}

	// Privilege-aware feasibility from annotations (paper §2.2/§3.3).
	for _, tbl := range t.Tables {
		access, perms, found := m.tableAccess(st, tbl)
		if !found {
			return &Decision{
				Thought:     m.thought(fmt.Sprintf("Table %s is not visible in the schema; the task cannot proceed.", tbl)),
				Abort:       true,
				AbortReason: fmt.Sprintf("infeasible: object %q is not accessible", tbl),
			}
		}
		if !access {
			return &Decision{
				Thought:     m.thought(fmt.Sprintf("Table %s is annotated Access: False.", tbl)),
				Abort:       true,
				AbortReason: fmt.Sprintf("infeasible: no access to object %q", tbl),
			}
		}
		if !permsAllow(perms, t.Kind) {
			return &Decision{
				Thought:     m.thought(fmt.Sprintf("My privileges on %s (%s) do not cover this task.", tbl, perms)),
				Abort:       true,
				AbortReason: fmt.Sprintf("infeasible: %s not permitted on %q", t.Kind, tbl),
			}
		}
	}

	attempts := mainSQLAttempts(st)

	// Occasional wrong abort of a feasible write (Fig 5c's gap below 1.0).
	if t.Kind.IsWrite() && attempts == 0 && m.draw(t, "misjudge") < p.MisjudgeAbort {
		return &Decision{
			Thought:     m.thought("On reflection this modification looks out of scope for my role."),
			Abort:       true,
			AbortReason: "model judged the task infeasible",
		}
	}

	// Exemplar retrieval for value-dependent predicates.
	if t.NeedsValue && st.HasTool("get_value") && !st.Called("get_value") {
		return &Decision{
			Thought: m.thought("The predicate depends on stored values; retrieve exemplars first."),
			Calls: []ToolCall{{Tool: "get_value", Args: map[string]any{
				"table": t.ValueTable, "column": t.ValueColumn, "key": t.ValueKey,
			}}},
		}
	}

	// React to an execution error.
	if last := st.LastObservation(); last != nil && last.IsError && sqlToolNames[last.Call.Tool] {
		if isPermissionText(last.Observation) {
			return m.abortAfterDenial(st)
		}
		if attempts >= 2 {
			return m.rollbackAndAbort(st, "repeated execution failures")
		}
		// Retry once with the correct statements.
		return m.executeTurn(st, t.GoldSQL, "Retry with corrected statements.")
	}

	if attempts == 0 {
		return m.executeTurn(st, m.chooseBirdSQL(st), "Execute the task's SQL.")
	}
	if !lastMainSQLSucceeded(st) && attempts < 2 {
		return m.executeTurn(st, t.GoldSQL, "Retry with corrected statements.")
	}

	return m.finalize(st)
}

// executeTurn emits the task's statements through the matching action
// tools, wrapped in a transaction for write tasks when the model's
// transaction awareness fires.
func (m *Sim) executeTurn(st *State, sqls []string, note string) *Decision {
	t := st.Task
	p := m.profile
	var calls []ToolCall
	useTxn := false
	if t.Kind.IsWrite() && st.HasTool("begin") {
		useTxn = m.draw(t, "txn") < p.TxnAwarenessExplicit
	}
	if useTxn {
		calls = append(calls, ToolCall{Tool: "begin"})
	}
	for _, sql := range sqls {
		calls = append(calls, ToolCall{Tool: toolForSQL(sql, t), Args: map[string]any{"sql": sql}})
	}
	if useTxn {
		calls = append(calls, ToolCall{Tool: "commit"})
	}
	return &Decision{Thought: m.thought(note), Calls: calls}
}

// toolForSQL picks the action tool matching a statement's verb.
func toolForSQL(sql string, t *task.Task) string {
	verb := strings.ToUpper(firstWord(sql))
	switch verb {
	case "SELECT":
		return "select"
	case "INSERT":
		return "insert"
	case "UPDATE":
		return "update"
	case "DELETE":
		return "delete"
	case "CREATE":
		return "create_table"
	case "DROP":
		return "drop_table"
	case "ALTER":
		return "alter_table"
	}
	return toolForKind(t.Kind)
}

func firstWord(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// chooseBirdSQL selects which statement variant the model emits, given the
// context it has gathered.
func (m *Sim) chooseBirdSQL(st *State) []string {
	t := st.Task
	p := m.profile
	valueResolved := !t.NeedsValue || st.Called("get_value") || m.discoveredValues(st)
	if !valueResolved && m.draw(t, "halluc_value") < p.ValueHallucination && len(t.WrongValueSQL) > 0 {
		return t.WrongValueSQL
	}
	if m.draw(t, "semantic") >= p.SQLSkill && len(t.SemanticWrongSQL) > 0 {
		return t.SemanticWrongSQL
	}
	return t.GoldSQL
}

// discoveredValues reports whether a value-discovery query already ran.
func (m *Sim) discoveredValues(st *State) bool {
	for _, step := range st.Steps {
		if sql, ok := step.Call.Args["sql"].(string); ok &&
			strings.Contains(strings.ToUpper(sql), "DISTINCT") && !step.IsError {
			return true
		}
	}
	return false
}

func (m *Sim) abortAfterDenial(st *State) *Decision {
	if st.Task.Kind.IsWrite() && m.inTxn(st) {
		return &Decision{
			Thought: m.thought("Permission was denied mid-task; roll back so nothing persists."),
			Calls:   []ToolCall{{Tool: "rollback"}},
		}
	}
	return &Decision{
		Thought:     m.thought("The database denied the operation; the task is infeasible."),
		Abort:       true,
		AbortReason: "infeasible: permission denied by the database",
	}
}

func (m *Sim) rollbackAndAbort(st *State, reason string) *Decision {
	if m.inTxn(st) {
		return &Decision{
			Thought: m.thought("Execution keeps failing; roll back."),
			Calls:   []ToolCall{{Tool: "rollback"}},
		}
	}
	return &Decision{
		Thought:     m.thought("Execution keeps failing; abort."),
		Abort:       true,
		AbortReason: reason,
	}
}

// inTxn reports whether a begin succeeded without a later commit/rollback.
func (m *Sim) inTxn(st *State) bool {
	open := false
	for _, step := range st.Steps {
		switch step.Call.Tool {
		case "begin":
			if !step.IsError {
				open = true
			}
		case "commit", "rollback":
			if !step.IsError {
				open = false
			}
		case "execute_sql":
			if sql, ok := step.Call.Args["sql"].(string); ok && !step.IsError {
				switch strings.ToUpper(firstWord(sql)) {
				case "BEGIN":
					open = true
				case "COMMIT", "ROLLBACK":
					open = false
				}
			}
		}
	}
	return open
}

// finalize ends the task. If a rollback just happened, abort; otherwise
// report the outcome, quoting the last query result for read tasks.
func (m *Sim) finalize(st *State) *Decision {
	if last := st.LastObservation(); last != nil &&
		(last.Call.Tool == "rollback" || isRollbackSQL(last)) && !last.IsError {
		return &Decision{
			Thought:     m.thought("Changes were rolled back."),
			Abort:       true,
			AbortReason: "task aborted after rollback",
		}
	}
	answer := "Task completed."
	if st.Task.Kind == task.Read {
		if obs := m.lastQueryResult(st); obs != "" {
			answer = "Query result:\n" + obs
		}
	} else {
		answer = "The requested database modification was applied successfully."
	}
	return &Decision{Thought: m.thought("Summarize the outcome."), Final: answer}
}

func isRollbackSQL(step *Step) bool {
	sql, ok := step.Call.Args["sql"].(string)
	return ok && strings.EqualFold(firstWord(sql), "ROLLBACK")
}

// lastQueryResult returns the observation of the most recent successful
// main-statement query.
func (m *Sim) lastQueryResult(st *State) string {
	variants := map[string]bool{}
	for _, group := range [][]string{st.Task.GoldSQL, st.Task.WrongValueSQL, st.Task.SemanticWrongSQL} {
		for _, s := range group {
			variants[s] = true
		}
	}
	for i := len(st.Steps) - 1; i >= 0; i-- {
		step := st.Steps[i]
		if step.IsError || !sqlToolNames[step.Call.Tool] {
			continue
		}
		if sql, ok := step.Call.Args["sql"].(string); ok && variants[sql] {
			return step.Observation
		}
	}
	return ""
}

// tableAccess parses privilege annotations for a table out of schema /
// get_object observations.
func (m *Sim) tableAccess(st *State, table string) (access bool, perms string, found bool) {
	// Prefer a get_object observation for the table.
	for _, step := range st.Steps {
		if step.Call.Tool != "get_object" || step.IsError {
			continue
		}
		if obj, ok := step.Call.Args["object"].(string); ok && strings.EqualFold(obj, table) {
			return parseAccessBlock(step.Observation, table)
		}
	}
	obs := st.Observation("get_schema")
	if obs == "" {
		return false, "", false
	}
	// Hierarchical listing: "- name (table, accessible|no access)".
	if strings.Contains(obs, "get_object") {
		for _, line := range strings.Split(obs, "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "- ") {
				continue
			}
			rest := strings.TrimPrefix(line, "- ")
			name := rest
			if i := strings.IndexByte(rest, ' '); i >= 0 {
				name = rest[:i]
			}
			if strings.EqualFold(name, table) {
				if strings.Contains(rest, "no access") {
					return false, "", true
				}
				// Accessible, but exact permissions unknown at this level:
				// assume permitted and let execution confirm.
				return true, "ALL", true
			}
		}
		return false, "", false
	}
	return parseAccessBlock(obs, table)
}

// parseAccessBlock scans annotated DDL text for the block describing table
// and extracts its Access/Permissions annotation. Schema output without
// annotations (baseline or ablation) reports full access for any table that
// appears at all.
func parseAccessBlock(obs, table string) (bool, string, bool) {
	blocks := strings.Split(obs, "\n\n")
	needle := "CREATE TABLE " + table
	for _, b := range blocks {
		idx := indexFold(b, needle)
		if idx < 0 {
			continue
		}
		// The char after the table name must not extend the identifier.
		after := idx + len(needle)
		if after < len(b) && isIdentChar(b[after]) {
			continue
		}
		if !strings.Contains(b, "-- Access:") {
			return true, "ALL", true
		}
		if strings.Contains(b, "-- Access: False") {
			return false, "", true
		}
		perms := "ALL"
		if i := strings.Index(b, "Permissions: "); i >= 0 {
			rest := b[i+len("Permissions: "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				rest = rest[:j]
			}
			perms = strings.TrimSpace(rest)
		}
		return true, perms, true
	}
	return false, "", false
}

func indexFold(haystack, needle string) int {
	return strings.Index(strings.ToLower(haystack), strings.ToLower(needle))
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// permsAllow checks whether an annotation's permission list covers a task
// kind.
func permsAllow(perms string, k task.Kind) bool {
	if strings.Contains(perms, "ALL") {
		return true
	}
	var need string
	switch k {
	case task.Read:
		need = "SELECT"
	case task.Insert:
		need = "INSERT"
	case task.Update:
		need = "UPDATE"
	case task.Delete:
		need = "DELETE"
	}
	return strings.Contains(strings.ToUpper(perms), need)
}
