// Package llm implements the LLM substrate: a behavioural simulator of the
// two models the paper evaluates (GPT-4o and Claude-4) driving a ReAct
// agent.
//
// Real model APIs are unavailable offline, so the simulator reproduces the
// *mechanisms* that generate every number in the paper's evaluation:
//
//   - schema/predicate hallucination when context was not retrieved first,
//     followed by error-driven repair (futile retries, §3.2(1));
//   - transaction awareness that depends on whether explicit begin/commit
//     tools are exposed (§3.2(3));
//   - privilege reasoning from schema annotations and from the exposed tool
//     set, enabling early aborts of infeasible tasks (§3.3);
//   - bounded context windows that data-heavy observations exhaust (§3.4);
//   - proxy-unit construction for data-intensive workflows (§2.5).
//
// All stochastic choices derive from a hash of (seed, task id, decision
// point), so runs are reproducible and independent of evaluation order.
package llm

import (
	"encoding/json"
	"hash/fnv"

	"bridgescope/internal/mcp"
	"bridgescope/internal/task"
)

// ToolCall is one tool invocation the model requests.
type ToolCall struct {
	Tool string         `json:"tool"`
	Args map[string]any `json:"args,omitempty"`
}

// Decision is the output of one LLM call. A decision either issues tool
// calls (possibly several, executed in order) or terminates the task with
// Final text / an Abort.
type Decision struct {
	Thought string
	Calls   []ToolCall
	Final   string
	Abort   bool
	// AbortReason explains an abort ("insufficient privileges", ...).
	AbortReason string
}

// Render serializes the decision the way it would appear in a completion,
// for token accounting.
func (d *Decision) Render() string {
	out := d.Thought
	for _, c := range d.Calls {
		raw, err := json.Marshal(c)
		if err == nil {
			out += "\n" + string(raw)
		}
	}
	if d.Final != "" {
		out += "\n" + d.Final
	}
	if d.Abort {
		out += "\nABORT: " + d.AbortReason
	}
	return out
}

// Step records one executed tool call and its observation, as the agent
// feeds it back to the model.
type Step struct {
	Call        ToolCall
	ArgsText    string // serialized args (counted in history tokens)
	Observation string
	IsError     bool
}

// State is everything the model can see when deciding: the task text, the
// system prompt, the tool list, and the conversation so far.
type State struct {
	Task         *task.Task
	SystemPrompt string
	Tools        []mcp.ToolInfo
	Steps        []Step
}

// HasTool reports whether a tool name is visible in the state.
func (s *State) HasTool(name string) bool {
	for _, t := range s.Tools {
		if t.Name == name {
			return true
		}
	}
	return false
}

// Called reports whether a tool has been invoked (successfully or not).
func (s *State) Called(name string) bool {
	for _, st := range s.Steps {
		if st.Call.Tool == name {
			return true
		}
	}
	return false
}

// CallCount counts invocations of a tool.
func (s *State) CallCount(name string) int {
	n := 0
	for _, st := range s.Steps {
		if st.Call.Tool == name {
			n++
		}
	}
	return n
}

// LastObservation returns the most recent step, or nil.
func (s *State) LastObservation() *Step {
	if len(s.Steps) == 0 {
		return nil
	}
	return &s.Steps[len(s.Steps)-1]
}

// Observation returns the first observation produced by a tool, or "".
func (s *State) Observation(tool string) string {
	for _, st := range s.Steps {
		if st.Call.Tool == tool && !st.IsError {
			return st.Observation
		}
	}
	return ""
}

// Model is the LLM interface the agent drives.
type Model interface {
	// Name identifies the model ("gpt-4o-sim", "claude-4-sim").
	Name() string
	// ContextWindow is the maximum prompt size in tokens.
	ContextWindow() int
	// Decide produces the next decision for the visible state.
	Decide(st *State) (*Decision, error)
}

// draw returns a deterministic pseudo-uniform value in [0,1) keyed by
// (seed, task id, decision point). Keying by semantic decision point rather
// than call order makes behaviour stable under workflow changes.
func draw(seed int64, taskID, key string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(taskID))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}
