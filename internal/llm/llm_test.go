package llm

import (
	"strings"
	"testing"

	"bridgescope/internal/mcp"
	"bridgescope/internal/task"
)

func bridgeTools(names ...string) []mcp.ToolInfo {
	base := []string{"get_schema", "get_object", "get_value", "proxy"}
	var out []mcp.ToolInfo
	for _, n := range append(base, names...) {
		out = append(out, mcp.ToolInfo{Name: n})
	}
	return out
}

func readTask() *task.Task {
	return &task.Task{
		ID: "t-read", NL: "count items", Kind: task.Read,
		Tables:  []string{"items"},
		GoldSQL: []string{"SELECT COUNT(*) FROM items"},
	}
}

func writeTask() *task.Task {
	return &task.Task{
		ID: "t-write", NL: "insert a row", Kind: task.Insert,
		Tables:  []string{"items"},
		GoldSQL: []string{"INSERT INTO items (id) VALUES (1)"},
	}
}

func decide(t *testing.T, m *Sim, st *State) *Decision {
	t.Helper()
	d, err := m.Decide(st)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestModularSchemaFirst(t *testing.T) {
	m := NewSim(Claude4(), 1)
	st := &State{Task: readTask(), Tools: bridgeTools("select")}
	d := decide(t, m, st)
	if len(d.Calls) != 1 || d.Calls[0].Tool != "get_schema" {
		t.Fatalf("first decision should retrieve schema, got %+v", d)
	}
}

func TestModularAbortsWithoutWriteTool(t *testing.T) {
	m := NewSim(Claude4(), 1) // Claude profile: high early-abort skill
	st := &State{Task: writeTask(), Tools: bridgeTools("select")}
	d := decide(t, m, st)
	// Either aborts immediately or checks schema once then aborts.
	if !d.Abort {
		if len(d.Calls) != 1 || d.Calls[0].Tool != "get_schema" {
			t.Fatalf("expected abort or schema check, got %+v", d)
		}
		st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: accessibleSchema()})
		d = decide(t, m, st)
		if !d.Abort {
			t.Fatalf("must abort after schema double-check, got %+v", d)
		}
	}
	if !strings.Contains(d.AbortReason, "insert") {
		t.Fatalf("abort reason should name the missing operation: %q", d.AbortReason)
	}
}

func accessibleSchema() string {
	return "-- Access: True, Permissions: ALL\nCREATE TABLE items (\n  id INTEGER PRIMARY KEY\n);"
}

func TestModularAbortsOnAccessFalse(t *testing.T) {
	m := NewSim(GPT4o(), 1)
	st := &State{Task: readTask(), Tools: bridgeTools("select")}
	st.Steps = append(st.Steps, Step{
		Call:        ToolCall{Tool: "get_schema"},
		Observation: "-- Access: False\nCREATE TABLE items (...);",
	})
	d := decide(t, m, st)
	if !d.Abort {
		t.Fatalf("Access: False must trigger abort, got %+v", d)
	}
}

func TestModularAbortsOnMissingPermission(t *testing.T) {
	m := NewSim(GPT4o(), 1)
	st := &State{Task: writeTask(), Tools: bridgeTools("select", "insert", "begin", "commit", "rollback")}
	st.Steps = append(st.Steps, Step{
		Call:        ToolCall{Tool: "get_schema"},
		Observation: "-- Access: True, Permissions: SELECT\nCREATE TABLE items (\n  id INTEGER PRIMARY KEY\n);",
	})
	d := decide(t, m, st)
	if !d.Abort {
		t.Fatalf("SELECT-only permissions must abort an insert task, got %+v", d)
	}
}

func TestModularWritesUseTransaction(t *testing.T) {
	m := NewSim(Claude4(), 1) // TxnAwarenessExplicit = 1.0
	st := &State{Task: writeTask(), Tools: bridgeTools("select", "insert", "begin", "commit", "rollback")}
	st.Steps = append(st.Steps, Step{Call: ToolCall{Tool: "get_schema"}, Observation: accessibleSchema()})
	d := decide(t, m, st)
	if len(d.Calls) < 3 || d.Calls[0].Tool != "begin" || d.Calls[len(d.Calls)-1].Tool != "commit" {
		t.Fatalf("write should be wrapped in begin/commit, got %+v", d.Calls)
	}
	if d.Calls[1].Tool != "insert" {
		t.Fatalf("insert statement should use the insert tool, got %+v", d.Calls[1])
	}
}

func TestModularValueRetrievalBeforeSQL(t *testing.T) {
	m := NewSim(Claude4(), 1)
	tk := readTask()
	tk.NeedsValue = true
	tk.ValueTable, tk.ValueColumn, tk.ValueKey = "items", "category", "women's wear"
	st := &State{Task: tk, Tools: bridgeTools("select")}
	st.Steps = append(st.Steps, Step{Call: ToolCall{Tool: "get_schema"}, Observation: accessibleSchema()})
	d := decide(t, m, st)
	if len(d.Calls) != 1 || d.Calls[0].Tool != "get_value" {
		t.Fatalf("value-dependent task should call get_value, got %+v", d)
	}
}

func TestModularHierarchicalSchemaFetchesObjects(t *testing.T) {
	m := NewSim(GPT4o(), 1)
	st := &State{Task: readTask(), Tools: bridgeTools("select")}
	st.Steps = append(st.Steps, Step{
		Call:        ToolCall{Tool: "get_schema"},
		Observation: "The database has 30 objects. Call get_object(name) for details.\n- items (table, accessible)\n",
	})
	d := decide(t, m, st)
	if len(d.Calls) != 1 || d.Calls[0].Tool != "get_object" {
		t.Fatalf("hierarchical schema should trigger get_object, got %+v", d)
	}
}

func TestGenericDiscoversPrivilegeViolationLate(t *testing.T) {
	m := NewSim(Claude4(), 1)
	tools := []mcp.ToolInfo{{Name: "get_schema"}, {Name: "execute_sql"}}
	st := &State{Task: writeTask(), Tools: tools}
	// Turn 1: schema.
	d := decide(t, m, st)
	if d.Calls[0].Tool != "get_schema" {
		t.Fatalf("generic flow should retrieve schema, got %+v", d)
	}
	st.Steps = append(st.Steps, Step{Call: d.Calls[0], Observation: "CREATE TABLE items (\n  id INTEGER PRIMARY KEY\n);"})
	// Turn 2: it tries the write (no privilege info available).
	d = decide(t, m, st)
	if d.Abort || len(d.Calls) == 0 || d.Calls[len(d.Calls)-1].Tool != "execute_sql" {
		t.Fatalf("generic flow should attempt the write, got %+v", d)
	}
	st.Steps = append(st.Steps, Step{
		Call:        d.Calls[len(d.Calls)-1],
		Observation: `ERROR: permission denied: user "u" may not INSERT on "items"`,
		IsError:     true,
	})
	// Turn 3+: eventually aborts (possibly after one stubborn retry).
	d = decide(t, m, st)
	if !d.Abort {
		st.Steps = append(st.Steps, Step{
			Call:        d.Calls[len(d.Calls)-1],
			Observation: `ERROR: permission denied: user "u" may not INSERT on "items"`,
			IsError:     true,
		})
		d = decide(t, m, st)
		if !d.Abort {
			t.Fatalf("generic flow must abort after repeated denials, got %+v", d)
		}
	}
}

func TestPipelineProxySpecLevels(t *testing.T) {
	m := NewSim(Claude4(), 1)
	mk := func(level int) *task.Task {
		p := &task.Pipeline{
			Level:       level,
			DataSQL:     "SELECT a, b, y FROM house",
			FeatureCols: []string{"a", "b"},
			TargetCol:   "y",
			Normalize:   level >= 2,
			ModelTool:   "train_linear_regression",
		}
		if level == 3 {
			p.Predict = true
			p.PredictSQL = "SELECT a, b FROM house LIMIT 5"
		}
		return &task.Task{ID: "ml", NL: "train", Kind: task.Read, Tables: []string{"house"}, Pipeline: p}
	}
	for level := 1; level <= 3; level++ {
		st := &State{Task: mk(level), Tools: bridgeTools("select")}
		st.Steps = append(st.Steps, Step{Call: ToolCall{Tool: "get_schema"}, Observation: accessibleSchema()})
		st.Steps = append(st.Steps, Step{Call: ToolCall{Tool: "get_object"}, Observation: "CREATE TABLE house (...)"})
		d := decide(t, m, st)
		if len(d.Calls) != 1 || d.Calls[0].Tool != "proxy" {
			t.Fatalf("level %d: expected proxy call, got %+v", level, d)
		}
		spec := d.Calls[0].Args
		depth := proxyDepth(spec["tool_args"])
		if depth != level {
			t.Fatalf("level %d: proxy nesting depth = %d", level, depth)
		}
	}
}

// proxyDepth measures the deepest chain of __tool__ specs.
func proxyDepth(v any) int {
	max := 0
	if m, ok := v.(map[string]any); ok {
		for k, child := range m {
			d := proxyDepth(child)
			if k == "__tool__" && d == 0 {
				d = 0
			}
			if d > max {
				max = d
			}
		}
		if _, isProducer := m["__tool__"]; isProducer {
			inner := proxyDepth(m["__args__"])
			if inner+1 > max {
				max = inner + 1
			}
		}
	}
	return max
}

func TestDeterministicDraws(t *testing.T) {
	a := draw(1, "task-1", "txn")
	b := draw(1, "task-1", "txn")
	if a != b {
		t.Fatal("draws must be deterministic")
	}
	if draw(1, "task-1", "txn") == draw(1, "task-2", "txn") &&
		draw(1, "task-1", "other") == draw(1, "task-1", "txn") {
		t.Fatal("draws should vary with task and key")
	}
	if a < 0 || a >= 1 {
		t.Fatalf("draw out of range: %v", a)
	}
}

func TestParseAccessBlock(t *testing.T) {
	obs := "-- Access: True, Permissions: SELECT, INSERT\nCREATE TABLE sales (\n  id INTEGER\n);\n\n" +
		"-- Access: False\nCREATE TABLE salaries (...);"
	acc, perms, found := parseAccessBlock(obs, "sales")
	if !found || !acc || !strings.Contains(perms, "INSERT") {
		t.Fatalf("sales parse wrong: %v %q %v", acc, perms, found)
	}
	acc, _, found = parseAccessBlock(obs, "salaries")
	if !found || acc {
		t.Fatalf("salaries should be found and inaccessible: %v %v", acc, found)
	}
	// "sales" must not match "salesX" blocks.
	_, _, found = parseAccessBlock("CREATE TABLE salesx (\n);", "sales")
	if found {
		t.Fatal("word-boundary matching failed")
	}
	if _, _, found := parseAccessBlock(obs, "missing"); found {
		t.Fatal("missing table reported found")
	}
}

func TestPermsAllow(t *testing.T) {
	if !permsAllow("ALL", task.Delete) || !permsAllow("SELECT, INSERT", task.Insert) {
		t.Fatal("permsAllow false negatives")
	}
	if permsAllow("SELECT", task.Update) || permsAllow("", task.Read) {
		t.Fatal("permsAllow false positives")
	}
}

func TestDecisionRender(t *testing.T) {
	d := &Decision{
		Thought: "thinking",
		Calls:   []ToolCall{{Tool: "select", Args: map[string]any{"sql": "SELECT 1"}}},
	}
	r := d.Render()
	if !strings.Contains(r, "thinking") || !strings.Contains(r, "SELECT 1") {
		t.Fatalf("render incomplete: %q", r)
	}
}
