// Package textsim implements lightweight lexical-semantic similarity for the
// get_value exemplar tool (paper §2.2): given a task-specific key such as
// "women", it ranks a column's domain values so the LLM sees "women" before
// "women's wear" or "menswear". It combines character-trigram cosine
// similarity, normalized edit distance, and token overlap — an offline
// stand-in for embedding similarity that preserves the ranking behaviour
// the tool needs.
package textsim

import (
	"sort"
	"strings"
)

// Match is one ranked candidate.
type Match struct {
	Value string
	Score float64
}

// Score returns a similarity in [0, 1]; higher is more similar. It is
// symmetric and case-insensitive.
func Score(a, b string) float64 {
	a = normalize(a)
	b = normalize(b)
	if a == b {
		return 1
	}
	if a == "" || b == "" {
		return 0
	}
	tri := trigramCosine(a, b)
	ed := 1 - float64(editDistance(a, b))/float64(max(len(a), len(b)))
	tok := tokenOverlap(a, b)
	// Containment bumps the score: "women" vs "women's wear".
	contain := 0.0
	if strings.Contains(a, b) || strings.Contains(b, a) {
		contain = 0.35
	}
	s := 0.4*tri + 0.25*ed + 0.25*tok + contain
	if s > 1 {
		s = 1
	}
	return s
}

// TopK ranks candidates by similarity to key and returns the best k
// (all of them when k <= 0). Ties break lexicographically for determinism.
func TopK(key string, candidates []string, k int) []Match {
	out := make([]Match, 0, len(candidates))
	for _, c := range candidates {
		out = append(out, Match{Value: c, Score: Score(key, c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Value < out[j].Value
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

func trigrams(s string) map[string]int {
	padded := "  " + s + " "
	out := map[string]int{}
	for i := 0; i+3 <= len(padded); i++ {
		out[padded[i:i+3]]++
	}
	return out
}

func trigramCosine(a, b string) float64 {
	ta, tb := trigrams(a), trigrams(b)
	dot, na, nb := 0, 0, 0
	for g, ca := range ta {
		na += ca * ca
		if cb, ok := tb[g]; ok {
			dot += ca * cb
		}
	}
	for _, cb := range tb {
		nb += cb * cb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(dot) / (sqrtf(float64(na)) * sqrtf(float64(nb)))
}

func sqrtf(x float64) float64 {
	// Newton iterations are plenty for similarity scoring.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func tokenOverlap(a, b string) float64 {
	ta := strings.FieldsFunc(a, isSep)
	tb := strings.FieldsFunc(b, isSep)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := map[string]bool{}
	for _, t := range ta {
		set[t] = true
	}
	common := 0
	for _, t := range tb {
		if set[t] {
			common++
		}
	}
	den := len(ta)
	if len(tb) > den {
		den = len(tb)
	}
	return float64(common) / float64(den)
}

func isSep(r rune) bool {
	return r == ' ' || r == '_' || r == '-' || r == '\'' || r == '.' || r == ','
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
