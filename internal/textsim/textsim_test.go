package textsim

import (
	"testing"
	"testing/quick"
)

func TestScoreIdentity(t *testing.T) {
	for _, s := range []string{"women", "a", "hello world", "WOMEN"} {
		if got := Score(s, s); got != 1 {
			t.Fatalf("Score(%q, %q) = %v, want 1", s, s, got)
		}
	}
	if Score("Women", "women") != 1 {
		t.Fatal("scoring must be case-insensitive")
	}
}

func TestScoreRankingIntuition(t *testing.T) {
	// "women" should match "women's wear" better than "men" does.
	if Score("women's wear", "women") <= Score("women's wear", "men") {
		t.Fatal("containment should beat shorter overlap")
	}
	if Score("wrong sizing", "wrong size") <= Score("wrong sizing", "damaged") {
		t.Fatal("near-duplicate should beat unrelated")
	}
	if Score("frozen status", "frozen") <= Score("frozen status", "active") {
		t.Fatal("prefix value should beat unrelated value")
	}
}

func TestScoreBoundsAndSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		s1 := Score(a, b)
		s2 := Score(b, a)
		if s1 < 0 || s1 > 1 {
			return false
		}
		diff := s1 - s2
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	candidates := []string{"men", "women", "kids", "shoes", "accessories"}
	top := TopK("women's wear", candidates, 2)
	if len(top) != 2 {
		t.Fatalf("want 2 results, got %d", len(top))
	}
	if top[0].Value != "women" {
		t.Fatalf("best match should be women, got %q", top[0].Value)
	}
	all := TopK("women", candidates, 0)
	if len(all) != len(candidates) {
		t.Fatalf("k<=0 should return all, got %d", len(all))
	}
	// Deterministic order under ties.
	again := TopK("women", candidates, 0)
	for i := range all {
		if all[i] != again[i] {
			t.Fatal("TopK is not deterministic")
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
