// Package tokens provides the token-count approximation and accounting used
// for every cost metric in the experiments (Table 1, Table 2, and the
// idealized-transfer estimate in §3.4 of the paper).
//
// Real GPT/Claude tokenizers are unavailable offline, so Count uses the
// standard approximation blending word count and character count. All
// comparisons in the paper are relative (BridgeScope vs PG-MCP under the
// same tokenizer), so the approximation preserves every reported shape.
package tokens

import (
	"sync"
	"unicode"
)

// Count estimates the number of LLM tokens in s. The estimate is
// max(words*4/3, chars/4): prose tokenizes near 0.75 words/token and dense
// numeric or code text near 4 chars/token.
func Count(s string) int {
	if s == "" {
		return 0
	}
	words := 0
	inWord := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			inWord = false
			continue
		}
		if !inWord {
			words++
			inWord = true
		}
		// Punctuation usually splits into its own token.
		if unicode.IsPunct(r) || unicode.IsSymbol(r) {
			words++
		}
	}
	byWords := words * 4 / 3
	byChars := len(s) / 4
	if byWords > byChars {
		return byWords
	}
	if byChars == 0 {
		return 1
	}
	return byChars
}

// Meter accumulates prompt and completion token counts for one agent run.
// It is safe for concurrent use.
type Meter struct {
	mu         sync.Mutex
	prompt     int
	completion int
	calls      int
}

// AddCall records one LLM invocation with its prompt and completion sizes.
func (m *Meter) AddCall(promptTokens, completionTokens int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	m.prompt += promptTokens
	m.completion += completionTokens
}

// Calls returns the number of LLM invocations recorded.
func (m *Meter) Calls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// Prompt returns the accumulated prompt tokens.
func (m *Meter) Prompt() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.prompt
}

// Completion returns the accumulated completion tokens.
func (m *Meter) Completion() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.completion
}

// Total returns prompt + completion tokens.
func (m *Meter) Total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.prompt + m.completion
}
