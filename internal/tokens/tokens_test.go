package tokens

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountBasics(t *testing.T) {
	if Count("") != 0 {
		t.Fatal("empty string must count 0")
	}
	if Count("a") < 1 {
		t.Fatal("non-empty string must count at least 1")
	}
	prose := Count("the quick brown fox jumps over the lazy dog")
	if prose < 9 || prose > 20 {
		t.Fatalf("prose estimate out of range: %d", prose)
	}
	dense := Count(strings.Repeat("0.123456789|", 100))
	if dense < 200 {
		t.Fatalf("dense numeric text should cost many tokens, got %d", dense)
	}
}

func TestCountScalesWithLength(t *testing.T) {
	small := Count(strings.Repeat("word ", 100))
	big := Count(strings.Repeat("word ", 10000))
	if big < 50*small {
		t.Fatalf("count should scale roughly linearly: %d vs %d", small, big)
	}
}

func TestCountNonNegativeProperty(t *testing.T) {
	f := func(s string) bool { return Count(s) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountSuperadditiveProperty(t *testing.T) {
	// Concatenation should never count fewer tokens than the longer part.
	f := func(a, b string) bool {
		c := Count(a + b)
		return c >= Count(a) && c >= Count(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.AddCall(100, 10)
	m.AddCall(200, 20)
	if m.Calls() != 2 || m.Prompt() != 300 || m.Completion() != 30 || m.Total() != 330 {
		t.Fatalf("meter wrong: %d %d %d %d", m.Calls(), m.Prompt(), m.Completion(), m.Total())
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				m.AddCall(1, 1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if m.Calls() != 800 || m.Total() != 1600 {
		t.Fatalf("concurrent meter lost updates: %d calls, %d total", m.Calls(), m.Total())
	}
}
