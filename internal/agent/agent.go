// Package agent implements the ReAct loop (reason → act → observe) that
// drives a Model against an MCP tool server, with full token accounting and
// context-window enforcement. It is the prototype general-purpose agent of
// the paper's §3.1, shared by every experiment.
package agent

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"bridgescope/internal/llm"
	"bridgescope/internal/mcp"
	"bridgescope/internal/task"
	"bridgescope/internal/tokens"
)

// Metrics captures everything the experiments measure about one run.
type Metrics struct {
	TaskID string
	Model  string

	LLMCalls         int
	PromptTokens     int
	CompletionTokens int
	ToolCalls        int

	Completed        bool // reached a Final answer
	Aborted          bool // model declared the task infeasible/failed
	AbortReason      string
	ContextExhausted bool // prompt outgrew the context window
	TurnLimit        bool // hit MaxTurns without finishing

	TransactionUsed bool   // a transaction was opened during the run
	FinalAnswer     string // the model's final message
	LastQueryResult string // last successful SELECT observation (read scoring)
}

// TotalTokens returns prompt + completion tokens.
func (m *Metrics) TotalTokens() int { return m.PromptTokens + m.CompletionTokens }

// ToolClient is the tool-server interface the agent drives. *mcp.Client
// implements it; wrappers (tracing, fault injection) can too.
type ToolClient interface {
	ListTools(ctx context.Context) ([]mcp.ToolInfo, error)
	CallTool(ctx context.Context, name string, args map[string]any) (mcp.CallResult, error)
}

// Agent binds a model to a tool server.
type Agent struct {
	Model        llm.Model
	Client       ToolClient
	SystemPrompt string
	// MaxTurns bounds the ReAct loop; 0 means the default of 16.
	MaxTurns int
}

// Run executes one task to completion, abort, or failure.
func (a *Agent) Run(ctx context.Context, t *task.Task) (*Metrics, error) {
	maxTurns := a.MaxTurns
	if maxTurns == 0 {
		maxTurns = 16
	}
	tools, err := a.Client.ListTools(ctx)
	if err != nil {
		return nil, fmt.Errorf("agent: listing tools: %w", err)
	}
	st := &llm.State{Task: t, SystemPrompt: a.SystemPrompt, Tools: tools}
	met := &Metrics{TaskID: t.ID, Model: a.Model.Name()}

	// The static prompt prefix: system prompt, tool list, task text.
	baseTokens := tokens.Count(a.SystemPrompt) + tokens.Count(renderTools(tools)) + tokens.Count(t.NL)
	historyTokens := 0

	for turn := 0; turn < maxTurns; turn++ {
		promptTokens := baseTokens + historyTokens
		if promptTokens > a.Model.ContextWindow() {
			// The conversation no longer fits: the run fails. This is the
			// failure mode that gives PG-MCP a 0.0 completion rate on
			// NL2ML (paper Table 2).
			met.ContextExhausted = true
			return met, nil
		}
		d, err := a.Model.Decide(st)
		if err != nil {
			return nil, fmt.Errorf("agent: model decision: %w", err)
		}
		met.LLMCalls++
		met.PromptTokens += promptTokens
		met.CompletionTokens += tokens.Count(d.Render())

		if d.Abort {
			met.Aborted = true
			met.AbortReason = d.AbortReason
			return met, nil
		}
		if d.Final != "" {
			met.Completed = true
			met.FinalAnswer = d.Final
			return met, nil
		}
		if len(d.Calls) == 0 {
			return nil, fmt.Errorf("agent: model produced an empty decision")
		}
		for _, call := range d.Calls {
			res, err := a.Client.CallTool(ctx, call.Tool, call.Args)
			if err != nil {
				// Protocol-level failure (unknown tool etc.) surfaces as an
				// error observation the model can react to.
				res = mcp.CallResult{Text: "ERROR: " + err.Error(), IsErr: true}
			}
			argsText := renderArgs(call.Args)
			step := llm.Step{Call: call, ArgsText: argsText, Observation: res.Text, IsError: res.IsErr}
			st.Steps = append(st.Steps, step)
			met.ToolCalls++
			historyTokens += tokens.Count(call.Tool) + tokens.Count(argsText) + tokens.Count(res.Text)

			if isTransactionOpen(call) {
				met.TransactionUsed = true
			}
			if !res.IsErr && isSelectCall(call) {
				met.LastQueryResult = res.Text
			}
			if res.IsErr {
				// Stop the batch; the model reacts to the error next turn.
				break
			}
		}
	}
	met.TurnLimit = true
	return met, nil
}

func renderArgs(args map[string]any) string {
	if len(args) == 0 {
		return "{}"
	}
	raw, err := json.Marshal(args)
	if err != nil {
		return fmt.Sprintf("%v", args)
	}
	return string(raw)
}

func renderTools(tools []mcp.ToolInfo) string {
	raw, err := json.Marshal(tools)
	if err != nil {
		return ""
	}
	return string(raw)
}

func isTransactionOpen(call llm.ToolCall) bool {
	if call.Tool == "begin" {
		return true
	}
	if call.Tool == "execute_sql" {
		if sql, ok := call.Args["sql"].(string); ok {
			return strings.EqualFold(strings.TrimSpace(strings.Fields(sql + " ")[0]), "BEGIN")
		}
	}
	return false
}

func isSelectCall(call llm.ToolCall) bool {
	if call.Tool == "select" {
		return true
	}
	if call.Tool == "execute_sql" {
		if sql, ok := call.Args["sql"].(string); ok {
			f := strings.Fields(sql)
			return len(f) > 0 && strings.EqualFold(f[0], "SELECT")
		}
	}
	return false
}
