package agent

import (
	"context"
	"strings"
	"testing"

	"bridgescope/internal/llm"
	"bridgescope/internal/mcp"
	"bridgescope/internal/task"
)

// scriptedModel replays a fixed decision sequence.
type scriptedModel struct {
	name      string
	window    int
	decisions []*llm.Decision
	step      int
}

func (m *scriptedModel) Name() string       { return m.name }
func (m *scriptedModel) ContextWindow() int { return m.window }
func (m *scriptedModel) Decide(st *llm.State) (*llm.Decision, error) {
	if m.step >= len(m.decisions) {
		return &llm.Decision{Final: "done"}, nil
	}
	d := m.decisions[m.step]
	m.step++
	return d, nil
}

func echoClient() *mcp.Client {
	reg := mcp.NewRegistry()
	reg.Register(&mcp.Tool{
		Name: "echo",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			msg, _ := args["msg"].(string)
			return "echo:" + msg, nil
		},
	})
	reg.Register(&mcp.Tool{
		Name: "big",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			return strings.Repeat("data ", 20000), nil // ~25k tokens
		},
	})
	reg.Register(&mcp.Tool{Name: "begin",
		Handler: func(ctx context.Context, args map[string]any) (any, error) { return "BEGIN", nil }})
	return mcp.NewClient(mcp.NewServer(reg))
}

func testTask() *task.Task {
	return &task.Task{ID: "t", NL: "do the thing", Kind: task.Read}
}

func TestAgentRunsToFinal(t *testing.T) {
	model := &scriptedModel{name: "m", window: 100000, decisions: []*llm.Decision{
		{Thought: "call echo", Calls: []llm.ToolCall{{Tool: "echo", Args: map[string]any{"msg": "hi"}}}},
		{Thought: "finish", Final: "all done"},
	}}
	a := &Agent{Model: model, Client: echoClient(), SystemPrompt: "sys"}
	met, err := a.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if !met.Completed || met.FinalAnswer != "all done" {
		t.Fatalf("run did not complete: %+v", met)
	}
	if met.LLMCalls != 2 || met.ToolCalls != 1 {
		t.Fatalf("call counts wrong: %+v", met)
	}
	if met.PromptTokens == 0 || met.CompletionTokens == 0 {
		t.Fatalf("token accounting missing: %+v", met)
	}
}

func TestAgentAbort(t *testing.T) {
	model := &scriptedModel{name: "m", window: 100000, decisions: []*llm.Decision{
		{Thought: "cannot do this", Abort: true, AbortReason: "infeasible"},
	}}
	a := &Agent{Model: model, Client: echoClient(), SystemPrompt: "sys"}
	met, err := a.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if !met.Aborted || met.AbortReason != "infeasible" || met.Completed {
		t.Fatalf("abort not recorded: %+v", met)
	}
	if met.LLMCalls != 1 {
		t.Fatalf("abort should cost exactly one call: %+v", met)
	}
}

func TestAgentContextExhaustion(t *testing.T) {
	model := &scriptedModel{name: "m", window: 5000, decisions: []*llm.Decision{
		{Thought: "fetch", Calls: []llm.ToolCall{{Tool: "big"}}},
		{Thought: "never reached", Final: "x"},
	}}
	a := &Agent{Model: model, Client: echoClient(), SystemPrompt: "sys"}
	met, err := a.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if !met.ContextExhausted || met.Completed {
		t.Fatalf("context exhaustion not detected: %+v", met)
	}
	// The failing call is never issued.
	if met.LLMCalls != 1 {
		t.Fatalf("LLM calls after exhaustion: %+v", met)
	}
}

func TestAgentTransactionDetection(t *testing.T) {
	model := &scriptedModel{name: "m", window: 100000, decisions: []*llm.Decision{
		{Calls: []llm.ToolCall{{Tool: "begin"}}},
		{Final: "done"},
	}}
	a := &Agent{Model: model, Client: echoClient()}
	met, err := a.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if !met.TransactionUsed {
		t.Fatalf("begin tool not detected: %+v", met)
	}
	// Via execute_sql BEGIN too.
	reg := mcp.NewRegistry()
	reg.Register(&mcp.Tool{Name: "execute_sql",
		Handler: func(ctx context.Context, args map[string]any) (any, error) { return "BEGIN", nil }})
	model2 := &scriptedModel{name: "m", window: 100000, decisions: []*llm.Decision{
		{Calls: []llm.ToolCall{{Tool: "execute_sql", Args: map[string]any{"sql": "BEGIN"}}}},
		{Final: "done"},
	}}
	a2 := &Agent{Model: model2, Client: mcp.NewClient(mcp.NewServer(reg))}
	met2, err := a2.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if !met2.TransactionUsed {
		t.Fatalf("execute_sql BEGIN not detected: %+v", met2)
	}
}

func TestAgentStopsBatchOnError(t *testing.T) {
	reg := mcp.NewRegistry()
	var calls []string
	handler := func(name string) mcp.Handler {
		return func(ctx context.Context, args map[string]any) (any, error) {
			calls = append(calls, name)
			if name == "bad" {
				return mcp.CallResult{Text: "ERROR: nope", IsErr: true}, nil
			}
			return "ok", nil
		}
	}
	reg.Register(&mcp.Tool{Name: "good", Handler: handler("good")})
	reg.Register(&mcp.Tool{Name: "bad", Handler: handler("bad")})
	reg.Register(&mcp.Tool{Name: "after", Handler: handler("after")})
	model := &scriptedModel{name: "m", window: 100000, decisions: []*llm.Decision{
		{Calls: []llm.ToolCall{{Tool: "good"}, {Tool: "bad"}, {Tool: "after"}}},
		{Final: "done"},
	}}
	a := &Agent{Model: model, Client: mcp.NewClient(mcp.NewServer(reg))}
	met, err := a.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[1] != "bad" {
		t.Fatalf("batch should stop at the failing call, got %v", calls)
	}
	if met.ToolCalls != 2 {
		t.Fatalf("tool call count wrong: %+v", met)
	}
}

func TestAgentTurnLimit(t *testing.T) {
	// A model that loops forever.
	loop := &loopingModel{}
	a := &Agent{Model: loop, Client: echoClient(), MaxTurns: 4}
	met, err := a.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if !met.TurnLimit || met.LLMCalls != 4 {
		t.Fatalf("turn limit not enforced: %+v", met)
	}
}

type loopingModel struct{}

func (loopingModel) Name() string       { return "loop" }
func (loopingModel) ContextWindow() int { return 1 << 30 }
func (loopingModel) Decide(*llm.State) (*llm.Decision, error) {
	return &llm.Decision{Calls: []llm.ToolCall{{Tool: "echo", Args: map[string]any{"msg": "again"}}}}, nil
}

func TestAgentUnknownToolBecomesErrorObservation(t *testing.T) {
	model := &scriptedModel{name: "m", window: 100000, decisions: []*llm.Decision{
		{Calls: []llm.ToolCall{{Tool: "missing"}}},
		{Final: "done"},
	}}
	a := &Agent{Model: model, Client: echoClient()}
	met, err := a.Run(context.Background(), testTask())
	if err != nil {
		t.Fatal(err)
	}
	if !met.Completed {
		t.Fatalf("run should continue past unknown tool: %+v", met)
	}
}
