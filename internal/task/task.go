// Package task defines the benchmark task model shared by the agent, the
// LLM simulator, and the two benchmarks (BIRD-Ext and NL2ML).
//
// A Task carries the natural-language request plus the ground truth a
// competent model would produce: the gold SQL, the corrupted variants a
// hallucinating model produces when it skipped context retrieval, and the
// verification query the harness uses to score correctness. The LLM
// simulator chooses between these variants according to its behavioural
// profile; the database execution itself is always real.
package task

// Kind classifies a task by its primary database action.
type Kind int

// Task kinds.
const (
	Read Kind = iota
	Insert
	Update
	Delete
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Delete:
		return "delete"
	}
	return "unknown"
}

// IsWrite reports whether the task modifies the database.
func (k Kind) IsWrite() bool { return k != Read }

// Task is one benchmark item.
type Task struct {
	ID   string
	NL   string // natural-language request
	Kind Kind

	// Tables the task touches (used for privilege feasibility).
	Tables []string

	// GoldSQL is the correct statement sequence (multiple statements for
	// composite write tasks, which therefore require a transaction).
	GoldSQL []string

	// CorruptIdentSQL mirrors GoldSQL with hallucinated identifiers
	// (mis-remembered column/table names). Executing it raises an engine
	// error — the "futile retry" path of §3.2(1).
	CorruptIdentSQL []string

	// WrongValueSQL mirrors GoldSQL with a plausible but wrong text
	// predicate value (e.g. category = 'women''s wear' instead of
	// 'women'). It executes without error but returns an empty or wrong
	// result — the exemplar-hallucination path of §2.2.
	WrongValueSQL []string

	// SemanticWrongSQL mirrors GoldSQL with subtly wrong logic (dropped
	// condition). It models residual SQL-generation mistakes that no
	// context retrieval fixes; both toolkits suffer it equally (Fig 5b).
	SemanticWrongSQL []string

	// NeedsValue marks tasks whose predicates depend on knowing actual
	// column values; ValueTable/ValueColumn/ValueKey parameterize the
	// get_value call that resolves them.
	NeedsValue  bool
	ValueTable  string
	ValueColumn string
	ValueKey    string

	// VerifySQL + Expected check post-run database state for write tasks.
	// For read tasks the harness compares the agent's answer against the
	// gold result computed before the run.
	VerifySQL string
	Expected  string

	// Pipeline is set for NL2ML tasks; nil for BIRD-Ext.
	Pipeline *Pipeline
}

// Pipeline describes an NL2ML data-intensive workflow: extract data from
// the database, optionally process it, train a model, and optionally
// predict. Level is the proxy-unit nesting depth from the paper's §3.1:
// 1 = query+train, 2 = +processing, 3 = +prediction.
type Pipeline struct {
	Level int

	// DataSQL extracts the training data (feature columns then target
	// column, in that order).
	DataSQL     string
	FeatureCols []string
	TargetCol   string

	// Normalize inserts a z-score normalization stage (level >= 2).
	Normalize bool

	// ModelTool is the training tool: "train_linear_regression" or
	// "train_random_forest".
	ModelTool string

	// Predict adds a prediction stage over PredictSQL rows (level 3).
	Predict    bool
	PredictSQL string
}

// MultiStatement reports whether the task executes more than one SQL
// statement and therefore needs explicit transaction management for
// atomicity.
func (t *Task) MultiStatement() bool { return len(t.GoldSQL) > 1 }
