package task

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Read:     "read",
		Insert:   "insert",
		Update:   "update",
		Delete:   "delete",
		Kind(42): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKindIsWrite(t *testing.T) {
	if Read.IsWrite() {
		t.Error("read tasks must not count as writes")
	}
	for _, k := range []Kind{Insert, Update, Delete} {
		if !k.IsWrite() {
			t.Errorf("%s must count as a write", k)
		}
	}
}

func TestMultiStatement(t *testing.T) {
	single := &Task{GoldSQL: []string{"SELECT 1"}}
	if single.MultiStatement() {
		t.Error("one statement is not multi-statement")
	}
	composite := &Task{GoldSQL: []string{"INSERT INTO a VALUES (1)", "DELETE FROM b"}}
	if !composite.MultiStatement() {
		t.Error("two statements require transaction management")
	}
	empty := &Task{}
	if empty.MultiStatement() {
		t.Error("no statements is not multi-statement")
	}
}

func TestCorruptVariantsMirrorGold(t *testing.T) {
	// The simulator swaps variants positionally; a task whose variants
	// drift out of step with GoldSQL would corrupt the benchmark, so the
	// invariant is worth pinning.
	tk := &Task{
		GoldSQL:          []string{"a", "b"},
		CorruptIdentSQL:  []string{"a'", "b'"},
		WrongValueSQL:    []string{"a*", "b*"},
		SemanticWrongSQL: []string{"a~", "b~"},
	}
	for name, v := range map[string][]string{
		"CorruptIdentSQL":  tk.CorruptIdentSQL,
		"WrongValueSQL":    tk.WrongValueSQL,
		"SemanticWrongSQL": tk.SemanticWrongSQL,
	} {
		if len(v) != len(tk.GoldSQL) {
			t.Errorf("%s has %d statements, gold has %d", name, len(v), len(tk.GoldSQL))
		}
	}
}
