// Package mcp implements the tool-protocol substrate: a model-context-
// protocol-style registry of tools with JSON-RPC request/response envelopes
// over an in-memory transport.
//
// Every argument and result crosses a JSON serialization boundary exactly as
// it would over a real MCP connection, so payload sizes — the quantity the
// paper's token accounting measures — are faithful.
package mcp

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Handler executes a tool call. Results are marshaled to JSON; returning a
// string yields a plain-text content payload.
type Handler func(ctx context.Context, args map[string]any) (any, error)

// Tool is one callable tool with its JSON-schema-style input description.
type Tool struct {
	Name        string
	Description string
	InputSchema map[string]any
	Handler     Handler
}

// ToolInfo is the wire-visible description of a tool (what an LLM sees in
// its tool list).
type ToolInfo struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	InputSchema map[string]any `json:"inputSchema,omitempty"`
}

// Registry holds the tools a server exposes. It preserves registration
// order so tool lists render deterministically.
type Registry struct {
	mu    sync.RWMutex
	tools map[string]*Tool
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tools: map[string]*Tool{}}
}

// Register adds a tool; re-registering a name replaces it in place.
func (r *Registry) Register(t *Tool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.tools[t.Name]; !exists {
		r.order = append(r.order, t.Name)
	}
	r.tools[t.Name] = t
}

// Unregister removes a tool by name.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.tools[name]; !exists {
		return
	}
	delete(r.tools, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Get returns a tool by name.
func (r *Registry) Get(name string) (*Tool, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tools[name]
	return t, ok
}

// List returns tool descriptions in registration order.
func (r *Registry) List() []ToolInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ToolInfo, 0, len(r.order))
	for _, n := range r.order {
		t := r.tools[n]
		out = append(out, ToolInfo{Name: t.Name, Description: t.Description, InputSchema: t.InputSchema})
	}
	return out
}

// Names returns the registered tool names sorted alphabetically.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string{}, r.order...)
	sort.Strings(out)
	return out
}

// --- JSON-RPC style envelopes ---

// Request is a JSON-RPC 2.0 request.
type Request struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// Response is a JSON-RPC 2.0 response.
type Response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *RPCError       `json:"error,omitempty"`
}

// RPCError is a JSON-RPC error object.
type RPCError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *RPCError) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Message) }

// JSON-RPC error codes used by the server.
const (
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeToolError      = -32000
)

type callParams struct {
	Name      string         `json:"name"`
	Arguments map[string]any `json:"arguments"`
}

// CallResult is the result payload of tools/call. Text carries the rendered
// content shown to the LLM; Data carries the structured payload for
// tool-to-tool transfer (what the proxy mechanism forwards without LLM
// involvement).
type CallResult struct {
	Text  string          `json:"text"`
	Data  json.RawMessage `json:"data,omitempty"`
	IsErr bool            `json:"isError,omitempty"`
}

// Server dispatches JSON-RPC requests against a registry.
type Server struct {
	Registry *Registry
}

// NewServer wraps a registry.
func NewServer(r *Registry) *Server { return &Server{Registry: r} }

// Handle processes one request.
func (s *Server) Handle(ctx context.Context, req *Request) *Response {
	resp := &Response{JSONRPC: "2.0", ID: req.ID}
	switch req.Method {
	case "tools/list":
		list := s.Registry.List()
		raw, err := json.Marshal(list)
		if err != nil {
			resp.Error = &RPCError{Code: CodeToolError, Message: err.Error()}
			return resp
		}
		resp.Result = raw
		return resp
	case "tools/call":
		var params callParams
		if err := json.Unmarshal(req.Params, &params); err != nil {
			resp.Error = &RPCError{Code: CodeInvalidParams, Message: err.Error()}
			return resp
		}
		tool, ok := s.Registry.Get(params.Name)
		if !ok {
			resp.Error = &RPCError{Code: CodeMethodNotFound, Message: fmt.Sprintf("unknown tool %q", params.Name)}
			return resp
		}
		out, err := tool.Handler(ctx, params.Arguments)
		if err != nil {
			// Tool-level failures are delivered as error content, like MCP
			// isError results: the LLM sees them and can react.
			raw, _ := json.Marshal(CallResult{Text: "ERROR: " + err.Error(), IsErr: true})
			resp.Result = raw
			return resp
		}
		cr, err := renderResult(out)
		if err != nil {
			resp.Error = &RPCError{Code: CodeToolError, Message: err.Error()}
			return resp
		}
		raw, err := json.Marshal(cr)
		if err != nil {
			resp.Error = &RPCError{Code: CodeToolError, Message: err.Error()}
			return resp
		}
		resp.Result = raw
		return resp
	}
	resp.Error = &RPCError{Code: CodeMethodNotFound, Message: fmt.Sprintf("unknown method %q", req.Method)}
	return resp
}

func renderResult(out any) (CallResult, error) {
	switch v := out.(type) {
	case nil:
		return CallResult{Text: "OK"}, nil
	case string:
		return CallResult{Text: v}, nil
	case CallResult:
		return v, nil
	default:
		raw, err := json.Marshal(v)
		if err != nil {
			return CallResult{}, fmt.Errorf("tool result not serializable: %w", err)
		}
		return CallResult{Text: string(raw), Data: raw}, nil
	}
}

// Client issues requests to an in-process server through the same JSON
// envelope a remote client would use.
type Client struct {
	srv    *Server
	mu     sync.Mutex
	nextID int64
}

// NewClient connects a client to a server.
func NewClient(srv *Server) *Client { return &Client{srv: srv} }

// Registry exposes the server's registry (used by the proxy tool, which is
// itself a tool that must call sibling tools directly).
func (c *Client) Registry() *Registry { return c.srv.Registry }

func (c *Client) roundTrip(ctx context.Context, method string, params any) (json.RawMessage, error) {
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	req := &Request{JSONRPC: "2.0", ID: id, Method: method, Params: raw}
	// Serialize and re-parse the request to honor the wire boundary.
	wire, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var decoded Request
	if err := json.Unmarshal(wire, &decoded); err != nil {
		return nil, err
	}
	resp := c.srv.Handle(ctx, &decoded)
	if resp.Error != nil {
		return nil, resp.Error
	}
	return resp.Result, nil
}

// ListTools fetches the server's tool list.
func (c *Client) ListTools(ctx context.Context) ([]ToolInfo, error) {
	raw, err := c.roundTrip(ctx, "tools/list", nil)
	if err != nil {
		return nil, err
	}
	var out []ToolInfo
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CallTool invokes a tool and returns its result payload. Tool-level errors
// come back as CallResult{IsErr: true}, not as a Go error, mirroring MCP.
func (c *Client) CallTool(ctx context.Context, name string, args map[string]any) (CallResult, error) {
	raw, err := c.roundTrip(ctx, "tools/call", callParams{Name: name, Arguments: args})
	if err != nil {
		return CallResult{}, err
	}
	var out CallResult
	if err := json.Unmarshal(raw, &out); err != nil {
		return CallResult{}, err
	}
	return out, nil
}
