package mcp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Register(&Tool{
		Name:        "echo",
		Description: "echo back the message",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			msg, _ := args["message"].(string)
			return "echo: " + msg, nil
		},
	})
	reg.Register(&Tool{
		Name:        "add",
		Description: "add two numbers",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			a, _ := args["a"].(float64)
			b, _ := args["b"].(float64)
			return map[string]any{"sum": a + b}, nil
		},
	})
	reg.Register(&Tool{
		Name: "fail",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			return nil, errors.New("boom")
		},
	})
	return reg
}

func TestListTools(t *testing.T) {
	client := NewClient(NewServer(testRegistry()))
	tools, err := client.ListTools(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tools) != 3 || tools[0].Name != "echo" || tools[1].Name != "add" {
		t.Fatalf("unexpected tool list %v", tools)
	}
}

func TestCallToolText(t *testing.T) {
	client := NewClient(NewServer(testRegistry()))
	res, err := client.CallTool(context.Background(), "echo", map[string]any{"message": "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if res.IsErr || res.Text != "echo: hi" {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestCallToolStructured(t *testing.T) {
	client := NewClient(NewServer(testRegistry()))
	res, err := client.CallTool(context.Background(), "add", map[string]any{"a": 2.0, "b": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]float64
	if err := json.Unmarshal(res.Data, &out); err != nil {
		t.Fatal(err)
	}
	if out["sum"] != 5 {
		t.Fatalf("sum = %v", out["sum"])
	}
	if !strings.Contains(res.Text, `"sum":5`) {
		t.Fatalf("text payload missing: %q", res.Text)
	}
}

func TestToolErrorIsContent(t *testing.T) {
	client := NewClient(NewServer(testRegistry()))
	res, err := client.CallTool(context.Background(), "fail", nil)
	if err != nil {
		t.Fatalf("tool errors must be content, not transport errors: %v", err)
	}
	if !res.IsErr || !strings.Contains(res.Text, "boom") {
		t.Fatalf("unexpected error result %+v", res)
	}
}

func TestUnknownToolAndMethod(t *testing.T) {
	client := NewClient(NewServer(testRegistry()))
	_, err := client.CallTool(context.Background(), "nope", nil)
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeMethodNotFound {
		t.Fatalf("want method-not-found, got %v", err)
	}
	srv := NewServer(testRegistry())
	resp := srv.Handle(context.Background(), &Request{JSONRPC: "2.0", ID: 1, Method: "bogus"})
	if resp.Error == nil || resp.Error.Code != CodeMethodNotFound {
		t.Fatalf("unknown method must error, got %+v", resp)
	}
}

func TestArgumentsSurviveJSONBoundary(t *testing.T) {
	reg := NewRegistry()
	var got map[string]any
	reg.Register(&Tool{
		Name: "capture",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			got = args
			return "ok", nil
		},
	})
	client := NewClient(NewServer(reg))
	_, err := client.CallTool(context.Background(), "capture", map[string]any{
		"n":    int64(7), // ints become float64 over JSON
		"list": []string{"a", "b"},
		"deep": map[string]any{"x": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, isFloat := got["n"].(float64); !isFloat {
		t.Fatalf("int should arrive as float64 after the wire, got %T", got["n"])
	}
	if _, isSlice := got["list"].([]any); !isSlice {
		t.Fatalf("slice should arrive as []any, got %T", got["list"])
	}
	deep, _ := got["deep"].(map[string]any)
	if deep["x"] != true {
		t.Fatalf("nested map lost: %v", got["deep"])
	}
}

func TestRegistryUnregisterAndReplace(t *testing.T) {
	reg := testRegistry()
	reg.Unregister("echo")
	if _, ok := reg.Get("echo"); ok {
		t.Fatal("unregister failed")
	}
	if len(reg.List()) != 2 {
		t.Fatalf("list length %d after unregister", len(reg.List()))
	}
	// Replacement keeps position.
	reg.Register(&Tool{Name: "add", Description: "new desc", Handler: func(ctx context.Context, args map[string]any) (any, error) { return "x", nil }})
	if reg.List()[0].Description != "new desc" {
		t.Fatalf("replace failed: %+v", reg.List())
	}
}

func TestConcurrentCalls(t *testing.T) {
	client := NewClient(NewServer(testRegistry()))
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			res, err := client.CallTool(context.Background(), "echo",
				map[string]any{"message": fmt.Sprint(i)})
			if err == nil && res.Text != "echo: "+fmt.Sprint(i) {
				err = fmt.Errorf("wrong echo %q", res.Text)
			}
			done <- err
		}(i)
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
