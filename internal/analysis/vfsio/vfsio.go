// Package vfsio enforces invariant L7: durability-relevant file I/O goes
// through the vfs seam. The engine's crash story — FaultFS, the
// deterministic crash simulator, torn-write reconstruction — only covers
// writes that pass through vfs.FS; a direct os.Create in a storage path is
// invisible to fault injection, so its failure modes ship untested. This
// is exactly how the csvdb export bug hid: the engine's WAL was
// crash-safe while the CSV snapshot next to it was written with a bare
// os.Create.
//
// Write-side os calls (Create, CreateTemp, OpenFile, Rename, Remove,
// RemoveAll, Truncate, WriteFile, Mkdir, MkdirAll) are confined to the vfs
// package itself and to whitelisted cmd/ tools that operate on the user's
// files by design (the bench runner's workdirs, sqlvet's .vetx cache).
// Read-only calls (Open, ReadFile, ReadDir, Stat) are exempt: reads cannot
// tear, and the loaders that want fault coverage take a vfs.FS anyway.
package vfsio

import (
	"go/ast"
	"go/types"
	"strings"

	"bridgescope/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "vfsio",
	Doc: "flags write-side os file calls (Create, OpenFile, Rename, Remove, Truncate, WriteFile, ...) outside " +
		"the vfs package and whitelisted cmd tools; durability-relevant I/O must pass through vfs.FS so " +
		"fault injection covers it",
	Run: run,
}

// forbidden lists the write-side os entry points. Values explain what the
// seam equivalent is, for the diagnostic.
var forbidden = map[string]string{
	"os.Create":     "vfs.FS.OpenFile with vfs.O_CREATE|vfs.O_TRUNC",
	"os.CreateTemp": "vfs.FS.CreateTemp",
	"os.OpenFile":   "vfs.FS.OpenFile",
	"os.Rename":     "vfs.FS.Rename",
	"os.Remove":     "vfs.FS.Remove",
	"os.RemoveAll":  "vfs.FS.Remove per entry",
	"os.Truncate":   "vfs.FS.Truncate",
	"os.WriteFile":  "vfs.FS.OpenFile + Write + Sync",
	"os.Mkdir":      "vfs.FS.MkdirAll",
	"os.MkdirAll":   "vfs.FS.MkdirAll",
}

// allowedPkgs are package paths that own the seam or operate on user files
// by design.
var allowedPkgs = map[string]bool{
	"bridgescope/cmd/benchrunner": true, // workload dirs and fault corpora are its product
	"bridgescope/cmd/sqlvet":      true, // the .vetx fact cache is tool state, not database state
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	if allowedPkgs[path] || path == "vfs" || strings.HasSuffix(path, "/vfs") ||
		strings.HasPrefix(path, "bridgescope/examples/") {
		// examples/ are demo drivers that set up their own scratch files,
		// like the whitelisted cmd tools.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			full := fn.FullName()
			seam, bad := forbidden[full]
			if !bad {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s bypasses the vfs seam; use %s so fault injection and crash simulation cover this write",
				full, seam)
			return true
		})
	}
	return nil
}
