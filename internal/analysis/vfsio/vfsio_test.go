package vfsio_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/vfsio"
)

func TestVfsIO(t *testing.T) {
	analysistest.Run(t, vfsio.Analyzer, "vfsbad", "vfs")
}
