package vfs

import "os"

// The seam package itself is the one place allowed to touch os directly.
func create(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}

func rename(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath)
}
