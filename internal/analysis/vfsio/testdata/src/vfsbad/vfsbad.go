package vfsbad

import "os"

// export writes a snapshot with bare os calls — every write-side call is a
// hole in the crash story.
func export(dir string) error {
	f, err := os.Create(dir + "/snap.csv") // want `os\.Create bypasses the vfs seam`
	if err != nil {
		return err
	}
	if _, err := f.WriteString("a,b\n"); err != nil {
		f.Close()
		return err
	}
	f.Close()
	if err := os.Rename(dir+"/snap.csv", dir+"/final.csv"); err != nil { // want `os\.Rename bypasses the vfs seam`
		return err
	}
	return os.Remove(dir + "/snap.csv") // want `os\.Remove bypasses the vfs seam`
}

func rewrite(path string, data []byte) error {
	if err := os.Truncate(path, 0); err != nil { // want `os\.Truncate bypasses the vfs seam`
		return err
	}
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile bypasses the vfs seam`
}

// reads are exempt: they cannot tear.
func load(path string) ([]byte, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}
