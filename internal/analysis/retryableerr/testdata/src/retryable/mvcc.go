package retryable

import "errors"

// mvcc.go is the one file allowed to construct conflict sentinels from
// scratch: it declares them.

var ErrWriteConflict = errors.New("could not serialize access due to concurrent update")
