package retryable

import (
	"errors"
	"fmt"
)

type Session struct{}

func (s *Session) Commit() error { return nil }

func badNew() error {
	return errors.New("could not serialize access") // want `conflict-path error built with errors\.New is invisible to IsRetryable`
}

func badErrorf(key string) error {
	return fmt.Errorf("write conflict on %s: %v", key, ErrWriteConflict) // want `conflict-path fmt\.Errorf without %w severs the unwrap chain`
}

func goodErrorf(key string) error {
	return fmt.Errorf("could not serialize update of %s: %w", key, ErrWriteConflict) // conforming: %w keeps the sentinel unwrappable
}

func goodUnrelatedError() error {
	return errors.New("table not found") // conforming: not a conflict-path message
}

func badIgnoredCommit(s *Session) {
	s.Commit() // want `Commit error ignored: serialization failures surface at commit`
}

func badGoCommit(s *Session) {
	go s.Commit() // want `Commit launched with go discards its error`
}

func badDeferCommit(s *Session) {
	defer s.Commit() // want `deferred Commit discards its error`
}

func goodCommit(s *Session) error {
	if err := s.Commit(); err != nil {
		return err
	}
	return nil
}

func badComparison(err error) bool {
	return err == ErrWriteConflict // want `direct comparison against ErrWriteConflict misses wrapped conflicts`
}

func goodComparison(err error) bool {
	return errors.Is(err, ErrWriteConflict) // conforming: sees through wrapping
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return w.inner.Error() }

// Is support methods legitimately compare sentinels by identity.
func (w *wrapErr) Is(target error) bool {
	return target == ErrWriteConflict // conforming: inside an Is method
}

func suppressedCommit(s *Session) {
	s.Commit() //sqlvet:ignore retryableerr -- fixture: best-effort commit in a shutdown path
}
