// Package retryableerr keeps the serialization-conflict error taxonomy
// intact. Client retry loops classify failures with IsRetryable, which
// unwraps to ErrWriteConflict — so a conflict-path error constructed with
// a bare errors.New or a fmt.Errorf without %w silently becomes
// non-retryable, and a Commit whose error is discarded loses the conflict
// altogether.
package retryableerr

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"bridgescope/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "retryableerr",
	Doc: "flags conflict-path error construction that breaks IsRetryable classification " +
		"(errors.New/fmt.Errorf without %w on serialization messages), Commit calls whose " +
		"error is ignored, and == comparisons against ErrWriteConflict",
	Run: run,
}

// conflictKeywords identify an error message as belonging to the
// serialization-conflict path. Matching is case-insensitive substring.
var conflictKeywords = []string{
	"serialize",
	"serialization",
	"write conflict",
	"concurrent update",
}

// declFile is the one file allowed to build conflict sentinels from
// scratch: it declares ErrWriteConflict and SerializationError themselves.
const declFile = "mvcc.go"

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		inDeclFile := filepath.Base(pass.Fset.Position(f.Pos()).Filename) == declFile

		// enclosingIs tracks whether we are inside a method named Is —
		// errors.Is support methods legitimately compare sentinels.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				if !inDeclFile {
					checkConstruction(pass, n)
				}
				checkIgnoredCommit(pass, n, stack)
			case *ast.BinaryExpr:
				checkSentinelComparison(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

// checkConstruction flags errors.New with a conflict message (a new
// sentinel that IsRetryable cannot classify) and fmt.Errorf with a
// conflict message but no %w (a wrapper that severs the unwrap chain).
func checkConstruction(pass *framework.Pass, call *ast.CallExpr) {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil || len(call.Args) == 0 {
		return
	}
	full := fn.FullName()
	if full != "errors.New" && full != "fmt.Errorf" {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	msg, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	lower := strings.ToLower(msg)
	conflicty := false
	for _, kw := range conflictKeywords {
		if strings.Contains(lower, kw) {
			conflicty = true
			break
		}
	}
	if !conflicty {
		return
	}
	switch full {
	case "errors.New":
		pass.Reportf(call.Pos(),
			"conflict-path error built with errors.New is invisible to IsRetryable; wrap ErrWriteConflict (fmt.Errorf with %%w) or return a SerializationError instead")
	case "fmt.Errorf":
		if !strings.Contains(msg, "%w") {
			pass.Reportf(call.Pos(),
				"conflict-path fmt.Errorf without %%w severs the unwrap chain to ErrWriteConflict, breaking IsRetryable; wrap the sentinel with %%w")
		}
	}
}

// checkIgnoredCommit flags Commit() calls whose error result is discarded:
// a bare expression statement, a go statement, or a defer. A dropped
// commit error swallows serialization failures the caller must retry.
func checkIgnoredCommit(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Commit" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return
	}
	// Find the statement context immediately above the call.
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ExprStmt:
			if s.X == call {
				pass.Reportf(call.Pos(),
					"Commit error ignored: serialization failures surface at commit and must be checked (IsRetryable) or returned")
			}
			return
		case *ast.GoStmt:
			if s.Call == call {
				pass.Reportf(call.Pos(),
					"Commit launched with go discards its error; serialization failures at commit are lost")
			}
			return
		case *ast.DeferStmt:
			if s.Call == call {
				pass.Reportf(call.Pos(),
					"deferred Commit discards its error; serialization failures at commit are lost")
			}
			return
		case *ast.CallExpr, *ast.ParenExpr:
			continue // e.g. wrapped in parens; keep climbing
		default:
			return // assignment, if-condition, return, ... — error is consumed
		}
	}
}

// checkSentinelComparison flags err == ErrWriteConflict (and !=) outside
// methods named Is: wrapped conflict errors fail pointer equality, so the
// comparison must be errors.Is.
func checkSentinelComparison(pass *framework.Pass, be *ast.BinaryExpr, stack []ast.Node) {
	if be.Op.String() != "==" && be.Op.String() != "!=" {
		return
	}
	if !isSentinel(pass, be.X) && !isSentinel(pass, be.Y) {
		return
	}
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Is" {
			return // errors.Is support method
		}
	}
	pass.Reportf(be.Pos(),
		"direct comparison against ErrWriteConflict misses wrapped conflicts; use errors.Is (or IsRetryable)")
}

func isSentinel(pass *framework.Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	return id.Name == "ErrWriteConflict" && pass.TypesInfo.Uses[id] != nil
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// staticCallee resolves a call to its package-level function or method.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
