package retryableerr_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/retryableerr"
)

func TestRetryableErr(t *testing.T) {
	analysistest.Run(t, retryableerr.Analyzer, "retryable")
}
