// Package lock_a exports a blocking helper; the lockorder analyzer
// exports a blocks fact for it, which lock_b imports.
package lock_a

// Block waits for a signal; it blocks its caller.
func Block(ch chan struct{}) { <-ch }

// Poll is non-blocking.
func Poll(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
