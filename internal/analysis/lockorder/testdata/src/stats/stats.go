// Package stats mirrors the engine's metrics package for the lockorder
// fixtures: rule L4 keys on the callee's package being named "stats".
package stats

// Histogram is a minimal stand-in for the lock-free latency histogram.
type Histogram struct{ n int64 }

// Observe records one value.
func (h *Histogram) Observe(v int64) { h.n += v }

// Enabled reports whether recording is on.
func Enabled() bool { return true }
