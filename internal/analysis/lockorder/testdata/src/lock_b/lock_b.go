// Package lock_b holds its Engine.mu across a call into lock_a; the
// "may block" property crosses the package boundary via an exported fact.
package lock_b

import (
	"sync"

	"lock_a"
)

type Engine struct {
	mu sync.RWMutex
}

func badCrossPackage(e *Engine, ch chan struct{}) {
	e.mu.Lock()
	lock_a.Block(ch) // want `Block may block \(fsync/channel/sleep\) while Engine\.mu is held`
	e.mu.Unlock()
}

func goodCrossPackage(e *Engine, ch chan struct{}) bool {
	e.mu.Lock()
	ready := lock_a.Poll(ch) // conforming: Poll has a default case, it never blocks
	e.mu.Unlock()
	return ready
}
