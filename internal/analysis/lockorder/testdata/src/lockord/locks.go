package lockord

import "sync"

// locks.go mirrors the engine's lock manager; it is the one file where
// touching lockManager internals is allowed (rule L1 exemption). Rules
// L2/L3 still apply here.

type lockManager struct {
	global sync.RWMutex
	tables sync.Map
}

func (lm *lockManager) lockAll() func() {
	lm.global.Lock()
	return lm.global.Unlock
}

func (lm *lockManager) tableLock(name string) *sync.Mutex {
	l, _ := lm.tables.LoadOrStore(name, &sync.Mutex{})
	return l.(*sync.Mutex)
}

func (lm *lockManager) lockNamed(names []string) func() {
	locks := make([]*sync.Mutex, 0, len(names))
	for _, n := range names {
		locks = append(locks, lm.tableLock(n))
	}
	for _, l := range locks {
		l.Lock()
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].Unlock()
		}
	}
}

// lockForWrite is the sanctioned DML path: shared global, then sorted
// table locks. Shared mode does not trip rule L2.
func (e *Engine) lockForWrite(names []string) func() {
	e.locks.global.RLock()
	inner := e.locks.lockNamed(names)
	return func() {
		inner()
		e.locks.global.RUnlock()
	}
}

// badNested violates L2: table locks stacked on the exclusive global lock
// invert the shared-global→table order and can deadlock against DML.
func badNested(lm *lockManager, names []string) {
	unlock := lm.lockAll()
	lm.lockNamed(names) // want `lockNamed acquires table locks while the global lock is held exclusively`
	unlock()
	lm.lockNamed(names)() // conforming: the global lock was released first
}
