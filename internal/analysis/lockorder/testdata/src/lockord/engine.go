package lockord

import (
	"os"
	"sync"
)

// Engine and wal mirror the engine's shapes: rule L3 keys on the mu field
// of a type named Engine and on blocking callees (fsync, channels, sleep).

type Engine struct {
	mu    sync.RWMutex
	locks lockManager
	wal   *wal
}

type wal struct {
	f    *os.File
	ch   chan struct{}
	ioMu sync.Mutex
}

// fsync blocks: it reaches (*os.File).Sync, so "may block" propagates to
// every caller through the static call graph.
func (w *wal) fsync() error { return w.f.Sync() }

// waitFlush blocks directly on a channel receive.
func (w *wal) waitFlush() { <-w.ch }
