package lockord

import "time"

// L1: ad-hoc table-lock acquisition outside locks.go can interleave
// unsorted with lockNamed and deadlock.

func adHocTableLock(e *Engine, name string) {
	e.locks.tableLock(name).Lock() // want `direct use of lockManager\.tableLock outside locks\.go`
}

func adHocGlobal(e *Engine) {
	e.locks.global.Lock()   // want `direct use of lockManager\.global outside locks\.go`
	e.locks.global.Unlock() // want `direct use of lockManager\.global outside locks\.go`
}

func goodWritePath(e *Engine, names []string) {
	unlock := e.lockForWrite(names) // conforming: the sanctioned sorted path
	unlock()
}

// L3: blocking while holding Engine.mu stalls every statement on the
// engine for the duration of the fsync/sleep/receive.

func badFsyncUnderMu(e *Engine) error {
	e.mu.Lock()
	err := e.wal.fsync() // want `fsync may block \(fsync/channel/sleep\) while Engine\.mu is held`
	e.mu.Unlock()
	return err
}

func badSleepUnderMu(e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	time.Sleep(time.Millisecond) // want `Sleep may block \(fsync/channel/sleep\) while Engine\.mu is held`
}

func badRecvUnderMu(e *Engine) {
	e.mu.Lock()
	<-e.wal.ch // want `channel receive while holding Engine\.mu`
	e.mu.Unlock()
}

func badSendUnderMu(e *Engine) {
	e.mu.Lock()
	e.wal.ch <- struct{}{} // want `channel send while holding Engine\.mu`
	e.mu.Unlock()
}

func badSelectUnderMu(e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want `select without default while holding Engine\.mu`
	case <-e.wal.ch:
	}
}

// badPropagated blocks only transitively: waitFlush receives on a channel,
// and the call-graph propagation carries that to the call site under mu.
func badPropagated(e *Engine) {
	e.mu.Lock()
	e.wal.waitFlush() // want `waitFlush may block \(fsync/channel/sleep\) while Engine\.mu is held`
	e.mu.Unlock()
}

func goodFsyncAfterUnlock(e *Engine) error {
	e.mu.Lock()
	e.mu.Unlock()
	return e.wal.fsync() // conforming: mutex released before the fsync
}

func goodReadLock(e *Engine) {
	e.mu.RLock()
	e.wal.waitFlush() // conforming: read-locks are exempt by design
	e.mu.RUnlock()
}

func suppressedFsync(e *Engine) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	//sqlvet:ignore lockorder -- fixture: single-caller startup path, engine not yet shared
	return e.wal.fsync()
}
