package lockord

// Rule L4 cases: calls into the stats package are forbidden while
// Engine.mu is held exclusively or inside the WAL's ioMu critical section.

import "stats"

type metrics struct {
	lat stats.Histogram
}

func badObserveUnderMu(e *Engine, m *metrics) {
	e.mu.Lock()
	m.lat.Observe(1) // want `Observe records metrics while Engine.mu is held exclusively`
	e.mu.Unlock()
}

func badEnabledUnderMu(e *Engine) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return stats.Enabled() // want `Enabled records metrics while Engine.mu is held exclusively`
}

func badObserveUnderIoMu(w *wal, m *metrics) {
	w.ioMu.Lock()
	m.lat.Observe(1) // want `Observe records metrics inside the WAL ioMu write/fsync critical section`
	w.ioMu.Unlock()
}

func goodObserveAfterUnlock(e *Engine, m *metrics) {
	e.mu.Lock()
	e.mu.Unlock()
	m.lat.Observe(1)
}

func goodObserveAfterIoUnlock(w *wal, m *metrics) {
	w.ioMu.Lock()
	w.ioMu.Unlock()
	m.lat.Observe(1)
}

// Read locks are untracked: recording under mu.RLock is allowed.
func goodObserveUnderRLock(e *Engine, m *metrics) {
	e.mu.RLock()
	m.lat.Observe(1)
	e.mu.RUnlock()
}

// A branch that exits while holding the lock does not poison the
// fall-through path.
func goodObserveAfterEarlyExit(e *Engine, m *metrics, fail bool) {
	e.mu.Lock()
	if fail {
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	m.lat.Observe(1)
}
