// Package lockorder enforces the engine's deadlock-freedom discipline,
// documented in locks.go:
//
//	L1: per-table mutexes are acquired only through the sorted
//	    lock-manager path. Outside locks.go, touching lockManager.tables,
//	    lockManager.global, tableLock, or lockNamed directly is an error —
//	    an ad-hoc acquisition can interleave unsorted with lockNamed and
//	    deadlock.
//	L2: table locks are never taken while holding the global lock
//	    exclusively. The exclusive global lock IS the whole-engine write
//	    lock; stacking table locks on top creates a lock-order cycle with
//	    DML (shared global → table).
//	L3: Engine.mu is never held (exclusively) across a blocking call —
//	    a WAL fsync, a channel operation, time.Sleep, a WaitGroup wait.
//	    Engine.mu guards the catalog and row heap on every statement path;
//	    blocking under it stalls the whole engine for the device's fsync
//	    latency. (Read-locks are exempt: the parallel scanner deliberately
//	    fans out worker channels under mu.RLock.)
//	L4: metrics recording (any call into the stats package) never happens
//	    while Engine.mu is held exclusively or inside the WAL's ioMu
//	    write/fsync critical section. Recording is cheap but not free;
//	    the observability layer's contract is that it only ever runs on
//	    paths that have already released the engine's serializing locks.
//
// Rules L1/L2 are structural (type lockManager, its members). Rules L3/L4
// track lock state through a linear source-order walk of each function
// body; L3 additionally propagates "may block" through the static call
// graph, across packages via exported facts.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"bridgescope/internal/analysis/callgraph"
	"bridgescope/internal/analysis/framework"
)

// blocksFact marks an exported function that may block (fsync, channel
// operation, sleep, waitgroup).
type blocksFact struct{}

func (blocksFact) AFact() {}

var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "flags per-table mutex acquisition outside the sorted lock-manager path, table locks taken under " +
		"the exclusive global lock, Engine.mu held across blocking calls (fsync, channels, sleep), and " +
		"stats recording under the exclusive engine lock or the WAL I/O mutex",
	FactTypes: []framework.Fact{&blocksFact{}},
	Run:       run,
}

// l1Forbidden lists the lockManager members that only locks.go may touch.
var l1Forbidden = map[string]bool{
	"tables":    true,
	"global":    true,
	"tableLock": true,
	"lockNamed": true,
}

// tableLockEntry lists calls that acquire table locks — forbidden while
// the global lock is held exclusively (rule L2).
var tableLockEntry = map[string]bool{
	"tableLock":         true,
	"lockNamed":         true,
	"lockForWrite":      true,
	"lockForWriteNames": true,
}

// blockingCallees are well-known blocking functions outside the analyzed
// package, by FullName.
var blockingCallees = map[string]bool{
	"time.Sleep":             true,
	"(*os.File).Sync":        true,
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
}

const lockManagerFile = "locks.go"

func run(pass *framework.Pass) error {
	decls := callgraph.Decls(pass)

	// blocks[fn]: may fn's body block the calling goroutine?
	blocks := callgraph.Propagate(pass, decls, declBlocks,
		func(fn *types.Func) bool {
			if blockingCallees[fn.FullName()] {
				return true
			}
			return pass.ImportObjectFact(fn, &blocksFact{})
		})
	for fn := range decls {
		if blocks[fn] && fn.Exported() {
			pass.ExportObjectFact(fn, &blocksFact{})
		}
	}

	for _, decl := range decls {
		w := &walker{
			pass:        pass,
			blocks:      blocks,
			inLocksFile: filepath.Base(pass.Fset.Position(decl.Pos()).Filename) == lockManagerFile,
			unlockVars:  map[types.Object]bool{},
		}
		if decl.Body != nil {
			w.walk(decl.Body)
		}
	}
	return nil
}

// declBlocks reports whether a declaration directly contains a blocking
// operation on its own goroutine: a channel send/receive, a select with no
// default, or a call to a known blocking function.
func declBlocks(fn *types.Func, decl *ast.FuncDecl) bool {
	found := false
	var scan func(n ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // runs on another goroutine
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					found = true
				}
			case *ast.SendStmt:
				found = true
			case *ast.SelectStmt:
				if !hasDefault(n) {
					found = true
					return false
				}
				// A select with a default never blocks on its comm
				// clauses; only the case bodies can block.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							scan(s)
						}
					}
				}
				return false
			}
			return !found
		})
	}
	scan(decl)
	return found
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walker performs the linear source-order lock-state walk over one
// function body. Function literals, go statements, and defer bodies are
// skipped: literals run in their own scope (their lock state is not the
// enclosing function's), goroutines run elsewhere, and deferred calls run
// at return, after the locks tracked here are normally released.
//
// The walk is statement-structured rather than a flat AST traversal for
// one reason: early-exit branches. The engine's idiom
//
//	if cond {
//		e.mu.Unlock()
//		return ..., err
//	}
//
// releases the lock only on the exiting path; the fall-through path still
// holds it. After walking a branch whose block terminates (ends in
// return/panic/break/continue/goto), the lock state is restored to what it
// was before the branch. State changes in non-terminating branches persist
// conservatively.
type walker struct {
	pass   *framework.Pass
	blocks map[*types.Func]bool

	inLocksFile bool

	heldMu     bool // Engine.mu held exclusively
	muPos      token.Pos
	heldGlobal bool // lockManager.global held exclusively
	globalPos  token.Pos
	heldIo     bool // wal.ioMu held (the write/fsync critical section)
	ioPos      token.Pos

	// unlockVars holds variables bound to lockAll's returned unlock func;
	// calling one releases the global lock.
	unlockVars map[types.Object]bool
}

// lockState is the restorable part of the walker.
type lockState struct {
	heldMu     bool
	muPos      token.Pos
	heldGlobal bool
	globalPos  token.Pos
	heldIo     bool
	ioPos      token.Pos
}

func (w *walker) save() lockState {
	return lockState{w.heldMu, w.muPos, w.heldGlobal, w.globalPos, w.heldIo, w.ioPos}
}

func (w *walker) restore(s lockState) {
	w.heldMu, w.muPos, w.heldGlobal, w.globalPos = s.heldMu, s.muPos, s.heldGlobal, s.globalPos
	w.heldIo, w.ioPos = s.heldIo, s.ioPos
}

func (w *walker) walk(body *ast.BlockStmt) {
	w.stmts(body.List)
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks a block that is one alternative of a branching statement:
// if its body exits the enclosing flow, its state changes apply only to
// the departed path and are rolled back for the fall-through.
func (w *walker) branch(body *ast.BlockStmt) {
	saved := w.save()
	w.stmts(body.List)
	if terminates(body.List) {
		w.restore(saved)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.branch(s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.branch(e)
		case *ast.IfStmt:
			w.stmt(e)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Post)
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.caseBody(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.caseBody(cc.Body)
			}
		}
	case *ast.SelectStmt:
		if w.heldMu && !hasDefault(s) {
			w.pass.Reportf(s.Pos(), "select without default while holding Engine.mu (locked at %s) blocks the whole engine",
				w.pos(w.muPos))
		}
		// The comm clauses are covered by the report above (or are
		// non-blocking when a default exists); walk only the bodies.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.caseBody(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt, *ast.DeferStmt:
		// Other goroutine / runs at return: no effect on this walk.
	case *ast.ReturnStmt:
		saved := w.save()
		for _, r := range s.Results {
			w.expr(r)
		}
		// Nothing after a return executes on this path; acquisitions made
		// in its expressions (e.g. `return lm.lockAll()`) don't persist.
		w.restore(saved)
	case *ast.AssignStmt:
		w.assign(s)
		for _, r := range s.Rhs {
			w.expr(r)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		if w.heldMu {
			w.pass.Reportf(s.Pos(), "channel send while holding Engine.mu (locked at %s) can block the whole engine; release the mutex first",
				w.pos(w.muPos))
		}
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// caseBody walks one case alternative of a switch/select with the same
// rollback-on-exit rule as branch.
func (w *walker) caseBody(body []ast.Stmt) {
	saved := w.save()
	w.stmts(body)
	if terminates(body) {
		w.restore(saved)
	}
}

// terminates reports whether a statement list exits the enclosing flow:
// it ends in return, a branch statement, or a panic/Fatal-style call.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expr scans one expression subtree for lock transitions, blocking
// operations, and L1 violations. Function literals are separate scopes and
// are skipped.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.call(n)
			return true
		case *ast.SelectorExpr:
			w.checkL1(n)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && w.heldMu {
				w.pass.Reportf(n.Pos(), "channel receive while holding Engine.mu (locked at %s) stalls the whole engine; release the mutex first",
					w.pos(w.muPos))
			}
			return true
		}
		return true
	})
}

func (w *walker) pos(p token.Pos) string {
	pos := w.pass.Fset.Position(p)
	return filepath.Base(pos.Filename) + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// assign tracks `unlock := lm.lockAll()` so a later `unlock()` clears the
// global-exclusive state.
func (w *walker) assign(a *ast.AssignStmt) {
	if len(a.Rhs) != 1 || len(a.Lhs) != 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok || !w.isLockAll(call) {
		return
	}
	if id, ok := a.Lhs[0].(*ast.Ident); ok {
		if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
			w.unlockVars[obj] = true
		} else if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
			w.unlockVars[obj] = true
		}
	}
}

func (w *walker) call(call *ast.CallExpr) {
	// unlock() of a stored lockAll result releases the global lock.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := w.pass.TypesInfo.Uses[id]; obj != nil && w.unlockVars[obj] {
			w.heldGlobal = false
			return
		}
	}

	if w.isLockAll(call) {
		w.heldGlobal = true
		w.globalPos = call.Pos()
		return
	}
	if field, method, ok := fieldMethodCall(w.pass, call); ok {
		switch {
		case field.owner == "Engine" && field.name == "mu":
			switch method {
			case "Lock":
				w.heldMu = true
				w.muPos = call.Pos()
			case "Unlock":
				w.heldMu = false
			}
			return
		case field.owner == "lockManager" && field.name == "global":
			switch method {
			case "Lock":
				w.heldGlobal = true
				w.globalPos = call.Pos()
			case "Unlock":
				w.heldGlobal = false
			}
			return
		case field.owner == "wal" && field.name == "ioMu":
			switch method {
			case "Lock":
				w.heldIo = true
				w.ioPos = call.Pos()
			case "Unlock":
				w.heldIo = false
			}
			return
		}
	}

	callee := callgraph.Callee(w.pass.TypesInfo, call)
	if callee == nil {
		return
	}

	// L2: table-lock acquisition under the exclusive global lock.
	if w.heldGlobal && tableLockEntry[callee.Name()] && onLockTypes(callee) {
		w.pass.Reportf(call.Pos(),
			"%s acquires table locks while the global lock is held exclusively (since %s); this inverts the shared-global→table order and can deadlock with DML",
			callee.Name(), w.pos(w.globalPos))
	}

	// L3: blocking call under Engine.mu.
	if w.heldMu {
		if blockingCallees[callee.FullName()] || w.blocks[callee] ||
			w.pass.ImportObjectFact(callee, &blocksFact{}) {
			w.pass.Reportf(call.Pos(),
				"%s may block (fsync/channel/sleep) while Engine.mu is held (locked at %s); move the blocking work outside the mutex",
				callee.Name(), w.pos(w.muPos))
		}
	}

	// L4: metrics recording inside a serializing critical section. Any call
	// into the stats package counts — the observability layer's contract is
	// that recording happens only after these locks are released.
	if callee.Pkg() != nil && callee.Pkg().Name() == "stats" {
		switch {
		case w.heldMu:
			w.pass.Reportf(call.Pos(),
				"%s records metrics while Engine.mu is held exclusively (locked at %s); observe after the engine lock is released (rule L4)",
				callee.Name(), w.pos(w.muPos))
		case w.heldIo:
			w.pass.Reportf(call.Pos(),
				"%s records metrics inside the WAL ioMu write/fsync critical section (locked at %s); observe after ioMu is released (rule L4)",
				callee.Name(), w.pos(w.ioPos))
		}
	}
}

// isLockAll reports a call to lockManager.lockAll.
func (w *walker) isLockAll(call *ast.CallExpr) bool {
	callee := callgraph.Callee(w.pass.TypesInfo, call)
	return callee != nil && callee.Name() == "lockAll" && recvTypeName(callee) == "lockManager"
}

// checkL1 flags direct use of lock-manager internals outside locks.go.
func (w *walker) checkL1(sel *ast.SelectorExpr) {
	if w.inLocksFile {
		return
	}
	s := w.pass.TypesInfo.Selections[sel]
	if s == nil {
		return
	}
	if typeName(s.Recv()) != "lockManager" || !l1Forbidden[sel.Sel.Name] {
		return
	}
	w.pass.Reportf(sel.Sel.Pos(),
		"direct use of lockManager.%s outside locks.go bypasses the sorted table-lock path; acquire write locks via lockForWrite/lockAll",
		sel.Sel.Name)
}

// fieldMethodCall decomposes `x.field.Method(...)` into the owning type of
// field plus the method name.
type fieldRef struct{ owner, name string }

func fieldMethodCall(pass *framework.Pass, call *ast.CallExpr) (fieldRef, string, bool) {
	outer, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return fieldRef{}, "", false
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok {
		return fieldRef{}, "", false
	}
	s := pass.TypesInfo.Selections[inner]
	if s == nil || s.Kind() != types.FieldVal {
		return fieldRef{}, "", false
	}
	return fieldRef{owner: typeName(s.Recv()), name: inner.Sel.Name}, outer.Sel.Name, true
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return typeName(sig.Recv().Type())
}

// onLockTypes reports whether fn is a method of lockManager or Engine —
// the only owners of the table-lock entry points.
func onLockTypes(fn *types.Func) bool {
	n := recvTypeName(fn)
	return n == "lockManager" || n == "Engine"
}

func typeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
