// Package lockorder enforces the engine's deadlock-freedom discipline,
// documented in locks.go:
//
//	L1: per-table mutexes are acquired only through the sorted
//	    lock-manager path. Outside locks.go, touching lockManager.tables,
//	    lockManager.global, tableLock, or lockNamed directly is an error —
//	    an ad-hoc acquisition can interleave unsorted with lockNamed and
//	    deadlock.
//	L2: table locks are never taken while holding the global lock
//	    exclusively. The exclusive global lock IS the whole-engine write
//	    lock; stacking table locks on top creates a lock-order cycle with
//	    DML (shared global → table).
//	L3: Engine.mu is never held (exclusively) across a blocking call —
//	    a WAL fsync, a channel operation, time.Sleep, a WaitGroup wait.
//	    Engine.mu guards the catalog and row heap on every statement path;
//	    blocking under it stalls the whole engine for the device's fsync
//	    latency. (Read-locks are exempt: the parallel scanner deliberately
//	    fans out worker channels under mu.RLock.)
//	L4: metrics recording (any call into the stats package) never happens
//	    while Engine.mu is held exclusively or inside the WAL's ioMu
//	    write/fsync critical section. Recording is cheap but not free;
//	    the observability layer's contract is that it only ever runs on
//	    paths that have already released the engine's serializing locks.
//
// Rules L1/L2 are structural (type lockManager, its members). Rules L3/L4
// track lock state through the shared framework/flow engine — per-statement
// abstract state, joins at branch merges, state restored after terminating
// branches — with "may block" propagated through the static call graph and
// across packages via exported facts.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"bridgescope/internal/analysis/callgraph"
	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/framework/flow"
)

// blocksFact marks an exported function that may block (fsync, channel
// operation, sleep, waitgroup).
type blocksFact struct{}

func (blocksFact) AFact() {}

var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "flags per-table mutex acquisition outside the sorted lock-manager path, table locks taken under " +
		"the exclusive global lock, Engine.mu held across blocking calls (fsync, channels, sleep), and " +
		"stats recording under the exclusive engine lock or the WAL I/O mutex",
	FactTypes: []framework.Fact{&blocksFact{}},
	Run:       run,
}

// l1Forbidden lists the lockManager members that only locks.go may touch.
var l1Forbidden = map[string]bool{
	"tables":    true,
	"global":    true,
	"tableLock": true,
	"lockNamed": true,
}

// tableLockEntry lists calls that acquire table locks — forbidden while
// the global lock is held exclusively (rule L2).
var tableLockEntry = map[string]bool{
	"tableLock":         true,
	"lockNamed":         true,
	"lockForWrite":      true,
	"lockForWriteNames": true,
}

// blockingCallees are well-known blocking functions outside the analyzed
// package, by FullName.
var blockingCallees = map[string]bool{
	"time.Sleep":             true,
	"(*os.File).Sync":        true,
	"(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait":      true,
}

const lockManagerFile = "locks.go"

func run(pass *framework.Pass) error {
	decls := callgraph.Decls(pass)

	// blocks[fn]: may fn's body block the calling goroutine?
	blocks := callgraph.Propagate(pass, decls, declBlocks,
		func(fn *types.Func) bool {
			if blockingCallees[fn.FullName()] {
				return true
			}
			return pass.ImportObjectFact(fn, &blocksFact{})
		})
	for fn := range decls {
		if blocks[fn] && fn.Exported() {
			pass.ExportObjectFact(fn, &blocksFact{})
		}
	}

	for _, decl := range decls {
		if decl.Body == nil {
			continue
		}
		c := &checker{
			pass:        pass,
			blocks:      blocks,
			inLocksFile: filepath.Base(pass.Fset.Position(decl.Pos()).Filename) == lockManagerFile,
			unlockVars:  map[types.Object]bool{},
		}
		flow.Run(decl.Body, &lockState{}, &flow.Analysis{Transfer: c.transfer},
			func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			})
	}
	return nil
}

// declBlocks reports whether a declaration directly contains a blocking
// operation on its own goroutine: a channel send/receive, a select with no
// default, or a call to a known blocking function.
func declBlocks(fn *types.Func, decl *ast.FuncDecl) bool {
	found := false
	var scan func(n ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // runs on another goroutine
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					found = true
				}
			case *ast.SendStmt:
				found = true
			case *ast.SelectStmt:
				if !hasDefault(n) {
					found = true
					return false
				}
				// A select with a default never blocks on its comm
				// clauses; only the case bodies can block.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							scan(s)
						}
					}
				}
				return false
			}
			return !found
		})
	}
	scan(decl)
	return found
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockState is the abstract state of one path: which of the three
// serializing locks may be held, and where each was last acquired. The
// join is a may-analysis — a lock held on any incoming path is treated as
// held, so a blocking call after a merge is still flagged.
type lockState struct {
	heldMu     bool // Engine.mu held exclusively
	muPos      token.Pos
	heldGlobal bool // lockManager.global held exclusively
	globalPos  token.Pos
	heldIo     bool // wal.ioMu held (the write/fsync critical section)
	ioPos      token.Pos
}

func (s *lockState) CloneState() flow.State {
	c := *s
	return &c
}

func (s *lockState) JoinState(other flow.State) flow.State {
	o := other.(*lockState)
	joinHeld(&s.heldMu, &s.muPos, o.heldMu, o.muPos)
	joinHeld(&s.heldGlobal, &s.globalPos, o.heldGlobal, o.globalPos)
	joinHeld(&s.heldIo, &s.ioPos, o.heldIo, o.ioPos)
	return s
}

func joinHeld(held *bool, pos *token.Pos, otherHeld bool, otherPos token.Pos) {
	if otherHeld && !*held {
		*held = true
		*pos = otherPos
	}
}

func (s *lockState) EqualState(other flow.State) bool {
	o := other.(*lockState)
	return s.heldMu == o.heldMu && s.heldGlobal == o.heldGlobal && s.heldIo == o.heldIo
}

// checker holds the per-declaration context the transfer function needs.
type checker struct {
	pass        *framework.Pass
	blocks      map[*types.Func]bool
	inLocksFile bool

	// unlockVars holds variables bound to lockAll's returned unlock func;
	// calling one releases the global lock. Variable identity is
	// flow-insensitive (function-scoped), which is conservative and
	// matches the engine's straight-line unlock idiom.
	unlockVars map[types.Object]bool
}

func (c *checker) transfer(n ast.Node, st flow.State, report flow.Reporter) {
	s := st.(*lockState)
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n, s, report)
	case *ast.SelectorExpr:
		c.checkL1(n, report)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && s.heldMu {
			report(n.Pos(), "channel receive while holding Engine.mu (locked at %s) stalls the whole engine; release the mutex first",
				c.pos(s.muPos))
		}
	case *ast.SendStmt:
		if s.heldMu {
			report(n.Pos(), "channel send while holding Engine.mu (locked at %s) can block the whole engine; release the mutex first",
				c.pos(s.muPos))
		}
	case *ast.SelectStmt:
		if s.heldMu && !hasDefault(n) {
			report(n.Pos(), "select without default while holding Engine.mu (locked at %s) blocks the whole engine",
				c.pos(s.muPos))
		}
	case *ast.AssignStmt:
		c.assign(n)
	}
}

func (c *checker) pos(p token.Pos) string {
	pos := c.pass.Fset.Position(p)
	return filepath.Base(pos.Filename) + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// assign tracks `unlock := lm.lockAll()` so a later `unlock()` clears the
// global-exclusive state.
func (c *checker) assign(a *ast.AssignStmt) {
	if len(a.Rhs) != 1 || len(a.Lhs) != 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok || !c.isLockAll(call) {
		return
	}
	if id, ok := a.Lhs[0].(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			c.unlockVars[obj] = true
		} else if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			c.unlockVars[obj] = true
		}
	}
}

func (c *checker) call(call *ast.CallExpr, s *lockState, report flow.Reporter) {
	// unlock() of a stored lockAll result releases the global lock.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.unlockVars[obj] {
			s.heldGlobal = false
			return
		}
	}

	if c.isLockAll(call) {
		s.heldGlobal = true
		s.globalPos = call.Pos()
		return
	}
	if field, method, ok := fieldMethodCall(c.pass, call); ok {
		switch {
		case field.owner == "Engine" && field.name == "mu":
			switch method {
			case "Lock":
				s.heldMu = true
				s.muPos = call.Pos()
			case "Unlock":
				s.heldMu = false
			}
			return
		case field.owner == "lockManager" && field.name == "global":
			switch method {
			case "Lock":
				s.heldGlobal = true
				s.globalPos = call.Pos()
			case "Unlock":
				s.heldGlobal = false
			}
			return
		case field.owner == "wal" && field.name == "ioMu":
			switch method {
			case "Lock":
				s.heldIo = true
				s.ioPos = call.Pos()
			case "Unlock":
				s.heldIo = false
			}
			return
		}
	}

	callee := callgraph.Callee(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}

	// L2: table-lock acquisition under the exclusive global lock.
	if s.heldGlobal && tableLockEntry[callee.Name()] && onLockTypes(callee) {
		report(call.Pos(),
			"%s acquires table locks while the global lock is held exclusively (since %s); this inverts the shared-global→table order and can deadlock with DML",
			callee.Name(), c.pos(s.globalPos))
	}

	// L3: blocking call under Engine.mu.
	if s.heldMu {
		if blockingCallees[callee.FullName()] || c.blocks[callee] ||
			c.pass.ImportObjectFact(callee, &blocksFact{}) {
			report(call.Pos(),
				"%s may block (fsync/channel/sleep) while Engine.mu is held (locked at %s); move the blocking work outside the mutex",
				callee.Name(), c.pos(s.muPos))
		}
	}

	// L4: metrics recording inside a serializing critical section. Any call
	// into the stats package counts — the observability layer's contract is
	// that recording happens only after these locks are released.
	if callee.Pkg() != nil && callee.Pkg().Name() == "stats" {
		switch {
		case s.heldMu:
			report(call.Pos(),
				"%s records metrics while Engine.mu is held exclusively (locked at %s); observe after the engine lock is released (rule L4)",
				callee.Name(), c.pos(s.muPos))
		case s.heldIo:
			report(call.Pos(),
				"%s records metrics inside the WAL ioMu write/fsync critical section (locked at %s); observe after ioMu is released (rule L4)",
				callee.Name(), c.pos(s.ioPos))
		}
	}
}

// isLockAll reports a call to lockManager.lockAll.
func (c *checker) isLockAll(call *ast.CallExpr) bool {
	callee := callgraph.Callee(c.pass.TypesInfo, call)
	return callee != nil && callee.Name() == "lockAll" && recvTypeName(callee) == "lockManager"
}

// checkL1 flags direct use of lock-manager internals outside locks.go.
func (c *checker) checkL1(sel *ast.SelectorExpr, report flow.Reporter) {
	if c.inLocksFile {
		return
	}
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil {
		return
	}
	if typeName(s.Recv()) != "lockManager" || !l1Forbidden[sel.Sel.Name] {
		return
	}
	report(sel.Sel.Pos(),
		"direct use of lockManager.%s outside locks.go bypasses the sorted table-lock path; acquire write locks via lockForWrite/lockAll",
		sel.Sel.Name)
}

// fieldMethodCall decomposes `x.field.Method(...)` into the owning type of
// field plus the method name.
type fieldRef struct{ owner, name string }

func fieldMethodCall(pass *framework.Pass, call *ast.CallExpr) (fieldRef, string, bool) {
	outer, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return fieldRef{}, "", false
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok {
		return fieldRef{}, "", false
	}
	s := pass.TypesInfo.Selections[inner]
	if s == nil || s.Kind() != types.FieldVal {
		return fieldRef{}, "", false
	}
	return fieldRef{owner: typeName(s.Recv()), name: inner.Sel.Name}, outer.Sel.Name, true
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return typeName(sig.Recv().Type())
}

// onLockTypes reports whether fn is a method of lockManager or Engine —
// the only owners of the table-lock entry points.
func onLockTypes(fn *types.Func) bool {
	n := recvTypeName(fn)
	return n == "lockManager" || n == "Engine"
}

func typeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
