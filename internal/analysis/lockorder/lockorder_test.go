package lockorder_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockord")
}

// TestCrossPackageFacts checks that the "may block" property of an
// exported function crosses package boundaries as a fact.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lock_b")
}
