// Package load turns `go list` package patterns into type-checked syntax
// for analysis, using only the standard library. Dependencies are imported
// from compiler export data (produced on demand by `go list -export`), so
// loading works fully offline; packages of the module under analysis are
// type-checked from source so analyzers see their syntax.
//
// It is the offline stand-in for golang.org/x/tools/go/packages in
// LoadAllSyntax mode, reduced to what the sqlvet driver needs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Target marks packages matched by the caller's patterns (the ones to
	// analyze); the rest are dependencies loaded for type information.
	Target bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// run executes go list with the given arguments in dir and decodes the
// JSON package stream.
func run(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,Module"

// Load lists patterns (plus dependencies), type-checks every non-standard
// package from source in dependency order, and returns the targets first.
// Standard-library dependencies are imported from export data and never
// re-checked.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", listFields, "-deps", "--"}, patterns...)
	deps, err := run(dir, args...)
	if err != nil {
		return nil, err
	}
	targetList, err := run(dir, append([]string{"list", listFields, "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets := map[string]bool{}
	for _, p := range targetList {
		targets[p.ImportPath] = true
	}

	byPath := map[string]*listPkg{}
	for _, p := range deps {
		byPath[p.ImportPath] = p
	}
	fset := token.NewFileSet()
	exportLookup := func(path string) (io.ReadCloser, error) {
		p := byPath[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	gcImporter, ok := importer.ForCompiler(fset, "gc", exportLookup).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("gc importer does not implement ImporterFrom")
	}

	checked := map[string]*types.Package{}
	var out []*Package
	// -deps emits dependencies before dependents, so source-checking in
	// stream order always finds imports already resolved.
	for _, p := range deps {
		if p.Standard {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s uses cgo, which the offline loader does not support", p.ImportPath)
		}
		pkg, err := check(fset, p, checked, gcImporter)
		if err != nil {
			return nil, err
		}
		checked[p.ImportPath] = pkg.Types
		pkg.Target = targets[p.ImportPath]
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, p *listPkg, checked map[string]*types.Package, fallback types.ImporterFrom) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if tp, ok := checked[path]; ok {
			return tp, nil
		}
		return fallback.ImportFrom(path, p.Dir, 0)
	})
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tp,
		Info:       info,
	}, nil
}

// NewInfo returns a types.Info with every map analyzers consume allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// ExportImporter builds a types importer that resolves import paths purely
// from export-data files: fileOf maps a canonical import path to its export
// file, remap (optional) maps source-level import strings to canonical
// paths (the vet config's ImportMap). Used by both the vettool driver and
// the analysistest harness.
func ExportImporter(fset *token.FileSet, remap map[string]string, fileOf func(path string) (string, bool)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := fileOf(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	return importerFunc(func(path string) (*types.Package, error) {
		if remap != nil {
			if mapped, ok := remap[path]; ok {
				path = mapped
			}
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

// StdExports lists export-data files for the given standard-library
// packages and their dependencies, keyed by import path. The analysistest
// harness uses it so fixture files can import sync, os, time, etc.
func StdExports(pkgs []string) (map[string]string, error) {
	listed, err := run(".", append([]string{"list", "-export", listFields, "-deps", "--"}, pkgs...)...)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
