// Package lockbalance enforces invariant L6: a mutex acquired in a
// function body is released on every path out of that body, and no path
// locks or unlocks the same mutex twice in a row. The engine's unlock
// idiom is straight-line (`mu.Lock(); ...; mu.Unlock()` or a deferred
// unlock right after the acquisition); a branch that returns early while
// still holding the lock is the classic shape behind the wedged-engine
// incidents the crash simulator reproduces.
//
// The analysis runs on the shared framework/flow engine. Each mutex is
// identified by the printed form of its receiver expression ("e.mu",
// "lm.global"), with read locks tracked separately from write locks. Per
// mutex the lattice is unknown → locked / unlocked-by-us → maybe-locked:
// "definitely locked" is required to call a double-lock, "maybe locked" is
// enough to flag a leak at exit (released on *all* paths means a single
// leaking path is a bug). Functions that intentionally return while
// holding a lock (lock-manager entry points that hand the caller an unlock
// closure) document themselves with //sqlvet:ignore.
package lockbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/framework/flow"
)

var Analyzer = &framework.Analyzer{
	Name: "lockbalance",
	Doc: "flags mutexes not released on every path out of the acquiring function, plus definite " +
		"double-lock and double-unlock sequences",
	Run: run,
}

// lockMethods maps sync mutex methods to (is-lock, read-side).
var lockMethods = map[string]struct{ lock, read bool }{
	"(*sync.Mutex).Lock":      {lock: true},
	"(*sync.Mutex).Unlock":    {},
	"(*sync.RWMutex).Lock":    {lock: true},
	"(*sync.RWMutex).Unlock":  {},
	"(*sync.RWMutex).RLock":   {lock: true, read: true},
	"(*sync.RWMutex).RUnlock": {read: true},
}

type status uint8

const (
	unknown      status = iota // never touched here (caller may hold it)
	held                       // definitely locked by this function
	releasedHere               // definitely unlocked by this function
	maybeHeld                  // locked on some path, not on another
)

type cell struct {
	st  status
	pos token.Pos // where the current status was established
}

// balState maps mutex keys to their lock status plus the set of mutexes
// with a registered deferred unlock.
type balState struct {
	locks    map[string]cell
	deferred map[string]bool
}

func newState() *balState {
	return &balState{locks: map[string]cell{}, deferred: map[string]bool{}}
}

func (s *balState) CloneState() flow.State {
	c := newState()
	for k, v := range s.locks {
		c.locks[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

func (s *balState) JoinState(other flow.State) flow.State {
	o := other.(*balState)
	for k := range keys(s.locks, o.locks) {
		a, b := s.locks[k], o.locks[k]
		s.locks[k] = joinCell(a, b)
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
	return s
}

func keys(a, b map[string]cell) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func joinCell(a, b cell) cell {
	if a.st == b.st {
		if a.pos == token.NoPos {
			a.pos = b.pos
		}
		return a
	}
	if a.st == maybeHeld || b.st == maybeHeld || a.st == held || b.st == held {
		// Any disagreement involving a held side means the lock may or may
		// not be held after the merge.
		pos := a.pos
		if a.st != held && a.st != maybeHeld {
			pos = b.pos
		}
		return cell{st: maybeHeld, pos: pos}
	}
	// unknown vs releasedHere: no path holds it; fall back to unknown so a
	// later Unlock is not misread as a double-unlock.
	return cell{st: unknown}
}

func (s *balState) EqualState(other flow.State) bool {
	o := other.(*balState)
	if len(s.deferred) != len(o.deferred) {
		return false
	}
	for k := range s.deferred {
		if !o.deferred[k] {
			return false
		}
	}
	ks := keys(s.locks, o.locks)
	for k := range ks {
		if s.locks[k].st != o.locks[k].st {
			return false
		}
	}
	return true
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass}
			flow.Run(fd.Body, newState(), &flow.Analysis{
				Transfer: c.transfer,
				AtExit:   c.atExit,
				OnDefer:  c.onDefer,
			}, func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			})
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
}

// mutexOp decomposes a call into (mutex key, lock/unlock, read side).
func (c *checker) mutexOp(call *ast.CallExpr) (key string, op struct{ lock, read bool }, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", op, false
	}
	fn, isFn := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", op, false
	}
	op, ok = lockMethods[fn.FullName()]
	if !ok {
		return "", op, false
	}
	key = types.ExprString(sel.X)
	if op.read {
		key += " (read)"
	}
	return key, op, true
}

func (c *checker) transfer(n ast.Node, st flow.State, report flow.Reporter) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	s := st.(*balState)
	key, op, ok := c.mutexOp(call)
	if !ok {
		return
	}
	cur := s.locks[key]
	if op.lock {
		if cur.st == held {
			report(call.Pos(), "%s locked again while already held (locked at %s); a second Lock on the same mutex deadlocks",
				key, c.pos(cur.pos))
		}
		s.locks[key] = cell{st: held, pos: call.Pos()}
		return
	}
	if cur.st == releasedHere {
		report(call.Pos(), "%s unlocked twice on this path (already unlocked at %s); a second Unlock panics",
			key, c.pos(cur.pos))
	}
	s.locks[key] = cell{st: releasedHere, pos: call.Pos()}
}

func (c *checker) onDefer(d *ast.DeferStmt, st flow.State, report flow.Reporter) {
	s := st.(*balState)
	if key, op, ok := c.mutexOp(d.Call); ok && !op.lock {
		s.deferred[key] = true
	}
}

func (c *checker) atExit(n ast.Node, st flow.State, report flow.Reporter) {
	s := st.(*balState)
	var leaked []string
	for k, v := range s.locks {
		if (v.st == held || v.st == maybeHeld) && !s.deferred[k] {
			leaked = append(leaked, k)
		}
	}
	sort.Strings(leaked)
	for _, k := range leaked {
		v := s.locks[k]
		if v.st == held {
			report(v.pos, "%s is still held when the function returns on this path; release it (or defer the unlock) before every exit", k)
		} else {
			report(v.pos, "%s may still be held when the function returns (locked on one branch, released on another); every path must release it", k)
		}
	}
}

func (c *checker) pos(p token.Pos) string {
	pos := c.pass.Fset.Position(p)
	return pos.String()
}
