package lockbal

import (
	"errors"
	"sync"
)

type engine struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	rows int
}

// badEarlyReturn leaks the mutex on the error path.
func (e *engine) badEarlyReturn(fail bool) error {
	e.mu.Lock() // want `e\.mu is still held when the function returns`
	if fail {
		return errors.New("boom") // leaks e.mu
	}
	e.mu.Unlock()
	return nil
}

// badDoubleLock locks the same mutex twice in sequence.
func (e *engine) badDoubleLock() {
	e.mu.Lock()
	e.mu.Lock() // want `e\.mu locked again while already held`
	e.mu.Unlock()
}

// badDoubleUnlock releases twice on the same path.
func (e *engine) badDoubleUnlock() {
	e.mu.Lock()
	e.mu.Unlock()
	e.mu.Unlock() // want `e\.mu unlocked twice on this path`
}

// badBranchLeak releases on one branch only.
func (e *engine) badBranchLeak(c bool) {
	e.mu.Lock() // want `e\.mu may still be held when the function returns`
	if c {
		e.mu.Unlock()
	}
}

// goodStraightLine is the engine idiom.
func (e *engine) goodStraightLine() {
	e.mu.Lock()
	e.rows++
	e.mu.Unlock()
}

// goodDeferred releases via defer on every path.
func (e *engine) goodDeferred(fail bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if fail {
		return errors.New("boom")
	}
	e.rows++
	return nil
}

// goodEarlyUnlockThenReturn releases before the early exit.
func (e *engine) goodEarlyUnlockThenReturn(fail bool) error {
	e.mu.Lock()
	if fail {
		e.mu.Unlock()
		return errors.New("boom")
	}
	e.rows++
	e.mu.Unlock()
	return nil
}

// goodReadWriteSeparate tracks read and write sides independently.
func (e *engine) goodReadWriteSeparate() int {
	e.rw.RLock()
	n := e.rows
	e.rw.RUnlock()
	e.rw.Lock()
	e.rows = n + 1
	e.rw.Unlock()
	return n
}

// badReadLeak leaks the read side.
func (e *engine) badReadLeak() int {
	e.rw.RLock() // want `e\.rw \(read\) is still held when the function returns`
	return e.rows
}

// goodUnlockOnly is a helper that releases a lock its caller acquired;
// unlocking a mutex this function never locked is not a double-unlock.
func (e *engine) goodUnlockOnly() {
	e.rows++
	e.mu.Unlock()
}

// goodLoopBalanced locks and unlocks inside each iteration.
func (e *engine) goodLoopBalanced(n int) {
	for i := 0; i < n; i++ {
		e.mu.Lock()
		e.rows++
		e.mu.Unlock()
	}
}

// goodSwitchAllPaths releases in every alternative.
func (e *engine) goodSwitchAllPaths(x int) {
	e.mu.Lock()
	switch x {
	case 0:
		e.mu.Unlock()
	default:
		e.rows++
		e.mu.Unlock()
	}
}

// holdAcross intentionally returns holding the lock and documents itself.
func (e *engine) holdAcross() func() {
	e.mu.Lock() //sqlvet:ignore lockbalance -- hands the caller the locked mutex; the returned closure releases it
	return func() { e.mu.Unlock() }
}
