package lockbalance_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/lockbalance"
)

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, lockbalance.Analyzer, "lockbal")
}
