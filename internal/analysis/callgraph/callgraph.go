// Package callgraph provides the small amount of call-graph machinery the
// sqlvet analyzers share: resolving call expressions to their static
// callees, collecting a package's function declarations, and propagating a
// boolean property ("blocks", "emits redo") backwards over the static call
// graph until it reaches a fixed point.
//
// The engine under analysis uses no dynamic dispatch on its hot paths, so
// a static (non-interface) call graph is precise enough; calls through
// interfaces or function values simply contribute nothing, and analyzers
// that must care about them (lockorder's blocking-call rule) treat the
// specific dynamic patterns they recognize — channel ops, selected stdlib
// calls — syntactically instead.
package callgraph

import (
	"go/ast"
	"go/types"

	"bridgescope/internal/analysis/framework"
)

// Decls maps each package-level function or method object of the pass's
// package to its declaration.
func Decls(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// Callee resolves a call expression to the package-level function or
// method it statically invokes, or nil for calls through function values,
// interfaces, or built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	// Interface method calls have no body to analyze; treat as unresolved.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return nil
		}
	}
	return fn
}

// Filename returns the base file name (no directory) holding pos.
func Filename(pass *framework.Pass, pos ast.Node) string {
	return pass.Fset.Position(pos.Pos()).Filename
}

// Propagate computes, for every function declared in the pass's package,
// whether it has the property defined by direct/external, closed under
// "calls a function that has it":
//
//   - direct(fn, decl) reports whether the declaration itself exhibits the
//     property (e.g. contains a literal time.Sleep call).
//   - external(fn) classifies callees not declared in this package —
//     typically by consulting an imported fact or a name table. It may be
//     nil, in which case external callees never have the property.
//
// Function literals inside a declaration count toward that declaration:
// the property is about what executing the function's body may do, and
// immediately-invoked or deferred literals run on the same goroutine.
// Anything under a go statement runs on a different goroutine, so it does
// not contribute to the launcher's property and is skipped entirely.
func Propagate(pass *framework.Pass, decls map[*types.Func]*ast.FuncDecl,
	direct func(*types.Func, *ast.FuncDecl) bool,
	external func(*types.Func) bool) map[*types.Func]bool {

	has := map[*types.Func]bool{}
	// callers[g] = functions in this package that statically call g.
	callers := map[*types.Func][]*types.Func{}
	var work []*types.Func

	for fn, decl := range decls {
		if direct != nil && direct(fn, decl) {
			has[fn] = true
			work = append(work, fn)
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if _, local := decls[callee]; local {
				callers[callee] = append(callers[callee], fn)
			} else if external != nil && external(callee) && !has[fn] {
				has[fn] = true
				work = append(work, fn)
			}
			return true
		})
	}

	for len(work) > 0 {
		g := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[g] {
			if !has[caller] {
				has[caller] = true
				work = append(work, caller)
			}
		}
	}
	return has
}
