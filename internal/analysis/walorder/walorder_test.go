package walorder_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/walorder"
)

func TestWalOrder(t *testing.T) {
	analysistest.Run(t, walorder.Analyzer, "walord")
}
