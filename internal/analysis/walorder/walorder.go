// Package walorder enforces invariant L9: within a statement-execution
// function, every heap mutation is followed by its matching redo emission
// on every path before the function returns. redocoverage proves the
// emitter is *reachable*; walorder is its flow-sensitive companion — a
// mutation whose redo is skipped on one early-return branch still loses
// the write on crash recovery, even though some other path emits.
//
// The lattice is the set of pending mutations (mutator name → first
// position). A mutator call adds a pending entry; the paired emitter
// (engineshape.PairedEmitters) clears it; the generic emitters
// (redoAppend, logGrantsBatched) clear everything. A path that exits with
// pending entries is reported at each unmatched mutation. Kind pairing
// matters: a DELETE that logs redoInsert replays as the wrong operation.
//
// The storage-layer files (engineshape.StorageFiles) are exempt: rollback
// applies undo with no redo by design, vacuum is reconstructible, and
// recovery/snapshot replay the log. Error-return paths between a mutation
// and its emission are NOT exempt — the engine's idiom mutates, records
// undo, and emits redo with nothing in between precisely so no such
// window exists; a finding here means the window reopened.
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"bridgescope/internal/analysis/callgraph"
	"bridgescope/internal/analysis/engineshape"
	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/framework/flow"
)

var Analyzer = &framework.Analyzer{
	Name: "walorder",
	Doc: "flags heap mutations not followed by their matching redo emission on every path before the " +
		"function returns; a path that skips the redo loses the write on crash recovery",
	Run: run,
}

// walState is the pending-mutation set: mutator method name → position of
// the first unmatched call. Join is union — pending on any incoming path
// means the redo may be missing.
type walState struct {
	pending map[string]token.Pos
}

func newState() *walState { return &walState{pending: map[string]token.Pos{}} }

func (s *walState) CloneState() flow.State {
	c := newState()
	for k, v := range s.pending {
		c.pending[k] = v
	}
	return c
}

func (s *walState) JoinState(other flow.State) flow.State {
	for k, v := range other.(*walState).pending {
		if _, ok := s.pending[k]; !ok {
			s.pending[k] = v
		}
	}
	return s
}

func (s *walState) EqualState(other flow.State) bool {
	o := other.(*walState)
	if len(s.pending) != len(o.pending) {
		return false
	}
	for k := range s.pending {
		if _, ok := o.pending[k]; !ok {
			return false
		}
	}
	return true
}

func run(pass *framework.Pass) error {
	for _, decl := range callgraph.Decls(pass) {
		if decl.Body == nil {
			continue
		}
		if engineshape.StorageFiles[filepath.Base(pass.Fset.Position(decl.Pos()).Filename)] {
			continue
		}
		c := &checker{pass: pass}
		flow.Run(decl.Body, newState(), &flow.Analysis{
			Transfer: c.transfer,
			AtExit:   c.atExit,
		}, func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format, args...)
		})
	}
	return nil
}

type checker struct {
	pass *framework.Pass
}

func (c *checker) transfer(n ast.Node, st flow.State, report flow.Reporter) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	callee := callgraph.Callee(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	s := st.(*walState)
	if engineshape.IsMutator(callee) {
		if _, exists := s.pending[callee.Name()]; !exists {
			s.pending[callee.Name()] = call.Pos()
		}
		return
	}
	if !engineshape.IsEmitter(callee) {
		return
	}
	if engineshape.GenericEmitters[callee.Name()] {
		s.pending = map[string]token.Pos{}
		return
	}
	for mut := range s.pending {
		if engineshape.PairedEmitters[mut][callee.Name()] {
			delete(s.pending, mut)
		}
	}
}

func (c *checker) atExit(n ast.Node, st flow.State, report flow.Reporter) {
	// An exit that returns a non-nil error is the statement failing: the
	// transaction machinery applies undo and the heap never diverges from
	// the WAL, so a missing redo on that path is not a durability hole.
	// (This is also how fallible mutators look before the analyzer:
	// `if err := e.createTable(t); err != nil { return nil, err }` exits
	// with the mutation "pending" exactly when it never happened.)
	if rs, ok := n.(*ast.ReturnStmt); ok && returnsError(c.pass.TypesInfo, rs) {
		return
	}
	s := st.(*walState)
	muts := make([]string, 0, len(s.pending))
	for m := range s.pending {
		muts = append(muts, m)
	}
	sort.Strings(muts)
	for _, m := range muts {
		report(s.pending[m],
			"%s is not followed by its redo emission (%s) on every path before the function returns; crash recovery loses this write (rule L9)",
			m, pairedNames(m))
	}
}

// returnsError reports whether the return statement carries a value that
// can be a non-nil error: some result (other than the nil literal)
// whose static type implements error.
func returnsError(info *types.Info, rs *ast.ReturnStmt) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, r := range rs.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		t := info.TypeOf(r)
		if t == nil {
			continue
		}
		if types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface) {
			return true
		}
	}
	return false
}

// pairedNames renders the acceptable emitters for a mutator.
func pairedNames(mut string) string {
	var names []string
	for e := range engineshape.PairedEmitters[mut] {
		names = append(names, e)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " or "
		}
		out += n
	}
	if out == "" {
		return "redoAppend"
	}
	return out
}
