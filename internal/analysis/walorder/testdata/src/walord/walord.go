package walord

import "errors"

// Table/Session/Engine mirror the storage shapes the analyzer keys on.
type Table struct{ rows int }

type rowEntry struct{ id int }

type Session struct {
	engine *Engine
}

type Engine struct{ t Table }

func (t *Table) insertEntry(v int) *rowEntry    { return &rowEntry{} }
func (t *Table) installVersion(v int) *rowEntry { return &rowEntry{} }
func (t *Table) deleteVersion(v int) *rowEntry  { return &rowEntry{} }

func (e *Engine) createTable(name string) error { return nil }
func (e *Engine) dropTable(name string) error   { return nil }

func (s *Session) redoInsert(t *Table, e *rowEntry) {}
func (s *Session) redoUpdate(t *Table, e *rowEntry) {}
func (s *Session) redoDelete(t *Table, e *rowEntry) {}
func (s *Session) redoDDL(sql string)               {}
func (s *Session) redoCreateTable(name string)      {}
func (s *Session) record(op int)                    {}

// GoodInsert is the engine idiom: mutate, record undo, emit redo.
func (s *Session) GoodInsert(t *Table, vals []int) {
	for _, v := range vals {
		e := t.insertEntry(v)
		s.record(1)
		s.redoInsert(t, e)
	}
}

// BadInsertNoRedo never emits.
func (s *Session) BadInsertNoRedo(t *Table, v int) {
	e := t.insertEntry(v) // want `insertEntry is not followed by its redo emission \(redoInsert\) on every path`
	_ = e
}

// BadEarlyReturnSkipsRedo keeps the write on the early-exit path (no error
// is returned, so nothing rolls it back) but never logs it.
func (s *Session) BadEarlyReturnSkipsRedo(t *Table, v int, dup bool) bool {
	e := t.insertEntry(v) // want `insertEntry is not followed by its redo emission \(redoInsert\) on every path`
	if dup {
		return false
	}
	s.redoInsert(t, e)
	return true
}

// GoodErrorReturnRollsBack: a non-nil error return means the statement
// aborted; undo restores the heap, so the skipped redo is not a hole.
func (s *Session) GoodErrorReturnRollsBack(t *Table, v int, fail bool) error {
	e := t.insertEntry(v)
	s.record(1)
	if fail {
		return errors.New("constraint violated")
	}
	s.redoInsert(t, e)
	return nil
}

// BadWrongKind logs the wrong record kind: a delete replayed as an insert.
func (s *Session) BadWrongKind(t *Table, v int) {
	e := t.deleteVersion(v) // want `deleteVersion is not followed by its redo emission \(redoDelete\) on every path`
	s.redoInsert(t, e)
}

// GoodDeleteThenRedo pairs kind with kind.
func (s *Session) GoodDeleteThenRedo(t *Table, v int) {
	e := t.deleteVersion(v)
	s.redoDelete(t, e)
}

// GoodCreateTableDDL accepts either redoCreateTable or redoDDL for DDL.
func (s *Session) GoodCreateTableDDL(name string) error {
	if err := s.engine.createTable(name); err != nil {
		return err
	}
	s.redoCreateTable(name)
	return nil
}

// GoodDropTableDDL pairs dropTable with redoDDL.
func (s *Session) GoodDropTableDDL(name string) error {
	if err := s.engine.dropTable(name); err != nil {
		return err
	}
	s.redoDDL("DROP TABLE " + name)
	return nil
}

// GoodBranchesBothEmit emits in every alternative.
func (s *Session) GoodBranchesBothEmit(t *Table, v int, upd bool) {
	if upd {
		e := t.installVersion(v)
		s.redoUpdate(t, e)
	} else {
		e := t.insertEntry(v)
		s.redoInsert(t, e)
	}
}

// BadOneBranchSkips emits in one alternative only.
func (s *Session) BadOneBranchSkips(t *Table, v int, upd bool) {
	if upd {
		e := t.installVersion(v) // want `installVersion is not followed by its redo emission \(redoUpdate\) on every path`
		_ = e
	} else {
		e := t.installVersion(v)
		s.redoUpdate(t, e)
	}
}
