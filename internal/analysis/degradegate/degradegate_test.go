package degradegate_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/degradegate"
)

func TestDegradeGate(t *testing.T) {
	analysistest.Run(t, degradegate.Analyzer, "dgate", "dgate_use")
}
