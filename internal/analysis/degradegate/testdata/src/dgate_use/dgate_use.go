package dgate_use

import "dgate"

// Seed drives the upstream engine; the gating summaries arrive as facts.
// The ungated call comes first — nothing on any path before it gates.
func Seed(e *dgate.Engine, vals []int) error {
	e.BadUngatedInsert(0) // want `BadUngatedInsert mutates the heap/WAL before gating`
	for _, v := range vals {
		if err := e.GoodGatedInsert(v); err != nil { // gates internally: fine
			return err
		}
	}
	return nil
}
