package dgate

import "errors"

// Engine/Table mirror the real storage shapes the analyzer keys on.
type Engine struct {
	degraded bool
	t        Table
}

type Table struct{ rows int }

func (e *Engine) checkWritable() error {
	if e.degraded {
		return errors.New("engine is read-only")
	}
	return nil
}

func (t *Table) insertEntry(v int)        {}
func (t *Table) deleteVersion(v int)      {}
func (e *Engine) createTable(name string) {}

// GoodGatedInsert gates before mutating.
func (e *Engine) GoodGatedInsert(v int) error {
	if err := e.checkWritable(); err != nil {
		return err
	}
	e.t.insertEntry(v)
	return nil
}

// GoodConditionalGate mirrors the executor: the guard's correlation with
// write-ness is the caller's proof; a gate on some path counts.
func (e *Engine) GoodConditionalGate(readOnly bool, v int) error {
	if !readOnly {
		if err := e.checkWritable(); err != nil {
			return err
		}
	}
	e.t.insertEntry(v)
	return nil
}

// BadUngatedInsert mutates with no gate anywhere.
func (e *Engine) BadUngatedInsert(v int) {
	e.t.insertEntry(v) // want `insertEntry mutates the heap before any checkWritable gate`
}

// BadGateAfterMutation gates too late: the heap already moved.
func (e *Engine) BadGateAfterMutation(v int) error {
	e.t.insertEntry(v) // want `insertEntry mutates the heap before any checkWritable gate`
	return e.checkWritable()
}

// BadGateOnOtherBranch gates only the branch that does not mutate.
func (e *Engine) BadGateOnOtherBranch(fast bool, v int) error {
	if fast {
		e.t.deleteVersion(v) // want `deleteVersion mutates the heap before any checkWritable gate`
		return nil
	}
	if err := e.checkWritable(); err != nil {
		return err
	}
	e.t.deleteVersion(v)
	return nil
}

// helperMutate is an ungated helper; it stays quiet itself (not an entry
// point) but poisons exported callers through its summary.
func (e *Engine) helperMutate(name string) {
	e.createTable(name)
}

// BadViaHelper reaches the mutation through the helper, still ungated.
func (e *Engine) BadViaHelper(name string) {
	e.helperMutate(name) // want `helperMutate mutates the heap/WAL before gating`
}

// GoodViaHelper gates before calling the same helper.
func (e *Engine) GoodViaHelper(name string) error {
	if err := e.checkWritable(); err != nil {
		return err
	}
	e.helperMutate(name)
	return nil
}

// gatedHelper gates internally before mutating; callers need no gate of
// their own.
func (e *Engine) gatedHelper(v int) error {
	if err := e.checkWritable(); err != nil {
		return err
	}
	e.t.insertEntry(v)
	return nil
}

// GoodGatedHelper inherits the helper's internal gate.
func (e *Engine) GoodGatedHelper(v int) error {
	return e.gatedHelper(v)
}
