// Package degradegate enforces invariant L8: every exported entry path
// that mutates the catalog/row heap passes the degraded-mode write gate
// (Engine.checkWritable) before its first mutation. When durability I/O
// fails the engine degrades to read-only; a mutation that slips in before
// the gate leaves the heap ahead of what the WAL can honestly make
// durable — exactly the divergence degraded mode exists to prevent.
//
// The analysis is flow-sensitive on the shared framework/flow engine:
// "gated" is per-path state, so a gate call after the mutation, or on only
// the opposite branch, does not count. The gate may be conditional
// (`if !readOnly { checkWritable() }`) — the executor proves the guard
// matches the statement's write-ness, which is beyond a static checker, so
// a gate on *some* incoming path satisfies the rule; what is flagged is a
// mutation no gate call can precede on any path.
//
// Helpers stay quiet: per-function summaries (computed to an intra-package
// fixpoint with flow.Summaries and exported across packages as facts)
// record whether a function mutates before gating, and only exported
// functions — the engine's entry surface — report, at the call that first
// lets a mutation through ungated. The storage-layer files in
// engineshape.StorageFiles are exempt end to end: rollback's undo
// application, vacuum, and log replay legally touch the heap with no gate.
package degradegate

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"bridgescope/internal/analysis/callgraph"
	"bridgescope/internal/analysis/engineshape"
	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/framework/flow"
)

// gateFact carries a function's gating summary across packages.
type gateFact struct {
	Mutates         bool // transitively calls a heap/catalog mutator
	Gates           bool // calls checkWritable on some path
	UngatedMutation bool // some path mutates before any gate call
}

func (*gateFact) AFact() {}

var Analyzer = &framework.Analyzer{
	Name: "degradegate",
	Doc: "flags exported entry paths that mutate the heap/WAL before reaching the Engine.checkWritable " +
		"degraded-mode gate; a read-only engine must refuse writes before memory diverges from the WAL",
	FactTypes: []framework.Fact{&gateFact{}},
	Run:       run,
}

// summary is the per-function fixpoint value; it mirrors gateFact but
// must be comparable for flow.Summaries.
type summary struct {
	mutates, gates, ungated bool
}

// gateState is the per-path abstract state: has checkWritable been called?
// Join is OR — see the package comment on conditional gates.
type gateState struct {
	gated bool
}

func (s *gateState) CloneState() flow.State {
	c := *s
	return &c
}

func (s *gateState) JoinState(other flow.State) flow.State {
	s.gated = s.gated || other.(*gateState).gated
	return s
}

func (s *gateState) EqualState(other flow.State) bool {
	return s.gated == other.(*gateState).gated
}

func run(pass *framework.Pass) error {
	decls := callgraph.Decls(pass)

	exempt := func(decl *ast.FuncDecl) bool {
		base := filepath.Base(pass.Fset.Position(decl.Pos()).Filename)
		return engineshape.StorageFiles[base]
	}

	summaries := flow.Summaries(decls, func(fn *types.Func, decl *ast.FuncDecl, cur func(*types.Func) (summary, bool)) summary {
		if decl.Body == nil || exempt(decl) {
			return summary{}
		}
		var sum summary
		walk(pass, decl.Body, cur, func(call *ast.CallExpr, callee *types.Func, ungatedInternal, gated bool) {
			sum.mutates = true
			if !gated && ungatedInternal {
				sum.ungated = true
			}
		}, func() { sum.gates = true })
		return sum
	})

	for fn, sum := range summaries {
		if fn.Exported() && (sum.mutates || sum.gates) {
			pass.ExportObjectFact(fn, &gateFact{Mutates: sum.mutates, Gates: sum.gates, UngatedMutation: sum.ungated})
		}
	}

	// Reporting pass: exported functions are the entry surface.
	lookup := func(fn *types.Func) (summary, bool) {
		s, ok := summaries[fn]
		return s, ok
	}
	for fn, decl := range decls {
		if !fn.Exported() || decl.Body == nil || exempt(decl) {
			continue
		}
		walk(pass, decl.Body, lookup, func(call *ast.CallExpr, callee *types.Func, ungatedInternal, gated bool) {
			if gated || !ungatedInternal {
				return
			}
			if engineshape.IsMutator(callee) {
				pass.Reportf(call.Pos(),
					"%s mutates the heap before any checkWritable gate on this path; a degraded (read-only) engine must refuse the write first (rule L8)",
					callee.Name())
				return
			}
			pass.Reportf(call.Pos(),
				"%s mutates the heap/WAL before gating, and no checkWritable call precedes it here; gate the path before the first mutation (rule L8)",
				callee.Name())
		}, nil)
	}
	return nil
}

// walk interprets body with the gate lattice. onMutation fires for every
// call that transitively mutates: a direct mutator call (ungatedInternal
// true — the mutation happens immediately), or a callee whose
// summary/fact says it mutates (ungatedInternal reports whether the callee
// reaches its mutation before gating itself). onGate (optional) fires when
// the path becomes gated.
func walk(pass *framework.Pass, body *ast.BlockStmt,
	cur func(*types.Func) (summary, bool),
	onMutation func(call *ast.CallExpr, callee *types.Func, ungatedInternal, gated bool),
	onGate func()) {

	transfer := func(n ast.Node, st flow.State, report flow.Reporter) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := callgraph.Callee(pass.TypesInfo, call)
		if callee == nil {
			return
		}
		s := st.(*gateState)
		if engineshape.IsGate(callee) {
			s.gated = true
			if onGate != nil {
				onGate()
			}
			return
		}
		if engineshape.IsMutator(callee) {
			onMutation(call, callee, true, s.gated)
			return
		}
		cs, known := cur(callee)
		if !known {
			var fact gateFact
			if pass.ImportObjectFact(callee, &fact) {
				cs = summary{mutates: fact.Mutates, gates: fact.Gates, ungated: fact.UngatedMutation}
				known = true
			}
		}
		if !known {
			return
		}
		if cs.mutates {
			onMutation(call, callee, cs.ungated, s.gated)
		}
		if cs.gates {
			s.gated = true
			if onGate != nil {
				onGate()
			}
		}
	}
	flow.Run(body, &gateState{}, &flow.Analysis{Transfer: transfer},
		func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format, args...)
		})
}
