// Package analysistest runs one analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want "regex"`
// comments, in the style of golang.org/x/tools/go/analysis/analysistest
// (reimplemented offline, on the framework mirror in this repository).
//
// Layout: testdata/src/<fixture>/*.go is one package per directory, as in
// a GOPATH. A fixture may import a sibling fixture by its bare directory
// name; the import is type-checked and analyzed first, so facts flow to
// the dependent package exactly as they do between real packages under
// `go vet`. Standard-library imports resolve from the toolchain's export
// data.
//
// Expectations: a comment `// want "rx"` (one or more quoted regexps)
// asserts that each regexp matches a diagnostic reported on that line.
// Diagnostics suppressed by a valid //sqlvet:ignore directive are removed
// before matching; malformed directives surface as diagnostics of the
// pseudo-analyzer "sqlvet" and can be want-matched like any other.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/load"
)

// stdPackages are the standard-library imports fixtures may use.
var stdPackages = []string{"errors", "fmt", "os", "path/filepath", "sync", "sync/atomic", "time"}

// Run analyzes the named fixture packages (testdata/src/<name> relative to
// the test's working directory) and reports mismatches on t. Fixtures are
// loaded in the order given; facts propagate left to right, and want
// comments are checked in every named fixture.
func Run(t *testing.T, analyzer *framework.Analyzer, fixtures ...string) {
	t.Helper()
	framework.RegisterFactTypes([]*framework.Analyzer{analyzer})

	std, err := load.StdExports(stdPackages)
	if err != nil {
		t.Fatalf("listing stdlib export data: %v", err)
	}

	fset := token.NewFileSet()
	r := &runner{
		t:        t,
		analyzer: analyzer,
		fset:     fset,
		facts:    framework.NewFactStore(),
		std:      std,
		stdImp: load.ExportImporter(fset, nil, func(p string) (string, bool) {
			f, ok := std[p]
			return f, ok
		}),
		loaded: map[string]*types.Package{},
	}
	for _, fx := range fixtures {
		r.analyzePackage(fx, true)
	}
}

type runner struct {
	t        *testing.T
	analyzer *framework.Analyzer
	fset     *token.FileSet
	facts    *framework.FactStore
	std      map[string]string
	stdImp   types.Importer
	loaded   map[string]*types.Package
}

func (r *runner) dir(fixture string) string { return filepath.Join("testdata", "src", fixture) }

// load parses and type-checks one fixture package (recursively loading
// fixture imports first) without analyzing it.
func (r *runner) load(fixture string) ([]*ast.File, *types.Package, *types.Info) {
	r.t.Helper()
	dir := r.dir(fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		r.t.Fatalf("fixture %s: %v", fixture, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			r.t.Fatalf("fixture %s: %v", fixture, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		r.t.Fatalf("fixture %s: no .go files", fixture)
	}

	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := r.loaded[path]; ok {
			return p, nil
		}
		if _, err := os.Stat(r.dir(path)); err == nil {
			// Sibling fixture: analyze it first so its facts exist.
			return r.analyzePackage(path, false), nil
		}
		if _, ok := r.std[path]; ok {
			return r.stdImp.Import(path)
		}
		return nil, fmt.Errorf("fixture import %q not found (add it to stdPackages or testdata/src)", path)
	})

	info := load.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(fixture, r.fset, files, info)
	if err != nil {
		r.t.Fatalf("fixture %s: type-checking: %v", fixture, err)
	}
	r.loaded[fixture] = pkg
	return files, pkg, info
}

// analyzePackage loads a fixture, runs the analyzer with ignore-directive
// filtering, and (if check) matches diagnostics against want comments.
func (r *runner) analyzePackage(fixture string, check bool) *types.Package {
	r.t.Helper()
	files, pkg, info := r.load(fixture)

	known := map[string]bool{r.analyzer.Name: true}
	ignores := framework.BuildIgnores(r.fset, files, known)

	var diags []framework.Diagnostic
	for _, d := range ignores.Bad {
		d.Analyzer = "sqlvet"
		diags = append(diags, d)
	}
	pass := &framework.Pass{
		Analyzer:  r.analyzer,
		Fset:      r.fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     r.facts,
		Report: func(d framework.Diagnostic) {
			d.Analyzer = r.analyzer.Name
			diags = append(diags, d)
		},
	}
	if err := r.analyzer.Run(pass); err != nil {
		r.t.Fatalf("fixture %s: analyzer: %v", fixture, err)
	}
	diags = ignores.Filter(r.fset, diags)

	if check {
		r.match(fixture, files, diags)
	}
	return pkg
}

// expectation is one parsed want regexp.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe finds a want clause anywhere in a comment — also mid-comment, so
// a malformed //sqlvet:ignore directive line can carry the expectation for
// its own diagnostic.
var wantRe = regexp.MustCompile("\\bwant\\s+[\"`]")

// match compares diagnostics against the fixture's want comments.
func (r *runner) match(fixture string, files []*ast.File, diags []framework.Diagnostic) {
	r.t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				loc := wantRe.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				clause := strings.TrimSpace(strings.TrimPrefix(c.Text[loc[0]:], "want"))
				pos := r.fset.Position(c.Pos())
				for _, raw := range splitQuoted(r.t, pos, clause) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						r.t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, rx: rx, raw: raw,
					})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := r.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			r.t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			r.t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the sequence of Go-quoted strings after "want".
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: want expects quoted regexps, got %q", pos, s)
		}
		quote := rune(s[0])
		end := -1
		for i := 1; i < len(s); i++ {
			if rune(s[i]) == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want regexp: %s", pos, s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", pos, s[:end+1], err)
		}
		out = append(out, raw)
		s = s[end+1:]
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
