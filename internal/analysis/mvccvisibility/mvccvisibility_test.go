package mvccvisibility_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/mvccvisibility"
)

func TestMVCCVisibility(t *testing.T) {
	analysistest.Run(t, mvccvisibility.Analyzer, "mvccvis")
}
