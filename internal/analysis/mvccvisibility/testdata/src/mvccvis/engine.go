package mvccvis

// Mini mirror of the engine's MVCC heap. The analyzer keys on type and
// field names (Table.rows, rowEntry.v, rowVersion.prev), so this fixture
// exercises the same structural rules the real engine is checked against.

type rowVersion struct {
	xmin, xmax uint64
	prev       *rowVersion
	data       []string
}

type rowEntry struct {
	key string
	v   *rowVersion
}

type Table struct {
	Name string
	rows map[string]*rowEntry
}

type snapshot struct{ xid uint64 }
