package mvccvis

// scan.go is NOT whitelisted: operators here must go through the
// visibility helpers.

func badCount(t *Table) int {
	return len(t.rows) // want `direct access to Table\.rows bypasses MVCC snapshot filtering`
}

func badNewest(e *rowEntry) *rowVersion {
	return e.v // want `direct access to rowEntry\.v bypasses MVCC snapshot filtering`
}

func badWalk(v *rowVersion) int {
	n := 0
	for ; v != nil; v = v.prev { // want `direct access to rowVersion\.prev bypasses MVCC snapshot filtering`
		n++
	}
	return n
}

func goodScan(t *Table, sn snapshot) [][]string {
	return t.visibleRows(sn) // conforming: reads through the whitelisted helper
}

func suppressedAbove(t *Table) int {
	//sqlvet:ignore mvccvisibility -- fixture: verified-safe raw access, suppression on the line below
	return len(t.rows)
}

func suppressedTrailing(t *Table) int {
	return len(t.rows) //sqlvet:ignore mvccvisibility -- fixture: verified-safe raw access, same-line suppression
}

func missingReason(t *Table) int {
	//sqlvet:ignore mvccvisibility want `sqlvet:ignore directive requires a reason`
	return len(t.rows) // want `direct access to Table\.rows bypasses MVCC snapshot filtering`
}

func unknownAnalyzer(t *Table) int {
	//sqlvet:ignore nosuchanalyzer -- typo'd name must not disarm silently; also want `unknown analyzer "nosuchanalyzer"`
	return len(t.rows) // want `direct access to Table\.rows bypasses MVCC snapshot filtering`
}
