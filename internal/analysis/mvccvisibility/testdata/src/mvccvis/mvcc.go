package mvccvis

// mvcc.go is whitelisted: it implements the visibility helpers, so raw
// chain traversal here is the point, not a violation.

func (t *Table) visibleRows(sn snapshot) [][]string {
	var out [][]string
	for _, e := range t.rows {
		for v := e.v; v != nil; v = v.prev {
			if v.xmin <= sn.xid && (v.xmax == 0 || v.xmax > sn.xid) {
				out = append(out, v.data)
				break
			}
		}
	}
	return out
}
