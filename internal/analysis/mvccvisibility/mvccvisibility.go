// Package mvccvisibility flags direct access to the MVCC heap — Table row
// maps and row-version chains — outside the files that implement snapshot
// filtering. Every other read path must go through the visibility helpers
// (visible, visibleRows, snapView), or it will observe uncommitted or dead
// versions.
package mvccvisibility

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"bridgescope/internal/analysis/framework"
)

// heapFields maps a type name to the set of fields that constitute raw
// heap access on it. The rule is structural (type name + field name), so
// it applies equally to the engine and to test fixtures.
var heapFields = map[string]map[string]bool{
	"Table":      {"rows": true}, // chain-head map: key -> *rowEntry
	"rowEntry":   {"v": true},    // newest version in the chain
	"rowVersion": {"prev": true}, // chain traversal link
}

// allowedFiles are the visibility-implementing files where raw heap access
// is the point: mvcc.go owns the chains, catalog/txn/dml mutate them under
// write locks with latest-view semantics, snapshot/recovery serialize and
// rebuild them with the engine quiesced, and integrity.go audits the raw
// structures themselves (its whole job is to look under the MVCC hood).
var allowedFiles = map[string]bool{
	"mvcc.go":      true,
	"catalog.go":   true,
	"txn.go":       true,
	"dml.go":       true,
	"snapshot.go":  true,
	"recovery.go":  true,
	"integrity.go": true,
}

var Analyzer = &framework.Analyzer{
	Name: "mvccvisibility",
	Doc: "flags direct iteration over row-version chains or Table heaps outside the MVCC whitelist files, " +
		"so new operators cannot bypass snapshot filtering",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if allowedFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			recv := typeName(s.Recv())
			fields := heapFields[recv]
			if fields == nil || !fields[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"direct access to %s.%s bypasses MVCC snapshot filtering; use the visibility helpers in mvcc.go (or move this code into a whitelisted file)",
				recv, sel.Sel.Name)
			return true
		})
	}
	return nil
}

// typeName returns the bare name of t's named type, following pointers.
func typeName(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
