package redocoverage_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/redocoverage"
)

func TestRedoCoverage(t *testing.T) {
	analysistest.Run(t, redocoverage.Analyzer, "redo")
}

// TestCrossPackageFacts checks that "emits a redo record" crosses package
// boundaries via exported facts.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, redocoverage.Analyzer, "redo_b")
}
