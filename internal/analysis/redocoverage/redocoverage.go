// Package redocoverage keeps WAL replay complete: any function that
// mutates the catalog or the row heap and is callable from statement
// execution must (transitively) emit a redo record, or the mutation is
// silently lost on crash recovery.
//
// The check is structural. Heap/catalog mutators and redo emitters are
// identified by (receiver type name, method name); a function declared
// outside the whitelisted engine-internal files that directly calls a
// mutator must itself reach an emitter through the static call graph.
// Whether a function emits is exported as an object fact, so a caller in
// another package that wraps an emitting helper is recognized too.
package redocoverage

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"bridgescope/internal/analysis/callgraph"
	"bridgescope/internal/analysis/engineshape"
	"bridgescope/internal/analysis/framework"
)

// The mutator/emitter tables and the storage-file whitelist live in
// engineshape, shared with walorder and degradegate.
var (
	mutators     = engineshape.Mutators
	emitters     = engineshape.Emitters
	allowedFiles = engineshape.StorageFiles
)

// emitsRedoFact marks an exported function that transitively emits a redo
// record.
type emitsRedoFact struct{}

func (emitsRedoFact) AFact() {}

var Analyzer = &framework.Analyzer{
	Name: "redocoverage",
	Doc: "flags heap/catalog mutator calls in functions that do not (transitively) emit a redo record, " +
		"keeping WAL replay complete",
	FactTypes: []framework.Fact{&emitsRedoFact{}},
	Run:       run,
}

func methodIn(set map[string]map[string]bool, fn *types.Func) bool {
	byName := set[engineshape.RecvTypeName(fn)]
	return byName != nil && byName[fn.Name()]
}

func run(pass *framework.Pass) error {
	decls := callgraph.Decls(pass)

	// emits: does a function transitively reach a redo emitter?
	emits := callgraph.Propagate(pass, decls,
		func(fn *types.Func, decl *ast.FuncDecl) bool {
			found := false
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				if callee := callgraph.Callee(pass.TypesInfo, call); callee != nil && methodIn(emitters, callee) {
					found = true
				}
				return !found
			})
			return found
		},
		func(fn *types.Func) bool {
			if methodIn(emitters, fn) {
				return true
			}
			return pass.ImportObjectFact(fn, &emitsRedoFact{})
		})

	// Export the property for exported functions so dependent packages'
	// wrappers are recognized.
	for fn := range decls {
		if emits[fn] && fn.Exported() {
			pass.ExportObjectFact(fn, &emitsRedoFact{})
		}
	}

	// Any function outside the whitelist that directly calls a mutator
	// must emit.
	for fn, decl := range decls {
		file := filepath.Base(pass.Fset.Position(decl.Pos()).Filename)
		if allowedFiles[file] {
			continue
		}
		if emits[fn] {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := callgraph.Callee(pass.TypesInfo, call)
			if callee == nil || !methodIn(mutators, callee) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s mutates the heap/catalog but %s never emits a redo record; the mutation is lost on crash recovery",
				callee.Name(), fn.Name())
			return true
		})
	}
	return nil
}
