package redo

// dml.go is statement-execution territory: every heap/catalog mutation
// here must be paired with a redo emission, or replay loses it.

func execInsertGood(s *Session, t *Table, key string, data []string) {
	t.insertEntry(key, &rowVersion{data: data})
	s.redoInsert(t.Name, key) // conforming: mutation paired with emission
}

func execInsertBad(s *Session, t *Table, key string, data []string) {
	t.insertEntry(key, &rowVersion{data: data}) // want `insertEntry mutates the heap/catalog but execInsertBad never emits a redo record`
}

func execCreateBad(s *Session, name string) {
	s.engine.createTable(name) // want `createTable mutates the heap/catalog but execCreateBad never emits a redo record`
}

// execViaHelperGood emits through a local helper; the call-graph
// propagation recognizes the indirection.
func execViaHelperGood(s *Session, t *Table, key string) {
	t.deleteVersion(key)
	emitDelete(s, t.Name, key)
}

func emitDelete(s *Session, table, key string) {
	s.redoInsert(table, key)
}

func suppressedVacuum(t *Table, key string) {
	//sqlvet:ignore redocoverage -- fixture: maintenance path, state is reconstructible without redo
	t.deleteVersion(key)
}
