package redo

// txn.go is whitelisted: it declares the redo-record emitters.

type Session struct {
	engine *Engine
	log    [][]byte
}

func (s *Session) redoInsert(table, key string) { s.log = append(s.log, []byte(table+"+"+key)) }

func (s *Session) redoDDL(stmt string) { s.log = append(s.log, []byte(stmt)) }
