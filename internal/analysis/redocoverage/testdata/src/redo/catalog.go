package redo

// catalog.go is whitelisted: it declares the heap/catalog mutators.

type rowVersion struct{ data []string }

type Table struct {
	Name string
	rows map[string]*rowVersion
}

func (t *Table) insertEntry(key string, v *rowVersion) { t.rows[key] = v }

func (t *Table) deleteVersion(key string) { delete(t.rows, key) }

type Engine struct{ tables map[string]*Table }

func (e *Engine) createTable(name string) *Table {
	t := &Table{Name: name, rows: map[string]*rowVersion{}}
	e.tables[name] = t
	return t
}
