// Package redo_a exports one helper that emits a redo record and one that
// does not; the redocoverage analyzer publishes the emitting property as a
// fact that redo_b consumes.
package redo_a

type Session struct{ log [][]byte }

func (s *Session) redoInsert(table, key string) { s.log = append(s.log, []byte(table+"+"+key)) }

// LoggedEmit appends a redo record; callers inherit "emits" via its fact.
func LoggedEmit(s *Session, table, key string) { s.redoInsert(table, key) }

// Touch does bookkeeping only and emits nothing.
func Touch(s *Session) int { return len(s.log) }
