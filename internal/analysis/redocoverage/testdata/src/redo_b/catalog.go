package redo_b

// catalog.go (whitelisted) declares this package's heap mutator.

type Table struct {
	Name string
	rows map[string][]string
}

func (t *Table) insertEntry(key string, data []string) { t.rows[key] = data }
