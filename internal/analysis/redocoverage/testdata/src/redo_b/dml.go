package redo_b

import "redo_a"

// goodCrossPackage emits through redo_a.LoggedEmit; the emitting property
// arrives as an imported fact.
func goodCrossPackage(s *redo_a.Session, t *Table, key string, data []string) {
	t.insertEntry(key, data)
	redo_a.LoggedEmit(s, t.Name, key)
}

// badCrossPackage calls a helper that does NOT emit, so the mutation is
// unlogged.
func badCrossPackage(s *redo_a.Session, t *Table, key string, data []string) {
	t.insertEntry(key, data) // want `insertEntry mutates the heap/catalog but badCrossPackage never emits a redo record`
	redo_a.Touch(s)
}
