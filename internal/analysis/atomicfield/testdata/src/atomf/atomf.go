package atomf

import "sync/atomic"

// Counters mixes function-style atomics with plain access — the violating
// shapes L5 exists to catch.
type Counters struct {
	hits   int64 // accessed via atomic.AddInt64: atomic everywhere
	misses int64 // plain only: fine
	depth  int32
}

func (c *Counters) Record() {
	atomic.AddInt64(&c.hits, 1)
	c.misses++ // plain-only field, no atomic use anywhere
}

func (c *Counters) Snapshot() (int64, int64) {
	return c.hits, c.misses // want `plain access to Counters\.hits`
}

func (c *Counters) Reset() {
	c.hits = 0 // want `plain access to Counters\.hits`
	c.misses = 0
}

func (c *Counters) GoodSnapshot() (int64, int64) {
	return atomic.LoadInt64(&c.hits), c.misses
}

func (c *Counters) Deepen() {
	atomic.AddInt32(&c.depth, 1)
}

func (c *Counters) GoodDepth() int32 {
	return atomic.LoadInt32(&c.depth)
}

// Plain is never touched atomically; unrestricted access stays silent.
type Plain struct {
	n int
}

func (p *Plain) Bump() { p.n++ }
func (p *Plain) Get() int {
	return p.n
}

// Exported carries the discipline across packages via the exported fact.
type Exported struct {
	Ops  int64
	name string
}

func Touch(e *Exported) {
	atomic.AddInt64(&e.Ops, 1)
	e.name = "touched"
}
