package atomf_use

import (
	"sync/atomic"

	"atomf"
)

// readPlain touches an upstream atomic field plainly; the discipline
// arrives through atomf's exported fact.
func readPlain(e *atomf.Exported) int64 {
	return e.Ops // want `plain access to Exported\.Ops`
}

func readAtomic(e *atomf.Exported) int64 {
	return atomic.LoadInt64(&e.Ops)
}
