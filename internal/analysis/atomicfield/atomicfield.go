// Package atomicfield enforces the engine's invariant L5: a struct field
// that is ever accessed through sync/atomic must be accessed through
// sync/atomic everywhere. A single plain read racing an atomic.AddInt64 is
// still a data race — the atomic call only protects itself. The engine's
// own counters migrated to the atomic.IntNN wrapper types for exactly this
// reason; this analyzer catches the function-style pattern
// (atomic.LoadInt64(&s.n) in one file, s.n++ in another) before it ships.
//
// The "anywhere" is cross-package: packages export the set of atomically
// accessed fields per struct type as a fact on the type's object, so a
// dependent package touching an embedded engine struct's counter plainly
// is flagged even though the atomic uses live upstream.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"bridgescope/internal/analysis/framework"
)

// atomicFieldsFact records, on a struct type's *types.TypeName, the names
// of fields that package accessed through sync/atomic.
type atomicFieldsFact struct {
	Fields []string
}

func (*atomicFieldsFact) AFact() {}

var Analyzer = &framework.Analyzer{
	Name: "atomicfield",
	Doc: "flags plain reads/writes of struct fields that are elsewhere accessed through sync/atomic; " +
		"mixing the two is a data race, and the atomic discipline is tracked across packages via facts",
	FactTypes: []framework.Fact{&atomicFieldsFact{}},
	Run:       run,
}

// fieldID identifies a struct field by its owning named type and name.
type fieldID struct {
	typ  *types.TypeName
	name string
}

func run(pass *framework.Pass) error {
	// Pass 1: collect every field reached through a sync/atomic call in
	// this package, and remember those selector nodes so pass 2 does not
	// flag the atomic accesses themselves.
	atomicFields := map[fieldID]bool{}
	atomicUse := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := typeutilCallee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if id, ok := fieldOf(pass.TypesInfo, sel); ok {
					atomicFields[id] = true
					atomicUse[sel] = true
				}
			}
			return true
		})
	}

	// Publish this package's atomic fields so dependent packages inherit
	// the discipline (keyed per owning type).
	byType := map[*types.TypeName][]string{}
	for id := range atomicFields {
		byType[id.typ] = append(byType[id.typ], id.name)
	}
	for tn, fields := range byType {
		if tn.Pkg() != pass.Pkg {
			continue // upstream type: its fact already exists upstream
		}
		sort.Strings(fields)
		pass.ExportObjectFact(tn, &atomicFieldsFact{Fields: fields})
	}

	// isAtomic answers for any named type, local or imported.
	factCache := map[*types.TypeName]map[string]bool{}
	isAtomic := func(id fieldID) bool {
		if atomicFields[id] {
			return true
		}
		set, ok := factCache[id.typ]
		if !ok {
			set = map[string]bool{}
			var fact atomicFieldsFact
			if pass.ImportObjectFact(id.typ, &fact) {
				for _, f := range fact.Fields {
					set[f] = true
				}
			}
			factCache[id.typ] = set
		}
		return set[id.name]
	}

	// Pass 2: flag plain accesses to atomic fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUse[sel] {
				return true
			}
			id, ok := fieldOf(pass.TypesInfo, sel)
			if !ok || !isAtomic(id) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"plain access to %s.%s, which is accessed via sync/atomic elsewhere; mixing atomic and plain access is a data race — use atomic.Load/Store here too",
				id.typ.Name(), id.name)
			return true
		})
	}
	return nil
}

// fieldOf resolves sel to (owning named type, field name) if it selects a
// struct field of a named type.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (fieldID, bool) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return fieldID{}, false
	}
	t := s.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return fieldID{}, false
	}
	// Resolve through embedding to the struct that actually declares the
	// field, so `outer.count` and `outer.Inner.count` share one identity.
	obj := s.Obj()
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
		// The selection's object is the field var; its owning named type is
		// found by scanning the (possibly embedded) path. The last index
		// step happens inside the struct that declares the field.
		typ := named
		idx := s.Index()
		for _, i := range idx[:len(idx)-1] {
			st, ok := under(typ)
			if !ok || i >= st.NumFields() {
				return fieldID{}, false
			}
			typ = namedOf(st.Field(i).Type())
			if typ == nil {
				return fieldID{}, false
			}
		}
		return fieldID{typ: typ.Obj(), name: v.Name()}, true
	}
	return fieldID{}, false
}

func under(n *types.Named) (*types.Struct, bool) {
	st, ok := n.Underlying().(*types.Struct)
	return st, ok
}

func namedOf(t types.Type) *types.Named {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, _ := t.(*types.Named)
	return n
}

// typeutilCallee resolves a call's static callee if it is a package
// function (atomic.AddInt64 style). Method values and builtins return nil.
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
