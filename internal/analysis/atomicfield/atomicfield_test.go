package atomicfield_test

import (
	"testing"

	"bridgescope/internal/analysis/analysistest"
	"bridgescope/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "atomf", "atomf_use")
}
