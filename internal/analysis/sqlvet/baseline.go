package sqlvet

// This file is baseline support: a checked-in JSON file listing accepted
// pre-existing findings. CI suppresses findings that match a baseline entry
// and fails on anything new, so adopting a stricter analyzer never blocks
// on legacy debt while regressions still break the build. Entries match on
// (analyzer, relative file, message) — deliberately NOT on line number, so
// unrelated edits that shift a finding up or down the file don't invalidate
// the baseline. Entries that no longer match anything are "stale": the
// finding was fixed but the baseline still lists it, and CI asserts there
// are none so the file can only shrink to match reality.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry identifies one accepted finding, line-independent.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // relative, forward slashes
	Message  string `json:"message"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// Baseline is the persisted form of the accepted-findings file.
type Baseline struct {
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

// ReadBaseline loads the baseline at path. A missing file is an empty
// baseline, not an error.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Apply splits findings into fresh ones (not covered by the baseline) and
// reports which baseline entries are stale (matched nothing). A single
// entry suppresses every finding with the same analyzer, file, and message
// — identical findings at different lines are one piece of accepted debt.
func (b *Baseline) Apply(root string, findings []Finding) (fresh []Finding, stale []BaselineEntry) {
	matched := map[string]bool{}
	known := map[string]bool{}
	for _, e := range b.Findings {
		known[e.key()] = true
	}
	for _, f := range findings {
		k := BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Position.Filename),
			Message:  f.Message,
		}.key()
		if known[k] {
			matched[k] = true
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Findings {
		if !matched[e.key()] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// WriteBaselineFile rewrites path to accept exactly the given findings,
// deduplicated and sorted for a stable diff.
func WriteBaselineFile(path, root string, findings []Finding) error {
	seen := map[string]bool{}
	b := Baseline{
		Comment: "Accepted pre-existing sqlvet findings. Matched by (analyzer, file, message), line-independent. " +
			"Regenerate with: go run ./cmd/sqlvet -baseline " + path + " -write-baseline ./...",
		Findings: []BaselineEntry{},
	}
	for _, f := range findings {
		e := BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Position.Filename),
			Message:  f.Message,
		}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		fi, fj := b.Findings[i], b.Findings[j]
		if fi.File != fj.File {
			return fi.File < fj.File
		}
		if fi.Analyzer != fj.Analyzer {
			return fi.Analyzer < fj.Analyzer
		}
		return fi.Message < fj.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	//sqlvet:ignore vfsio -- the baseline is lint-tool state like sqlvet's .vetx cache, not database state; crash coverage is irrelevant
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
