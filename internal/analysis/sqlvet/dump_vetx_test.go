package sqlvet

import (
	"encoding/gob"
	"fmt"
	"os"
	"testing"

	"bridgescope/internal/analysis/framework"
)

// TestDumpVetx is a debugging helper: SQLVET_DUMP=<file> go test -run TestDumpVetx
func TestDumpVetx(t *testing.T) {
	path := os.Getenv("SQLVET_DUMP")
	if path == "" {
		t.Skip("set SQLVET_DUMP to a .vetx file")
	}
	framework.RegisterFactTypes(Analyzers())
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := framework.NewFactStore()
	if err := s.Decode(gob.NewDecoder(f)); err != nil {
		t.Fatal(err)
	}
	fmt.Println(s.DebugDump())
}
