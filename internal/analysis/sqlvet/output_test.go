package sqlvet

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFindings(root string) []Finding {
	return []Finding{
		{
			Position: token.Position{Filename: filepath.Join(root, "internal", "sqldb", "wal.go"), Line: 42, Column: 2},
			Analyzer: "lockbalance",
			Message:  "e.mu is still held when the function returns on this path",
		},
		{
			Position: token.Position{Filename: filepath.Join(root, "internal", "csvdb", "csvdb.go"), Line: 7, Column: 1},
			Analyzer: "vfsio",
			Message:  "os.Create bypasses the vfs seam",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	root := t.TempDir()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, sampleFindings(root)); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}
	if got[0]["file"] != "internal/sqldb/wal.go" || got[0]["line"] != float64(42) {
		t.Fatalf("first finding mangled: %v", got[0])
	}
	if got[1]["analyzer"] != "vfsio" {
		t.Fatalf("second finding mangled: %v", got[1])
	}
}

func TestWriteSARIF(t *testing.T) {
	root := t.TempDir()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, sampleFindings(root)); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("not SARIF 2.1.0: version=%q schema=%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "sqlvet" {
		t.Fatalf("bad run/tool: %+v", log.Runs)
	}
	// Every suite analyzer plus the pseudo-rule appears as a rule.
	if want := len(Analyzers()) + 1; len(log.Runs[0].Tool.Driver.Rules) != want {
		t.Fatalf("got %d rules, want %d", len(log.Runs[0].Tool.Driver.Rules), want)
	}
	res := log.Runs[0].Results
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].RuleID != "lockbalance" || res[0].Level != "error" {
		t.Fatalf("first result mangled: %+v", res[0])
	}
	// ruleIndex must point at the matching rule entry.
	if id := log.Runs[0].Tool.Driver.Rules[res[0].RuleIndex].ID; id != "lockbalance" {
		t.Fatalf("ruleIndex points at %q, want lockbalance", id)
	}
	loc := res[1].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/csvdb/csvdb.go" || loc.Region.StartLine != 7 {
		t.Fatalf("second location mangled: %+v", loc)
	}
}

func TestBaselineApply(t *testing.T) {
	root := t.TempDir()
	findings := sampleFindings(root)
	b := &Baseline{Findings: []BaselineEntry{
		{ // matches the lockbalance finding regardless of line drift
			Analyzer: "lockbalance",
			File:     "internal/sqldb/wal.go",
			Message:  "e.mu is still held when the function returns on this path",
		},
		{ // stale: nothing reports this anymore
			Analyzer: "walorder",
			File:     "internal/sqldb/dml.go",
			Message:  "insertEntry is not followed by its redo emission",
		},
	}}
	fresh, stale := b.Apply(root, findings)
	if len(fresh) != 1 || fresh[0].Analyzer != "vfsio" {
		t.Fatalf("fresh = %v, want just the vfsio finding", fresh)
	}
	if len(stale) != 1 || stale[0].Analyzer != "walorder" {
		t.Fatalf("stale = %v, want just the walorder entry", stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, ".sqlvet-baseline.json")
	findings := sampleFindings(root)
	if err := WriteBaselineFile(path, root, findings); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := b.Apply(root, findings)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip not a fixed point: fresh=%v stale=%v", fresh, stale)
	}

	// A missing baseline is empty, not an error.
	empty, err := ReadBaseline(filepath.Join(root, "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale = empty.Apply(root, findings)
	if len(fresh) != 2 || len(stale) != 0 {
		t.Fatalf("empty baseline should pass everything through: fresh=%v stale=%v", fresh, stale)
	}
}
