package sqlvet

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// relPath renders a finding's file path relative to root with forward
// slashes, the form used by JSON/SARIF output and baseline matching so
// reports are stable across checkouts.
func relPath(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// findingJSON is the -json wire form of one finding.
type findingJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a JSON array (one object per finding, paths
// relative to root).
func WriteJSON(w io.Writer, root string, findings []Finding) error {
	out := make([]findingJSON, 0, len(findings))
	for _, f := range findings {
		out = append(out, findingJSON{
			File:     relPath(root, f.Position.Filename),
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — just the subset of the schema the suite emits.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with one run; every
// analyzer in the suite appears as a rule (fired or not) so viewers can
// show the full rule set, and each finding is an error-level result with a
// %SRCROOT%-relative location.
func WriteSARIF(w io.Writer, root string, findings []Finding) error {
	analyzers := Analyzers()
	rules := make([]sarifRule, 0, len(analyzers))
	index := map[string]int{}
	for i, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		index[a.Name] = i
	}
	// The "sqlvet" pseudo-rule carries malformed-ignore diagnostics.
	index["sqlvet"] = len(rules)
	rules = append(rules, sarifRule{
		ID:               "sqlvet",
		ShortDescription: sarifMessage{Text: "suite-level diagnostics (malformed //sqlvet:ignore directives)"},
	})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := index[f.Analyzer]
		if !ok {
			idx = index["sqlvet"]
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       relPath(root, f.Position.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Position.Line,
						StartColumn: f.Position.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sqlvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
