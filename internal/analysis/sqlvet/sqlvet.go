// Package sqlvet assembles the engine's invariant analyzers (lockorder,
// mvccvisibility, redocoverage, retryableerr, atomicfield, lockbalance,
// vfsio, degradegate, walorder) into one runnable suite. It has two
// drivers, both in cmd/sqlvet: a standalone mode that loads packages
// itself ("go run ./cmd/sqlvet ./..."), and a unitchecker mode that
// speaks the `go vet -vettool` protocol.
package sqlvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"bridgescope/internal/analysis/atomicfield"
	"bridgescope/internal/analysis/degradegate"
	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/load"
	"bridgescope/internal/analysis/lockbalance"
	"bridgescope/internal/analysis/lockorder"
	"bridgescope/internal/analysis/mvccvisibility"
	"bridgescope/internal/analysis/redocoverage"
	"bridgescope/internal/analysis/retryableerr"
	"bridgescope/internal/analysis/vfsio"
	"bridgescope/internal/analysis/walorder"
)

// Analyzers returns the full suite, in stable order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		lockorder.Analyzer,
		mvccvisibility.Analyzer,
		redocoverage.Analyzer,
		retryableerr.Analyzer,
		atomicfield.Analyzer,
		lockbalance.Analyzer,
		vfsio.Analyzer,
		degradegate.Analyzer,
		walorder.Analyzer,
	}
}

func init() {
	framework.RegisterFactTypes(Analyzers())
}

// RunPackage runs every analyzer over one type-checked package, sharing
// facts, applying //sqlvet:ignore directives, and dropping _test.go files
// (engine tests legitimately poke heap internals). Diagnostics come back
// sorted by position with Analyzer filled in; malformed ignore directives
// are themselves diagnostics under the pseudo-analyzer "sqlvet".
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *framework.FactStore) ([]framework.Diagnostic, error) {
	var kept []*ast.File
	for _, f := range files {
		name := filepath.Base(fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}

	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ignores := framework.BuildIgnores(fset, kept, known)

	var diags []framework.Diagnostic
	for i := range ignores.Bad {
		d := ignores.Bad[i]
		d.Analyzer = "sqlvet"
		diags = append(diags, d)
	}

	for _, a := range Analyzers() {
		a := a
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     kept,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
			Report: func(d framework.Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	diags = ignores.Filter(fset, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Finding is one formatted diagnostic from a standalone run.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Check loads the packages matching patterns (rooted at dir) and runs the
// suite over the matched packages, with in-process cross-package fact
// propagation: dependencies inside the module are analyzed first so their
// facts are available, but only findings in matched packages are returned.
func Check(dir string, patterns []string) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	facts := framework.NewFactStore()
	var out []Finding
	for _, p := range pkgs { // dependency order
		diags, err := RunPackage(p.Fset, p.Files, p.Types, p.Info, facts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		if !p.Target {
			continue
		}
		for _, d := range diags {
			out = append(out, Finding{
				Position: p.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return out, nil
}
