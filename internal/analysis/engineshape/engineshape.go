// Package engineshape is the one place that names the engine's storage
// shapes for the analyzers: which methods mutate the catalog/row heap,
// which emit redo records, which files implement the storage layer itself.
// redocoverage (reachability), walorder (flow pairing), and degradegate
// (write gating) all key off the same tables, so adding a mutator to the
// engine is a one-line change here rather than three drifting copies.
package engineshape

import "go/types"

// Mutators are the heap/catalog mutation primitives, keyed by receiver
// type name then method name.
var Mutators = map[string]map[string]bool{
	"Table": {
		"insertEntry":    true,
		"installVersion": true,
		"deleteVersion":  true,
		"addIndex":       true,
	},
	"Engine": {
		"createTable": true,
		"dropTable":   true,
		"createView":  true,
		"dropView":    true,
	},
}

// Emitters are the redo-record emission points.
var Emitters = map[string]map[string]bool{
	"Session": {
		"redoInsert":      true,
		"redoUpdate":      true,
		"redoDelete":      true,
		"redoDDL":         true,
		"redoCreateTable": true,
		"redoAppend":      true,
	},
	"Engine": {
		"logGrantsBatched": true,
	},
}

// PairedEmitters maps each mutator method to the emitter methods that
// cover it in the WAL. Generic emitters (redoAppend, logGrantsBatched)
// cover any mutation; the kind-specific ones must match, so a DELETE
// that logs redoInsert is still flagged.
var PairedEmitters = map[string]map[string]bool{
	"insertEntry":    {"redoInsert": true},
	"installVersion": {"redoUpdate": true},
	"deleteVersion":  {"redoDelete": true},
	"addIndex":       {"redoDDL": true},
	"createTable":    {"redoCreateTable": true, "redoDDL": true},
	"dropTable":      {"redoDDL": true},
	"createView":     {"redoDDL": true},
	"dropView":       {"redoDDL": true},
}

// GenericEmitters cover every pending mutation: redoAppend is the raw
// record constructor the kind-specific helpers wrap, and logGrantsBatched
// logs a whole batch of grant mutations.
var GenericEmitters = map[string]bool{
	"redoAppend":       true,
	"logGrantsBatched": true,
}

// StorageFiles implement the storage layer itself: catalog.go declares the
// mutators, txn.go the emitters plus undo application (rollback legally
// mutates the heap with no redo and no write gate — it restores the
// pre-image), mvcc.go vacuums dead versions (reconstructible, never
// logged), and recovery/snapshot replay the log, where emitting again
// would double-log and gating would deadlock a not-yet-open engine.
var StorageFiles = map[string]bool{
	"catalog.go":  true,
	"mvcc.go":     true,
	"txn.go":      true,
	"recovery.go": true,
	"snapshot.go": true,
}

// GateMethod is the write gate every statement path must pass before its
// first heap/WAL mutation: a degraded engine refuses writes here.
const GateMethod = "checkWritable"

// RecvTypeName resolves fn's receiver type name ("" for plain functions),
// unwrapping the pointer.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// IsMutator reports whether fn is a heap/catalog mutation primitive.
func IsMutator(fn *types.Func) bool {
	return Mutators[RecvTypeName(fn)][fn.Name()]
}

// IsEmitter reports whether fn is a redo emission point.
func IsEmitter(fn *types.Func) bool {
	return Emitters[RecvTypeName(fn)][fn.Name()]
}

// IsGate reports whether fn is the degraded-mode write gate.
func IsGate(fn *types.Func) bool {
	return fn.Name() == GateMethod && RecvTypeName(fn) == "Engine"
}
