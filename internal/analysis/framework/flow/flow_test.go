package flow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// setState is a test lattice: a set of strings with union join. Calls to
// functions named add_X insert X; calls to del_X remove X (making the
// domain non-monotone within a path, which is exactly what lock-style
// analyses need).
type setState struct{ m map[string]bool }

func newSet() *setState { return &setState{m: map[string]bool{}} }

func (s *setState) CloneState() State {
	c := newSet()
	for k := range s.m {
		c.m[k] = true
	}
	return c
}

func (s *setState) JoinState(other State) State {
	for k := range other.(*setState).m {
		s.m[k] = true
	}
	return s
}

func (s *setState) EqualState(other State) bool {
	o := other.(*setState)
	if len(s.m) != len(o.m) {
		return false
	}
	for k := range s.m {
		if !o.m[k] {
			return false
		}
	}
	return true
}

func (s *setState) keys() string {
	var ks []string
	for k := range s.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

// runBody interprets the body of the first function declared in src and
// returns the fall-off state (nil if unreachable), the states observed at
// each return statement, and every reported diagnostic message.
func runBody(t *testing.T, src string) (fallOff *setState, returns []string, reports []string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			body = fd.Body
			break
		}
	}
	if body == nil {
		t.Fatal("no function in source")
	}

	a := &Analysis{
		Transfer: func(n ast.Node, st State, report Reporter) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return
			}
			s := st.(*setState)
			switch {
			case strings.HasPrefix(id.Name, "add_"):
				s.m[strings.TrimPrefix(id.Name, "add_")] = true
			case strings.HasPrefix(id.Name, "del_"):
				delete(s.m, strings.TrimPrefix(id.Name, "del_"))
			case id.Name == "report_if_a" && s.m["a"]:
				report(call.Pos(), "a is set")
			}
		},
		AtExit: func(n ast.Node, st State, report Reporter) {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns = append(returns, st.(*setState).keys())
			}
		},
	}
	out, terminated := Run(body, newSet(), a, func(pos token.Pos, format string, args ...any) {
		reports = append(reports, fmt.Sprintf(format, args...))
	})
	if terminated {
		return nil, returns, reports
	}
	return out.(*setState), returns, reports
}

func TestBranchJoinUnion(t *testing.T) {
	out, _, _ := runBody(t, `
func f(c bool) {
	if c {
		add_a()
	} else {
		add_b()
	}
}`)
	if got := out.keys(); got != "a,b" {
		t.Fatalf("branch join = %q, want %q (union of both alternatives)", got, "a,b")
	}
}

func TestBranchWithoutElseKeepsFallThrough(t *testing.T) {
	out, _, _ := runBody(t, `
func f(c bool) {
	add_a()
	if c {
		del_a()
	}
}`)
	// One path still has a, the other deleted it: the join keeps the
	// conservative union.
	if got := out.keys(); got != "a" {
		t.Fatalf("state after if-without-else = %q, want %q", got, "a")
	}
}

func TestTerminatingBranchRestore(t *testing.T) {
	out, returns, _ := runBody(t, `
func f(c bool) {
	add_a()
	if c {
		del_a()
		return
	}
	add_b()
}`)
	// The early-return path deleted a, but it left the flow: the
	// fall-through must still hold a.
	if got := out.keys(); got != "a,b" {
		t.Fatalf("fall-off state = %q, want %q (terminating branch must not leak its changes)", got, "a,b")
	}
	if len(returns) != 1 || returns[0] != "" {
		t.Fatalf("return-path states = %v, want one empty state", returns)
	}
}

func TestAllBranchesTerminate(t *testing.T) {
	fallOff, returns, _ := runBody(t, `
func f(c bool) {
	if c {
		add_a()
		return
	} else {
		return
	}
}`)
	if fallOff != nil {
		t.Fatalf("fall-off reachable with state %q, want unreachable", fallOff.keys())
	}
	if len(returns) != 2 {
		t.Fatalf("got %d return states, want 2", len(returns))
	}
}

func TestPanicTerminates(t *testing.T) {
	out, _, _ := runBody(t, `
func f(c bool) {
	add_a()
	if c {
		del_a()
		panic("boom")
	}
}`)
	if got := out.keys(); got != "a" {
		t.Fatalf("state after panicking branch = %q, want %q", got, "a")
	}
}

func TestLoopFixpoint(t *testing.T) {
	out, _, _ := runBody(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		add_a()
	}
}`)
	// Zero iterations (empty) joined with ≥1 iterations ({a}): union {a}.
	if got := out.keys(); got != "a" {
		t.Fatalf("loop exit state = %q, want %q", got, "a")
	}
}

func TestLoopFixpointReachesBackEdgeState(t *testing.T) {
	// a is added at the end of the body, so only the second and later
	// iterations observe it at the top: a single body pass would miss the
	// report, the fixpoint must catch it.
	_, _, reports := runBody(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		report_if_a()
		add_a()
	}
}`)
	if len(reports) != 1 {
		t.Fatalf("got %d reports %v, want exactly 1 (found on iteration 2, deduplicated after)", len(reports), reports)
	}
}

func TestRangeLoopJoin(t *testing.T) {
	out, _, _ := runBody(t, `
func f(xs []int) {
	add_a()
	for range xs {
		del_a()
		add_b()
	}
}`)
	if got := out.keys(); got != "a,b" {
		t.Fatalf("range exit state = %q, want %q (zero-iteration path keeps a)", got, "a,b")
	}
}

func TestSwitchJoinWithDefault(t *testing.T) {
	out, _, _ := runBody(t, `
func f(x int) {
	switch x {
	case 1:
		add_a()
	case 2:
		add_b()
		return
	default:
		add_c()
	}
}`)
	// case 2 returns; with a default clause the entry state does not
	// survive on its own, so the join is {a} ∪ {c}.
	if got := out.keys(); got != "a,c" {
		t.Fatalf("switch join = %q, want %q", got, "a,c")
	}
}

func TestSwitchWithoutDefaultKeepsEntry(t *testing.T) {
	out, _, _ := runBody(t, `
func f(x int) {
	add_a()
	switch x {
	case 1:
		del_a()
	}
}`)
	if got := out.keys(); got != "a" {
		t.Fatalf("switch-no-default join = %q, want %q (no-match path keeps entry state)", got, "a")
	}
}

func TestFuncLitAndGoSkipped(t *testing.T) {
	out, _, _ := runBody(t, `
func f() {
	g := func() { add_a() }
	go add_b()
	_ = g
}`)
	if got := out.keys(); got != "" {
		t.Fatalf("state = %q, want empty (function literals and go statements are other scopes)", got)
	}
}

func TestReportDeduplication(t *testing.T) {
	_, _, reports := runBody(t, `
func f(n int) {
	add_a()
	for i := 0; i < n; i++ {
		report_if_a()
	}
}`)
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1 (fixpoint iterations must not repeat a finding)", len(reports))
	}
}

func TestDeferHookFires(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", `package p
func f() {
	defer cleanup()
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	var deferred int
	a := &Analysis{
		OnDefer: func(d *ast.DeferStmt, st State, report Reporter) { deferred++ },
	}
	Run(body, newSet(), a, nil)
	if deferred != 1 {
		t.Fatalf("OnDefer fired %d times, want 1", deferred)
	}
}

// TestSummariesFixpoint checks the intra-package summary fixpoint: the
// "reaches target" property must flow backwards through call chains
// regardless of declaration order, including mutual recursion.
func TestSummariesFixpoint(t *testing.T) {
	src := `package p
func a() { b() }
func b() { c() }
func c() { target() }
func m1() { m2() }
func m2() { m1() }
func target() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}, Uses: map[*ast.Ident]types.Object{}}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}

	decls := map[*types.Func]*ast.FuncDecl{}
	for _, d := range f.Decls {
		fd := d.(*ast.FuncDecl)
		decls[info.Defs[fd.Name].(*types.Func)] = fd
	}

	reaches := Summaries(decls, func(fn *types.Func, decl *ast.FuncDecl, cur func(*types.Func) (bool, bool)) bool {
		found := false
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "target" {
				found = true
				return false
			}
			if callee, ok := info.Uses[id].(*types.Func); ok {
				if r, ok := cur(callee); ok && r {
					found = true
					return false
				}
			}
			return true
		})
		return found
	})

	byName := map[string]bool{}
	for fn, r := range reaches {
		byName[fn.Name()] = r
	}
	for _, name := range []string{"a", "b", "c"} {
		if !byName[name] {
			t.Errorf("%s should reach target through the call chain (declaration order is reversed)", name)
		}
	}
	for _, name := range []string{"m1", "m2", "target"} {
		if byName[name] {
			t.Errorf("%s should not be marked as reaching target", name)
		}
	}
}
