package flow

import (
	"go/ast"
	"go/types"
	"sort"
)

// Summaries computes a per-function summary to an intra-package fixed
// point. compute derives one function's summary; it may consult the
// current summary of any other declaration through cur (second result
// false while that function has no summary yet — treat as bottom). The
// engine re-runs compute over every declaration, in a deterministic
// order, until no summary changes, so mutual recursion and any
// declaration order converge to the same result.
//
// Summary types must be comparable (a struct of booleans, a string);
// change detection is ==. Cross-package summaries are the analyzers'
// business: they seed compute from imported facts and export the final
// summaries of exported functions as facts afterwards.
func Summaries[S comparable](decls map[*types.Func]*ast.FuncDecl,
	compute func(fn *types.Func, decl *ast.FuncDecl, cur func(*types.Func) (S, bool)) S) map[*types.Func]S {

	// Deterministic iteration order: by source position.
	order := make([]*types.Func, 0, len(decls))
	for fn := range decls {
		order = append(order, fn)
	}
	sort.Slice(order, func(i, j int) bool { return decls[order[i]].Pos() < decls[order[j]].Pos() })

	out := map[*types.Func]S{}
	lookup := func(fn *types.Func) (S, bool) {
		s, ok := out[fn]
		return s, ok
	}
	// The summary lattice is finite (comparable structs over a finite
	// program), and compute is expected to be monotone; bound the passes
	// anyway so a non-monotone client cannot loop forever.
	for pass := 0; pass < 2*len(order)+2; pass++ {
		changed := false
		for _, fn := range order {
			next := compute(fn, decls[fn], lookup)
			if prev, ok := out[fn]; !ok || prev != next {
				out[fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}
