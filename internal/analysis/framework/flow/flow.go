// Package flow is the shared flow-sensitive analysis engine under the
// sqlvet analyzers. It interprets one function body statement by statement
// over a client-supplied abstract state (a join-semilattice), handling the
// control-flow shapes the analyzers care about:
//
//   - Branch merges: an if/else, switch, or select forks the current state
//     into each alternative and joins the surviving states where control
//     flow re-merges.
//   - Terminating branches: an alternative that exits the enclosing flow
//     (return, break/continue/goto, panic) contributes nothing to the
//     merge — its state changes apply only to the departed path. This is
//     the engine idiom `if cond { mu.Unlock(); return err }`: the
//     fall-through still holds the lock.
//   - Loops: the body is re-interpreted from the join of the entry state
//     and the previous iteration's exit state until the state reaches a
//     fixed point (bounded; the analyzers' lattices are a few booleans or
//     small sets, so two or three passes suffice). Because every iteration
//     corresponds to a concrete unrolling, diagnostics reported during the
//     fixpoint are real paths; the engine deduplicates repeats by
//     position+message.
//   - Function literals are separate scopes and are skipped; go statements
//     run on another goroutine and are skipped; defer bodies run at return
//     and are surfaced through the OnDefer hook instead of being
//     interpreted inline.
//
// Interprocedural reasoning stays in the analyzers: they compute
// per-function summaries with Summaries (an intra-package fixpoint over
// declarations) and publish them across package boundaries through the
// framework's gob fact mechanism.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
)

// State is one analysis' abstract state, a join-semilattice element. All
// three methods must treat the receiver as mutable scratch owned by the
// engine: CloneState deep-copies, JoinState folds other into the receiver
// (least upper bound) and returns it, EqualState tests lattice equality
// (used to detect loop fixpoints).
type State interface {
	CloneState() State
	JoinState(other State) State
	EqualState(other State) bool
}

// Reporter emits one diagnostic. The engine wraps the client's sink with
// position+message deduplication so loop fixpoint iterations cannot repeat
// a finding.
type Reporter func(pos token.Pos, format string, args ...any)

// Analysis is the client of one Run: a transfer function plus optional
// exit and defer hooks.
type Analysis struct {
	// Transfer applies one leaf node's effect to st, mutating it in place.
	// It is called in approximate evaluation order for every node of every
	// non-control statement and every condition/expression of control
	// statements — calls, sends, selectors, assignments — except nodes
	// under function literals or go statements.
	Transfer func(n ast.Node, st State, report Reporter)
	// AtExit is invoked with the state at each explicit return (n is the
	// ReturnStmt, after its result expressions transferred) and once at
	// the body's fall-off end (n is the BlockStmt) if it is reachable.
	AtExit func(n ast.Node, st State, report Reporter)
	// OnDefer is invoked when a defer statement executes (i.e. registers).
	// The deferred call's own effects happen at return; clients that care
	// (lockbalance's deferred Unlock) record them in the state here.
	// The deferred call's argument expressions still go through Transfer.
	OnDefer func(d *ast.DeferStmt, st State, report Reporter)
}

// maxLoopPasses bounds fixpoint iteration per loop. The analyzers'
// lattices have height ≤ 3 per tracked cell, so convergence is fast; if a
// pathological state keeps growing the engine stops re-interpreting and
// accepts the last join (under-approximating further iterations).
const maxLoopPasses = 8

// Run interprets body starting from init and returns the state at the
// body's fall-off exit along with whether that exit is reachable
// (terminated=true means every path returned/panicked). init is owned by
// the engine afterwards; pass a fresh state.
func Run(body *ast.BlockStmt, init State, a *Analysis, report Reporter) (out State, terminated bool) {
	w := &walker{a: a, report: dedup(report)}
	st, term := w.stmts(body.List, init)
	if !term && a.AtExit != nil {
		a.AtExit(body, st, w.report)
	}
	return st, term
}

// dedup wraps report so the same (pos, message) pair fires once per Run.
func dedup(report Reporter) Reporter {
	if report == nil {
		return func(token.Pos, string, ...any) {}
	}
	type key struct {
		pos token.Pos
		msg string
	}
	seen := map[key]bool{}
	return func(pos token.Pos, format string, args ...any) {
		k := key{pos, fmt.Sprintf(format, args...)}
		if seen[k] {
			return
		}
		seen[k] = true
		report(pos, "%s", k.msg)
	}
}

type walker struct {
	a      *Analysis
	report Reporter
}

// stmts interprets a statement list. It returns the resulting state and
// whether the list terminates the enclosing flow (so callers can drop the
// path from a merge).
func (w *walker) stmts(list []ast.Stmt, st State) (State, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// joinBranches merges the surviving alternatives of a fork. Each entry is
// the exit state of one alternative, nil if that alternative terminated.
// Returns (merged state, all-terminated).
func joinBranches(states []State) (State, bool) {
	var merged State
	for _, s := range states {
		if s == nil {
			continue
		}
		if merged == nil {
			merged = s
		} else {
			merged = merged.JoinState(s)
		}
	}
	if merged == nil {
		return nil, true
	}
	return merged, false
}

func (w *walker) stmt(s ast.Stmt, st State) (State, bool) {
	switch s := s.(type) {
	case nil:
		return st, false

	case *ast.BlockStmt:
		return w.stmts(s.List, st)

	case *ast.IfStmt:
		st, _ = w.stmt(s.Init, st)
		w.expr(s.Cond, st)
		thenSt, thenTerm := w.stmts(s.Body.List, st.CloneState())
		var elseSt State
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseSt, elseTerm = w.stmts(e.List, st.CloneState())
		case *ast.IfStmt:
			elseSt, elseTerm = w.stmt(e, st.CloneState())
		default:
			elseSt = st // no else: fall-through keeps the pre-branch state
		}
		if thenTerm {
			thenSt = nil
		}
		if elseTerm {
			elseSt = nil
		}
		return joinBranches([]State{thenSt, elseSt})

	case *ast.ForStmt:
		st, _ = w.stmt(s.Init, st)
		return w.loop(st, func(entry State) (State, bool) {
			w.expr(s.Cond, entry)
			body, term := w.stmts(s.Body.List, entry.CloneState())
			if !term {
				body, _ = w.stmt(s.Post, body)
			}
			return body, term
		})

	case *ast.RangeStmt:
		w.expr(s.X, st)
		return w.loop(st, func(entry State) (State, bool) {
			return w.stmts(s.Body.List, entry.CloneState())
		})

	case *ast.SwitchStmt:
		st, _ = w.stmt(s.Init, st)
		w.expr(s.Tag, st)
		return w.cases(s.Body.List, st)

	case *ast.TypeSwitchStmt:
		st, _ = w.stmt(s.Init, st)
		st, _ = w.stmt(s.Assign, st)
		return w.cases(s.Body.List, st)

	case *ast.SelectStmt:
		w.leaf(s, st) // let the client see the select itself (blocking checks)
		return w.cases(s.Body.List, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.GoStmt:
		// Runs on another goroutine: no effect on this path's state.
		return st, false

	case *ast.DeferStmt:
		for _, arg := range s.Call.Args {
			w.expr(arg, st)
		}
		if w.a.OnDefer != nil {
			w.a.OnDefer(s, st, w.report)
		}
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st)
		}
		if w.a.AtExit != nil {
			w.a.AtExit(s, st, w.report)
		}
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto leave the current flow; the state applies
		// only to the departed path.
		return st, true

	case *ast.ExprStmt:
		w.expr(s.X, st)
		return st, isPanic(s.X)

	case *ast.SendStmt:
		w.leaf(s, st)
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
		return st, false

	case *ast.AssignStmt:
		w.leaf(s, st)
		for _, r := range s.Rhs {
			w.expr(r, st)
		}
		for _, l := range s.Lhs {
			w.expr(l, st)
		}
		return st, false

	case *ast.IncDecStmt:
		w.leaf(s, st)
		w.expr(s.X, st)
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					w.leaf(vs, st)
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
		return st, false

	default:
		return st, false
	}
}

// cases interprets the alternatives of a switch/type-switch/select: each
// clause forks from the pre-statement state, terminating clauses drop out,
// and the rest join. The no-match fall-through (no default clause) keeps
// the entry state alive in the merge.
func (w *walker) cases(clauses []ast.Stmt, st State) (State, bool) {
	states := []State{}
	hasDefault := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, st)
			}
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			// The comm statement itself is part of the select's blocking
			// behavior, which the client already saw via the SelectStmt
			// node; interpreting it here would double-report channel ops.
			if cc.Comm == nil {
				hasDefault = true
			}
			body = cc.Body
		default:
			continue
		}
		out, term := w.stmts(body, st.CloneState())
		if !term {
			states = append(states, out)
		}
	}
	if !hasDefault {
		states = append(states, st)
	}
	return joinBranches(states)
}

// loop runs one loop body to a state fixpoint. iterate interprets one
// iteration from the given entry state (cloning as needed) and returns the
// body's exit state plus whether it terminated. The loop's exit state is
// the fixpoint entry state: for-condition loops may execute zero times,
// and alternatives that break out contribute their (restored) path like
// any terminating branch.
func (w *walker) loop(entry State, iterate func(State) (State, bool)) (State, bool) {
	for pass := 0; pass < maxLoopPasses; pass++ {
		exit, term := iterate(entry.CloneState())
		if term {
			break
		}
		joined := entry.CloneState().JoinState(exit)
		if joined.EqualState(entry) {
			break
		}
		entry = joined
	}
	return entry, false
}

// expr feeds every node of an expression subtree to Transfer in pre-order,
// skipping function literals (separate scopes).
func (w *walker) expr(e ast.Expr, st State) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			w.leaf(n, st)
		}
		return true
	})
}

// leaf hands one node to the client's transfer function.
func (w *walker) leaf(n ast.Node, st State) {
	if w.a.Transfer != nil {
		w.a.Transfer(n, st, w.report)
	}
}

// isPanic reports whether e is a call to the predeclared panic.
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
