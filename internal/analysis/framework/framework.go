// Package framework is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that the sqlvet analyzers
// need: Analyzer, Pass, Diagnostic, and object facts with gob-serializable
// cross-package propagation.
//
// The build environment for this repository is fully offline (no module
// proxy, empty module cache), so the real x/tools framework cannot be
// vendored. This package keeps the same shape — Name/Doc/Run analyzers, a
// Pass with Fset/Files/Pkg/TypesInfo/Report, ImportObjectFact and
// ExportObjectFact — so that migrating to golang.org/x/tools/go/analysis
// is a mechanical import swap if the dependency ever becomes available.
//
// Deliberate simplifications versus the real framework:
//
//   - Facts attach only to package-level functions and methods (the only
//     kind the sqlvet analyzers use). Object keys serialize as the
//     function's FullName, so cross-package facts survive only for
//     exported objects — which is all a cross-package caller can reach.
//   - No Requires/ResultOf analyzer dependencies; each analyzer is
//     self-contained.
package framework

import (
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
}

// Fact is a marker interface for analyzer facts. Implementations must be
// gob-encodable pointers and implement AFact.
type Fact interface {
	AFact()
}

// Analyzer describes one static check.
type Analyzer struct {
	Name string
	Doc  string
	// FactTypes lists the fact types this analyzer produces; each is
	// registered with gob so facts round-trip through .vetx files.
	FactTypes []Fact
	Run       func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax. The runner has already dropped
	// _test.go files: the invariants target production code, and engine
	// tests legitimately poke heap internals.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	Report func(Diagnostic)
	Facts  *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ImportObjectFact copies the fact for obj into the value pointed to by
// fact, reporting whether one was found. As in x/tools, facts are keyed by
// (object, concrete fact type).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.Facts.get(objKey(obj), fact)
}

// ExportObjectFact associates fact with obj for later passes (and, through
// the vettool driver, for dependent packages' separate processes).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.Facts.put(objKey(obj), fact)
}

// objKey produces the serializable identity of a package-level function or
// method: its types.Func FullName (e.g. "pkg/path.Name" or
// "(pkg/path.Recv).Name"). Other object kinds get a best-effort key that
// never collides with function keys.
func objKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "#" + obj.Name()
}

// FactStore holds facts keyed by (object key, fact type). One store is
// shared across every package of a standalone run, giving in-process
// cross-package propagation; the vettool driver instead fills a fresh
// store from the dependency .vetx files go vet hands it.
type FactStore struct {
	m map[string]map[reflect.Type]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[string]map[reflect.Type]Fact{}}
}

func (s *FactStore) put(key string, fact Fact) {
	byType := s.m[key]
	if byType == nil {
		byType = map[reflect.Type]Fact{}
		s.m[key] = byType
	}
	byType[reflect.TypeOf(fact)] = fact
}

func (s *FactStore) get(key string, fact Fact) bool {
	got, ok := s.m[key][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	// Copy *got into *fact so the caller's pointee is filled, as the real
	// framework does.
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// factBlob is the on-disk form of one fact in a .vetx file.
type factBlob struct {
	Key  string
	Fact Fact // gob interface encoding; concrete types registered via RegisterFactTypes
}

// RegisterFactTypes registers every fact type of the given analyzers with
// gob. Must be called once before Encode/Decode.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode writes the store's facts for objects whose key mentions pkgPath
// (the package being analyzed) to enc. Restricting to the current package
// mirrors vetx semantics: a package's facts file carries only its own
// objects; dependency facts were already read from dependency files.
func (s *FactStore) Encode(enc *gob.Encoder, pkgPath string) error {
	var blobs []factBlob
	for key, byType := range s.m {
		if !keyInPackage(key, pkgPath) {
			continue
		}
		for _, f := range byType {
			blobs = append(blobs, factBlob{Key: key, Fact: f})
		}
	}
	return enc.Encode(blobs)
}

// Decode merges facts from dec into the store.
func (s *FactStore) Decode(dec *gob.Decoder) error {
	var blobs []factBlob
	if err := dec.Decode(&blobs); err != nil {
		return err
	}
	for _, b := range blobs {
		s.put(b.Key, b.Fact)
	}
	return nil
}

// keyInPackage reports whether an object key belongs to pkgPath. Keys look
// like "pkg/path.Name", "(pkg/path.Recv).Name", or "pkg/path#Name".
func keyInPackage(key, pkgPath string) bool {
	trimmed := strings.TrimPrefix(strings.TrimPrefix(key, "("), "*")
	return strings.HasPrefix(trimmed, pkgPath+".") || strings.HasPrefix(trimmed, pkgPath+"#")
}

// DebugDump lists every (key, fact type) pair in the store, for debugging
// vetx files.
func (s *FactStore) DebugDump() string {
	var b strings.Builder
	for key, byType := range s.m {
		for t := range byType {
			fmt.Fprintf(&b, "%s -> %v\n", key, t)
		}
	}
	return b.String()
}
