package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directive:
//
//	//sqlvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// The directive suppresses the named analyzers' diagnostics on its own
// line and on the line immediately below (so it works both as a trailing
// comment and as a standalone comment above the offending line). The
// reason after " -- " is mandatory and must be non-empty: a suppression
// without a recorded justification is itself a diagnostic. Unknown
// analyzer names are diagnosed too, so a typo cannot silently disarm a
// suppression.

const ignorePrefix = "sqlvet:ignore"

// ignoreDirective is one parsed //sqlvet:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
}

// IgnoreSet holds every well-formed directive of a package plus the
// diagnostics for malformed ones.
type IgnoreSet struct {
	directives []ignoreDirective
	// Bad holds diagnostics for malformed directives (missing reason,
	// unknown analyzer name). The runner reports them under the pseudo
	// analyzer name "sqlvet".
	Bad []Diagnostic
}

// BuildIgnores scans the files' comments for sqlvet:ignore directives.
// known is the set of valid analyzer names.
func BuildIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool) *IgnoreSet {
	s := &IgnoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				names, reason, hasReason := strings.Cut(rest, "--")
				if !hasReason || strings.TrimSpace(reason) == "" {
					s.Bad = append(s.Bad, Diagnostic{
						Pos:     c.Pos(),
						Message: "sqlvet:ignore directive requires a reason: //sqlvet:ignore <analyzer> -- <reason>",
					})
					continue
				}
				fields := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				if len(fields) == 0 {
					s.Bad = append(s.Bad, Diagnostic{
						Pos:     c.Pos(),
						Message: "sqlvet:ignore directive names no analyzer",
					})
					continue
				}
				var list []string
				for _, n := range fields {
					if !known[n] {
						s.Bad = append(s.Bad, Diagnostic{
							Pos:     c.Pos(),
							Message: "sqlvet:ignore names unknown analyzer " + strconv(n),
						})
						continue
					}
					list = append(list, n)
				}
				if len(list) == 0 {
					continue // every name was unknown; already diagnosed
				}
				pos := fset.Position(c.Pos())
				s.directives = append(s.directives, ignoreDirective{
					pos: c.Pos(), file: pos.Filename, line: pos.Line, analyzers: list,
				})
			}
		}
	}
	return s
}

func strconv(s string) string { return "\"" + s + "\"" }

// Suppressed reports whether a diagnostic from the named analyzer at pos is
// covered by a directive.
func (s *IgnoreSet) Suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, d := range s.directives {
		if d.file != p.Filename {
			continue
		}
		if p.Line != d.line && p.Line != d.line+1 {
			continue
		}
		for _, a := range d.analyzers {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// Filter returns diags minus the suppressed ones.
func (s *IgnoreSet) Filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !s.Suppressed(fset, d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	return kept
}
