package framework

import (
	"bytes"
	"encoding/gob"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// summaryFact is a fact carrying a flow summary across packages, like the
// ones degradegate and atomicfield export.
type summaryFact struct {
	Gates  bool
	Fields []string
}

func (*summaryFact) AFact() {}

func checkPkg(t *testing.T, path, src string, imports map[string]*types.Package) (*types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}, Uses: map[*ast.Ident]types.Object{}}
	conf := types.Config{Importer: importerMap(imports)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	return pkg, info
}

type importerMap map[string]*types.Package

func (m importerMap) Import(path string) (*types.Package, error) { return m[path], nil }

// TestFactRoundTripAcrossStores simulates the vettool flow: package a
// exports a fact on an exported function, the fact store serializes to a
// .vetx-style gob blob, and a fresh store (a separate process analyzing a
// dependent package) decodes it and resolves the fact through package b's
// view of a's function object.
func TestFactRoundTripAcrossStores(t *testing.T) {
	gob.Register(&summaryFact{})

	pkgA, infoA := checkPkg(t, "a", `package a
func Exported() {}
`, nil)
	var fnA *types.Func
	for _, obj := range infoA.Defs {
		if f, ok := obj.(*types.Func); ok && f.Name() == "Exported" {
			fnA = f
		}
	}
	if fnA == nil {
		t.Fatal("no Exported func in package a")
	}

	producer := NewFactStore()
	passA := &Pass{Facts: producer}
	passA.ExportObjectFact(fnA, &summaryFact{Gates: true, Fields: []string{"count", "hits"}})

	// Serialize only package a's facts, as writeVetx does.
	var buf bytes.Buffer
	if err := producer.Encode(gob.NewEncoder(&buf), "a"); err != nil {
		t.Fatalf("encode: %v", err)
	}

	// A dependent package sees a's function through its own import graph:
	// a distinct types.Func object with the same FullName.
	pkgB, infoB := checkPkg(t, "b", `package b
import "a"
func use() { a.Exported() }
`, map[string]*types.Package{"a": pkgA})
	_ = pkgB
	var fnFromB *types.Func
	for _, obj := range infoB.Uses {
		if f, ok := obj.(*types.Func); ok && f.Name() == "Exported" {
			fnFromB = f
		}
	}
	if fnFromB == nil {
		t.Fatal("package b never resolved a.Exported")
	}

	consumer := NewFactStore()
	if err := consumer.Decode(gob.NewDecoder(&buf)); err != nil {
		t.Fatalf("decode: %v", err)
	}
	passB := &Pass{Facts: consumer}
	var got summaryFact
	if !passB.ImportObjectFact(fnFromB, &got) {
		t.Fatal("fact exported by package a not found through package b's object")
	}
	if !got.Gates || len(got.Fields) != 2 || got.Fields[0] != "count" {
		t.Fatalf("fact payload corrupted in transit: %+v", got)
	}
}

// TestFactEncodeScopedToPackage checks that a package's vetx blob carries
// only its own objects' facts — dependency facts were already read from
// dependency files and must not be re-emitted.
func TestFactEncodeScopedToPackage(t *testing.T) {
	gob.Register(&summaryFact{})

	pkgA, infoA := checkPkg(t, "dep", `package dep
func Helper() {}
`, nil)
	_ = pkgA
	pkgB, infoB := checkPkg(t, "top", `package top
func Entry() {}
`, nil)
	_ = pkgB

	find := func(info *types.Info, name string) *types.Func {
		for _, obj := range info.Defs {
			if f, ok := obj.(*types.Func); ok && f.Name() == name {
				return f
			}
		}
		t.Fatalf("no %s", name)
		return nil
	}

	store := NewFactStore()
	pass := &Pass{Facts: store}
	pass.ExportObjectFact(find(infoA, "Helper"), &summaryFact{Gates: true})
	pass.ExportObjectFact(find(infoB, "Entry"), &summaryFact{Gates: false, Fields: []string{"x"}})

	var buf bytes.Buffer
	if err := store.Encode(gob.NewEncoder(&buf), "top"); err != nil {
		t.Fatal(err)
	}
	fresh := NewFactStore()
	if err := fresh.Decode(gob.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}
	freshPass := &Pass{Facts: fresh}
	var got summaryFact
	if freshPass.ImportObjectFact(find(infoA, "Helper"), &got) {
		t.Error("dep's fact leaked into top's vetx blob")
	}
	if !freshPass.ImportObjectFact(find(infoB, "Entry"), &got) || len(got.Fields) != 1 {
		t.Errorf("top's own fact missing or corrupted after round trip: %+v", got)
	}
}
