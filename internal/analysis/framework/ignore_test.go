package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestIgnoreDirectives(t *testing.T) {
	const src = `package p

func a() {
	//sqlvet:ignore lockorder -- verified single-caller startup path
	_ = 1
}

func b() {
	_ = 2 //sqlvet:ignore lockorder,mvccvisibility -- both rules reviewed here
}

func c() {
	//sqlvet:ignore lockorder --
	_ = 3
}

func d() {
	//sqlvet:ignore lockorder
	_ = 4
}

func e() {
	//sqlvet:ignore -- a reason but no analyzer
	_ = 5
}

func f() {
	//sqlvet:ignore nosuch -- typo in the analyzer name
	_ = 6
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := BuildIgnores(fset, []*ast.File{file}, map[string]bool{"lockorder": true, "mvccvisibility": true})

	wantBad := []string{
		"requires a reason",         // c: empty reason after --
		"requires a reason",         // d: no -- separator at all
		"names no analyzer",         // e
		`unknown analyzer "nosuch"`, // f
	}
	if len(s.Bad) != len(wantBad) {
		for _, d := range s.Bad {
			t.Logf("bad: %s: %s", fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d bad-directive diagnostics, want %d", len(s.Bad), len(wantBad))
	}
	for i, want := range wantBad {
		if !strings.Contains(s.Bad[i].Message, want) {
			t.Errorf("bad[%d] = %q, want substring %q", i, s.Bad[i].Message, want)
		}
	}

	base := fset.File(file.Pos())
	posAt := func(line int) token.Pos { return base.LineStart(line) }

	// Directive in a() is on line 4 and covers itself plus line 5.
	if !s.Suppressed(fset, "lockorder", posAt(5)) {
		t.Error("a: line below a standalone directive should be suppressed")
	}
	if s.Suppressed(fset, "lockorder", posAt(6)) {
		t.Error("a: suppression must not extend two lines down")
	}
	if s.Suppressed(fset, "mvccvisibility", posAt(5)) {
		t.Error("a: suppression must not cover analyzers the directive does not name")
	}

	// Trailing directive in b() covers its own line (9) for both names.
	if !s.Suppressed(fset, "lockorder", posAt(9)) || !s.Suppressed(fset, "mvccvisibility", posAt(9)) {
		t.Error("b: trailing directive should suppress both named analyzers on its line")
	}

	// Malformed directives suppress nothing: the line after each bad
	// directive (c, d, e, f bodies) stays diagnosable.
	for _, line := range []int{14, 19, 24, 29} {
		if s.Suppressed(fset, "lockorder", posAt(line)) {
			t.Errorf("line %d: malformed directive must not suppress", line)
		}
	}
}
