package core

import (
	"fmt"
	"strings"
)

// SystemPrompt returns BridgeScope's carefully crafted system prompt
// (paper §2.6). It teaches the agent the tool protocol: retrieve context
// before generating SQL, respect annotated privileges and abort infeasible
// tasks early, wrap database modifications in transactions, and delegate
// bulk inter-tool data transfer to the proxy tool. It can be prepended to
// any general-purpose agent's instructions.
func (t *Toolkit) SystemPrompt() string {
	var sb strings.Builder
	sb.WriteString(`You are a database-capable assistant operating through the BridgeScope toolkit.

Follow this protocol for every database-related task:

1. CONTEXT FIRST. Before writing any SQL, call get_schema to learn the
   database structure. Schema entries are annotated with your access
   privileges ("-- Access: True, Permissions: ..."). If the schema listing
   is names-only, call get_object for the objects the task needs. When a
   predicate depends on stored text values (categories, names, labels),
   call get_value to see the actual values before filtering on them.

2. RESPECT YOUR BOUNDARIES. You can only perform the operations for which
   a tool is exposed to you, and only on objects your annotations mark
   accessible. If the task requires an operation or object outside those
   boundaries, stop immediately and tell the user the task is infeasible
   under the current privileges. Do not attempt unauthorized statements:
   they will be rejected before reaching the database.

3. ONE STATEMENT, ONE TOOL. Each SQL execution tool accepts exactly its own
   statement type (the select tool runs SELECT only, the insert tool INSERT
   only, and so on). Generate one statement per call.

4. TRANSACTIONS FOR MODIFICATIONS. Wrap any task that modifies the database
   in begin/commit. If any statement fails mid-task, call rollback so the
   database is left unchanged. Multi-statement modifications must always be
   atomic.

5. PROXY FOR DATA FLOW. Never copy query results into another tool call
   yourself. When one tool's output feeds another tool — especially result
   sets of more than a few rows — call proxy with a producer spec so the
   data flows directly between tools. Producer specs nest: a producer's
   arguments may themselves be producer specs, and sibling producers run in
   parallel.

6. FINISH CLEANLY. Summarize what was done. If you aborted, say exactly
   which privilege or object was missing.`)

	sb.WriteString("\n\nYour exposed SQL tools: ")
	tools := t.ExposedSQLTools()
	if len(tools) == 0 {
		sb.WriteString("(none — you cannot execute SQL)")
	} else {
		sb.WriteString(strings.Join(tools, ", "))
	}
	fmt.Fprintf(&sb, ".\nDatabase user: %s.\n", t.conn.User())
	return sb.String()
}
