package core

import (
	"context"
	"fmt"
	"testing"

	"bridgescope/internal/mcp"
	"bridgescope/internal/sqldb"
)

func benchToolkit(b *testing.B) *Toolkit {
	b.Helper()
	e := sqldb.NewEngine("bench")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE data (id INT PRIMARY KEY, grp INT, val REAL)`)
	batch := ""
	for i := 0; i < 2000; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d, %f)", i, i%20, float64(i))
		if (i+1)%500 == 0 {
			root.MustExec("INSERT INTO data VALUES " + batch)
			batch = ""
		}
	}
	e.Grants().GrantAll("u", "*")
	return New(NewSQLDBConn(e, "u"), Policy{})
}

func BenchmarkGetSchemaTool(b *testing.B) {
	tk := benchToolkit(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tk.Client().CallTool(ctx, "get_schema", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectToolOverhead(b *testing.B) {
	// Measures verification + MCP round-trip + execution for a small query.
	tk := benchToolkit(b)
	ctx := context.Background()
	args := map[string]any{"sql": "SELECT COUNT(*) FROM data WHERE grp = 3"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tk.Client().CallTool(ctx, "select", args)
		if err != nil || res.IsErr {
			b.Fatalf("%v %s", err, res.Text)
		}
	}
}

func BenchmarkProxyTwoProducers(b *testing.B) {
	tk := benchToolkit(b)
	tk.Registry().Register(&mcp.Tool{
		Name: "pair",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			return map[string]any{"ok": true}, nil
		},
	})
	ctx := context.Background()
	args := map[string]any{
		"target_tool": "pair",
		"tool_args": map[string]any{
			"a": map[string]any{
				"__tool__":      "select",
				"__args__":      map[string]any{"sql": "SELECT val FROM data WHERE grp = 1"},
				"__transform__": "vector:val",
			},
			"b": map[string]any{
				"__tool__":      "select",
				"__args__":      map[string]any{"sql": "SELECT val FROM data WHERE grp = 2"},
				"__transform__": "vector:val",
			},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tk.Client().CallTool(ctx, "proxy", args)
		if err != nil || res.IsErr {
			b.Fatalf("%v %s", err, res.Text)
		}
	}
}

func BenchmarkTransformMatrix(b *testing.B) {
	rows := make([]any, 1000)
	for i := range rows {
		rows[i] = []any{float64(i), float64(i * 2), float64(i * 3)}
	}
	v := map[string]any{"columns": []any{"a", "b", "c"}, "rows": rows}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyTransform("matrix:a,c", v); err != nil {
			b.Fatal(err)
		}
	}
}
