package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"bridgescope/internal/mcp"
)

// Proxy-spec keys, matching the paper's Figure 3.
const (
	proxyToolKey      = "__tool__"
	proxyArgsKey      = "__args__"
	proxyTransformKey = "__transform__"
)

func (t *Toolkit) registerProxyTool() {
	t.reg.Register(&mcp.Tool{
		Name: "proxy",
		Description: "Execute target_tool with tool_args, where any argument value may be a producer " +
			"spec {\"__tool__\": name, \"__args__\": {...}, \"__transform__\": expr} whose output is " +
			"routed directly into the argument without passing through you. Producer specs nest " +
			"arbitrarily; sibling producers run in parallel. Use this whenever one tool's (possibly " +
			"large) output feeds another tool. Transform expressions: identity | rows | field:<name> | " +
			"column:<name> | matrix:<c1,c2,...> | vector:<col> | first | count | flatten, chainable " +
			"with '|'. \"lambda x: x\" is accepted as identity.",
		InputSchema: map[string]any{
			"type": "object",
			"properties": map[string]any{
				"target_tool": map[string]any{"type": "string"},
				"tool_args":   map[string]any{"type": "object"},
			},
			"required": []any{"target_tool", "tool_args"},
		},
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			target, _ := args["target_tool"].(string)
			if target == "" {
				return nil, fmt.Errorf("proxy: missing required argument \"target_tool\"")
			}
			toolArgs, _ := args["tool_args"].(map[string]any)
			return t.runProxyUnit(ctx, target, toolArgs)
		},
	})
}

// runProxyUnit executes one proxy unit ⟨p, c, f⟩ (paper §2.5): resolve every
// producer (bottom-up, siblings in parallel), apply the adaptation
// functions, then invoke the consumer and return its result to the caller.
func (t *Toolkit) runProxyUnit(ctx context.Context, target string, args map[string]any) (any, error) {
	resolved, err := t.resolveArgs(ctx, args)
	if err != nil {
		return nil, err
	}
	res, err := t.client.CallTool(ctx, target, resolved)
	if err != nil {
		return nil, fmt.Errorf("proxy: consumer %q: %w", target, err)
	}
	if res.IsErr {
		return nil, fmt.Errorf("proxy: consumer %q failed: %s", target, strings.TrimPrefix(res.Text, "ERROR: "))
	}
	return res, nil
}

// resolveArgs replaces every producer spec in args with its produced,
// transformed value. Sibling producers execute concurrently unless the
// policy disables parallelism.
func (t *Toolkit) resolveArgs(ctx context.Context, args map[string]any) (map[string]any, error) {
	out := make(map[string]any, len(args))
	type job struct {
		key  string
		spec map[string]any
	}
	var jobs []job
	for k, v := range args {
		if spec, ok := producerSpec(v); ok {
			jobs = append(jobs, job{key: k, spec: spec})
		} else {
			out[k] = v
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].key < jobs[j].key })

	if t.policy.DisableParallelProxy || len(jobs) <= 1 {
		for _, j := range jobs {
			v, err := t.runProducer(ctx, j.spec)
			if err != nil {
				return nil, fmt.Errorf("proxy: argument %q: %w", j.key, err)
			}
			out[j.key] = v
		}
		return out, nil
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := t.runProducer(ctx, j.spec)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("proxy: argument %q: %w", j.key, err)
				}
				return
			}
			out[j.key] = v
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// producerSpec recognizes {"__tool__": ..., ...} maps.
func producerSpec(v any) (map[string]any, bool) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, false
	}
	if _, ok := m[proxyToolKey].(string); !ok {
		return nil, false
	}
	return m, true
}

// runProducer executes one producer: resolve its own arguments recursively
// (this is what makes proxy units hierarchical), call the tool, then apply
// the adaptation function f.
func (t *Toolkit) runProducer(ctx context.Context, spec map[string]any) (any, error) {
	name, _ := spec[proxyToolKey].(string)
	rawArgs, _ := spec[proxyArgsKey].(map[string]any)
	resolved, err := t.resolveArgs(ctx, rawArgs)
	if err != nil {
		return nil, err
	}
	res, err := t.client.CallTool(ctx, name, resolved)
	if err != nil {
		return nil, fmt.Errorf("producer %q: %w", name, err)
	}
	if res.IsErr {
		return nil, fmt.Errorf("producer %q failed: %s", name, strings.TrimPrefix(res.Text, "ERROR: "))
	}
	var value any
	if len(res.Data) > 0 {
		if err := json.Unmarshal(res.Data, &value); err != nil {
			return nil, fmt.Errorf("producer %q returned unparseable data: %w", name, err)
		}
	} else {
		value = res.Text
	}
	transform, _ := spec[proxyTransformKey].(string)
	return ApplyTransform(transform, value)
}

// ApplyTransform evaluates a transform expression against a produced value.
// Expressions chain with '|': "field:features|matrix" first extracts the
// "features" field, then coerces it to a float matrix.
func ApplyTransform(expr string, v any) (any, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" || expr == "identity" || expr == "lambda x: x" {
		return v, nil
	}
	if strings.HasPrefix(expr, "lambda") {
		return nil, fmt.Errorf("unsupported lambda transform %q: only \"lambda x: x\" (identity) is recognized; use the named transforms", expr)
	}
	cur := v
	for _, step := range strings.Split(expr, "|") {
		var err error
		cur, err = applyOneTransform(strings.TrimSpace(step), cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func applyOneTransform(step string, v any) (any, error) {
	name, arg := step, ""
	if i := strings.IndexByte(step, ':'); i >= 0 {
		name, arg = step[:i], step[i+1:]
	}
	switch name {
	case "", "identity":
		return v, nil
	case "rows":
		rows, _, err := resultRows(v)
		if err != nil {
			return nil, err
		}
		return rows, nil
	case "field":
		m, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("transform field:%s: value is %T, not an object", arg, v)
		}
		fv, ok := m[arg]
		if !ok {
			return nil, fmt.Errorf("transform field:%s: no such field (have %s)", arg, mapKeys(m))
		}
		return fv, nil
	case "column":
		rows, cols, err := resultRows(v)
		if err != nil {
			return nil, err
		}
		ci := indexOfFold(cols, arg)
		if ci < 0 {
			return nil, fmt.Errorf("transform column:%s: no such column (have %v)", arg, cols)
		}
		out := make([]any, 0, len(rows))
		for _, r := range rows {
			out = append(out, r[ci])
		}
		return out, nil
	case "matrix":
		rows, cols, err := resultRows(v)
		if err != nil {
			// Accept a bare [][] value too.
			if m, mErr := toFloatMatrix(v); mErr == nil {
				return m, nil
			}
			return nil, err
		}
		var idx []int
		if arg == "" {
			for i := range cols {
				idx = append(idx, i)
			}
		} else {
			for _, c := range strings.Split(arg, ",") {
				ci := indexOfFold(cols, strings.TrimSpace(c))
				if ci < 0 {
					return nil, fmt.Errorf("transform matrix: no column %q (have %v)", c, cols)
				}
				idx = append(idx, ci)
			}
		}
		out := make([][]float64, 0, len(rows))
		for ri, r := range rows {
			fr := make([]float64, len(idx))
			for j, ci := range idx {
				f, ok := toFloat(r[ci])
				if !ok {
					return nil, fmt.Errorf("transform matrix: row %d column %q is not numeric", ri, cols[ci])
				}
				fr[j] = f
			}
			out = append(out, fr)
		}
		return out, nil
	case "vector":
		rows, cols, err := resultRows(v)
		if err != nil {
			if vec, vErr := toFloatVector(v); vErr == nil {
				return vec, nil
			}
			return nil, err
		}
		ci := 0
		if arg != "" {
			ci = indexOfFold(cols, arg)
			if ci < 0 {
				return nil, fmt.Errorf("transform vector: no column %q (have %v)", arg, cols)
			}
		}
		out := make([]float64, 0, len(rows))
		for ri, r := range rows {
			f, ok := toFloat(r[ci])
			if !ok {
				return nil, fmt.Errorf("transform vector: row %d is not numeric", ri)
			}
			out = append(out, f)
		}
		return out, nil
	case "first":
		rows, _, err := resultRows(v)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("transform first: empty result")
		}
		return rows[0], nil
	case "count":
		rows, _, err := resultRows(v)
		if err != nil {
			return nil, err
		}
		return len(rows), nil
	case "flatten":
		rows, _, err := resultRows(v)
		if err != nil {
			return nil, err
		}
		var out []any
		for _, r := range rows {
			out = append(out, r...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown transform %q", step)
}

// resultRows interprets a produced value as a tabular result
// ({"columns": [...], "rows": [[...]]}) and returns rows plus column names.
func resultRows(v any) ([][]any, []string, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, nil, fmt.Errorf("value is %T, not a tabular result", v)
	}
	rawRows, ok := m["rows"].([]any)
	if !ok {
		if rr, ok2 := m["rows"].([][]any); ok2 {
			cols, _ := toStringSlice(m["columns"])
			return rr, cols, nil
		}
		return nil, nil, fmt.Errorf("tabular result has no rows field")
	}
	rows := make([][]any, 0, len(rawRows))
	for _, r := range rawRows {
		switch rv := r.(type) {
		case []any:
			rows = append(rows, rv)
		default:
			rows = append(rows, []any{rv})
		}
	}
	cols, _ := toStringSlice(m["columns"])
	return rows, cols, nil
}

func toStringSlice(v any) ([]string, bool) {
	switch s := v.(type) {
	case []string:
		return s, true
	case []any:
		out := make([]string, 0, len(s))
		for _, e := range s {
			str, ok := e.(string)
			if !ok {
				return nil, false
			}
			out = append(out, str)
		}
		return out, true
	}
	return nil, false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int64:
		return float64(n), true
	case int:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}

func toFloatMatrix(v any) ([][]float64, error) {
	rows, ok := v.([]any)
	if !ok {
		if m, ok2 := v.([][]float64); ok2 {
			return m, nil
		}
		return nil, fmt.Errorf("value is %T, not a matrix", v)
	}
	out := make([][]float64, 0, len(rows))
	for i, r := range rows {
		cols, ok := r.([]any)
		if !ok {
			return nil, fmt.Errorf("row %d is %T, not a list", i, r)
		}
		fr := make([]float64, len(cols))
		for j, c := range cols {
			f, ok := toFloat(c)
			if !ok {
				return nil, fmt.Errorf("value at (%d,%d) is not numeric", i, j)
			}
			fr[j] = f
		}
		out = append(out, fr)
	}
	return out, nil
}

func toFloatVector(v any) ([]float64, error) {
	items, ok := v.([]any)
	if !ok {
		if vec, ok2 := v.([]float64); ok2 {
			return vec, nil
		}
		return nil, fmt.Errorf("value is %T, not a vector", v)
	}
	out := make([]float64, len(items))
	for i, it := range items {
		f, ok := toFloat(it)
		if !ok {
			return nil, fmt.Errorf("element %d is not numeric", i)
		}
		out[i] = f
	}
	return out, nil
}

func indexOfFold(list []string, want string) int {
	for i, s := range list {
		if strings.EqualFold(s, want) {
			return i
		}
	}
	return -1
}

func mapKeys(m map[string]any) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
