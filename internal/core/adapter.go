// Package core implements BridgeScope, the paper's contribution: a
// fine-grained, security-aware, proxy-enabled database toolkit for LLM
// agents.
//
// The toolkit exposes four tool families over any database that implements
// the Conn interface (paper §2.6, "unified set of database interfaces"):
//
//   - context retrieval: get_schema (adaptive full/hierarchical),
//     get_object, get_value (§2.2);
//   - SQL execution: one tool per action — select, insert, update, delete,
//     create_table, drop_table, alter_table — each enforcing statement-type
//     matching and object-level verification (§2.3);
//   - transaction management: begin, commit, rollback (§2.4);
//   - data transmission: proxy, which routes producer output directly into
//     consumer tools without LLM involvement (§2.5).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"bridgescope/internal/sqldb"
	"bridgescope/internal/sqldb/stats"
)

// Result is the database-agnostic execution result exchanged with tools.
// Rows hold JSON-ready values (int64/float64/string/bool/nil).
type Result struct {
	Columns  []string `json:"columns,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Message  string   `json:"message,omitempty"`
}

// Text renders the result in the same tabular form the engine uses, which
// is what enters the LLM context.
func (r *Result) Text() string {
	if len(r.Columns) == 0 {
		if r.Message != "" {
			return r.Message
		}
		return fmt.Sprintf("OK, %d row(s) affected", r.Affected)
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, " | "))
	sb.WriteString("\n")
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteString(" | ")
			}
			if v == nil {
				sb.WriteString("NULL")
			} else {
				fmt.Fprintf(&sb, "%v", v)
			}
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "(%d rows)", len(r.Rows))
	return sb.String()
}

// ObjectInfo describes a top-level named object.
type ObjectInfo struct {
	Name string
	Kind string // "table" (views would add "view")
}

// DurabilityStats is the backend-agnostic view of a connection's
// persistence layer (write-ahead logging, group commit, checkpoints).
type DurabilityStats struct {
	Durable      bool   `json:"durable"`
	Mode         string `json:"mode"` // "memory", "off", "batch", "always"
	Commits      int64  `json:"commits"`
	Fsyncs       int64  `json:"fsyncs"`
	GroupFlushes int64  `json:"group_flushes"`
	WALBytes     int64  `json:"wal_bytes"`
	Checkpoints  int64  `json:"checkpoints"`
}

// CacheStats is the backend-agnostic view of a connection's
// prepared-statement (plan) cache: executions served from a cached plan,
// executions that had to parse and plan, LRU evictions, and the number of
// plans currently resident.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
}

// HealthStatus is the backend-agnostic view of a connection's failure
// state. A degraded backend serves reads but refuses writes with a
// retryable error until the underlying fault is fixed and it is reopened.
type HealthStatus struct {
	Degraded          bool   `json:"degraded"`
	DegradedBy        string `json:"degraded_by,omitempty"`         // subsystem that fail-stopped ("wal", "checkpoint")
	DegradedErr       string `json:"degraded_err,omitempty"`        // the triggering I/O error
	Reason            string `json:"reason,omitempty"`              // human-readable account of the degraded state
	LastCheckpointErr string `json:"last_checkpoint_err,omitempty"` // most recent checkpoint failure, if any
}

// Healthy reports whether nothing is wrong.
func (h HealthStatus) Healthy() bool { return !h.Degraded && h.LastCheckpointErr == "" }

// Conn is the unified database interface all BridgeScope tools are built
// on. One Conn represents one authenticated connection: it executes under a
// fixed database user and owns that user's transaction state. Implementing
// Conn for another database system ports the entire toolkit (§2.6).
type Conn interface {
	// User returns the database user this connection authenticates as.
	User() string

	// Exec runs one SQL statement under the connection's user.
	Exec(sql string) (*Result, error)

	// Transaction control.
	Begin() error
	Commit() error
	Rollback() error
	InTransaction() bool

	// Catalog introspection.
	ListObjects() []ObjectInfo
	ObjectDDL(name string) (string, error)
	Columns(name string) ([]string, error)
	ColumnValues(table, column string, limit int) ([]string, error)

	// Privilege introspection for the connection's user.
	HasPrivilege(action, object string) bool
	ObjectActions(object string) []string

	// ClassifySQL parses a statement far enough to report its verb
	// ("SELECT", "INSERT", ...) and the tables it references.
	ClassifySQL(sql string) (verb string, tables []string, err error)

	// Explain returns the backend's chosen execution plan for sql without
	// executing it, one plan operator per line. It enforces the same
	// privileges running the statement would.
	Explain(sql string) (string, error)

	// CacheStats reports the backend's prepared-statement cache counters.
	// Backends without a statement cache report the zero value.
	CacheStats() CacheStats

	// Stats reports the backend's full observability snapshot: per-statement
	// latency histograms, WAL and MVCC counters, the slow-query log, and so
	// on. Backends without a metrics surface report the zero value.
	Stats() stats.Snapshot

	// Durability reports the backend's persistence counters: the sync mode
	// and the WAL/checkpoint activity behind committed writes. Purely
	// in-memory backends report Durable=false.
	Durability() DurabilityStats

	// Health reports whether the backend is fully operational or has
	// fail-stopped into read-only degraded mode after a durability I/O
	// failure (disk full, fsync error). Backends without a degraded state
	// report the zero value (healthy).
	Health() HealthStatus

	// IsPermissionDenied reports whether an error returned by Exec is a
	// database-side privilege rejection.
	IsPermissionDenied(err error) bool

	// IsSerializationFailure reports whether an error returned by Exec is a
	// retryable write-write conflict under the backend's snapshot
	// isolation (PostgreSQL SQLSTATE 40001): the caller should ROLLBACK
	// and retry the whole transaction. See RunInTransaction.
	IsSerializationFailure(err error) bool
}

// RetryBackoff configures the delay schedule between serialization-failure
// retries: exponential growth from Base, bounded by Cap, with equal-jitter
// randomization (a delay d becomes uniform in [d, 1.5d)) so colliding
// transactions spread out instead of re-colliding in lockstep. The zero
// value selects the defaults. Sleep and Jitter are test seams; nil means
// time.Sleep and rand.Int63n.
type RetryBackoff struct {
	Base   time.Duration // delay before the first retry (default 200µs)
	Cap    time.Duration // upper bound on the un-jittered delay (default 50ms)
	Sleep  func(time.Duration)
	Jitter func(n int64) int64
}

// DefaultRetryBackoff is the schedule RunInTransaction uses: 200µs doubling
// up to 50ms.
var DefaultRetryBackoff = RetryBackoff{Base: 200 * time.Microsecond, Cap: 50 * time.Millisecond}

// delay computes the jittered sleep before retry number `retry` (0-based).
func (b RetryBackoff) delay(retry int) time.Duration {
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = DefaultRetryBackoff.Base
	}
	if cap <= 0 {
		cap = DefaultRetryBackoff.Cap
	}
	d := base
	if retry >= 62 {
		d = cap // base<<retry would overflow long before this
	} else if d <<= uint(retry); d <= 0 || d > cap {
		d = cap
	}
	if half := int64(d / 2); half > 0 {
		jitter := b.Jitter
		if jitter == nil {
			jitter = rand.Int63n
		}
		d += time.Duration(jitter(half))
	}
	return d
}

// RetryNoter is an optional Conn extension: backends that track
// client-side transaction retries implement it, and RunInTransaction's
// backoff loop reports each retry through it so retry pressure shows up in
// the backend's metrics.
type RetryNoter interface {
	NoteRetry()
}

// RunInTransaction executes fn inside a transaction on conn, committing on
// success and rolling back on error. Retryable serialization failures
// (write-write conflicts under snapshot isolation) restart fn up to
// maxRetries times with a fresh snapshot — the documented conflict-retry
// contract, packaged so agent toolkits and application code need no
// backend-specific error matching. maxRetries <= 0 means a sensible
// default. Retries back off exponentially with jitter (DefaultRetryBackoff)
// so a storm of conflicting transactions converges instead of thrashing.
func RunInTransaction(conn Conn, maxRetries int, fn func(Conn) error) error {
	return RunInTransactionBackoff(conn, maxRetries, DefaultRetryBackoff, fn)
}

// RunInTransactionBackoff is RunInTransaction with an explicit backoff
// schedule. No sleep happens after the final failed attempt: the error
// returns immediately.
func RunInTransactionBackoff(conn Conn, maxRetries int, backoff RetryBackoff, fn func(Conn) error) error {
	if maxRetries <= 0 {
		maxRetries = 5
	}
	sleep := backoff.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if err := conn.Begin(); err != nil {
			return err
		}
		err := fn(conn)
		if err == nil {
			if err = conn.Commit(); err == nil {
				return nil
			}
		}
		_ = conn.Rollback()
		if !conn.IsSerializationFailure(err) {
			return err
		}
		lastErr = err
		if attempt < maxRetries {
			if n, ok := conn.(RetryNoter); ok {
				n.NoteRetry()
			}
			sleep(backoff.delay(attempt))
		}
	}
	return fmt.Errorf("transaction retried %d times without success: %w", maxRetries, lastErr)
}

// SQLDBConn adapts a sqldb session to the Conn interface. It is the
// reference implementation, playing the role of the paper's open-source
// PostgreSQL binding.
type SQLDBConn struct {
	sess *sqldb.Session
}

// NewSQLDBConn opens a connection to engine as user.
func NewSQLDBConn(engine *sqldb.Engine, user string) *SQLDBConn {
	return &SQLDBConn{sess: engine.NewSession(user)}
}

// Session exposes the underlying session (tests and fixtures).
func (c *SQLDBConn) Session() *sqldb.Session { return c.sess }

// User implements Conn.
func (c *SQLDBConn) User() string { return c.sess.User() }

// Exec implements Conn.
func (c *SQLDBConn) Exec(sql string) (*Result, error) {
	r, err := c.sess.Exec(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(r), nil
}

func convertResult(r *sqldb.Result) *Result {
	out := &Result{Columns: r.Columns, Affected: r.Affected, Message: r.Message}
	for _, row := range r.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			vals[i] = valueToAny(v)
		}
		out.Rows = append(out.Rows, vals)
	}
	return out
}

func valueToAny(v sqldb.Value) any {
	switch v.Kind {
	case sqldb.KindInt:
		return v.I
	case sqldb.KindFloat:
		return v.F
	case sqldb.KindText:
		return v.S
	case sqldb.KindBool:
		return v.B
	}
	return nil
}

// Begin implements Conn.
func (c *SQLDBConn) Begin() error { _, err := c.sess.Exec("BEGIN"); return err }

// BeginIsolation starts a transaction at a named isolation level
// ("READ COMMITTED", "REPEATABLE READ", "SNAPSHOT", "SERIALIZABLE").
func (c *SQLDBConn) BeginIsolation(level string) error {
	if _, ok := sqldb.ParseIsolationLevel(level); !ok {
		return fmt.Errorf("unknown isolation level %q", level)
	}
	_, err := c.sess.Exec("BEGIN ISOLATION LEVEL " + level)
	return err
}

// Commit implements Conn.
func (c *SQLDBConn) Commit() error { _, err := c.sess.Exec("COMMIT"); return err }

// Rollback implements Conn.
func (c *SQLDBConn) Rollback() error { _, err := c.sess.Exec("ROLLBACK"); return err }

// InTransaction implements Conn.
func (c *SQLDBConn) InTransaction() bool { return c.sess.InTransaction() }

// ListObjects implements Conn.
func (c *SQLDBConn) ListObjects() []ObjectInfo {
	e := c.sess.Engine()
	names := e.TableNames()
	out := make([]ObjectInfo, 0, len(names))
	for _, n := range names {
		out = append(out, ObjectInfo{Name: n, Kind: "table"})
	}
	for _, n := range e.ViewNames() {
		out = append(out, ObjectInfo{Name: n, Kind: "view"})
	}
	return out
}

// ObjectDDL implements Conn.
func (c *SQLDBConn) ObjectDDL(name string) (string, error) {
	e := c.sess.Engine()
	if t, ok := e.Table(name); ok {
		return sqldb.SchemaSQL(t), nil
	}
	if v, ok := e.ViewByName(name); ok {
		return sqldb.ViewSQL(v), nil
	}
	return "", &sqldb.NotFoundError{Kind: "table", Name: name}
}

// Columns implements Conn.
func (c *SQLDBConn) Columns(name string) ([]string, error) {
	t, ok := c.sess.Engine().Table(name)
	if !ok {
		return nil, &sqldb.NotFoundError{Kind: "table", Name: name}
	}
	return t.ColumnNames(), nil
}

// ColumnValues implements Conn.
func (c *SQLDBConn) ColumnValues(table, column string, limit int) ([]string, error) {
	vals, err := c.sess.Engine().ColumnValues(table, column, limit)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out, nil
}

// HasPrivilege implements Conn.
func (c *SQLDBConn) HasPrivilege(action, object string) bool {
	a, ok := sqldb.ParseAction(action)
	if !ok {
		return false
	}
	return c.sess.Engine().Grants().Has(c.sess.User(), a, object)
}

// ObjectActions implements Conn.
func (c *SQLDBConn) ObjectActions(object string) []string {
	acts := c.sess.Engine().Grants().ObjectActions(c.sess.User(), object)
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = a.String()
	}
	return out
}

// ClassifySQL implements Conn.
func (c *SQLDBConn) ClassifySQL(sql string) (string, []string, error) {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return "", nil, err
	}
	verb := ""
	switch stmt.(type) {
	case *sqldb.SelectStmt:
		verb = "SELECT"
	case *sqldb.InsertStmt:
		verb = "INSERT"
	case *sqldb.UpdateStmt:
		verb = "UPDATE"
	case *sqldb.DeleteStmt:
		verb = "DELETE"
	case *sqldb.CreateTableStmt, *sqldb.CreateIndexStmt:
		verb = "CREATE"
	case *sqldb.DropTableStmt:
		verb = "DROP"
	case *sqldb.AlterTableStmt:
		verb = "ALTER"
	case *sqldb.BeginStmt:
		verb = "BEGIN"
	case *sqldb.CommitStmt:
		verb = "COMMIT"
	case *sqldb.RollbackStmt:
		verb = "ROLLBACK"
	case *sqldb.GrantStmt, *sqldb.RevokeStmt:
		verb = "GRANT"
	case *sqldb.ExplainStmt:
		verb = "EXPLAIN"
	default:
		verb = strings.ToUpper(sqldb.StatementVerb(sql))
	}
	return verb, sqldb.ReferencedTables(stmt), nil
}

// Explain implements Conn using the engine's planner.
func (c *SQLDBConn) Explain(sql string) (string, error) {
	plan, err := c.sess.Plan(sql)
	if err != nil {
		return "", err
	}
	return plan.Explain(), nil
}

// CacheStats implements Conn. The counters are engine-wide: the plan cache
// is shared by every connection to the engine (entries are keyed per user),
// which is what makes hot agent/proxy traffic skip parse+plan across
// sessions.
func (c *SQLDBConn) CacheStats() CacheStats {
	cs := c.sess.Engine().PlanCacheSnapshot()
	return CacheStats{Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions, Size: cs.Size}
}

// Stats implements Conn with the engine-wide snapshot: metrics aggregate
// across every connection to the engine.
func (c *SQLDBConn) Stats() stats.Snapshot {
	return c.sess.Engine().Stats()
}

// NoteRetry implements RetryNoter: RunInTransaction's backoff loop reports
// each serialization-failure retry into the engine's MVCC counters.
func (c *SQLDBConn) NoteRetry() {
	c.sess.Engine().NoteTxnRetry()
}

// Durability implements Conn. Like CacheStats, the counters are engine-wide:
// the WAL is shared by every connection to the engine.
func (c *SQLDBConn) Durability() DurabilityStats {
	st := c.sess.Engine().Durability()
	return DurabilityStats{
		Durable:      st.Durable,
		Mode:         st.Mode,
		Commits:      st.Commits,
		Fsyncs:       st.Fsyncs,
		GroupFlushes: st.GroupFlushes,
		WALBytes:     st.WALBytes,
		Checkpoints:  st.Checkpoints,
	}
}

// Health implements Conn. The state is engine-wide: one fail-stopped WAL
// degrades every connection to the engine.
func (c *SQLDBConn) Health() HealthStatus {
	h := c.sess.Engine().Health()
	return HealthStatus{
		Degraded:          h.Degraded,
		DegradedBy:        h.DegradedBy,
		DegradedErr:       h.DegradedErr,
		Reason:            h.Reason,
		LastCheckpointErr: h.LastCheckpointErr,
	}
}

// IsPermissionDenied implements Conn.
func (c *SQLDBConn) IsPermissionDenied(err error) bool {
	var pe *sqldb.PermissionError
	return errors.As(err, &pe)
}

// IsSerializationFailure implements Conn.
func (c *SQLDBConn) IsSerializationFailure(err error) bool {
	return sqldb.IsRetryable(err)
}
