package core

import (
	"context"
	"strings"
	"testing"

	"bridgescope/internal/mcp"
	"bridgescope/internal/sqldb"
)

func newStoreEngine(t *testing.T) *sqldb.Engine {
	t.Helper()
	e := sqldb.NewEngine("store")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE items (id INT PRIMARY KEY, name TEXT NOT NULL, category TEXT, price REAL)`)
	root.MustExec(`CREATE TABLE sales (order_id INT PRIMARY KEY, item_id INT REFERENCES items(id), qty INT, amount REAL)`)
	root.MustExec(`CREATE TABLE secrets (id INT PRIMARY KEY, payload TEXT)`)
	root.MustExec(`INSERT INTO items VALUES (1, 'shirt', 'women', 19.99), (2, 'jeans', 'men', 49.5), (3, 'dress', 'women', 89.0)`)
	root.MustExec(`INSERT INTO sales VALUES (10, 1, 2, 39.98), (11, 2, 1, 49.5)`)
	root.MustExec(`INSERT INTO secrets VALUES (1, 'classified')`)
	return e
}

func adminToolkit(t *testing.T, e *sqldb.Engine, policy Policy) *Toolkit {
	t.Helper()
	e.Grants().GrantAll("admin", "*")
	e.Grants().Grant("admin", sqldb.ActionCreate, "*")
	return New(NewSQLDBConn(e, "admin"), policy)
}

func call(t *testing.T, tk *Toolkit, tool string, args map[string]any) mcp.CallResult {
	t.Helper()
	res, err := tk.Client().CallTool(context.Background(), tool, args)
	if err != nil {
		t.Fatalf("CallTool(%s): %v", tool, err)
	}
	return res
}

func TestToolExposureByPrivilege(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("reader", sqldb.ActionSelect, "items")
	reader := New(NewSQLDBConn(e, "reader"), Policy{})
	tools := reader.ExposedSQLTools()
	if len(tools) != 1 || tools[0] != "select" {
		t.Fatalf("read-only user should see only select, got %v", tools)
	}
	// No write tool -> no transaction tools either.
	if _, ok := reader.Registry().Get("begin"); ok {
		t.Fatal("read-only user must not receive transaction tools")
	}
	admin := adminToolkit(t, e, Policy{})
	if got := len(admin.ExposedSQLTools()); got != 7 {
		t.Fatalf("admin should see all 7 SQL tools, got %d: %v", got, admin.ExposedSQLTools())
	}
	if _, ok := admin.Registry().Get("begin"); !ok {
		t.Fatal("admin must receive transaction tools")
	}
}

func TestToolBlacklist(t *testing.T) {
	e := newStoreEngine(t)
	tk := adminToolkit(t, e, Policy{ToolBlacklist: []string{"drop_table", "delete"}})
	for _, name := range []string{"drop_table", "delete"} {
		if _, ok := tk.Registry().Get(name); ok {
			t.Fatalf("blacklisted tool %q exposed", name)
		}
	}
	if _, ok := tk.Registry().Get("insert"); !ok {
		t.Fatal("non-blacklisted tool missing")
	}
}

func TestToolWhitelist(t *testing.T) {
	e := newStoreEngine(t)
	tk := adminToolkit(t, e, Policy{ToolWhitelist: []string{"select"}})
	if got := tk.ExposedSQLTools(); len(got) != 1 || got[0] != "select" {
		t.Fatalf("whitelist not applied: %v", got)
	}
}

func TestSchemaAnnotations(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("reader", sqldb.ActionSelect, "items")
	tk := New(NewSQLDBConn(e, "reader"), Policy{})
	res := call(t, tk, "get_schema", nil)
	if !strings.Contains(res.Text, "-- Access: True, Permissions: SELECT") {
		t.Fatalf("missing select annotation:\n%s", res.Text)
	}
	// Tables without privileges appear as Access: False with structure hidden.
	if !strings.Contains(res.Text, "-- Access: False\nCREATE TABLE sales (...);") {
		t.Fatalf("missing access-false annotation:\n%s", res.Text)
	}
}

func TestSchemaObjectBlacklistHides(t *testing.T) {
	e := newStoreEngine(t)
	tk := adminToolkit(t, e, Policy{ObjectBlacklist: []string{"secrets"}})
	res := call(t, tk, "get_schema", nil)
	if strings.Contains(res.Text, "secrets") {
		t.Fatalf("blacklisted object leaked into schema:\n%s", res.Text)
	}
	obj := call(t, tk, "get_object", map[string]any{"object": "secrets"})
	if !obj.IsErr || !strings.Contains(obj.Text, "blocked by the user security policy") {
		t.Fatalf("get_object must refuse blacklisted object, got %q", obj.Text)
	}
}

func TestHierarchicalSchema(t *testing.T) {
	e := newStoreEngine(t)
	tk := adminToolkit(t, e, Policy{SchemaThreshold: 2})
	res := call(t, tk, "get_schema", nil)
	if !strings.Contains(res.Text, "get_object") {
		t.Fatalf("expected hierarchical listing:\n%s", res.Text)
	}
	if strings.Contains(res.Text, "PRIMARY KEY") {
		t.Fatalf("hierarchical listing must not include DDL:\n%s", res.Text)
	}
	obj := call(t, tk, "get_object", map[string]any{"object": "items"})
	if !strings.Contains(obj.Text, "CREATE TABLE items") {
		t.Fatalf("get_object must return DDL:\n%s", obj.Text)
	}
}

func TestGetValueRanking(t *testing.T) {
	e := newStoreEngine(t)
	tk := adminToolkit(t, e, Policy{})
	res := call(t, tk, "get_value", map[string]any{
		"table": "items", "column": "category", "key": "women's wear", "k": float64(2),
	})
	if res.IsErr {
		t.Fatalf("get_value failed: %s", res.Text)
	}
	// "women" must rank first for "women's wear".
	if !strings.Contains(res.Text, "women") {
		t.Fatalf("expected women in exemplars: %s", res.Text)
	}
	idx := strings.Index(res.Text, ": ")
	ranked := res.Text[idx+2:]
	if !strings.HasPrefix(ranked, "women") {
		t.Fatalf("women should rank first: %s", ranked)
	}
}

func TestGetValueRequiresSelect(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("writeronly", sqldb.ActionInsert, "items")
	tk := New(NewSQLDBConn(e, "writeronly"), Policy{})
	res := call(t, tk, "get_value", map[string]any{
		"table": "items", "column": "category", "key": "women",
	})
	if !res.IsErr || !strings.Contains(res.Text, "permission denied") {
		t.Fatalf("get_value without SELECT must fail, got %q", res.Text)
	}
}

func TestStatementTypeEnforcement(t *testing.T) {
	e := newStoreEngine(t)
	tk := adminToolkit(t, e, Policy{})
	cases := map[string]string{
		"select": "DELETE FROM items",
		"insert": "SELECT * FROM items",
		"update": "DROP TABLE items",
		"delete": "INSERT INTO items (id, name) VALUES (9, 'x')",
	}
	for tool, sql := range cases {
		res := call(t, tk, tool, map[string]any{"sql": sql})
		if !res.IsErr || !strings.Contains(res.Text, "only accepts") {
			t.Fatalf("%s must reject %q, got %q", tool, sql, res.Text)
		}
	}
	// Matching statements pass.
	ok := call(t, tk, "select", map[string]any{"sql": "SELECT COUNT(*) FROM items"})
	if ok.IsErr {
		t.Fatalf("select failed: %s", ok.Text)
	}
}

func TestObjectLevelVerification(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("reader", sqldb.ActionSelect, "items")
	tk := New(NewSQLDBConn(e, "reader"), Policy{})
	res := call(t, tk, "select", map[string]any{"sql": "SELECT * FROM secrets"})
	if !res.IsErr || !strings.Contains(res.Text, "verified before execution") {
		t.Fatalf("verification must intercept unauthorized table, got %q", res.Text)
	}
	// Joins against unauthorized tables are intercepted too.
	res = call(t, tk, "select", map[string]any{
		"sql": "SELECT items.name FROM items, secrets WHERE items.id = secrets.id",
	})
	if !res.IsErr {
		t.Fatalf("join with unauthorized table must fail, got %q", res.Text)
	}
}

func TestVerificationDisabledFallsThroughToEngine(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("reader", sqldb.ActionSelect, "items")
	tk := New(NewSQLDBConn(e, "reader"), Policy{DisableVerification: true})
	res := call(t, tk, "select", map[string]any{"sql": "SELECT * FROM secrets"})
	// The engine still rejects it — but with its own error, proving the
	// statement reached the database.
	if !res.IsErr || strings.Contains(res.Text, "verified before execution") {
		t.Fatalf("with verification off the engine must reject, got %q", res.Text)
	}
	if !strings.Contains(res.Text, "permission denied") {
		t.Fatalf("expected engine permission error, got %q", res.Text)
	}
}

func TestTransactionToolsRoundTrip(t *testing.T) {
	e := newStoreEngine(t)
	tk := adminToolkit(t, e, Policy{})
	ctx := context.Background()
	mustOK := func(tool string, args map[string]any) {
		t.Helper()
		res, err := tk.Client().CallTool(ctx, tool, args)
		if err != nil || res.IsErr {
			t.Fatalf("%s failed: %v %s", tool, err, res.Text)
		}
	}
	mustOK("begin", nil)
	mustOK("insert", map[string]any{"sql": "INSERT INTO items (id, name, category, price) VALUES (9, 'belt', 'men', 15.0)"})
	mustOK("rollback", nil)
	res := call(t, tk, "select", map[string]any{"sql": "SELECT COUNT(*) FROM items"})
	if !strings.Contains(res.Text, "3") {
		t.Fatalf("rollback did not revert insert: %s", res.Text)
	}
	mustOK("begin", nil)
	mustOK("insert", map[string]any{"sql": "INSERT INTO items (id, name, category, price) VALUES (9, 'belt', 'men', 15.0)"})
	mustOK("commit", nil)
	res = call(t, tk, "select", map[string]any{"sql": "SELECT COUNT(*) FROM items"})
	if !strings.Contains(res.Text, "4") {
		t.Fatalf("commit lost insert: %s", res.Text)
	}
}

func TestSystemPromptReflectsTools(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("reader", sqldb.ActionSelect, "items")
	reader := New(NewSQLDBConn(e, "reader"), Policy{})
	p := reader.SystemPrompt()
	if !strings.Contains(p, "select") || strings.Contains(p, "insert,") {
		t.Fatalf("prompt should list only select: %s", p)
	}
	admin := adminToolkit(t, e, Policy{})
	if !strings.Contains(admin.SystemPrompt(), "insert") {
		t.Fatal("admin prompt should list write tools")
	}
}

func TestConnExplain(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("reader", sqldb.ActionSelect, "items")
	var conn Conn = NewSQLDBConn(e, "reader")

	plan, err := conn.Explain("SELECT name FROM items WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Index Scan on items using primary key (id = 2)") {
		t.Fatalf("expected pk index scan in plan:\n%s", plan)
	}
	if !strings.Contains(plan, "Project: name") {
		t.Fatalf("expected projection stage in plan:\n%s", plan)
	}

	// Explain enforces the statement's privileges like execution would.
	if _, err := conn.Explain("SELECT * FROM secrets"); err == nil {
		t.Fatal("Explain must enforce SELECT privilege")
	} else if !conn.IsPermissionDenied(err) {
		t.Fatalf("want permission error, got %v", err)
	}

	// An EXPLAIN prefix in the SQL itself is accepted (not double-wrapped).
	if _, err := conn.Explain("EXPLAIN SELECT name FROM items"); err != nil {
		t.Fatalf("Explain on EXPLAIN-prefixed sql: %v", err)
	}
}
