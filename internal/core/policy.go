package core

import "strings"

// Policy is the user-side security configuration (paper §2.2–2.3): object
// white/black lists restrict which database objects the LLM may see or
// touch; tool white/black lists restrict which SQL-action tools are exposed
// at all (e.g. blocking drop_table regardless of database privileges).
//
// The zero Policy permits everything the database-side privileges permit.
type Policy struct {
	// ObjectWhitelist, when non-empty, hides every object not listed.
	ObjectWhitelist []string
	// ObjectBlacklist hides the listed objects even from whitelisted sets.
	ObjectBlacklist []string

	// ToolWhitelist, when non-empty, exposes only the listed SQL tools.
	ToolWhitelist []string
	// ToolBlacklist removes the listed SQL tools (e.g. "drop_table").
	ToolBlacklist []string

	// SchemaThreshold is the paper's n: databases with at most this many
	// named objects return full schemas from get_schema; larger ones
	// switch to hierarchical retrieval (names only + get_object). Zero
	// means the default of 20.
	SchemaThreshold int

	// ValueTopK is the default k for get_value. Zero means 5.
	ValueTopK int

	// DisablePrivilegeAnnotations removes the "-- Access / Permissions"
	// annotations from schema output (ablation).
	DisablePrivilegeAnnotations bool

	// DisableVerification removes object-level tool verification
	// (ablation; database-side checks still apply).
	DisableVerification bool

	// DisableParallelProxy executes sibling proxy producers sequentially
	// (ablation).
	DisableParallelProxy bool
}

func (p *Policy) schemaThreshold() int {
	if p.SchemaThreshold <= 0 {
		return 20
	}
	return p.SchemaThreshold
}

func (p *Policy) valueTopK() int {
	if p.ValueTopK <= 0 {
		return 5
	}
	return p.ValueTopK
}

// ObjectPermitted applies the object white/black lists.
func (p *Policy) ObjectPermitted(name string) bool {
	lo := strings.ToLower(name)
	for _, b := range p.ObjectBlacklist {
		if strings.ToLower(b) == lo {
			return false
		}
	}
	if len(p.ObjectWhitelist) == 0 {
		return true
	}
	for _, w := range p.ObjectWhitelist {
		if strings.ToLower(w) == lo {
			return true
		}
	}
	return false
}

// ToolPermitted applies the tool white/black lists to a SQL-action tool
// name.
func (p *Policy) ToolPermitted(name string) bool {
	lo := strings.ToLower(name)
	for _, b := range p.ToolBlacklist {
		if strings.ToLower(b) == lo {
			return false
		}
	}
	if len(p.ToolWhitelist) == 0 {
		return true
	}
	for _, w := range p.ToolWhitelist {
		if strings.ToLower(w) == lo {
			return true
		}
	}
	return false
}
