package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bridgescope/internal/mcp"
	"bridgescope/internal/sqldb"
)

// sqlToolSpec maps each SQL-action tool to the privilege it requires and the
// statement verb it accepts (paper §2.3, action-level tool modularization).
type sqlToolSpec struct {
	name        string
	action      string // privilege action keyword
	verb        string // statement verb the tool accepts
	description string
}

var sqlToolSpecs = []sqlToolSpec{
	{"select", "SELECT", "SELECT",
		"Execute a single SELECT statement. Only SELECT is accepted; use the matching tool for other operations."},
	{"insert", "INSERT", "INSERT",
		"Execute a single INSERT statement. Only INSERT is accepted."},
	{"update", "UPDATE", "UPDATE",
		"Execute a single UPDATE statement. Only UPDATE is accepted."},
	{"delete", "DELETE", "DELETE",
		"Execute a single DELETE statement. Only DELETE is accepted."},
	{"create_table", "CREATE", "CREATE",
		"Execute a single CREATE TABLE or CREATE INDEX statement."},
	{"drop_table", "DROP", "DROP",
		"Execute a single DROP TABLE statement."},
	{"alter_table", "ALTER", "ALTER",
		"Execute a single ALTER TABLE statement."},
}

// Toolkit is a configured BridgeScope instance bound to one database
// connection (hence one user) and one security policy.
type Toolkit struct {
	conn   Conn
	policy Policy
	reg    *mcp.Registry
	client *mcp.Client // loops back to reg; used by the proxy tool
}

// New builds a BridgeScope toolkit over conn with the given policy. The
// returned toolkit's Registry contains exactly the tools this user may see
// (paper §2.3: selective exposure).
func New(conn Conn, policy Policy) *Toolkit {
	t := &Toolkit{conn: conn, policy: policy, reg: mcp.NewRegistry()}
	t.client = mcp.NewClient(mcp.NewServer(t.reg))
	t.registerContextTools()
	t.registerSQLTools()
	t.registerTxnTools()
	t.registerProxyTool()
	return t
}

// Registry returns the toolkit's tool registry. Additional domain tools
// (e.g. ML tools) may be registered into it; the proxy tool can then route
// data to them.
func (t *Toolkit) Registry() *mcp.Registry { return t.reg }

// Client returns an MCP client bound to the toolkit's registry.
func (t *Toolkit) Client() *mcp.Client { return t.client }

// Conn returns the underlying database connection.
func (t *Toolkit) Conn() Conn { return t.conn }

// ExposedSQLTools lists the SQL-action tools this user received, sorted.
func (t *Toolkit) ExposedSQLTools() []string {
	var out []string
	for _, spec := range sqlToolSpecs {
		if _, ok := t.reg.Get(spec.name); ok {
			out = append(out, spec.name)
		}
	}
	sort.Strings(out)
	return out
}

// exposeSQLTool reports whether a SQL-action tool should be exposed: the
// user must hold the action on at least one permitted object (or the
// database for CREATE), and the tool must pass the policy lists.
func (t *Toolkit) exposeSQLTool(spec sqlToolSpec) bool {
	if !t.policy.ToolPermitted(spec.name) {
		return false
	}
	if spec.action == "CREATE" {
		return t.conn.HasPrivilege("CREATE", "*")
	}
	for _, obj := range t.conn.ListObjects() {
		if !t.policy.ObjectPermitted(obj.Name) {
			continue
		}
		if t.conn.HasPrivilege(spec.action, obj.Name) {
			return true
		}
	}
	return false
}

func (t *Toolkit) registerSQLTools() {
	for _, spec := range sqlToolSpecs {
		if !t.exposeSQLTool(spec) {
			continue
		}
		spec := spec
		t.reg.Register(&mcp.Tool{
			Name:        spec.name,
			Description: spec.description,
			InputSchema: map[string]any{
				"type": "object",
				"properties": map[string]any{
					"sql": map[string]any{"type": "string", "description": "the SQL statement"},
				},
				"required": []any{"sql"},
			},
			Handler: func(ctx context.Context, args map[string]any) (any, error) {
				sql, _ := args["sql"].(string)
				if strings.TrimSpace(sql) == "" {
					return nil, fmt.Errorf("%s: missing required argument \"sql\"", spec.name)
				}
				return t.execSQL(spec, sql)
			},
		})
	}
}

// execSQL enforces statement-type matching and object-level verification
// before touching the database (paper §2.3(2)): hallucinated or injected
// statements are intercepted here, reducing load on the engine and adding a
// policy layer the database cannot provide.
func (t *Toolkit) execSQL(spec sqlToolSpec, sql string) (any, error) {
	verb, tables, err := t.conn.ClassifySQL(sql)
	if err != nil {
		return nil, fmt.Errorf("%s: cannot parse statement: %v", spec.name, err)
	}
	if verb != spec.verb {
		return nil, fmt.Errorf("%s tool only accepts %s statements; got %s (use the matching tool)",
			spec.name, spec.verb, verb)
	}
	if !t.policy.DisableVerification {
		for i, tbl := range tables {
			if !t.policy.ObjectPermitted(tbl) {
				return nil, fmt.Errorf("access to object %q is blocked by the user security policy", tbl)
			}
			// The statement's main table needs the tool's action; other
			// referenced tables need SELECT.
			need := spec.action
			if i > 0 && spec.verb != "SELECT" {
				need = "SELECT"
			}
			if !t.conn.HasPrivilege(need, tbl) {
				return nil, fmt.Errorf("permission denied: user %q lacks %s on %q (verified before execution)",
					t.conn.User(), need, tbl)
			}
		}
	}
	res, err := t.conn.Exec(sql)
	if err != nil {
		return nil, err
	}
	return mcpResult(res), nil
}

// mcpResult packages a database result so the text reaches the LLM while
// the structured payload remains available for proxy data transfer.
func mcpResult(res *Result) mcp.CallResult {
	cr := mcp.CallResult{Text: res.Text()}
	if len(res.Columns) > 0 {
		raw, err := jsonMarshal(map[string]any{"columns": res.Columns, "rows": res.Rows})
		if err == nil {
			cr.Data = raw
		}
	}
	return cr
}

func (t *Toolkit) registerTxnTools() {
	// Transaction tools appear only when the user can modify data at all.
	hasWrite := false
	for _, spec := range sqlToolSpecs {
		if spec.name == "select" {
			continue
		}
		if _, ok := t.reg.Get(spec.name); ok {
			hasWrite = true
			break
		}
	}
	if !hasWrite {
		return
	}
	t.reg.Register(&mcp.Tool{
		Name: "begin",
		Description: "Begin a new transaction (snapshot isolation). Wrap multi-statement database modifications in begin/commit for atomicity. " +
			"On a serialization-conflict error, rollback and retry the transaction. Optional 'isolation' selects the level.",
		InputSchema: map[string]any{
			"type": "object",
			"properties": map[string]any{
				"isolation": map[string]any{
					"type":        "string",
					"description": "READ COMMITTED, REPEATABLE READ, SNAPSHOT (default), or SERIALIZABLE",
				},
			},
		},
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			if level, _ := args["isolation"].(string); level != "" {
				// Validate against the known level spellings BEFORE any SQL
				// is assembled: the argument is caller-controlled and must
				// never be concatenated into a statement unchecked.
				if _, ok := sqldb.ParseIsolationLevel(level); !ok {
					return nil, fmt.Errorf("unknown isolation level %q", level)
				}
				if bi, ok := t.conn.(interface{ BeginIsolation(string) error }); ok {
					if err := bi.BeginIsolation(level); err != nil {
						return nil, err
					}
					return "BEGIN", nil
				}
				if _, err := t.conn.Exec("BEGIN ISOLATION LEVEL " + level); err != nil {
					return nil, err
				}
				return "BEGIN", nil
			}
			if err := t.conn.Begin(); err != nil {
				return nil, err
			}
			return "BEGIN", nil
		},
	})
	t.reg.Register(&mcp.Tool{
		Name:        "commit",
		Description: "Commit the current transaction, making its changes permanent.",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			if err := t.conn.Commit(); err != nil {
				return nil, err
			}
			return "COMMIT", nil
		},
	})
	t.reg.Register(&mcp.Tool{
		Name:        "rollback",
		Description: "Roll back the current transaction, discarding its changes.",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			if err := t.conn.Rollback(); err != nil {
				return nil, err
			}
			return "ROLLBACK", nil
		},
	})
}
