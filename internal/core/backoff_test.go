package core

import (
	"errors"
	"testing"
	"time"

	"bridgescope/internal/sqldb/stats"
)

// backoffConn is a minimal fake Conn whose transactions fail with a
// serialization error a configurable number of times before succeeding. It
// counts attempts so the retry loop's behavior is observable without a real
// engine.
type backoffConn struct {
	failures int // how many attempts should fail before success
	attempts int // Begin calls observed
}

var errFakeSerialization = errors.New("fake serialization failure")

func (c *backoffConn) User() string { return "fake" }
func (c *backoffConn) Exec(string) (*Result, error) {
	return nil, errors.New("not implemented")
}
func (c *backoffConn) Begin() error {
	c.attempts++
	return nil
}
func (c *backoffConn) Commit() error {
	if c.attempts <= c.failures {
		return errFakeSerialization
	}
	return nil
}
func (c *backoffConn) Rollback() error     { return nil }
func (c *backoffConn) InTransaction() bool { return false }
func (c *backoffConn) ListObjects() []ObjectInfo {
	return nil
}
func (c *backoffConn) ObjectDDL(string) (string, error) { return "", nil }
func (c *backoffConn) Columns(string) ([]string, error) { return nil, nil }
func (c *backoffConn) ColumnValues(string, string, int) ([]string, error) {
	return nil, nil
}
func (c *backoffConn) HasPrivilege(string, string) bool { return true }
func (c *backoffConn) ObjectActions(string) []string    { return nil }
func (c *backoffConn) ClassifySQL(string) (string, []string, error) {
	return "", nil, nil
}
func (c *backoffConn) Explain(string) (string, error) { return "", nil }
func (c *backoffConn) CacheStats() CacheStats         { return CacheStats{} }
func (c *backoffConn) Stats() stats.Snapshot          { return stats.Snapshot{} }
func (c *backoffConn) Durability() DurabilityStats    { return DurabilityStats{} }
func (c *backoffConn) Health() HealthStatus           { return HealthStatus{} }
func (c *backoffConn) IsPermissionDenied(error) bool  { return false }
func (c *backoffConn) IsSerializationFailure(err error) bool {
	return errors.Is(err, errFakeSerialization)
}

// TestBackoffDelaysGrowMonotonically exhausts every retry and checks the
// recorded sleeps: one per retry (none after the final failure), each
// strictly longer than the last while below the cap.
func TestBackoffDelaysGrowMonotonically(t *testing.T) {
	conn := &backoffConn{failures: 1 << 30} // never succeeds
	var sleeps []time.Duration
	bo := RetryBackoff{
		Base:   time.Millisecond,
		Cap:    time.Hour, // never reached within 6 retries
		Sleep:  func(d time.Duration) { sleeps = append(sleeps, d) },
		Jitter: func(n int64) int64 { return n / 2 }, // deterministic mid-jitter
	}
	const maxRetries = 6
	err := RunInTransactionBackoff(conn, maxRetries, bo, func(Conn) error { return nil })
	if err == nil {
		t.Fatal("expected error after exhausting retries")
	}
	if !errors.Is(err, errFakeSerialization) {
		t.Fatalf("error should wrap the serialization failure, got %v", err)
	}
	if got, want := conn.attempts, maxRetries+1; got != want {
		t.Fatalf("attempts = %d, want %d (initial + %d retries)", got, want, maxRetries)
	}
	// No sleep after the final failed attempt.
	if got, want := len(sleeps), maxRetries; got != want {
		t.Fatalf("sleeps = %d, want %d (one per retry, none after the last)", got, want)
	}
	for i := 1; i < len(sleeps); i++ {
		if sleeps[i] <= sleeps[i-1] {
			t.Fatalf("delay %d (%v) not greater than delay %d (%v)", i, sleeps[i], i-1, sleeps[i-1])
		}
	}
	// With jitter(n) = n/2, delay k is base<<k plus a quarter of itself.
	want := time.Millisecond + time.Millisecond/4
	if sleeps[0] != want {
		t.Fatalf("first delay = %v, want %v", sleeps[0], want)
	}
}

// TestBackoffStopsSleepingOnSuccess verifies the loop sleeps only between
// failed attempts and reports success without a trailing delay.
func TestBackoffStopsSleepingOnSuccess(t *testing.T) {
	conn := &backoffConn{failures: 3}
	var sleeps int
	bo := RetryBackoff{
		Base:  time.Millisecond,
		Cap:   time.Second,
		Sleep: func(time.Duration) { sleeps++ },
	}
	if err := RunInTransactionBackoff(conn, 10, bo, func(Conn) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if conn.attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (3 failures + 1 success)", conn.attempts)
	}
	if sleeps != 3 {
		t.Fatalf("sleeps = %d, want 3 (between failed attempts only)", sleeps)
	}
}

// TestBackoffRespectsCap checks the exponential delay stops growing at Cap
// (modulo jitter, which is zeroed here).
func TestBackoffRespectsCap(t *testing.T) {
	conn := &backoffConn{failures: 1 << 30}
	var sleeps []time.Duration
	bo := RetryBackoff{
		Base:   time.Millisecond,
		Cap:    4 * time.Millisecond,
		Sleep:  func(d time.Duration) { sleeps = append(sleeps, d) },
		Jitter: func(int64) int64 { return 0 },
	}
	_ = RunInTransactionBackoff(conn, 5, bo, func(Conn) error { return nil })
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		4 * time.Millisecond,
		4 * time.Millisecond,
	}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, sleeps[i], want[i])
		}
	}
}

// TestBackoffNonRetryableReturnsImmediately: a non-serialization error must
// not trigger retries or sleeps.
func TestBackoffNonRetryableReturnsImmediately(t *testing.T) {
	conn := &backoffConn{}
	var sleeps int
	bo := RetryBackoff{Sleep: func(time.Duration) { sleeps++ }}
	boom := errors.New("boom")
	err := RunInTransactionBackoff(conn, 5, bo, func(Conn) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if conn.attempts != 1 || sleeps != 0 {
		t.Fatalf("attempts = %d sleeps = %d, want 1 and 0", conn.attempts, sleeps)
	}
}
