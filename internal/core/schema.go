package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"bridgescope/internal/mcp"
	"bridgescope/internal/textsim"
)

func jsonMarshal(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func (t *Toolkit) registerContextTools() {
	t.reg.Register(&mcp.Tool{
		Name: "get_schema",
		Description: "Retrieve the database schema. For small databases this returns full object " +
			"definitions with your access privileges annotated; for large databases it returns object " +
			"names only (call get_object for details).",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			return t.getSchema()
		},
	})
	t.reg.Register(&mcp.Tool{
		Name:        "get_object",
		Description: "Retrieve the detailed definition (columns, keys, constraints) of one named object, with your access privileges annotated.",
		InputSchema: map[string]any{
			"type": "object",
			"properties": map[string]any{
				"object": map[string]any{"type": "string", "description": "object name"},
			},
			"required": []any{"object"},
		},
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			name, _ := args["object"].(string)
			if name == "" {
				return nil, fmt.Errorf("get_object: missing required argument \"object\"")
			}
			return t.getObject(name)
		},
	})
	t.reg.Register(&mcp.Tool{
		Name: "get_value",
		Description: "Retrieve the top-k values in a column's domain most semantically relevant to a " +
			"task-specific key. Use this to write predicates that match the actual stored values.",
		InputSchema: map[string]any{
			"type": "object",
			"properties": map[string]any{
				"table":  map[string]any{"type": "string"},
				"column": map[string]any{"type": "string"},
				"key":    map[string]any{"type": "string", "description": "task-specific key to match"},
				"k":      map[string]any{"type": "integer", "description": "how many values to return"},
			},
			"required": []any{"table", "column", "key"},
		},
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			table, _ := args["table"].(string)
			column, _ := args["column"].(string)
			key, _ := args["key"].(string)
			k := t.policy.valueTopK()
			if kv, ok := args["k"].(float64); ok && kv > 0 {
				k = int(kv)
			}
			if table == "" || column == "" || key == "" {
				return nil, fmt.Errorf("get_value: required arguments are table, column, key")
			}
			return t.getValue(table, column, key, k)
		},
	})
}

// permittedObjects lists catalog objects that pass the user-side policy.
// Objects the user holds no database privilege on are still listed (the LLM
// must know they exist and are inaccessible, paper Figure 3), but
// policy-hidden objects are omitted entirely.
func (t *Toolkit) permittedObjects() []ObjectInfo {
	var out []ObjectInfo
	for _, o := range t.conn.ListObjects() {
		if t.policy.ObjectPermitted(o.Name) {
			out = append(out, o)
		}
	}
	return out
}

// getSchema implements the adaptive strategy of §2.2: full annotated DDL
// under the threshold, hierarchical names-only above it.
func (t *Toolkit) getSchema() (any, error) {
	objs := t.permittedObjects()
	if len(objs) == 0 {
		return "The database has no objects visible to you.", nil
	}
	if len(objs) > t.policy.schemaThreshold() {
		var sb strings.Builder
		fmt.Fprintf(&sb, "The database has %d objects. Call get_object(name) for details.\n", len(objs))
		for _, o := range objs {
			access := "accessible"
			if !t.policy.DisablePrivilegeAnnotations && len(t.conn.ObjectActions(o.Name)) == 0 {
				access = "no access"
			}
			if t.policy.DisablePrivilegeAnnotations {
				fmt.Fprintf(&sb, "- %s (%s)\n", o.Name, o.Kind)
			} else {
				fmt.Fprintf(&sb, "- %s (%s, %s)\n", o.Name, o.Kind, access)
			}
		}
		return sb.String(), nil
	}
	var sb strings.Builder
	for i, o := range objs {
		if i > 0 {
			sb.WriteString("\n\n")
		}
		ddl, err := t.annotatedDDL(o.Name)
		if err != nil {
			return nil, err
		}
		sb.WriteString(ddl)
	}
	return sb.String(), nil
}

// annotatedDDL renders one object's DDL with privilege annotations
// (paper Figure 3: "-- Access: True, Permissions: ALL").
func (t *Toolkit) annotatedDDL(name string) (string, error) {
	ddl, err := t.conn.ObjectDDL(name)
	if err != nil {
		return "", err
	}
	if t.policy.DisablePrivilegeAnnotations {
		return ddl, nil
	}
	actions := t.conn.ObjectActions(name)
	if len(actions) == 0 {
		// Inaccessible objects show only their name: existence is visible,
		// structure is not.
		return fmt.Sprintf("-- Access: False\nCREATE TABLE %s (...);", name), nil
	}
	perms := strings.Join(actions, ", ")
	if len(actions) >= 7 {
		perms = "ALL"
	}
	return fmt.Sprintf("-- Access: True, Permissions: %s\n%s", perms, ddl), nil
}

func (t *Toolkit) getObject(name string) (any, error) {
	if !t.policy.ObjectPermitted(name) {
		return nil, fmt.Errorf("access to object %q is blocked by the user security policy", name)
	}
	found := false
	for _, o := range t.conn.ListObjects() {
		if strings.EqualFold(o.Name, name) {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("object %q does not exist", name)
	}
	return t.annotatedDDL(name)
}

// getValue implements the column-exemplar retrieval of §2.2 via lexical-
// semantic ranking, returning only the top-k matches instead of the full
// domain — the token-saving property the paper calls out.
func (t *Toolkit) getValue(table, column, key string, k int) (any, error) {
	if !t.policy.ObjectPermitted(table) {
		return nil, fmt.Errorf("access to object %q is blocked by the user security policy", table)
	}
	if !t.policy.DisableVerification && !t.conn.HasPrivilege("SELECT", table) {
		return nil, fmt.Errorf("permission denied: user %q lacks SELECT on %q", t.conn.User(), table)
	}
	// Cap domain enumeration; exemplar ranking does not need every value
	// of a huge column.
	vals, err := t.conn.ColumnValues(table, column, 10000)
	if err != nil {
		return nil, err
	}
	matches := textsim.TopK(key, vals, k)
	out := make([]string, len(matches))
	for i, m := range matches {
		out[i] = m.Value
	}
	raw, err := jsonMarshal(map[string]any{"values": out})
	if err != nil {
		return nil, err
	}
	return mcp.CallResult{
		Text: fmt.Sprintf("Top-%d values in %s.%s relevant to %q: %s",
			len(out), table, column, key, strings.Join(out, ", ")),
		Data: raw,
	}, nil
}
