package core

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bridgescope/internal/mcp"
	"bridgescope/internal/sqldb"
)

func proxyToolkit(t *testing.T, policy Policy) *Toolkit {
	t.Helper()
	e := newStoreEngine(t)
	return adminToolkit(t, e, policy)
}

func TestProxySimpleUnit(t *testing.T) {
	tk := proxyToolkit(t, Policy{})
	// A consumer that counts rows it receives.
	tk.Registry().Register(&mcp.Tool{
		Name: "row_counter",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			rows, _ := args["rows"].([]any)
			return map[string]any{"n": len(rows)}, nil
		},
	})
	res := call(t, tk, "proxy", map[string]any{
		"target_tool": "row_counter",
		"tool_args": map[string]any{
			"rows": map[string]any{
				"__tool__":      "select",
				"__args__":      map[string]any{"sql": "SELECT * FROM items"},
				"__transform__": "rows",
			},
		},
	})
	if res.IsErr {
		t.Fatalf("proxy failed: %s", res.Text)
	}
	if !strings.Contains(res.Text, `"n":3`) {
		t.Fatalf("consumer did not receive 3 rows: %s", res.Text)
	}
}

func TestProxyNestedUnits(t *testing.T) {
	tk := proxyToolkit(t, Policy{})
	// count_items -> double -> report: a three-level proxy hierarchy.
	tk.Registry().Register(&mcp.Tool{
		Name: "count_items",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			return map[string]any{"n": 3.0}, nil
		},
	})
	tk.Registry().Register(&mcp.Tool{
		Name: "double",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			v, _ := args["x"].(float64)
			return map[string]any{"value": v * 2}, nil
		},
	})
	tk.Registry().Register(&mcp.Tool{
		Name: "report",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			v, _ := args["x"].(float64)
			return map[string]any{"final": v}, nil
		},
	})
	res := call(t, tk, "proxy", map[string]any{
		"target_tool": "report",
		"tool_args": map[string]any{
			"x": map[string]any{
				"__tool__": "double",
				"__args__": map[string]any{
					"x": map[string]any{
						"__tool__":      "count_items",
						"__args__":      map[string]any{},
						"__transform__": "field:n",
					},
				},
				"__transform__": "field:value",
			},
		},
	})
	if res.IsErr {
		t.Fatalf("nested proxy failed: %s", res.Text)
	}
	if !strings.Contains(res.Text, `"final":6`) {
		t.Fatalf("nested unit computed wrong value: %s", res.Text)
	}
}

func TestProxyParallelProducers(t *testing.T) {
	tk := proxyToolkit(t, Policy{})
	var concurrent, maxConcurrent int32
	slow := func(ctx context.Context, args map[string]any) (any, error) {
		cur := atomic.AddInt32(&concurrent, 1)
		for {
			old := atomic.LoadInt32(&maxConcurrent)
			if cur <= old || atomic.CompareAndSwapInt32(&maxConcurrent, old, cur) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		atomic.AddInt32(&concurrent, -1)
		return map[string]any{"ok": true}, nil
	}
	tk.Registry().Register(&mcp.Tool{Name: "slow_a", Handler: slow})
	tk.Registry().Register(&mcp.Tool{Name: "slow_b", Handler: slow})
	tk.Registry().Register(&mcp.Tool{
		Name: "join2",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			return "joined", nil
		},
	})
	res := call(t, tk, "proxy", map[string]any{
		"target_tool": "join2",
		"tool_args": map[string]any{
			"a": map[string]any{"__tool__": "slow_a", "__args__": map[string]any{}},
			"b": map[string]any{"__tool__": "slow_b", "__args__": map[string]any{}},
		},
	})
	if res.IsErr {
		t.Fatalf("proxy failed: %s", res.Text)
	}
	if atomic.LoadInt32(&maxConcurrent) < 2 {
		t.Fatal("sibling producers did not run in parallel")
	}
}

func TestProxySequentialWhenDisabled(t *testing.T) {
	tk := proxyToolkit(t, Policy{DisableParallelProxy: true})
	var concurrent, maxConcurrent int32
	slow := func(ctx context.Context, args map[string]any) (any, error) {
		cur := atomic.AddInt32(&concurrent, 1)
		if cur > atomic.LoadInt32(&maxConcurrent) {
			atomic.StoreInt32(&maxConcurrent, cur)
		}
		time.Sleep(10 * time.Millisecond)
		atomic.AddInt32(&concurrent, -1)
		return "done", nil
	}
	tk.Registry().Register(&mcp.Tool{Name: "slow_a", Handler: slow})
	tk.Registry().Register(&mcp.Tool{Name: "slow_b", Handler: slow})
	tk.Registry().Register(&mcp.Tool{
		Name:    "join2",
		Handler: func(ctx context.Context, args map[string]any) (any, error) { return "ok", nil },
	})
	res := call(t, tk, "proxy", map[string]any{
		"target_tool": "join2",
		"tool_args": map[string]any{
			"a": map[string]any{"__tool__": "slow_a", "__args__": map[string]any{}},
			"b": map[string]any{"__tool__": "slow_b", "__args__": map[string]any{}},
		},
	})
	if res.IsErr {
		t.Fatalf("proxy failed: %s", res.Text)
	}
	if atomic.LoadInt32(&maxConcurrent) != 1 {
		t.Fatalf("producers ran concurrently despite DisableParallelProxy (max %d)", maxConcurrent)
	}
}

func TestProxyProducerErrorPropagates(t *testing.T) {
	tk := proxyToolkit(t, Policy{})
	tk.Registry().Register(&mcp.Tool{
		Name:    "sink",
		Handler: func(ctx context.Context, args map[string]any) (any, error) { return "ok", nil },
	})
	res := call(t, tk, "proxy", map[string]any{
		"target_tool": "sink",
		"tool_args": map[string]any{
			"x": map[string]any{
				"__tool__": "select",
				"__args__": map[string]any{"sql": "SELECT * FROM nope"},
			},
		},
	})
	if !res.IsErr || !strings.Contains(res.Text, "does not exist") {
		t.Fatalf("producer failure must surface, got %q", res.Text)
	}
}

func TestProxySecurityStillApplies(t *testing.T) {
	e := newStoreEngine(t)
	e.Grants().Grant("reader", sqldb.ActionSelect, "items")
	tk := New(NewSQLDBConn(e, "reader"), Policy{})
	tk.Registry().Register(&mcp.Tool{
		Name:    "sink",
		Handler: func(ctx context.Context, args map[string]any) (any, error) { return "ok", nil },
	})
	res := call(t, tk, "proxy", map[string]any{
		"target_tool": "sink",
		"tool_args": map[string]any{
			"x": map[string]any{
				"__tool__": "select",
				"__args__": map[string]any{"sql": "SELECT * FROM secrets"},
			},
		},
	})
	if !res.IsErr || !strings.Contains(res.Text, "permission denied") {
		t.Fatalf("proxy must not bypass verification, got %q", res.Text)
	}
}

func TestTransforms(t *testing.T) {
	tabular := map[string]any{
		"columns": []any{"a", "b"},
		"rows":    []any{[]any{1.0, 2.0}, []any{3.0, 4.0}},
	}
	cases := []struct {
		expr    string
		want    string // JSON of expected output
		wantErr bool
	}{
		{"identity", `{"columns":["a","b"],"rows":[[1,2],[3,4]]}`, false},
		{"lambda x: x", `{"columns":["a","b"],"rows":[[1,2],[3,4]]}`, false},
		{"rows", `[[1,2],[3,4]]`, false},
		{"column:b", `[2,4]`, false},
		{"matrix:a,b", `[[1,2],[3,4]]`, false},
		{"matrix:b", `[[2],[4]]`, false},
		{"vector:a", `[1,3]`, false},
		{"first", `[1,2]`, false},
		{"count", `2`, false},
		{"flatten", `[1,2,3,4]`, false},
		{"column:zzz", ``, true},
		{"lambda x: x + 1", ``, true},
		{"bogus", ``, true},
	}
	for _, c := range cases {
		got, err := ApplyTransform(c.expr, tabular)
		if c.wantErr {
			if err == nil {
				t.Errorf("transform %q: want error", c.expr)
			}
			continue
		}
		if err != nil {
			t.Errorf("transform %q: %v", c.expr, err)
			continue
		}
		raw, _ := json.Marshal(got)
		if string(raw) != c.want {
			t.Errorf("transform %q = %s, want %s", c.expr, raw, c.want)
		}
	}
}

func TestTransformChaining(t *testing.T) {
	obj := map[string]any{"inner": map[string]any{"rows": []any{[]any{7.0}}, "columns": []any{"x"}}}
	got, err := ApplyTransform("field:inner|vector:x", obj)
	if err != nil {
		t.Fatal(err)
	}
	vec, ok := got.([]float64)
	if !ok || len(vec) != 1 || vec[0] != 7 {
		t.Fatalf("chained transform wrong: %#v", got)
	}
}
