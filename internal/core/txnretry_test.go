package core

import (
	"fmt"
	"sync"
	"testing"

	"bridgescope/internal/sqldb"
)

func retryEngine(t *testing.T) *sqldb.Engine {
	t.Helper()
	e := sqldb.NewEngine("retry")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE counter (id INT PRIMARY KEY, n INT)`)
	root.MustExec(`INSERT INTO counter VALUES (1, 0)`)
	return e
}

// TestRunInTransactionRetries: concurrent increments through the retry
// helper all land despite write-write conflicts.
func TestRunInTransactionRetries(t *testing.T) {
	e := retryEngine(t)
	const workers = 4
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := NewSQLDBConn(e, "root")
			for i := 0; i < rounds; i++ {
				err := RunInTransaction(conn, 50, func(c Conn) error {
					_, err := c.Exec("UPDATE counter SET n = n + 1 WHERE id = 1")
					return err
				})
				if err != nil {
					errs <- fmt.Errorf("increment: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	res, err := NewSQLDBConn(e, "root").Exec("SELECT n FROM counter WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != workers*rounds {
		t.Fatalf("lost updates: counter = %d, want %d", got, workers*rounds)
	}
}

// TestRunInTransactionNonRetryableError: ordinary errors surface once, with
// the transaction rolled back.
func TestRunInTransactionNonRetryableError(t *testing.T) {
	e := retryEngine(t)
	conn := NewSQLDBConn(e, "root")
	calls := 0
	err := RunInTransaction(conn, 3, func(c Conn) error {
		calls++
		_, err := c.Exec("INSERT INTO counter VALUES (1, 9)") // duplicate PK
		return err
	})
	if err == nil || conn.IsSerializationFailure(err) {
		t.Fatalf("want plain duplicate-key error, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("non-retryable error ran fn %d times, want 1", calls)
	}
	if conn.InTransaction() {
		t.Fatal("transaction left open after failure")
	}
}

// TestIsSerializationFailure: the Conn-level classifier recognizes engine
// conflicts and nothing else.
func TestIsSerializationFailure(t *testing.T) {
	e := retryEngine(t)
	c1 := NewSQLDBConn(e, "root")
	c2 := NewSQLDBConn(e, "root")
	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("UPDATE counter SET n = 5 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	_, err := c2.Exec("UPDATE counter SET n = 6 WHERE id = 1")
	if !c2.IsSerializationFailure(err) {
		t.Fatalf("conflict not classified as serialization failure: %v", err)
	}
	if c2.IsSerializationFailure(fmt.Errorf("boring")) {
		t.Fatal("classified arbitrary error as serialization failure")
	}
	_ = c2.Rollback()
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBeginIsolation: the adapter-level isolation entry point reaches the
// engine's READ COMMITTED mode.
func TestBeginIsolation(t *testing.T) {
	e := retryEngine(t)
	rc := NewSQLDBConn(e, "root")
	writer := NewSQLDBConn(e, "root")
	if err := rc.BeginIsolation("READ COMMITTED"); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec("UPDATE counter SET n = 77 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	res, err := rc.Exec("SELECT n FROM counter WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 77 {
		t.Fatalf("READ COMMITTED transaction did not see the commit: %d", got)
	}
	_ = rc.Rollback()
	if err := rc.BeginIsolation("BOGUS LEVEL"); err == nil {
		t.Fatal("want error for unknown isolation level")
	}
}
