// Package nl2ml synthesizes the NL2ML benchmark (paper §3.1): end-to-end
// model-training tasks over a California-Housing-style table of 20,000 rows
// and 10 columns. Its 30 tasks come in three complexity levels of 10 tasks
// each, corresponding to one, two, and three layers of proxy-unit
// abstraction:
//
//	level 1: query data  -> train model
//	level 2: query data  -> z-score normalize -> train model
//	level 3: query data  -> normalize -> train -> predict house prices
//
// The Kaggle dataset itself is not redistributable; the generator produces
// rows of the same shape and scale from a seeded price model, which is all
// the data-transfer experiment (§3.4) depends on.
package nl2ml

import (
	"fmt"
	"math/rand"
	"strings"

	"bridgescope/internal/sqldb"
	"bridgescope/internal/task"
)

// Table sizes: the paper's full table and the PG-MCP-S reduction.
const (
	FullRows  = 20000
	SmallRows = 20
)

// FeatureColumns are the numeric predictors; TargetColumn is the label.
var (
	AllFeatures = []string{
		"longitude", "latitude", "housing_median_age", "total_rooms",
		"total_bedrooms", "population", "households", "median_income",
	}
	TargetColumn = "median_house_value"
)

// BuildHouseEngine creates the housing database with the given number of
// rows. The price model links the target to the features so regression is
// learnable.
func BuildHouseEngine(seed int64, rows int) *sqldb.Engine {
	e := sqldb.NewEngine("california_housing")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE house (
		id INT PRIMARY KEY,
		longitude REAL, latitude REAL, housing_median_age REAL,
		total_rooms REAL, total_bedrooms REAL, population REAL,
		households REAL, median_income REAL, median_house_value REAL)`)

	rng := rand.New(rand.NewSource(seed))
	var batch []string
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.MustExec("INSERT INTO house VALUES " + strings.Join(batch, ", "))
		batch = batch[:0]
	}
	for i := 1; i <= rows; i++ {
		lon := -124.3 + rng.Float64()*10.0
		lat := 32.5 + rng.Float64()*9.5
		age := 1 + rng.Float64()*51
		roomsC := 500 + rng.Float64()*6000
		bedrooms := roomsC * (0.15 + rng.Float64()*0.1)
		pop := 300 + rng.Float64()*5000
		households := pop / (2 + rng.Float64()*2)
		income := 0.5 + rng.Float64()*14.5
		// Price: income dominates, coastal (west) premium, age wear,
		// plus noise — shaped like the real dataset's dependencies.
		price := 35000*income + 120000 - 8000*(lon+120) - 300*age +
			12*roomsC/(1+pop/1000) + rng.NormFloat64()*25000
		if price < 15000 {
			price = 15000 + rng.Float64()*5000
		}
		batch = append(batch, fmt.Sprintf("(%d, %.4f, %.4f, %.1f, %.1f, %.1f, %.1f, %.1f, %.4f, %.1f)",
			i, lon, lat, age, roomsC, bedrooms, pop, households, income, price))
		if len(batch) == 500 {
			flush()
		}
	}
	flush()
	return e
}

// SetupUser grants the analyst read access to the housing data and returns
// the user name.
func SetupUser(e *sqldb.Engine) string {
	e.Grants().Grant("analyst", sqldb.ActionSelect, "house")
	return "analyst"
}

// featureSets are the predictor subsets the tasks sweep over (5–8 of the
// table's predictors, like the dataset's standard regression setups).
var featureSets = [][]string{
	{"longitude", "latitude", "housing_median_age", "total_rooms", "total_bedrooms", "population", "households", "median_income"},
	{"median_income", "housing_median_age", "total_rooms", "total_bedrooms", "population", "households"},
	{"median_income", "longitude", "latitude", "housing_median_age", "population"},
	{"median_income", "housing_median_age", "total_rooms", "population", "households", "longitude", "latitude"},
	{"median_income", "total_rooms", "total_bedrooms", "households", "housing_median_age", "population"},
}

// GenerateTasks builds the 30 NL2ML tasks (10 per level).
func GenerateTasks() []*task.Task {
	var out []*task.Task
	models := []string{"train_linear_regression", "train_random_forest"}
	modelNames := map[string]string{
		"train_linear_regression": "a linear regression model",
		"train_random_forest":     "a random forest model",
	}
	for level := 1; level <= 3; level++ {
		for i := 0; i < 10; i++ {
			fs := featureSets[i%len(featureSets)]
			model := models[i%2]
			cols := strings.Join(append(append([]string{}, fs...), TargetColumn), ", ")
			dataSQL := "SELECT " + cols + " FROM house"
			p := &task.Pipeline{
				Level:       level,
				DataSQL:     dataSQL,
				FeatureCols: fs,
				TargetCol:   TargetColumn,
				Normalize:   level >= 2,
				ModelTool:   model,
			}
			nl := fmt.Sprintf("Train %s to predict house values from %s.",
				modelNames[model], strings.Join(fs, ", "))
			if level >= 2 {
				nl = fmt.Sprintf("Normalize the features (%s) with z-scores, then train %s to predict house values.",
					strings.Join(fs, ", "), modelNames[model])
			}
			if level == 3 {
				p.Predict = true
				p.PredictSQL = "SELECT " + strings.Join(fs, ", ") + " FROM house ORDER BY id DESC LIMIT 10"
				nl += " Finally, predict the prices of the 10 most recently listed houses."
			}
			out = append(out, &task.Task{
				ID:       fmt.Sprintf("nl2ml-L%d-%02d", level, i+1),
				NL:       nl,
				Kind:     task.Read,
				Tables:   []string{"house"},
				GoldSQL:  []string{dataSQL},
				Pipeline: p,
			})
		}
	}
	return out
}
