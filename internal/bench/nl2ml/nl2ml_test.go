package nl2ml

import (
	"strings"
	"testing"

	"bridgescope/internal/sqldb"
)

func TestGenerateTasksShape(t *testing.T) {
	tasks := GenerateTasks()
	if len(tasks) != 30 {
		t.Fatalf("want 30 tasks, got %d", len(tasks))
	}
	perLevel := map[int]int{}
	for _, tk := range tasks {
		if tk.Pipeline == nil {
			t.Fatalf("task %s has no pipeline", tk.ID)
		}
		perLevel[tk.Pipeline.Level]++
		if tk.Pipeline.Level >= 2 && !tk.Pipeline.Normalize {
			t.Fatalf("task %s: level %d must normalize", tk.ID, tk.Pipeline.Level)
		}
		if (tk.Pipeline.Level == 3) != tk.Pipeline.Predict {
			t.Fatalf("task %s: predict flag wrong for level %d", tk.ID, tk.Pipeline.Level)
		}
		if len(tk.Pipeline.FeatureCols) < 5 {
			t.Fatalf("task %s: feature set too small", tk.ID)
		}
	}
	for lvl := 1; lvl <= 3; lvl++ {
		if perLevel[lvl] != 10 {
			t.Fatalf("level %d has %d tasks, want 10", lvl, perLevel[lvl])
		}
	}
}

func TestHouseEngineShape(t *testing.T) {
	e := BuildHouseEngine(3, 500)
	root := e.NewSession("root")
	r := root.MustExec("SELECT COUNT(*) FROM house")
	if r.Rows[0][0].I != 500 {
		t.Fatalf("row count = %v", r.Rows[0][0])
	}
	tab, _ := e.Table("house")
	if len(tab.Columns) != 10 {
		t.Fatalf("house should have 10 columns, got %d", len(tab.Columns))
	}
	// Price correlates with income: top-income houses cost more on average.
	r = root.MustExec(`SELECT AVG(median_house_value) FROM house WHERE median_income > 10`)
	high := r.Rows[0][0].F
	r = root.MustExec(`SELECT AVG(median_house_value) FROM house WHERE median_income < 3`)
	low := r.Rows[0][0].F
	if high <= low {
		t.Fatalf("price model broken: high-income avg %.0f <= low-income avg %.0f", high, low)
	}
}

func TestHouseEngineDeterminism(t *testing.T) {
	a := BuildHouseEngine(9, 200)
	b := BuildHouseEngine(9, 200)
	ra := a.NewSession("root").MustExec("SELECT SUM(median_house_value), SUM(total_rooms) FROM house").Text()
	rb := b.NewSession("root").MustExec("SELECT SUM(median_house_value), SUM(total_rooms) FROM house").Text()
	if ra != rb {
		t.Fatalf("nondeterministic generation: %s vs %s", ra, rb)
	}
}

func TestAllTaskSQLExecutes(t *testing.T) {
	e := BuildHouseEngine(3, 300)
	root := e.NewSession("root")
	for _, tk := range GenerateTasks() {
		if _, err := root.Exec(tk.Pipeline.DataSQL); err != nil {
			t.Fatalf("task %s data SQL failed: %v", tk.ID, err)
		}
		if tk.Pipeline.Predict {
			if _, err := root.Exec(tk.Pipeline.PredictSQL); err != nil {
				t.Fatalf("task %s predict SQL failed: %v", tk.ID, err)
			}
		}
	}
}

func TestSetupUser(t *testing.T) {
	e := BuildHouseEngine(3, 50)
	user := SetupUser(e)
	if !e.Grants().Has(user, sqldb.ActionSelect, "house") {
		t.Fatal("analyst must be able to read house")
	}
	if e.Grants().Has(user, sqldb.ActionDelete, "house") {
		t.Fatal("analyst must not write")
	}
	sess := e.NewSession(user)
	if _, err := sess.Exec("SELECT COUNT(*) FROM house"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("DELETE FROM house"); err == nil {
		t.Fatal("delete should be denied")
	}
}

func TestTaskNLIncludesWorkflow(t *testing.T) {
	for _, tk := range GenerateTasks() {
		if tk.Pipeline.Level >= 2 && !strings.Contains(tk.NL, "ormalize") {
			t.Fatalf("task %s NL should mention normalization: %s", tk.ID, tk.NL)
		}
		if tk.Pipeline.Level == 3 && !strings.Contains(tk.NL, "predict") {
			t.Fatalf("task %s NL should mention prediction: %s", tk.ID, tk.NL)
		}
	}
}
