package birdext

import (
	"fmt"
	"strings"
	"sync"

	"bridgescope/internal/sqldb"
	"bridgescope/internal/task"
)

// Suite is a generated BIRD-Ext benchmark instance: 150 read and 150 write
// tasks over the schema in BuildEngine.
type Suite struct {
	Seed       int64
	Tasks      []*task.Task
	ReadTasks  []*task.Task
	WriteTasks []*task.Task
}

// The benchmark's size, matching the paper.
const (
	NumReadTasks  = 150
	NumWriteTasks = 150
)

var (
	suiteMu    sync.Mutex
	suiteCache = map[int64]*Suite{}
)

// GenerateSuite builds (and caches) the deterministic benchmark for a seed,
// including each task's gold result / post-state expectation.
func GenerateSuite(seed int64) *Suite {
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if s, ok := suiteCache[seed]; ok {
		return s
	}
	s := &Suite{Seed: seed}
	s.Tasks = buildTasks()
	for _, t := range s.Tasks {
		if t.Kind == task.Read {
			s.ReadTasks = append(s.ReadTasks, t)
		} else {
			s.WriteTasks = append(s.WriteTasks, t)
		}
	}
	computeExpectations(s)
	suiteCache[seed] = s
	return s
}

// BuildEngine returns a fresh populated database for one task run.
func (s *Suite) BuildEngine() *sqldb.Engine { return BuildEngine(s.Seed) }

// computeExpectations executes every task's gold SQL against a pristine
// database and records the verification baseline.
func computeExpectations(s *Suite) {
	// Read tasks never mutate: share one engine.
	readEngine := BuildEngine(s.Seed)
	readSess := readEngine.NewSession("root")
	for _, t := range s.ReadTasks {
		r := readSess.MustExec(t.GoldSQL[0])
		t.VerifySQL = t.GoldSQL[0]
		t.Expected = r.Text()
	}
	for _, t := range s.WriteTasks {
		e := BuildEngine(s.Seed)
		sess := e.NewSession("root")
		for _, q := range t.GoldSQL {
			sess.MustExec(q)
		}
		r := sess.MustExec(t.VerifySQL)
		t.Expected = r.Text()
	}
}

// valuePair is a stored value plus the plausible-but-wrong variant an LLM
// hallucinates before retrieving exemplars.
type valuePair struct {
	table, column string
	stored, wrong string
	nl            string // how the task text phrases it
}

var valuePairs = []valuePair{
	{"items", "category", "women", "women's wear", "women's wear"},
	{"items", "category", "men", "menswear", "menswear"},
	{"items", "category", "kids", "kidswear", "kidswear"},
	{"items", "category", "shoes", "shoe products", "shoe products"},
	{"items", "category", "accessories", "accessory items", "accessory items"},
	{"refunds", "reason", "wrong size", "wrong sizing", "wrong sizing"},
	{"refunds", "reason", "changed mind", "changed their mind", "customers who changed their mind"},
	{"accounts", "status", "frozen", "frozen status", "frozen-status"},
	{"loans", "status", "defaulted", "in default", "loans in default"},
	{"clients", "segment", "premium", "premium tier", "premium-tier"},
}

// corruptions maps real column names to the misspellings a model invents
// when it has not seen the schema.
var corruptions = map[string]string{
	"enrollment":     "enrollments",
	"free_meal_rate": "meal_rate",
	"avg_math":       "math_avg",
	"avg_reading":    "reading_avg",
	"test_takers":    "num_takers",
	"category":       "item_category",
	"price":          "unit_price",
	"amount":         "total_amount",
	"balance":        "acct_balance",
	"district":       "region",
	"county":         "county_name",
	"qty":            "quantity",
	"reason":         "refund_reason",
	"opened_year":    "open_year",
	"duration":       "term_months",
}

// corruptIdents rewrites a statement with one hallucinated identifier.
func corruptIdents(sql string) string {
	for real, fake := range corruptions {
		if idx := wordIndex(sql, real); idx >= 0 {
			return sql[:idx] + fake + sql[idx+len(real):]
		}
	}
	// Last resort: mangle the first table name.
	for _, tbl := range TaskTables {
		if idx := wordIndex(sql, tbl); idx >= 0 {
			return sql[:idx] + tbl + "_tbl" + sql[idx+len(tbl):]
		}
	}
	return sql
}

// wordIndex finds needle in s at word boundaries.
func wordIndex(s, needle string) int {
	lo := strings.ToLower(s)
	from := 0
	for {
		i := strings.Index(lo[from:], needle)
		if i < 0 {
			return -1
		}
		i += from
		beforeOK := i == 0 || !isWordChar(lo[i-1])
		after := i + len(needle)
		afterOK := after >= len(lo) || !isWordChar(lo[after])
		if beforeOK && afterOK {
			return i
		}
		from = i + 1
	}
}

func isWordChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
}

// semanticWrong derives a statement that runs but computes the wrong thing:
// a flipped comparison or an off-by-one literal — the residual SQL mistakes
// of Fig 5b.
func semanticWrong(sql string) string {
	if i := strings.Index(sql, " > "); i >= 0 {
		return sql[:i] + " < " + sql[i+3:]
	}
	if i := strings.Index(sql, " < "); i >= 0 {
		return sql[:i] + " > " + sql[i+3:]
	}
	if i := strings.Index(sql, " >= "); i >= 0 {
		return sql[:i] + " <= " + sql[i+4:]
	}
	if i := strings.Index(sql, "2023"); i >= 0 {
		return sql[:i] + "2022" + sql[i+4:]
	}
	if i := strings.Index(sql, "2021"); i >= 0 {
		return sql[:i] + "2022" + sql[i+4:]
	}
	if i := strings.Index(sql, " DESC"); i >= 0 {
		return sql[:i] + " ASC" + sql[i+5:]
	}
	return ""
}

func corruptAll(sqls []string) []string {
	out := make([]string, len(sqls))
	for i, s := range sqls {
		out[i] = corruptIdents(s)
	}
	return out
}

func semanticAll(sqls []string) []string {
	changed := false
	out := make([]string, len(sqls))
	for i, s := range sqls {
		w := semanticWrong(s)
		if w != "" {
			out[i] = w
			changed = true
		} else {
			out[i] = s
		}
	}
	if !changed {
		return nil
	}
	return out
}

// newReadTask assembles a read task with all variants.
func newReadTask(id int, nl, gold string, tables []string) *task.Task {
	t := &task.Task{
		ID:      fmt.Sprintf("read-%03d", id),
		NL:      nl,
		Kind:    task.Read,
		Tables:  tables,
		GoldSQL: []string{gold},
	}
	t.CorruptIdentSQL = corruptAll(t.GoldSQL)
	t.SemanticWrongSQL = semanticAll(t.GoldSQL)
	return t
}

// withValue marks a task value-dependent and derives its wrong-value
// variant by substituting the stored value with the hallucinated one.
func withValue(t *task.Task, vp valuePair) *task.Task {
	t.NeedsValue = true
	t.ValueTable = vp.table
	t.ValueColumn = vp.column
	t.ValueKey = vp.wrong
	escaped := strings.ReplaceAll(vp.wrong, "'", "''")
	wrong := make([]string, len(t.GoldSQL))
	for i, s := range t.GoldSQL {
		wrong[i] = strings.ReplaceAll(s, "'"+vp.stored+"'", "'"+escaped+"'")
	}
	t.WrongValueSQL = wrong
	return t
}

func newWriteTask(id int, kind task.Kind, nl string, gold []string, tables []string, verify string) *task.Task {
	t := &task.Task{
		ID:        fmt.Sprintf("%s-%03d", kind, id),
		NL:        nl,
		Kind:      kind,
		Tables:    tables,
		GoldSQL:   gold,
		VerifySQL: verify,
	}
	t.CorruptIdentSQL = corruptAll(t.GoldSQL)
	t.SemanticWrongSQL = semanticAll(t.GoldSQL)
	return t
}

func buildTasks() []*task.Task {
	var tasks []*task.Task
	tasks = append(tasks, buildReadTasks()...)
	tasks = append(tasks, buildWriteTasks()...)
	return tasks
}

func buildReadTasks() []*task.Task {
	var out []*task.Task
	id := 0
	add := func(t *task.Task) {
		out = append(out, t)
	}
	next := func() int { id++; return id }

	// Per-county school statistics.
	for _, c := range counties {
		add(newReadTask(next(), fmt.Sprintf("How many schools are in %s county?", c),
			fmt.Sprintf("SELECT COUNT(*) FROM schools WHERE county = '%s'", c), []string{"schools"}))
		add(newReadTask(next(), fmt.Sprintf("What is the average enrollment of schools in %s county?", c),
			fmt.Sprintf("SELECT AVG(enrollment) FROM schools WHERE county = '%s'", c), []string{"schools"}))
		add(newReadTask(next(), fmt.Sprintf("List the five largest schools in %s county by enrollment.", c),
			fmt.Sprintf("SELECT name, enrollment FROM schools WHERE county = '%s' ORDER BY enrollment DESC LIMIT 5", c), []string{"schools"}))
	}
	// Charter-school analytics.
	add(newReadTask(next(), "How many charter schools are there per county?",
		"SELECT county, COUNT(*) FROM schools WHERE charter = 1 GROUP BY county ORDER BY county", []string{"schools"}))
	add(newReadTask(next(), "Which counties have more than 8 charter schools?",
		"SELECT county, COUNT(*) AS n FROM schools WHERE charter = 1 GROUP BY county HAVING COUNT(*) > 8 ORDER BY county", []string{"schools"}))
	add(newReadTask(next(), "What fraction-relevant counts: schools with free meal rate above 0.5 per county?",
		"SELECT county, COUNT(*) FROM schools WHERE free_meal_rate > 0.5 GROUP BY county ORDER BY county", []string{"schools"}))

	// Scores analytics (join + aggregate).
	for _, year := range []int{2021, 2022, 2023} {
		add(newReadTask(next(), fmt.Sprintf("What was the average math score across schools in %d?", year),
			fmt.Sprintf("SELECT AVG(avg_math) FROM scores WHERE year = %d", year), []string{"scores"}))
		add(newReadTask(next(), fmt.Sprintf("List the top 10 schools by average math score in %d.", year),
			fmt.Sprintf("SELECT schools.name, scores.avg_math FROM scores JOIN schools ON scores.school_id = schools.id WHERE scores.year = %d ORDER BY scores.avg_math DESC LIMIT 10", year),
			[]string{"scores", "schools"}))
		add(newReadTask(next(), fmt.Sprintf("How many score records in %d had more than 200 test takers?", year),
			fmt.Sprintf("SELECT COUNT(*) FROM scores WHERE year = %d AND test_takers > 200", year), []string{"scores"}))
	}
	for _, thresh := range []int{500, 520, 540} {
		add(newReadTask(next(), fmt.Sprintf("Which schools scored above %d in math in 2023?", thresh),
			fmt.Sprintf("SELECT schools.name FROM scores JOIN schools ON scores.school_id = schools.id WHERE scores.year = 2023 AND scores.avg_math > %d ORDER BY schools.name", thresh),
			[]string{"scores", "schools"}))
	}
	add(newReadTask(next(), "Compare average reading and math scores per year.",
		"SELECT year, AVG(avg_reading), AVG(avg_math) FROM scores GROUP BY year ORDER BY year", []string{"scores"}))
	add(newReadTask(next(), "Which county's schools had the best average math score in 2023?",
		"SELECT schools.county, AVG(scores.avg_math) AS m FROM scores JOIN schools ON scores.school_id = schools.id WHERE scores.year = 2023 GROUP BY schools.county ORDER BY m DESC LIMIT 1",
		[]string{"scores", "schools"}))

	// Finance analytics.
	for _, d := range districts {
		add(newReadTask(next(), fmt.Sprintf("How many clients are in the %s district?", d),
			fmt.Sprintf("SELECT COUNT(*) FROM clients WHERE district = '%s'", d), []string{"clients"}))
		add(newReadTask(next(), fmt.Sprintf("What is the total account balance held by clients of the %s district?", d),
			fmt.Sprintf("SELECT SUM(accounts.balance) FROM accounts JOIN clients ON accounts.client_id = clients.id WHERE clients.district = '%s'", d),
			[]string{"accounts", "clients"}))
	}
	for _, st := range acctStatus {
		add(newReadTask(next(), fmt.Sprintf("What is the average balance of %s accounts?", st),
			fmt.Sprintf("SELECT AVG(balance) FROM accounts WHERE status = '%s'", st), []string{"accounts"}))
	}
	for _, y := range []int{2016, 2018, 2020, 2022} {
		add(newReadTask(next(), fmt.Sprintf("How many accounts were opened in %d or later?", y),
			fmt.Sprintf("SELECT COUNT(*) FROM accounts WHERE opened_year >= %d", y), []string{"accounts"}))
	}
	add(newReadTask(next(), "What is the total approved loan amount?",
		"SELECT SUM(amount) FROM loans WHERE status = 'approved'", []string{"loans"}))
	add(newReadTask(next(), "How many loans of each status are there?",
		"SELECT status, COUNT(*) FROM loans GROUP BY status ORDER BY status", []string{"loans"}))
	for _, dur := range []int{12, 24, 36, 48, 60} {
		add(newReadTask(next(), fmt.Sprintf("What is the average amount of %d-month loans?", dur),
			fmt.Sprintf("SELECT AVG(amount) FROM loans WHERE duration = %d", dur), []string{"loans"}))
	}
	add(newReadTask(next(), "Which clients hold accounts with balances above 40000?",
		"SELECT DISTINCT clients.name FROM clients JOIN accounts ON accounts.client_id = clients.id WHERE accounts.balance > 40000 ORDER BY clients.name",
		[]string{"clients", "accounts"}))
	add(newReadTask(next(), "List the 10 largest loans with their account ids.",
		"SELECT id, account_id, amount FROM loans ORDER BY amount DESC LIMIT 10", []string{"loans"}))

	// Retail analytics with value-dependent predicates (exemplar cases).
	for _, vp := range valuePairs[:5] { // the five item categories
		add(withValue(newReadTask(next(), fmt.Sprintf("What is the total revenue from %s?", vp.nl),
			fmt.Sprintf("SELECT SUM(sales.amount) FROM sales JOIN items ON sales.item_id = items.id WHERE items.category = '%s'", vp.stored),
			[]string{"sales", "items"}), vp))
		add(withValue(newReadTask(next(), fmt.Sprintf("How many distinct items of %s were sold?", vp.nl),
			fmt.Sprintf("SELECT COUNT(DISTINCT sales.item_id) FROM sales JOIN items ON sales.item_id = items.id WHERE items.category = '%s'", vp.stored),
			[]string{"sales", "items"}), vp))
		add(withValue(newReadTask(next(), fmt.Sprintf("What is the average price of %s items?", vp.nl),
			fmt.Sprintf("SELECT AVG(price) FROM items WHERE category = '%s'", vp.stored),
			[]string{"items"}), vp))
	}
	for _, vp := range []valuePair{valuePairs[5], valuePairs[6]} { // refund reasons
		add(withValue(newReadTask(next(), fmt.Sprintf("How much was refunded for %s?", vp.nl),
			fmt.Sprintf("SELECT SUM(amount) FROM refunds WHERE reason = '%s'", vp.stored),
			[]string{"refunds"}), vp))
		add(withValue(newReadTask(next(), fmt.Sprintf("How many refunds were recorded for %s?", vp.nl),
			fmt.Sprintf("SELECT COUNT(*) FROM refunds WHERE reason = '%s'", vp.stored),
			[]string{"refunds"}), vp))
	}
	add(withValue(newReadTask(next(), "What is the combined balance of frozen-status accounts per client district?",
		"SELECT clients.district, SUM(accounts.balance) FROM accounts JOIN clients ON accounts.client_id = clients.id WHERE accounts.status = 'frozen' GROUP BY clients.district ORDER BY clients.district",
		[]string{"accounts", "clients"}), valuePairs[7]))
	add(withValue(newReadTask(next(), "What is the total amount of loans in default?",
		"SELECT SUM(amount) FROM loans WHERE status = 'defaulted'", []string{"loans"}), valuePairs[8]))
	add(withValue(newReadTask(next(), "How many premium-tier clients are there per district?",
		"SELECT district, COUNT(*) FROM clients WHERE segment = 'premium' GROUP BY district ORDER BY district",
		[]string{"clients"}), valuePairs[9]))

	// Daily retail series.
	for _, day := range []int{5, 10, 15, 20, 25} {
		add(newReadTask(next(), fmt.Sprintf("What were total sales up to day %d?", day),
			fmt.Sprintf("SELECT SUM(amount) FROM sales WHERE day <= %d", day), []string{"sales"}))
		add(newReadTask(next(), fmt.Sprintf("How many orders were placed after day %d?", day),
			fmt.Sprintf("SELECT COUNT(*) FROM sales WHERE day > %d", day), []string{"sales"}))
	}
	add(newReadTask(next(), "Show daily sales totals in the first week.",
		"SELECT day, SUM(amount) FROM sales WHERE day <= 7 GROUP BY day ORDER BY day", []string{"sales"}))
	add(newReadTask(next(), "Which items sold more than 10 units in total?",
		"SELECT items.name, SUM(sales.qty) AS units FROM sales JOIN items ON sales.item_id = items.id GROUP BY items.name HAVING SUM(sales.qty) > 10 ORDER BY units DESC",
		[]string{"sales", "items"}))
	add(newReadTask(next(), "What are the 5 best-selling items by revenue?",
		"SELECT items.name, SUM(sales.amount) AS rev FROM sales JOIN items ON sales.item_id = items.id GROUP BY items.name ORDER BY rev DESC LIMIT 5",
		[]string{"sales", "items"}))
	add(newReadTask(next(), "How many sales had quantity of at least 3?",
		"SELECT COUNT(*) FROM sales WHERE qty >= 3", []string{"sales"}))
	add(newReadTask(next(), "What is the average refund amount?",
		"SELECT AVG(amount) FROM refunds", []string{"refunds"}))
	add(newReadTask(next(), "Count refunds per day for the first 10 days.",
		"SELECT day, COUNT(*) FROM refunds WHERE day <= 10 GROUP BY day ORDER BY day", []string{"refunds"}))

	// Mixed-difficulty filler to reach exactly 150, sweeping thresholds.
	fillSpecs := []struct {
		nlFmt, sqlFmt string
		tables        []string
		vals          []int
	}{
		{"How many schools have enrollment above %d?",
			"SELECT COUNT(*) FROM schools WHERE enrollment > %d", []string{"schools"},
			[]int{400, 800, 1200, 1600, 2000, 2400}},
		{"How many schools have a free meal rate above 0.%d?",
			"SELECT COUNT(*) FROM schools WHERE free_meal_rate > 0.%d", []string{"schools"},
			[]int{2, 3, 4, 6, 7}},
		{"How many accounts hold a balance above %d?",
			"SELECT COUNT(*) FROM accounts WHERE balance > %d", []string{"accounts"},
			[]int{10000, 20000, 30000, 40000}},
		{"How many loans exceed %d in amount?",
			"SELECT COUNT(*) FROM loans WHERE amount > %d", []string{"loans"},
			[]int{25000, 50000, 75000}},
		{"How many items cost more than %d?",
			"SELECT COUNT(*) FROM items WHERE price > %d", []string{"items"},
			[]int{20, 40, 60, 80, 100}},
		{"What is the total sales revenue on day %d?",
			"SELECT SUM(amount) FROM sales WHERE day = %d", []string{"sales"},
			[]int{1, 3, 7, 9, 11, 13, 17, 19, 21, 23, 27, 29}},
		{"How many score records had fewer than %d test takers?",
			"SELECT COUNT(*) FROM scores WHERE test_takers < %d", []string{"scores"},
			[]int{50, 100, 150, 250, 350}},
		{"How many orders were placed on day %d?",
			"SELECT COUNT(*) FROM sales WHERE day = %d", []string{"sales"},
			[]int{2, 4, 6, 8, 10, 12, 14, 16, 18, 22}},
		{"What is the average order amount for orders of quantity %d?",
			"SELECT AVG(amount) FROM sales WHERE qty = %d", []string{"sales"},
			[]int{1, 2, 3, 4, 5}},
		{"How many refunds exceeded %d?",
			"SELECT COUNT(*) FROM refunds WHERE amount > %d", []string{"refunds"},
			[]int{25, 50, 75, 100, 125}},
		{"How many clients have an id below %d?",
			"SELECT COUNT(*) FROM clients WHERE id < %d", []string{"clients"},
			[]int{20, 40, 60}},
	}
	for _, spec := range fillSpecs {
		for _, v := range spec.vals {
			if len(out) >= NumReadTasks {
				break
			}
			add(newReadTask(next(), fmt.Sprintf(spec.nlFmt, v),
				fmt.Sprintf(spec.sqlFmt, v), spec.tables))
		}
	}
	if len(out) < NumReadTasks {
		panic(fmt.Sprintf("birdext: only %d read tasks generated", len(out)))
	}
	return out[:NumReadTasks]
}

func buildWriteTasks() []*task.Task {
	var out []*task.Task
	counts := map[task.Kind]int{}
	add := func(t *task.Task) { out = append(out, t) }
	next := func(k task.Kind) int { counts[k]++; return counts[k] }

	// --- 50 INSERT tasks ---
	// Single-row sales inserts.
	for i := 0; i < 15; i++ {
		oid := 5000 + i
		item := 1 + (i*7)%nItems
		qty := 1 + i%4
		amount := float64(qty) * 19.5
		add(newWriteTask(next(task.Insert), task.Insert,
			fmt.Sprintf("Record a new order %d: item %d, quantity %d, amount %.2f, on day 30.", oid, item, qty, amount),
			[]string{fmt.Sprintf("INSERT INTO sales (order_id, item_id, qty, amount, day) VALUES (%d, %d, %d, %.2f, 30)", oid, item, qty, amount)},
			[]string{"sales"},
			fmt.Sprintf("SELECT order_id, item_id, qty, amount FROM sales WHERE order_id = %d", oid)))
	}
	// Composite: new item + its first sale (transactional).
	for i := 0; i < 10; i++ {
		iid := 500 + i
		oid := 6000 + i
		cat := categories[i%len(categories)]
		add(newWriteTask(next(task.Insert), task.Insert,
			fmt.Sprintf("Add new product 'Launch %02d' (category %s, price 59.90) and record its first order %d of 2 units for 119.80 on day 30. Both records must be stored atomically.", i, cat, oid),
			[]string{
				fmt.Sprintf("INSERT INTO items (id, name, category, price) VALUES (%d, 'Launch %02d', '%s', 59.90)", iid, i, cat),
				fmt.Sprintf("INSERT INTO sales (order_id, item_id, qty, amount, day) VALUES (%d, %d, 2, 119.80, 30)", oid, iid),
			},
			[]string{"items", "sales"},
			fmt.Sprintf("SELECT COUNT(*) FROM sales WHERE order_id = %d AND item_id = %d", oid, iid)))
	}
	// Refund inserts.
	for i := 0; i < 10; i++ {
		rid := 500 + i
		oid := 1001 + i*3
		add(newWriteTask(next(task.Insert), task.Insert,
			fmt.Sprintf("Log refund %d of 25.50 against order %d on day 30, reason 'damaged'.", rid, oid),
			[]string{fmt.Sprintf("INSERT INTO refunds (refund_id, order_id, amount, day, reason) VALUES (%d, %d, 25.50, 30, 'damaged')", rid, oid)},
			[]string{"refunds"},
			fmt.Sprintf("SELECT refund_id, amount FROM refunds WHERE refund_id = %d", rid)))
	}
	// New schools.
	for i := 0; i < 5; i++ {
		sid := 200 + i
		county := counties[i%len(counties)]
		add(newWriteTask(next(task.Insert), task.Insert,
			fmt.Sprintf("Register new school 'New Campus %d' in %s county with 350 students, non-charter, free meal rate 0.4.", sid, county),
			[]string{fmt.Sprintf("INSERT INTO schools (id, name, county, charter, enrollment, free_meal_rate) VALUES (%d, 'New Campus %d', '%s', 0, 350, 0.4)", sid, sid, county)},
			[]string{"schools"},
			fmt.Sprintf("SELECT name, county, enrollment FROM schools WHERE id = %d", sid)))
	}
	// Composite: new client + account (transactional).
	for i := 0; i < 10; i++ {
		cid := 300 + i
		aid := 400 + i
		d := districts[i%len(districts)]
		add(newWriteTask(next(task.Insert), task.Insert,
			fmt.Sprintf("Onboard client 'Newco %02d' in the %s district with an opening account of 5000, atomically.", i, d),
			[]string{
				fmt.Sprintf("INSERT INTO clients (id, name, district, segment) VALUES (%d, 'Newco %02d', '%s', 'retail')", cid, i, d),
				fmt.Sprintf("INSERT INTO accounts (id, client_id, balance, status, opened_year) VALUES (%d, %d, 5000, 'active', 2024)", aid, cid),
			},
			[]string{"clients", "accounts"},
			fmt.Sprintf("SELECT COUNT(*) FROM accounts WHERE id = %d AND client_id = %d", aid, cid)))
	}

	// --- 50 UPDATE tasks ---
	for i, vp := range valuePairs[:5] {
		pct := 5 + i
		add(withValue(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Raise prices of %s by %d percent.", vp.nl, pct),
			[]string{fmt.Sprintf("UPDATE items SET price = price * 1.0%d WHERE category = '%s'", pct, vp.stored)},
			[]string{"items"},
			fmt.Sprintf("SELECT ROUND(SUM(price), 2) FROM items WHERE category = '%s'", vp.stored)), vp))
		add(withValue(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Apply a 10 percent discount to all %s items.", vp.nl),
			[]string{fmt.Sprintf("UPDATE items SET price = price * 0.9 WHERE category = '%s'", vp.stored)},
			[]string{"items"},
			fmt.Sprintf("SELECT ROUND(SUM(price), 2) FROM items WHERE category = '%s'", vp.stored)), vp))
	}
	for _, bal := range []int{1000, 2000, 3000, 4000, 5000} {
		add(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Reactivate frozen accounts holding less than %d.", bal),
			[]string{fmt.Sprintf("UPDATE accounts SET status = 'active' WHERE status = 'frozen' AND balance < %d", bal)},
			[]string{"accounts"},
			"SELECT status, COUNT(*) FROM accounts GROUP BY status ORDER BY status"))
	}
	for i, c := range counties {
		bump := 10 * (i + 1)
		add(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Increase recorded enrollment by %d for every school in %s county.", bump, c),
			[]string{fmt.Sprintf("UPDATE schools SET enrollment = enrollment + %d WHERE county = '%s'", bump, c)},
			[]string{"schools"},
			fmt.Sprintf("SELECT SUM(enrollment) FROM schools WHERE county = '%s'", c)))
	}
	for _, amt := range []int{10000, 20000, 30000, 40000, 50000} {
		add(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Approve all pending loans below %d.", amt),
			[]string{fmt.Sprintf("UPDATE loans SET status = 'approved' WHERE status = 'pending' AND amount < %d", amt)},
			[]string{"loans"},
			"SELECT status, COUNT(*) FROM loans GROUP BY status ORDER BY status"))
	}
	for _, y := range []int{2021, 2022, 2023} {
		add(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Correct the %d records: add 5 test takers to every score row of that year.", y),
			[]string{fmt.Sprintf("UPDATE scores SET test_takers = test_takers + 5 WHERE year = %d", y)},
			[]string{"scores"},
			fmt.Sprintf("SELECT SUM(test_takers) FROM scores WHERE year = %d", y)))
	}
	for _, d := range []int{2, 4, 6, 8, 10} {
		add(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Apply a 5 percent service credit to refunds on day %d.", d),
			[]string{fmt.Sprintf("UPDATE refunds SET amount = amount * 1.05 WHERE day = %d", d)},
			[]string{"refunds"},
			"SELECT ROUND(SUM(amount), 2) FROM refunds"))
	}
	for _, r := range []int{3, 4, 5, 6, 7} {
		add(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Round up: set free meal rate to 0.%d for schools currently below 0.%d.", r, r),
			[]string{fmt.Sprintf("UPDATE schools SET free_meal_rate = 0.%d WHERE free_meal_rate < 0.%d", r, r)},
			[]string{"schools"},
			"SELECT ROUND(SUM(free_meal_rate), 3) FROM schools"))
	}
	// Composite updates: move sales between days + log-style touch (transactional).
	for i := 0; i < 12; i++ {
		fromDay := 1 + i
		add(newWriteTask(next(task.Update), task.Update,
			fmt.Sprintf("Shift all day-%d orders to day %d and mark their amounts up 1 percent, atomically.", fromDay, fromDay+1),
			[]string{
				fmt.Sprintf("UPDATE sales SET amount = amount * 1.01 WHERE day = %d", fromDay),
				fmt.Sprintf("UPDATE sales SET day = %d WHERE day = %d", fromDay+1, fromDay),
			},
			[]string{"sales"},
			fmt.Sprintf("SELECT COUNT(*) FROM sales WHERE day = %d", fromDay)))
	}

	// --- 50 DELETE tasks ---
	for _, d := range []int{3, 5, 7, 9, 11, 13, 15, 17, 19, 21} {
		add(newWriteTask(next(task.Delete), task.Delete,
			fmt.Sprintf("Purge refunds recorded before day %d.", d),
			[]string{fmt.Sprintf("DELETE FROM refunds WHERE day < %d", d)},
			[]string{"refunds"},
			"SELECT COUNT(*) FROM refunds"))
	}
	for _, d := range []int{20, 22, 24, 26, 28} {
		add(newWriteTask(next(task.Delete), task.Delete,
			fmt.Sprintf("Remove orders placed after day %d.", d),
			[]string{fmt.Sprintf("DELETE FROM sales WHERE day > %d", d)},
			[]string{"sales"},
			"SELECT COUNT(*) FROM sales"))
	}
	for _, sid := range []int{10, 20, 30, 40, 50} {
		add(newWriteTask(next(task.Delete), task.Delete,
			fmt.Sprintf("Drop 2021 score records for schools with id up to %d.", sid),
			[]string{fmt.Sprintf("DELETE FROM scores WHERE year = 2021 AND school_id <= %d", sid)},
			[]string{"scores"},
			"SELECT COUNT(*) FROM scores WHERE year = 2021"))
	}
	add(withValue(newWriteTask(next(task.Delete), task.Delete,
		"Clear out all loans in default.",
		[]string{"DELETE FROM loans WHERE status = 'defaulted'"},
		[]string{"loans"},
		"SELECT COUNT(*) FROM loans"), valuePairs[8]))
	for _, amt := range []int{80000, 85000, 90000, 95000} {
		add(newWriteTask(next(task.Delete), task.Delete,
			fmt.Sprintf("Delete defaulted loans above %d.", amt),
			[]string{fmt.Sprintf("DELETE FROM loans WHERE status = 'defaulted' AND amount > %d", amt)},
			[]string{"loans"},
			"SELECT COUNT(*) FROM loans"))
	}
	for _, q := range []int{4, 5} {
		add(newWriteTask(next(task.Delete), task.Delete,
			fmt.Sprintf("Delete bulk orders with quantity of %d or more placed after day 25.", q),
			[]string{fmt.Sprintf("DELETE FROM sales WHERE qty >= %d AND day > 25", q)},
			[]string{"sales"},
			"SELECT COUNT(*) FROM sales"))
	}
	add(newWriteTask(next(task.Delete), task.Delete,
		"Remove items that have never been sold.",
		[]string{"DELETE FROM items WHERE id NOT IN (SELECT item_id FROM sales)"},
		[]string{"items", "sales"},
		"SELECT COUNT(*) FROM items"))
	add(newWriteTask(next(task.Delete), task.Delete,
		"Close out: delete closed accounts that have no loans.",
		[]string{"DELETE FROM accounts WHERE status = 'closed' AND id NOT IN (SELECT account_id FROM loans)"},
		[]string{"accounts", "loans"},
		"SELECT COUNT(*) FROM accounts"))
	// Composite deletes: archive day + its refunds (transactional).
	for i := 0; i < 21; i++ {
		day := 1 + i
		add(newWriteTask(next(task.Delete), task.Delete,
			fmt.Sprintf("Archive day %d: delete that day's refunds and its orders together, atomically.", day),
			[]string{
				fmt.Sprintf("DELETE FROM refunds WHERE day = %d", day),
				fmt.Sprintf("DELETE FROM sales WHERE day = %d", day),
			},
			[]string{"refunds", "sales"},
			fmt.Sprintf("SELECT (SELECT COUNT(*) FROM refunds WHERE day = %d) + (SELECT COUNT(*) FROM sales WHERE day = %d)", day, day)))
	}

	if len(out) != NumWriteTasks {
		panic(fmt.Sprintf("birdext: generated %d write tasks, want %d", len(out), NumWriteTasks))
	}
	return out
}
