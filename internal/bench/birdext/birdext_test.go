package birdext

import (
	"strings"
	"testing"

	"bridgescope/internal/sqldb"
	"bridgescope/internal/task"
)

func TestSuiteShape(t *testing.T) {
	s := GenerateSuite(42)
	if len(s.ReadTasks) != NumReadTasks {
		t.Fatalf("read tasks = %d, want %d", len(s.ReadTasks), NumReadTasks)
	}
	if len(s.WriteTasks) != NumWriteTasks {
		t.Fatalf("write tasks = %d, want %d", len(s.WriteTasks), NumWriteTasks)
	}
	counts := map[task.Kind]int{}
	for _, wt := range s.WriteTasks {
		counts[wt.Kind]++
	}
	for _, k := range []task.Kind{task.Insert, task.Update, task.Delete} {
		if counts[k] != 50 {
			t.Fatalf("%s tasks = %d, want 50", k, counts[k])
		}
	}
}

func TestAllGoldSQLExecutes(t *testing.T) {
	s := GenerateSuite(42)
	for _, tk := range s.Tasks {
		e := s.BuildEngine()
		sess := e.NewSession("root")
		for _, q := range tk.GoldSQL {
			if _, err := sess.Exec(q); err != nil {
				t.Fatalf("task %s gold SQL %q failed: %v", tk.ID, q, err)
			}
		}
		if tk.VerifySQL == "" {
			t.Fatalf("task %s has no verification query", tk.ID)
		}
		if _, err := sess.Exec(tk.VerifySQL); err != nil {
			t.Fatalf("task %s verify SQL failed: %v", tk.ID, err)
		}
		if tk.Expected == "" {
			t.Fatalf("task %s has no expected result", tk.ID)
		}
	}
}

func TestCorruptVariantsFail(t *testing.T) {
	s := GenerateSuite(42)
	e := s.BuildEngine()
	sess := e.NewSession("root")
	failures := 0
	for _, tk := range s.ReadTasks {
		if len(tk.CorruptIdentSQL) == 0 {
			t.Fatalf("task %s lacks corrupt variant", tk.ID)
		}
		if tk.CorruptIdentSQL[0] == tk.GoldSQL[0] {
			t.Fatalf("task %s corrupt variant equals gold: %s", tk.ID, tk.GoldSQL[0])
		}
		if _, err := sess.Exec(tk.CorruptIdentSQL[0]); err != nil {
			failures++
		}
	}
	// Every corrupt identifier must actually raise an engine error.
	if failures != len(s.ReadTasks) {
		t.Fatalf("only %d/%d corrupt variants error out", failures, len(s.ReadTasks))
	}
}

func TestWrongValueVariantsRunButDiffer(t *testing.T) {
	s := GenerateSuite(42)
	e := s.BuildEngine()
	sess := e.NewSession("root")
	for _, tk := range s.ReadTasks {
		if !tk.NeedsValue {
			continue
		}
		if len(tk.WrongValueSQL) == 0 {
			t.Fatalf("value task %s lacks wrong-value variant", tk.ID)
		}
		r, err := sess.Exec(tk.WrongValueSQL[0])
		if err != nil {
			t.Fatalf("task %s wrong-value SQL must execute, got %v (%s)", tk.ID, err, tk.WrongValueSQL[0])
		}
		if r.Text() == tk.Expected {
			t.Fatalf("task %s wrong-value result equals gold result", tk.ID)
		}
	}
}

func TestSemanticVariantsDiffer(t *testing.T) {
	s := GenerateSuite(42)
	e := s.BuildEngine()
	sess := e.NewSession("root")
	n := 0
	for _, tk := range s.ReadTasks {
		if tk.SemanticWrongSQL == nil {
			continue
		}
		n++
		if _, err := sess.Exec(tk.SemanticWrongSQL[0]); err != nil {
			t.Fatalf("task %s semantic variant must execute, got %v (%s)", tk.ID, err, tk.SemanticWrongSQL[0])
		}
	}
	if n < 50 {
		t.Fatalf("too few semantic variants: %d", n)
	}
}

func TestRolesAndFeasibility(t *testing.T) {
	e := BuildEngine(42)
	admin := SetupRole(e, RoleAdmin)
	normal := SetupRole(e, RoleNormal)
	other := SetupRole(e, RoleIrrelevant)
	g := e.Grants()

	if !g.Has(admin, sqldb.ActionInsert, "sales") || !g.Has(admin, sqldb.ActionSelect, "schools") {
		t.Fatal("admin must hold full privileges")
	}
	if !g.Has(normal, sqldb.ActionSelect, "sales") || g.Has(normal, sqldb.ActionInsert, "sales") {
		t.Fatal("normal user must be read-only")
	}
	if g.Has(other, sqldb.ActionSelect, "sales") || !g.Has(other, sqldb.ActionSelect, "audit_log") {
		t.Fatal("irrelevant user privileges wrong")
	}

	if !Feasible(RoleAdmin, true) || !Feasible(RoleNormal, false) {
		t.Fatal("feasibility matrix wrong for permitted cases")
	}
	if Feasible(RoleNormal, true) || Feasible(RoleIrrelevant, false) {
		t.Fatal("feasibility matrix wrong for denied cases")
	}
}

func TestValueTasksKeyMatchesStored(t *testing.T) {
	// Each value task's wrong value must be absent from the stored domain,
	// so the wrong-value query returns a different (usually empty) result.
	s := GenerateSuite(42)
	e := s.BuildEngine()
	for _, tk := range s.Tasks {
		if !tk.NeedsValue {
			continue
		}
		vals, err := e.ColumnValues(tk.ValueTable, tk.ValueColumn, 0)
		if err != nil {
			t.Fatalf("task %s: %v", tk.ID, err)
		}
		for _, v := range vals {
			if strings.EqualFold(v.S, tk.ValueKey) {
				t.Fatalf("task %s wrong value %q actually exists in %s.%s",
					tk.ID, tk.ValueKey, tk.ValueTable, tk.ValueColumn)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := BuildEngine(7)
	b := BuildEngine(7)
	sa := a.NewSession("root")
	sb := b.NewSession("root")
	for _, q := range []string{
		"SELECT COUNT(*), SUM(enrollment) FROM schools",
		"SELECT SUM(amount) FROM sales",
		"SELECT COUNT(*) FROM loans WHERE status = 'defaulted'",
	} {
		ra := sa.MustExec(q).Text()
		rb := sb.MustExec(q).Text()
		if ra != rb {
			t.Fatalf("nondeterministic build for %q: %s vs %s", q, ra, rb)
		}
	}
}
