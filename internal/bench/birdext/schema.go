// Package birdext synthesizes the BIRD-Ext benchmark (paper §3.1): a
// BIRD-style multi-table database with 150 read tasks plus 150 write tasks
// (50 each INSERT/UPDATE/DELETE), adding operation semantics, user
// privileges, and transaction management on top of NL2SQL-style queries.
//
// The original BIRD data is not redistributable, so schemas and rows are
// generated deterministically from a seed. Each task carries gold SQL plus
// the hallucination variants the LLM simulator draws from, and a
// verification query for scoring; see internal/task.
package birdext

import (
	"fmt"
	"math/rand"
	"strings"

	"bridgescope/internal/sqldb"
)

// Counties, categories and the other text domains deliberately include
// values that differ from their natural-language phrasing, so that
// value-dependent predicates genuinely require exemplar retrieval.
var (
	counties   = []string{"Alameda", "Fresno", "Los Angeles", "Orange", "Sacramento"}
	districts  = []string{"north", "south", "east", "west"}
	segments   = []string{"retail", "corporate", "premium"}
	acctStatus = []string{"active", "frozen", "closed"}
	loanStatus = []string{"approved", "pending", "defaulted"}
	categories = []string{"women", "men", "kids", "shoes", "accessories"}
	reasons    = []string{"damaged", "wrong size", "changed mind"}
)

// Row counts for the generated data.
const (
	nSchools  = 60
	nClients  = 80
	nAccounts = 120
	nLoans    = 90
	nItems    = 50
	nSales    = 200
	nRefunds  = 60
)

// BuildEngine creates a fresh, fully populated benchmark database. Write
// tasks mutate state, so experiments call this once per run.
func BuildEngine(seed int64) *sqldb.Engine {
	e := sqldb.NewEngine("bird_ext")
	s := e.NewSession("root")
	rng := rand.New(rand.NewSource(seed))

	ddl := []string{
		`CREATE TABLE schools (
			id INT PRIMARY KEY, name TEXT NOT NULL, county TEXT,
			charter INT, enrollment INT, free_meal_rate REAL)`,
		`CREATE TABLE scores (
			id INT PRIMARY KEY, school_id INT REFERENCES schools(id),
			year INT, avg_reading REAL, avg_math REAL, test_takers INT)`,
		`CREATE TABLE clients (
			id INT PRIMARY KEY, name TEXT NOT NULL, district TEXT, segment TEXT)`,
		`CREATE TABLE accounts (
			id INT PRIMARY KEY, client_id INT REFERENCES clients(id),
			balance REAL, status TEXT, opened_year INT)`,
		`CREATE TABLE loans (
			id INT PRIMARY KEY, account_id INT REFERENCES accounts(id),
			amount REAL, duration INT, status TEXT)`,
		`CREATE TABLE items (
			id INT PRIMARY KEY, name TEXT NOT NULL, category TEXT, price REAL)`,
		`CREATE TABLE sales (
			order_id INT PRIMARY KEY, item_id INT REFERENCES items(id),
			qty INT NOT NULL, amount REAL, day INT)`,
		`CREATE TABLE refunds (
			refund_id INT PRIMARY KEY, order_id INT, amount REAL, day INT, reason TEXT)`,
		// Tables for the "irrelevant user" role: no task touches them.
		`CREATE TABLE audit_log (id INT PRIMARY KEY, actor TEXT, action TEXT, day INT)`,
		`CREATE TABLE notes (id INT PRIMARY KEY, body TEXT, day INT)`,
	}
	for _, d := range ddl {
		s.MustExec(d)
	}

	// schools
	var rows []string
	for i := 1; i <= nSchools; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'School %03d', '%s', %d, %d, %.3f)",
			i, i, counties[rng.Intn(len(counties))], rng.Intn(2),
			200+rng.Intn(2800), 0.05+rng.Float64()*0.8))
	}
	s.MustExec("INSERT INTO schools (id, name, county, charter, enrollment, free_meal_rate) VALUES " + strings.Join(rows, ", "))

	// scores: three years per school.
	rows = rows[:0]
	id := 0
	for sc := 1; sc <= nSchools; sc++ {
		for _, year := range []int{2021, 2022, 2023} {
			id++
			rows = append(rows, fmt.Sprintf("(%d, %d, %d, %.1f, %.1f, %d)",
				id, sc, year, 420+rng.Float64()*180, 400+rng.Float64()*200, 20+rng.Intn(400)))
		}
	}
	s.MustExec("INSERT INTO scores (id, school_id, year, avg_reading, avg_math, test_takers) VALUES " + strings.Join(rows, ", "))

	// clients
	rows = rows[:0]
	for i := 1; i <= nClients; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Client %03d', '%s', '%s')",
			i, i, districts[rng.Intn(len(districts))], segments[rng.Intn(len(segments))]))
	}
	s.MustExec("INSERT INTO clients (id, name, district, segment) VALUES " + strings.Join(rows, ", "))

	// accounts
	rows = rows[:0]
	for i := 1; i <= nAccounts; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %.2f, '%s', %d)",
			i, 1+rng.Intn(nClients), rng.Float64()*50000, acctStatus[rng.Intn(len(acctStatus))], 2015+rng.Intn(9)))
	}
	s.MustExec("INSERT INTO accounts (id, client_id, balance, status, opened_year) VALUES " + strings.Join(rows, ", "))

	// loans
	rows = rows[:0]
	for i := 1; i <= nLoans; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %.2f, %d, '%s')",
			i, 1+rng.Intn(nAccounts), 1000+rng.Float64()*99000, 12*(1+rng.Intn(5)), loanStatus[rng.Intn(len(loanStatus))]))
	}
	s.MustExec("INSERT INTO loans (id, account_id, amount, duration, status) VALUES " + strings.Join(rows, ", "))

	// items
	rows = rows[:0]
	for i := 1; i <= nItems; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'Item %03d', '%s', %.2f)",
			i, i, categories[rng.Intn(len(categories))], 3+rng.Float64()*120))
	}
	s.MustExec("INSERT INTO items (id, name, category, price) VALUES " + strings.Join(rows, ", "))

	// sales
	rows = rows[:0]
	for i := 1; i <= nSales; i++ {
		qty := 1 + rng.Intn(5)
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %.2f, %d)",
			1000+i, 1+rng.Intn(nItems), qty, float64(qty)*(3+rng.Float64()*120), 1+rng.Intn(30)))
	}
	s.MustExec("INSERT INTO sales (order_id, item_id, qty, amount, day) VALUES " + strings.Join(rows, ", "))

	// refunds
	rows = rows[:0]
	for i := 1; i <= nRefunds; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %.2f, %d, '%s')",
			i, 1000+1+rng.Intn(nSales), rng.Float64()*150, 1+rng.Intn(30), reasons[rng.Intn(len(reasons))]))
	}
	s.MustExec("INSERT INTO refunds (refund_id, order_id, amount, day, reason) VALUES " + strings.Join(rows, ", "))

	// audit_log / notes (irrelevant-role tables)
	s.MustExec("INSERT INTO audit_log (id, actor, action, day) VALUES (1, 'system', 'startup', 1), (2, 'admin', 'grant', 2)")
	s.MustExec("INSERT INTO notes (id, body, day) VALUES (1, 'quarterly review pending', 3), (2, 'backup verified', 4)")

	return e
}

// TaskTables lists every table the benchmark's tasks may touch; the
// irrelevant role is granted privileges only outside this set.
var TaskTables = []string{"schools", "scores", "clients", "accounts", "loans", "items", "sales", "refunds"}

// Role is one of the simulated production roles of §3.3.
type Role string

// The three roles.
const (
	RoleAdmin      Role = "admin"      // full query + manipulation privileges
	RoleNormal     Role = "normal"     // read-only
	RoleIrrelevant Role = "irrelevant" // privileges only on task-unrelated tables
)

// Roles lists all roles.
var Roles = []Role{RoleAdmin, RoleNormal, RoleIrrelevant}

// SetupRole grants the role's privileges on a fresh engine and returns the
// database user name to connect as.
func SetupRole(e *sqldb.Engine, r Role) string {
	g := e.Grants()
	switch r {
	case RoleAdmin:
		g.GrantAll("bird_admin", "*")
		return "bird_admin"
	case RoleNormal:
		g.Grant("bird_normal", sqldb.ActionSelect, "*")
		return "bird_normal"
	case RoleIrrelevant:
		g.GrantAll("bird_other", "audit_log")
		g.GrantAll("bird_other", "notes")
		return "bird_other"
	}
	panic(fmt.Sprintf("unknown role %q", r))
}

// Feasible reports whether a role can perform a task kind on the benchmark
// tables.
func Feasible(r Role, write bool) bool {
	switch r {
	case RoleAdmin:
		return true
	case RoleNormal:
		return !write
	default:
		return false
	}
}
