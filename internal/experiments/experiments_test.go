package experiments

import (
	"testing"

	"bridgescope/internal/bench/birdext"
)

// The integration tests below run sampled versions of every experiment and
// assert the paper's qualitative findings hold: they are the "shape checks"
// EXPERIMENTS.md reports against.

func testCfg() Config { return Config{Seed: 42, Sample: 25} }

func find5a(res []Fig5aResult, model string, kind ToolkitKind) Fig5aResult {
	for _, r := range res {
		if r.Model == model && r.Toolkit == kind {
			return r
		}
	}
	return Fig5aResult{}
}

func TestFig5aShape(t *testing.T) {
	res, err := Fig5a(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("want 4 result rows, got %d", len(res))
	}
	for _, model := range []string{"gpt-4o-sim", "claude-4-sim"} {
		bs := find5a(res, model, BridgeScope)
		minus := find5a(res, model, PGMCPMinus)
		if bs.AvgLLMCalls >= minus.AvgLLMCalls {
			t.Fatalf("%s: BridgeScope (%.2f) must use fewer calls than PG-MCP- (%.2f)",
				model, bs.AvgLLMCalls, minus.AvgLLMCalls)
		}
		// The paper reports >30% reduction and near-best-achievable.
		if reduction := 1 - bs.AvgLLMCalls/minus.AvgLLMCalls; reduction < 0.15 {
			t.Fatalf("%s: reduction %.2f too small", model, reduction)
		}
		if bs.AvgLLMCalls > 4.5 {
			t.Fatalf("%s: BridgeScope calls %.2f too far from best-achievable 3", model, bs.AvgLLMCalls)
		}
	}
}

func TestFig5bShape(t *testing.T) {
	res, err := Fig5b(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Accuracy < 0.6 {
			t.Fatalf("%s/%s accuracy %.2f unreasonably low", r.Model, r.Toolkit, r.Accuracy)
		}
	}
	// Comparable accuracy: the gap between toolkits stays small.
	for _, model := range []string{"gpt-4o-sim", "claude-4-sim"} {
		var bs, pg float64
		for _, r := range res {
			if r.Model != model {
				continue
			}
			if r.Toolkit == BridgeScope {
				bs = r.Accuracy
			} else {
				pg = r.Accuracy
			}
		}
		diff := bs - pg
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.25 {
			t.Fatalf("%s: accuracy gap %.2f too large (bs %.2f, pg %.2f)", model, diff, bs, pg)
		}
	}
}

func TestFig5cShape(t *testing.T) {
	res, err := Fig5c(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		switch r.Toolkit {
		case BridgeScope:
			if r.TriggerRatio < 0.9 {
				t.Fatalf("%s BridgeScope trigger ratio %.2f, want ~1", r.Model, r.TriggerRatio)
			}
		case PGMCP:
			if r.TriggerRatio > 0.4 {
				t.Fatalf("%s PG-MCP trigger ratio %.2f, want rare", r.Model, r.TriggerRatio)
			}
		}
	}
}

func TestFig6Table1Shape(t *testing.T) {
	res, err := Fig6Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]CellResult{}
	for _, r := range res {
		byKey[r.Model+"|"+string(r.Toolkit)+"|"+r.Cell.String()] = r
	}
	for _, model := range []string{"gpt-4o-sim", "claude-4-sim"} {
		// Feasible cells: both toolkits comparable.
		for _, cell := range []string{"(A, read)", "(A, write)"} {
			bs := byKey[model+"|BridgeScope|"+cell]
			pg := byKey[model+"|PG-MCP|"+cell]
			diff := bs.AvgLLMCalls - pg.AvgLLMCalls
			if diff < 0 {
				diff = -diff
			}
			if diff > 1.0 {
				t.Fatalf("%s %s: feasible calls should be comparable (bs %.2f, pg %.2f)",
					model, cell, bs.AvgLLMCalls, pg.AvgLLMCalls)
			}
		}
		// Infeasible cells: BridgeScope strictly cheaper in calls and tokens.
		for _, cell := range []string{"(N, write)", "(I, read)", "(I, write)"} {
			bs := byKey[model+"|BridgeScope|"+cell]
			pg := byKey[model+"|PG-MCP|"+cell]
			if bs.AvgLLMCalls >= pg.AvgLLMCalls {
				t.Fatalf("%s %s: BridgeScope calls %.2f !< PG-MCP %.2f",
					model, cell, bs.AvgLLMCalls, pg.AvgLLMCalls)
			}
			if bs.AvgTokens >= pg.AvgTokens {
				t.Fatalf("%s %s: BridgeScope tokens %.0f !< PG-MCP %.0f",
					model, cell, bs.AvgTokens, pg.AvgTokens)
			}
			// Paper: 23–71% fewer reasoning steps; check at least 20%.
			if red := 1 - bs.AvgLLMCalls/pg.AvgLLMCalls; red < 0.2 {
				t.Fatalf("%s %s: call reduction %.2f below paper's range", model, cell, red)
			}
		}
	}
	// Claude-4's early aborts approach the best-achievable bound.
	claudeNW := byKey["claude-4-sim|BridgeScope|(N, write)"]
	if claudeNW.AvgLLMCalls > 1.6 {
		t.Fatalf("claude (N, write) calls %.2f, want near best-achievable 1", claudeNW.AvgLLMCalls)
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := testCfg()
	cfg.Sample = 6 // 5 tasks across levels
	res, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Table2Result{}
	for _, r := range res {
		byKey[r.Model+"|"+string(r.Toolkit)] = r
	}
	for _, model := range []string{"gpt-4o-sim", "claude-4-sim"} {
		bs := byKey[model+"|BridgeScope"]
		pg := byKey[model+"|PG-MCP"]
		small := byKey[model+"|PG-MCP-S"]
		if bs.CompletionRate != 1.0 {
			t.Fatalf("%s BridgeScope completion %.2f, want 1.0", model, bs.CompletionRate)
		}
		if pg.CompletionRate != 0.0 {
			t.Fatalf("%s PG-MCP completion %.2f, want 0.0 (context exhaustion)", model, pg.CompletionRate)
		}
		if small.CompletionRate != 1.0 {
			t.Fatalf("%s PG-MCP-S completion %.2f, want 1.0", model, small.CompletionRate)
		}
		if bs.AvgLLMCalls >= small.AvgLLMCalls {
			t.Fatalf("%s: BridgeScope calls %.2f !< PG-MCP-S %.2f", model, bs.AvgLLMCalls, small.AvgLLMCalls)
		}
		if bs.AvgTokens >= small.AvgTokens {
			t.Fatalf("%s: BridgeScope tokens %.0f !< PG-MCP-S %.0f", model, bs.AvgTokens, small.AvgTokens)
		}
		if bs.AvgLLMCalls > 4.1 {
			t.Fatalf("%s: BridgeScope calls %.2f should be near the 3-call minimum", model, bs.AvgLLMCalls)
		}
	}
}

func TestIdealizedTransferShape(t *testing.T) {
	cfg := testCfg()
	cfg.Sample = 10
	res, err := IdealizedTransfer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdealizedAgentTokens < 1_000_000 {
		t.Fatalf("idealized transfer %d tokens, expected >1M for the full table", res.IdealizedAgentTokens)
	}
	// "More than two orders of magnitude" (paper: 13,449.7 vs >= 1.5M).
	if res.Ratio < 100 {
		t.Fatalf("ratio %.0f, want >= 100x", res.Ratio)
	}
}

func TestAblationsShape(t *testing.T) {
	cfg := testCfg()
	cfg.Sample = 40
	res, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("want 4 ablations, got %d", len(res))
	}
	for _, r := range res {
		switch r.Name {
		case "privilege annotations OFF":
			if r.Value <= r.Baseline {
				t.Fatalf("removing annotations should cost calls: %.2f !> %.2f", r.Value, r.Baseline)
			}
		case "hierarchical schema (n=5)":
			if r.Value >= r.Baseline {
				t.Fatalf("hierarchical schema should be smaller: %.0f !< %.0f", r.Value, r.Baseline)
			}
		case "get_value top-k vs full enumeration":
			if r.Value*10 > r.Baseline {
				t.Fatalf("top-k should be far below enumeration: %.0f vs %.0f", r.Value, r.Baseline)
			}
		}
	}
}

func TestRunnerRejectsWrongToolkits(t *testing.T) {
	suite := birdext.GenerateSuite(42)
	model := Models(42)[0]
	if _, err := runBirdTask(suite, birdext.RoleAdmin, PGMCPSmall, model, suite.ReadTasks[0]); err == nil {
		t.Fatal("PG-MCP-S must be rejected for BIRD-Ext")
	}
	if _, err := runNL2MLTask(testCfg(), PGMCPMinus, model, nil); err == nil {
		t.Fatal("PG-MCP- must be rejected for NL2ML")
	}
}
