// Package experiments implements one runner per table and figure in the
// paper's evaluation (§3), shared by cmd/benchrunner and the repository's
// benchmark suite. Every runner returns structured results so callers can
// render them as the paper's tables or assert on their shapes in tests.
package experiments

import (
	"sync"

	"bridgescope/internal/bench/nl2ml"
	"bridgescope/internal/llm"
	"bridgescope/internal/sqldb"
)

// ToolkitKind selects which toolkit an agent is equipped with.
type ToolkitKind string

// The evaluated toolkits (paper §3.1).
const (
	BridgeScope ToolkitKind = "BridgeScope"
	PGMCP       ToolkitKind = "PG-MCP"
	PGMCPMinus  ToolkitKind = "PG-MCP-"
	PGMCPSmall  ToolkitKind = "PG-MCP-S"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives benchmark generation and every stochastic model choice.
	Seed int64
	// Sample takes every Nth task (1 or 0 = all tasks). Tests use larger
	// strides for speed; benchrunner uses 1.
	Sample int
	// HousingRows overrides the NL2ML full-table size (0 = the paper's
	// 20,000). The reduced PG-MCP-S table always has 20 rows.
	HousingRows int
}

func (c Config) sample() int {
	if c.Sample <= 1 {
		return 1
	}
	return c.Sample
}

func (c Config) housingRows() int {
	if c.HousingRows <= 0 {
		return nl2ml.FullRows
	}
	return c.HousingRows
}

// Models returns the two simulated models of §3.1 for this seed.
func Models(seed int64) []llm.Model {
	return []llm.Model{
		llm.NewSim(llm.GPT4o(), seed),
		llm.NewSim(llm.Claude4(), seed),
	}
}

// housing engines are immutable across runs (NL2ML tasks are read-only), so
// they are cached per (seed, rows).
var (
	houseMu    sync.Mutex
	houseCache = map[[2]int64]*sqldb.Engine{}
)

func housingEngine(seed int64, rows int) *sqldb.Engine {
	houseMu.Lock()
	defer houseMu.Unlock()
	key := [2]int64{seed, int64(rows)}
	if e, ok := houseCache[key]; ok {
		return e
	}
	e := nl2ml.BuildHouseEngine(seed, rows)
	houseCache[key] = e
	return e
}
