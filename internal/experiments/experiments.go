package experiments

import (
	"fmt"

	"bridgescope/internal/bench/birdext"
	"bridgescope/internal/bench/nl2ml"
	"bridgescope/internal/tokens"
)

// BestAchievableCalls is the paper's lower bound for feasible tasks: one
// LLM call each for context retrieval, SQL execution, and result
// finalization (§3.2).
const BestAchievableCalls = 3.0

// Fig5aResult is one bar of Figure 5(a): average LLM calls per task for a
// (model, toolkit) pair, with the best-achievable reference.
type Fig5aResult struct {
	Model          string
	Toolkit        ToolkitKind
	AvgLLMCalls    float64
	BestAchievable float64
	Tasks          int
}

// Fig5a compares BridgeScope against PG-MCP⁻ (execute_sql only) on
// context retrieval, over the full BIRD-Ext suite under the administrator
// role (every task feasible).
func Fig5a(cfg Config) ([]Fig5aResult, error) {
	suite := birdext.GenerateSuite(cfg.Seed)
	tasks := sampleTasks(suite.Tasks, cfg.sample())
	var out []Fig5aResult
	for _, model := range Models(cfg.Seed) {
		for _, kind := range []ToolkitKind{BridgeScope, PGMCPMinus} {
			var calls []float64
			for _, t := range tasks {
				o, err := runBirdTask(suite, birdext.RoleAdmin, kind, model, t)
				if err != nil {
					return nil, err
				}
				calls = append(calls, float64(o.Metrics.LLMCalls))
			}
			out = append(out, Fig5aResult{
				Model: model.Name(), Toolkit: kind,
				AvgLLMCalls:    mean(calls),
				BestAchievable: BestAchievableCalls,
				Tasks:          len(tasks),
			})
		}
	}
	return out, nil
}

// Fig5bResult is one bar of Figure 5(b): task accuracy.
type Fig5bResult struct {
	Model    string
	Toolkit  ToolkitKind
	Accuracy float64
	Tasks    int
}

// Fig5b compares task accuracy of the fine-grained SQL tools against the
// single execute_sql tool (admin role; modularization must not cost
// accuracy).
func Fig5b(cfg Config) ([]Fig5bResult, error) {
	suite := birdext.GenerateSuite(cfg.Seed)
	tasks := sampleTasks(suite.Tasks, cfg.sample())
	var out []Fig5bResult
	for _, model := range Models(cfg.Seed) {
		for _, kind := range []ToolkitKind{BridgeScope, PGMCP} {
			correct := 0
			for _, t := range tasks {
				o, err := runBirdTask(suite, birdext.RoleAdmin, kind, model, t)
				if err != nil {
					return nil, err
				}
				if o.Correct {
					correct++
				}
			}
			out = append(out, Fig5bResult{
				Model: model.Name(), Toolkit: kind,
				Accuracy: float64(correct) / float64(len(tasks)),
				Tasks:    len(tasks),
			})
		}
	}
	return out, nil
}

// Fig5cResult is one bar of Figure 5(c): the transaction trigger ratio on
// write tasks.
type Fig5cResult struct {
	Model        string
	Toolkit      ToolkitKind
	TriggerRatio float64
	Tasks        int
}

// Fig5c measures how often agents correctly initiate transactions for
// database modifications (admin role, write tasks).
func Fig5c(cfg Config) ([]Fig5cResult, error) {
	suite := birdext.GenerateSuite(cfg.Seed)
	tasks := sampleTasks(suite.WriteTasks, cfg.sample())
	var out []Fig5cResult
	for _, model := range Models(cfg.Seed) {
		for _, kind := range []ToolkitKind{BridgeScope, PGMCP} {
			triggered := 0
			for _, t := range tasks {
				o, err := runBirdTask(suite, birdext.RoleAdmin, kind, model, t)
				if err != nil {
					return nil, err
				}
				if o.Metrics.TransactionUsed {
					triggered++
				}
			}
			out = append(out, Fig5cResult{
				Model: model.Name(), Toolkit: kind,
				TriggerRatio: float64(triggered) / float64(len(tasks)),
				Tasks:        len(tasks),
			})
		}
	}
	return out, nil
}

// Cell identifies one (role, task type) combination of §3.3.
type Cell struct {
	Role  birdext.Role
	Write bool
}

// String renders the cell in the paper's "(A, read)" notation.
func (c Cell) String() string {
	letter := map[birdext.Role]string{
		birdext.RoleAdmin: "A", birdext.RoleNormal: "N", birdext.RoleIrrelevant: "I",
	}[c.Role]
	kind := "read"
	if c.Write {
		kind = "write"
	}
	return fmt.Sprintf("(%s, %s)", letter, kind)
}

// Feasible reports whether the cell's tasks are feasible for its role.
func (c Cell) Feasible() bool { return birdext.Feasible(c.Role, c.Write) }

// Cells lists the five evaluated combinations; (N, read) is omitted as in
// the paper because it matches (A, read).
var Cells = []Cell{
	{birdext.RoleAdmin, false},
	{birdext.RoleAdmin, true},
	{birdext.RoleNormal, true},
	{birdext.RoleIrrelevant, false},
	{birdext.RoleIrrelevant, true},
}

// CellResult is one (model, toolkit, cell) measurement backing Figure 6 and
// Table 1.
type CellResult struct {
	Model          string
	Toolkit        ToolkitKind
	Cell           Cell
	AvgLLMCalls    float64
	AvgTokens      float64
	BestAchievable float64
	Tasks          int
}

// bestAchievableFor estimates the minimum LLM calls per cell: 3 for
// feasible tasks; for infeasible ones, 1 when infeasibility is visible from
// the tool list ((N, write)) and 2 when it requires a schema look ((I, *)).
func bestAchievableFor(c Cell) float64 {
	if c.Feasible() {
		return BestAchievableCalls
	}
	if c.Role == birdext.RoleNormal && c.Write {
		return 1
	}
	return 2
}

// Fig6Table1 runs the privilege-aware tooling experiment: average LLM calls
// (Figure 6) and token usage (Table 1) for every cell and toolkit.
func Fig6Table1(cfg Config) ([]CellResult, error) {
	suite := birdext.GenerateSuite(cfg.Seed)
	var out []CellResult
	for _, model := range Models(cfg.Seed) {
		for _, kind := range []ToolkitKind{BridgeScope, PGMCP} {
			for _, cell := range Cells {
				pool := suite.ReadTasks
				if cell.Write {
					pool = suite.WriteTasks
				}
				tasks := sampleTasks(pool, cfg.sample())
				var calls, toks []float64
				for _, t := range tasks {
					o, err := runBirdTask(suite, cell.Role, kind, model, t)
					if err != nil {
						return nil, err
					}
					calls = append(calls, float64(o.Metrics.LLMCalls))
					toks = append(toks, float64(o.Metrics.TotalTokens()))
				}
				out = append(out, CellResult{
					Model: model.Name(), Toolkit: kind, Cell: cell,
					AvgLLMCalls:    mean(calls),
					AvgTokens:      mean(toks),
					BestAchievable: bestAchievableFor(cell),
					Tasks:          len(tasks),
				})
			}
		}
	}
	return out, nil
}

// Table2Result is one row group of Table 2: the proxy-mechanism experiment
// on NL2ML.
type Table2Result struct {
	Model          string
	Toolkit        ToolkitKind
	CompletionRate float64
	AvgTokens      float64 // over completed runs; NaN-free: 0 when none
	AvgLLMCalls    float64 // over completed runs
	Tasks          int
}

// Table2 evaluates the proxy mechanism: completion rate, token usage and
// LLM calls on NL2ML for BridgeScope, PG-MCP (full table), and PG-MCP-S
// (20-row reduction).
func Table2(cfg Config) ([]Table2Result, error) {
	tasks := sampleTasks(nl2ml.GenerateTasks(), cfg.sample())
	var out []Table2Result
	for _, model := range Models(cfg.Seed) {
		for _, kind := range []ToolkitKind{BridgeScope, PGMCP, PGMCPSmall} {
			completed := 0
			var toks, calls []float64
			for _, t := range tasks {
				o, err := runNL2MLTask(cfg, kind, model, t)
				if err != nil {
					return nil, err
				}
				if o.Correct {
					completed++
					toks = append(toks, float64(o.Metrics.TotalTokens()))
					calls = append(calls, float64(o.Metrics.LLMCalls))
				}
			}
			out = append(out, Table2Result{
				Model: model.Name(), Toolkit: kind,
				CompletionRate: float64(completed) / float64(len(tasks)),
				AvgTokens:      mean(toks),
				AvgLLMCalls:    mean(calls),
				Tasks:          len(tasks),
			})
		}
	}
	return out, nil
}

// IdealizedResult quantifies §3.4(3): even an agent with an unbounded
// context window must move the full table through its context at least
// twice, costing two orders of magnitude more tokens than BridgeScope.
type IdealizedResult struct {
	TableTokens          int     // one rendering of the full house table
	IdealizedAgentTokens int     // two transfers, the paper's lower bound
	BridgeScopeTokens    float64 // measured average (GPT-4o profile)
	Ratio                float64
}

// IdealizedTransfer computes the idealized-agent lower bound against
// BridgeScope's measured cost.
func IdealizedTransfer(cfg Config) (*IdealizedResult, error) {
	engine := housingEngine(cfg.Seed, cfg.housingRows())
	root := engine.NewSession("root")
	res, err := root.Exec("SELECT " + joinCols() + " FROM house")
	if err != nil {
		return nil, err
	}
	tableTokens := tokens.Count(res.Text())

	// BridgeScope's measured average over a slice of NL2ML tasks.
	tasks := sampleTasks(nl2ml.GenerateTasks(), cfg.sample())
	model := Models(cfg.Seed)[0]
	var toks []float64
	for _, t := range tasks {
		o, err := runNL2MLTask(cfg, BridgeScope, model, t)
		if err != nil {
			return nil, err
		}
		if o.Correct {
			toks = append(toks, float64(o.Metrics.TotalTokens()))
		}
	}
	bs := mean(toks)
	ideal := 2 * tableTokens
	ratio := 0.0
	if bs > 0 {
		ratio = float64(ideal) / bs
	}
	return &IdealizedResult{
		TableTokens:          tableTokens,
		IdealizedAgentTokens: ideal,
		BridgeScopeTokens:    bs,
		Ratio:                ratio,
	}, nil
}

func joinCols() string {
	cols := append(append([]string{}, nl2ml.AllFeatures...), nl2ml.TargetColumn)
	out := ""
	for i, c := range cols {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return out
}
