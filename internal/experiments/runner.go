package experiments

import (
	"context"
	"fmt"
	"strings"

	"bridgescope/internal/agent"
	"bridgescope/internal/bench/birdext"
	"bridgescope/internal/bench/nl2ml"
	"bridgescope/internal/core"
	"bridgescope/internal/llm"
	"bridgescope/internal/mcp"
	"bridgescope/internal/mltools"
	"bridgescope/internal/pgmcp"
	"bridgescope/internal/sqldb"
	"bridgescope/internal/task"
)

// Outcome couples an agent run's metrics with its correctness verdict.
type Outcome struct {
	Metrics *agent.Metrics
	Correct bool
}

// runBirdTask executes one BIRD-Ext task under a role and toolkit, scoring
// correctness against the task's recorded expectation.
func runBirdTask(suite *birdext.Suite, role birdext.Role, kind ToolkitKind, model llm.Model, t *task.Task) (*Outcome, error) {
	engine := suite.BuildEngine()
	user := birdext.SetupRole(engine, role)
	conn := core.NewSQLDBConn(engine, user)

	var client *mcp.Client
	var prompt string
	switch kind {
	case BridgeScope:
		tk := core.New(conn, core.Policy{})
		client = tk.Client()
		prompt = tk.SystemPrompt()
	case PGMCP:
		tk := pgmcp.New(conn, pgmcp.Options{WithSchemaTool: true})
		client = mcp.NewClient(mcp.NewServer(tk.Registry()))
		prompt = tk.SystemPrompt()
	case PGMCPMinus:
		tk := pgmcp.New(conn, pgmcp.Options{WithSchemaTool: false})
		client = mcp.NewClient(mcp.NewServer(tk.Registry()))
		prompt = tk.SystemPrompt()
	default:
		return nil, fmt.Errorf("toolkit %q is not valid for BIRD-Ext", kind)
	}

	a := &agent.Agent{Model: model, Client: client, SystemPrompt: prompt}
	met, err := a.Run(context.Background(), t)
	if err != nil {
		return nil, fmt.Errorf("task %s (%s, %s, %s): %w", t.ID, role, kind, model.Name(), err)
	}
	return &Outcome{Metrics: met, Correct: scoreBird(engine, t, met)}, nil
}

// scoreBird verifies post-state for write tasks and answer text for reads.
func scoreBird(engine *sqldb.Engine, t *task.Task, met *agent.Metrics) bool {
	if !met.Completed {
		return false
	}
	root := engine.NewSession("root")
	if t.Kind.IsWrite() {
		r, err := root.Exec(t.VerifySQL)
		if err != nil {
			return false
		}
		return r.Text() == t.Expected
	}
	return strings.TrimSpace(met.LastQueryResult) == strings.TrimSpace(t.Expected)
}

// runNL2MLTask executes one NL2ML task with the selected toolkit. The ML
// tool server is attached to every toolkit, as in §3.4 ("we equip agents
// with extra tools for data processing and machine learning").
func runNL2MLTask(cfg Config, kind ToolkitKind, model llm.Model, t *task.Task) (*Outcome, error) {
	rows := cfg.housingRows()
	if kind == PGMCPSmall {
		rows = nl2ml.SmallRows
	}
	engine := housingEngine(cfg.Seed, rows)
	user := nl2ml.SetupUser(engine)
	conn := core.NewSQLDBConn(engine, user)

	mlServer := mltools.NewServer(cfg.Seed)

	var client *mcp.Client
	var prompt string
	switch kind {
	case BridgeScope:
		tk := core.New(conn, core.Policy{})
		mlServer.RegisterTools(tk.Registry())
		client = tk.Client()
		prompt = tk.SystemPrompt()
	case PGMCP, PGMCPSmall:
		tk := pgmcp.New(conn, pgmcp.Options{WithSchemaTool: true})
		mlServer.RegisterTools(tk.Registry())
		client = mcp.NewClient(mcp.NewServer(tk.Registry()))
		prompt = tk.SystemPrompt()
	default:
		return nil, fmt.Errorf("toolkit %q is not valid for NL2ML", kind)
	}

	a := &agent.Agent{Model: model, Client: client, SystemPrompt: prompt}
	met, err := a.Run(context.Background(), t)
	if err != nil {
		return nil, fmt.Errorf("task %s (%s, %s): %w", t.ID, kind, model.Name(), err)
	}
	// NL2ML scoring is completion-based (Table 2's completion rate): the
	// workflow finished and reported a model/prediction result.
	correct := met.Completed && strings.Contains(met.FinalAnswer, "Workflow completed")
	return &Outcome{Metrics: met, Correct: correct}, nil
}

// sampleTasks applies the config's sampling stride.
func sampleTasks(tasks []*task.Task, stride int) []*task.Task {
	if stride <= 1 {
		return tasks
	}
	var out []*task.Task
	for i := 0; i < len(tasks); i += stride {
		out = append(out, tasks[i])
	}
	return out
}

// mean returns the average of xs (0 when empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
