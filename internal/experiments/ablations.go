package experiments

import (
	"context"
	"fmt"
	"time"

	"bridgescope/internal/agent"
	"bridgescope/internal/bench/birdext"
	"bridgescope/internal/bench/nl2ml"
	"bridgescope/internal/core"
	"bridgescope/internal/llm"
	"bridgescope/internal/mltools"
	"bridgescope/internal/task"
	"bridgescope/internal/tokens"
)

// AblationResult is one measured design-choice comparison.
type AblationResult struct {
	Name     string
	Value    float64 // with the design choice ablated
	Baseline float64 // the shipped configuration
	Unit     string
	Note     string
}

// Ablations measures the design choices DESIGN.md calls out: privilege
// annotations, the adaptive schema threshold, get_value top-k retrieval,
// and proxy producer parallelism.
func Ablations(cfg Config) ([]AblationResult, error) {
	var out []AblationResult

	a1, err := ablatePrivilegeAnnotations(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, a1)

	a2, err := ablateSchemaThreshold(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, a2)

	a3, err := ablateValueTopK(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, a3)

	a4, err := ablateProxyParallelism(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, a4)

	return out, nil
}

// runBirdPolicy runs a BIRD-Ext task through BridgeScope with a custom
// policy (shared by ablations).
func runBirdPolicy(suite *birdext.Suite, role birdext.Role, policy core.Policy, model llm.Model, t *task.Task) (*agent.Metrics, error) {
	engine := suite.BuildEngine()
	user := birdext.SetupRole(engine, role)
	conn := core.NewSQLDBConn(engine, user)
	tk := core.New(conn, policy)
	a := &agent.Agent{Model: model, Client: tk.Client(), SystemPrompt: tk.SystemPrompt()}
	return a.Run(context.Background(), t)
}

// ablatePrivilegeAnnotations compares LLM calls on infeasible (I, read)
// tasks with and without "-- Access" annotations: without them the model
// only learns about missing privileges from execution errors.
func ablatePrivilegeAnnotations(cfg Config) (AblationResult, error) {
	suite := birdext.GenerateSuite(cfg.Seed)
	tasks := sampleTasks(suite.ReadTasks, maxInt(cfg.sample(), 5))
	model := Models(cfg.Seed)[0]
	var with, without []float64
	for _, t := range tasks {
		m1, err := runBirdPolicy(suite, birdext.RoleIrrelevant, core.Policy{}, model, t)
		if err != nil {
			return AblationResult{}, err
		}
		with = append(with, float64(m1.LLMCalls))
		m2, err := runBirdPolicy(suite, birdext.RoleIrrelevant,
			core.Policy{DisablePrivilegeAnnotations: true}, model, t)
		if err != nil {
			return AblationResult{}, err
		}
		without = append(without, float64(m2.LLMCalls))
	}
	return AblationResult{
		Name:     "privilege annotations OFF",
		Value:    mean(without),
		Baseline: mean(with),
		Unit:     "calls",
		Note:     "avg #LLM calls to abort an infeasible (I, read) task",
	}, nil
}

// ablateSchemaThreshold compares get_schema output size in full vs
// hierarchical mode on the BIRD-Ext catalog.
func ablateSchemaThreshold(cfg Config) (AblationResult, error) {
	suite := birdext.GenerateSuite(cfg.Seed)
	engine := suite.BuildEngine()
	user := birdext.SetupRole(engine, birdext.RoleAdmin)

	schemaTokens := func(threshold int) (int, error) {
		conn := core.NewSQLDBConn(engine, user)
		tk := core.New(conn, core.Policy{SchemaThreshold: threshold})
		res, err := tk.Client().CallTool(context.Background(), "get_schema", nil)
		if err != nil {
			return 0, err
		}
		return tokens.Count(res.Text), nil
	}
	full, err := schemaTokens(100)
	if err != nil {
		return AblationResult{}, err
	}
	hier, err := schemaTokens(5)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "hierarchical schema (n=5)",
		Value:    float64(hier),
		Baseline: float64(full),
		Unit:     "tokens",
		Note:     "get_schema output size, hierarchical vs full",
	}, nil
}

// ablateValueTopK compares get_value's top-k output against enumerating a
// column's whole domain — the token saving §2.2 claims.
func ablateValueTopK(cfg Config) (AblationResult, error) {
	engine := housingEngine(cfg.Seed, cfg.housingRows())
	user := nl2ml.SetupUser(engine)
	conn := core.NewSQLDBConn(engine, user)
	tk := core.New(conn, core.Policy{})

	res, err := tk.Client().CallTool(context.Background(), "get_value", map[string]any{
		"table": "house", "column": "median_income", "key": "8.3", "k": float64(5),
	})
	if err != nil {
		return AblationResult{}, err
	}
	if res.IsErr {
		return AblationResult{}, fmt.Errorf("get_value failed: %s", res.Text)
	}
	topK := tokens.Count(res.Text)

	root := engine.NewSession("root")
	all, err := root.Exec("SELECT DISTINCT median_income FROM house")
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "get_value top-k vs full enumeration",
		Value:    float64(topK),
		Baseline: float64(tokens.Count(all.Text())),
		Unit:     "tokens",
		Note:     "exemplar retrieval output size (Value = top-5)",
	}, nil
}

// ablateProxyParallelism times a two-producer proxy unit with parallel vs
// sequential producer execution (§2.5's parallel-execution benefit).
func ablateProxyParallelism(cfg Config) (AblationResult, error) {
	tasks := nl2ml.GenerateTasks()
	var t1 *task.Task
	for _, t := range tasks {
		if t.Pipeline.Level == 1 {
			t1 = t
			break
		}
	}
	timeRun := func(parallel bool) (float64, error) {
		engine := housingEngine(cfg.Seed, cfg.housingRows())
		user := nl2ml.SetupUser(engine)
		conn := core.NewSQLDBConn(engine, user)
		policy := core.Policy{DisableParallelProxy: !parallel}
		tk := core.New(conn, policy)
		mltools.NewServer(cfg.Seed).RegisterTools(tk.Registry())
		model := Models(cfg.Seed)[0]
		a := &agent.Agent{Model: model, Client: tk.Client(), SystemPrompt: tk.SystemPrompt()}
		start := time.Now()
		if _, err := a.Run(context.Background(), t1); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	par, err := timeRun(true)
	if err != nil {
		return AblationResult{}, err
	}
	seq, err := timeRun(false)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "proxy producers sequential",
		Value:    seq,
		Baseline: par,
		Unit:     "seconds",
		Note:     "level-1 NL2ML wall-clock, sequential vs parallel producers",
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
