package sqldb

import "strings"

// Stmt is a parsed SQL statement.
type Stmt interface {
	// StmtAction reports the privilege action the statement requires.
	StmtAction() Action
	stmtNode()
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // empty means a FROM-less SELECT (e.g. SELECT 1+1)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
	Limit    Expr // nil when absent
	Offset   Expr // nil when absent
}

// SelectItem is one projected expression with an optional alias. Star items
// have Star set (optionally with a table qualifier).
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // qualifier for t.* items
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// TableRef is one entry in the FROM clause, optionally joined to the
// previous entry.
type TableRef struct {
	Table    string
	Alias    string
	JoinKind JoinKind
	On       Expr // nil for the first ref and comma joins
}

// JoinKind distinguishes how a TableRef combines with the preceding refs.
type JoinKind uint8

// Join kinds. The first FROM entry uses JoinNone; comma-separated tables use
// JoinCross.
const (
	JoinNone JoinKind = iota
	JoinCross
	JoinInner
	JoinLeft
)

// InsertStmt is an INSERT statement with literal VALUES rows.
type InsertStmt struct {
	Table   string
	Columns []string // empty means all table columns in order
	Rows    [][]Expr
}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Expr   Expr
}

// DeleteStmt is a DELETE statement.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string // table-level PRIMARY KEY(...)
	ForeignKeys []ForeignKeyDef
}

// ColumnDef defines one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       Kind
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	Default    Expr
	References *ForeignKeyDef // inline REFERENCES
}

// ForeignKeyDef declares a foreign key constraint.
type ForeignKeyDef struct {
	Columns       []string
	ParentTable   string
	ParentColumns []string
}

// DropTableStmt drops a table.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// CreateIndexStmt creates a single-column hash index.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
	Unique bool
}

// AlterTableStmt supports ADD COLUMN and RENAME TO.
type AlterTableStmt struct {
	Table     string
	AddColumn *ColumnDef
	RenameTo  string
}

// CreateViewStmt creates a view over a stored SELECT.
type CreateViewStmt struct {
	Name  string
	Query *SelectStmt
}

// DropViewStmt drops a view.
type DropViewStmt struct {
	Name     string
	IfExists bool
}

// BeginStmt starts a transaction, optionally naming an isolation level
// (BEGIN [TRANSACTION] [ISOLATION LEVEL ...]). The zero value is the
// default snapshot isolation.
type BeginStmt struct {
	Level IsolationLevel
}

// CommitStmt commits the current transaction.
type CommitStmt struct{}

// RollbackStmt rolls back the current transaction.
type RollbackStmt struct{}

// ExplainStmt asks for the execution plan of a statement instead of running
// it. With Analyze set (EXPLAIN ANALYZE), the inner statement IS executed —
// with its normal lock class and side effects — and the rendered plan is
// annotated with the actual row counts and wall time of each operator.
type ExplainStmt struct {
	Stmt    Stmt
	Analyze bool
}

// GrantStmt grants privileges on a table to a user. Columns[i] optionally
// restricts Actions[i] to named columns (PostgreSQL column privileges,
// e.g. GRANT SELECT (id, name) ON t TO u).
type GrantStmt struct {
	Actions []Action   // nil means ALL PRIVILEGES
	Columns [][]string // parallel to Actions; nil entries mean all columns
	Table   string     // "*" means all tables
	Grantee string
}

// RevokeStmt revokes privileges on a table from a user.
type RevokeStmt struct {
	Actions []Action // nil means ALL PRIVILEGES
	Table   string
	Grantee string
}

func (*SelectStmt) stmtNode()      {}
func (*CreateViewStmt) stmtNode()  {}
func (*DropViewStmt) stmtNode()    {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*CreateTableStmt) stmtNode() {}
func (*DropTableStmt) stmtNode()   {}
func (*CreateIndexStmt) stmtNode() {}
func (*AlterTableStmt) stmtNode()  {}
func (*BeginStmt) stmtNode()       {}
func (*ExplainStmt) stmtNode()     {}
func (*CommitStmt) stmtNode()      {}
func (*RollbackStmt) stmtNode()    {}
func (*GrantStmt) stmtNode()       {}
func (*RevokeStmt) stmtNode()      {}

// StmtAction implementations map statements to privilege actions.
func (*SelectStmt) StmtAction() Action      { return ActionSelect }
func (*CreateViewStmt) StmtAction() Action  { return ActionCreate }
func (*DropViewStmt) StmtAction() Action    { return ActionDrop }
func (*InsertStmt) StmtAction() Action      { return ActionInsert }
func (*UpdateStmt) StmtAction() Action      { return ActionUpdate }
func (*DeleteStmt) StmtAction() Action      { return ActionDelete }
func (*CreateTableStmt) StmtAction() Action { return ActionCreate }
func (*DropTableStmt) StmtAction() Action   { return ActionDrop }
func (*CreateIndexStmt) StmtAction() Action { return ActionCreate }
func (*AlterTableStmt) StmtAction() Action  { return ActionAlter }
func (*BeginStmt) StmtAction() Action       { return ActionNone }
func (e *ExplainStmt) StmtAction() Action   { return e.Stmt.StmtAction() }
func (*CommitStmt) StmtAction() Action      { return ActionNone }
func (*RollbackStmt) StmtAction() Action    { return ActionNone }
func (*GrantStmt) StmtAction() Action       { return ActionGrant }
func (*RevokeStmt) StmtAction() Action      { return ActionGrant }

// ReferencedTables returns every table name a statement touches, for
// object-level privilege verification (paper §2.3, object-level tool
// verification).
func ReferencedTables(s Stmt) []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		lo := strings.ToLower(name)
		if name != "" && !seen[lo] {
			seen[lo] = true
			out = append(out, name)
		}
	}
	switch st := s.(type) {
	case *SelectStmt:
		for _, tr := range st.From {
			add(tr.Table)
		}
		// Subqueries in expressions.
		exprs := []Expr{st.Where, st.Having}
		for _, it := range st.Items {
			exprs = append(exprs, it.Expr)
		}
		for _, e := range exprs {
			for _, t := range subqueryTables(e) {
				add(t)
			}
		}
	case *InsertStmt:
		add(st.Table)
	case *UpdateStmt:
		add(st.Table)
		for _, t := range subqueryTables(st.Where) {
			add(t)
		}
	case *DeleteStmt:
		add(st.Table)
		for _, t := range subqueryTables(st.Where) {
			add(t)
		}
	case *CreateTableStmt:
		add(st.Table)
	case *DropTableStmt:
		add(st.Table)
	case *CreateIndexStmt:
		add(st.Table)
	case *AlterTableStmt:
		add(st.Table)
	case *GrantStmt:
		add(st.Table)
	case *RevokeStmt:
		add(st.Table)
	case *CreateViewStmt:
		add(st.Name)
		for _, t := range ReferencedTables(st.Query) {
			add(t)
		}
	case *DropViewStmt:
		add(st.Name)
	case *ExplainStmt:
		for _, t := range ReferencedTables(st.Stmt) {
			add(t)
		}
	}
	return out
}

func subqueryTables(e Expr) []string {
	if e == nil {
		return nil
	}
	var out []string
	walkExpr(e, func(x Expr) {
		if sq, ok := x.(*SubqueryExpr); ok {
			out = append(out, ReferencedTables(sq.Query)...)
		}
	})
	return out
}

// walkExpr visits e and every child expression.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
	case *UnaryExpr:
		walkExpr(x.Operand, fn)
	case *FuncExpr:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *InExpr:
		walkExpr(x.Operand, fn)
		for _, a := range x.List {
			walkExpr(a, fn)
		}
		if x.Subquery != nil {
			walkExpr(x.Subquery, fn)
		}
	case *BetweenExpr:
		walkExpr(x.Operand, fn)
		walkExpr(x.Low, fn)
		walkExpr(x.High, fn)
	case *LikeExpr:
		walkExpr(x.Operand, fn)
		walkExpr(x.Pattern, fn)
	case *IsNullExpr:
		walkExpr(x.Operand, fn)
	case *CaseExpr:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Result, fn)
		}
		walkExpr(x.Else, fn)
	}
}

// HasAggregate reports whether the expression tree contains an aggregate
// function call.
func HasAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if f, ok := x.(*FuncExpr); ok && f.IsAggregate() {
			found = true
		}
	})
	return found
}
