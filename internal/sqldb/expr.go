package sqldb

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"
)

// Env is the name-resolution environment an expression evaluates against:
// one (possibly joined) row plus aggregate results when grouping.
type Env struct {
	cols []envCol
	vals []Value
	agg  map[Expr]Value // precomputed aggregate node values
	// outer allows correlated lookups from subqueries (unused by the
	// supported subquery forms but kept for resolution fallback).
	outer *Env
	// sess is the session evaluating this environment; subqueries execute
	// through it. Carrying the session here (instead of binding closures
	// into the AST) keeps parsed statements immutable, so sessions can
	// share them under the engine's read lock.
	sess *Session
}

// session returns the nearest session in the environment chain, or nil.
func (e *Env) session() *Session {
	for ; e != nil; e = e.outer {
		if e.sess != nil {
			return e.sess
		}
	}
	return nil
}

type envCol struct {
	table string // lower-case alias or table name; "" for computed columns
	name  string // lower-case column name
}

// NewEnv builds an environment from parallel column/value slices. Column
// names may be qualified ("alias.col") or bare.
func NewEnv(cols []string, vals []Value) *Env {
	env := &Env{vals: vals}
	for _, c := range cols {
		tbl, name := "", strings.ToLower(c)
		if i := strings.IndexByte(name, '.'); i >= 0 {
			tbl, name = name[:i], name[i+1:]
		}
		env.cols = append(env.cols, envCol{table: tbl, name: name})
	}
	return env
}

// Lookup resolves a column reference, returning an error for unknown or
// ambiguous names.
func (e *Env) Lookup(table, name string) (Value, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	idx := -1
	for i, c := range e.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if idx >= 0 {
			if table == "" {
				return Value{}, fmt.Errorf("ambiguous column reference %q", name)
			}
			continue
		}
		idx = i
	}
	if idx < 0 {
		if e.outer != nil {
			return e.outer.Lookup(table, name)
		}
		if table != "" {
			return Value{}, fmt.Errorf("unknown column %q", table+"."+name)
		}
		return Value{}, fmt.Errorf("unknown column %q", name)
	}
	return e.vals[idx], nil
}

// Expr is an evaluable SQL expression.
type Expr interface {
	Eval(env *Env) (Value, error)
	String() string
}

// Literal is a constant value.
type Literal struct{ Val Value }

// Eval returns the constant.
func (l *Literal) Eval(*Env) (Value, error) { return l.Val, nil }

func (l *Literal) String() string { return l.Val.SQLLiteral() }

// ColumnRef references a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table string
	Name  string
}

// Eval resolves the column in the environment.
func (c *ColumnRef) Eval(env *Env) (Value, error) {
	if env == nil {
		return Value{}, fmt.Errorf("column %q referenced outside row context", c.Name)
	}
	return env.Lookup(c.Table, c.Name)
}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

// Eval implements SQL three-valued logic for comparisons and AND/OR and
// numeric promotion for arithmetic.
func (b *BinaryExpr) Eval(env *Env) (Value, error) {
	// AND/OR need lazy, three-valued evaluation.
	switch b.Op {
	case "AND":
		lv, err := b.Left.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if !lv.IsNull() && !lv.Truthy() {
			return NewBool(false), nil
		}
		rv, err := b.Right.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if !rv.IsNull() && !rv.Truthy() {
			return NewBool(false), nil
		}
		if lv.IsNull() || rv.IsNull() {
			return Null(), nil
		}
		return NewBool(true), nil
	case "OR":
		lv, err := b.Left.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if !lv.IsNull() && lv.Truthy() {
			return NewBool(true), nil
		}
		rv, err := b.Right.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if !rv.IsNull() && rv.Truthy() {
			return NewBool(true), nil
		}
		if lv.IsNull() || rv.IsNull() {
			return Null(), nil
		}
		return NewBool(false), nil
	}

	lv, err := b.Left.Eval(env)
	if err != nil {
		return Value{}, err
	}
	rv, err := b.Right.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if lv.IsNull() || rv.IsNull() {
		return Null(), nil
	}
	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		c, err := Compare(lv, rv)
		if err != nil {
			return Value{}, err
		}
		switch b.Op {
		case "=":
			return NewBool(c == 0), nil
		case "!=":
			return NewBool(c != 0), nil
		case "<":
			return NewBool(c < 0), nil
		case "<=":
			return NewBool(c <= 0), nil
		case ">":
			return NewBool(c > 0), nil
		default:
			return NewBool(c >= 0), nil
		}
	case "||":
		return NewText(lv.String() + rv.String()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(b.Op, lv, rv)
	}
	return Value{}, fmt.Errorf("unsupported operator %q", b.Op)
}

func evalArith(op string, lv, rv Value) (Value, error) {
	if lv.Kind == KindInt && rv.Kind == KindInt {
		switch op {
		case "+":
			return NewInt(lv.I + rv.I), nil
		case "-":
			return NewInt(lv.I - rv.I), nil
		case "*":
			return NewInt(lv.I * rv.I), nil
		case "/":
			if rv.I == 0 {
				return Value{}, fmt.Errorf("division by zero")
			}
			// Integer division truncates, like PostgreSQL.
			return NewInt(lv.I / rv.I), nil
		case "%":
			if rv.I == 0 {
				return Value{}, fmt.Errorf("division by zero")
			}
			return NewInt(lv.I % rv.I), nil
		}
	}
	lf, lok := lv.AsFloat()
	rf, rok := rv.AsFloat()
	if !lok || !rok {
		return Value{}, fmt.Errorf("operator %q requires numeric operands, got %s and %s", op, lv.Kind, rv.Kind)
	}
	switch op {
	case "+":
		return NewFloat(lf + rf), nil
	case "-":
		return NewFloat(lf - rf), nil
	case "*":
		return NewFloat(lf * rf), nil
	case "/":
		if rf == 0 {
			return Value{}, fmt.Errorf("division by zero")
		}
		return NewFloat(lf / rf), nil
	case "%":
		if rf == 0 {
			return Value{}, fmt.Errorf("division by zero")
		}
		return NewFloat(math.Mod(lf, rf)), nil
	}
	return Value{}, fmt.Errorf("unsupported arithmetic operator %q", op)
}

func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op      string // "NOT" or "-"
	Operand Expr
}

// Eval evaluates the operand and applies the operator.
func (u *UnaryExpr) Eval(env *Env) (Value, error) {
	v, err := u.Operand.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return Null(), nil
	}
	switch u.Op {
	case "NOT":
		return NewBool(!v.Truthy()), nil
	case "-":
		switch v.Kind {
		case KindInt:
			return NewInt(-v.I), nil
		case KindFloat:
			return NewFloat(-v.F), nil
		}
		return Value{}, fmt.Errorf("unary minus requires a numeric operand, got %s", v.Kind)
	}
	return Value{}, fmt.Errorf("unsupported unary operator %q", u.Op)
}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return "NOT " + u.Operand.String()
	}
	return u.Op + u.Operand.String()
}

// FuncExpr is a function call: scalar (UPPER, ABS, ...) or aggregate
// (COUNT, SUM, AVG, MIN, MAX).
type FuncExpr struct {
	Name     string // upper-case
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// IsAggregate reports whether the function is an aggregate.
func (f *FuncExpr) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// Eval evaluates scalar functions directly; aggregate nodes read their
// precomputed per-group value from the environment.
func (f *FuncExpr) Eval(env *Env) (Value, error) {
	if f.IsAggregate() {
		if env != nil && env.agg != nil {
			if v, ok := env.agg[f]; ok {
				return v, nil
			}
		}
		return Value{}, fmt.Errorf("aggregate %s used outside aggregation context", f.Name)
	}
	args := make([]Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return evalScalarFunc(f.Name, args)
}

func evalScalarFunc(name string, args []Value) (Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "UPPER":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return NewText(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return NewText(strings.ToLower(args[0].String())), nil
	case "LENGTH":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		// Character count, not byte count: LENGTH('héllo') is 5, matching
		// the PostgreSQL semantics the evaluator follows elsewhere.
		return NewInt(int64(utf8.RuneCountInString(args[0].String()))), nil
	case "ABS":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		v := args[0]
		switch v.Kind {
		case KindNull:
			return Null(), nil
		case KindInt:
			if v.I < 0 {
				return NewInt(-v.I), nil
			}
			return v, nil
		case KindFloat:
			return NewFloat(math.Abs(v.F)), nil
		}
		return Value{}, fmt.Errorf("ABS requires a numeric argument")
	case "ROUND":
		if len(args) == 0 || len(args) > 2 {
			return Value{}, fmt.Errorf("ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		fv, ok := args[0].AsFloat()
		if !ok {
			return Value{}, fmt.Errorf("ROUND requires a numeric argument")
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].Kind != KindInt {
				return Value{}, fmt.Errorf("ROUND digits must be an integer")
			}
			digits = args[1].I
		}
		p := math.Pow(10, float64(digits))
		return NewFloat(math.Round(fv*p) / p), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return Value{}, fmt.Errorf("%s expects 2 or 3 arguments", name)
		}
		// NULL in any argument yields NULL (PostgreSQL); a non-integer
		// start or length is an error, never silently read as 0.
		if args[0].IsNull() || args[1].IsNull() || (len(args) == 3 && args[2].IsNull()) {
			return Null(), nil
		}
		if args[1].Kind != KindInt {
			return Value{}, fmt.Errorf("%s start must be an integer, got %s", name, args[1].Kind)
		}
		r := []rune(args[0].String()) // slice by characters, never mid-rune
		start := int(args[1].I) - 1   // SQL is 1-based; may be negative
		end := len(r)
		if len(args) == 3 {
			if args[2].Kind != KindInt {
				return Value{}, fmt.Errorf("%s length must be an integer, got %s", name, args[2].Kind)
			}
			if args[2].I < 0 {
				return Value{}, fmt.Errorf("negative substring length not allowed")
			}
			// The window is [start, start+length) before clamping, so a
			// negative start consumes length before the first character,
			// matching PostgreSQL: SUBSTR('abc', -1, 3) = 'a'.
			end = start + int(args[2].I)
		}
		if end < 0 {
			end = 0
		} else if end > len(r) {
			end = len(r)
		}
		if start < 0 {
			start = 0
		} else if start > len(r) {
			start = len(r)
		}
		if end < start {
			end = start
		}
		return NewText(string(r[start:end])), nil
	case "TRIM":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return NewText(strings.TrimSpace(args[0].String())), nil
	case "SQRT":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		fv, ok := args[0].AsFloat()
		if !ok || fv < 0 {
			return Value{}, fmt.Errorf("SQRT requires a non-negative numeric argument")
		}
		return NewFloat(math.Sqrt(fv)), nil
	}
	return Value{}, fmt.Errorf("unknown function %s", name)
}

func (f *FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	inner := strings.Join(parts, ", ")
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	return f.Name + "(" + inner + ")"
}

// InExpr is `operand [NOT] IN (list)` or `operand [NOT] IN (SELECT ...)`.
type InExpr struct {
	Operand  Expr
	List     []Expr
	Subquery *SubqueryExpr
	Not      bool
}

// Eval checks membership with SQL NULL semantics (NULL operand → NULL).
func (in *InExpr) Eval(env *Env) (Value, error) {
	v, err := in.Operand.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return Null(), nil
	}
	var candidates []Value
	if in.Subquery != nil {
		rows, err := in.Subquery.evalRows(env)
		if err != nil {
			return Value{}, err
		}
		candidates = rows
	} else {
		for _, e := range in.List {
			cv, err := e.Eval(env)
			if err != nil {
				return Value{}, err
			}
			candidates = append(candidates, cv)
		}
	}
	sawNull := false
	for _, cv := range candidates {
		if cv.IsNull() {
			sawNull = true
			continue
		}
		if c, err := Compare(v, cv); err == nil && c == 0 {
			return NewBool(!in.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return NewBool(in.Not), nil
}

func (in *InExpr) String() string {
	op := " IN "
	if in.Not {
		op = " NOT IN "
	}
	if in.Subquery != nil {
		// The subquery renders with its own parentheses; doubling them
		// would parse back as a one-element scalar list.
		return in.Operand.String() + op + in.Subquery.String()
	}
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return in.Operand.String() + op + "(" + strings.Join(parts, ", ") + ")"
}

// BetweenExpr is `operand [NOT] BETWEEN low AND high`.
type BetweenExpr struct {
	Operand Expr
	Low     Expr
	High    Expr
	Not     bool
}

// Eval evaluates the range test.
func (b *BetweenExpr) Eval(env *Env) (Value, error) {
	v, err := b.Operand.Eval(env)
	if err != nil {
		return Value{}, err
	}
	lo, err := b.Low.Eval(env)
	if err != nil {
		return Value{}, err
	}
	hi, err := b.High.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return Null(), nil
	}
	cl, err := Compare(v, lo)
	if err != nil {
		return Value{}, err
	}
	ch, err := Compare(v, hi)
	if err != nil {
		return Value{}, err
	}
	in := cl >= 0 && ch <= 0
	if b.Not {
		in = !in
	}
	return NewBool(in), nil
}

func (b *BetweenExpr) String() string {
	op := " BETWEEN "
	if b.Not {
		op = " NOT BETWEEN "
	}
	return b.Operand.String() + op + b.Low.String() + " AND " + b.High.String()
}

// LikeExpr is `operand [NOT] LIKE pattern` with % and _ wildcards.
type LikeExpr struct {
	Operand Expr
	Pattern Expr
	Not     bool
}

// Eval evaluates the pattern match.
func (l *LikeExpr) Eval(env *Env) (Value, error) {
	v, err := l.Operand.Eval(env)
	if err != nil {
		return Value{}, err
	}
	p, err := l.Pattern.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || p.IsNull() {
		return Null(), nil
	}
	m := likeMatch(v.String(), p.String())
	if l.Not {
		m = !m
	}
	return NewBool(m), nil
}

func (l *LikeExpr) String() string {
	op := " LIKE "
	if l.Not {
		op = " NOT LIKE "
	}
	return l.Operand.String() + op + l.Pattern.String()
}

// likeMatch implements SQL LIKE: % matches any run, _ one character.
// Matching is case-sensitive like PostgreSQL, and operates on characters:
// `_` consumes one CHARACTER, not one byte, so multi-byte UTF-8 input
// matches the way PostgreSQL matches it ('é' LIKE '_' is true), and `%`
// backtracking can never resynchronize in the middle of a rune. All-ASCII
// inputs — the common case on a LIKE-filtered scan — take an allocation-free
// byte-wise path where bytes and characters coincide.
func likeMatch(s, pattern string) bool {
	if asciiOnly(s) && asciiOnly(pattern) {
		return likeMatchASCII(s, pattern)
	}
	rs, rp := []rune(s), []rune(pattern)
	// Iterative two-pointer algorithm with backtracking on %.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(rs) {
		switch {
		case pi < len(rp) && (rp[pi] == '_' || rp[pi] == rs[si]):
			si++
			pi++
		case pi < len(rp) && rp[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(rp) && rp[pi] == '%' {
		pi++
	}
	return pi == len(rp)
}

func asciiOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// likeMatchASCII is the byte-wise algorithm, valid when one byte is one
// character.
func likeMatchASCII(s, pattern string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// IsNullExpr is `operand IS [NOT] NULL`.
type IsNullExpr struct {
	Operand Expr
	Not     bool
}

// Eval evaluates the null test (never returns NULL itself).
func (n *IsNullExpr) Eval(env *Env) (Value, error) {
	v, err := n.Operand.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if n.Not {
		return NewBool(!v.IsNull()), nil
	}
	return NewBool(v.IsNull()), nil
}

func (n *IsNullExpr) String() string {
	if n.Not {
		return n.Operand.String() + " IS NOT NULL"
	}
	return n.Operand.String() + " IS NULL"
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// Eval returns the first matching arm's result, the ELSE value, or NULL.
func (c *CaseExpr) Eval(env *Env) (Value, error) {
	for _, w := range c.Whens {
		cv, err := w.Cond.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if !cv.IsNull() && cv.Truthy() {
			return w.Result.Eval(env)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(env)
	}
	return Null(), nil
}

func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SubqueryExpr wraps a scalar or IN-list subquery. It executes through the
// session carried by the evaluation environment, so the node itself stays
// immutable and shareable across sessions.
type SubqueryExpr struct {
	Query *SelectStmt
}

// Eval evaluates the subquery as a scalar: first column of the single row,
// NULL when empty.
func (s *SubqueryExpr) Eval(env *Env) (Value, error) {
	rows, err := s.rows(env)
	if err != nil {
		return Value{}, err
	}
	if len(rows) == 0 {
		return Null(), nil
	}
	if len(rows) > 1 {
		return Value{}, fmt.Errorf("scalar subquery returned %d rows", len(rows))
	}
	if len(rows[0]) != 1 {
		return Value{}, fmt.Errorf("scalar subquery must return one column")
	}
	return rows[0][0], nil
}

// evalRows returns the first column of every row, for IN (SELECT ...).
func (s *SubqueryExpr) evalRows(env *Env) ([]Value, error) {
	rows, err := s.rows(env)
	if err != nil {
		return nil, err
	}
	out := make([]Value, 0, len(rows))
	for _, r := range rows {
		if len(r) != 1 {
			return nil, fmt.Errorf("IN subquery must return one column")
		}
		out = append(out, r[0])
	}
	return out, nil
}

func (s *SubqueryExpr) rows(env *Env) ([][]Value, error) {
	sess := env.session()
	if sess == nil {
		return nil, fmt.Errorf("subquery evaluated outside executor context")
	}
	r, err := sess.execSelect(s.Query, env)
	if err != nil {
		return nil, err
	}
	return r.Rows, nil
}

func (s *SubqueryExpr) String() string { return "(" + RenderSelect(s.Query) + ")" }
