package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file defines the plan-node layer of the engine's parse→plan→execute
// pipeline. The planner (planner.go) lowers a parsed statement into a tree
// of PlanNodes; the executor runs the tree instead of walking the raw AST.
// The same tree renders as EXPLAIN output, so what the user sees is exactly
// what executes.

// PlanNode is one operator in a query plan.
type PlanNode interface {
	// Label returns the node's one-line EXPLAIN description.
	Label() string
	// Children returns the node's inputs, outermost first.
	Children() []PlanNode
}

// SourceNode is a plan node that produces an intermediate relation. Scan,
// filter, and join nodes are sources; the projection/aggregation pipeline
// above them is driven by the SelectPlan itself.
type SourceNode interface {
	PlanNode
	run(s *Session, outer *Env) (*rowSet, error)
	// staticCols returns the qualified output columns when they are known
	// at plan time (base-table scans and combinations thereof), or nil for
	// sources resolved at run time (views).
	staticCols() []string
}

// SeqScanNode reads every live row of a table (or materializes a view when
// the name resolves to one at run time).
type SeqScanNode struct {
	Table string
	Alias string
	// Workers > 0 marks the scan for the batched/morsel path; > 1 also
	// renders as a Parallel Seq Scan in EXPLAIN. The planner sets it from
	// the engine's parallelism settings and a row-count threshold.
	Workers int
	cols    []string // nil when the name is not a base table at plan time
}

// Label implements PlanNode.
func (n *SeqScanNode) Label() string {
	name := n.Table
	if n.Alias != "" && !strings.EqualFold(n.Alias, n.Table) {
		name = n.Table + " as " + n.Alias
	}
	if n.Workers > 1 {
		return fmt.Sprintf("Parallel Seq Scan on %s (workers: %d)", name, n.Workers)
	}
	return "Seq Scan on " + name
}

// Children implements PlanNode.
func (n *SeqScanNode) Children() []PlanNode { return nil }

func (n *SeqScanNode) staticCols() []string { return n.cols }

func (n *SeqScanNode) run(s *Session, outer *Env) (*rowSet, error) {
	if n.Workers > 0 && outer == nil {
		if rs, handled, err := s.parScanFilter(n, nil); handled {
			return rs, err
		}
	}
	return s.scanTable(n.Table, n.Alias)
}

// ViewScanNode materializes a stored view. Its output columns are only known
// once the view's query has run.
type ViewScanNode struct {
	View  string
	Alias string
}

// Label implements PlanNode.
func (n *ViewScanNode) Label() string {
	if n.Alias != "" && !strings.EqualFold(n.Alias, n.View) {
		return fmt.Sprintf("View Scan on %s as %s", n.View, n.Alias)
	}
	return "View Scan on " + n.View
}

// Children implements PlanNode.
func (n *ViewScanNode) Children() []PlanNode { return nil }

func (n *ViewScanNode) staticCols() []string { return nil }

func (n *ViewScanNode) run(s *Session, outer *Env) (*rowSet, error) {
	v, ok := s.engine.ViewByName(n.View)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: n.View}
	}
	return s.scanView(v, n.Alias)
}

// IndexScanNode reads only the rows whose indexed column equals a literal,
// through a hash index or the primary-key map. The consumed conjunct is
// re-checked by the enclosing FilterNode (the index covers one conjunct of
// the predicate), so the access path is purely an optimization.
type IndexScanNode struct {
	Table  string
	Alias  string
	Column string // the indexed column
	Via    string // "primary key" or "index <name>"
	Val    Value  // the equality literal

	col  int // column position in the table
	cols []string
}

// Label implements PlanNode.
func (n *IndexScanNode) Label() string {
	return fmt.Sprintf("Index Scan on %s using %s (%s = %s)",
		n.Table, n.Via, n.Column, n.Val.SQLLiteral())
}

// Children implements PlanNode.
func (n *IndexScanNode) Children() []PlanNode { return nil }

func (n *IndexScanNode) staticCols() []string { return n.cols }

func (n *IndexScanNode) run(s *Session, outer *Env) (*rowSet, error) {
	t, ok := s.engine.Table(n.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: n.Table}
	}
	ids, usable := t.lookupEq(n.col, n.Val)
	if !usable {
		// The access path disappeared between plan and execution (e.g. a
		// replan against a changed catalog); fall back to a full scan.
		return s.scanTable(n.Table, n.Alias)
	}
	rs := &rowSet{cols: n.cols, rows: make([][]Value, 0, len(ids))}
	// Preserve insertion order for determinism.
	sorted := append([]int64{}, ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	want := n.Val.Key()
	for _, id := range sorted {
		e, ok := t.byID[id]
		if !ok {
			continue
		}
		// Buckets cover whole version chains; emit only rows whose version
		// visible to this statement's snapshot actually holds the value.
		if v := e.visible(s.curView); v != nil && v.vals[n.col].Key() == want {
			rs.rows = append(rs.rows, v.vals)
		}
	}
	s.engine.scanRowsVisited.Add(int64(len(rs.rows)))
	return rs, nil
}

// IndexRangeScanNode reads the rows whose indexed column falls within a
// range, in column order, through the ordered face of an index or the
// single-column primary key. Like the equality scan, consumed conjuncts are
// re-checked by the enclosing FilterNode, so the bounds are purely a
// row-count reduction — except that emission ORDER (and the Top-K cutoff,
// when MaxRows is set) is a promise the executor relies on when the plan
// skips its sort stage.
type IndexRangeScanNode struct {
	Table  string
	Alias  string
	Column string // the ordered column
	Via    string // "primary key" or "index <name>"
	Lo, Hi *Value // nil = unbounded on that side
	LoIncl bool
	HiIncl bool
	Desc   bool   // emit in descending column order
	Order  string // non-empty when the scan order serves ORDER BY (label text)
	// CoversFilter is true when every conjunct pushed onto this scan is
	// implied by the bounds, i.e. the enclosing filter is a pure re-check
	// that passes every emitted row. Only then may LIMIT be fused.
	CoversFilter bool
	// MaxRows > 0 stops the scan after that many rows (Top-K: LIMIT+OFFSET
	// fused into the ordered scan). 0 means unlimited.
	MaxRows int

	col  int // column position in the table
	cols []string
}

// Label implements PlanNode.
func (n *IndexRangeScanNode) Label() string {
	target := n.Table
	if n.Alias != "" && !strings.EqualFold(n.Alias, n.Table) {
		target = n.Table + " as " + n.Alias
	}
	s := fmt.Sprintf("Index Range Scan on %s using %s", target, n.Via)
	if cond := n.condString(); cond != "" {
		s += " (" + cond + ")"
	}
	if n.Order != "" {
		s += " order: " + n.Order
	}
	return s
}

// condString renders the bound conjunction ("grp >= 3 AND grp <= 17").
func (n *IndexRangeScanNode) condString() string {
	var parts []string
	if n.Lo != nil {
		op := ">"
		if n.LoIncl {
			op = ">="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", n.Column, op, n.Lo.SQLLiteral()))
	}
	if n.Hi != nil {
		op := "<"
		if n.HiIncl {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", n.Column, op, n.Hi.SQLLiteral()))
	}
	return strings.Join(parts, " AND ")
}

// Children implements PlanNode.
func (n *IndexRangeScanNode) Children() []PlanNode { return nil }

func (n *IndexRangeScanNode) staticCols() []string { return n.cols }

// withNulls reports whether NULL rows belong in the emission: only for
// unbounded ordered scans serving a sort (bounded scans exclude them, and
// the range conjunct in the enclosing filter drops them anyway).
func (n *IndexRangeScanNode) withNulls() bool {
	return n.Lo == nil && n.Hi == nil && n.Order != ""
}

// inBounds replays the bound checks against one row value, mirroring the
// ordered structure's emission: NULLs pass only when the scan emits them.
func (n *IndexRangeScanNode) inBounds(v Value) bool {
	if v.IsNull() {
		return n.withNulls()
	}
	if n.Lo != nil {
		c := orderCompare(v, *n.Lo)
		if c < 0 || (c == 0 && !n.LoIncl) {
			return false
		}
	}
	if n.Hi != nil {
		c := orderCompare(v, *n.Hi)
		if c > 0 || (c == 0 && !n.HiIncl) {
			return false
		}
	}
	return true
}

func (n *IndexRangeScanNode) run(s *Session, outer *Env) (*rowSet, error) {
	t, ok := s.engine.Table(n.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: n.Table}
	}
	hits, usable := t.lookupRange(s.curView, n.col, n.Lo, n.Hi, n.LoIncl, n.HiIncl, n.Desc, n.withNulls(), n.MaxRows)
	if !usable {
		// Stale plan: the ordered structure disappeared since planning. Fall
		// back to a full scan, applying the bounds (the plan may have elided
		// its re-check filter) and re-sorting when the plan promised an
		// order. Only the MaxRows cutoff is skipped, which over- rather than
		// under-produces; LIMIT/OFFSET still apply downstream.
		rs, err := s.scanTable(n.Table, n.Alias)
		if err != nil {
			return nil, err
		}
		kept := rs.rows[:0]
		for _, row := range rs.rows {
			if n.inBounds(row[n.col]) {
				kept = append(kept, row)
			}
		}
		rs.rows = kept
		if n.Order == "" {
			return rs, nil
		}
		sort.SliceStable(rs.rows, func(i, j int) bool {
			c, null := compareForOrder(rs.rows[i][n.col], rs.rows[j][n.col], n.Desc)
			if null || c == 0 {
				return false
			}
			if n.Desc {
				return c > 0
			}
			return c < 0
		})
		return rs, nil
	}
	rs := &rowSet{cols: n.cols, rows: make([][]Value, 0, len(hits))}
	for _, h := range hits {
		rs.rows = append(rs.rows, h.v.vals)
	}
	s.engine.scanRowsVisited.Add(int64(len(rs.rows)))
	return rs, nil
}

// FilterNode discards input rows that do not satisfy Cond.
type FilterNode struct {
	Cond  Expr
	Input SourceNode
}

// Label implements PlanNode.
func (n *FilterNode) Label() string { return "Filter: " + n.Cond.String() }

// Children implements PlanNode.
func (n *FilterNode) Children() []PlanNode { return []PlanNode{n.Input} }

func (n *FilterNode) staticCols() []string { return n.Input.staticCols() }

func (n *FilterNode) run(s *Session, outer *Env) (*rowSet, error) {
	// Fuse filter into a parallel scan: visibility check and predicate run
	// in the same morsel pass, so filtered rows never materialize.
	if scan, ok := n.Input.(*SeqScanNode); ok && scan.Workers > 0 && outer == nil {
		if rs, handled, err := s.parScanFilter(scan, n.Cond); handled {
			return rs, err
		}
	}
	src, err := s.runSource(n.Input, outer)
	if err != nil {
		return nil, err
	}
	return s.applyFilter(n.Cond, src, outer)
}

// Join strategies reported in EXPLAIN output.
const (
	JoinStrategyHash   = "Hash Join"
	JoinStrategyNested = "Nested Loop"
)

// JoinNode combines two sources. Strategy is chosen at plan time when both
// input column sets are statically known; otherwise the executor falls back
// to the run-time choice (hash for inner equi-joins, nested loop otherwise).
type JoinNode struct {
	Kind     JoinKind
	On       Expr // nil for cross joins
	Strategy string
	Left     SourceNode
	Right    SourceNode

	cols []string
}

// Label implements PlanNode.
func (n *JoinNode) Label() string {
	strat := n.Strategy
	if strat == "" {
		// Inputs with run-time column sets (views): the executor picks the
		// strategy when it sees the columns, so the plan cannot promise one.
		strat = "Join"
	}
	kind := "inner"
	switch n.Kind {
	case JoinLeft:
		kind = "left"
	case JoinCross, JoinNone:
		kind = "cross"
	}
	if n.On == nil {
		return fmt.Sprintf("%s (%s)", strat, kind)
	}
	return fmt.Sprintf("%s (%s) on %s", strat, kind, n.On.String())
}

// Children implements PlanNode.
func (n *JoinNode) Children() []PlanNode { return []PlanNode{n.Left, n.Right} }

func (n *JoinNode) staticCols() []string { return n.cols }

func (n *JoinNode) run(s *Session, outer *Env) (*rowSet, error) {
	left, err := s.runSource(n.Left, outer)
	if err != nil {
		return nil, err
	}
	right, err := s.runSource(n.Right, outer)
	if err != nil {
		return nil, err
	}
	ref := TableRef{JoinKind: n.Kind, On: n.On}
	return s.joinSets(left, right, ref, outer)
}

// resultNode is the leaf for FROM-less SELECTs.
type resultNode struct{}

func (resultNode) Label() string        { return "Result" }
func (resultNode) Children() []PlanNode { return nil }

// displayNode renders a pipeline stage (project, sort, ...) that the
// SelectPlan executes itself.
type displayNode struct {
	label string
	child PlanNode
}

func (d *displayNode) Label() string { return d.label }
func (d *displayNode) Children() []PlanNode {
	if d.child == nil {
		return nil
	}
	return []PlanNode{d.child}
}

// SelectPlan is the executable plan for one SELECT: a source tree producing
// the working relation, a residual predicate that could not be pushed into
// the sources, and the statement that drives the projection/aggregation
// pipeline above them.
type SelectPlan struct {
	Stmt     *SelectStmt
	Source   SourceNode // nil for FROM-less SELECT
	Residual Expr       // nil when fully pushed down (or no WHERE)
	// SortPushed is true when the source emits rows already in ORDER BY
	// order (an ordered index scan); the executor skips its sort stage.
	SortPushed bool
	// TopK is true when LIMIT/OFFSET is additionally fused into the ordered
	// scan (MaxRows on the range scan node): the scan stops after
	// offset+limit rows instead of materializing the table. The plan's
	// limit stage still runs — it slices off the OFFSET prefix.
	TopK bool
}

// Tree returns the plan as a display tree, outermost operator first.
func (p *SelectPlan) Tree() PlanNode {
	var node PlanNode
	if p.Source == nil {
		node = resultNode{}
	} else {
		node = p.Source
	}
	if p.Residual != nil {
		node = &displayNode{label: "Filter: " + p.Residual.String(), child: node}
	}
	st := p.Stmt
	if len(st.GroupBy) > 0 || selectHasAggregate(st) {
		label := "Aggregate"
		if len(st.GroupBy) > 0 {
			keys := make([]string, len(st.GroupBy))
			for i, g := range st.GroupBy {
				keys[i] = g.String()
			}
			label += " (group by: " + strings.Join(keys, ", ") + ")"
		}
		if st.Having != nil {
			label += " having " + st.Having.String()
		}
		node = &displayNode{label: label, child: node}
	}
	node = &displayNode{label: "Project: " + projectLabel(st.Items), child: node}
	if st.Distinct {
		node = &displayNode{label: "Distinct", child: node}
	}
	if len(st.OrderBy) > 0 && !p.SortPushed {
		keys := make([]string, len(st.OrderBy))
		for i, k := range st.OrderBy {
			keys[i] = k.Expr.String()
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		node = &displayNode{label: "Sort: " + strings.Join(keys, ", "), child: node}
	}
	if p.TopK {
		// Sort and limit both execute inside the ordered scan: the index
		// supplies the order and MaxRows stops it after offset+limit rows.
		label := "Top-K (limit " + st.Limit.String()
		if st.Offset != nil {
			label += " offset " + st.Offset.String()
		}
		label += "): " + orderKeyLabel(st.OrderBy[0])
		node = &displayNode{label: label, child: node}
	} else if st.Limit != nil || st.Offset != nil {
		label := "Limit"
		if st.Limit != nil {
			label += " " + st.Limit.String()
		}
		if st.Offset != nil {
			label += " offset " + st.Offset.String()
		}
		node = &displayNode{label: label, child: node}
	}
	return node
}

// orderKeyLabel renders one ORDER BY key for plan labels.
func orderKeyLabel(k OrderKey) string {
	s := k.Expr.String()
	if k.Desc {
		s += " DESC"
	}
	return s
}

func projectLabel(items []SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		switch {
		case it.Star && it.Table != "":
			parts[i] = it.Table + ".*"
		case it.Star:
			parts[i] = "*"
		case it.Alias != "":
			parts[i] = it.Expr.String() + " AS " + it.Alias
		default:
			parts[i] = it.Expr.String()
		}
	}
	return strings.Join(parts, ", ")
}

// WritePlan is the executable row-matching plan for one UPDATE or DELETE:
// an access path that locates candidate rows plus the full WHERE recheck.
// EXPLAIN renders its Tree() and the executor fetches rows through the same
// Access node, so the displayed access path is by construction the one that
// executes.
type WritePlan struct {
	Table  string
	Access SourceNode // *SeqScanNode, *IndexScanNode, or *IndexRangeScanNode
	Where  Expr       // full predicate; the index covers one conjunct of it
}

// Tree returns the plan as a display tree (below the "Update on t" header).
func (p *WritePlan) Tree() PlanNode {
	var node PlanNode = p.Access
	if p.Where != nil {
		node = &displayNode{label: "Filter: " + p.Where.String(), child: node}
	}
	return node
}

// matchEntries resolves the rows the access path selects, the statement's
// snapshot sees, and the WHERE clause accepts. Like SELECT index scans, the
// index path re-checks the full predicate against the visible version, so
// the access path is purely a row-count reduction. Every inspected row is
// counted in the engine's dmlRowsVisited. Write-write conflict detection
// happens later, per row, in the UPDATE/DELETE executors.
func (p *WritePlan) matchEntries(s *Session) ([]*rowEntry, error) {
	if a := s.analyze; a != nil {
		// EXPLAIN ANALYZE: attribute the rows this matching pass inspects to
		// the access-path node. The engine-wide counter delta is exact here
		// because the statement holds this table's write lock; concurrent
		// DML on other tables could in principle inflate it, which is
		// acceptable for a diagnostic annotation.
		start := time.Now()
		before := s.engine.dmlRowsVisited.Load()
		defer func() {
			a.note(p.Access, int(s.engine.dmlRowsVisited.Load()-before), time.Since(start))
		}()
	}
	t, ok := s.engine.Table(p.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: p.Table}
	}
	envCols := tableEnvCols(t)
	keep := func(v *rowVersion) (bool, error) {
		if p.Where == nil {
			return true, nil
		}
		env := &Env{cols: envCols, vals: v.vals, sess: s}
		ev, err := p.Where.Eval(env)
		if err != nil {
			return false, err
		}
		return !ev.IsNull() && ev.Truthy(), nil
	}

	// Index access paths (equality bucket or ordered range) reduce the
	// candidate set before the per-row WHERE re-check.
	var hits []rowHit
	usable := false
	switch ix := p.Access.(type) {
	case *IndexScanNode:
		var ids []int64
		if ids, usable = t.lookupEq(ix.col, ix.Val); usable {
			// Preserve insertion order for determinism.
			sorted := append([]int64{}, ids...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			want := ix.Val.Key()
			for _, id := range sorted {
				e, live := t.byID[id]
				if !live {
					continue
				}
				if v := e.visible(s.curView); v != nil && v.vals[ix.col].Key() == want {
					hits = append(hits, rowHit{e: e, v: v})
				}
			}
		}
	case *IndexRangeScanNode:
		hits, usable = t.lookupRange(s.curView, ix.col, ix.Lo, ix.Hi, ix.LoIncl, ix.HiIncl, false, false, 0)
		if usable {
			// Write matching has no ordering contract; restore insertion
			// order so UPDATE/DELETE touch rows deterministically.
			sort.Slice(hits, func(i, j int) bool { return hits[i].e.id < hits[j].e.id })
		}
	}
	if usable {
		var out []*rowEntry
		for _, h := range hits {
			s.engine.dmlRowsVisited.Add(1)
			ok, err := keep(h.v)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, h.e)
			}
		}
		return out, nil
	}
	// Either a seq-scan plan, or the access path disappeared between plan
	// and execution (stale cached plan against a changed catalog); fall
	// back to a full scan.

	var out []*rowEntry
	var evalErr error
	_ = t.visibleRows(s.curView, func(e *rowEntry, v *rowVersion) error {
		if evalErr != nil {
			return nil
		}
		s.engine.dmlRowsVisited.Add(1)
		ok, err := keep(v)
		if err != nil {
			evalErr = err
			return nil
		}
		if ok {
			out = append(out, e)
		}
		return nil
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// Plan is a planned statement, ready to explain or execute.
type Plan struct {
	stmt   Stmt
	sel    *SelectPlan // non-nil for SELECT
	write  *WritePlan  // non-nil for UPDATE/DELETE
	root   PlanNode
	header string // extra first line for DML plans ("Insert on t ...")
}

// Root returns the top plan node.
func (p *Plan) Root() PlanNode { return p.root }

// Select returns the SELECT pipeline plan, or nil for non-SELECT statements.
func (p *Plan) Select() *SelectPlan { return p.sel }

// Write returns the UPDATE/DELETE row-matching plan, or nil.
func (p *Plan) Write() *WritePlan { return p.write }

// Explain renders the plan tree, one operator per line, indented by depth.
func (p *Plan) Explain() string {
	var lines []string
	if p.header != "" {
		lines = append(lines, p.header)
	}
	var walk func(n PlanNode, depth int)
	walk = func(n PlanNode, depth int) {
		indent := strings.Repeat("  ", depth)
		prefix := ""
		if depth > 0 || p.header != "" {
			prefix = "-> "
		}
		lines = append(lines, indent+prefix+n.Label())
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	if p.root != nil {
		depth := 0
		if p.header != "" {
			depth = 1
		}
		walk(p.root, depth)
	}
	return strings.Join(lines, "\n")
}

// ExplainRows renders the plan as a one-column result set, the shape EXPLAIN
// statements return.
func (p *Plan) ExplainRows() *Result {
	text := p.Explain()
	res := &Result{Columns: []string{"QUERY PLAN"}}
	for _, line := range strings.Split(text, "\n") {
		res.Rows = append(res.Rows, []Value{NewText(line)})
	}
	return res
}
