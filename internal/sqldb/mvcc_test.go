package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bridgescope/internal/sqldb/vfs"
)

func mvccEngine(t *testing.T) (*Engine, *Session) {
	t.Helper()
	e := NewEngine("mvcc")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, bal INT)`)
	s.MustExec(`CREATE INDEX idx_owner ON accounts (owner)`)
	s.MustExec(`INSERT INTO accounts VALUES (1, 'ada', 100), (2, 'bob', 200), (3, 'cyd', 300)`)
	return e, s
}

// TestNoDirtyRead: another session's uncommitted writes are invisible on
// every read path — seq scan, PK/index equality lookup, and ordered range
// scan.
func TestNoDirtyRead(t *testing.T) {
	e, writer := mvccEngine(t)
	reader := e.NewSession("root")

	writer.MustExec(`BEGIN`)
	writer.MustExec(`UPDATE accounts SET bal = 999 WHERE id = 1`)
	writer.MustExec(`INSERT INTO accounts VALUES (4, 'dan', 400)`)
	writer.MustExec(`DELETE FROM accounts WHERE id = 3`)

	if got := reader.MustExec(`SELECT SUM(bal) FROM accounts`).Rows[0][0].I; got != 600 {
		t.Fatalf("seq scan saw dirty data: sum = %d, want 600", got)
	}
	if got := reader.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 100 {
		t.Fatalf("PK lookup saw dirty update: %d", got)
	}
	if rows := reader.MustExec(`SELECT id FROM accounts WHERE owner = 'dan'`).Rows; len(rows) != 0 {
		t.Fatalf("index lookup saw dirty insert: %v", rows)
	}
	if rows := reader.MustExec(`SELECT id FROM accounts WHERE id >= 1 ORDER BY id`).Rows; len(rows) != 3 {
		t.Fatalf("range scan saw dirty rows: %v", rows)
	}

	writer.MustExec(`COMMIT`)
	if got := reader.MustExec(`SELECT SUM(bal) FROM accounts`).Rows[0][0].I; got != 999+200+400 {
		t.Fatalf("committed data not visible after commit: %d", got)
	}
}

// TestNoNonRepeatableRead: a snapshot-isolation transaction re-reads the
// same values even after a concurrent commit; a fresh statement outside the
// transaction sees the new state.
func TestNoNonRepeatableRead(t *testing.T) {
	e, writer := mvccEngine(t)
	reader := e.NewSession("root")

	reader.MustExec(`BEGIN`)
	if got := reader.MustExec(`SELECT bal FROM accounts WHERE id = 2`).Rows[0][0].I; got != 200 {
		t.Fatalf("first read: %d", got)
	}
	writer.MustExec(`UPDATE accounts SET bal = 42 WHERE id = 2`)

	// Same transaction: still the snapshot value, on every access path.
	if got := reader.MustExec(`SELECT bal FROM accounts WHERE id = 2`).Rows[0][0].I; got != 200 {
		t.Fatalf("non-repeatable read via PK: %d", got)
	}
	if got := reader.MustExec(`SELECT SUM(bal) FROM accounts`).Rows[0][0].I; got != 600 {
		t.Fatalf("non-repeatable read via seq scan: %d", got)
	}
	reader.MustExec(`COMMIT`)

	if got := reader.MustExec(`SELECT bal FROM accounts WHERE id = 2`).Rows[0][0].I; got != 42 {
		t.Fatalf("post-transaction read: %d", got)
	}
}

// TestReadYourOwnWrites: a transaction sees its own uncommitted changes.
func TestReadYourOwnWrites(t *testing.T) {
	_, s := mvccEngine(t)
	s.MustExec(`BEGIN`)
	s.MustExec(`UPDATE accounts SET bal = bal + 1 WHERE id = 1`)
	s.MustExec(`INSERT INTO accounts VALUES (4, 'dan', 7)`)
	s.MustExec(`DELETE FROM accounts WHERE id = 3`)
	if got := s.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 101 {
		t.Fatalf("own update invisible: %d", got)
	}
	if got := s.MustExec(`SELECT COUNT(*) FROM accounts`).Rows[0][0].I; got != 3 {
		t.Fatalf("own insert/delete invisible: %d rows", got)
	}
	s.MustExec(`ROLLBACK`)
	if got := s.MustExec(`SELECT COUNT(*) FROM accounts`).Rows[0][0].I; got != 3 {
		t.Fatalf("rollback did not restore: %d rows", got)
	}
	if got := s.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 100 {
		t.Fatalf("rollback did not restore update: %d", got)
	}
}

// TestWriteWriteConflictPending: two open transactions write the same row;
// exactly the second writer aborts, retryably, and the first commits fine.
func TestWriteWriteConflictPending(t *testing.T) {
	e, _ := mvccEngine(t)
	s1, s2 := e.NewSession("root"), e.NewSession("root")

	s1.MustExec(`BEGIN`)
	s2.MustExec(`BEGIN`)
	s1.MustExec(`UPDATE accounts SET bal = 111 WHERE id = 1`)
	_, err := s2.Exec(`UPDATE accounts SET bal = 222 WHERE id = 1`)
	if !IsRetryable(err) {
		t.Fatalf("second writer error = %v, want retryable conflict", err)
	}
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("conflict not errors.Is(ErrWriteConflict): %v", err)
	}
	if e.WriteConflicts() == 0 {
		t.Fatal("conflict counter did not move")
	}
	if _, err := s1.Exec(`COMMIT`); err != nil {
		t.Fatalf("first writer must win: %v", err)
	}
	s2.MustExec(`ROLLBACK`)
	if got := s2.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 111 {
		t.Fatalf("first committer's value lost: %d", got)
	}
}

// TestFirstCommitterWins: a transaction whose snapshot predates a
// concurrent COMMITTED update of the target row aborts on write.
func TestFirstCommitterWins(t *testing.T) {
	e, writer := mvccEngine(t)
	s := e.NewSession("root")

	s.MustExec(`BEGIN`)
	_ = s.MustExec(`SELECT bal FROM accounts WHERE id = 1`) // snapshot taken
	writer.MustExec(`UPDATE accounts SET bal = 500 WHERE id = 1`)

	_, err := s.Exec(`UPDATE accounts SET bal = bal + 1 WHERE id = 1`)
	if !IsRetryable(err) {
		t.Fatalf("stale-snapshot write = %v, want retryable conflict", err)
	}
	// The transaction is now aborted: further statements are refused...
	if _, err := s.Exec(`SELECT 1`); err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("statement in aborted txn = %v, want aborted error", err)
	}
	// ...and COMMIT rolls back, with the error still classified retryable
	// so retry loops that only observe the commit treat it like the
	// conflict that caused it.
	if _, err := s.Exec(`COMMIT`); !IsRetryable(err) {
		t.Fatalf("COMMIT of aborted txn = %v, want retryable rollback report", err)
	}
	if s.InTransaction() {
		t.Fatal("aborted transaction still open after COMMIT")
	}
	// Retry succeeds with a fresh snapshot; no increment was lost.
	s.MustExec(`BEGIN`)
	s.MustExec(`UPDATE accounts SET bal = bal + 1 WHERE id = 1`)
	s.MustExec(`COMMIT`)
	if got := s.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 501 {
		t.Fatalf("lost update after retry: %d, want 501", got)
	}
}

// TestInsertPKConflictPending: concurrent inserts of the same primary key —
// the second fails retryably while the first is pending, and with a plain
// duplicate-key error once it committed.
func TestInsertPKConflictPending(t *testing.T) {
	e, _ := mvccEngine(t)
	s1, s2 := e.NewSession("root"), e.NewSession("root")

	s1.MustExec(`BEGIN`)
	s1.MustExec(`INSERT INTO accounts VALUES (10, 'eve', 1)`)
	_, err := s2.Exec(`INSERT INTO accounts VALUES (10, 'mal', 2)`)
	if !IsRetryable(err) {
		t.Fatalf("insert against pending PK = %v, want retryable conflict", err)
	}
	s1.MustExec(`COMMIT`)
	_, err = s2.Exec(`INSERT INTO accounts VALUES (10, 'mal', 2)`)
	if err == nil || IsRetryable(err) || !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("insert against committed PK = %v, want duplicate key", err)
	}
}

// TestDeleteThenReinsertPK: a committed DELETE frees the primary key even
// though the old chain is still indexed, and an old snapshot keeps seeing
// the OLD row through the shared PK bucket.
func TestDeleteThenReinsertPK(t *testing.T) {
	e, s := mvccEngine(t)
	old := e.NewSession("root")
	old.MustExec(`BEGIN`) // snapshot with the original row 1

	s.MustExec(`DELETE FROM accounts WHERE id = 1`)
	s.MustExec(`INSERT INTO accounts VALUES (1, 'new-ada', 77)`)

	if got := s.MustExec(`SELECT owner FROM accounts WHERE id = 1`).Rows[0][0].S; got != "new-ada" {
		t.Fatalf("latest state wrong: %q", got)
	}
	// The old snapshot resolves id=1 through the same PK bucket to the old
	// version chain.
	res := old.MustExec(`SELECT owner, bal FROM accounts WHERE id = 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "ada" || res.Rows[0][1].I != 100 {
		t.Fatalf("old snapshot lost the pre-delete row: %+v", res.Rows)
	}
	old.MustExec(`COMMIT`)
}

// TestIndexScanSnapshotCorrectness: updating an indexed column moves the
// row between index buckets for NEW snapshots while OLD snapshots keep
// finding it under the old value — and never under the new one.
func TestIndexScanSnapshotCorrectness(t *testing.T) {
	e, s := mvccEngine(t)
	old := e.NewSession("root")
	old.MustExec(`BEGIN`)

	s.MustExec(`UPDATE accounts SET owner = 'zed' WHERE id = 1`)

	if rows := old.MustExec(`SELECT id FROM accounts WHERE owner = 'ada'`).Rows; len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("old snapshot lost the row under the old indexed value: %v", rows)
	}
	if rows := old.MustExec(`SELECT id FROM accounts WHERE owner = 'zed'`).Rows; len(rows) != 0 {
		t.Fatalf("old snapshot saw the new indexed value: %v", rows)
	}
	if rows := s.MustExec(`SELECT id FROM accounts WHERE owner = 'zed'`).Rows; len(rows) != 1 {
		t.Fatalf("new snapshot missed the row under the new value: %v", rows)
	}
	if rows := s.MustExec(`SELECT id FROM accounts WHERE owner = 'ada'`).Rows; len(rows) != 0 {
		t.Fatalf("new snapshot found the row under the stale value: %v", rows)
	}
	old.MustExec(`COMMIT`)
}

// TestRangeScanSnapshotOrder: an ordered range scan serving ORDER BY emits
// each row at its VISIBLE version's position, in both directions, while a
// concurrent transaction has moved rows around.
func TestRangeScanSnapshotOrder(t *testing.T) {
	e := NewEngine("rangesnap")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, k INT)`)
	s.MustExec(`CREATE INDEX idx_k ON t (k)`)
	for i := 1; i <= 5; i++ {
		s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i*10))
	}
	old := e.NewSession("root")
	old.MustExec(`BEGIN`)

	// Move row 2's key from 20 to 55 and commit.
	s.MustExec(`UPDATE t SET k = 55 WHERE id = 2`)

	// Old snapshot: original keys, original order.
	res := old.MustExec(`SELECT id FROM t WHERE k BETWEEN 15 AND 45 ORDER BY k`)
	var ids []int64
	for _, r := range res.Rows {
		ids = append(ids, r[0].I)
	}
	if fmt.Sprint(ids) != "[2 3 4]" {
		t.Fatalf("old snapshot range order wrong: %v", ids)
	}
	// New snapshot: row 2 now sorts at 55, outside the range.
	res = s.MustExec(`SELECT id FROM t WHERE k BETWEEN 15 AND 45 ORDER BY k DESC`)
	ids = ids[:0]
	for _, r := range res.Rows {
		ids = append(ids, r[0].I)
	}
	if fmt.Sprint(ids) != "[4 3]" {
		t.Fatalf("new snapshot desc range order wrong: %v", ids)
	}
	// Top-K through the ordered index agrees with the snapshot too.
	res = old.MustExec(`SELECT id FROM t ORDER BY k DESC LIMIT 2`)
	ids = ids[:0]
	for _, r := range res.Rows {
		ids = append(ids, r[0].I)
	}
	if fmt.Sprint(ids) != "[5 4]" {
		t.Fatalf("old snapshot Top-K wrong: %v", ids)
	}
	old.MustExec(`COMMIT`)
}

// TestReadCommittedLevel: BEGIN ISOLATION LEVEL READ COMMITTED refreshes
// the snapshot per statement, seeing concurrent commits mid-transaction.
func TestReadCommittedLevel(t *testing.T) {
	e, writer := mvccEngine(t)
	s := e.NewSession("root")
	s.MustExec(`BEGIN ISOLATION LEVEL READ COMMITTED`)
	if got := s.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 100 {
		t.Fatalf("first read: %d", got)
	}
	writer.MustExec(`UPDATE accounts SET bal = 700 WHERE id = 1`)
	if got := s.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 700 {
		t.Fatalf("READ COMMITTED did not refresh: %d", got)
	}
	// And the write does not conflict: the statement snapshot covers the
	// concurrent commit.
	s.MustExec(`UPDATE accounts SET bal = bal + 1 WHERE id = 1`)
	s.MustExec(`COMMIT`)
	if got := s.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 701 {
		t.Fatalf("final: %d", got)
	}
}

// TestBeginIsolationParsing: accepted spellings and rejected ones.
func TestBeginIsolationParsing(t *testing.T) {
	for sql, want := range map[string]IsolationLevel{
		"BEGIN":                                            LevelSnapshot,
		"BEGIN TRANSACTION":                                LevelSnapshot,
		"BEGIN WORK":                                       LevelSnapshot,
		"BEGIN ISOLATION LEVEL SNAPSHOT":                   LevelSnapshot,
		"BEGIN ISOLATION LEVEL REPEATABLE READ":            LevelSnapshot,
		"BEGIN ISOLATION LEVEL SERIALIZABLE":               LevelSnapshot,
		"begin transaction isolation level read committed": LevelReadCommitted,
		"BEGIN ISOLATION LEVEL READ UNCOMMITTED":           LevelReadCommitted, // promoted
	} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		bs, ok := stmt.(*BeginStmt)
		if !ok || bs.Level != want {
			t.Fatalf("%q parsed to %#v, want level %v", sql, stmt, want)
		}
	}
	for _, sql := range []string{
		"BEGIN ISOLATION",
		"BEGIN ISOLATION LEVEL",
		"BEGIN ISOLATION LEVEL BOGUS",
		"BEGIN ISOLATION LEVEL READ",
	} {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("%q: want parse error", sql)
		}
	}
	// The clause words stay usable as identifiers.
	e := NewEngine("kw")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE isolation (level INT PRIMARY KEY, committed TEXT)`)
	s.MustExec(`INSERT INTO isolation VALUES (1, 'yes')`)
	if got := s.MustExec(`SELECT committed FROM isolation WHERE level = 1`).Rows[0][0].S; got != "yes" {
		t.Fatalf("keyword-named columns broken: %q", got)
	}
}

// TestVacuumReclaimsVersions: once no snapshot needs them, superseded
// versions and committed-dead rows are physically reclaimed, including
// their stale index entries.
func TestVacuumReclaimsVersions(t *testing.T) {
	e := NewEngine("vac")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, k TEXT)`)
	s.MustExec(`CREATE INDEX idx_k ON t (k)`)
	s.MustExec(`INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')`)
	// Churn row 1 hard and delete rows 3 and 4: garbage accumulates and the
	// per-commit vacuum threshold (garbage*4 >= rows) trips.
	for i := 0; i < 20; i++ {
		s.MustExec(fmt.Sprintf(`UPDATE t SET k = 'v%d' WHERE id = 1`, i))
	}
	s.MustExec(`DELETE FROM t WHERE id = 3`)
	s.MustExec(`DELETE FROM t WHERE id = 4`)
	s.MustExec(`UPDATE t SET k = 'final' WHERE id = 1`)

	tab, _ := e.Table("t")
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(tab.rows) != 2 {
		t.Fatalf("committed-dead rows not reclaimed: %d entries", len(tab.rows))
	}
	chain := 0
	for v := tab.byID[1].v; v != nil; v = v.prev {
		chain++
	}
	if chain > 2 {
		t.Fatalf("version chain not trimmed: %d versions", chain)
	}
	ix := tab.indexes["k"]
	for key, ids := range ix.m {
		if key != NewText("final").Key() && len(ids) > 0 && ids[0] == 1 {
			// Row 1 may legitimately appear under at most one older value
			// (the surviving chain tail); more means vacuum leaked entries.
			if chain <= 1 {
				t.Fatalf("stale index entry for row 1 under %q", key)
			}
		}
	}
}

// TestVacuumRespectsOldSnapshot: an open transaction's snapshot pins the GC
// horizon; versions it can see survive churn by other sessions.
func TestVacuumRespectsOldSnapshot(t *testing.T) {
	e, s := mvccEngine(t)
	old := e.NewSession("root")
	old.MustExec(`BEGIN`)
	if got := old.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 100 {
		t.Fatalf("setup: %d", got)
	}
	for i := 0; i < 50; i++ {
		s.MustExec(fmt.Sprintf(`UPDATE accounts SET bal = %d WHERE id = 1`, 1000+i))
	}
	if got := old.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 100 {
		t.Fatalf("old snapshot's version vacuumed away: %d", got)
	}
	old.MustExec(`COMMIT`)
	if got := s.MustExec(`SELECT bal FROM accounts WHERE id = 1`).Rows[0][0].I; got != 1049 {
		t.Fatalf("latest value wrong: %d", got)
	}
}

// TestStatementRollbackInTxn: an ordinary mid-statement failure (a PK
// violation on the third row) rolls back just that statement — the
// transaction stays usable, unlike a serialization conflict.
func TestStatementRollbackInTxn(t *testing.T) {
	_, s := mvccEngine(t)
	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO accounts VALUES (5, 'eli', 50)`)
	if _, err := s.Exec(`INSERT INTO accounts VALUES (6, 'fay', 60), (7, 'gus', 70), (1, 'dup', 0)`); err == nil {
		t.Fatal("want PK violation")
	}
	// The failed statement left nothing behind; the earlier one survives.
	if got := s.MustExec(`SELECT COUNT(*) FROM accounts`).Rows[0][0].I; got != 4 {
		t.Fatalf("statement rollback leaked rows: %d", got)
	}
	s.MustExec(`INSERT INTO accounts VALUES (8, 'hal', 80)`)
	s.MustExec(`COMMIT`)
	if got := s.MustExec(`SELECT COUNT(*) FROM accounts`).Rows[0][0].I; got != 5 {
		t.Fatalf("after commit: %d rows", got)
	}
	if rows := s.MustExec(`SELECT id FROM accounts WHERE owner = 'fay'`).Rows; len(rows) != 0 {
		t.Fatalf("rolled-back statement's index entries leaked: %v", rows)
	}
}

// TestMVCCRecoveryRoundTrip: transactions with updates, deletes, and
// rollbacks recover from the version-aware WAL (commit-timestamp records),
// and the commit clock resumes past the replayed history.
func TestMVCCRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	s.MustExec(`INSERT INTO t VALUES (1, 10), (2, 20)`)
	s.MustExec(`BEGIN`)
	s.MustExec(`UPDATE t SET v = 11 WHERE id = 1`)
	s.MustExec(`DELETE FROM t WHERE id = 2`)
	s.MustExec(`COMMIT`)
	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO t VALUES (3, 30)`)
	s.MustExec(`ROLLBACK`)
	s.MustExec(`INSERT INTO t VALUES (4, 40)`)
	want := dumpEngine(e)
	clock := e.lastCommitTS.Load()

	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovery mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if e2.lastCommitTS.Load() == 0 || e2.lastCommitTS.Load() > clock {
		t.Fatalf("commit clock not reconstructed: live %d, recovered %d", clock, e2.lastCommitTS.Load())
	}
	// New commits keep working on the recovered engine.
	s2 := e2.NewSession("root")
	s2.MustExec(`UPDATE t SET v = 41 WHERE id = 4`)
	if got := s2.MustExec(`SELECT v FROM t WHERE id = 4`).Rows[0][0].I; got != 41 {
		t.Fatalf("post-recovery update: %d", got)
	}
	e.Close()
}

// TestMVCCStress hammers one durable engine with concurrent snapshot
// readers, conflicting writers (retrying on serialization failures), and
// checkpoints, then verifies the invariant total and recovery. Run with
// -race in CI.
func TestMVCCStress(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncOff})
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE acct (id INT PRIMARY KEY, bal INT)`)
	const accts = 8
	total := int64(0)
	for i := 0; i < accts; i++ {
		root.MustExec(fmt.Sprintf(`INSERT INTO acct VALUES (%d, 1000)`, i))
		total += 1000
	}

	const readers = 4
	const writers = 3
	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < rounds; i++ {
				from, to := (w+i)%accts, (w+i+1)%accts
				for {
					ok := true
					for _, q := range []string{
						"BEGIN",
						fmt.Sprintf("UPDATE acct SET bal = bal - 5 WHERE id = %d", from),
						fmt.Sprintf("UPDATE acct SET bal = bal + 5 WHERE id = %d", to),
						"COMMIT",
					} {
						if _, err := s.Exec(q); err != nil {
							if IsRetryable(err) {
								_, _ = s.Exec("ROLLBACK")
								ok = false
								break
							}
							errs <- fmt.Errorf("writer %d: %q: %v", w, q, err)
							return
						}
					}
					if ok {
						break
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < rounds*2; i++ {
				res, err := s.Exec("SELECT SUM(bal) FROM acct")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if got := res.Rows[0][0].I; got != total {
					errs <- fmt.Errorf("reader %d saw torn total %d, want %d", r, got, total)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := e.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if got := root.MustExec("SELECT SUM(bal) FROM acct").Rows[0][0].I; got != total {
		t.Fatalf("final total %d, want %d", got, total)
	}
	e.Close()

	e2 := openTestEngine(t, dir, Options{})
	defer e2.Close()
	if got := e2.NewSession("root").MustExec("SELECT SUM(bal) FROM acct").Rows[0][0].I; got != total {
		t.Fatalf("recovered total %d, want %d", got, total)
	}
}

// TestFKPendingParentDelete: a parent DELETE in one open transaction and a
// child INSERT referencing it in another must not both succeed (the orphan
// anomaly); the child insert fails retryably while the delete is pending.
func TestFKPendingParentDelete(t *testing.T) {
	e := NewEngine("fk")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE parent (id INT PRIMARY KEY)`)
	s.MustExec(`CREATE TABLE child (id INT PRIMARY KEY, pid INT REFERENCES parent)`)
	s.MustExec(`INSERT INTO parent VALUES (1)`)

	a, b := e.NewSession("root"), e.NewSession("root")
	a.MustExec(`BEGIN`)
	a.MustExec(`DELETE FROM parent WHERE id = 1`)
	if _, err := b.Exec(`INSERT INTO child VALUES (10, 1)`); !IsRetryable(err) {
		t.Fatalf("child insert against pending parent delete = %v, want retryable", err)
	}
	a.MustExec(`ROLLBACK`)
	// With the delete rolled back the insert succeeds.
	b.MustExec(`INSERT INTO child VALUES (10, 1)`)
}

// TestFKPendingChildInsert: the mirror — a pending (uncommitted) child
// insert makes the parent DELETE fail retryably instead of committing an
// orphan.
func TestFKPendingChildInsert(t *testing.T) {
	e := NewEngine("fk2")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE parent (id INT PRIMARY KEY)`)
	s.MustExec(`CREATE TABLE child (id INT PRIMARY KEY, pid INT REFERENCES parent)`)
	s.MustExec(`INSERT INTO parent VALUES (1)`)

	a, b := e.NewSession("root"), e.NewSession("root")
	a.MustExec(`BEGIN`)
	a.MustExec(`INSERT INTO child VALUES (10, 1)`)
	if _, err := b.Exec(`DELETE FROM parent WHERE id = 1`); !IsRetryable(err) {
		t.Fatalf("parent delete against pending child insert = %v, want retryable", err)
	}
	a.MustExec(`COMMIT`)
	// Now the child is committed: the delete is a plain FK violation.
	if _, err := b.Exec(`DELETE FROM parent WHERE id = 1`); err == nil || IsRetryable(err) {
		t.Fatalf("parent delete with committed child = %v, want FK violation", err)
	}
}

// TestCreateUniqueIndexPendingWrite: CREATE UNIQUE INDEX cannot certify
// uniqueness while another transaction's write on the table is pending.
func TestCreateUniqueIndexPendingWrite(t *testing.T) {
	e := NewEngine("uix")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	s.MustExec(`INSERT INTO t VALUES (1, 5)`)

	a, b := e.NewSession("root"), e.NewSession("root")
	a.MustExec(`BEGIN`)
	a.MustExec(`INSERT INTO t VALUES (2, 5)`) // pending duplicate
	if _, err := b.Exec(`CREATE UNIQUE INDEX uix_v ON t (v)`); !IsRetryable(err) {
		t.Fatalf("CREATE UNIQUE INDEX over pending write = %v, want retryable", err)
	}
	a.MustExec(`COMMIT`)
	if _, err := b.Exec(`CREATE UNIQUE INDEX uix_v ON t (v)`); err == nil || IsRetryable(err) {
		t.Fatalf("CREATE UNIQUE INDEX over committed duplicate = %v, want plain error", err)
	}
	s.MustExec(`DELETE FROM t WHERE id = 2`)
	b.MustExec(`CREATE UNIQUE INDEX uix_v ON t (v)`)
}

// TestReplayFrameWithoutCommitRecord: WAL frames written before the MVCC
// commit-timestamp record (or by other tools) must still replay into rows
// visible to post-recovery snapshots — the clock advances with the default
// stamp instead of leaving rows in the future.
func TestReplayFrameWithoutCommitRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := newWAL(vfs.OS(), dir, SyncAlways, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A legacy-style log: DDL then a row insert, no recCommit anywhere.
	if err := w.commit([][]byte{encodeDDLRec("CREATE TABLE legacy (id INT PRIMARY KEY, v TEXT)", 1)}).wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.commit([][]byte{encodeInsertRec("legacy", 1, 1, []Value{NewInt(1), NewText("old")})}).wait(); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	e := openTestEngine(t, dir, Options{})
	defer e.Close()
	s := e.NewSession("root")
	res := s.MustExec(`SELECT v FROM legacy WHERE id = 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "old" {
		t.Fatalf("legacy frame invisible after replay: %+v", res.Rows)
	}
	// The engine keeps working on top of the replayed history.
	s.MustExec(`UPDATE legacy SET v = 'new' WHERE id = 1`)
	if got := s.MustExec(`SELECT v FROM legacy WHERE id = 1`).Rows[0][0].S; got != "new" {
		t.Fatalf("post-replay update: %q", got)
	}
}
