package sqldb

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// lockManager shards the old engine-wide writeMu into per-table write locks.
//
// Two levels:
//
//   - global: DDL, grants, and transaction control (BEGIN/COMMIT/ROLLBACK)
//     take the global lock exclusively — they touch the catalog or span an
//     unknown set of tables, so they must exclude every other writer.
//   - tables: plain DML takes the global lock in shared mode (excluding DDL,
//     which keeps the catalog stable) plus one mutex per table the statement
//     may touch. Table locks are always acquired in sorted name order, so
//     two statements with overlapping lock sets cannot deadlock.
//
// Lock ordering: lock-manager locks are always acquired before Engine.mu,
// and table locks only while holding global in shared mode. Engine.mu is
// never held while acquiring lock-manager locks, so there are no cycles.
//
// Table mutexes are created on demand and never removed; the map is bounded
// by the number of distinct table names ever written, which is fine for an
// in-memory engine. A sync.Map keeps the steady-state lookup lock-free —
// a plain map guarded by one mutex would reintroduce a global serialization
// point on every DML statement, which is exactly what the sharding removes.
type lockManager struct {
	global sync.RWMutex

	tables sync.Map // table name -> *sync.Mutex

	// globalOnly routes every writer through the global lock, restoring the
	// pre-sharding single-writeMu behavior. Benchmarks use it as a baseline.
	globalOnly atomic.Bool

	tableAcquires  atomic.Int64
	globalAcquires atomic.Int64
	curWriters     atomic.Int64
	maxWriters     atomic.Int64
}

// lockAll takes the exclusive all-tables lock and returns the unlock func.
func (lm *lockManager) lockAll() func() {
	lm.global.Lock() //sqlvet:ignore lockbalance -- returns holding the lock by contract; the returned func is the unlock
	lm.globalAcquires.Add(1)
	return lm.global.Unlock
}

// tableLock returns the mutex for one table, creating it on first use.
func (lm *lockManager) tableLock(name string) *sync.Mutex {
	if l, ok := lm.tables.Load(name); ok {
		return l.(*sync.Mutex)
	}
	l, _ := lm.tables.LoadOrStore(name, &sync.Mutex{})
	return l.(*sync.Mutex)
}

// noteLocked updates the acquisition counters once a statement holds all its
// table locks.
func (lm *lockManager) noteLocked(n int) {
	lm.tableAcquires.Add(int64(n))
	cur := lm.curWriters.Add(1)
	for {
		max := lm.maxWriters.Load()
		if cur <= max || lm.maxWriters.CompareAndSwap(max, cur) {
			break
		}
	}
}

// lockNamed acquires the per-table mutexes for the given sorted, lower-cased
// names. The caller must hold the global lock in shared mode. Single-table
// statements (the common case) skip the lock-slice allocation.
func (lm *lockManager) lockNamed(names []string) func() {
	if len(names) == 1 {
		l := lm.tableLock(names[0])
		l.Lock() //sqlvet:ignore lockbalance -- returns holding the table lock; the returned closure unlocks
		lm.noteLocked(1)
		return func() {
			lm.curWriters.Add(-1)
			l.Unlock()
		}
	}
	locks := make([]*sync.Mutex, 0, len(names))
	for _, n := range names {
		locks = append(locks, lm.tableLock(n))
	}
	for _, l := range locks {
		l.Lock() //sqlvet:ignore lockbalance -- returns holding the sorted table locks; the returned closure unlocks in reverse
	}
	lm.noteLocked(len(locks))
	return func() {
		lm.curWriters.Add(-1)
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].Unlock()
		}
	}
}

// LockStats reports write-lock activity; benchmarks and tests use it to
// verify that disjoint-table writers genuinely overlap.
type LockStats struct {
	// TableAcquires counts individual table-lock acquisitions by DML.
	TableAcquires int64
	// GlobalAcquires counts exclusive all-tables acquisitions (DDL, grants,
	// transaction control, and DML while the global-only fallback is on).
	GlobalAcquires int64
	// MaxConcurrentWriters is the high-water mark of DML statements holding
	// table locks at the same time.
	MaxConcurrentWriters int64
}

// LockStats returns a snapshot of the engine's write-lock counters.
func (e *Engine) LockStats() LockStats {
	return LockStats{
		TableAcquires:        e.locks.tableAcquires.Load(),
		GlobalAcquires:       e.locks.globalAcquires.Load(),
		MaxConcurrentWriters: e.locks.maxWriters.Load(),
	}
}

// SetGlobalWriteLock toggles the single-global-lock fallback in which every
// mutating statement serializes on one lock, as before the per-table lock
// manager existed. Benchmarks use it to measure the sharding win.
func (e *Engine) SetGlobalWriteLock(on bool) {
	e.locks.globalOnly.Store(on)
}

// lockForWrite acquires the write-side locks for one mutating statement and
// returns the unlock func. DML locks exactly the tables it may touch; every
// other statement kind (DDL, grants, transaction control) takes the
// exclusive all-tables lock.
func (e *Engine) lockForWrite(stmt Stmt) func() {
	return e.lockForWriteNames(stmt, nil)
}

// lockForWriteNames is lockForWrite with an optional precomputed lock set.
// Plan-cache entries carry their lock names so cache hits skip the catalog
// walk; names must have come from writeLockNames at the entry's catalog
// version. Locking a stale set is harmless — the version check after the
// locks are held discards the entry before it executes anything.
func (e *Engine) lockForWriteNames(stmt Stmt, names []string) func() {
	// EXPLAIN ANALYZE executes its inner statement, so it locks exactly as
	// that statement would.
	if ex, ok := stmt.(*ExplainStmt); ok && ex.Analyze {
		stmt = ex.Stmt
	}
	lm := &e.locks
	start := time.Now()
	switch stmt.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt:
		if lm.globalOnly.Load() {
			unlock := lm.lockAll()
			e.metrics.lockWait.Observe(time.Since(start))
			return unlock
		}
		lm.global.RLock() //sqlvet:ignore lockbalance -- shared global held until the returned closure runs
		if names == nil {
			names = e.writeLockNames(stmt)
		}
		inner := lm.lockNamed(names)
		e.metrics.lockWait.Observe(time.Since(start))
		return func() {
			inner()
			lm.global.RUnlock()
		}
	}
	unlock := lm.lockAll()
	e.metrics.lockWait.Observe(time.Since(start))
	return unlock
}

// writeLockNames computes the deterministic (sorted, lower-cased, deduped)
// set of tables a DML statement may read or write: every referenced table
// with views expanded to their underlying tables, tables read by subqueries
// anywhere in the statement, plus the target table's foreign-key parents and
// children, whose rows the constraint checks inspect. The caller holds the
// lock manager's global lock in shared mode, which excludes DDL, so the
// catalog is stable while we walk it.
func (e *Engine) writeLockNames(stmt Stmt) []string {
	if ex, ok := stmt.(*ExplainStmt); ok && ex.Analyze {
		stmt = ex.Stmt
	}
	seen := make(map[string]bool)
	var names []string
	var add func(name string)
	add = func(name string) {
		lo := strings.ToLower(name)
		if lo == "" || seen[lo] {
			return
		}
		seen[lo] = true
		if v, ok := e.views[lo]; ok {
			for _, ref := range ReferencedTables(v.Query) {
				add(ref)
			}
			return // a view owns no rows of its own
		}
		names = append(names, lo)
	}
	for _, t := range ReferencedTables(stmt) {
		add(t)
	}
	// ReferencedTables covers WHERE subqueries; SET and VALUES expressions
	// can also hold scalar subqueries that read other tables.
	var exprs []Expr
	switch st := stmt.(type) {
	case *InsertStmt:
		for _, row := range st.Rows {
			exprs = append(exprs, row...)
		}
	case *UpdateStmt:
		for _, set := range st.Set {
			exprs = append(exprs, set.Expr)
		}
	}
	for _, ex := range exprs {
		for _, t := range subqueryTables(ex) {
			add(t)
		}
	}
	if t, ok := e.Table(mainTable(stmt)); ok {
		for _, fk := range t.ForeignKeys {
			add(fk.ParentTable)
		}
		for _, cf := range e.childFKs(t.Name) {
			add(cf.table.Name)
		}
	}
	sort.Strings(names)
	return names
}
