package sqldb

import (
	"fmt"
	"strings"
)

// execInsert validates and appends rows. All constraint checks (types,
// NOT NULL, PK/UNIQUE, foreign keys) run per row; a failure aborts the whole
// statement via the statement undo scope.
func (s *Session) execInsert(st *InsertStmt) (*Result, error) {
	t, ok := s.engine.Table(st.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: st.Table}
	}
	// Resolve target column positions.
	var target []int
	if len(st.Columns) == 0 {
		target = make([]int, len(t.Columns))
		for i := range t.Columns {
			target[i] = i
		}
	} else {
		for _, c := range st.Columns {
			i := t.ColIndex(c)
			if i < 0 {
				return nil, &NotFoundError{Kind: "column", Name: st.Table + "." + c}
			}
			target = append(target, i)
		}
	}
	inserted := 0
	for _, rowExprs := range st.Rows {
		if len(rowExprs) != len(target) {
			return nil, fmt.Errorf("INSERT has %d values but %d columns", len(rowExprs), len(target))
		}
		vals := make([]Value, len(t.Columns))
		assigned := make([]bool, len(t.Columns))
		rowEnv := &Env{sess: s}
		for i, e := range rowExprs {
			v, err := e.Eval(rowEnv)
			if err != nil {
				return nil, err
			}
			vals[target[i]] = v
			assigned[target[i]] = true
		}
		for i := range vals {
			if !assigned[i] {
				if t.Columns[i].Default != nil {
					dv, err := t.Columns[i].Default.Eval(nil)
					if err != nil {
						return nil, err
					}
					vals[i] = dv
				} else {
					vals[i] = Null()
				}
			}
		}
		if err := s.checkRowConstraints(t, vals, nil); err != nil {
			return nil, err
		}
		// Version installation is the only part readers must not observe
		// half-done; everything above ran outside the engine write lock.
		s.engine.mu.Lock()
		e := t.insertEntry(vals, s.writerTxn())
		s.engine.mu.Unlock()
		s.record(undoOp{kind: undoInsert, table: t, entry: e, ver: e.v})
		s.redoInsert(t, e)
		inserted++
	}
	return &Result{Affected: inserted, Message: fmt.Sprintf("INSERT 0 %d", inserted)}, nil
}

// keyState classifies whether entry e "holds" a matching row from the
// write perspective of txn — the shared MVCC classifier behind unique/PK
// checks and both directions of FK enforcement. taken: the latest
// committed-or-own version matches (and is not being deleted by someone
// else). pending: a matching version was created or delete-stamped by
// another still-open transaction, so that transaction's outcome decides
// and the statement must fail retryably rather than guess.
func keyState(e *rowEntry, txn *Txn, match func([]Value) bool) (taken, pending bool) {
	if wv := e.visible(latestView(txn)); wv != nil && match(wv.vals) {
		if wv.xmaxTxn != nil && wv.xmaxTxn != txn {
			return false, true // deleted by an open transaction; may roll back
		}
		return true, false
	}
	for v := e.v; v != nil; v = v.prev {
		if !match(v.vals) {
			continue
		}
		if (v.xminTxn != nil && v.xminTxn != txn) || (v.xmaxTxn != nil && v.xmaxTxn != txn) {
			return false, true
		}
	}
	return false, false
}

// checkRowConstraints validates a candidate row. self is non-nil for
// updates, to exclude the row being replaced from uniqueness checks.
func (s *Session) checkRowConstraints(t *Table, vals []Value, self *rowEntry) error {
	// Types + NOT NULL.
	for i, c := range t.Columns {
		cv, err := CoerceTo(vals[i], c.Type)
		if err != nil {
			return fmt.Errorf("column %q: %w", c.Name, err)
		}
		vals[i] = cv
		if cv.IsNull() && (c.NotNull || c.PrimaryKey || contains(t.PrimaryKey, c.Name)) {
			return fmt.Errorf("null value in column %q of table %q violates not-null constraint", c.Name, t.Name)
		}
	}
	// Primary key uniqueness. Buckets cover whole version chains, so each
	// candidate is resolved against the latest committed state (plus this
	// transaction's own writes); a key held only by another transaction's
	// uncommitted insert or delete fails retryably.
	txn := s.writerTxn()
	if t.pkMap != nil {
		k := t.pkKey(vals)
		for _, id := range t.pkMap[k] {
			if self != nil && id == self.id {
				continue
			}
			e := t.byID[id]
			if e == nil {
				continue
			}
			taken, pending := keyState(e, txn, func(vv []Value) bool { return t.pkKey(vv) == k })
			if taken {
				return fmt.Errorf("duplicate key value violates primary key constraint on table %q", t.Name)
			}
			if pending {
				return &SerializationError{Table: t.Name}
			}
		}
	}
	// UNIQUE columns (auto-indexed at table creation).
	for _, ix := range t.indexes {
		if !ix.Unique {
			continue
		}
		v := vals[ix.col]
		if v.IsNull() {
			continue
		}
		k := v.Key()
		col := ix.col
		for _, id := range ix.m[k] {
			if self != nil && id == self.id {
				continue
			}
			e := t.byID[id]
			if e == nil {
				continue
			}
			taken, pending := keyState(e, txn, func(vv []Value) bool { return vv[col].Key() == k })
			if taken {
				return fmt.Errorf("duplicate key value violates unique constraint on %q.%q", t.Name, ix.Column)
			}
			if pending {
				return &SerializationError{Table: t.Name}
			}
		}
	}
	// Foreign keys: child side must reference an existing parent row.
	for _, fk := range t.ForeignKeys {
		if err := s.checkFKParentExists(t, &fk, vals); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) checkFKParentExists(t *Table, fk *ForeignKey, vals []Value) error {
	parent, ok := s.engine.Table(fk.ParentTable)
	if !ok {
		return &NotFoundError{Kind: "table", Name: fk.ParentTable}
	}
	childVals := make([]Value, len(fk.Columns))
	for i, c := range fk.Columns {
		ci := t.ColIndex(c)
		if ci < 0 {
			return &NotFoundError{Kind: "column", Name: t.Name + "." + c}
		}
		childVals[i] = vals[ci]
		if childVals[i].IsNull() {
			return nil // NULL FK values are always permitted
		}
	}
	parentCols := fk.ParentColumns
	if len(parentCols) == 0 {
		parentCols = parent.PrimaryKey
	}
	if len(parentCols) != len(fk.Columns) {
		return fmt.Errorf("foreign key on %q has mismatched column count", t.Name)
	}
	pIdx := make([]int, len(parentCols))
	for i, c := range parentCols {
		pi := parent.ColIndex(c)
		if pi < 0 {
			return &NotFoundError{Kind: "column", Name: parent.Name + "." + c}
		}
		pIdx[i] = pi
	}
	// FK checks act on the latest committed state plus the writer's own
	// changes, not the statement snapshot: a parent committed moments ago
	// must satisfy the constraint. Another transaction's PENDING write on a
	// candidate parent (an uncommitted insert that would create it, or an
	// uncommitted delete of the one that exists) makes the outcome depend
	// on that transaction — keyState classifies it, and pending fails
	// retryably instead of guessing.
	txn := s.writerTxn()
	match := func(vals []Value) bool {
		for i, pi := range pIdx {
			if !Equal(vals[pi], childVals[i]) {
				return false
			}
		}
		return true
	}
	pendingAny := false
	// Fast path: FK targets the parent's whole primary key.
	if samePKCols(parent, pIdx) {
		var kb strings.Builder
		for _, v := range childVals {
			writeKeySegment(&kb, v)
		}
		for _, id := range parent.pkMap[kb.String()] {
			e := parent.byID[id]
			if e == nil {
				continue
			}
			taken, pending := keyState(e, txn, match)
			if taken {
				return nil
			}
			pendingAny = pendingAny || pending
		}
		if pendingAny {
			return &SerializationError{Table: t.Name}
		}
		return fkViolation(t, fk, childVals)
	}
	for _, e := range parent.rows {
		taken, pending := keyState(e, txn, match)
		if taken {
			return nil
		}
		pendingAny = pendingAny || pending
	}
	if pendingAny {
		return &SerializationError{Table: t.Name}
	}
	return fkViolation(t, fk, childVals)
}

func fkViolation(t *Table, fk *ForeignKey, vals []Value) error {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return fmt.Errorf("insert or update on table %q violates foreign key constraint: key (%s)=(%s) is not present in table %q",
		t.Name, strings.Join(fk.Columns, ", "), strings.Join(parts, ", "), fk.ParentTable)
}

func samePKCols(t *Table, idx []int) bool {
	if t.pkMap == nil || len(idx) != len(t.pkCols) {
		return false
	}
	for i, v := range idx {
		if t.pkCols[i] != v {
			return false
		}
	}
	return true
}

// checkNoChildRefs enforces RESTRICT semantics when deleting or re-keying a
// parent row.
func (s *Session) checkNoChildRefs(parent *Table, parentVals []Value) error {
	for _, cf := range s.engine.childFKs(parent.Name) {
		parentCols := cf.fk.ParentColumns
		if len(parentCols) == 0 {
			parentCols = parent.PrimaryKey
		}
		keyVals := make([]Value, len(parentCols))
		skip := false
		for i, c := range parentCols {
			pi := parent.ColIndex(c)
			if pi < 0 {
				skip = true
				break
			}
			keyVals[i] = parentVals[pi]
		}
		if skip {
			continue
		}
		cIdx := make([]int, len(cf.fk.Columns))
		ok := true
		for i, c := range cf.fk.Columns {
			ci := cf.table.ColIndex(c)
			if ci < 0 {
				ok = false
				break
			}
			cIdx[i] = ci
		}
		if !ok {
			continue
		}
		// A child referencing the key blocks the parent write. A PENDING
		// child — another transaction's uncommitted insert of a reference,
		// or an uncommitted delete of the one that exists — makes the
		// outcome depend on that transaction: keyState classifies it, and
		// pending fails retryably.
		txn := s.writerTxn()
		match := func(vals []Value) bool {
			for i, ci := range cIdx {
				if vals[ci].IsNull() || !Equal(vals[ci], keyVals[i]) {
					return false
				}
			}
			return true
		}
		violated, pending := false, false
		for _, e := range cf.table.rows {
			taken, pend := keyState(e, txn, match)
			if taken {
				violated = true
				break
			}
			pending = pending || pend
		}
		if violated {
			return fmt.Errorf("update or delete on table %q violates foreign key constraint on table %q",
				parent.Name, cf.table.Name)
		}
		if pending {
			return &SerializationError{Table: parent.Name}
		}
	}
	return nil
}

// execUpdate runs an UPDATE. wp is the row-matching plan — cached, or nil to
// plan now.
func (s *Session) execUpdate(st *UpdateStmt, wp *WritePlan) (*Result, error) {
	t, ok := s.engine.Table(st.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: st.Table}
	}
	for _, a := range st.Set {
		if t.ColIndex(a.Column) < 0 {
			return nil, &NotFoundError{Kind: "column", Name: st.Table + "." + a.Column}
		}
	}
	if wp == nil {
		wp = s.planWrite(st.Table, st.Where)
	}
	matches, err := wp.matchEntries(s)
	if err != nil {
		return nil, err
	}
	envCols := tableEnvCols(t)
	for _, e := range matches {
		// First-committer-wins: a concurrent version newer than our
		// snapshot (committed or in flight) aborts the statement retryably
		// before anything is installed.
		if err := s.checkWriteConflict(t, e); err != nil {
			return nil, err
		}
		// The conflict check guarantees the chain head is the version our
		// snapshot matched (or our own earlier write), so SET expressions
		// evaluate against it.
		oldVals := e.v.vals
		env := &Env{cols: envCols, vals: oldVals, sess: s}
		newVals := append([]Value{}, oldVals...)
		for _, a := range st.Set {
			v, err := a.Expr.Eval(env)
			if err != nil {
				return nil, err
			}
			newVals[t.ColIndex(a.Column)] = v
		}
		if err := s.checkRowConstraints(t, newVals, e); err != nil {
			return nil, err
		}
		// If this row is a FK parent and its key columns changed, enforce
		// RESTRICT against children referencing the old key.
		if keyChanged(t, s.engine, oldVals, newVals) {
			if err := s.checkNoChildRefs(t, oldVals); err != nil {
				return nil, err
			}
		}
		s.engine.mu.Lock()
		ver := t.installVersion(e, newVals, s.writerTxn())
		s.engine.mu.Unlock()
		s.record(undoOp{kind: undoUpdate, table: t, entry: e, ver: ver})
		s.redoUpdate(t, e)
	}
	return &Result{Affected: len(matches), Message: fmt.Sprintf("UPDATE %d", len(matches))}, nil
}

// keyChanged reports whether any column referenced by a child FK changed.
func keyChanged(t *Table, e *Engine, oldVals, newVals []Value) bool {
	for _, cf := range e.childFKs(t.Name) {
		parentCols := cf.fk.ParentColumns
		if len(parentCols) == 0 {
			parentCols = t.PrimaryKey
		}
		for _, c := range parentCols {
			pi := t.ColIndex(c)
			if pi >= 0 && !Equal(oldVals[pi], newVals[pi]) {
				return true
			}
		}
	}
	return false
}

// execDelete runs a DELETE. wp is the row-matching plan — cached, or nil to
// plan now.
func (s *Session) execDelete(st *DeleteStmt, wp *WritePlan) (*Result, error) {
	t, ok := s.engine.Table(st.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: st.Table}
	}
	if wp == nil {
		wp = s.planWrite(st.Table, st.Where)
	}
	matches, err := wp.matchEntries(s)
	if err != nil {
		return nil, err
	}
	for _, e := range matches {
		if err := s.checkWriteConflict(t, e); err != nil {
			return nil, err
		}
		if err := s.checkNoChildRefs(t, e.v.vals); err != nil {
			return nil, err
		}
		s.engine.mu.Lock()
		ver := t.deleteVersion(e, s.writerTxn())
		s.engine.mu.Unlock()
		s.record(undoOp{kind: undoDelete, table: t, entry: e, ver: ver})
		s.redoDelete(t, e)
	}
	return &Result{Affected: len(matches), Message: fmt.Sprintf("DELETE %d", len(matches))}, nil
}

func tableEnvCols(t *Table) []envCol {
	out := make([]envCol, len(t.Columns))
	lo := strings.ToLower(t.Name)
	for i, c := range t.Columns {
		out[i] = envCol{table: lo, name: strings.ToLower(c.Name)}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}

// --- DDL ---

func (s *Session) execCreateTable(st *CreateTableStmt) (*Result, error) {
	if _, exists := s.engine.Table(st.Table); exists {
		if st.IfNotExists {
			return &Result{Message: "CREATE TABLE (exists, skipped)"}, nil
		}
		return nil, fmt.Errorf("table %q already exists", st.Table)
	}
	cols := make([]Column, len(st.Columns))
	var pk []string
	fks := append([]ForeignKeyDef{}, st.ForeignKeys...)
	for i, cd := range st.Columns {
		cols[i] = Column{
			Name:       cd.Name,
			Type:       cd.Type,
			NotNull:    cd.NotNull,
			PrimaryKey: cd.PrimaryKey,
			Unique:     cd.Unique,
			Default:    cd.Default,
		}
		if cd.PrimaryKey {
			pk = append(pk, cd.Name)
		}
		if cd.References != nil {
			fks = append(fks, *cd.References)
		}
	}
	if len(st.PrimaryKey) > 0 {
		if len(pk) > 0 {
			return nil, fmt.Errorf("multiple primary keys for table %q", st.Table)
		}
		pk = st.PrimaryKey
		for i := range cols {
			if contains(pk, cols[i].Name) {
				cols[i].PrimaryKey = true
			}
		}
	}
	var tableFKs []ForeignKey
	for _, fk := range fks {
		parent, ok := s.engine.Table(fk.ParentTable)
		if !ok {
			return nil, &NotFoundError{Kind: "table", Name: fk.ParentTable}
		}
		parentCols := fk.ParentColumns
		if len(parentCols) == 0 {
			parentCols = parent.PrimaryKey
			if len(parentCols) == 0 {
				return nil, fmt.Errorf("referenced table %q has no primary key", fk.ParentTable)
			}
		}
		tableFKs = append(tableFKs, ForeignKey{
			Columns:       fk.Columns,
			ParentTable:   parent.Name,
			ParentColumns: parentCols,
		})
	}
	t, err := newTable(st.Table, cols, pk, tableFKs)
	if err != nil {
		return nil, err
	}
	if err := s.engine.createTable(t); err != nil {
		return nil, err
	}
	s.record(undoOp{kind: undoCreate, table: t})
	// SchemaSQL renders the resolved definition (types, PK, FKs) in the
	// exact dialect the parser accepts back, so replay re-creates the table
	// through the normal DDL path.
	s.redoCreateTable(t)
	return &Result{Message: "CREATE TABLE"}, nil
}

func (s *Session) execDropTable(st *DropTableStmt) (*Result, error) {
	if _, exists := s.engine.Table(st.Table); !exists {
		if st.IfExists {
			return &Result{Message: "DROP TABLE (absent, skipped)"}, nil
		}
		return nil, &NotFoundError{Kind: "table", Name: st.Table}
	}
	pos := -1
	lo := strings.ToLower(st.Table)
	for i, n := range s.engine.tableOrder {
		if n == lo {
			pos = i
			break
		}
	}
	t, err := s.engine.dropTable(st.Table)
	if err != nil {
		return nil, err
	}
	s.record(undoOp{kind: undoDrop, table: t, tablePos: pos})
	s.redoDDL("DROP TABLE " + t.Name)
	return &Result{Message: "DROP TABLE"}, nil
}

func (s *Session) execCreateIndex(st *CreateIndexStmt) (*Result, error) {
	t, ok := s.engine.Table(st.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: st.Table}
	}
	ci := t.ColIndex(st.Column)
	if ci < 0 {
		return nil, &NotFoundError{Kind: "column", Name: st.Table + "." + st.Column}
	}
	key := strings.ToLower(st.Column)
	if _, exists := t.indexes[key]; exists {
		return nil, fmt.Errorf("an index on %q.%q already exists", st.Table, st.Column)
	}
	if st.Unique {
		// Uniqueness is checked against the latest committed state plus
		// this session's own writes. A row another open transaction is
		// inserting or deleting could still change the answer when it
		// settles, so any pending write on the table fails the CREATE
		// retryably rather than certifying an index that may hold
		// committed duplicates a moment later.
		txn := s.writerTxn()
		seen := map[string]bool{}
		dup, pending := false, false
		for _, e := range t.rows {
			for v := e.v; v != nil; v = v.prev {
				if (v.xminTxn != nil && v.xminTxn != txn) || (v.xmaxTxn != nil && v.xmaxTxn != txn) {
					pending = true
				}
			}
			wv := e.visible(latestView(txn))
			if wv == nil {
				continue
			}
			v := wv.vals[ci]
			if v.IsNull() {
				continue
			}
			k := v.Key()
			if seen[k] {
				dup = true
			}
			seen[k] = true
		}
		// Pending wins over dup: a duplicate involving a row another
		// transaction is deleting may dissolve when it commits, so the
		// retryable error is the honest one; the duplicate report is only
		// final when the table is quiescent.
		if pending {
			return nil, &SerializationError{Table: t.Name}
		}
		if dup {
			return nil, fmt.Errorf("cannot create unique index: duplicate values in %q.%q", st.Table, st.Column)
		}
	}
	t.addIndex(&Index{Name: st.Name, Column: st.Column, Unique: st.Unique})
	s.engine.bumpCatalog()
	s.record(undoOp{kind: undoIndex, table: t, indexCol: key})
	uniq := ""
	if st.Unique {
		uniq = "UNIQUE "
	}
	s.redoDDL(fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", uniq, st.Name, t.Name, st.Column))
	return &Result{Message: "CREATE INDEX"}, nil
}

func (s *Session) execAlterTable(st *AlterTableStmt) (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("ALTER TABLE cannot run inside a transaction")
	}
	t, ok := s.engine.Table(st.Table)
	if !ok {
		return nil, &NotFoundError{Kind: "table", Name: st.Table}
	}
	switch {
	case st.AddColumn != nil:
		cd := st.AddColumn
		if t.ColIndex(cd.Name) >= 0 {
			return nil, fmt.Errorf("column %q already exists in table %q", cd.Name, st.Table)
		}
		if cd.NotNull && cd.Default == nil && t.RowCount() > 0 {
			return nil, fmt.Errorf("cannot add NOT NULL column %q without a default", cd.Name)
		}
		var fill Value = Null()
		if cd.Default != nil {
			dv, err := cd.Default.Eval(nil)
			if err != nil {
				return nil, err
			}
			fill = dv
		}
		t.Columns = append(t.Columns, Column{
			Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull,
			Unique: cd.Unique, Default: cd.Default,
		})
		// Every version of every chain gains the column so old snapshots
		// keep reading arity-consistent rows (DDL itself is not versioned).
		for _, r := range t.rows {
			for v := r.v; v != nil; v = v.prev {
				v.vals = append(v.vals, fill)
			}
		}
		s.engine.bumpCatalog()
		s.redoDDL(fmt.Sprintf("ALTER TABLE %s ADD COLUMN %s", t.Name, columnDefSQL(cd)))
		return &Result{Message: "ALTER TABLE ADD COLUMN"}, nil
	case st.RenameTo != "":
		if _, exists := s.engine.Table(st.RenameTo); exists {
			return nil, fmt.Errorf("table %q already exists", st.RenameTo)
		}
		oldLo, newLo := strings.ToLower(t.Name), strings.ToLower(st.RenameTo)
		delete(s.engine.tables, oldLo)
		t.Name = st.RenameTo
		s.engine.tables[newLo] = t
		for i, n := range s.engine.tableOrder {
			if n == oldLo {
				s.engine.tableOrder[i] = newLo
			}
		}
		s.engine.bumpCatalog()
		s.redoDDL(fmt.Sprintf("ALTER TABLE %s RENAME TO %s", oldLo, st.RenameTo))
		return &Result{Message: "ALTER TABLE RENAME"}, nil
	}
	return nil, fmt.Errorf("unsupported ALTER TABLE action")
}

func (s *Session) execGrant(st *GrantStmt) (*Result, error) {
	actions := st.Actions
	if actions == nil {
		actions = AllActions
	}
	// All of the statement's privilege records commit as one WAL frame with
	// a single durability wait, parked on the session until the executor has
	// released every lock; a parked error from an earlier direct-API
	// mutation surfaces here too rather than vanishing.
	s.grantTok = s.engine.logGrantsBatched(func() {
		for i, a := range actions {
			if st.Columns != nil && i < len(st.Columns) && st.Columns[i] != nil {
				s.engine.grants.GrantColumns(st.Grantee, a, st.Table, st.Columns[i])
				continue
			}
			s.engine.grants.Grant(st.Grantee, a, st.Table)
		}
	})
	if werr := s.engine.takeGrantWALErr(); werr != nil {
		return nil, fmt.Errorf("GRANT applied in memory but not durable: %w", werr)
	}
	return &Result{Message: "GRANT"}, nil
}

func (s *Session) execCreateView(st *CreateViewStmt) (*Result, error) {
	v := &View{Name: st.Name, Query: st.Query}
	if err := s.engine.createView(v); err != nil {
		return nil, err
	}
	s.record(undoOp{kind: undoCreateView, view: v})
	s.redoDDL(ViewSQL(v))
	return &Result{Message: "CREATE VIEW"}, nil
}

func (s *Session) execDropView(st *DropViewStmt) (*Result, error) {
	if _, exists := s.engine.ViewByName(st.Name); !exists {
		if st.IfExists {
			return &Result{Message: "DROP VIEW (absent, skipped)"}, nil
		}
		return nil, &NotFoundError{Kind: "view", Name: st.Name}
	}
	v, err := s.engine.dropView(st.Name)
	if err != nil {
		return nil, err
	}
	s.record(undoOp{kind: undoDropView, view: v})
	s.redoDDL("DROP VIEW " + v.Name)
	return &Result{Message: "DROP VIEW"}, nil
}

func (s *Session) execRevoke(st *RevokeStmt) (*Result, error) {
	actions := st.Actions
	if actions == nil {
		actions = AllActions
	}
	s.grantTok = s.engine.logGrantsBatched(func() {
		for _, a := range actions {
			s.engine.grants.Revoke(st.Grantee, a, st.Table)
		}
	})
	if werr := s.engine.takeGrantWALErr(); werr != nil {
		return nil, fmt.Errorf("REVOKE applied in memory but not durable: %w", werr)
	}
	return &Result{Message: "REVOKE"}, nil
}
