package sqldb

import (
	"fmt"
	"strings"
)

// The planner lowers parsed statements into plan trees. For SELECT it
// performs two classic optimizations on top of straight lowering:
//
//   - predicate pushdown: the WHERE clause is split into AND conjuncts and
//     every conjunct that references a single FROM source is evaluated
//     directly above that source's scan, before any join multiplies rows;
//   - access-path selection: a pushed `col = literal` conjunct on a column
//     with a hash index or a single-column primary key turns the sequential
//     scan into an index scan; failing that, range conjuncts (`<`, `<=`,
//     `>`, `>=`, BETWEEN) on a column with an ordered index or single-column
//     primary key merge into an index range scan that visits only in-range
//     rows (the conjuncts are still re-checked by the filter, so both paths
//     are purely a row-count reduction);
//   - sort/limit pushdown: for single-table queries whose ORDER BY key is
//     the ordered column of an index range scan (or any ordered column, by
//     upgrading the seq scan), the scan emits rows in index order and the
//     executor skips its sort; when LIMIT/OFFSET are literals and the
//     scan's bounds imply the whole pushed filter, the limit fuses into the
//     scan as a Top-K cutoff that stops after offset+limit rows.
//
// Pushdown is skipped when the FROM clause contains a LEFT JOIN (filtering
// the null-supplying side before the join would change results) or a view
// (whose output columns are only known at run time).

// planSelect lowers a SELECT into a SelectPlan. It only consults the
// catalog, never row data; callers hold at least a read lock.
func (s *Session) planSelect(st *SelectStmt) *SelectPlan {
	if len(st.From) == 0 {
		return &SelectPlan{Stmt: st}
	}

	sources := make([]SourceNode, len(st.From))
	pushable := true
	for i, ref := range st.From {
		sources[i] = s.planScan(ref)
		if sources[i].staticCols() == nil {
			pushable = false
		}
		if i > 0 && ref.JoinKind == JoinLeft {
			pushable = false
		}
	}

	conjuncts := splitConjuncts(st.Where)
	pushed := make([][]Expr, len(sources))
	var residual []Expr
	switch {
	case st.Where == nil:
		// nothing to place
	case len(st.From) == 1:
		pushed[0] = conjuncts
	case pushable:
		for _, c := range conjuncts {
			if i, ok := owningSource(c, sources); ok {
				pushed[i] = append(pushed[i], c)
			} else {
				residual = append(residual, c)
			}
		}
	default:
		residual = conjuncts
	}

	for i := range sources {
		if len(pushed[i]) == 0 {
			continue
		}
		sources[i] = s.chooseAccessPath(st.From[i], sources[i], pushed[i])
		if rx, ok := sources[i].(*IndexRangeScanNode); ok && rx.CoversFilter {
			// The scan's bounds imply every pushed conjunct (they were built
			// from exactly these conjuncts, and bucket members compare equal
			// to the ordered key), so the per-row re-check is pure overhead —
			// the bounds in the scan label are the filter, like a PostgreSQL
			// Index Cond.
			continue
		}
		sources[i] = &FilterNode{Cond: andAll(pushed[i]), Input: sources[i]}
	}

	acc := sources[0]
	for i := 1; i < len(sources); i++ {
		ref := st.From[i]
		join := &JoinNode{Kind: ref.JoinKind, On: ref.On, Left: acc, Right: sources[i]}
		if lc, rc := acc.staticCols(), sources[i].staticCols(); lc != nil && rc != nil {
			join.cols = append(append([]string{}, lc...), rc...)
			join.Strategy = JoinStrategyNested
			if ref.JoinKind == JoinInner && ref.On != nil {
				if _, _, ok := equiJoinCols(ref.On, lc, rc); ok {
					join.Strategy = JoinStrategyHash
				}
			}
		}
		acc = join
	}

	plan := &SelectPlan{Stmt: st, Source: acc, Residual: andAll(residual)}
	if len(st.From) == 1 {
		s.pushSortAndLimit(plan)
	}
	// After access paths are final: ordered (index) scans are never
	// parallelized — their row order is a promise the sort/Top-K pushdown
	// relies on — so only the seq scans that survived are considered.
	s.markParallelScans(plan)
	return plan
}

// markParallelScans flags the plan's remaining sequential scans for the
// morsel-driven batched path when the table clears the engine's row-count
// threshold. Sessions that disabled parallelism plan purely sequential
// trees (and are excluded from the shared plan cache, like forceSeqScan).
func (s *Session) markParallelScans(plan *SelectPlan) {
	if s.forceSeqScan || s.noParallel || plan.Source == nil {
		return
	}
	workers, threshold, _ := s.engine.parallelism()
	var mark func(n SourceNode)
	mark = func(n SourceNode) {
		switch src := n.(type) {
		case *SeqScanNode:
			if src.cols == nil {
				return
			}
			if t, ok := s.engine.Table(src.Table); ok && t.RowCount() >= threshold {
				src.Workers = workers
			}
		case *FilterNode:
			mark(src.Input)
		case *JoinNode:
			mark(src.Left)
			mark(src.Right)
		}
	}
	mark(plan.Source)
}

// pushSortAndLimit pushes a single-key ORDER BY into an ordered index scan
// for single-table queries, and fuses LIMIT/OFFSET into the scan (Top-K)
// when the cutoff cannot change results. On success the plan's SortPushed /
// TopK flags tell the executor (and EXPLAIN) which pipeline stages moved
// into the scan.
func (s *Session) pushSortAndLimit(p *SelectPlan) {
	st := p.Stmt
	// Grouping/aggregation and DISTINCT reshape rows after the scan; a
	// multi-key sort needs a real sort. All keep the sort stage.
	if s.forceSeqScan {
		return
	}
	if len(st.OrderBy) != 1 || st.Distinct || len(st.GroupBy) > 0 || selectHasAggregate(st) {
		return
	}
	key := st.OrderBy[0]
	cr, ok := key.Expr.(*ColumnRef)
	if !ok {
		return
	}
	// orderRows resolves output aliases before source columns; a select-item
	// alias with the key's name shadows the table column, so pushing the
	// source column would sort by the wrong values.
	for _, it := range st.Items {
		if strings.EqualFold(it.Alias, cr.Name) {
			return
		}
	}
	// Peel the pushed filter (if any) to reach the scan.
	src := p.Source
	filter, _ := src.(*FilterNode)
	if filter != nil {
		src = filter.Input
	}
	var scan *IndexRangeScanNode
	switch n := src.(type) {
	case *IndexRangeScanNode:
		// The range scan must already be on the sort column; a scan ordered
		// by one column cannot emit another column's order.
		if resolveIn(cr, n.cols) != n.col {
			return
		}
		scan = n
	case *SeqScanNode:
		if n.cols == nil {
			return
		}
		col := resolveIn(cr, n.cols)
		if col < 0 {
			return
		}
		t, ok := s.engine.Table(n.Table)
		if !ok {
			return
		}
		via, ok := t.eqAccessPath(col)
		if !ok {
			return
		}
		// Upgrade to an unbounded ordered scan: all rows, index order.
		scan = &IndexRangeScanNode{
			Table:  n.Table,
			Alias:  n.Alias,
			Column: t.Columns[col].Name,
			Via:    via,
			// No bounds were extracted, so the scan absorbs no conjuncts:
			// only a filter-less plan lets LIMIT fuse.
			CoversFilter: filter == nil,
			col:          col,
			cols:         n.cols,
		}
		if filter != nil {
			filter.Input = scan
		} else {
			p.Source = scan
		}
	default:
		return
	}
	scan.Desc = key.Desc
	scan.Order = orderKeyLabel(key)
	p.SortPushed = true

	// Top-K: fuse LIMIT/OFFSET into the scan. Safe only when the emitted
	// rows reach the limit stage unfiltered (the scan's bounds imply every
	// pushed conjunct and nothing stayed residual) and the cutoff is a
	// plan-time constant.
	if !scan.CoversFilter || p.Residual != nil || st.Limit == nil {
		return
	}
	limit, ok := literalIntAtLeastZero(st.Limit)
	if !ok {
		return
	}
	offset := 0
	if st.Offset != nil {
		if offset, ok = literalIntAtLeastZero(st.Offset); !ok {
			return
		}
	}
	max := limit + offset
	if max <= 0 {
		// LIMIT 0 (with OFFSET 0) returns nothing; MaxRows 0 means
		// "unlimited" to the scan, so fusing would promise a cutoff that
		// never happens. Leave the ordinary Limit stage to slice to zero.
		return
	}
	scan.MaxRows = max
	p.TopK = true
}

// literalIntAtLeastZero unwraps a plan-time non-negative integer literal.
func literalIntAtLeastZero(e Expr) (int, bool) {
	lit, ok := e.(*Literal)
	if !ok || lit.Val.Kind != KindInt || lit.Val.I < 0 || lit.Val.I > 1<<31 {
		return 0, false
	}
	return int(lit.Val.I), true
}

// planScan lowers one FROM entry into a scan node.
func (s *Session) planScan(ref TableRef) SourceNode {
	if _, ok := s.engine.Table(ref.Table); ok {
		return &SeqScanNode{Table: ref.Table, Alias: ref.Alias, cols: qualifiedCols(s.engine, ref)}
	}
	if _, ok := s.engine.ViewByName(ref.Table); ok {
		return &ViewScanNode{View: ref.Table, Alias: ref.Alias}
	}
	// Unknown name: lower to a seq scan whose execution reports the
	// NotFoundError, keeping the planner infallible.
	return &SeqScanNode{Table: ref.Table, Alias: ref.Alias}
}

// chooseAccessPath upgrades a seq scan when the pushed conjuncts admit one:
// an equality index scan for `col = literal` on an indexed or primary-key
// column (hash lookup, O(1)), else an index range scan when range conjuncts
// cover a column with an ordered structure.
func (s *Session) chooseAccessPath(ref TableRef, src SourceNode, pushed []Expr) SourceNode {
	scan, ok := src.(*SeqScanNode)
	if !ok || scan.cols == nil || s.forceSeqScan {
		return src
	}
	if ix := s.indexScanFor(ref.Table, ref.Alias, andAll(pushed), scan.cols); ix != nil {
		return ix
	}
	if rx := s.rangeScanFor(ref.Table, ref.Alias, pushed, scan.cols); rx != nil {
		return rx
	}
	return src
}

// rangeBound is one side of a half-open or closed interval.
type rangeBound struct {
	val  Value
	incl bool
}

// rangeScanFor merges the range conjuncts (`<`, `<=`, `>`, `>=`, BETWEEN
// with literal bounds) on one ordered column into an index range scan, or
// returns nil when no pushed conjunct ranges over a column with an ordered
// access path. The scan remembers whether its bounds imply the entire
// pushed predicate (CoversFilter) — the precondition for fusing LIMIT into
// the scan later. Shared by SELECT scans and the UPDATE/DELETE write
// planner, like indexScanFor.
func (s *Session) rangeScanFor(table, alias string, pushed []Expr, cols []string) *IndexRangeScanNode {
	t, ok := s.engine.Table(table)
	if !ok {
		return nil
	}
	// Pick the first conjunct's column that has an ordered access path.
	chosen, via := -1, ""
	for _, c := range pushed {
		col, _, _, ok := rangeConjunct(c, cols, t)
		if !ok {
			continue
		}
		if v, ok := t.eqAccessPath(col); ok {
			chosen, via = col, v
			break
		}
	}
	if chosen < 0 {
		return nil
	}
	// Merge every conjunct on that column into the tightest bound pair.
	var lo, hi *rangeBound
	absorbed := 0
	for _, c := range pushed {
		col, clo, chi, ok := rangeConjunct(c, cols, t)
		if !ok || col != chosen {
			continue
		}
		lo = tightenLo(lo, clo)
		hi = tightenHi(hi, chi)
		absorbed++
	}
	n := &IndexRangeScanNode{
		Table:        table,
		Alias:        alias,
		Column:       t.Columns[chosen].Name,
		Via:          via,
		CoversFilter: absorbed == len(pushed),
		col:          chosen,
		cols:         cols,
	}
	if lo != nil {
		n.Lo, n.LoIncl = &lo.val, lo.incl
	}
	if hi != nil {
		n.Hi, n.HiIncl = &hi.val, hi.incl
	}
	return n
}

// tightenLo keeps the stricter (larger, or equal-but-exclusive) lower bound.
func tightenLo(cur, cand *rangeBound) *rangeBound {
	if cand == nil {
		return cur
	}
	if cur == nil {
		return cand
	}
	switch c := orderCompare(cand.val, cur.val); {
	case c > 0:
		return cand
	case c == 0 && !cand.incl:
		return cand
	}
	return cur
}

// tightenHi keeps the stricter (smaller, or equal-but-exclusive) upper bound.
func tightenHi(cur, cand *rangeBound) *rangeBound {
	if cand == nil {
		return cur
	}
	if cur == nil {
		return cand
	}
	switch c := orderCompare(cand.val, cur.val); {
	case c < 0:
		return cand
	case c == 0 && !cand.incl:
		return cand
	}
	return cur
}

// rangeConjunct recognizes one range conjunct over a scanned column:
// `col < lit`, `col <= lit`, `col > lit`, `col >= lit` (either operand
// order) or `col BETWEEN lit AND lit`. The literal must be comparable with
// the column's type (numeric with numeric, otherwise same kind) so the
// ordered structure's order agrees with the predicate's Compare.
func rangeConjunct(c Expr, cols []string, t *Table) (col int, lo, hi *rangeBound, ok bool) {
	resolve := func(cr *ColumnRef, v Value) (int, bool) {
		i := resolveIn(cr, cols)
		if i < 0 || i >= len(t.Columns) || !rangeBoundCompatible(v, t.Columns[i].Type) {
			return -1, false
		}
		return i, true
	}
	switch e := c.(type) {
	case *BinaryExpr:
		op := e.Op
		if op != "<" && op != "<=" && op != ">" && op != ">=" {
			return 0, nil, nil, false
		}
		cr, crOK := e.Left.(*ColumnRef)
		lit, litOK := e.Right.(*Literal)
		if !crOK || !litOK {
			// Literal on the left: `lit < col` means `col > lit`.
			if cr, crOK = e.Right.(*ColumnRef); !crOK {
				return 0, nil, nil, false
			}
			if lit, litOK = e.Left.(*Literal); !litOK {
				return 0, nil, nil, false
			}
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		i, found := resolve(cr, lit.Val)
		if !found {
			return 0, nil, nil, false
		}
		b := &rangeBound{val: lit.Val, incl: op == "<=" || op == ">="}
		if op == "<" || op == "<=" {
			return i, nil, b, true
		}
		return i, b, nil, true
	case *BetweenExpr:
		if e.Not {
			return 0, nil, nil, false
		}
		cr, crOK := e.Operand.(*ColumnRef)
		loLit, loOK := e.Low.(*Literal)
		hiLit, hiOK := e.High.(*Literal)
		if !crOK || !loOK || !hiOK {
			return 0, nil, nil, false
		}
		i, found := resolve(cr, loLit.Val)
		if !found || !rangeBoundCompatible(hiLit.Val, t.Columns[i].Type) {
			return 0, nil, nil, false
		}
		return i, &rangeBound{val: loLit.Val, incl: true}, &rangeBound{val: hiLit.Val, incl: true}, true
	}
	return 0, nil, nil, false
}

// rangeBoundCompatible reports whether a literal bound orders consistently
// against values of the column type under Compare.
func rangeBoundCompatible(v Value, colType Kind) bool {
	if v.IsNull() {
		return false
	}
	switch colType {
	case KindInt, KindFloat:
		return v.Kind == KindInt || v.Kind == KindFloat
	default:
		return v.Kind == colType
	}
}

// indexScanFor builds an index scan serving a `col = literal` conjunct of
// where on an indexed or primary-key column, or nil when no access path
// applies. It is the single access-path selection rule, shared by SELECT
// scans and the UPDATE/DELETE write planner so the two can never diverge.
func (s *Session) indexScanFor(table, alias string, where Expr, cols []string) *IndexScanNode {
	t, ok := s.engine.Table(table)
	if !ok {
		return nil
	}
	col, val, ok := indexableEq(where, cols)
	if !ok {
		return nil
	}
	via, ok := t.eqAccessPath(col)
	if !ok {
		return nil
	}
	return &IndexScanNode{
		Table:  table,
		Alias:  alias,
		Column: t.Columns[col].Name,
		Via:    via,
		Val:    val,
		col:    col,
		cols:   cols,
	}
}

// qualifiedCols computes the qualified output columns of a base-table scan.
func qualifiedCols(e *Engine, ref TableRef) []string {
	t, ok := e.Table(ref.Table)
	if !ok {
		return nil
	}
	q := strings.ToLower(ref.Alias)
	if q == "" {
		q = strings.ToLower(ref.Table)
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = q + "." + strings.ToLower(c.Name)
	}
	return cols
}

// splitConjuncts flattens a predicate into its top-level AND conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.Left), splitConjuncts(be.Right)...)
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction from its parts; nil for an empty list.
func andAll(parts []Expr) Expr {
	if len(parts) == 0 {
		return nil
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = &BinaryExpr{Op: "AND", Left: out, Right: p}
	}
	return out
}

// owningSource reports the single FROM source a conjunct's column references
// all resolve to. Conjuncts with subqueries, no column references, outer
// (correlated) references, or references spanning sources stay residual.
func owningSource(c Expr, sources []SourceNode) (int, bool) {
	owner := -1
	ok := true
	sawRef := false
	walkExpr(c, func(x Expr) {
		if !ok {
			return
		}
		if _, isSub := x.(*SubqueryExpr); isSub {
			ok = false
			return
		}
		cr, isRef := x.(*ColumnRef)
		if !isRef {
			return
		}
		sawRef = true
		hit := -1
		for i, src := range sources {
			cols := src.staticCols()
			if cols == nil {
				ok = false
				return
			}
			if resolveIn(cr, cols) >= 0 {
				if hit >= 0 {
					// Resolves in more than one source: ambiguous.
					ok = false
					return
				}
				hit = i
			}
		}
		if hit < 0 {
			// Unresolvable here (outer reference); keep residual so the
			// enclosing query's environment stays in scope.
			ok = false
			return
		}
		if owner >= 0 && owner != hit {
			ok = false
			return
		}
		owner = hit
	})
	if !ok || !sawRef || owner < 0 {
		return 0, false
	}
	return owner, true
}

// eqAccessPath reports how an equality on column col can be served without
// a full scan: via the single-column primary key or a hash index.
func (t *Table) eqAccessPath(col int) (string, bool) {
	if len(t.pkCols) == 1 && t.pkCols[0] == col {
		return "primary key", true
	}
	if ix, ok := t.indexes[strings.ToLower(t.Columns[col].Name)]; ok {
		return "index " + ix.Name, true
	}
	return "", false
}

// planStmt lowers any explainable statement into a Plan.
func (s *Session) planStmt(stmt Stmt) (*Plan, error) {
	switch st := stmt.(type) {
	case *SelectStmt:
		sel := s.planSelect(st)
		// Execution reports missing tables lazily; an explained plan should
		// name the problem up front instead of showing a scan of nothing.
		if err := checkSourcesExist(sel.Source); err != nil {
			return nil, err
		}
		return &Plan{stmt: st, sel: sel, root: sel.Tree()}, nil
	case *InsertStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil, &NotFoundError{Kind: "table", Name: st.Table}
		}
		return &Plan{stmt: st, header: fmt.Sprintf("Insert on %s (%d rows)", st.Table, len(st.Rows)),
			root: resultNode{}}, nil
	case *UpdateStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil, &NotFoundError{Kind: "table", Name: st.Table}
		}
		wp := s.planWrite(st.Table, st.Where)
		return &Plan{stmt: st, write: wp, header: "Update on " + st.Table,
			root: wp.Tree()}, nil
	case *DeleteStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil, &NotFoundError{Kind: "table", Name: st.Table}
		}
		wp := s.planWrite(st.Table, st.Where)
		return &Plan{stmt: st, write: wp, header: "Delete on " + st.Table,
			root: wp.Tree()}, nil
	case *ExplainStmt:
		return nil, fmt.Errorf("cannot EXPLAIN an EXPLAIN statement")
	}
	return nil, fmt.Errorf("EXPLAIN does not support %s statements", verbOf(stmt))
}

// checkSourcesExist reports the first scan whose table resolved to nothing
// at plan time (planScan lowers unknown names to column-less seq scans).
func checkSourcesExist(n SourceNode) error {
	switch src := n.(type) {
	case nil:
		return nil
	case *SeqScanNode:
		if src.cols == nil {
			return &NotFoundError{Kind: "table", Name: src.Table}
		}
	case *FilterNode:
		return checkSourcesExist(src.Input)
	case *JoinNode:
		if err := checkSourcesExist(src.Left); err != nil {
			return err
		}
		return checkSourcesExist(src.Right)
	}
	return nil
}

// planWrite lowers the row-matching half of an UPDATE/DELETE into a
// WritePlan, applying the same access-path selection SELECT scans get: a
// `col = literal` conjunct on an indexed or primary-key column upgrades the
// sequential scan to an index scan, and failing that, range conjuncts on an
// ordered column upgrade it to an index range scan (the full WHERE is still
// re-checked per row). EXPLAIN renders this plan and the executor fetches
// rows through it, so the displayed access path is the executed one.
func (s *Session) planWrite(table string, where Expr) *WritePlan {
	src := s.planScan(TableRef{Table: table})
	if scan, ok := src.(*SeqScanNode); ok && scan.cols != nil && where != nil && !s.forceSeqScan {
		if ix := s.indexScanFor(table, "", where, scan.cols); ix != nil {
			src = ix
		} else if rx := s.rangeScanFor(table, "", splitConjuncts(where), scan.cols); rx != nil {
			src = rx
		}
	}
	return &WritePlan{Table: table, Access: src, Where: where}
}

func verbOf(stmt Stmt) string {
	switch stmt.(type) {
	case *SelectStmt:
		return "SELECT"
	case *InsertStmt:
		return "INSERT"
	case *UpdateStmt:
		return "UPDATE"
	case *DeleteStmt:
		return "DELETE"
	case *CreateTableStmt:
		return "CREATE TABLE"
	case *DropTableStmt:
		return "DROP TABLE"
	case *CreateViewStmt:
		return "CREATE VIEW"
	case *DropViewStmt:
		return "DROP VIEW"
	case *CreateIndexStmt:
		return "CREATE INDEX"
	case *AlterTableStmt:
		return "ALTER TABLE"
	case *GrantStmt:
		return "GRANT"
	case *RevokeStmt:
		return "REVOKE"
	case *BeginStmt:
		return "BEGIN"
	case *CommitStmt:
		return "COMMIT"
	case *RollbackStmt:
		return "ROLLBACK"
	case *ExplainStmt:
		return "EXPLAIN"
	}
	return fmt.Sprintf("%T", stmt)
}

// Plan parses sql and returns the engine's chosen plan without executing it,
// under the same privilege checks execution would apply.
func (s *Session) Plan(sql string) (*Plan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("syntax error: %w", err)
	}
	if ex, ok := stmt.(*ExplainStmt); ok {
		stmt = ex.Stmt
	}
	s.engine.mu.RLock()
	defer s.engine.mu.RUnlock()
	if err := s.checkStmtPrivileges(stmt); err != nil {
		return nil, err
	}
	return s.planStmt(stmt)
}
