package sqldb

import (
	"fmt"
	"strings"
)

// The planner lowers parsed statements into plan trees. For SELECT it
// performs two classic optimizations on top of straight lowering:
//
//   - predicate pushdown: the WHERE clause is split into AND conjuncts and
//     every conjunct that references a single FROM source is evaluated
//     directly above that source's scan, before any join multiplies rows;
//   - access-path selection: a pushed `col = literal` conjunct on a column
//     with a hash index or a single-column primary key turns the sequential
//     scan into an index scan (the conjunct is still re-checked by the
//     filter, so the index is purely a row-count reduction).
//
// Pushdown is skipped when the FROM clause contains a LEFT JOIN (filtering
// the null-supplying side before the join would change results) or a view
// (whose output columns are only known at run time).

// planSelect lowers a SELECT into a SelectPlan. It only consults the
// catalog, never row data; callers hold at least a read lock.
func (s *Session) planSelect(st *SelectStmt) *SelectPlan {
	if len(st.From) == 0 {
		return &SelectPlan{Stmt: st}
	}

	sources := make([]SourceNode, len(st.From))
	pushable := true
	for i, ref := range st.From {
		sources[i] = s.planScan(ref)
		if sources[i].staticCols() == nil {
			pushable = false
		}
		if i > 0 && ref.JoinKind == JoinLeft {
			pushable = false
		}
	}

	conjuncts := splitConjuncts(st.Where)
	pushed := make([][]Expr, len(sources))
	var residual []Expr
	switch {
	case st.Where == nil:
		// nothing to place
	case len(st.From) == 1:
		pushed[0] = conjuncts
	case pushable:
		for _, c := range conjuncts {
			if i, ok := owningSource(c, sources); ok {
				pushed[i] = append(pushed[i], c)
			} else {
				residual = append(residual, c)
			}
		}
	default:
		residual = conjuncts
	}

	for i := range sources {
		if len(pushed[i]) == 0 {
			continue
		}
		sources[i] = s.chooseAccessPath(st.From[i], sources[i], pushed[i])
		sources[i] = &FilterNode{Cond: andAll(pushed[i]), Input: sources[i]}
	}

	acc := sources[0]
	for i := 1; i < len(sources); i++ {
		ref := st.From[i]
		join := &JoinNode{Kind: ref.JoinKind, On: ref.On, Left: acc, Right: sources[i]}
		if lc, rc := acc.staticCols(), sources[i].staticCols(); lc != nil && rc != nil {
			join.cols = append(append([]string{}, lc...), rc...)
			join.Strategy = JoinStrategyNested
			if ref.JoinKind == JoinInner && ref.On != nil {
				if _, _, ok := equiJoinCols(ref.On, lc, rc); ok {
					join.Strategy = JoinStrategyHash
				}
			}
		}
		acc = join
	}

	return &SelectPlan{Stmt: st, Source: acc, Residual: andAll(residual)}
}

// planScan lowers one FROM entry into a scan node.
func (s *Session) planScan(ref TableRef) SourceNode {
	if _, ok := s.engine.Table(ref.Table); ok {
		return &SeqScanNode{Table: ref.Table, Alias: ref.Alias, cols: qualifiedCols(s.engine, ref)}
	}
	if _, ok := s.engine.ViewByName(ref.Table); ok {
		return &ViewScanNode{View: ref.Table, Alias: ref.Alias}
	}
	// Unknown name: lower to a seq scan whose execution reports the
	// NotFoundError, keeping the planner infallible.
	return &SeqScanNode{Table: ref.Table, Alias: ref.Alias}
}

// chooseAccessPath upgrades a seq scan to an index scan when one of the
// pushed conjuncts is `col = literal` on an indexed or primary-key column.
func (s *Session) chooseAccessPath(ref TableRef, src SourceNode, pushed []Expr) SourceNode {
	scan, ok := src.(*SeqScanNode)
	if !ok || scan.cols == nil {
		return src
	}
	if ix := s.indexScanFor(ref.Table, ref.Alias, andAll(pushed), scan.cols); ix != nil {
		return ix
	}
	return src
}

// indexScanFor builds an index scan serving a `col = literal` conjunct of
// where on an indexed or primary-key column, or nil when no access path
// applies. It is the single access-path selection rule, shared by SELECT
// scans and the UPDATE/DELETE write planner so the two can never diverge.
func (s *Session) indexScanFor(table, alias string, where Expr, cols []string) *IndexScanNode {
	t, ok := s.engine.Table(table)
	if !ok {
		return nil
	}
	col, val, ok := indexableEq(where, cols)
	if !ok {
		return nil
	}
	via, ok := t.eqAccessPath(col)
	if !ok {
		return nil
	}
	return &IndexScanNode{
		Table:  table,
		Alias:  alias,
		Column: t.Columns[col].Name,
		Via:    via,
		Val:    val,
		col:    col,
		cols:   cols,
	}
}

// qualifiedCols computes the qualified output columns of a base-table scan.
func qualifiedCols(e *Engine, ref TableRef) []string {
	t, ok := e.Table(ref.Table)
	if !ok {
		return nil
	}
	q := strings.ToLower(ref.Alias)
	if q == "" {
		q = strings.ToLower(ref.Table)
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = q + "." + strings.ToLower(c.Name)
	}
	return cols
}

// splitConjuncts flattens a predicate into its top-level AND conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.Left), splitConjuncts(be.Right)...)
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction from its parts; nil for an empty list.
func andAll(parts []Expr) Expr {
	if len(parts) == 0 {
		return nil
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = &BinaryExpr{Op: "AND", Left: out, Right: p}
	}
	return out
}

// owningSource reports the single FROM source a conjunct's column references
// all resolve to. Conjuncts with subqueries, no column references, outer
// (correlated) references, or references spanning sources stay residual.
func owningSource(c Expr, sources []SourceNode) (int, bool) {
	owner := -1
	ok := true
	sawRef := false
	walkExpr(c, func(x Expr) {
		if !ok {
			return
		}
		if _, isSub := x.(*SubqueryExpr); isSub {
			ok = false
			return
		}
		cr, isRef := x.(*ColumnRef)
		if !isRef {
			return
		}
		sawRef = true
		hit := -1
		for i, src := range sources {
			cols := src.staticCols()
			if cols == nil {
				ok = false
				return
			}
			if resolveIn(cr, cols) >= 0 {
				if hit >= 0 {
					// Resolves in more than one source: ambiguous.
					ok = false
					return
				}
				hit = i
			}
		}
		if hit < 0 {
			// Unresolvable here (outer reference); keep residual so the
			// enclosing query's environment stays in scope.
			ok = false
			return
		}
		if owner >= 0 && owner != hit {
			ok = false
			return
		}
		owner = hit
	})
	if !ok || !sawRef || owner < 0 {
		return 0, false
	}
	return owner, true
}

// eqAccessPath reports how an equality on column col can be served without
// a full scan: via the single-column primary key or a hash index.
func (t *Table) eqAccessPath(col int) (string, bool) {
	if len(t.pkCols) == 1 && t.pkCols[0] == col {
		return "primary key", true
	}
	if ix, ok := t.indexes[strings.ToLower(t.Columns[col].Name)]; ok {
		return "index " + ix.Name, true
	}
	return "", false
}

// planStmt lowers any explainable statement into a Plan.
func (s *Session) planStmt(stmt Stmt) (*Plan, error) {
	switch st := stmt.(type) {
	case *SelectStmt:
		sel := s.planSelect(st)
		// Execution reports missing tables lazily; an explained plan should
		// name the problem up front instead of showing a scan of nothing.
		if err := checkSourcesExist(sel.Source); err != nil {
			return nil, err
		}
		return &Plan{stmt: st, sel: sel, root: sel.Tree()}, nil
	case *InsertStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil, &NotFoundError{Kind: "table", Name: st.Table}
		}
		return &Plan{stmt: st, header: fmt.Sprintf("Insert on %s (%d rows)", st.Table, len(st.Rows)),
			root: resultNode{}}, nil
	case *UpdateStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil, &NotFoundError{Kind: "table", Name: st.Table}
		}
		wp := s.planWrite(st.Table, st.Where)
		return &Plan{stmt: st, write: wp, header: "Update on " + st.Table,
			root: wp.Tree()}, nil
	case *DeleteStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil, &NotFoundError{Kind: "table", Name: st.Table}
		}
		wp := s.planWrite(st.Table, st.Where)
		return &Plan{stmt: st, write: wp, header: "Delete on " + st.Table,
			root: wp.Tree()}, nil
	case *ExplainStmt:
		return nil, fmt.Errorf("cannot EXPLAIN an EXPLAIN statement")
	}
	return nil, fmt.Errorf("EXPLAIN does not support %s statements", verbOf(stmt))
}

// checkSourcesExist reports the first scan whose table resolved to nothing
// at plan time (planScan lowers unknown names to column-less seq scans).
func checkSourcesExist(n SourceNode) error {
	switch src := n.(type) {
	case nil:
		return nil
	case *SeqScanNode:
		if src.cols == nil {
			return &NotFoundError{Kind: "table", Name: src.Table}
		}
	case *FilterNode:
		return checkSourcesExist(src.Input)
	case *JoinNode:
		if err := checkSourcesExist(src.Left); err != nil {
			return err
		}
		return checkSourcesExist(src.Right)
	}
	return nil
}

// planWrite lowers the row-matching half of an UPDATE/DELETE into a
// WritePlan, applying the same access-path selection SELECT scans get: a
// `col = literal` conjunct on an indexed or primary-key column upgrades the
// sequential scan to an index scan (the full WHERE is still re-checked per
// row). EXPLAIN renders this plan and the executor fetches rows through it,
// so the displayed access path is the executed one.
func (s *Session) planWrite(table string, where Expr) *WritePlan {
	src := s.planScan(TableRef{Table: table})
	if scan, ok := src.(*SeqScanNode); ok && scan.cols != nil && where != nil {
		if ix := s.indexScanFor(table, "", where, scan.cols); ix != nil {
			src = ix
		}
	}
	return &WritePlan{Table: table, Access: src, Where: where}
}

func verbOf(stmt Stmt) string {
	switch stmt.(type) {
	case *SelectStmt:
		return "SELECT"
	case *InsertStmt:
		return "INSERT"
	case *UpdateStmt:
		return "UPDATE"
	case *DeleteStmt:
		return "DELETE"
	case *CreateTableStmt:
		return "CREATE TABLE"
	case *DropTableStmt:
		return "DROP TABLE"
	case *CreateViewStmt:
		return "CREATE VIEW"
	case *DropViewStmt:
		return "DROP VIEW"
	case *CreateIndexStmt:
		return "CREATE INDEX"
	case *AlterTableStmt:
		return "ALTER TABLE"
	case *GrantStmt:
		return "GRANT"
	case *RevokeStmt:
		return "REVOKE"
	case *BeginStmt:
		return "BEGIN"
	case *CommitStmt:
		return "COMMIT"
	case *RollbackStmt:
		return "ROLLBACK"
	case *ExplainStmt:
		return "EXPLAIN"
	}
	return fmt.Sprintf("%T", stmt)
}

// Plan parses sql and returns the engine's chosen plan without executing it,
// under the same privilege checks execution would apply.
func (s *Session) Plan(sql string) (*Plan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("syntax error: %w", err)
	}
	if ex, ok := stmt.(*ExplainStmt); ok {
		stmt = ex.Stmt
	}
	s.engine.mu.RLock()
	defer s.engine.mu.RUnlock()
	if err := s.checkStmtPrivileges(stmt); err != nil {
		return nil, err
	}
	return s.planStmt(stmt)
}
