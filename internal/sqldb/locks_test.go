package sqldb

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockManagerDisjointTablesOverlap: two DML statements on different
// tables must be able to hold their locks at the same time, and the
// high-water counter must record the overlap.
func TestLockManagerDisjointTablesOverlap(t *testing.T) {
	var lm lockManager
	lm.global.RLock()
	unlockA := lm.lockNamed([]string{"a"})
	unlockB := lm.lockNamed([]string{"b"}) // must not block
	if got := lm.maxWriters.Load(); got < 2 {
		t.Fatalf("maxWriters = %d, want >= 2 while both table locks are held", got)
	}
	unlockB()
	unlockA()
	lm.global.RUnlock()
	if got := lm.tableAcquires.Load(); got != 2 {
		t.Fatalf("tableAcquires = %d, want 2", got)
	}
}

// TestLockManagerSameTableBlocks: a second statement on the same table must
// wait for the first to release.
func TestLockManagerSameTableBlocks(t *testing.T) {
	var lm lockManager
	lm.global.RLock()
	defer lm.global.RUnlock()
	unlock := lm.lockNamed([]string{"a", "b"})
	acquired := make(chan struct{})
	go func() {
		u := lm.lockNamed([]string{"b"})
		u()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("lock on table b acquired while another statement held it")
	case <-time.After(20 * time.Millisecond):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("lock on table b never acquired after release")
	}
}

// TestWriteLockNamesExpandsViewsAndFKs: the lock set must include tables
// behind views referenced by subqueries and the FK neighborhood of the
// target table, in sorted order.
func TestWriteLockNamesExpandsViewsAndFKs(t *testing.T) {
	e := NewEngine("locknames")
	s := e.NewSession("root")
	s.MustExec("CREATE TABLE parent (id INT PRIMARY KEY)")
	s.MustExec("CREATE TABLE child (id INT PRIMARY KEY, pid INT REFERENCES parent)")
	s.MustExec("CREATE TABLE other (id INT PRIMARY KEY)")
	s.MustExec("CREATE VIEW vother AS SELECT id FROM other")

	stmt, err := Parse("UPDATE child SET pid = 1 WHERE id IN (SELECT id FROM vother)")
	if err != nil {
		t.Fatal(err)
	}
	got := e.writeLockNames(stmt)
	want := []string{"child", "other", "parent"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("writeLockNames = %v, want %v", got, want)
	}

	stmt, err = Parse("DELETE FROM parent WHERE id = 9")
	if err != nil {
		t.Fatal(err)
	}
	got = e.writeLockNames(stmt)
	want = []string{"child", "parent"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("writeLockNames(delete parent) = %v, want %v (child FK check reads child)", got, want)
	}
}

// TestDisjointTableWritersDoNotSerialize is the -race stress test: four
// sessions hammer four distinct tables concurrently. Correctness: every
// update lands. Concurrency: the lock manager's high-water mark shows at
// least two writers inside their statements at once, which the old
// engine-wide writeMu made impossible.
func TestDisjointTableWritersDoNotSerialize(t *testing.T) {
	e := NewEngine("disjoint")
	setup := e.NewSession("root")
	const writers = 4
	const updates = 400
	for w := 0; w < writers; w++ {
		setup.MustExec(fmt.Sprintf("CREATE TABLE w%d (id INT PRIMARY KEY, n INT, pad TEXT)", w))
		for i := 0; i < 50; i++ {
			setup.MustExec(fmt.Sprintf("INSERT INTO w%d VALUES (%d, 0, 'xxxxxxxxxxxxxxxx')", w, i))
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < updates; i++ {
				// Unindexed predicate: the statement scans the table, so
				// locks are held long enough to overlap under -race.
				if _, err := s.Exec(fmt.Sprintf("UPDATE w%d SET n = n + 1 WHERE id >= 0", w)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	check := e.NewSession("root")
	for w := 0; w < writers; w++ {
		r := check.MustExec(fmt.Sprintf("SELECT MIN(n), MAX(n) FROM w%d", w))
		if len(r.Rows) != 1 || r.Rows[0][0].I != updates || r.Rows[0][1].I != updates {
			t.Fatalf("table w%d: n = %v, want all %d", w, r.Rows[0], updates)
		}
	}
	if got := e.LockStats().MaxConcurrentWriters; got < 2 {
		t.Fatalf("MaxConcurrentWriters = %d, want >= 2 (disjoint writers must overlap)", got)
	}
}

// benchDisjointWriters measures point-update throughput with four writers on
// four distinct tables, either under the per-table lock manager or the
// single-global-lock fallback.
func benchDisjointWriters(b *testing.B, globalOnly bool) {
	const writers = 4
	const keys = 8
	e := NewEngine("writerbench")
	e.SetGlobalWriteLock(globalOnly)
	setup := e.NewSession("root")
	stmts := make([][]string, writers)
	for w := 0; w < writers; w++ {
		setup.MustExec(fmt.Sprintf("CREATE TABLE w%d (id INT PRIMARY KEY, n INT)", w))
		for i := 0; i < keys; i++ {
			setup.MustExec(fmt.Sprintf("INSERT INTO w%d VALUES (%d, 0)", w, i))
			stmts[w] = append(stmts[w], fmt.Sprintf("UPDATE w%d SET n = n + 1 WHERE id = %d", w, i))
		}
	}
	var widSeq atomic.Int64
	// One goroutine per writer table regardless of GOMAXPROCS.
	b.SetParallelism((writers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		wid := int(widSeq.Add(1)-1) % writers
		qs := stmts[wid]
		s := e.NewSession("root")
		i := 0
		for pb.Next() {
			s.MustExec(qs[i%keys])
			i++
		}
	})
}

func BenchmarkDisjointWritersSharded(b *testing.B) { benchDisjointWriters(b, false) }

func BenchmarkDisjointWritersGlobalLock(b *testing.B) { benchDisjointWriters(b, true) }

// TestGlobalWriteLockFallbackSerializes: with the single-lock fallback on,
// DML routes through the global lock and the table-lock counters stay flat.
func TestGlobalWriteLockFallbackSerializes(t *testing.T) {
	e := NewEngine("globalonly")
	e.SetGlobalWriteLock(true)
	s := e.NewSession("root")
	s.MustExec("CREATE TABLE g (id INT PRIMARY KEY, n INT)")
	before := e.LockStats()
	s.MustExec("INSERT INTO g VALUES (1, 0)")
	s.MustExec("UPDATE g SET n = 1 WHERE id = 1")
	after := e.LockStats()
	if after.TableAcquires != before.TableAcquires {
		t.Fatalf("table locks acquired under global-only mode: %d -> %d", before.TableAcquires, after.TableAcquires)
	}
	if after.GlobalAcquires <= before.GlobalAcquires {
		t.Fatal("global lock should have been acquired for DML in global-only mode")
	}
}
