package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

// rangeEngine builds the ordered-index fixture: n rows with an INT primary
// key, an indexed INT group column (every 10th row NULL), an indexed TEXT
// column, and an unindexed REAL column. Returned sessions share one engine.
func rangeEngine(t testing.TB, n int) (*Engine, *Session) {
	t.Helper()
	e := NewEngine("range")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE r (id INT PRIMARY KEY, grp INT, name TEXT, score REAL)`)
	s.MustExec(`CREATE INDEX idx_grp ON r (grp)`)
	s.MustExec(`CREATE INDEX idx_name ON r (name)`)
	batch := ""
	for i := 0; i < n; i++ {
		grp := fmt.Sprintf("%d", i%50)
		if i%10 == 9 {
			grp = "NULL"
		}
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %s, 'n%05d', %f)", i, grp, i, float64(i)*0.5)
		if (i+1)%500 == 0 || i == n-1 {
			s.MustExec("INSERT INTO r VALUES " + batch)
			batch = ""
		}
	}
	return e, s
}

func explainText(t *testing.T, s *Session, sql string) string {
	t.Helper()
	p, err := s.Plan(sql)
	if err != nil {
		t.Fatalf("Plan(%q): %v", sql, err)
	}
	return p.Explain()
}

func TestRangeScanSelection(t *testing.T) {
	_, s := rangeEngine(t, 500)

	// BETWEEN on an indexed column merges into one closed range.
	text := explainText(t, s, "SELECT id FROM r WHERE grp BETWEEN 3 AND 17")
	if !strings.Contains(text, "Index Range Scan on r using index idx_grp (grp >= 3 AND grp <= 17)") {
		t.Fatalf("expected range scan for BETWEEN:\n%s", text)
	}

	// Comparison conjuncts on the single-column PK use its ordered face.
	text = explainText(t, s, "SELECT id FROM r WHERE id < 100")
	if !strings.Contains(text, "Index Range Scan on r using primary key (id < 100)") {
		t.Fatalf("expected PK range scan:\n%s", text)
	}

	// Conjuncts on one column tighten into a single bound pair; the literal
	// may sit on either side of the comparison.
	text = explainText(t, s, "SELECT id FROM r WHERE grp > 3 AND 17 >= grp AND grp > 1")
	if !strings.Contains(text, "Index Range Scan on r using index idx_grp (grp > 3 AND grp <= 17)") {
		t.Fatalf("expected merged bounds:\n%s", text)
	}

	// Text ranges work through the text index.
	text = explainText(t, s, "SELECT id FROM r WHERE name BETWEEN 'n00010' AND 'n00020'")
	if !strings.Contains(text, "Index Range Scan on r using index idx_name") {
		t.Fatalf("expected text range scan:\n%s", text)
	}

	// An unindexed column stays a seq scan.
	text = explainText(t, s, "SELECT id FROM r WHERE score < 10.0")
	if !strings.Contains(text, "Seq Scan on r") || strings.Contains(text, "Range Scan") {
		t.Fatalf("unindexed range must seq-scan:\n%s", text)
	}

	// Equality still wins over range when both are available.
	text = explainText(t, s, "SELECT id FROM r WHERE grp = 5 AND id < 400")
	if !strings.Contains(text, "Index Scan on r using index idx_grp (grp = 5)") {
		t.Fatalf("equality must take priority over range:\n%s", text)
	}

	// NOT BETWEEN, ORed ranges, and type-incompatible bounds are not ranges.
	for _, q := range []string{
		"SELECT id FROM r WHERE grp NOT BETWEEN 3 AND 17",
		"SELECT id FROM r WHERE grp < 3 OR grp > 17",
		"SELECT id FROM r WHERE grp < 'x'",
	} {
		if text := explainText(t, s, q); strings.Contains(text, "Range Scan") {
			t.Fatalf("%s must not use a range scan:\n%s", q, text)
		}
	}
}

// TestRangeScanVisitsOnlyInRange is the PR's acceptance criterion: a
// BETWEEN on an indexed column materializes only the in-range rows, where
// the seq scan visits the whole table.
func TestRangeScanVisitsOnlyInRange(t *testing.T) {
	e, s := rangeEngine(t, 2000)

	matched := s.MustExec("SELECT COUNT(*) FROM r WHERE grp BETWEEN 3 AND 7").Rows[0][0].I
	if matched == 0 {
		t.Fatal("fixture has no in-range rows")
	}

	before := e.ScanRowsVisited()
	s.MustExec("SELECT COUNT(*) FROM r WHERE grp BETWEEN 3 AND 7")
	if got := e.ScanRowsVisited() - before; got != matched {
		t.Fatalf("range scan visited %d rows, want exactly the %d in-range rows", got, matched)
	}

	// The same predicate on the unindexed column walks the whole table.
	total := s.MustExec("SELECT COUNT(*) FROM r").Rows[0][0].I
	before = e.ScanRowsVisited()
	s.MustExec("SELECT COUNT(*) FROM r WHERE score BETWEEN 3.0 AND 7.0")
	if got := e.ScanRowsVisited() - before; got != total {
		t.Fatalf("seq scan visited %d rows, want all %d", got, total)
	}
}

// TestRangeAndTopKEquivalence is the access-path equivalence satellite:
// every range / ordered-scan / Top-K plan must return byte-identical
// results to the forced seq-scan path, across INT, TEXT, and NULLs at range
// boundaries. The forced session plans with every upgrade disabled
// (forceSeqScan) and executes through ExecStmt so its plans never touch the
// shared plan cache.
func TestRangeAndTopKEquivalence(t *testing.T) {
	e, s := rangeEngine(t, 1000)
	forced := e.NewSession("root")
	forced.forceSeqScan = true

	queries := []string{
		// Closed, open, and half-open INT ranges; bounds on and off data.
		"SELECT id, grp FROM r WHERE grp BETWEEN 10 AND 20 ORDER BY id",
		"SELECT id, grp FROM r WHERE grp > 10 AND grp < 20 ORDER BY id",
		"SELECT id, grp FROM r WHERE grp >= 48 ORDER BY id",
		"SELECT id, grp FROM r WHERE grp <= 0 ORDER BY id",
		"SELECT id, grp FROM r WHERE grp < 0 ORDER BY id",                 // empty
		"SELECT id, grp FROM r WHERE grp BETWEEN 30 AND 10 ORDER BY id",   // inverted => empty
		"SELECT id, grp FROM r WHERE grp BETWEEN 49 AND 4900 ORDER BY id", // upper bound past data
		// PK ranges (dense, unique).
		"SELECT id FROM r WHERE id BETWEEN 100 AND 200",
		"SELECT id FROM r WHERE id > 990",
		"SELECT id FROM r WHERE id < 10 AND id >= 5",
		// TEXT ranges.
		"SELECT id, name FROM r WHERE name BETWEEN 'n00100' AND 'n00200' ORDER BY id",
		"SELECT id, name FROM r WHERE name > 'n00990' ORDER BY id",
		// Float literals against the INT column (cross-kind compare).
		"SELECT id, grp FROM r WHERE grp BETWEEN 9.5 AND 12.5 ORDER BY id",
		// Ordered scans: NULLs last ascending, first descending, ties in
		// insertion order either way.
		"SELECT id, grp FROM r ORDER BY grp",
		"SELECT id, grp FROM r ORDER BY grp DESC",
		"SELECT id, grp FROM r ORDER BY grp LIMIT 25",
		"SELECT id, grp FROM r ORDER BY grp DESC LIMIT 25",
		"SELECT id, grp FROM r ORDER BY grp LIMIT 10 OFFSET 5",
		"SELECT id, grp FROM r ORDER BY grp DESC LIMIT 10 OFFSET 995", // offset into the tail
		"SELECT id FROM r ORDER BY id DESC LIMIT 7",
		// Range + pushed sort + Top-K on the same column.
		"SELECT id, grp FROM r WHERE grp BETWEEN 3 AND 7 ORDER BY grp LIMIT 12",
		"SELECT id, grp FROM r WHERE grp >= 45 ORDER BY grp DESC LIMIT 9",
		// Sort pushed but limit not fusable (extra conjunct above the scan).
		"SELECT id, grp FROM r WHERE grp BETWEEN 3 AND 7 AND name LIKE 'n%' ORDER BY grp LIMIT 6",
		// ORDER BY a range-scanned column when sort cannot push (two keys).
		"SELECT id, grp FROM r WHERE grp BETWEEN 3 AND 7 ORDER BY grp, id",
	}
	for _, q := range queries {
		fast := s.MustExec(q)
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		slow, err := forced.ExecStmt(stmt)
		if err != nil {
			t.Fatalf("forced %q: %v", q, err)
		}
		if fast.Text() != slow.Text() {
			t.Fatalf("%s\noptimized and forced seq-scan results differ:\n--- optimized ---\n%s\n--- forced ---\n%s",
				q, fast.Text(), slow.Text())
		}
	}
}

func TestOrderByPushdownExplain(t *testing.T) {
	_, s := rangeEngine(t, 200)

	// ORDER BY + LIMIT on an ordered column fuses into a Top-K scan: no
	// Sort stage, no Limit stage, the scan carries the order.
	text := explainText(t, s, "SELECT id FROM r ORDER BY grp LIMIT 10")
	if !strings.Contains(text, "Top-K (limit 10): grp") ||
		!strings.Contains(text, "Index Range Scan on r using index idx_grp order: grp") {
		t.Fatalf("expected Top-K over ordered scan:\n%s", text)
	}
	if strings.Contains(text, "Sort:") || strings.Contains(text, "Limit 10") {
		t.Fatalf("Top-K plan must not keep Sort/Limit stages:\n%s", text)
	}

	// DESC and OFFSET render in the Top-K node.
	text = explainText(t, s, "SELECT id FROM r ORDER BY id DESC LIMIT 5 OFFSET 3")
	if !strings.Contains(text, "Top-K (limit 5 offset 3): id DESC") ||
		!strings.Contains(text, "Index Range Scan on r using primary key order: id DESC") {
		t.Fatalf("expected descending PK Top-K:\n%s", text)
	}

	// A conjunct the bounds don't imply blocks the fusion: the sort is
	// still pushed (no Sort stage) but Limit stays a pipeline stage.
	text = explainText(t, s, "SELECT id FROM r WHERE grp <= 7 AND name LIKE 'n%' ORDER BY grp LIMIT 4")
	if strings.Contains(text, "Sort:") || strings.Contains(text, "Top-K") {
		t.Fatalf("partial filter: want pushed sort without Top-K:\n%s", text)
	}
	if !strings.Contains(text, "Limit 4") || !strings.Contains(text, "order: grp") {
		t.Fatalf("partial filter: want Limit stage over ordered scan:\n%s", text)
	}

	// An output alias shadowing the sort key blocks pushdown entirely
	// (orderRows sorts by the aliased projection, not the table column).
	text = explainText(t, s, "SELECT name AS grp FROM r ORDER BY grp LIMIT 3")
	if !strings.Contains(text, "Sort: grp") {
		t.Fatalf("alias shadow must keep the real sort:\n%s", text)
	}
	r := s.MustExec("SELECT name AS grp FROM r ORDER BY grp LIMIT 1")
	if r.Rows[0][0].S != "n00000" {
		t.Fatalf("alias shadow sorted wrong: %v", r.Rows[0][0])
	}

	// Aggregation, DISTINCT, and multi-key sorts keep the sort stage.
	for _, q := range []string{
		"SELECT grp, COUNT(*) FROM r GROUP BY grp ORDER BY grp",
		"SELECT DISTINCT grp FROM r ORDER BY grp",
		"SELECT id, grp FROM r ORDER BY grp, id",
	} {
		if text := explainText(t, s, q); !strings.Contains(text, "Sort:") {
			t.Fatalf("%s must keep its sort stage:\n%s", q, text)
		}
	}
}

func TestTopKEarlyTermination(t *testing.T) {
	e, s := rangeEngine(t, 2000)

	// The fused limit stops the ordered scan after offset+limit rows.
	before := e.ScanRowsVisited()
	r := s.MustExec("SELECT id FROM r ORDER BY id LIMIT 5 OFFSET 2")
	if got := e.ScanRowsVisited() - before; got != 7 {
		t.Fatalf("Top-K visited %d rows, want limit+offset = 7", got)
	}
	if len(r.Rows) != 5 || r.Rows[0][0].I != 2 || r.Rows[4][0].I != 6 {
		t.Fatalf("Top-K rows wrong: %v", r.Rows)
	}

	// Bounded Top-K: range bounds + fused limit visit min(k, in-range).
	before = e.ScanRowsVisited()
	r = s.MustExec("SELECT id, grp FROM r WHERE grp BETWEEN 10 AND 20 ORDER BY grp LIMIT 4")
	if got := e.ScanRowsVisited() - before; got != 4 {
		t.Fatalf("bounded Top-K visited %d rows, want 4", got)
	}
	for _, row := range r.Rows {
		if row[1].I < 10 || row[1].I > 20 {
			t.Fatalf("row outside range: %v", row)
		}
	}

	// DESC Top-K terminates too (NULL grp rows order first and count).
	before = e.ScanRowsVisited()
	r = s.MustExec("SELECT id, grp FROM r ORDER BY grp DESC LIMIT 3")
	if got := e.ScanRowsVisited() - before; got != 3 {
		t.Fatalf("desc Top-K visited %d rows, want 3", got)
	}
	for _, row := range r.Rows {
		if !row[1].IsNull() {
			t.Fatalf("desc Top-K must surface NULLs first, got %v", r.Rows)
		}
	}
}

// TestWriteRangeAccess: UPDATE/DELETE with range predicates match rows
// through the ordered index and visit only in-range rows.
func TestWriteRangeAccess(t *testing.T) {
	e, s := rangeEngine(t, 2000)

	text := s.MustExec("EXPLAIN UPDATE r SET score = 0 WHERE grp BETWEEN 3 AND 5").Text()
	if !strings.Contains(text, "Update on r") ||
		!strings.Contains(text, "Index Range Scan on r using index idx_grp (grp >= 3 AND grp <= 5)") {
		t.Fatalf("EXPLAIN UPDATE must show the range access path:\n%s", text)
	}

	matched := s.MustExec("SELECT COUNT(*) FROM r WHERE grp BETWEEN 3 AND 5").Rows[0][0].I
	before := e.DMLRowsVisited()
	r := s.MustExec("UPDATE r SET score = -1 WHERE grp BETWEEN 3 AND 5")
	if got := e.DMLRowsVisited() - before; got != matched {
		t.Fatalf("range UPDATE visited %d rows, want %d", got, matched)
	}
	if int64(r.Affected) != matched {
		t.Fatalf("range UPDATE affected %d rows, want %d", r.Affected, matched)
	}

	// Range DELETE through the PK's ordered face, wrapped in a transaction:
	// rollback must restore the rows and the ordered structures with them.
	total := s.MustExec("SELECT COUNT(*) FROM r").Rows[0][0].I
	s.MustExec("BEGIN")
	before = e.DMLRowsVisited()
	r = s.MustExec("DELETE FROM r WHERE id >= 1990")
	if got := e.DMLRowsVisited() - before; got != 10 {
		t.Fatalf("PK range DELETE visited %d rows, want 10", got)
	}
	if r.Affected != 10 {
		t.Fatalf("PK range DELETE affected %d rows, want 10", r.Affected)
	}
	s.MustExec("ROLLBACK")
	if got := s.MustExec("SELECT COUNT(*) FROM r").Rows[0][0].I; got != total {
		t.Fatalf("rollback lost rows: %d, want %d", got, total)
	}
	// The resurrected rows are findable through the ordered index again.
	if got := s.MustExec("SELECT COUNT(*) FROM r WHERE id BETWEEN 1990 AND 1999").Rows[0][0].I; got != 10 {
		t.Fatalf("ordered PK out of sync after rollback: %d rows", got)
	}
}

// TestOrderedIndexMaintenance drives the sorted face through the full DML
// life cycle — inserts out of order, value-moving updates, deletes,
// CREATE INDEX over existing rows — and checks range results against
// recomputed expectations.
func TestOrderedIndexMaintenance(t *testing.T) {
	e := NewEngine("maint")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE m (id INT PRIMARY KEY, v INT)`)
	// Out-of-order inserts.
	for _, v := range []int{50, 10, 30, 20, 40, 10, 30} {
		s.MustExec(fmt.Sprintf("INSERT INTO m VALUES (%d, %d)", s.MustExec("SELECT COUNT(*) FROM m").Rows[0][0].I, v))
	}
	// Index created after the data exists: the build must sort it.
	s.MustExec("CREATE INDEX idx_v ON m (v)")
	r := s.MustExec("SELECT id FROM m WHERE v BETWEEN 20 AND 40 ORDER BY v")
	if len(r.Rows) != 4 {
		t.Fatalf("range after CREATE INDEX: %d rows, want 4", len(r.Rows))
	}

	// An UPDATE that moves a value across the range boundary.
	s.MustExec("UPDATE m SET v = 25 WHERE id = 0") // 50 -> 25
	if got := s.MustExec("SELECT COUNT(*) FROM m WHERE v BETWEEN 20 AND 40").Rows[0][0].I; got != 5 {
		t.Fatalf("after update want 5 in-range rows, got %d", got)
	}
	if got := s.MustExec("SELECT COUNT(*) FROM m WHERE v > 40").Rows[0][0].I; got != 0 {
		t.Fatalf("moved value still visible above 40: %d", got)
	}

	// Deleting every row of one value removes it from the ordered face.
	s.MustExec("DELETE FROM m WHERE v = 10")
	r = s.MustExec("SELECT v FROM m ORDER BY v LIMIT 1")
	if r.Rows[0][0].I != 20 {
		t.Fatalf("min after delete = %v, want 20", r.Rows[0][0])
	}
}

// TestNegativeLimitOffset is the satellite regression test: negative or
// non-integer LIMIT/OFFSET must fail with a clear error, never slice.
func TestNegativeLimitOffset(t *testing.T) {
	_, s := rangeEngine(t, 20)
	for sql, want := range map[string]string{
		"SELECT id FROM r LIMIT -1":             "LIMIT must be a non-negative integer",
		"SELECT id FROM r ORDER BY id LIMIT -5": "LIMIT must be a non-negative integer",
		"SELECT id FROM r OFFSET -2":            "OFFSET must be a non-negative integer",
		"SELECT id FROM r LIMIT 5 OFFSET -2":    "OFFSET must be a non-negative integer",
		"SELECT id FROM r LIMIT 'x'":            "LIMIT must be a non-negative integer",
		"SELECT id FROM r LIMIT 2.5":            "LIMIT must be a non-negative integer",
	} {
		_, err := s.Exec(sql)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: want error %q, got %v", sql, want, err)
		}
	}
	// LIMIT 0 is legal and returns nothing — and must not fuse as Top-K
	// (MaxRows 0 means unlimited to the scan, so the advertised cutoff
	// would be a lie).
	if r := s.MustExec("SELECT id FROM r ORDER BY id LIMIT 0"); len(r.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(r.Rows))
	}
	if text := explainText(t, s, "SELECT id FROM r ORDER BY id LIMIT 0"); strings.Contains(text, "Top-K") {
		t.Fatalf("LIMIT 0 must not advertise Top-K:\n%s", text)
	}
}

// TestRangePlanCache: range and Top-K plans are cached like every other
// statement, and a catalog change (CREATE INDEX) invalidates a seq-scan
// plan so the next execution upgrades to the range scan.
func TestRangePlanCache(t *testing.T) {
	e := NewEngine("rangecache")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE c (id INT PRIMARY KEY, v INT)`)
	for i := 0; i < 200; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO c VALUES (%d, %d)", i, i%20))
	}
	const q = "SELECT COUNT(*) FROM c WHERE v BETWEEN 3 AND 5"

	// Cold: no index, seq scan; second run is a cache hit.
	want := s.MustExec(q).Rows[0][0].I
	h0, _ := e.PlanCacheStats()
	if got := s.MustExec(q).Rows[0][0].I; got != want {
		t.Fatalf("cached seq result changed: %d vs %d", got, want)
	}
	if h1, _ := e.PlanCacheStats(); h1 != h0+1 {
		t.Fatalf("expected a plan-cache hit, stats %d -> %d", h0, h1)
	}

	// CREATE INDEX bumps the catalog: the cached seq plan is stale and the
	// replan chooses the range scan, with identical results.
	s.MustExec("CREATE INDEX idx_v ON c (v)")
	before := e.ScanRowsVisited()
	if got := s.MustExec(q).Rows[0][0].I; got != want {
		t.Fatalf("post-index result changed: %d vs %d", got, want)
	}
	if visited := e.ScanRowsVisited() - before; visited != want {
		t.Fatalf("replanned query visited %d rows, want the %d in-range rows", visited, want)
	}

	// Cached Top-K plans see data changes (plans cache access strategy, not
	// results).
	const topq = "SELECT id FROM c ORDER BY v LIMIT 1 OFFSET 0"
	first := s.MustExec(topq).Rows[0][0].I
	s.MustExec("UPDATE c SET v = -100 WHERE id = 77")
	if got := s.MustExec(topq).Rows[0][0].I; got != 77 {
		t.Fatalf("cached Top-K missed new minimum: got id %d (first run %d)", got, first)
	}
}
