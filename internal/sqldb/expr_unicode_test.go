package sqldb

import (
	"strings"
	"testing"
)

// exprEngine evaluates scalar expressions through the full SQL path.
func exprEngine(t *testing.T) *Session {
	t.Helper()
	return NewEngine("expr").NewSession("root")
}

func evalScalar(t *testing.T, s *Session, expr string) Value {
	t.Helper()
	res := s.MustExec("SELECT " + expr)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("SELECT %s returned %+v", expr, res.Rows)
	}
	return res.Rows[0][0]
}

// TestLikeUnicode: LIKE wildcards consume characters, not bytes, so
// multi-byte UTF-8 operands match as PostgreSQL matches them.
func TestLikeUnicode(t *testing.T) {
	s := exprEngine(t)
	cases := []struct {
		operand, pattern string
		want             bool
	}{
		{"é", "_", true},   // one two-byte rune = one character
		{"é", "__", false}, // not two characters
		{"héllo", "h_llo", true},
		{"héllo", "h%o", true},
		{"日本語", "___", true}, // three three-byte runes
		{"日本語", "日_語", true},
		{"日本語", "%本%", true},
		{"日本語", "_本", false},
		{"naïve", "na_ve", true},
		{"naïve", "%ïve", true},
		// Backtracking across multi-byte runes must not resync mid-rune.
		{"ααβγ", "%βγ", true},
		{"ααβγ", "%β_", true},
		{"ααβγ", "%δ%", false},
		// Combining mark: 'e' + U+0301 is two runes.
		{"é", "__", true},
		{"é", "_", false},
		// Plain ASCII behavior unchanged.
		{"abc", "a%", true},
		{"abc", "_b_", true},
		{"abc", "%d", false},
		{"", "%", true},
		{"", "_", false},
	}
	for _, c := range cases {
		got := evalScalar(t, s, "'"+c.operand+"' LIKE '"+c.pattern+"'")
		if got.Kind != KindBool || got.B != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.operand, c.pattern, got, c.want)
		}
	}
}

// TestLengthUnicode: LENGTH counts characters, not bytes.
func TestLengthUnicode(t *testing.T) {
	s := exprEngine(t)
	cases := map[string]int64{
		"''":      0,
		"'abc'":   3,
		"'é'":     1,
		"'héllo'": 5,
		"'日本語'":   3,
		"'naïve'": 5,
		"'é'":    2, // combining mark counts as its own character
	}
	for expr, want := range cases {
		got := evalScalar(t, s, "LENGTH("+expr+")")
		if got.Kind != KindInt || got.I != want {
			t.Errorf("LENGTH(%s) = %v, want %d", expr, got, want)
		}
	}
	if got := evalScalar(t, s, "LENGTH(NULL)"); !got.IsNull() {
		t.Errorf("LENGTH(NULL) = %v, want NULL", got)
	}
}

// TestSubstrUnicode: SUBSTR slices by characters and never splits a rune.
func TestSubstrUnicode(t *testing.T) {
	s := exprEngine(t)
	cases := []struct {
		expr, want string
	}{
		{"SUBSTR('日本語', 2)", "本語"},
		{"SUBSTR('日本語', 2, 1)", "本"},
		{"SUBSTR('héllo', 1, 2)", "hé"},
		{"SUBSTR('héllo', 2, 3)", "éll"},
		{"SUBSTRING('naïve', 3, 2)", "ïv"},
		// Boundary offsets, PostgreSQL semantics: the window is
		// [start, start+length) before clamping.
		{"SUBSTR('abc', 0, 2)", "a"},
		{"SUBSTR('abc', -1, 3)", "a"},
		{"SUBSTR('abc', -2, 2)", ""},
		{"SUBSTR('abc', 10)", ""},
		{"SUBSTR('abc', 10, 5)", ""},
		{"SUBSTR('abc', 2, 0)", ""},
		{"SUBSTR('', 1, 5)", ""},
		{"SUBSTR('éx', 1, 2)", "é"},
	}
	for _, c := range cases {
		got := evalScalar(t, s, c.expr)
		if got.Kind != KindText || got.S != c.want {
			t.Errorf("%s = %v, want %q", c.expr, got, c.want)
		}
	}
}

// TestSubstrValidation: NULL start/length yields NULL; non-integer start or
// length and negative length are errors, never silently read as zero.
func TestSubstrValidation(t *testing.T) {
	s := exprEngine(t)
	for _, expr := range []string{
		"SUBSTR('abc', NULL)",
		"SUBSTR('abc', NULL, 2)",
		"SUBSTR('abc', 1, NULL)",
	} {
		if got := evalScalar(t, s, expr); !got.IsNull() {
			t.Errorf("%s = %v, want NULL", expr, got)
		}
	}
	for expr, wantErr := range map[string]string{
		"SELECT SUBSTR('abc', 'x')":     "start must be an integer",
		"SELECT SUBSTR('abc', 1.5)":     "start must be an integer",
		"SELECT SUBSTR('abc', 1, 'y')":  "length must be an integer",
		"SELECT SUBSTR('abc', 1, 2.5)":  "length must be an integer",
		"SELECT SUBSTR('abc', 1, -1)":   "negative substring length",
		"SELECT SUBSTRING('abc', true)": "start must be an integer",
	} {
		_, err := s.Exec(expr)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s error = %v, want %q", expr, err, wantErr)
		}
	}
}

// TestUnicodeThroughTables: the fixes hold on the table read path too
// (values round-tripped through storage, filters through the planner).
func TestUnicodeThroughTables(t *testing.T) {
	s := exprEngine(t)
	s.MustExec(`CREATE TABLE w (id INT PRIMARY KEY, word TEXT)`)
	s.MustExec(`INSERT INTO w VALUES (1, 'é'), (2, '日本語'), (3, 'plain')`)
	res := s.MustExec(`SELECT id FROM w WHERE word LIKE '_'`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("LIKE '_' over table = %+v, want row 1", res.Rows)
	}
	res = s.MustExec(`SELECT id FROM w WHERE LENGTH(word) = 3`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("LENGTH = 3 over table = %+v, want row 2", res.Rows)
	}
	res = s.MustExec(`SELECT SUBSTR(word, 2, 1) FROM w WHERE id = 2`)
	if res.Rows[0][0].S != "本" {
		t.Fatalf("SUBSTR over table = %+v", res.Rows)
	}
}
