package sqldb

import (
	"fmt"
	"strings"
)

// Result is the outcome of executing one statement.
type Result struct {
	Columns  []string  // result column names (SELECT only)
	Rows     [][]Value // result rows (SELECT only)
	Affected int       // rows affected by INSERT/UPDATE/DELETE
	Message  string    // human-readable status
}

// Text renders the result as a compact table for tool outputs. This is what
// flows back through the MCP layer into the LLM context, so its size is what
// token accounting measures.
func (r *Result) Text() string {
	if len(r.Columns) == 0 {
		if r.Message != "" {
			return r.Message
		}
		return fmt.Sprintf("OK, %d row(s) affected", r.Affected)
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, " | "))
	sb.WriteString("\n")
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "(%d rows)", len(r.Rows))
	return sb.String()
}

// PermissionError reports a privilege violation. Toolkits detect it with
// errors.As to distinguish security rejections from execution failures.
type PermissionError struct {
	User   string
	Action Action
	Object string
}

// Error implements error.
func (e *PermissionError) Error() string {
	return fmt.Sprintf("permission denied: user %q may not %s on %q", e.User, e.Action, e.Object)
}

// NotFoundError reports a missing catalog object.
type NotFoundError struct {
	Kind string // "table", "column", ...
	Name string
}

// Error implements error.
func (e *NotFoundError) Error() string {
	return fmt.Sprintf("%s %q does not exist", e.Kind, e.Name)
}
