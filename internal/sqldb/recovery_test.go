package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bridgescope/internal/sqldb/vfs"
)

// crashCopy simulates a crash: the WAL and snapshot files are copied to a
// fresh directory as they exist on disk right now — no Close, no final
// checkpoint, no lock release — and the copy is what recovery sees.
func crashCopy(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") && !strings.HasPrefix(name, "snap-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// dumpEngine renders the full engine state canonically: schemas, rows (by
// engine row id), views, and grants.
func dumpEngine(e *Engine) string {
	var sb strings.Builder
	for _, name := range e.TableNames() {
		t, _ := e.Table(name)
		sb.WriteString(SchemaSQL(t))
		sb.WriteString("\n")
		_ = t.visibleRows(latestView(nil), func(r *rowEntry, rv *rowVersion) error {
			fmt.Fprintf(&sb, "row %d:", r.id)
			for _, v := range rv.vals {
				sb.WriteString(" " + v.Key())
			}
			sb.WriteString("\n")
			return nil
		})
		fmt.Fprintf(&sb, "nextID %d\n", t.nextID)
		idxs := make([]string, 0, len(t.indexes))
		for col, ix := range t.indexes {
			idxs = append(idxs, fmt.Sprintf("index %s on %s unique=%v", ix.Name, col, ix.Unique))
		}
		for _, line := range sortedStrings(idxs) {
			sb.WriteString(line + "\n")
		}
	}
	for _, name := range e.ViewNames() {
		v, _ := e.ViewByName(name)
		sb.WriteString(ViewSQL(v) + "\n")
	}
	for _, ch := range e.grants.dump() {
		fmt.Fprintf(&sb, "grant op=%d user=%s action=%d obj=%s cols=%v super=%v\n",
			ch.Op, ch.User, ch.Action, ch.Object, ch.Columns, ch.Super)
	}
	return sb.String()
}

func sortedStrings(in []string) []string {
	out := append([]string{}, in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func openTestEngine(t *testing.T, dir string, opts Options) *Engine {
	t.Helper()
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = -1 // deterministic tests drive checkpoints manually
	}
	e, err := OpenEngine(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDurableRoundTrip is the acceptance round-trip: a database filled with
// tables, indexes, views, and grants (SQL and direct API) survives a clean
// close and reopen bit-for-bit.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncBatch})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE authors (id INT PRIMARY KEY, name TEXT NOT NULL, email TEXT UNIQUE)`)
	s.MustExec(`CREATE TABLE books (
		id INT PRIMARY KEY, author_id INT REFERENCES authors, title TEXT,
		price REAL DEFAULT 9.99, in_print BOOLEAN DEFAULT true)`)
	s.MustExec(`CREATE INDEX idx_books_author ON books (author_id)`)
	s.MustExec(`INSERT INTO authors VALUES (1, 'Ada', 'ada@example.com'), (2, 'Bo''b | x', NULL)`)
	s.MustExec(`INSERT INTO books (id, author_id, title) VALUES (10, 1, 'Engines'), (11, 2, 'Logs')`)
	s.MustExec(`UPDATE books SET price = 19.5 WHERE id = 10`)
	s.MustExec(`INSERT INTO books VALUES (12, 1, 'Dropped', 1.0, false)`)
	s.MustExec(`DELETE FROM books WHERE id = 12`)
	s.MustExec(`CREATE VIEW pricey AS SELECT title, price FROM books WHERE price > 10 ORDER BY price DESC`)
	s.MustExec(`GRANT SELECT, INSERT ON books TO alice`)
	s.MustExec(`GRANT SELECT (title) ON books TO bob`)
	e.Grants().Grant("carol", ActionUpdate, "authors") // direct API, no SQL
	e.Grants().SetSuperuser("admin", true)
	s.MustExec(`ALTER TABLE authors ADD COLUMN bio TEXT DEFAULT 'tbd'`)

	want := dumpEngine(e)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2 := openTestEngine(t, dir, Options{Sync: SyncBatch})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("state mismatch after restart:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// The engine keeps working: new inserts get fresh row ids, constraints
	// and views still fire.
	s2 := e2.NewSession("root")
	s2.MustExec(`INSERT INTO books (id, author_id, title) VALUES (13, 2, 'Fresh')`)
	if _, err := s2.Exec(`INSERT INTO authors VALUES (1, 'dup', NULL, 'x')`); err == nil {
		t.Fatal("PK constraint lost after recovery")
	}
	if _, err := s2.Exec(`INSERT INTO books (id, author_id, title) VALUES (14, 99, 'orphan')`); err == nil {
		t.Fatal("FK constraint lost after recovery")
	}
	res := s2.MustExec(`SELECT title FROM pricey`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Engines" {
		t.Fatalf("view wrong after recovery: %+v", res.Rows)
	}
	if !e2.Grants().Has("alice", ActionInsert, "books") {
		t.Fatal("SQL grant lost after recovery")
	}
	if !e2.Grants().Has("carol", ActionUpdate, "authors") {
		t.Fatal("direct-API grant lost after recovery")
	}
	if cols := e2.Grants().AllowedColumns("bob", ActionSelect, "books"); cols == nil || !cols["title"] || cols["price"] {
		t.Fatalf("column grant wrong after recovery: %v", cols)
	}
	if !e2.Grants().IsSuperuser("admin") {
		t.Fatal("superuser flag lost after recovery")
	}
}

// TestCrashRecoveryWALOnly recovers from the WAL alone — no checkpoint, no
// clean close ever happened.
func TestCrashRecoveryWALOnly(t *testing.T) {
	for _, mode := range []SyncMode{SyncOff, SyncBatch, SyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			e := openTestEngine(t, dir, Options{Sync: mode})
			s := e.NewSession("root")
			s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
			for i := 0; i < 25; i++ {
				s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v%d')`, i, i))
			}
			s.MustExec(`DELETE FROM t WHERE id = 3`)
			s.MustExec(`UPDATE t SET v = 'patched' WHERE id = 7`)
			want := dumpEngine(e)

			copyDir := crashCopy(t, dir)
			e2 := openTestEngine(t, copyDir, Options{Sync: mode})
			defer e2.Close()
			if got := dumpEngine(e2); got != want {
				t.Fatalf("crash recovery mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
			}
			e.Close()
		})
	}
}

// TestSnapshotPlusWALTail recovers from a checkpointed snapshot plus the WAL
// written after it.
func TestSnapshotPlusWALTail(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	s.MustExec(`CREATE INDEX idx_v ON t (v)`)
	for i := 0; i < 50; i++ {
		s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i%5))
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Changes after the checkpoint live only in the WAL tail.
	for i := 50; i < 60; i++ {
		s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i%5))
	}
	s.MustExec(`DELETE FROM t WHERE id = 55`)
	want := dumpEngine(e)

	copyDir := crashCopy(t, dir)
	e2 := openTestEngine(t, copyDir, Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("snapshot+tail recovery mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// The ordered index face must have been bulk-rebuilt correctly: a range
	// scan must agree with a forced seq scan.
	s2 := e2.NewSession("root")
	fast := s2.MustExec(`SELECT COUNT(*) FROM t WHERE v BETWEEN 1 AND 3`)
	forced := e2.NewSession("root")
	forced.forceSeqScan = true
	slow := forced.MustExec(`SELECT COUNT(*) FROM t WHERE v BETWEEN 1 AND 3`)
	if fast.Rows[0][0].I != slow.Rows[0][0].I {
		t.Fatalf("range scan disagrees with seq scan after recovery: %d vs %d", fast.Rows[0][0].I, slow.Rows[0][0].I)
	}
	e.Close()
}

// TestWALTornTailRecovery is the kill-point suite: the WAL is cut at every
// frame boundary and at offsets inside the following frame, and replay must
// stop cleanly at the last fully valid commit every time.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	const inserts = 12
	for i := 0; i < inserts; i++ {
		s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}

	segs, err := listNumbered(vfs.OS(), dir, "wal", ".log")
	if err != nil || len(segs) != 1 {
		t.Fatalf("expected one WAL segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segPath(dir, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Frame offsets: ends[k] = offset after the k-th frame. Frame 0 is the
	// CREATE TABLE, frames 1..inserts are the single-row commits.
	var ends []int
	off := 0
	for off < len(data) {
		_, size, err := readFrame(data[off:])
		if err != nil {
			t.Fatalf("seed WAL has invalid frame at %d: %v", off, err)
		}
		off += size
		ends = append(ends, off)
	}
	if len(ends) != inserts+1 {
		t.Fatalf("expected %d frames, got %d", inserts+1, len(ends))
	}

	expectRows := func(t *testing.T, d string, want int64) {
		t.Helper()
		e2, err := OpenEngine(d, Options{CheckpointEvery: -1})
		if err != nil {
			t.Fatalf("open after truncation: %v", err)
		}
		defer e2.Close()
		res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
		if got := res.Rows[0][0].I; got != want {
			t.Fatalf("want %d rows after truncation, got %d", want, got)
		}
	}

	for k := 1; k < len(ends); k++ {
		// Cut mid-record: a few bytes into frame k (which follows ends[k-1]).
		for _, delta := range []int{1, 4, 9} {
			cut := ends[k-1] + delta
			if cut >= ends[k] {
				continue
			}
			d := crashCopy(t, dir)
			if err := os.Truncate(segPath(d, segs[0]), int64(cut)); err != nil {
				t.Fatal(err)
			}
			expectRows(t, d, int64(k-1)) // frame 0 is DDL: k-1 inserts survive
		}
		// Cut exactly at a frame boundary: everything up to k survives.
		d := crashCopy(t, dir)
		if err := os.Truncate(segPath(d, segs[0]), int64(ends[k-1])); err != nil {
			t.Fatal(err)
		}
		expectRows(t, d, int64(k-1))
	}

	// A flipped payload byte (CRC failure) cuts replay at that frame too.
	d := crashCopy(t, dir)
	corrupt, _ := os.ReadFile(segPath(d, segs[0]))
	corrupt[ends[5]+frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(segPath(d, segs[0]), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	expectRows(t, d, 5)
	e.Close()
}

// TestSnapshotCorruptionFallback: a trashed snapshot is rejected by its CRC
// and recovery falls back to replaying the WAL from the beginning.
func TestSnapshotCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	want := dumpEngine(e)

	d := crashCopy(t, dir)
	// Plant a newest-looking snapshot full of garbage.
	if err := os.WriteFile(snapPath(d, 99), []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, d, Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovery with corrupt snapshot mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	e.Close()
}

// TestRollbackAndFailedStatementsNotLogged: only committed effects reach the
// WAL — a rolled-back transaction and a mid-statement constraint failure
// leave no trace after crash recovery.
func TestRollbackAndFailedStatementsNotLogged(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES (1)`)

	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO t VALUES (100)`)
	s.MustExec(`ROLLBACK`)

	// Third row collides: the whole statement rolls back and logs nothing.
	if _, err := s.Exec(`INSERT INTO t VALUES (200), (201), (1)`); err == nil {
		t.Fatal("expected PK violation")
	}

	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO t VALUES (2)`)
	s.MustExec(`COMMIT`)
	want := dumpEngine(e)

	d := crashCopy(t, dir)
	e2 := openTestEngine(t, d, Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("rollback leaked into WAL:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("want 2 rows, got %d", res.Rows[0][0].I)
	}
	e.Close()
}

// TestCheckpointDuringOpenTransaction: with MVCC snapshots serialize only
// committed-visible versions, so a checkpoint taken while a transaction is
// open must succeed, must not capture its uncommitted rows, and must still
// absorb the transaction's effects when it commits afterwards (its redo
// frame lands in the post-rotation segment and replays on top).
func TestCheckpointDuringOpenTransaction(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES (1)`)

	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO t VALUES (2)`)
	snapsBefore, _ := listNumbered(vfs.OS(), dir, "snap", ".snap")
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint with open txn = %v, want success", err)
	}
	snapsAfter, _ := listNumbered(vfs.OS(), dir, "snap", ".snap")
	if len(snapsAfter) == len(snapsBefore) {
		t.Fatal("checkpoint did not write a snapshot")
	}

	// Crash before the commit: only the committed row may come back.
	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	if n := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`).Rows[0][0].I; n != 1 {
		t.Fatalf("uncommitted row leaked through a checkpoint: %d rows", n)
	}
	e2.Close()

	// Commit after the checkpoint: the redo frame is in the post-rotation
	// segment and must replay on top of the snapshot.
	s.MustExec(`COMMIT`)
	e3 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e3.Close()
	if n := e3.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`).Rows[0][0].I; n != 2 {
		t.Fatalf("commit after checkpoint lost on recovery: %d rows", n)
	}
	e.Close()
}

// TestUncommittedRowInterleavings covers cross-session access to rows whose
// inserting transaction is still open. Under snapshot isolation other
// sessions cannot see (and therefore cannot write) an uncommitted row;
// replay must match the heap in every case, and acknowledged commits after
// the interleaving must survive.
func TestUncommittedRowInterleavings(t *testing.T) {
	t.Run("update-misses-then-rollback", func(t *testing.T) {
		dir := t.TempDir()
		e := openTestEngine(t, dir, Options{Sync: SyncAlways})
		a, b := e.NewSession("root"), e.NewSession("root")
		a.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
		a.MustExec(`BEGIN`)
		a.MustExec(`INSERT INTO t VALUES (1, 'dirty')`)
		// b cannot see a's uncommitted row: the update targets nothing.
		if r := b.MustExec(`UPDATE t SET v = 'touched' WHERE id = 1`); r.Affected != 0 {
			t.Fatalf("update saw an uncommitted row: %d affected", r.Affected)
		}
		a.MustExec(`ROLLBACK`)                          // insert never logged
		b.MustExec(`INSERT INTO t VALUES (2, 'after')`) // must survive replay
		want := dumpEngine(e)

		e2 := openTestEngine(t, crashCopy(t, dir), Options{})
		defer e2.Close()
		if got := dumpEngine(e2); got != want {
			t.Fatalf("mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
		}
		res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
		if res.Rows[0][0].I != 1 {
			t.Fatalf("want only the post-interleaving row, got %d rows", res.Rows[0][0].I)
		}
		e.Close()
	})

	t.Run("update-misses-then-commit", func(t *testing.T) {
		dir := t.TempDir()
		e := openTestEngine(t, dir, Options{Sync: SyncAlways})
		a, b := e.NewSession("root"), e.NewSession("root")
		a.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
		a.MustExec(`BEGIN`)
		a.MustExec(`INSERT INTO t VALUES (1, 'original')`)
		// No dirty write: b's update cannot touch the uncommitted row, so
		// a's commit logs its own image.
		if r := b.MustExec(`UPDATE t SET v = 'touched' WHERE id = 1`); r.Affected != 0 {
			t.Fatalf("update saw an uncommitted row: %d affected", r.Affected)
		}
		a.MustExec(`COMMIT`)
		want := dumpEngine(e)

		e2 := openTestEngine(t, crashCopy(t, dir), Options{})
		defer e2.Close()
		if got := dumpEngine(e2); got != want {
			t.Fatalf("mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
		}
		res := e2.NewSession("root").MustExec(`SELECT v FROM t WHERE id = 1`)
		if len(res.Rows) != 1 || res.Rows[0][0].S != "original" {
			t.Fatalf("recovered wrong image: %+v", res.Rows)
		}
		e.Close()
	})

	t.Run("delete-misses-then-commit", func(t *testing.T) {
		dir := t.TempDir()
		e := openTestEngine(t, dir, Options{Sync: SyncAlways})
		a, b := e.NewSession("root"), e.NewSession("root")
		a.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
		a.MustExec(`BEGIN`)
		a.MustExec(`INSERT INTO t VALUES (1, 'kept')`)
		// b's delete cannot see the uncommitted row; a's commit prevails.
		if r := b.MustExec(`DELETE FROM t WHERE id = 1`); r.Affected != 0 {
			t.Fatalf("delete saw an uncommitted row: %d affected", r.Affected)
		}
		a.MustExec(`COMMIT`)
		want := dumpEngine(e)

		e2 := openTestEngine(t, crashCopy(t, dir), Options{})
		defer e2.Close()
		if got := dumpEngine(e2); got != want {
			t.Fatalf("mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
		}
		res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
		if res.Rows[0][0].I != 1 {
			t.Fatalf("committed row lost: %d rows", res.Rows[0][0].I)
		}
		e.Close()
	})
}

// TestEmptyColumnRestrictionSurvivesSnapshot: GrantColumns with an empty
// column list means "no columns allowed"; a snapshot round-trip must not
// widen it into an unrestricted grant.
func TestEmptyColumnRestrictionSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	e.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY, secret TEXT)`)
	e.Grants().GrantColumns("bob", ActionSelect, "t", nil)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openTestEngine(t, dir, Options{})
	defer e2.Close()
	cols := e2.Grants().AllowedColumns("bob", ActionSelect, "t")
	if cols == nil || len(cols) != 0 {
		t.Fatalf("deny-all column restriction widened across snapshot: %v", cols)
	}
	if _, err := e2.NewSession("bob").Exec(`SELECT secret FROM t`); err == nil {
		t.Fatal("bob read a column the restriction denies")
	}
}

// TestRandomizedDurableEquivalence drives an identical randomized DML
// workload into an in-memory engine and a durable one, then checks the
// durable engine's crash-recovered and clean-reopened states both match the
// in-memory result exactly.
func TestRandomizedDurableEquivalence(t *testing.T) {
	dir := t.TempDir()
	mem := NewEngine("mem")
	dur := openTestEngine(t, dir, Options{Sync: SyncBatch})
	ms, ds := mem.NewSession("root"), dur.NewSession("root")

	exec := func(sql string) {
		_, merr := ms.Exec(sql)
		_, derr := ds.Exec(sql)
		if (merr == nil) != (derr == nil) {
			t.Fatalf("engines diverged on %q: mem=%v dur=%v", sql, merr, derr)
		}
	}

	exec(`CREATE TABLE w (id INT PRIMARY KEY, grp INT, note TEXT)`)
	exec(`CREATE INDEX idx_grp ON w (grp)`)
	rng := rand.New(rand.NewSource(7))
	inTxn := false
	for i := 0; i < 800; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert, PK conflicts included on purpose
			exec(fmt.Sprintf(`INSERT INTO w VALUES (%d, %d, 'n%d')`, rng.Intn(300), rng.Intn(8), i))
		case op < 6:
			exec(fmt.Sprintf(`UPDATE w SET note = 'u%d' WHERE grp = %d`, i, rng.Intn(8)))
		case op < 7:
			exec(fmt.Sprintf(`UPDATE w SET grp = %d WHERE id = %d`, rng.Intn(8), rng.Intn(300)))
		case op < 8:
			exec(fmt.Sprintf(`DELETE FROM w WHERE id = %d`, rng.Intn(300)))
		case op < 9:
			if !inTxn {
				exec(`BEGIN`)
				inTxn = true
			}
		default:
			if inTxn {
				if rng.Intn(2) == 0 {
					exec(`COMMIT`)
				} else {
					exec(`ROLLBACK`)
				}
				inTxn = false
			}
		}
	}
	if inTxn {
		exec(`COMMIT`)
	}

	want := dumpEngine(mem)
	if got := dumpEngine(dur); got != want {
		t.Fatalf("durable engine diverged in memory:\n--- mem ---\n%s\n--- dur ---\n%s", want, got)
	}

	// Crash path: recover the WAL-only copy.
	crashed := openTestEngine(t, crashCopy(t, dir), Options{})
	if got := dumpEngine(crashed); got != want {
		t.Fatalf("crash-recovered state diverged:\n--- mem ---\n%s\n--- got ---\n%s", want, got)
	}
	crashed.Close()

	// Clean path: checkpoint + close, then reopen from the snapshot.
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := openTestEngine(t, dir, Options{})
	defer reopened.Close()
	if got := dumpEngine(reopened); got != want {
		t.Fatalf("snapshot-recovered state diverged:\n--- mem ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestCloseIdempotentAndDirLock covers the Close/lock satellite: Close twice
// is a no-op, a second engine on the same live directory is refused with a
// clear error, and the directory reopens after Close.
func TestCloseIdempotentAndDirLock(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{})
	e.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)

	if _, err := OpenEngine(dir, Options{}); err == nil {
		t.Fatal("second OpenEngine on a live directory must fail")
	} else if !strings.Contains(err.Error(), "already open") {
		t.Fatalf("want a clear double-open error, got: %v", err)
	}

	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close must be an idempotent no-op, got: %v", err)
	}

	e2 := openTestEngine(t, dir, Options{})
	if _, ok := e2.Table("t"); !ok {
		t.Fatal("table lost across close/reopen")
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// In-memory engines are untouched by the subsystem.
	mem := NewEngine("m")
	if st := mem.Durability(); st.Durable || st.Mode != "memory" {
		t.Fatalf("in-memory engine reports %+v", st)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("in-memory Close must be a no-op, got %v", err)
	}
}

// TestGroupCommitConcurrent hammers a batch-mode engine from many sessions
// and verifies every acknowledged commit is durable and the flusher actually
// grouped them (fewer fsyncs than commits).
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncBatch})
	e.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY, src INT)`)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < perWorker; i++ {
				s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, w*perWorker+i, w))
			}
		}(w)
	}
	wg.Wait()

	st := e.Durability()
	if st.Commits < workers*perWorker {
		t.Fatalf("want >= %d commits, got %d", workers*perWorker, st.Commits)
	}
	if st.Fsyncs >= st.Commits {
		t.Fatalf("group commit never grouped: %d fsyncs for %d commits", st.Fsyncs, st.Commits)
	}

	d := crashCopy(t, dir)
	e2 := openTestEngine(t, d, Options{})
	defer e2.Close()
	res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != workers*perWorker {
		t.Fatalf("lost acknowledged commits: want %d rows, got %d", workers*perWorker, res.Rows[0][0].I)
	}
	e.Close()
}

// TestCheckpointDuringConcurrentCommits races checkpoints against batch
// committers: a rotate slipping between the flusher grabbing a group and
// writing it would land pre-checkpoint frames in the post-checkpoint
// segment, which recovery would truncate as a torn tail — losing
// acknowledged commits. Every acknowledged commit must survive.
func TestCheckpointDuringConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncBatch})
	e.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)

	const workers = 4
	const perWorker = 150
	var wg sync.WaitGroup
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
				if err := e.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < perWorker; i++ {
				s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, w*perWorker+i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	// Join the checkpoint goroutine: an in-flight Checkpoint can retire a
	// WAL segment between crashCopy's ReadDir and ReadFile otherwise.
	<-ckptDone

	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e2.Close()
	res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != workers*perWorker {
		t.Fatalf("lost acknowledged commits across checkpoints: want %d rows, got %d",
			workers*perWorker, res.Rows[0][0].I)
	}
	e.Close()
}

// TestCommitAfterCloseDoesNotHang: a caller that loaded the WAL pointer just
// before Close swapped it out must get an immediate error, not a wait on a
// flusher that has exited.
func TestCommitAfterCloseDoesNotHang(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncBatch})
	e.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	w := e.wal.Load()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.commit([][]byte{encodeDeleteRec("t", 1, 1)}).wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("commit on a closed WAL must error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit on a closed WAL hung")
	}
}

// TestCheckpointRetiresSegments: checkpoints rotate the WAL and delete the
// segments and snapshots they supersede.
func TestCheckpointRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncOff})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, round*10+i))
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listNumbered(vfs.OS(), dir, "wal", ".log")
	snaps, _ := listNumbered(vfs.OS(), dir, "snap", ".snap")
	if len(segs) != 1 {
		t.Fatalf("old WAL segments not retired: %v", segs)
	}
	if len(snaps) != 1 {
		t.Fatalf("old snapshots not retired: %v", snaps)
	}
	// A checkpoint with no changes since the last one is skipped.
	before, _ := listNumbered(vfs.OS(), dir, "snap", ".snap")
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := listNumbered(vfs.OS(), dir, "snap", ".snap")
	if len(after) != len(before) || after[0] != before[0] {
		t.Fatalf("no-op checkpoint still wrote a snapshot: %v -> %v", before, after)
	}
	e.Close()
}

// TestCommitRacingDroppedTableRecovers: under READ UNCOMMITTED a transaction
// may commit DML after another session's committed DROP TABLE already
// discarded those rows from the heap, so its records land after the DROP
// frame in the log and name a table that no longer exists. Replay must skip
// them — the heap kept nothing either — instead of failing the open, which
// used to leave the database permanently unopenable ("wal replay: insert
// into missing table").
func TestCommitRacingDroppedTableRecovers(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	s.MustExec(`CREATE TABLE keep (id INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES (1, 10)`)
	s.MustExec(`INSERT INTO keep VALUES (1)`)

	a := e.NewSession("root")
	a.MustExec(`BEGIN`)
	a.MustExec(`INSERT INTO t VALUES (2, 20)`)
	a.MustExec(`UPDATE t SET v = 11 WHERE id = 1`)
	a.MustExec(`DELETE FROM t WHERE id = 1`)
	a.MustExec(`INSERT INTO keep VALUES (2)`)

	// Another session drops the table out from under the open transaction
	// (legal: locks are per statement, not per transaction).
	s.MustExec(`DROP TABLE t`)

	// The commit is acknowledged; its t-records are sequenced after the DROP.
	a.MustExec(`COMMIT`)
	want := dumpEngine(e)

	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovery after racing DROP mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	// The commit's effects on the surviving table were not lost.
	res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM keep`)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("acknowledged insert into keep lost: %+v", res.Rows)
	}
	e.Close()
}

// TestCommitRacingRecreatedTableRecovers: the raced DDL can also be a
// DROP + re-CREATE with a different shape; the stale records then target the
// old schema's arity and must be skipped against the new catalog.
func TestCommitRacingRecreatedTableRecovers(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	s.MustExec(`INSERT INTO t VALUES (1, 10)`)

	a := e.NewSession("root")
	a.MustExec(`BEGIN`)
	a.MustExec(`INSERT INTO t VALUES (2, 20)`)
	a.MustExec(`UPDATE t SET v = 11 WHERE id = 1`)

	s.MustExec(`DROP TABLE t`)
	s.MustExec(`CREATE TABLE t (only TEXT)`)
	s.MustExec(`INSERT INTO t VALUES ('fresh')`)

	a.MustExec(`COMMIT`)
	want := dumpEngine(e)

	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovery after racing re-CREATE mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	res := e2.NewSession("root").MustExec(`SELECT only FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "fresh" {
		t.Fatalf("recreated table corrupted by stale records: %+v", res.Rows)
	}
	e.Close()
}

// TestOrphanSnapshotTmpSwept: a crash between CreateTemp and the rename
// leaves a snap-*.tmp nothing retires; the next open must sweep it.
func TestOrphanSnapshotTmpSwept(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-123456.tmp"), []byte("partial snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := openTestEngine(t, dir, Options{})
	defer e.Close()
	if tmps, _ := filepath.Glob(filepath.Join(dir, "snap-*.tmp")); len(tmps) != 0 {
		t.Fatalf("orphan snapshot tmp files not swept: %v", tmps)
	}
}

// TestCommitRacingSameShapeRecreate: the nastiest recreate race — the new
// incarnation has the same arity and reuses row ids, so name+arity checks
// alone would let the ghost records clobber or resurrect rows. The epoch
// carried by every row record must pin them to the dead incarnation.
func TestCommitRacingSameShapeRecreate(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	s.MustExec(`INSERT INTO t VALUES (1, 10)`)

	a := e.NewSession("root")
	a.MustExec(`BEGIN`)
	a.MustExec(`UPDATE t SET v = 99 WHERE id = 1`)
	a.MustExec(`INSERT INTO t VALUES (2, 20)`)

	s.MustExec(`DROP TABLE t`)
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`) // same shape
	s.MustExec(`INSERT INTO t VALUES (1, 111)`)              // row id 1 reused

	a.MustExec(`COMMIT`)
	want := dumpEngine(e)

	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("same-shape recreate recovery mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	res := e2.NewSession("root").MustExec(`SELECT v FROM t ORDER BY id`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 111 {
		t.Fatalf("ghost records leaked into recreated table: %+v", res.Rows)
	}
	e.Close()
}

// TestOpenRefusedWhenSnapshotUnloadableAndHistoryRetired: once a checkpoint
// has retired the early WAL segments, the snapshot is the only copy of that
// data — if it cannot be loaded, the open must fail loudly instead of
// silently succeeding with a near-empty database.
func TestOpenRefusedWhenSnapshotUnloadableAndHistoryRetired(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d := crashCopy(t, dir)
	e.Close()

	snaps, _ := listNumbered(vfs.OS(), d, "snap", ".snap")
	if len(snaps) != 1 {
		t.Fatalf("expected exactly one snapshot, got %v", snaps)
	}
	if err := os.WriteFile(snapPath(d, snaps[0]), []byte("scribbled over"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEngine(d, Options{CheckpointEvery: -1}); err == nil {
		t.Fatal("open succeeded with the only snapshot unloadable and pre-snapshot WAL retired")
	}
}

// TestWALFailStopAfterIOError: after a write error the log may end in a torn
// frame that recovery will truncate, so the WAL must refuse every later
// commit instead of acknowledging writes that cannot survive a restart.
func TestWALFailStopAfterIOError(t *testing.T) {
	dir := t.TempDir()
	w, err := newWAL(vfs.OS(), dir, SyncAlways, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.commit([][]byte{encodeDeleteRec("t", 1, 1)}).wait(); err != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}
	w.f.Close() // injected I/O failure: every later write errors
	if err := w.commit([][]byte{encodeDeleteRec("t", 1, 2)}).wait(); err == nil {
		t.Fatal("commit with broken file reported success")
	}
	err = w.commit([][]byte{encodeDeleteRec("t", 1, 3)}).wait()
	if err == nil || !strings.Contains(err.Error(), "refusing commit") {
		t.Fatalf("commit after I/O error = %v, want fail-stop refusal", err)
	}
}

// TestConcurrentDeleteConflictsThenCommitSurvives: s2's DELETE of a row s1
// has already updated is a write-write conflict and must abort s2's
// statement with a retryable error (first-committer-wins) instead of
// tombstoning the row out from under s1's acknowledged commit. After s2
// rolls back, s1's commit must survive recovery. (This interleaving is what
// required the deadDurable tombstone bookkeeping before MVCC; version
// visibility now forbids it outright.)
func TestConcurrentDeleteConflictsThenCommitSurvives(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	s.MustExec(`INSERT INTO t VALUES (1, 10)`)

	s1 := e.NewSession("root")
	s2 := e.NewSession("root")
	s1.MustExec(`BEGIN`)
	s1.MustExec(`UPDATE t SET v = 20 WHERE id = 1`)
	s2.MustExec(`BEGIN`)
	if _, err := s2.Exec(`DELETE FROM t WHERE id = 1`); !IsRetryable(err) {
		t.Fatalf("concurrent delete of an updated row = %v, want retryable conflict", err)
	}
	s1.MustExec(`COMMIT`)
	s2.MustExec(`ROLLBACK`)

	res := s.MustExec(`SELECT v FROM t WHERE id = 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 20 {
		t.Fatalf("in-memory heap lost the row or the update: %+v", res.Rows)
	}
	want := dumpEngine(e)

	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovery mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	rec := e2.NewSession("root").MustExec(`SELECT v FROM t WHERE id = 1`)
	if len(rec.Rows) != 1 || rec.Rows[0][0].I != 20 {
		t.Fatalf("acknowledged commit lost on recovery: %+v", rec.Rows)
	}
	e.Close()
}

// TestDeleteCannotSeeUncommittedInsert: the mirror interleaving — an
// autocommit DELETE cannot target another session's uncommitted insert
// (snapshot visibility hides it), so the insert's commit prevails and
// survives recovery.
func TestDeleteCannotSeeUncommittedInsert(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)

	s1 := e.NewSession("root")
	s1.MustExec(`BEGIN`)
	s1.MustExec(`INSERT INTO t VALUES (5, 50)`)
	if r := s.MustExec(`DELETE FROM t WHERE id = 5`); r.Affected != 0 {
		t.Fatalf("autocommit delete saw an uncommitted insert: %d affected", r.Affected)
	}
	s1.MustExec(`COMMIT`)
	want := dumpEngine(e)

	e2 := openTestEngine(t, crashCopy(t, dir), Options{})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovery mismatch:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	res := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 1 {
		t.Fatalf("committed insert lost: %+v", res.Rows)
	}
	e.Close()
}
