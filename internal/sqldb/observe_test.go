package sqldb

import (
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"bridgescope/internal/sqldb/stats"
	"bridgescope/internal/sqldb/vfs"
)

// actualRows extracts the N from the first plan line matching prefix that
// carries an " (actual rows=N time=...)" annotation.
func actualRows(t *testing.T, text, prefix string) int64 {
	t.Helper()
	re := regexp.MustCompile(`\(actual rows=(\d+) time=`)
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, prefix) {
			continue
		}
		m := re.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %q has no actual-rows annotation", line)
		}
		n, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	t.Fatalf("no plan line matching %q in:\n%s", prefix, text)
	return 0
}

// TestExplainAnalyzeSeqScan: the scan operator's actual row count must
// agree with the engine's ScanRowsVisited counter for the same execution.
func TestExplainAnalyzeSeqScan(t *testing.T) {
	s := plannerEngine(t)
	e := s.Engine()

	before := e.ScanRowsVisited()
	r := s.MustExec("EXPLAIN ANALYZE SELECT name FROM emp")
	delta := e.ScanRowsVisited() - before

	if len(r.Columns) != 1 || r.Columns[0] != "QUERY PLAN" {
		t.Fatalf("EXPLAIN ANALYZE columns = %v", r.Columns)
	}
	text := r.Text()
	if !strings.Contains(text, "Execution Time: ") {
		t.Fatalf("missing execution time footer:\n%s", text)
	}
	got := actualRows(t, text, "Seq Scan on emp")
	if got != 60 {
		t.Fatalf("seq scan actual rows = %d, want 60", got)
	}
	if got != delta {
		t.Fatalf("actual rows %d != ScanRowsVisited delta %d", got, delta)
	}
}

// TestExplainAnalyzeDML: EXPLAIN ANALYZE on UPDATE/DELETE executes the
// statement, annotates the access path, and reports affected rows.
func TestExplainAnalyzeDML(t *testing.T) {
	s := plannerEngine(t)
	e := s.Engine()

	before := e.DMLRowsVisited()
	r := s.MustExec("EXPLAIN ANALYZE UPDATE emp SET salary = 12345 WHERE id = 3")
	delta := e.DMLRowsVisited() - before
	text := r.Text()
	if !strings.Contains(text, "Update on emp") {
		t.Fatalf("missing update header:\n%s", text)
	}
	if !strings.Contains(text, "Rows Affected: 1") {
		t.Fatalf("missing rows-affected footer:\n%s", text)
	}
	if got := actualRows(t, text, "Index Scan on emp"); got != delta {
		t.Fatalf("index scan actual rows %d != DMLRowsVisited delta %d", got, delta)
	}
	// Unlike plain EXPLAIN, ANALYZE executes: the update is visible.
	if got := s.MustExec("SELECT salary FROM emp WHERE id = 3").Rows[0][0].F; got != 12345 {
		t.Fatalf("update not applied, salary = %v", got)
	}

	before = e.DMLRowsVisited()
	r = s.MustExec("EXPLAIN ANALYZE DELETE FROM emp WHERE name = 'e5'")
	delta = e.DMLRowsVisited() - before
	text = r.Text()
	if !strings.Contains(text, "Delete on emp") || !strings.Contains(text, "Rows Affected: 1") {
		t.Fatalf("delete analyze wrong:\n%s", text)
	}
	if got := actualRows(t, text, "Seq Scan on emp"); got != delta {
		t.Fatalf("seq scan actual rows %d != DMLRowsVisited delta %d", got, delta)
	}
	if got := s.MustExec("SELECT COUNT(*) FROM emp WHERE name = 'e5'").Rows[0][0].I; got != 0 {
		t.Fatal("delete not applied")
	}
}

func TestExplainAnalyzeUnsupported(t *testing.T) {
	s := plannerEngine(t)
	if _, err := s.Exec("EXPLAIN ANALYZE CREATE TABLE z (a INT)"); err == nil {
		t.Fatal("EXPLAIN ANALYZE DDL should error")
	}
}

// TestSlowQueryLogEngine: a zero threshold records every statement with
// user, rows, and a rendered plan; a negative threshold disables the log.
func TestSlowQueryLogEngine(t *testing.T) {
	s := plannerEngine(t)
	e := s.Engine()

	e.SetSlowQueryThreshold(0)
	s.MustExec("SELECT name FROM emp WHERE dept_id = 2")
	entries := e.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("zero threshold recorded nothing")
	}
	last := entries[len(entries)-1]
	if last.SQL != "SELECT name FROM emp WHERE dept_id = 2" {
		t.Fatalf("entry SQL = %q", last.SQL)
	}
	if last.User != "root" {
		t.Fatalf("entry user = %q, want root", last.User)
	}
	if last.Rows != 20 {
		t.Fatalf("entry rows = %d, want 20", last.Rows)
	}
	if !strings.Contains(last.Plan, "Index Scan on emp") {
		t.Fatalf("entry plan missing access path:\n%s", last.Plan)
	}
	if last.DurationNs < 0 {
		t.Fatalf("entry duration = %d", last.DurationNs)
	}

	e.SetSlowQueryThreshold(-1)
	n := len(e.SlowQueries())
	s.MustExec("SELECT COUNT(*) FROM emp")
	if got := len(e.SlowQueries()); got != n {
		t.Fatalf("negative threshold still recorded: %d -> %d entries", n, got)
	}
}

// TestEngineStatsSnapshot: the snapshot reflects statement kinds, rows
// returned, plan-cache state, and client-retry notes.
func TestEngineStatsSnapshot(t *testing.T) {
	s := plannerEngine(t)
	e := s.Engine()

	s.MustExec("SELECT name FROM emp")       // select, 60 rows
	s.MustExec("INSERT INTO dept VALUES (9, 'qa')") // insert
	e.NoteTxnRetry()

	snap := e.Stats()
	if !snap.Enabled {
		t.Fatal("snapshot should report metrics enabled")
	}
	if snap.Statements["select"].Count == 0 {
		t.Fatalf("no select latencies recorded: %+v", snap.Statements)
	}
	if snap.Statements["insert"].Count == 0 {
		t.Fatalf("no insert latencies recorded: %+v", snap.Statements)
	}
	if snap.RowsReturned < 60 {
		t.Fatalf("RowsReturned = %d, want >= 60", snap.RowsReturned)
	}
	if snap.RowsScanned != e.ScanRowsVisited() {
		t.Fatalf("RowsScanned %d != engine counter %d", snap.RowsScanned, e.ScanRowsVisited())
	}
	if snap.PlanCache.Hits+snap.PlanCache.Misses == 0 {
		t.Fatal("plan cache saw no traffic")
	}
	if snap.MVCC.Retries != 1 {
		t.Fatalf("MVCC.Retries = %d, want 1", snap.MVCC.Retries)
	}
	if snap.SlowLog.ThresholdNs != e.SlowQueryThreshold().Nanoseconds() {
		t.Fatalf("SlowLog.ThresholdNs = %d, want %d",
			snap.SlowLog.ThresholdNs, e.SlowQueryThreshold().Nanoseconds())
	}
	if snap.Health.Degraded {
		t.Fatalf("healthy engine reported degraded: %+v", snap.Health)
	}
}

// TestDegradedReasonInStats: after a WAL fault degrades the engine, both
// Health and the stats snapshot carry a human-readable reason naming the
// subsystem.
func TestDegradedReasonInStats(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	defer e.Close()
	var tripped atomic.Bool
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpWrite && strings.Contains(op.Path, "wal-") && tripped.CompareAndSwap(false, true) {
			return &vfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	if _, err := s.Exec(`INSERT INTO t (id, v) VALUES (3, 'three')`); err == nil {
		t.Fatal("commit should fail when the WAL append hits ENOSPC")
	}

	h := e.Health()
	if !h.Degraded {
		t.Fatalf("engine should be degraded: %+v", h)
	}
	if h.Reason == "" || !strings.Contains(h.Reason, "wal") {
		t.Fatalf("Health.Reason = %q, want non-empty mentioning wal", h.Reason)
	}

	snap := e.Stats()
	if !snap.Health.Degraded {
		t.Fatalf("stats snapshot missed degraded state: %+v", snap.Health)
	}
	if snap.Health.Reason != h.Reason {
		t.Fatalf("snapshot reason %q != health reason %q", snap.Health.Reason, h.Reason)
	}
	if snap.Health.Transitions == 0 {
		t.Fatal("degraded transition not counted")
	}
}

// TestStatsDisabledEngine: with recording globally off, statement
// histograms stay empty but the snapshot still carries structural state.
func TestStatsDisabledEngine(t *testing.T) {
	defer stats.SetEnabled(true)
	stats.SetEnabled(false)
	s := plannerEngine(t)
	e := s.Engine()
	s.MustExec("SELECT name FROM emp")
	snap := e.Stats()
	if snap.Enabled {
		t.Fatal("snapshot should report metrics disabled")
	}
	if len(snap.Statements) != 0 {
		t.Fatalf("disabled recording still observed latencies: %+v", snap.Statements)
	}
	// Structural counters (catalog-derived, not histogram-gated) remain.
	if snap.PlanCache.Size < 0 {
		t.Fatalf("bad plan cache size: %+v", snap.PlanCache)
	}
}
