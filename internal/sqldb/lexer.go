package sqldb

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokOp    // operators and punctuation
	tokParam // $1 style placeholders (reserved, unused)
	tokInvalid
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased, idents keep original case
	pos  int
}

// keywords recognized by the lexer. Anything else alphabetic is an
// identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "ASC": true,
	"DESC": true, "DISTINCT": true, "AS": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INDEX": true, "VIEW": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"UNIQUE": true, "DEFAULT": true, "CHECK": true, "CONSTRAINT": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"GRANT": true, "REVOKE": true, "TO": true, "ALL": true, "PRIVILEGES": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "REAL": true, "FLOAT": true,
	"DOUBLE": true, "TEXT": true, "VARCHAR": true, "CHAR": true,
	"BOOLEAN": true, "BOOL": true, "NUMERIC": true, "DECIMAL": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"EXISTS": true, "IF": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CAST": true, "ALTER": true, "ADD": true,
	"COLUMN": true, "RENAME": true, "TRUNCATE": true, "CROSS": true,
	"USING": true, "RETURNING": true, "WITH": true, "OPTION": true,
	"EXPLAIN": true,
}

type lexer struct {
	src string
	pos int
}

func lexSQL(src string) ([]token, error) {
	lx := lexer{src: src}
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.kind == tokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		lx.pos++
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	case c >= '0' && c <= '9', c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
		return lx.lexNumber()
	case c == '\'':
		return lx.lexString()
	case c == '"':
		// Quoted identifier.
		lx.pos++
		qs := lx.pos
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, fmt.Errorf("unterminated quoted identifier at %d", start)
		}
		word := lx.src[qs:lx.pos]
		lx.pos++
		return token{kind: tokIdent, text: word, pos: start}, nil
	default:
		return lx.lexOp()
	}
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				lx.pos++
			}
			lx.pos += 2
			if lx.pos > len(lx.src) {
				lx.pos = len(lx.src)
			}
		default:
			return
		}
	}
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case isDigit(c):
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.pos]
	if seenDot || seenExp {
		return token{kind: tokFloat, text: text, pos: start}, nil
	}
	return token{kind: tokInt, text: text, pos: start}, nil
}

func (lx *lexer) lexString() (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return token{}, fmt.Errorf("unterminated string literal at %d", start)
}

func (lx *lexer) lexOp() (token, error) {
	start := lx.pos
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>", "||":
		lx.pos += 2
		if two == "<>" {
			two = "!="
		}
		return token{kind: tokOp, text: two, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		lx.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, fmt.Errorf("unexpected character %q at %d", string(c), start)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
