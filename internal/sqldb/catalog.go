package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"bridgescope/internal/sqldb/stats"
	"bridgescope/internal/sqldb/vfs"
)

// Column describes one table column.
type Column struct {
	Name       string
	Type       Kind
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	Default    Expr // nil when absent
}

// ForeignKey is a FOREIGN KEY constraint on a table.
type ForeignKey struct {
	Columns       []string
	ParentTable   string
	ParentColumns []string
}

// rowVersion is one incarnation of a row's values in its version chain.
// While the creating (or deleting) transaction is open, xminTxn (xmaxTxn)
// identifies it; commit replaces the pointer with the commit timestamp,
// rollback unlinks the version (or clears the delete stamp). xmin 0 with a
// nil xminTxn means "committed before any live snapshot" (snapshot-loaded
// rows). xmax 0 with a nil xmaxTxn means the version is the live head.
type rowVersion struct {
	vals    []Value
	xmin    uint64 // commit timestamp of the creating transaction
	xmax    uint64 // commit timestamp of the deleting/superseding transaction
	xminTxn *Txn   // creating transaction while still open
	xmaxTxn *Txn   // deleting/superseding transaction while still open
	prev    *rowVersion
}

// rowEntry is one stored row: a stable id plus its version chain, newest
// first. Index and primary-key entries point at the chain (the id), so an
// old snapshot can still find a row through a value only an old version
// holds; scans re-check the visible version's value. v is nil once a
// rolled-back insert is unlinked (vacuum reclaims the husk).
type rowEntry struct {
	id int64
	v  *rowVersion
}

// rowHit is one row an index or range lookup resolved for a snapshot: the
// entry (write paths mutate it) and the version the snapshot sees (read
// paths materialize its values).
type rowHit struct {
	e *rowEntry
	v *rowVersion
}

// Index is a single-column index with two faces: a hash map serving
// equality lookups in O(1), and a sorted slice of the distinct non-NULL
// values serving range scans and ordered iteration. Buckets hold the ids of
// every row whose version CHAIN contains the value — possibly more rows
// than any one snapshot sees — so lookups re-check the visible version's
// value. Entries are added when a version installs a value and removed only
// when no version in the chain holds it (rollback or vacuum).
type Index struct {
	Name   string
	Column string
	Unique bool
	col    int                // column position
	m      map[string][]int64 // value key -> row ids whose chain holds it
	ord    []Value            // distinct non-NULL values, sorted by orderCompare
}

// Table is an in-memory heap of row chains plus secondary structures.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey

	// epoch identifies this incarnation of the table: assigned by
	// createTable from an engine-wide counter, preserved by snapshots and
	// WAL replay. Redo records carry it so replay can tell DML aimed at a
	// dropped-and-recreated table of the same name from DML aimed at the
	// current one (see the WAL record-type comment in wal.go).
	epoch uint64

	rows   []*rowEntry
	byID   map[int64]*rowEntry
	nextID int64
	// deadCnt counts entries whose head version is committed-dead (the
	// row-count estimate subtracts them); garbage counts versions awaiting
	// vacuum (superseded, committed-dead, or aborted) and gates it.
	deadCnt int
	garbage int

	indexes map[string]*Index  // keyed by lower-case column name
	pkCols  []int              // resolved PK column positions
	pkMap   map[string][]int64 // composite PK key -> row ids whose chain holds it
	pkOrd   []Value            // single-column PK values, sorted (nil otherwise)
}

func newTable(name string, cols []Column, pk []string, fks []ForeignKey) (*Table, error) {
	t := &Table{
		Name:        name,
		Columns:     cols,
		PrimaryKey:  pk,
		ForeignKeys: fks,
		byID:        map[int64]*rowEntry{},
		indexes:     map[string]*Index{},
	}
	seen := map[string]bool{}
	for _, c := range cols {
		lo := strings.ToLower(c.Name)
		if seen[lo] {
			return nil, fmt.Errorf("duplicate column %q in table %q", c.Name, name)
		}
		seen[lo] = true
	}
	for _, pc := range pk {
		i := t.ColIndex(pc)
		if i < 0 {
			return nil, fmt.Errorf("primary key column %q not found in table %q", pc, name)
		}
		t.pkCols = append(t.pkCols, i)
	}
	if len(t.pkCols) > 0 {
		t.pkMap = map[string][]int64{}
	}
	// Auto-index UNIQUE columns.
	for _, c := range cols {
		if c.Unique && !c.PrimaryKey {
			t.addIndex(&Index{Name: name + "_" + c.Name + "_key", Column: c.Name, Unique: true})
		}
	}
	return t, nil
}

// ColIndex returns the position of a column by case-insensitive name, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames lists the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// RowCount estimates the number of rows the latest committed state holds:
// entries minus committed-dead heads. Uncommitted inserts count until their
// fate is decided; exact counts come from a snapshot-visible scan.
func (t *Table) RowCount() int { return len(t.rows) - t.deadCnt }

// visibleRows iterates, in insertion order, over the rows sn can see,
// passing each entry and its visible version.
func (t *Table) visibleRows(sn snapView, fn func(*rowEntry, *rowVersion) error) error {
	for _, e := range t.rows {
		v := e.visible(sn)
		if v == nil {
			continue
		}
		if err := fn(e, v); err != nil {
			return err
		}
	}
	return nil
}

// addIndex builds both faces over the existing rows — every version of
// every chain, since index entries point at chains. The ordered face is
// bulk-built (hash the rows, then one sort over the distinct values) rather
// than per-row sorted inserts, which would cost O(n^2) memmove on a
// populated table.
func (t *Table) addIndex(ix *Index) {
	ix.col = t.ColIndex(ix.Column)
	ix.m = map[string][]int64{}
	distinct := map[string]Value{}
	for _, e := range t.rows {
		for v := e.v; v != nil; v = v.prev {
			cv := v.vals[ix.col]
			key := cv.Key()
			ids, added := addID(ix.m[key], e.id)
			if !added {
				continue
			}
			ix.m[key] = ids
			if !cv.IsNull() {
				distinct[key] = cv
			}
		}
	}
	ix.ord = make([]Value, 0, len(distinct))
	for _, v := range distinct {
		ix.ord = append(ix.ord, v)
	}
	sort.Slice(ix.ord, func(i, j int) bool { return orderCompare(ix.ord[i], ix.ord[j]) < 0 })
	t.indexes[strings.ToLower(ix.Column)] = ix
}

// addID appends id to a bucket unless already present (a chain may hold the
// same value in several versions; the bucket records the row once).
func addID(ids []int64, id int64) ([]int64, bool) {
	for _, got := range ids {
		if got == id {
			return ids, false
		}
	}
	return append(ids, id), true
}

// removeID deletes id from a bucket (swap-delete); no-op when absent.
func removeID(ids []int64, id int64) ([]int64, bool) {
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			return ids[:len(ids)-1], true
		}
	}
	return ids, false
}

// ordSearch returns the position of v in ord, or the insertion point that
// keeps ord sorted. Within one (coerced) column, orderCompare(a, b) == 0
// implies a.Key() == b.Key(), so the position is unique.
func ordSearch(ord []Value, v Value) int {
	return sort.Search(len(ord), func(i int) bool { return orderCompare(ord[i], v) >= 0 })
}

// ordInsert adds v to the sorted slice if not already present.
func ordInsert(ord []Value, v Value) []Value {
	i := ordSearch(ord, v)
	if i < len(ord) && orderCompare(ord[i], v) == 0 {
		return ord
	}
	ord = append(ord, Value{})
	copy(ord[i+1:], ord[i:])
	ord[i] = v
	return ord
}

// ordDelete removes v from the sorted slice if present.
func ordDelete(ord []Value, v Value) []Value {
	i := ordSearch(ord, v)
	if i < len(ord) && orderCompare(ord[i], v) == 0 {
		return append(ord[:i], ord[i+1:]...)
	}
	return ord
}

func (ix *Index) add(v Value, id int64) {
	key := v.Key()
	ids, added := addID(ix.m[key], id)
	if !added {
		return
	}
	if len(ids) == 1 && !v.IsNull() {
		ix.ord = ordInsert(ix.ord, v)
	}
	ix.m[key] = ids
}

func (ix *Index) remove(v Value, id int64) {
	key := v.Key()
	ids, removed := removeID(ix.m[key], id)
	if !removed {
		return
	}
	if len(ids) == 0 {
		delete(ix.m, key)
		if !v.IsNull() {
			ix.ord = ordDelete(ix.ord, v)
		}
		return
	}
	ix.m[key] = ids
}

func (t *Table) pkKey(vals []Value) string {
	var sb strings.Builder
	for _, i := range t.pkCols {
		writeKeySegment(&sb, vals[i])
	}
	return sb.String()
}

// --- version-chain mutation primitives ---
//
// The write path calls these under the engine write lock (short critical
// sections); readers hold the read lock for their whole statement, so they
// never observe a half-installed version or index entry.

// insertEntry appends a new row whose first version belongs to txn. The
// caller has already passed constraint checks.
func (t *Table) insertEntry(vals []Value, txn *Txn) *rowEntry {
	t.nextID++
	e := &rowEntry{id: t.nextID, v: &rowVersion{vals: vals, xminTxn: txn}}
	t.rows = append(t.rows, e)
	t.byID[e.id] = e
	t.indexVals(e, vals)
	return e
}

// installVersion pushes a new version created by txn on top of e's chain,
// stamping the old head as superseded by txn. Returns the new version.
func (t *Table) installVersion(e *rowEntry, vals []Value, txn *Txn) *rowVersion {
	old := e.v
	old.xmaxTxn = txn
	e.v = &rowVersion{vals: vals, xminTxn: txn, prev: old}
	t.indexVals(e, vals)
	return e.v
}

// deleteVersion stamps e's head as deleted by txn. The index keeps its
// entries: the chain still holds the values, and older snapshots still see
// the row.
func (t *Table) deleteVersion(e *rowEntry, txn *Txn) *rowVersion {
	e.v.xmaxTxn = txn
	return e.v
}

// undoInsertEntry rolls back an insert: the chain had exactly this one
// version, so the entry becomes a husk (v == nil) that vacuum reclaims.
func (t *Table) undoInsertEntry(e *rowEntry) {
	vals := e.v.vals
	e.v = nil
	t.unindexVals(e, vals)
	delete(t.byID, e.id)
	t.garbage++
}

// undoInstallVersion rolls back an update: pop ver (the rolled-back new
// version) off the chain and clear the supersede stamp on the old head.
func (t *Table) undoInstallVersion(e *rowEntry, ver *rowVersion) {
	e.v = ver.prev
	e.v.xmaxTxn = nil
	t.unindexVals(e, ver.vals)
}

// undoDeleteVersion rolls back a delete: clear the stamp.
func (t *Table) undoDeleteVersion(ver *rowVersion) { ver.xmaxTxn = nil }

// indexVals registers a version's values: each indexed column's bucket and
// the PK bucket gain e's id unless the chain already put it there.
func (t *Table) indexVals(e *rowEntry, vals []Value) {
	if t.pkMap != nil {
		k := t.pkKey(vals)
		ids, added := addID(t.pkMap[k], e.id)
		if added {
			t.pkMap[k] = ids
			if len(ids) == 1 && len(t.pkCols) == 1 {
				t.pkOrd = ordInsert(t.pkOrd, vals[t.pkCols[0]])
			}
		}
	}
	for _, ix := range t.indexes {
		ix.add(vals[ix.col], e.id)
	}
}

// unindexVals removes index/PK entries for vals unless another version
// still in e's chain holds the same value (then the entry must stay).
func (t *Table) unindexVals(e *rowEntry, vals []Value) {
	if t.pkMap != nil {
		k := t.pkKey(vals)
		if !t.chainHasPK(e, k) {
			t.removePK(k, e.id, vals)
		}
	}
	for _, ix := range t.indexes {
		cv := vals[ix.col]
		if !chainHasKey(e, ix.col, cv.Key()) {
			ix.remove(cv, e.id)
		}
	}
}

// removePK drops id from a PK bucket, maintaining the ordered face for
// single-column keys. Idempotent: a no-op when the id is absent.
func (t *Table) removePK(k string, id int64, vals []Value) {
	ids, removed := removeID(t.pkMap[k], id)
	if !removed {
		return
	}
	if len(ids) == 0 {
		delete(t.pkMap, k)
		if len(t.pkCols) == 1 {
			t.pkOrd = ordDelete(t.pkOrd, vals[t.pkCols[0]])
		}
		return
	}
	t.pkMap[k] = ids
}

// chainHasPK reports whether any version in e's chain renders PK key k.
func (t *Table) chainHasPK(e *rowEntry, k string) bool {
	for v := e.v; v != nil; v = v.prev {
		if t.pkKey(v.vals) == k {
			return true
		}
	}
	return false
}

// chainHasKey reports whether any version in e's chain holds key k in col.
func chainHasKey(e *rowEntry, col int, k string) bool {
	for v := e.v; v != nil; v = v.prev {
		if v.vals[col].Key() == k {
			return true
		}
	}
	return false
}

// rebuildPK bulk-builds the primary-key buckets and (for single-column
// keys) the ordered face over the existing chains: hash every version, then
// one sort — the same shape as addIndex, used by the snapshot loader
// instead of per-row sorted inserts.
func (t *Table) rebuildPK() {
	if t.pkMap == nil {
		return
	}
	t.pkMap = make(map[string][]int64, len(t.rows))
	single := len(t.pkCols) == 1
	var ord []Value
	if single {
		ord = make([]Value, 0, len(t.rows))
	}
	for _, e := range t.rows {
		for v := e.v; v != nil; v = v.prev {
			k := t.pkKey(v.vals)
			ids, added := addID(t.pkMap[k], e.id)
			if !added {
				continue
			}
			t.pkMap[k] = ids
			if single && len(ids) == 1 {
				ord = append(ord, v.vals[t.pkCols[0]])
			}
		}
	}
	if single {
		sort.Slice(ord, func(i, j int) bool { return orderCompare(ord[i], ord[j]) < 0 })
		t.pkOrd = ord
	}
}

// lookupEq returns ids of rows whose chain may hold v in col, using an
// index bucket or the PK buckets, or usable=false when no access path
// exists (caller falls back to a scan). Callers resolve each id against
// their snapshot and re-check the visible version's value: buckets cover
// chains, not any one snapshot.
func (t *Table) lookupEq(col int, v Value) ([]int64, bool) {
	if len(t.pkCols) == 1 && t.pkCols[0] == col {
		var sb strings.Builder
		writeKeySegment(&sb, v)
		return t.pkMap[sb.String()], true
	}
	if ix, ok := t.indexes[strings.ToLower(t.Columns[col].Name)]; ok {
		return ix.m[v.Key()], true
	}
	return nil, false
}

// orderedOn returns the sorted distinct values of column col plus a lookup
// from value to row ids (NULL included), via the single-column primary key
// or an ordered secondary index. ok is false when no ordered structure
// covers the column (caller falls back to scan+sort).
func (t *Table) orderedOn(col int) (ord []Value, idsFor func(Value) []int64, ok bool) {
	// Buckets are swap-deleted, so restore insertion (id) order — but only
	// when there is anything to order: PK buckets are almost always length
	// 0 or 1 (longer only transiently, a dead chain beside a reinserted
	// key awaiting vacuum), and the copy+sort per visited value would
	// otherwise tax every ordered scan's hot path. Callers only read the
	// returned slice.
	sortedBucket := func(ids []int64) []int64 {
		if len(ids) <= 1 {
			return ids
		}
		out := append([]int64{}, ids...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	if len(t.pkCols) == 1 && t.pkCols[0] == col {
		idsFor = func(v Value) []int64 {
			var sb strings.Builder
			writeKeySegment(&sb, v)
			return sortedBucket(t.pkMap[sb.String()])
		}
		return t.pkOrd, idsFor, true
	}
	if ix, hit := t.indexes[strings.ToLower(t.Columns[col].Name)]; hit {
		idsFor = func(v Value) []int64 {
			return sortedBucket(ix.m[v.Key()])
		}
		return ix.ord, idsFor, true
	}
	return nil, nil, false
}

// lookupRange returns the rows sn sees whose column col falls within
// [lo, hi] (nil = unbounded, inclusivity per flag), in column order —
// reversed when desc. usable is false when no ordered structure covers the
// column. Each row is emitted at the position of its VISIBLE version's
// value (buckets cover whole chains, so a row is skipped under values only
// other versions hold — it surfaces under its own). withNulls additionally
// emits NULL rows at the position ORDER BY gives them (last ascending,
// first descending; only meaningful for unbounded scans serving a sort).
// maxRows > 0 stops emission early — the Top-K fast path — and 0 means
// unlimited.
func (t *Table) lookupRange(sn snapView, col int, lo, hi *Value, loIncl, hiIncl, desc, withNulls bool, maxRows int) ([]rowHit, bool) {
	ord, idsFor, ok := t.orderedOn(col)
	if !ok {
		return nil, false
	}
	start, end := 0, len(ord)
	if lo != nil {
		start = ordSearch(ord, *lo)
		if !loIncl && start < len(ord) && orderCompare(ord[start], *lo) == 0 {
			start++
		}
	}
	if hi != nil {
		end = ordSearch(ord, *hi)
		if hiIncl && end < len(ord) && orderCompare(ord[end], *hi) == 0 {
			end++
		}
	}
	if start > end {
		start = end
	}
	var out []rowHit
	full := maxRows <= 0
	emit := func(val Value, ids []int64) bool {
		key := val.Key()
		for _, id := range ids {
			e := t.byID[id]
			if e == nil {
				continue
			}
			v := e.visible(sn)
			if v == nil || v.vals[col].Key() != key {
				continue
			}
			out = append(out, rowHit{e: e, v: v})
			if !full && len(out) >= maxRows {
				return false
			}
		}
		return true
	}
	if desc && withNulls && !emit(Null(), idsFor(Null())) {
		return out, true
	}
	if desc {
		for i := end - 1; i >= start; i-- {
			if !emit(ord[i], idsFor(ord[i])) {
				return out, true
			}
		}
	} else {
		for i := start; i < end; i++ {
			if !emit(ord[i], idsFor(ord[i])) {
				return out, true
			}
		}
	}
	if !desc && withNulls {
		emit(Null(), idsFor(Null()))
	}
	return out, true
}

// Engine is a single logical database: a catalog of tables, the privilege
// store, and the execution entry points. An Engine corresponds to one
// PostgreSQL database in the paper's setup.
type Engine struct {
	Name string

	// mu guards the catalog and all row data. Read-only statements
	// (SELECT, EXPLAIN) take the read side for their whole statement so
	// independent sessions scan in parallel. DML writers do NOT hold the
	// write side across their statement: they serialize through the lock
	// manager and take mu only for short version-installation critical
	// sections, so readers never stall behind a long write statement. DDL,
	// grants, and rollback still take the write side for the whole
	// statement.
	mu sync.RWMutex
	// locks is the write-side lock manager: DML statements lock just the
	// tables they touch (in deterministic order), while DDL, grants, and
	// transaction control take the all-tables lock. Lock-manager locks are
	// always acquired before mu.
	locks lockManager
	// par configures batched/parallel query execution: worker count, the
	// row-count threshold, and the engine-shared worker slot pool.
	par        parallelConfig
	tables     map[string]*Table // lower-case name -> table
	tableOrder []string          // creation order of lower-case names
	views      map[string]*View  // lower-case name -> view
	viewOrder  []string
	grants     *Grants
	// epochCounter feeds Table.epoch (under mu, via createTable); replay
	// and snapshot load keep it ahead of every epoch they restore.
	epochCounter uint64

	// lastCommitTS is the engine's logical commit clock. A snapshot is the
	// clock value at BEGIN (or statement start); commit stamps its versions
	// with clock+1 and then advances the clock, both under mu, so a reader
	// whose snapshot covers a timestamp sees every version stamped with it.
	lastCommitTS atomic.Uint64
	// snapMu guards activeTxns: open transactions and their snapshot
	// timestamps, the GC horizon for version vacuuming.
	snapMu     sync.Mutex
	activeTxns map[*Txn]uint64

	// catalogVersion counts catalog mutations (DDL and grant changes). The
	// plan cache keys every entry to the version it was planned against, so
	// a bump invalidates all cached plans without touching the cache itself.
	// Atomic because grants can be mutated directly through Grants() without
	// the engine lock.
	catalogVersion atomic.Uint64
	plans          *planCache

	// dmlRowsVisited counts rows the write path inspected while matching
	// UPDATE/DELETE targets; the gap between an index path (bucket-sized)
	// and a full scan (table-sized) is asserted in tests and reported by
	// benchrunner.
	dmlRowsVisited atomic.Int64

	// scanRowsVisited is the read-side counterpart: rows the SELECT path
	// materialized from base tables (seq scans count the whole table, index
	// and range scans only their matching rows). Tests assert that a range
	// predicate on an ordered index visits only in-range rows.
	scanRowsVisited atomic.Int64

	// writeConflicts counts statements aborted by first-committer-wins
	// write-write conflict detection (retryable serialization failures).
	writeConflicts atomic.Int64

	// Durability (engines opened with OpenEngine; all nil/zero for
	// in-memory engines created with NewEngine). wal is atomic because the
	// grants logger reads it without the engine lock and Close swaps it out.
	wal      atomic.Pointer[wal]
	fs       vfs.FS
	dir      string
	lockFile vfs.Unlocker
	closed   atomic.Bool
	// degradedErr, once set, parks the engine in read-only degraded mode:
	// the durability stack hit an I/O error (see degraded.go) and writes can
	// no longer be honestly acknowledged. Atomic because it is set from the
	// WAL flusher goroutine and read on every write statement.
	degradedErr atomic.Pointer[DegradedError]
	// ckptErr is the most recent checkpoint failure (nil after a success);
	// background checkpoints park their error here (see noteCkptErr).
	ckptErr atomic.Pointer[error]
	// ckptMu serializes Checkpoint calls (manual, background, Close); the
	// last-checkpoint markers below are only touched under it.
	ckptMu          sync.Mutex
	lastCkptLSN     uint64
	lastCkptVersion uint64
	ckptQuit        chan struct{}
	ckptDone        chan struct{}
	// grantWALErr parks a failed WAL append for a privilege mutation (the
	// Grants store's mutators return no error); execGrant/execRevoke take
	// and surface it.
	grantWALErr atomic.Pointer[error]
	// grantSink, when set, collects privilege WAL records fired during a
	// GRANT/REVOKE statement so the whole statement commits as one frame
	// with one durability wait (see Engine.logGrantsBatched).
	grantSink atomic.Pointer[grantSink]

	// metrics holds the engine's latency histograms and hot-path counters
	// (see observe.go). All members are atomics; recording never takes a
	// lock and — enforced by the sqlvet lockorder analyzer — never happens
	// under the exclusive engine lock or inside the WAL I/O critical
	// section.
	metrics engineMetrics
	// slow is the ring-buffered slow-query log; statements at or over its
	// threshold are recorded with their user, duration, rows, retry count,
	// and rendered plan.
	slow *stats.SlowLog
}

// grantSink accumulates privilege WAL records for one statement. closed
// flips (under mu) once the owning statement has drained recs: a logger
// that loaded the sink pointer just before it was cleared must not append
// to a drained sink — the record would never reach the WAL — so on closed
// it falls back to the direct commit path instead.
type grantSink struct {
	mu     sync.Mutex
	recs   [][]byte
	closed bool
}

// logGrantsBatched runs fn (a sequence of Grants mutations) with the
// privilege logger redirected into a per-statement sink, then appends the
// collected records as a single WAL frame. The returned token is the
// statement's claim on that frame's durability — the caller parks it and
// the executor waits on it after every lock is released, so the fsync never
// happens under the engine write lock. Nil on in-memory engines.
func (e *Engine) logGrantsBatched(fn func()) *syncToken {
	sink := &grantSink{}
	e.grantSink.Store(sink)
	fn()
	e.grantSink.Store(nil)
	sink.mu.Lock()
	recs := sink.recs
	sink.closed = true
	sink.mu.Unlock()
	if w := e.wal.Load(); w != nil && len(recs) > 0 {
		return w.commit(recs)
	}
	return nil
}

// takeGrantWALErr returns and clears a parked privilege-logging error.
func (e *Engine) takeGrantWALErr() error {
	if p := e.grantWALErr.Swap(nil); p != nil {
		return *p
	}
	return nil
}

// DurabilityStats reports the persistence subsystem's counters. For an
// in-memory engine only Durable=false and Mode="memory" are meaningful.
type DurabilityStats struct {
	Durable      bool   // true when the engine is backed by a WAL directory
	Dir          string // WAL/snapshot directory
	Mode         string // sync mode: off, batch, always (or "memory")
	Commits      int64  // transactions appended to the WAL
	Records      int64  // individual redo records appended
	Fsyncs       int64  // fsync calls issued
	GroupFlushes int64  // group-commit batches flushed (batch mode)
	WALBytes     int64  // total bytes appended since open
	WALSize      int64  // bytes in the active segment
	Segment      uint64 // active segment number
	LSN          uint64 // last committed log sequence number
	Checkpoints  int64  // snapshots written since open
}

// Durability returns the engine's persistence counters.
func (e *Engine) Durability() DurabilityStats {
	w := e.wal.Load()
	if w == nil {
		return DurabilityStats{Mode: "memory"}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return DurabilityStats{
		Durable:      true,
		Dir:          e.dir,
		Mode:         w.mode.String(),
		Commits:      w.commits,
		Records:      w.records,
		Fsyncs:       w.fsyncs,
		GroupFlushes: w.groupFlushes,
		WALBytes:     w.bytes,
		WALSize:      w.size + int64(len(w.pending)),
		Segment:      w.seg,
		LSN:          w.lsn,
		Checkpoints:  w.checkpoints,
	}
}

// View is a named stored query. The AST is shared by every scanning
// session; execution never mutates statement trees (see Env.sess), so no
// copies are needed.
type View struct {
	Name  string
	Query *SelectStmt
}

// NewEngine creates an empty database. The special user "root" is always a
// superuser.
func NewEngine(name string) *Engine {
	e := &Engine{
		Name:       name,
		tables:     map[string]*Table{},
		views:      map[string]*View{},
		plans:      newPlanCache(),
		activeTxns: map[*Txn]uint64{},
		slow:       stats.NewSlowLog(slowLogCap, defaultSlowThreshold),
	}
	// Grants share the catalog version counter so privilege changes made
	// directly through Grants() (fixtures, toolkits) also invalidate plans.
	e.grants = newGrants(&e.catalogVersion)
	return e
}

// bumpCatalog invalidates every cached plan by advancing the version.
func (e *Engine) bumpCatalog() { e.catalogVersion.Add(1) }

// CatalogVersion returns the current catalog version counter.
func (e *Engine) CatalogVersion() uint64 { return e.catalogVersion.Load() }

// PlanCacheStats reports the engine's statement-cache counters: hits served
// without re-parsing/planning, and misses (cold or invalidated lookups).
func (e *Engine) PlanCacheStats() (hits, misses int64) { return e.plans.stats() }

// PlanCacheSnapshot reports the full plan-cache counters, including LRU
// evictions and the number of currently cached plans.
func (e *Engine) PlanCacheSnapshot() stats.CacheStats { return e.plans.snapshot() }

// DMLRowsVisited returns the cumulative count of rows inspected while
// matching UPDATE/DELETE targets.
func (e *Engine) DMLRowsVisited() int64 { return e.dmlRowsVisited.Load() }

// ScanRowsVisited returns the cumulative count of base-table rows the
// SELECT path materialized (full table per seq scan, matching rows per
// index/range scan).
func (e *Engine) ScanRowsVisited() int64 { return e.scanRowsVisited.Load() }

// WriteConflicts returns the cumulative count of statements aborted with a
// retryable serialization error by write-write conflict detection.
func (e *Engine) WriteConflicts() int64 { return e.writeConflicts.Load() }

// Grants exposes the privilege store for direct configuration.
func (e *Engine) Grants() *Grants { return e.grants }

// Table returns a table by case-insensitive name.
func (e *Engine) Table(name string) (*Table, bool) {
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists tables in creation order.
func (e *Engine) TableNames() []string {
	out := make([]string, 0, len(e.tableOrder))
	for _, lo := range e.tableOrder {
		out = append(out, e.tables[lo].Name)
	}
	return out
}

// ViewByName returns a view by case-insensitive name.
func (e *Engine) ViewByName(name string) (*View, bool) {
	v, ok := e.views[strings.ToLower(name)]
	return v, ok
}

// ViewNames lists views in creation order.
func (e *Engine) ViewNames() []string {
	out := make([]string, 0, len(e.viewOrder))
	for _, lo := range e.viewOrder {
		out = append(out, e.views[lo].Name)
	}
	return out
}

func (e *Engine) createView(v *View) error {
	lo := strings.ToLower(v.Name)
	if _, exists := e.tables[lo]; exists {
		return fmt.Errorf("table %q already exists", v.Name)
	}
	if _, exists := e.views[lo]; exists {
		return fmt.Errorf("view %q already exists", v.Name)
	}
	e.views[lo] = v
	e.viewOrder = append(e.viewOrder, lo)
	e.bumpCatalog()
	return nil
}

func (e *Engine) dropView(name string) (*View, error) {
	lo := strings.ToLower(name)
	v, ok := e.views[lo]
	if !ok {
		return nil, &NotFoundError{Kind: "view", Name: name}
	}
	delete(e.views, lo)
	for i, n := range e.viewOrder {
		if n == lo {
			e.viewOrder = append(e.viewOrder[:i], e.viewOrder[i+1:]...)
			break
		}
	}
	e.bumpCatalog()
	return v, nil
}

// createTable registers a table in the catalog and assigns its epoch. A
// table arriving with a non-zero epoch (snapshot load, WAL replay) keeps it;
// either way the counter stays ahead so later incarnations never reuse one.
func (e *Engine) createTable(t *Table) error {
	lo := strings.ToLower(t.Name)
	if _, exists := e.tables[lo]; exists {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if _, exists := e.views[lo]; exists {
		return fmt.Errorf("view %q already exists", t.Name)
	}
	if t.epoch == 0 {
		e.epochCounter++
		t.epoch = e.epochCounter
	} else if t.epoch > e.epochCounter {
		e.epochCounter = t.epoch
	}
	e.tables[lo] = t
	e.tableOrder = append(e.tableOrder, lo)
	e.bumpCatalog()
	return nil
}

// dropTable removes a table from the catalog and returns it (for undo).
func (e *Engine) dropTable(name string) (*Table, error) {
	lo := strings.ToLower(name)
	t, ok := e.tables[lo]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	// Refuse when another table references this one.
	for _, other := range e.tables {
		if strings.EqualFold(other.Name, name) {
			continue
		}
		for _, fk := range other.ForeignKeys {
			if strings.EqualFold(fk.ParentTable, name) {
				return nil, fmt.Errorf("cannot drop table %q: table %q references it", name, other.Name)
			}
		}
	}
	delete(e.tables, lo)
	for i, n := range e.tableOrder {
		if n == lo {
			e.tableOrder = append(e.tableOrder[:i], e.tableOrder[i+1:]...)
			break
		}
	}
	e.bumpCatalog()
	return t, nil
}

// childFKs lists (table, fk) pairs that reference parent.
func (e *Engine) childFKs(parent string) []childFK {
	var out []childFK
	for _, lo := range e.tableOrder {
		t := e.tables[lo]
		for i := range t.ForeignKeys {
			if strings.EqualFold(t.ForeignKeys[i].ParentTable, parent) {
				out = append(out, childFK{table: t, fk: &t.ForeignKeys[i]})
			}
		}
	}
	return out
}

type childFK struct {
	table *Table
	fk    *ForeignKey
}

// SchemaSQL renders a table's definition as LLM-readable CREATE TABLE text,
// matching the representation in the paper's Figure 3.
func SchemaSQL(t *Table) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (\n", t.Name)
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "  %s %s", c.Name, c.Type)
		if c.PrimaryKey && len(t.PrimaryKey) <= 1 {
			sb.WriteString(" PRIMARY KEY")
		}
		if c.NotNull && !c.PrimaryKey {
			sb.WriteString(" NOT NULL")
		}
		if c.Unique {
			sb.WriteString(" UNIQUE")
		}
		if c.Default != nil {
			sb.WriteString(" DEFAULT " + c.Default.String())
		}
		if i < len(t.Columns)-1 || len(t.PrimaryKey) > 1 || len(t.ForeignKeys) > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	if len(t.PrimaryKey) > 1 {
		fmt.Fprintf(&sb, "  PRIMARY KEY (%s)", strings.Join(t.PrimaryKey, ", "))
		if len(t.ForeignKeys) > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	for i, fk := range t.ForeignKeys {
		fmt.Fprintf(&sb, "  FOREIGN KEY (%s) REFERENCES %s(%s)",
			strings.Join(fk.Columns, ", "), fk.ParentTable, strings.Join(fk.ParentColumns, ", "))
		if i < len(t.ForeignKeys)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString(");")
	return sb.String()
}

// ColumnValues returns the distinct values of a column in the latest
// committed state, sorted by their canonical keys, capped at limit
// (0 = unlimited). Used by the get_value exemplar tool.
func (e *Engine) ColumnValues(table, column string, limit int) ([]Value, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.Table(table)
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", table)
	}
	ci := t.ColIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("column %q does not exist in table %q", column, table)
	}
	seen := map[string]Value{}
	_ = t.visibleRows(latestView(nil), func(_ *rowEntry, rv *rowVersion) error {
		v := rv.vals[ci]
		if !v.IsNull() {
			seen[v.Key()] = v
		}
		return nil
	})
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}
