package sqldb

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column describes one table column.
type Column struct {
	Name       string
	Type       Kind
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	Default    Expr // nil when absent
}

// ForeignKey is a FOREIGN KEY constraint on a table.
type ForeignKey struct {
	Columns       []string
	ParentTable   string
	ParentColumns []string
}

// rowEntry is one stored row. Deleted rows are tombstoned (dead=true) so an
// open transaction can resurrect them on rollback; they are compacted once
// no transaction can reference them.
type rowEntry struct {
	id   int64
	vals []Value
	dead bool
	// deadDurable marks a tombstone whose deleting transaction has
	// committed (set at that commit, cleared by resurrect). encodeRedo
	// needs the distinction: a row tombstoned by a still-open transaction
	// may be resurrected by its rollback, so redo records for it must be
	// kept; a committed deletion is (or will be) logged by its own
	// transaction, so they must be dropped.
	deadDurable bool
}

// Index is a single-column index with two faces: a hash map serving
// equality lookups in O(1), and a sorted slice of the distinct non-NULL
// values serving range scans and ordered iteration. Both are maintained
// together by every INSERT/UPDATE/DELETE (through the table's row hooks).
type Index struct {
	Name   string
	Column string
	Unique bool
	col    int                // column position
	m      map[string][]int64 // value key -> live row ids
	ord    []Value            // distinct non-NULL values, sorted by orderCompare
}

// Table is an in-memory heap of rows plus secondary structures.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey

	// epoch identifies this incarnation of the table: assigned by
	// createTable from an engine-wide counter, preserved by snapshots and
	// WAL replay. Redo records carry it so replay can tell DML aimed at a
	// dropped-and-recreated table of the same name from DML aimed at the
	// current one (see the WAL record-type comment in wal.go).
	epoch uint64

	rows    []*rowEntry
	byID    map[int64]*rowEntry
	nextID  int64
	deadCnt int

	indexes map[string]*Index // keyed by lower-case column name
	pkCols  []int             // resolved PK column positions
	pkMap   map[string]int64  // composite PK key -> row id
	pkOrd   []Value           // single-column PK values, sorted (nil otherwise)
}

func newTable(name string, cols []Column, pk []string, fks []ForeignKey) (*Table, error) {
	t := &Table{
		Name:        name,
		Columns:     cols,
		PrimaryKey:  pk,
		ForeignKeys: fks,
		byID:        map[int64]*rowEntry{},
		indexes:     map[string]*Index{},
	}
	seen := map[string]bool{}
	for _, c := range cols {
		lo := strings.ToLower(c.Name)
		if seen[lo] {
			return nil, fmt.Errorf("duplicate column %q in table %q", c.Name, name)
		}
		seen[lo] = true
	}
	for _, pc := range pk {
		i := t.ColIndex(pc)
		if i < 0 {
			return nil, fmt.Errorf("primary key column %q not found in table %q", pc, name)
		}
		t.pkCols = append(t.pkCols, i)
	}
	if len(t.pkCols) > 0 {
		t.pkMap = map[string]int64{}
	}
	// Auto-index UNIQUE columns.
	for _, c := range cols {
		if c.Unique && !c.PrimaryKey {
			t.addIndex(&Index{Name: name + "_" + c.Name + "_key", Column: c.Name, Unique: true})
		}
	}
	return t, nil
}

// ColIndex returns the position of a column by case-insensitive name, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames lists the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return len(t.rows) - t.deadCnt }

// liveRows iterates over live rows in insertion order.
func (t *Table) liveRows(fn func(*rowEntry) error) error {
	for _, r := range t.rows {
		if r.dead {
			continue
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// addIndex builds both faces over the existing rows. The ordered face is
// bulk-built — hash the rows, then one sort over the distinct values —
// rather than per-row sorted inserts, which would cost O(n^2) memmove on a
// populated table.
func (t *Table) addIndex(ix *Index) {
	ix.col = t.ColIndex(ix.Column)
	ix.m = map[string][]int64{}
	distinct := map[string]Value{}
	for _, r := range t.rows {
		if r.dead {
			continue
		}
		v := r.vals[ix.col]
		key := v.Key()
		ix.m[key] = append(ix.m[key], r.id)
		if !v.IsNull() {
			distinct[key] = v
		}
	}
	ix.ord = make([]Value, 0, len(distinct))
	for _, v := range distinct {
		ix.ord = append(ix.ord, v)
	}
	sort.Slice(ix.ord, func(i, j int) bool { return orderCompare(ix.ord[i], ix.ord[j]) < 0 })
	t.indexes[strings.ToLower(ix.Column)] = ix
}

// ordSearch returns the position of v in ord, or the insertion point that
// keeps ord sorted. Within one (coerced) column, orderCompare(a, b) == 0
// implies a.Key() == b.Key(), so the position is unique.
func ordSearch(ord []Value, v Value) int {
	return sort.Search(len(ord), func(i int) bool { return orderCompare(ord[i], v) >= 0 })
}

// ordInsert adds v to the sorted slice if not already present.
func ordInsert(ord []Value, v Value) []Value {
	i := ordSearch(ord, v)
	if i < len(ord) && orderCompare(ord[i], v) == 0 {
		return ord
	}
	ord = append(ord, Value{})
	copy(ord[i+1:], ord[i:])
	ord[i] = v
	return ord
}

// ordDelete removes v from the sorted slice if present.
func ordDelete(ord []Value, v Value) []Value {
	i := ordSearch(ord, v)
	if i < len(ord) && orderCompare(ord[i], v) == 0 {
		return append(ord[:i], ord[i+1:]...)
	}
	return ord
}

func (ix *Index) add(v Value, id int64) {
	key := v.Key()
	ids := ix.m[key]
	if len(ids) == 0 && !v.IsNull() {
		ix.ord = ordInsert(ix.ord, v)
	}
	ix.m[key] = append(ids, id)
}

func (ix *Index) remove(v Value, id int64) {
	key := v.Key()
	ids := ix.m[key]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ix.m[key] = ids[:len(ids)-1]
			if len(ids) == 1 {
				delete(ix.m, key)
				if !v.IsNull() {
					ix.ord = ordDelete(ix.ord, v)
				}
			}
			return
		}
	}
}

func (t *Table) pkKey(vals []Value) string {
	var sb strings.Builder
	for _, i := range t.pkCols {
		writeKeySegment(&sb, vals[i])
	}
	return sb.String()
}

// insertEntry appends a row that already passed constraint checks.
func (t *Table) insertEntry(vals []Value) *rowEntry {
	t.nextID++
	e := &rowEntry{id: t.nextID, vals: vals}
	t.rows = append(t.rows, e)
	t.byID[e.id] = e
	t.hookAdd(e)
	return e
}

// markDead tombstones a row.
func (t *Table) markDead(e *rowEntry) {
	if e.dead {
		return
	}
	e.dead = true
	t.deadCnt++
	t.hookRemove(e)
}

// resurrect undoes markDead.
func (t *Table) resurrect(e *rowEntry) {
	if !e.dead {
		return
	}
	e.dead = false
	e.deadDurable = false
	t.deadCnt--
	t.hookAdd(e)
}

// replaceVals swaps a live row's values, keeping secondary structures
// consistent.
func (t *Table) replaceVals(e *rowEntry, vals []Value) {
	t.hookRemove(e)
	e.vals = vals
	t.hookAdd(e)
}

func (t *Table) hookAdd(e *rowEntry) {
	if t.pkMap != nil {
		t.pkMap[t.pkKey(e.vals)] = e.id
		if len(t.pkCols) == 1 {
			t.pkOrd = ordInsert(t.pkOrd, e.vals[t.pkCols[0]])
		}
	}
	for _, ix := range t.indexes {
		ix.add(e.vals[ix.col], e.id)
	}
}

func (t *Table) hookRemove(e *rowEntry) {
	if t.pkMap != nil {
		k := t.pkKey(e.vals)
		if t.pkMap[k] == e.id {
			delete(t.pkMap, k)
			if len(t.pkCols) == 1 {
				t.pkOrd = ordDelete(t.pkOrd, e.vals[t.pkCols[0]])
			}
		}
	}
	for _, ix := range t.indexes {
		ix.remove(e.vals[ix.col], e.id)
	}
}

// rebuildPK bulk-builds the primary-key map and (for single-column keys)
// the ordered face over the existing rows: hash every live row, then one
// sort — the same shape as addIndex, used by the snapshot loader instead of
// per-row sorted inserts.
func (t *Table) rebuildPK() {
	if t.pkMap == nil {
		return
	}
	t.pkMap = make(map[string]int64, len(t.rows))
	single := len(t.pkCols) == 1
	var ord []Value
	if single {
		ord = make([]Value, 0, len(t.rows))
	}
	for _, r := range t.rows {
		if r.dead {
			continue
		}
		t.pkMap[t.pkKey(r.vals)] = r.id
		if single {
			ord = append(ord, r.vals[t.pkCols[0]])
		}
	}
	if single {
		sort.Slice(ord, func(i, j int) bool { return orderCompare(ord[i], ord[j]) < 0 })
		t.pkOrd = ord
	}
}

// compact removes tombstoned rows. Only safe when no transaction may
// reference them.
func (t *Table) compact() {
	if t.deadCnt == 0 {
		return
	}
	live := t.rows[:0]
	for _, r := range t.rows {
		if r.dead {
			delete(t.byID, r.id)
			continue
		}
		live = append(live, r)
	}
	t.rows = live
	t.deadCnt = 0
}

// lookupEq returns ids of live rows whose column equals v, using an index,
// the PK map, or nil when no access path exists (caller falls back to scan).
func (t *Table) lookupEq(col int, v Value) ([]int64, bool) {
	if len(t.pkCols) == 1 && t.pkCols[0] == col {
		var sb strings.Builder
		writeKeySegment(&sb, v)
		if id, ok := t.pkMap[sb.String()]; ok {
			return []int64{id}, true
		}
		return nil, true
	}
	if ix, ok := t.indexes[strings.ToLower(t.Columns[col].Name)]; ok {
		return ix.m[v.Key()], true
	}
	return nil, false
}

// orderedOn returns the sorted distinct values of column col plus a lookup
// from value to live row ids (NULL included — PK lookups just miss), via
// the single-column primary key or an ordered secondary index. ok is false
// when no ordered structure covers the column (caller falls back to
// scan+sort).
func (t *Table) orderedOn(col int) (ord []Value, idsFor func(Value) []int64, ok bool) {
	if len(t.pkCols) == 1 && t.pkCols[0] == col {
		idsFor = func(v Value) []int64 {
			var sb strings.Builder
			writeKeySegment(&sb, v)
			if id, hit := t.pkMap[sb.String()]; hit {
				return []int64{id}
			}
			return nil
		}
		return t.pkOrd, idsFor, true
	}
	if ix, hit := t.indexes[strings.ToLower(t.Columns[col].Name)]; hit {
		idsFor = func(v Value) []int64 {
			ids := append([]int64{}, ix.m[v.Key()]...)
			// Buckets are swap-deleted, so restore insertion (id) order.
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids
		}
		return ix.ord, idsFor, true
	}
	return nil, nil, false
}

// lookupRange returns ids of live rows whose column col falls within
// [lo, hi] (nil = unbounded, inclusivity per flag), in column order —
// reversed when desc. usable is false when no ordered structure covers the
// column. withNulls additionally emits NULL rows at the position ORDER BY
// gives them (last ascending, first descending; only meaningful for
// unbounded scans serving a sort). maxRows > 0 stops emission early — the
// Top-K fast path — and 0 means unlimited.
func (t *Table) lookupRange(col int, lo, hi *Value, loIncl, hiIncl, desc, withNulls bool, maxRows int) ([]int64, bool) {
	ord, idsFor, ok := t.orderedOn(col)
	if !ok {
		return nil, false
	}
	// The NULL bucket is only gathered (copied + sorted) when the scan
	// actually emits NULL rows; bounded scans and write matching skip it.
	var nullIDs []int64
	if withNulls {
		nullIDs = idsFor(Null())
	}
	start, end := 0, len(ord)
	if lo != nil {
		start = ordSearch(ord, *lo)
		if !loIncl && start < len(ord) && orderCompare(ord[start], *lo) == 0 {
			start++
		}
	}
	if hi != nil {
		end = ordSearch(ord, *hi)
		if hiIncl && end < len(ord) && orderCompare(ord[end], *hi) == 0 {
			end++
		}
	}
	if start > end {
		start = end
	}
	var out []int64
	full := maxRows <= 0
	emit := func(ids []int64) bool {
		for _, id := range ids {
			out = append(out, id)
			if !full && len(out) >= maxRows {
				return false
			}
		}
		return true
	}
	if desc && withNulls && !emit(nullIDs) {
		return out, true
	}
	if desc {
		for i := end - 1; i >= start; i-- {
			if !emit(idsFor(ord[i])) {
				return out, true
			}
		}
	} else {
		for i := start; i < end; i++ {
			if !emit(idsFor(ord[i])) {
				return out, true
			}
		}
	}
	if !desc && withNulls {
		emit(nullIDs)
	}
	return out, true
}

// Engine is a single logical database: a catalog of tables, the privilege
// store, and the execution entry points. An Engine corresponds to one
// PostgreSQL database in the paper's setup.
type Engine struct {
	Name string

	// mu guards the catalog and all row data. Read-only statements
	// (SELECT, EXPLAIN) take the read side so independent sessions can
	// scan in parallel; every mutating statement takes the write side.
	mu         sync.RWMutex
	tables     map[string]*Table // lower-case name -> table
	tableOrder []string          // creation order of lower-case names
	views      map[string]*View  // lower-case name -> view
	viewOrder  []string
	grants     *Grants
	// epochCounter feeds Table.epoch (under mu, via createTable); replay
	// and snapshot load keep it ahead of every epoch they restore.
	epochCounter uint64

	// catalogVersion counts catalog mutations (DDL and grant changes). The
	// plan cache keys every entry to the version it was planned against, so
	// a bump invalidates all cached plans without touching the cache itself.
	// Atomic because grants can be mutated directly through Grants() without
	// the engine lock.
	catalogVersion atomic.Uint64
	plans          *planCache

	// dmlRowsVisited counts rows the write path inspected while matching
	// UPDATE/DELETE targets; the gap between an index path (bucket-sized)
	// and a full scan (table-sized) is asserted in tests and reported by
	// benchrunner.
	dmlRowsVisited atomic.Int64

	// scanRowsVisited is the read-side counterpart: rows the SELECT path
	// materialized from base tables (seq scans count the whole table, index
	// and range scans only their matching rows). Tests assert that a range
	// predicate on an ordered index visits only in-range rows.
	scanRowsVisited atomic.Int64

	// Durability (engines opened with OpenEngine; all nil/zero for
	// in-memory engines created with NewEngine). wal is atomic because the
	// grants logger reads it without the engine lock and Close swaps it out.
	wal      atomic.Pointer[wal]
	dir      string
	lockFile *os.File
	closed   atomic.Bool
	// ckptMu serializes Checkpoint calls (manual, background, Close); the
	// last-checkpoint markers below are only touched under it.
	ckptMu          sync.Mutex
	lastCkptLSN     uint64
	lastCkptVersion uint64
	ckptQuit        chan struct{}
	ckptDone        chan struct{}
	// grantWALErr parks a failed WAL append for a privilege mutation (the
	// Grants store's mutators return no error); execGrant/execRevoke take
	// and surface it.
	grantWALErr atomic.Pointer[error]
	// grantSink, when set, collects privilege WAL records fired during a
	// GRANT/REVOKE statement so the whole statement commits as one frame
	// with one durability wait (see Engine.logGrantsBatched).
	grantSink atomic.Pointer[grantSink]
	// openTxns counts sessions with an open transaction. Checkpoints are
	// skipped while it is non-zero: an open transaction's uncommitted rows
	// live in the heap (READ UNCOMMITTED) but not in the WAL, so a snapshot
	// taken now would make them durable (breaking rollback) and collide
	// with the transaction's own redo frame on replay if it commits.
	openTxns atomic.Int64
}

// grantSink accumulates privilege WAL records for one statement. closed
// flips (under mu) once the owning statement has drained recs: a logger
// that loaded the sink pointer just before it was cleared must not append
// to a drained sink — the record would never reach the WAL — so on closed
// it falls back to the direct commit path instead.
type grantSink struct {
	mu     sync.Mutex
	recs   [][]byte
	closed bool
}

// logGrantsBatched runs fn (a sequence of Grants mutations) with the
// privilege logger redirected into a per-statement sink, then appends the
// collected records as a single WAL frame and waits for it once. Returns
// the durability error, if any. On in-memory engines it just runs fn.
func (e *Engine) logGrantsBatched(fn func()) error {
	sink := &grantSink{}
	e.grantSink.Store(sink)
	fn()
	e.grantSink.Store(nil)
	sink.mu.Lock()
	recs := sink.recs
	sink.closed = true
	sink.mu.Unlock()
	if w := e.wal.Load(); w != nil && len(recs) > 0 {
		return w.commit(recs).wait()
	}
	return nil
}

// takeGrantWALErr returns and clears a parked privilege-logging error.
func (e *Engine) takeGrantWALErr() error {
	if p := e.grantWALErr.Swap(nil); p != nil {
		return *p
	}
	return nil
}

// DurabilityStats reports the persistence subsystem's counters. For an
// in-memory engine only Durable=false and Mode="memory" are meaningful.
type DurabilityStats struct {
	Durable      bool   // true when the engine is backed by a WAL directory
	Dir          string // WAL/snapshot directory
	Mode         string // sync mode: off, batch, always (or "memory")
	Commits      int64  // transactions appended to the WAL
	Records      int64  // individual redo records appended
	Fsyncs       int64  // fsync calls issued
	GroupFlushes int64  // group-commit batches flushed (batch mode)
	WALBytes     int64  // total bytes appended since open
	WALSize      int64  // bytes in the active segment
	Segment      uint64 // active segment number
	LSN          uint64 // last committed log sequence number
	Checkpoints  int64  // snapshots written since open
}

// Durability returns the engine's persistence counters.
func (e *Engine) Durability() DurabilityStats {
	w := e.wal.Load()
	if w == nil {
		return DurabilityStats{Mode: "memory"}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return DurabilityStats{
		Durable:      true,
		Dir:          e.dir,
		Mode:         w.mode.String(),
		Commits:      w.commits,
		Records:      w.records,
		Fsyncs:       w.fsyncs,
		GroupFlushes: w.groupFlushes,
		WALBytes:     w.bytes,
		WALSize:      w.size + int64(len(w.pending)),
		Segment:      w.seg,
		LSN:          w.lsn,
		Checkpoints:  w.checkpoints,
	}
}

// View is a named stored query. The AST is shared by every scanning
// session; execution never mutates statement trees (see Env.sess), so no
// copies are needed.
type View struct {
	Name  string
	Query *SelectStmt
}

// NewEngine creates an empty database. The special user "root" is always a
// superuser.
func NewEngine(name string) *Engine {
	e := &Engine{
		Name:   name,
		tables: map[string]*Table{},
		views:  map[string]*View{},
		plans:  newPlanCache(),
	}
	// Grants share the catalog version counter so privilege changes made
	// directly through Grants() (fixtures, toolkits) also invalidate plans.
	e.grants = newGrants(&e.catalogVersion)
	return e
}

// bumpCatalog invalidates every cached plan by advancing the version.
func (e *Engine) bumpCatalog() { e.catalogVersion.Add(1) }

// CatalogVersion returns the current catalog version counter.
func (e *Engine) CatalogVersion() uint64 { return e.catalogVersion.Load() }

// PlanCacheStats reports the engine's statement-cache counters: hits served
// without re-parsing/planning, and misses (cold or invalidated lookups).
func (e *Engine) PlanCacheStats() (hits, misses int64) { return e.plans.stats() }

// DMLRowsVisited returns the cumulative count of rows inspected while
// matching UPDATE/DELETE targets.
func (e *Engine) DMLRowsVisited() int64 { return e.dmlRowsVisited.Load() }

// ScanRowsVisited returns the cumulative count of base-table rows the
// SELECT path materialized (full table per seq scan, matching rows per
// index/range scan).
func (e *Engine) ScanRowsVisited() int64 { return e.scanRowsVisited.Load() }

// Grants exposes the privilege store for direct configuration.
func (e *Engine) Grants() *Grants { return e.grants }

// Table returns a table by case-insensitive name.
func (e *Engine) Table(name string) (*Table, bool) {
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// TableNames lists tables in creation order.
func (e *Engine) TableNames() []string {
	out := make([]string, 0, len(e.tableOrder))
	for _, lo := range e.tableOrder {
		out = append(out, e.tables[lo].Name)
	}
	return out
}

// ViewByName returns a view by case-insensitive name.
func (e *Engine) ViewByName(name string) (*View, bool) {
	v, ok := e.views[strings.ToLower(name)]
	return v, ok
}

// ViewNames lists views in creation order.
func (e *Engine) ViewNames() []string {
	out := make([]string, 0, len(e.viewOrder))
	for _, lo := range e.viewOrder {
		out = append(out, e.views[lo].Name)
	}
	return out
}

func (e *Engine) createView(v *View) error {
	lo := strings.ToLower(v.Name)
	if _, exists := e.tables[lo]; exists {
		return fmt.Errorf("table %q already exists", v.Name)
	}
	if _, exists := e.views[lo]; exists {
		return fmt.Errorf("view %q already exists", v.Name)
	}
	e.views[lo] = v
	e.viewOrder = append(e.viewOrder, lo)
	e.bumpCatalog()
	return nil
}

func (e *Engine) dropView(name string) (*View, error) {
	lo := strings.ToLower(name)
	v, ok := e.views[lo]
	if !ok {
		return nil, &NotFoundError{Kind: "view", Name: name}
	}
	delete(e.views, lo)
	for i, n := range e.viewOrder {
		if n == lo {
			e.viewOrder = append(e.viewOrder[:i], e.viewOrder[i+1:]...)
			break
		}
	}
	e.bumpCatalog()
	return v, nil
}

// createTable registers a table in the catalog and assigns its epoch. A
// table arriving with a non-zero epoch (snapshot load, WAL replay) keeps it;
// either way the counter stays ahead so later incarnations never reuse one.
func (e *Engine) createTable(t *Table) error {
	lo := strings.ToLower(t.Name)
	if _, exists := e.tables[lo]; exists {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if _, exists := e.views[lo]; exists {
		return fmt.Errorf("view %q already exists", t.Name)
	}
	if t.epoch == 0 {
		e.epochCounter++
		t.epoch = e.epochCounter
	} else if t.epoch > e.epochCounter {
		e.epochCounter = t.epoch
	}
	e.tables[lo] = t
	e.tableOrder = append(e.tableOrder, lo)
	e.bumpCatalog()
	return nil
}

// dropTable removes a table from the catalog and returns it (for undo).
func (e *Engine) dropTable(name string) (*Table, error) {
	lo := strings.ToLower(name)
	t, ok := e.tables[lo]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	// Refuse when another table references this one.
	for _, other := range e.tables {
		if strings.EqualFold(other.Name, name) {
			continue
		}
		for _, fk := range other.ForeignKeys {
			if strings.EqualFold(fk.ParentTable, name) {
				return nil, fmt.Errorf("cannot drop table %q: table %q references it", name, other.Name)
			}
		}
	}
	delete(e.tables, lo)
	for i, n := range e.tableOrder {
		if n == lo {
			e.tableOrder = append(e.tableOrder[:i], e.tableOrder[i+1:]...)
			break
		}
	}
	e.bumpCatalog()
	return t, nil
}

// childFKs lists (table, fk) pairs that reference parent.
func (e *Engine) childFKs(parent string) []childFK {
	var out []childFK
	for _, lo := range e.tableOrder {
		t := e.tables[lo]
		for i := range t.ForeignKeys {
			if strings.EqualFold(t.ForeignKeys[i].ParentTable, parent) {
				out = append(out, childFK{table: t, fk: &t.ForeignKeys[i]})
			}
		}
	}
	return out
}

type childFK struct {
	table *Table
	fk    *ForeignKey
}

// SchemaSQL renders a table's definition as LLM-readable CREATE TABLE text,
// matching the representation in the paper's Figure 3.
func SchemaSQL(t *Table) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (\n", t.Name)
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "  %s %s", c.Name, c.Type)
		if c.PrimaryKey && len(t.PrimaryKey) <= 1 {
			sb.WriteString(" PRIMARY KEY")
		}
		if c.NotNull && !c.PrimaryKey {
			sb.WriteString(" NOT NULL")
		}
		if c.Unique {
			sb.WriteString(" UNIQUE")
		}
		if c.Default != nil {
			sb.WriteString(" DEFAULT " + c.Default.String())
		}
		if i < len(t.Columns)-1 || len(t.PrimaryKey) > 1 || len(t.ForeignKeys) > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	if len(t.PrimaryKey) > 1 {
		fmt.Fprintf(&sb, "  PRIMARY KEY (%s)", strings.Join(t.PrimaryKey, ", "))
		if len(t.ForeignKeys) > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	for i, fk := range t.ForeignKeys {
		fmt.Fprintf(&sb, "  FOREIGN KEY (%s) REFERENCES %s(%s)",
			strings.Join(fk.Columns, ", "), fk.ParentTable, strings.Join(fk.ParentColumns, ", "))
		if i < len(t.ForeignKeys)-1 {
			sb.WriteString(",")
		}
		sb.WriteString("\n")
	}
	sb.WriteString(");")
	return sb.String()
}

// ColumnValues returns the distinct live values of a column, sorted by their
// canonical keys, capped at limit (0 = unlimited). Used by the get_value
// exemplar tool.
func (e *Engine) ColumnValues(table, column string, limit int) ([]Value, error) {
	t, ok := e.Table(table)
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", table)
	}
	ci := t.ColIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("column %q does not exist in table %q", column, table)
	}
	seen := map[string]Value{}
	_ = t.liveRows(func(r *rowEntry) error {
		v := r.vals[ci]
		if !v.IsNull() {
			seen[v.Key()] = v
		}
		return nil
	})
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}
