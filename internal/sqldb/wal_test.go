package sqldb

import (
	"bytes"
	"testing"
)

func TestWALRecordRoundTrip(t *testing.T) {
	recs := [][]byte{
		encodeInsertRec("Books", 3, 42, []Value{NewInt(-7), NewFloat(3.5), NewText("a|b\x00c"), NewBool(true), Null()}),
		encodeUpdateRec("books", 3, 42, []Value{NewInt(1), NewFloat(-0.25), NewText(""), NewBool(false), Null()}),
		encodeDeleteRec("books", 3, 42),
		encodeDDLRec("CREATE TABLE t (id INT PRIMARY KEY);", 1),
		encodeGrantRec(grantChange{Op: grantOpGrantCols, User: "bob", Action: ActionSelect,
			Object: "books", Columns: []string{"title", "price"}}),
		encodeGrantRec(grantChange{Op: grantOpSuper, User: "admin", Super: true}),
	}
	frame := encodeFrame(99, recs)
	payload, size, err := readFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(frame) {
		t.Fatalf("frame size %d != %d", size, len(frame))
	}
	lsn, decoded, err := decodeFramePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 99 {
		t.Fatalf("lsn %d != 99", lsn)
	}
	if len(decoded) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(decoded), len(recs))
	}
	ins := decoded[0]
	if ins.typ != recInsert || ins.table != "Books" || ins.epoch != 3 || ins.rowID != 42 {
		t.Fatalf("bad insert record: %+v", ins)
	}
	if ddl := decoded[3]; ddl.sql != "CREATE TABLE t (id INT PRIMARY KEY);" || ddl.epoch != 1 {
		t.Fatalf("bad DDL record: %+v", ddl)
	}
	if len(ins.vals) != 5 || ins.vals[0].I != -7 || ins.vals[1].F != 3.5 ||
		ins.vals[2].S != "a|b\x00c" || !ins.vals[3].B || !ins.vals[4].IsNull() {
		t.Fatalf("bad insert values: %+v", ins.vals)
	}
	gr := decoded[4]
	if gr.grant.Op != grantOpGrantCols || gr.grant.User != "bob" || gr.grant.Action != ActionSelect ||
		gr.grant.Object != "books" || len(gr.grant.Columns) != 2 {
		t.Fatalf("bad grant record: %+v", gr.grant)
	}
}

func TestReadFrameTornAndCorrupt(t *testing.T) {
	frame := encodeFrame(1, [][]byte{encodeDeleteRec("t", 1, 1)})

	// Every strict prefix is a torn frame.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := readFrame(frame[:cut]); err != errTornFrame {
			t.Fatalf("prefix of %d bytes: want errTornFrame, got %v", cut, err)
		}
	}
	// Any flipped payload byte fails the CRC.
	for i := frameHeaderSize; i < len(frame); i++ {
		bad := bytes.Clone(frame)
		bad[i] ^= 0x01
		if _, _, err := readFrame(bad); err != errBadCRC {
			t.Fatalf("flipped byte %d: want errBadCRC, got %v", i, err)
		}
	}
	// A zero-length frame is torn, not an infinite loop.
	if _, _, err := readFrame(make([]byte, frameHeaderSize)); err != errTornFrame {
		t.Fatalf("zero-length frame: want errTornFrame, got %v", err)
	}
}

func TestDecodeRecordsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{0xFF},                             // unknown record type
		{recInsert, 0x05, 'a', 'b'},        // string length past the end
		{recInsert, 0x01, 't', 0x80},       // unterminated varint row id
		{recUpdate, 0x01, 't', 0x02, 0xFF}, // row arity past the end
		{recGrant, 0x00, 0x01, 'u', 0x01},  // truncated grant
		{recDDL, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // huge length
	}
	for i, c := range cases {
		if _, err := decodeRecords(c); err == nil {
			t.Fatalf("case %d: corrupt record decoded without error", i)
		}
	}
}

// FuzzWALDecode drives the frame and record decoders with arbitrary bytes —
// the recovery path must reject corrupt or truncated input with an error,
// never a panic or runaway allocation.
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeFrame(1, [][]byte{
		encodeInsertRec("t", 1, 1, []Value{NewInt(1), NewText("x"), Null()}),
		encodeDDLRec("CREATE TABLE t (id INT PRIMARY KEY)", 1),
	}))
	f.Add(encodeFrame(2, [][]byte{
		encodeUpdateRec("t", 1, 1, []Value{NewFloat(2.5), NewBool(true)}),
		encodeDeleteRec("t", 1, 1),
		encodeGrantRec(grantChange{Op: grantOpGrant, User: "u", Action: ActionSelect, Object: "t"}),
	}))
	full := encodeFrame(3, [][]byte{encodeDeleteRec("t", 1, 9)})
	f.Add(full[:len(full)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			payload, size, err := readFrame(data[off:])
			if err != nil {
				return // torn or corrupt: replay stops here, cleanly
			}
			if _, _, err := decodeFramePayload(payload); err != nil {
				return
			}
			off += size
		}
	})
}
