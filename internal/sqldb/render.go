package sqldb

import (
	"fmt"
	"strings"
)

// RenderSelect prints a SelectStmt back as SQL. It is used for view DDL in
// schema output and round-trips through the parser.
func RenderSelect(st *SelectStmt) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if st.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range st.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.Table != "":
			sb.WriteString(it.Table + ".*")
		case it.Star:
			sb.WriteString("*")
		default:
			sb.WriteString(it.Expr.String())
			if it.Alias != "" {
				sb.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(st.From) > 0 {
		sb.WriteString(" FROM ")
		for i, ref := range st.From {
			if i > 0 {
				switch ref.JoinKind {
				case JoinInner:
					sb.WriteString(" JOIN ")
				case JoinLeft:
					sb.WriteString(" LEFT JOIN ")
				default:
					sb.WriteString(", ")
				}
			}
			sb.WriteString(ref.Table)
			if ref.Alias != "" {
				sb.WriteString(" " + ref.Alias)
			}
			if ref.On != nil {
				sb.WriteString(" ON " + ref.On.String())
			}
		}
	}
	if st.Where != nil {
		sb.WriteString(" WHERE " + st.Where.String())
	}
	if len(st.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range st.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if st.Having != nil {
		sb.WriteString(" HAVING " + st.Having.String())
	}
	if len(st.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, k := range st.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k.Expr.String())
			if k.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if st.Limit != nil {
		sb.WriteString(" LIMIT " + st.Limit.String())
	}
	if st.Offset != nil {
		sb.WriteString(" OFFSET " + st.Offset.String())
	}
	return sb.String()
}

// ViewSQL renders a view definition as DDL.
func ViewSQL(v *View) string {
	return fmt.Sprintf("CREATE VIEW %s AS %s;", v.Name, RenderSelect(v.Query))
}

// columnDefSQL renders a column definition in the dialect parseColumnDef
// accepts back — used to re-render ALTER TABLE ADD COLUMN for the WAL.
func columnDefSQL(cd *ColumnDef) string {
	var sb strings.Builder
	sb.WriteString(cd.Name)
	sb.WriteString(" ")
	sb.WriteString(cd.Type.String())
	if cd.PrimaryKey {
		sb.WriteString(" PRIMARY KEY")
	}
	if cd.NotNull {
		sb.WriteString(" NOT NULL")
	}
	if cd.Unique {
		sb.WriteString(" UNIQUE")
	}
	if cd.Default != nil {
		sb.WriteString(" DEFAULT " + cd.Default.String())
	}
	if cd.References != nil {
		sb.WriteString(" REFERENCES " + cd.References.ParentTable)
		if len(cd.References.ParentColumns) > 0 {
			sb.WriteString(" (" + strings.Join(cd.References.ParentColumns, ", ") + ")")
		}
	}
	return sb.String()
}
