package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

// writeEngine builds a table large enough for access-path gaps to be
// unambiguous: rows ids 0..n-1, grp = id%50, an index on grp, none on val.
func writeEngine(t testing.TB, n int) (*Engine, *Session) {
	t.Helper()
	e := NewEngine("write")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val REAL)`)
	s.MustExec(`CREATE INDEX idx_grp ON t (grp)`)
	batch := ""
	for i := 0; i < n; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d, %f)", i, i%50, float64(i))
		if (i+1)%500 == 0 || i == n-1 {
			s.MustExec("INSERT INTO t VALUES " + batch)
			batch = ""
		}
	}
	return e, s
}

// visited runs one statement and returns how many rows the write path
// inspected while matching its targets.
func visited(t *testing.T, e *Engine, s *Session, sql string) int64 {
	t.Helper()
	before := e.DMLRowsVisited()
	s.MustExec(sql)
	return e.DMLRowsVisited() - before
}

// TestUpdateByPKVisitsOneRow is the PR's acceptance criterion: on a
// 10k-row table a PK point UPDATE must visit >=10x fewer rows than the old
// full-scan path (it visits exactly one), and EXPLAIN must print the very
// Index Scan the executor used.
func TestUpdateByPKVisitsOneRow(t *testing.T) {
	const n = 10000
	e, s := writeEngine(t, n)

	r := s.MustExec("EXPLAIN UPDATE t SET val = -1 WHERE id = 5")
	text := r.Text()
	if !strings.Contains(text, "Update on t") ||
		!strings.Contains(text, "Index Scan on t using primary key (id = 5)") {
		t.Fatalf("EXPLAIN UPDATE must show the PK access path:\n%s", text)
	}

	got := visited(t, e, s, "UPDATE t SET val = -1 WHERE id = 5")
	if got != 1 {
		t.Fatalf("PK update visited %d rows, want 1", got)
	}
	if got*10 > n {
		t.Fatalf("acceptance: visited %d rows, need >=10x fewer than %d", got, n)
	}
	if r := s.MustExec("SELECT val FROM t WHERE id = 5"); r.Rows[0][0].F != -1 {
		t.Fatalf("update did not apply: %v", r.Rows[0][0])
	}
	// The row with the same value on the unindexed column is untouched.
	if r := s.MustExec("SELECT COUNT(*) FROM t WHERE val = -1"); r.Rows[0][0].I != 1 {
		t.Fatalf("update leaked beyond its PK target: %v", r.Rows[0][0])
	}
}

func TestDeleteIndexedVisitsBucketOnly(t *testing.T) {
	const n = 5000
	e, s := writeEngine(t, n)

	r := s.MustExec("EXPLAIN DELETE FROM t WHERE grp = 7")
	if !strings.Contains(r.Text(), "Delete on t") ||
		!strings.Contains(r.Text(), "Index Scan on t using index idx_grp (grp = 7)") {
		t.Fatalf("EXPLAIN DELETE must show the index access path:\n%s", r.Text())
	}

	bucket := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7").Rows[0][0].I
	got := visited(t, e, s, "DELETE FROM t WHERE grp = 7")
	if got != bucket {
		t.Fatalf("indexed delete visited %d rows, want the %d-row bucket", got, bucket)
	}
	if left := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7").Rows[0][0].I; left != 0 {
		t.Fatalf("%d rows survived the delete", left)
	}
	if total := s.MustExec("SELECT COUNT(*) FROM t").Rows[0][0].I; total != int64(n)-bucket {
		t.Fatalf("total = %d, want %d", total, int64(n)-bucket)
	}
}

// A predicate with no usable equality falls back to the full scan — and
// EXPLAIN says so instead of advertising an index.
func TestWritePlanFallbackToSeqScan(t *testing.T) {
	const n = 2000
	e, s := writeEngine(t, n)

	for _, sql := range []string{
		"UPDATE t SET val = 0 WHERE val < 10",         // unindexed column
		"UPDATE t SET val = 1 WHERE id = 1 OR id = 2", // OR defeats indexableEq
	} {
		r := s.MustExec("EXPLAIN " + sql)
		if !strings.Contains(r.Text(), "Seq Scan on t") || strings.Contains(r.Text(), "Index Scan") {
			t.Fatalf("EXPLAIN %s must show a seq scan:\n%s", sql, r.Text())
		}
	}

	// A range on the indexed column is served by the index's ordered face
	// (it used to fall back to a seq scan when indexes were hash-only).
	r := s.MustExec("EXPLAIN DELETE FROM t WHERE grp > 48")
	if !strings.Contains(r.Text(), "Index Range Scan on t using index idx_grp (grp > 48)") {
		t.Fatalf("EXPLAIN range DELETE must show the range scan:\n%s", r.Text())
	}

	// The fallback visits every live row.
	total := s.MustExec("SELECT COUNT(*) FROM t").Rows[0][0].I
	if got := visited(t, e, s, "UPDATE t SET val = val WHERE val < -1"); got != total {
		t.Fatalf("seq-scan update visited %d rows, want %d", got, total)
	}

	// An unbounded-above PK range DELETE still visits every live row — the
	// range path reduces nothing when the range covers the table.
	if got := visited(t, e, s, "DELETE FROM t WHERE id >= 0"); got != total {
		t.Fatalf("range delete visited %d rows, want %d", got, total)
	}
}

// The executed access path IS the explained plan: Plan() hands back the
// WritePlan whose Access node the executor fetches rows through.
func TestWritePlanExplainMatchesExecution(t *testing.T) {
	_, s := writeEngine(t, 1000)

	p := mustPlan(t, s, "UPDATE t SET val = 0 WHERE id = 5")
	wp := p.Write()
	if wp == nil {
		t.Fatal("UPDATE plan must carry a WritePlan")
	}
	ix, ok := wp.Access.(*IndexScanNode)
	if !ok {
		t.Fatalf("access node is %T, want *IndexScanNode", wp.Access)
	}
	if !strings.Contains(p.Explain(), ix.Label()) {
		t.Fatalf("explain text does not render the executable access node:\n%s", p.Explain())
	}

	p = mustPlan(t, s, "DELETE FROM t WHERE val = 3")
	if _, ok := p.Write().Access.(*SeqScanNode); !ok {
		t.Fatalf("unindexed DELETE access node is %T, want *SeqScanNode", p.Write().Access)
	}
}

// Rolling back planner-driven writes must restore the PK map and secondary
// indexes, not just row values: follow-up statements use those structures.
func TestWriteRollbackRestoresIndexes(t *testing.T) {
	_, s := writeEngine(t, 500)

	s.MustExec("BEGIN")
	s.MustExec("UPDATE t SET grp = 99 WHERE grp = 7") // re-keys idx_grp entries
	s.MustExec("DELETE FROM t WHERE id = 123")        // removes a PK entry
	s.MustExec("UPDATE t SET id = 9000 WHERE id = 200")
	if n := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7").Rows[0][0].I; n != 0 {
		t.Fatalf("pre-rollback: %d rows left in grp 7", n)
	}
	s.MustExec("ROLLBACK")

	// Index path: the grp bucket is whole again.
	if n := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7").Rows[0][0].I; n != 10 {
		t.Fatalf("after rollback: grp 7 has %d rows, want 10", n)
	}
	// PK path: both the deleted and the re-keyed row answer to their old ids.
	if r := s.MustExec("SELECT grp FROM t WHERE id = 123"); len(r.Rows) != 1 {
		t.Fatal("deleted row not resurrected under its PK")
	}
	if r := s.MustExec("SELECT grp FROM t WHERE id = 200"); len(r.Rows) != 1 {
		t.Fatal("re-keyed row not restored under its old PK")
	}
	if r := s.MustExec("SELECT id FROM t WHERE id = 9000"); len(r.Rows) != 0 {
		t.Fatal("rolled-back key still present in the PK map")
	}

	// And a planner-driven write straight after rollback behaves: it must
	// see the restored index, not stale entries.
	if r := s.MustExec("UPDATE t SET val = -5 WHERE grp = 7"); r.Affected != 10 {
		t.Fatalf("post-rollback indexed update hit %d rows, want 10", r.Affected)
	}
}

// Composite text PKs (and GROUP BY/DISTINCT keys) must not collide when the
// payload contains the old separator bytes. ("a", "b|\x03c") and
// ("a|\x03b", "c") concatenate identically without length prefixes.
func TestCompositeKeySeparatorInjection(t *testing.T) {
	e := NewEngine("composite")
	s := e.NewSession("root")
	s.MustExec("CREATE TABLE pairs (a TEXT, b TEXT, n INT, PRIMARY KEY (a, b))")

	lit := func(raw string) string { return "'" + strings.ReplaceAll(raw, "'", "''") + "'" }
	a1, b1 := "a", "b|\x03c"
	a2, b2 := "a|\x03b", "c"
	s.MustExec(fmt.Sprintf("INSERT INTO pairs VALUES (%s, %s, 1)", lit(a1), lit(b1)))
	// Before the fix this collided with the first row and was rejected as a
	// duplicate primary key.
	s.MustExec(fmt.Sprintf("INSERT INTO pairs VALUES (%s, %s, 2)", lit(a2), lit(b2)))
	if n := s.MustExec("SELECT COUNT(*) FROM pairs").Rows[0][0].I; n != 2 {
		t.Fatalf("distinct composite keys stored %d rows, want 2", n)
	}
	// A true duplicate is still rejected.
	if _, err := s.Exec(fmt.Sprintf("INSERT INTO pairs VALUES (%s, %s, 3)", lit(a1), lit(b1))); err == nil {
		t.Fatal("duplicate composite PK must be rejected")
	}

	// GROUP BY over the same payloads keeps the two groups apart.
	r := s.MustExec("SELECT a, b, COUNT(*) FROM pairs GROUP BY a, b")
	if len(r.Rows) != 2 {
		t.Fatalf("GROUP BY collapsed colliding keys: %d groups, want 2", len(r.Rows))
	}
	// DISTINCT over multi-column rows likewise.
	r = s.MustExec("SELECT DISTINCT a, b FROM pairs")
	if len(r.Rows) != 2 {
		t.Fatalf("DISTINCT collapsed colliding rows: %d, want 2", len(r.Rows))
	}

	// The FK fast path hashes child values with the same segmented format:
	// a child key that matches a parent only by concatenation must be
	// rejected. The parent table holds only ("a", "b|\x03c"); the child
	// values ("a|\x03b", "c") concatenate to the same bytes without length
	// prefixes.
	s.MustExec("CREATE TABLE parent (a TEXT, b TEXT, PRIMARY KEY (a, b))")
	s.MustExec(fmt.Sprintf("INSERT INTO parent VALUES (%s, %s)", lit(a1), lit(b1)))
	s.MustExec("CREATE TABLE child (a TEXT, b TEXT, FOREIGN KEY (a, b) REFERENCES parent(a, b))")
	s.MustExec(fmt.Sprintf("INSERT INTO child VALUES (%s, %s)", lit(a1), lit(b1)))
	if _, err := s.Exec(fmt.Sprintf("INSERT INTO child VALUES (%s, %s)", lit(a2), lit(b2))); err == nil {
		t.Fatal("FK check accepted a child key that only matches a parent by concatenation")
	}
}
