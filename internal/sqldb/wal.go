package sqldb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"bridgescope/internal/sqldb/vfs"
)

// SyncMode controls when a commit is made durable on disk.
type SyncMode int

const (
	// SyncBatch is group commit: concurrent committers append their redo
	// records to an in-memory batch and a background flusher makes the whole
	// group durable with a single fsync. Every committer still waits for its
	// group's fsync before the statement returns, so acknowledged commits
	// survive a crash — the batching only amortizes the fsync cost.
	SyncBatch SyncMode = iota
	// SyncAlways fsyncs every commit individually before acknowledging it.
	SyncAlways
	// SyncOff writes commits to the OS page cache but never fsyncs; a crash
	// may lose the tail of acknowledged commits (but never corrupts the log).
	SyncOff
)

// String returns the knob spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSyncMode converts a knob spelling ("off", "batch", "always") to a
// SyncMode.
func ParseSyncMode(s string) (SyncMode, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "batch", "group":
		return SyncBatch, true
	case "always", "fsync":
		return SyncAlways, true
	case "off", "none":
		return SyncOff, true
	}
	return SyncBatch, false
}

// WAL record types. A committed transaction is one CRC-framed frame whose
// payload is a commit-timestamp record followed by redo records in
// execution order.
//
// Row records carry the table's epoch — a counter assigned when the table
// was created — beside its name. A transaction can commit DML sequenced
// after another session's committed DROP + re-CREATE of the same name, and
// with the name alone replay would apply its records to the new table (the
// heap never did: those rows died with the old one). The epoch pins each
// record to the exact table incarnation it mutated. DDL records carry the
// epoch the created table was assigned (0 for non-CREATE DDL) so replay
// reconstructs the same incarnation numbering.
//
// The commit record carries the transaction's MVCC commit timestamp:
// replay stamps the frame's row versions with it, reconstructing the same
// visibility order the live engine had, and the commit clock resumes past
// the highest replayed timestamp.
const (
	recInsert byte = 1 // table, epoch, row id, row image
	recDelete byte = 2 // table, epoch, row id
	recUpdate byte = 3 // table, epoch, row id, new row image
	recDDL    byte = 4 // SQL text + created-table epoch, replayed through the parser/executor
	recGrant  byte = 5 // privilege-store mutation (also covers direct API use)
	recCommit byte = 6 // MVCC commit timestamp of the frame's transaction
)

// grantOp identifies a privilege-store mutation in a recGrant record.
type grantOp byte

const (
	grantOpGrant grantOp = iota
	grantOpRevoke
	grantOpGrantCols
	grantOpSuper
)

// grantChange is one privilege-store mutation, as logged to the WAL and
// dumped into snapshots. It is self-contained (no SQL) because grants can be
// mutated directly through Engine.Grants() without any statement text.
type grantChange struct {
	Op      grantOp
	User    string
	Action  Action
	Object  string
	Columns []string
	Super   bool
}

// walRec is the decoded form of one WAL record.
type walRec struct {
	typ      byte
	table    string
	epoch    uint64
	rowID    int64
	vals     []Value
	sql      string
	grant    grantChange
	commitTS uint64 // recCommit
}

// --- binary encoding ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case KindInt:
		b = binary.AppendVarint(b, v.I)
	case KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case KindText:
		b = appendString(b, v.S)
	case KindBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func appendRow(b []byte, vals []Value) []byte {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	for _, v := range vals {
		b = appendValue(b, v)
	}
	return b
}

func encodeInsertRec(table string, epoch uint64, id int64, vals []Value) []byte {
	b := []byte{recInsert}
	b = appendString(b, table)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendVarint(b, id)
	return appendRow(b, vals)
}

func encodeDeleteRec(table string, epoch uint64, id int64) []byte {
	b := []byte{recDelete}
	b = appendString(b, table)
	b = binary.AppendUvarint(b, epoch)
	return binary.AppendVarint(b, id)
}

func encodeUpdateRec(table string, epoch uint64, id int64, vals []Value) []byte {
	b := []byte{recUpdate}
	b = appendString(b, table)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendVarint(b, id)
	return appendRow(b, vals)
}

func encodeDDLRec(sql string, epoch uint64) []byte {
	b := appendString([]byte{recDDL}, sql)
	return binary.AppendUvarint(b, epoch)
}

func encodeCommitRec(ts uint64) []byte {
	return binary.AppendUvarint([]byte{recCommit}, ts)
}

func encodeGrantRec(ch grantChange) []byte {
	b := []byte{recGrant, byte(ch.Op)}
	b = appendString(b, ch.User)
	b = append(b, byte(ch.Action))
	b = appendString(b, ch.Object)
	b = binary.AppendUvarint(b, uint64(len(ch.Columns)))
	for _, c := range ch.Columns {
		b = appendString(b, c)
	}
	if ch.Super {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

// walReader is a bounds-checked cursor over encoded WAL/snapshot bytes.
// Every accessor degrades to a sticky error on malformed input — decoding
// corrupt or truncated frames must error, never panic (fuzzed).
type walReader struct {
	b   []byte
	err error
}

func (r *walReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *walReader) empty() bool { return len(r.b) == 0 || r.err != nil }

func (r *walReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("unexpected end of record")
		return 0
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c
}

func (r *walReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *walReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *walReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail("string length %d exceeds %d remaining bytes", n, len(r.b))
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *walReader) value() Value {
	kind := Kind(r.byte())
	switch kind {
	case KindNull:
		return Null()
	case KindInt:
		return NewInt(r.varint())
	case KindFloat:
		if r.err != nil {
			return Value{}
		}
		if len(r.b) < 8 {
			r.fail("truncated float value")
			return Value{}
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
		r.b = r.b[8:]
		return NewFloat(f)
	case KindText:
		return NewText(r.str())
	case KindBool:
		return NewBool(r.byte() != 0)
	}
	r.fail("unknown value kind %d", kind)
	return Value{}
}

func (r *walReader) row() []Value {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Each value costs at least one byte, so n > len(b) is corruption — the
	// bound also caps the allocation below.
	if n > uint64(len(r.b)) {
		r.fail("row arity %d exceeds %d remaining bytes", n, len(r.b))
		return nil
	}
	vals := make([]Value, 0, n)
	for i := uint64(0); i < n; i++ {
		vals = append(vals, r.value())
		if r.err != nil {
			return nil
		}
	}
	return vals
}

// decodeGrantChange decodes the body of an encodeGrantRec record (the bytes
// after the recGrant type byte). WAL replay and snapshot loading share it,
// so every site that must mirror encodeGrantRec field-for-field is here.
func decodeGrantChange(r *walReader) grantChange {
	ch := grantChange{Op: grantOp(r.byte()), User: r.str(), Action: Action(r.byte()), Object: r.str()}
	n := r.uvarint()
	if n > uint64(len(r.b)) {
		r.fail("grant column count %d exceeds %d remaining bytes", n, len(r.b))
		return ch
	}
	for i := uint64(0); i < n; i++ {
		ch.Columns = append(ch.Columns, r.str())
	}
	ch.Super = r.byte() != 0
	return ch
}

// decodeRecords parses a frame payload (after the LSN) into records.
func decodeRecords(b []byte) ([]walRec, error) {
	r := &walReader{b: b}
	var out []walRec
	for !r.empty() {
		rec := walRec{typ: r.byte()}
		switch rec.typ {
		case recInsert, recUpdate:
			rec.table = r.str()
			rec.epoch = r.uvarint()
			rec.rowID = r.varint()
			rec.vals = r.row()
		case recDelete:
			rec.table = r.str()
			rec.epoch = r.uvarint()
			rec.rowID = r.varint()
		case recDDL:
			rec.sql = r.str()
			rec.epoch = r.uvarint()
		case recGrant:
			rec.grant = decodeGrantChange(r)
		case recCommit:
			rec.commitTS = r.uvarint()
		default:
			r.fail("unknown record type %d", rec.typ)
		}
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, rec)
	}
	return out, r.err
}

// --- frame layer ---

// A frame is one committed transaction on disk:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload = uvarint LSN | records...
//
// Replay accepts the longest prefix of valid frames; a short or CRC-failing
// frame is a torn tail from a crash mid-write and everything from it on is
// discarded.
const frameHeaderSize = 8

var (
	errTornFrame = errors.New("wal: torn frame")
	errBadCRC    = errors.New("wal: frame CRC mismatch")
)

func encodeFrame(lsn uint64, recs [][]byte) []byte {
	payload := binary.AppendUvarint(nil, lsn)
	for _, r := range recs {
		payload = append(payload, r...)
	}
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// readFrame parses the frame at the head of b, returning its payload and
// total on-disk size. errTornFrame means b ends mid-frame; errBadCRC means
// the frame is complete but corrupt. Both stop replay at this offset.
func readFrame(b []byte) (payload []byte, size int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, errTornFrame
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n < 1 || n > len(b)-frameHeaderSize {
		return nil, 0, errTornFrame
	}
	payload = b[frameHeaderSize : frameHeaderSize+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, errBadCRC
	}
	return payload, frameHeaderSize + n, nil
}

// decodeFramePayload splits a frame payload into its LSN and records.
func decodeFramePayload(payload []byte) (lsn uint64, recs []walRec, err error) {
	r := &walReader{b: payload}
	lsn = r.uvarint()
	if r.err != nil {
		return 0, nil, r.err
	}
	recs, err = decodeRecords(r.b)
	return lsn, recs, err
}

// --- the log writer ---

// flushGroup is one group-commit generation: every committer whose frame is
// in the batch waits on done and shares err.
type flushGroup struct {
	done chan struct{}
	err  error
}

// syncToken is a committer's claim on durability: wait blocks until the
// commit's frame is on disk (per the sync mode) and reports the I/O error if
// the flush failed. A nil token (in-memory engine, read-only statement)
// waits for nothing.
//
// In batch mode a background flusher drives the group to disk and wait just
// blocks on it. In always/off mode there is no flusher: the first waiter
// whose group is still open performs the flush itself (flushFor), so the
// write+fsync happens on wait — after the committer has released its engine
// locks — rather than inside commit under them.
type syncToken struct {
	w   *wal
	g   *flushGroup
	err error
	// next chains a second durability claim onto this one (joinTokens): a
	// statement that produced more than one WAL frame waits for all of them.
	next *syncToken
}

func (t *syncToken) wait() error {
	if t == nil {
		return nil
	}
	err := t.err
	if t.g != nil {
		if t.w != nil {
			t.w.flushFor(t.g)
		}
		<-t.g.done
		err = t.g.err
	}
	if nerr := t.next.wait(); err == nil {
		err = nerr
	}
	return err
}

// joinTokens combines two durability claims into one token whose wait
// covers both. Either side may be nil.
func joinTokens(a, b *syncToken) *syncToken {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	t := a
	for t.next != nil {
		t = t.next
	}
	t.next = b
	return a
}

// wal is the append-only redo log. Appends happen under mu (cheap memory
// work); file writes and fsyncs happen under ioMu so group formation
// overlaps the previous group's fsync — that overlap is the whole point of
// group commit.
type wal struct {
	fs   vfs.FS
	dir  string
	mode SyncMode

	// onFail, when set, is notified once with the first I/O error — the
	// engine uses it to enter degraded mode the moment the WAL goes
	// fail-stop, instead of waiting for the next commit to trip over it. It
	// is called without any wal mutex held.
	onFail func(error)

	// mu guards pending, cur, lsn, seg/size bookkeeping, closed, failed,
	// and the counters.
	mu      sync.Mutex
	pending []byte
	cur     *flushGroup
	lsn     uint64
	seg     uint64
	size    int64
	closed  bool
	// failed is the first write/fsync error; once set the WAL is fail-stop.
	// A failed write may have left a torn frame mid-log, and recovery
	// truncates everything from the first torn frame on — so acknowledging
	// any later commit would be a silent durability lie.
	failed error

	// flushMu serializes whole flush cycles (grab pending → write → fsync)
	// with rotation. Without it, a checkpoint's rotate() could slip between
	// the flusher grabbing a batch and writing it, landing pre-checkpoint
	// frames in the post-checkpoint segment — which recovery would then
	// misread as a torn tail and truncate away, dropping acknowledged
	// commits. Committers never take it, so enqueueing still overlaps an
	// in-flight fsync.
	flushMu sync.Mutex

	// ioMu serializes writes, fsyncs, rotation, and close on f.
	ioMu sync.Mutex
	f    vfs.File

	flushC chan struct{}
	quit   chan struct{}
	done   chan struct{}

	// counters, under mu
	commits      int64
	records      int64
	fsyncs       int64
	groupFlushes int64
	bytes        int64
	checkpoints  int64
	// pendingCommits counts the commits enqueued in the current group; a
	// flush grabs and resets it with the buffer, feeding the group-commit
	// batch-size histogram.
	pendingCommits int64

	// metrics, when set (engine-owned WALs), receives append/fsync latency
	// and batch-size observations. Recording happens outside ioMu — the
	// sqlvet lockorder analyzer forbids stats calls inside the I/O critical
	// section.
	metrics *engineMetrics
}

func segPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seg))
}

func snapPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", seg))
}

// listNumbered returns the sorted sequence numbers of files matching
// prefix-%08d.suffix in dir.
func listNumbered(fsys vfs.FS, dir, prefix, suffix string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, name := range entries {
		if !strings.HasPrefix(name, prefix+"-") || !strings.HasSuffix(name, suffix) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix+"-"), suffix)
		var seg uint64
		if _, err := fmt.Sscanf(mid, "%d", &seg); err != nil {
			continue
		}
		out = append(out, seg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// newWAL opens (or creates) segment seg for appending. Recovery has already
// truncated any torn tail, so O_APPEND continues exactly after the last
// valid frame.
func newWAL(fsys vfs.FS, dir string, mode SyncMode, seg, lsn uint64, onFail func(error)) (*wal, error) {
	f, err := fsys.OpenFile(segPath(dir, seg), vfs.O_CREATE|vfs.O_WRONLY|vfs.O_APPEND)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{
		fs:     fsys,
		dir:    dir,
		mode:   mode,
		onFail: onFail,
		lsn:    lsn,
		seg:    seg,
		size:   size,
		f:      f,
	}
	w.cur = &flushGroup{done: make(chan struct{})}
	if mode == SyncBatch {
		w.flushC = make(chan struct{}, 1)
		w.quit = make(chan struct{})
		w.done = make(chan struct{})
		go w.flusher()
	}
	return w, nil
}

var errWALClosed = errors.New("wal: closed")

// commit appends one transaction's records as a frame and returns the token
// the committer must wait on before acknowledging. The frame only joins the
// in-memory group here — commit never touches the file, so it is safe (and
// cheap) to call while holding engine locks; the I/O happens when someone
// waits on the token. In batch mode the background flusher owns the file;
// otherwise the first waiter flushes the group itself. After close (a caller
// that loaded the wal pointer just before Close swapped it out) the token
// resolves immediately with an error instead of hanging on a flusher that
// has exited.
func (w *wal) commit(recs [][]byte) *syncToken {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return &syncToken{err: errWALClosed}
	}
	if w.failed != nil {
		err := fmt.Errorf("wal: refusing commit after earlier I/O error: %w", w.failed)
		w.mu.Unlock()
		return &syncToken{err: err}
	}
	w.lsn++
	frame := encodeFrame(w.lsn, recs)
	w.commits++
	w.pendingCommits++
	w.records += int64(len(recs))
	w.pending = append(w.pending, frame...)
	g := w.cur
	w.mu.Unlock()
	if w.mode == SyncBatch {
		select {
		case w.flushC <- struct{}{}:
		default: // a wakeup is already queued; the flusher will see our bytes
		}
		return &syncToken{g: g}
	}
	return &syncToken{w: w, g: g}
}

// flushFor drives group g to disk if no one has yet. Concurrent waiters on
// the same group serialize on flushMu; whoever gets it first flushes for
// everyone, and the rest see done already closed. This gives always-mode
// commits group durability for free: committers that enqueue while another
// waiter's fsync is in flight share the next flush.
func (w *wal) flushFor(g *flushGroup) {
	select {
	case <-g.done:
		return
	default:
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	select {
	case <-g.done:
		return
	default:
	}
	w.flushPendingLocked(false)
}

func (w *wal) flusher() {
	defer close(w.done)
	for {
		select {
		case <-w.flushC:
			w.flushBatch()
		case <-w.quit:
			w.flushBatch()
			return
		}
	}
}

// flushBatch writes and fsyncs the current group, then opens the next one.
// Committers appending while the fsync is in flight land in the next group.
func (w *wal) flushBatch() {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.flushPendingLocked(true)
}

// flushPendingLocked is one flush cycle; the caller holds flushMu.
func (w *wal) flushPendingLocked(accumulate bool) {
	if accumulate {
		// Accumulation phase: yield while concurrent committers are still
		// joining the group, and flush once it stops growing (bounded). This
		// is what buys the ≥5x over fsync-per-commit even on one core, where
		// the fsync syscall doesn't overlap with committer execution.
		prev := -1
		for i := 0; i < 100; i++ {
			w.mu.Lock()
			n := len(w.pending)
			w.mu.Unlock()
			if n == prev {
				break
			}
			prev = n
			runtime.Gosched()
		}
	}
	w.mu.Lock()
	if len(w.pending) == 0 {
		w.mu.Unlock()
		return
	}
	buf := w.pending
	w.pending = nil
	nCommits := w.pendingCommits
	w.pendingCommits = 0
	g := w.cur
	w.cur = &flushGroup{done: make(chan struct{})}
	if w.failed != nil {
		// Frames enqueued before the I/O error must not be written after a
		// possibly-torn frame: recovery truncates from the tear, so these
		// commits cannot be honestly acknowledged. Fail the whole group.
		err := fmt.Errorf("wal: refusing flush after earlier I/O error: %w", w.failed)
		w.mu.Unlock()
		g.err = err
		close(g.done)
		return
	}
	w.mu.Unlock()

	var appendDur, fsyncDur time.Duration
	w.ioMu.Lock()
	start := time.Now()
	_, err := w.f.Write(buf)
	appendDur = time.Since(start)
	if err == nil && w.mode != SyncOff {
		start = time.Now()
		err = w.f.Sync()
		fsyncDur = time.Since(start)
	}
	w.ioMu.Unlock()
	// Observations happen after ioMu is released so metric recording can
	// never extend the I/O critical section (lockorder rule L4).
	if m := w.metrics; m != nil {
		m.walAppend.Observe(appendDur)
		if fsyncDur > 0 {
			m.walFsync.Observe(fsyncDur)
		}
		m.walBatch.ObserveValue(nCommits)
	}

	w.mu.Lock() //sqlvet:ignore lockbalance -- the error branch hands mu to failStop, which releases it
	w.size += int64(len(buf))
	w.bytes += int64(len(buf))
	w.groupFlushes++
	if err == nil {
		if w.mode != SyncOff {
			w.fsyncs++
		}
		w.mu.Unlock()
	} else {
		w.failStop(err)
	}

	g.err = err
	close(g.done)
}

// failStop records the WAL's first I/O error and notifies the engine. The
// caller holds mu; failStop releases it (onFail must run without wal locks —
// it takes engine state).
func (w *wal) failStop(err error) {
	first := w.failed == nil
	if first {
		w.failed = err
	}
	w.mu.Unlock()
	if first && w.onFail != nil {
		w.onFail(err)
	}
}

// rotate completes the current segment and starts a new one, returning the
// new segment number. The caller (checkpoint) holds the all-tables write
// lock, so no row commit can race the swap; flushMu is held for the whole
// rotation so an in-flight group flush finishes into the old segment first,
// and anything still pending is written out before the file swap.
func (w *wal) rotate() (uint64, error) {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.flushPendingLocked(false)
	w.mu.Lock()
	if werr := w.failed; werr != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: refusing rotation after earlier I/O error: %w", werr)
	}
	w.mu.Unlock()
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if w.mode != SyncOff {
		if err := w.f.Sync(); err != nil {
			// The retiring segment's tail may not be durable, and the snapshot
			// about to be written assumes it is — fail-stop rather than let a
			// checkpoint retire segments whose contents never reached disk.
			w.mu.Lock() //sqlvet:ignore lockbalance -- failStop releases mu
			w.failStop(err)
			return 0, err
		}
	}
	if err := w.f.Close(); err != nil {
		w.mu.Lock() //sqlvet:ignore lockbalance -- failStop releases mu
		w.failStop(err)
		return 0, err
	}
	w.mu.Lock()
	w.seg++
	seg := w.seg
	w.mu.Unlock()
	f, err := w.fs.OpenFile(segPath(w.dir, seg), vfs.O_CREATE|vfs.O_WRONLY|vfs.O_APPEND)
	if err != nil {
		// The old segment is closed and no new one exists: nothing can be
		// appended anymore, so the WAL is fail-stop from here.
		w.mu.Lock() //sqlvet:ignore lockbalance -- failStop releases mu
		w.failStop(err)
		return 0, err
	}
	w.f = f
	w.mu.Lock()
	w.size = 0
	w.mu.Unlock()
	return seg, nil
}

// retire deletes WAL segments and snapshots superseded by the snapshot that
// covers everything before segment keep.
func (w *wal) retire(keep uint64) {
	if segs, err := listNumbered(w.fs, w.dir, "wal", ".log"); err == nil {
		for _, s := range segs {
			if s < keep {
				_ = w.fs.Remove(segPath(w.dir, s))
			}
		}
	}
	if snaps, err := listNumbered(w.fs, w.dir, "snap", ".snap"); err == nil {
		for _, s := range snaps {
			if s < keep {
				_ = w.fs.Remove(snapPath(w.dir, s))
			}
		}
	}
}

// close refuses new commits, drains the flusher (batch mode), makes the
// tail durable, and closes the segment file.
func (w *wal) close() error {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	if w.mode == SyncBatch {
		close(w.quit)
		<-w.done
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	// Frames enqueued but not yet flushed (always/off mode tokens no one has
	// waited on yet) must still reach the file before it closes.
	w.flushPendingLocked(false)
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	var err error
	if w.mode == SyncOff {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// currentSize reports the active segment's size (checkpoint trigger).
func (w *wal) currentSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size + int64(len(w.pending))
}

func (w *wal) currentLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lsn
}
