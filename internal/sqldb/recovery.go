package sqldb

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"bridgescope/internal/sqldb/vfs"
)

// Options configures a persistent engine opened with OpenEngine.
type Options struct {
	// Name is the engine (database) name; defaults to the directory's base
	// name.
	Name string
	// Sync is the commit durability knob; the zero value is SyncBatch
	// (group commit).
	Sync SyncMode
	// CheckpointEvery is how often the background checkpointer wakes up to
	// check the WAL size. 0 means the 1s default; negative disables the
	// background checkpointer (Checkpoint can still be called manually, and
	// Close always checkpoints).
	CheckpointEvery time.Duration
	// CheckpointBytes is the WAL-size threshold that triggers a background
	// checkpoint. 0 means the 4 MiB default.
	CheckpointBytes int64
	// FS is the filesystem the durability stack runs on. Nil means the real
	// OS; tests inject a vfs.FaultFS to simulate I/O errors and crashes.
	FS vfs.FS
}

const (
	defaultCheckpointEvery = time.Second
	defaultCheckpointBytes = 4 << 20
)

// OpenEngine opens (or creates) a persistent database rooted at dir:
// acquire the directory lock, load the newest valid snapshot, replay the WAL
// tail (truncating any torn frame from a crash mid-write), and start the
// group-commit flusher and background checkpointer. Engines created with
// NewEngine remain purely in-memory; nothing in the write path changes for
// them.
func OpenEngine(dir string, opts Options) (*Engine, error) {
	if dir == "" {
		return nil, fmt.Errorf("sqldb: OpenEngine requires a directory (use NewEngine for in-memory)")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("sqldb: %w", err)
	}
	lock, err := acquireDirLock(fsys, dir)
	if err != nil {
		return nil, err
	}
	// A crash between CreateTemp and the rename orphans a snap-*.tmp that
	// nothing else deletes (retire only matches committed names). The dir
	// lock guarantees no writer is mid-checkpoint, so sweep them here.
	if names, err := fsys.ReadDir(dir); err == nil {
		for _, n := range names {
			if strings.HasPrefix(n, "snap-") && strings.HasSuffix(n, ".tmp") {
				_ = fsys.Remove(filepath.Join(dir, n))
			}
		}
	}
	name := opts.Name
	if name == "" {
		name = filepath.Base(dir)
	}

	e, seg, lsn, err := recoverEngine(fsys, dir, name)
	if err != nil {
		releaseDirLock(lock)
		return nil, err
	}

	// A WAL write/fsync failure means acknowledged durability can no longer
	// be promised; park the engine in read-only degraded mode on the spot.
	w, err := newWAL(fsys, dir, opts.Sync, seg, lsn, func(werr error) {
		e.degrade("wal", werr)
	})
	if err != nil {
		releaseDirLock(lock)
		return nil, fmt.Errorf("sqldb: opening WAL: %w", err)
	}
	w.metrics = &e.metrics
	e.fs = fsys
	e.dir = dir
	e.lockFile = lock
	e.wal.Store(w)
	// Recovered state counts as checkpointed when there was no WAL tail to
	// fold in: a session that changes nothing then closes cleanly skips the
	// final checkpoint instead of rewriting an identical snapshot.
	e.lastCkptLSN = lsn
	e.lastCkptVersion = e.catalogVersion.Load()
	if lsn > 0 {
		// A replayed WAL tail must be folded into a snapshot at the next
		// checkpoint; poison the marker so it never matches.
		e.lastCkptLSN = 0
		e.lastCkptVersion = ^uint64(0)
	}
	// Log privilege mutations made through any path — GRANT/REVOKE SQL and
	// direct Grants() API calls both funnel through the store's mutators.
	// SQL statements collect their records in a per-statement sink and
	// commit them as one frame (Engine.logGrantsBatched). Direct API calls
	// commit-and-wait inline — grants are rare control-plane changes and
	// there is no statement scope to defer the wait to; a failed append is
	// parked on the engine and surfaced by the next GRANT/REVOKE statement.
	e.grants.logger.Store(&grantLogger{fn: func(ch grantChange) {
		rec := encodeGrantRec(ch)
		if sink := e.grantSink.Load(); sink != nil {
			sink.mu.Lock()
			if !sink.closed {
				sink.recs = append(sink.recs, rec)
				sink.mu.Unlock()
				return
			}
			// The owning statement already drained this sink; fall through
			// to the direct path so the record still reaches the WAL.
			sink.mu.Unlock()
		}
		if lw := e.wal.Load(); lw != nil {
			if err := lw.commit([][]byte{rec}).wait(); err != nil {
				e.grantWALErr.Store(&err)
			}
		}
	}})

	every := opts.CheckpointEvery
	if every == 0 {
		every = defaultCheckpointEvery
	}
	bytes := opts.CheckpointBytes
	if bytes == 0 {
		bytes = defaultCheckpointBytes
	}
	if every > 0 {
		e.ckptQuit = make(chan struct{})
		e.ckptDone = make(chan struct{})
		go e.checkpointLoop(every, bytes)
	}
	return e, nil
}

// acquireDirLock takes an exclusive advisory lock on dir/LOCK. The lock is
// released by Close — or by the OS when the process dies, so a crash never
// strands a stale lock.
func acquireDirLock(fsys vfs.FS, dir string) (vfs.Unlocker, error) {
	lock, err := fsys.Lock(filepath.Join(dir, "LOCK"))
	if err != nil {
		var held *vfs.LockHeldError
		if errors.As(err, &held) {
			return nil, fmt.Errorf("sqldb: database %q is already open in another engine (lock held on %s)",
				dir, held.Path)
		}
		return nil, fmt.Errorf("sqldb: %w", err)
	}
	return lock, nil
}

func releaseDirLock(lock vfs.Unlocker) {
	if lock == nil {
		return
	}
	_ = lock.Unlock()
}

// recoverEngine rebuilds engine state from dir: newest valid snapshot first,
// then the WAL tail. It returns the segment to keep appending to and the
// last LSN seen.
func recoverEngine(fsys vfs.FS, dir, name string) (*Engine, uint64, uint64, error) {
	snaps, err := listNumbered(fsys, dir, "snap", ".snap")
	if err != nil {
		return nil, 0, 0, fmt.Errorf("sqldb: %w", err)
	}

	e := NewEngine(name)
	startSeg := uint64(1)
	snapLoaded := len(snaps) == 0
	// Newest snapshot first; a corrupt one (CRC, torn rename) falls back to
	// the next older, and with none at all the whole WAL is replayed.
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := fsys.ReadFile(snapPath(dir, snaps[i]))
		if err != nil {
			continue
		}
		fresh := NewEngine(name)
		seg, err := loadSnapshot(fresh, data)
		if err != nil {
			continue // try the next older snapshot
		}
		e = fresh
		startSeg = seg
		snapLoaded = true
		break
	}

	segs, err := listNumbered(fsys, dir, "wal", ".log")
	if err != nil {
		return nil, 0, 0, fmt.Errorf("sqldb: %w", err)
	}
	// Snapshots exist but none loads: replaying from scratch is only honest
	// if the full WAL history survives (segment 1 onward — checkpoints
	// retire earlier segments). Otherwise opening would silently succeed
	// with most of the data gone; fail loudly instead.
	if !snapLoaded && (len(segs) == 0 || segs[0] != 1) {
		return nil, 0, 0, fmt.Errorf("sqldb: no snapshot in %s is loadable and the WAL history before segment %v has been retired; refusing to open with data missing", dir, segs)
	}
	replayer := e.NewSession("root")
	curSeg := startSeg
	var lsn uint64
	stopped := false
	for _, seg := range segs {
		if seg < startSeg {
			continue // superseded by the snapshot; retired at next checkpoint
		}
		if stopped {
			// Everything after a torn/corrupt frame is suspect; drop it so
			// the log stays a valid prefix.
			_ = fsys.Remove(segPath(dir, seg))
			continue
		}
		curSeg = seg
		segLSN, valid, complete, err := replaySegment(fsys, replayer, segPath(dir, seg))
		if err != nil {
			return nil, 0, 0, err
		}
		if segLSN > lsn {
			lsn = segLSN
		}
		if !complete {
			// Torn tail: truncate to the last valid frame and stop replay —
			// this is the crash-recovery cut point.
			if err := fsys.Truncate(segPath(dir, seg), valid); err != nil {
				return nil, 0, 0, fmt.Errorf("sqldb: truncating torn WAL tail: %w", err)
			}
			stopped = true
		}
	}
	// Replay builds version chains commit by commit; with no snapshots open
	// yet, one vacuum pass collapses every chain to its latest committed
	// live version.
	for _, lo := range e.tableOrder {
		t := e.tables[lo]
		if t.garbage > 0 {
			t.vacuum(e.lastCommitTS.Load())
		}
	}
	return e, curSeg, lsn, nil
}

// replaySegment applies every valid frame in one WAL segment. It returns the
// last LSN applied, the byte offset of the end of the last valid frame, and
// whether the segment was fully consumed. Physical damage — a short or
// CRC-failing frame, i.e. a torn tail from a crash mid-write — stops replay
// at that offset (complete=false, the caller truncates). A logical
// application error on a CRC-valid frame is different: it means the log
// itself is inconsistent, and it fails the open loudly rather than silently
// truncating away acknowledged commits that follow it.
func replaySegment(fsys vfs.FS, s *Session, path string) (lsn uint64, valid int64, complete bool, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("sqldb: %w", err)
	}
	off := 0
	for off < len(data) {
		payload, size, ferr := readFrame(data[off:])
		if ferr != nil {
			return lsn, int64(off), false, nil
		}
		frameLSN, recs, derr := decodeFramePayload(payload)
		if derr != nil {
			return lsn, int64(off), false, nil
		}
		if aerr := applyRecords(s, recs); aerr != nil {
			return lsn, int64(off), false, fmt.Errorf("%s at offset %d: %w", path, off, aerr)
		}
		lsn = frameLSN
		off += size
	}
	return lsn, int64(off), true, nil
}

var errReplay = errors.New("sqldb: wal replay")

// applyRecords replays one committed transaction's records against the
// engine. DML records address rows by engine row id (stable across
// snapshot/replay); DDL records round-trip through the parser. The frame's
// commit-timestamp record (its first record) stamps every version this
// frame installs, so replay reconstructs the same visibility order the
// live engine had, and the commit clock resumes past the highest replayed
// timestamp.
//
// DML records are subordinate to the catalog state replay has built so far.
// A transaction may commit DML sequenced after another session's committed
// DDL: its frame follows the DROP (or DROP + re-CREATE) that already
// discarded those rows from the heap, so its records can name a table that
// no longer exists or a superseded incarnation of it (the record's epoch
// differs from the catalog's). Replay skips such records — exactly what the
// heap kept — rather than refusing to open the database. The same rule
// covers updates/deletes of a missing row (a row whose insert-and-delete
// collapsed inside one transaction and was never logged). Anything the
// epoch check cannot explain (arity mismatches or duplicate row ids within
// the SAME incarnation, unparseable or failing DDL, unknown record types)
// cannot be produced by any legal interleaving and remains a hard error:
// the log really is corrupt.
func applyRecords(s *Session, recs []walRec) error {
	e := s.engine
	// Frames written by this engine carry their commit timestamp first.
	// Frames without one (logs written before MVCC, grant-only frames)
	// default to clock+1 — and stamp() advances the clock when a row
	// record actually uses it, so replayed rows are never stamped into the
	// future where no snapshot would see them.
	ts := e.lastCommitTS.Load() + 1
	stamp := func() uint64 {
		if ts > e.lastCommitTS.Load() {
			e.lastCommitTS.Store(ts)
		}
		return ts
	}
	for _, rec := range recs {
		switch rec.typ {
		case recCommit:
			ts = rec.commitTS
			if ts > e.lastCommitTS.Load() {
				e.lastCommitTS.Store(ts)
			}
		case recInsert:
			t, ok := e.Table(rec.table)
			if !ok || t.epoch != rec.epoch {
				continue // raced a committed DROP / re-CREATE; the heap dropped it too
			}
			if len(rec.vals) != len(t.Columns) {
				return fmt.Errorf("%w: insert arity %d != %d columns of %q", errReplay, len(rec.vals), len(t.Columns), rec.table)
			}
			if t.byID[rec.rowID] != nil {
				return fmt.Errorf("%w: duplicate row id %d in %q", errReplay, rec.rowID, rec.table)
			}
			entry := &rowEntry{id: rec.rowID, v: &rowVersion{vals: rec.vals, xmin: stamp()}}
			if rec.rowID > t.nextID {
				t.nextID = rec.rowID
			}
			t.rows = append(t.rows, entry)
			t.byID[entry.id] = entry
			t.indexVals(entry, rec.vals)
		case recDelete:
			t, ok := e.Table(rec.table)
			if !ok || t.epoch != rec.epoch {
				continue // raced a committed DROP; nothing left to delete
			}
			// Even a skipped record proves the heap once allocated this row
			// id; advance the allocator so recovery matches it exactly.
			if rec.rowID > t.nextID {
				t.nextID = rec.rowID
			}
			if entry := t.byID[rec.rowID]; entry != nil && entry.v != nil && entry.v.xmax == 0 {
				entry.v.xmax = stamp()
				t.deadCnt++
				t.garbage++
			}
		case recUpdate:
			t, ok := e.Table(rec.table)
			if !ok || t.epoch != rec.epoch {
				continue // raced a committed DROP / re-CREATE
			}
			if len(rec.vals) != len(t.Columns) {
				return fmt.Errorf("%w: update arity %d != %d columns of %q", errReplay, len(rec.vals), len(t.Columns), rec.table)
			}
			if rec.rowID > t.nextID {
				t.nextID = rec.rowID
			}
			if entry := t.byID[rec.rowID]; entry != nil && entry.v != nil && entry.v.xmax == 0 {
				old := entry.v
				old.xmax = stamp()
				entry.v = &rowVersion{vals: rec.vals, xmin: stamp(), prev: old}
				t.indexVals(entry, rec.vals)
				t.garbage++
			}
		case recDDL:
			stmts, err := ParseScript(rec.sql)
			if err != nil {
				return fmt.Errorf("%w: bad DDL %q: %v", errReplay, rec.sql, err)
			}
			for _, st := range stmts {
				if _, err := s.dispatch(st); err != nil {
					return fmt.Errorf("%w: replaying %q: %v", errReplay, rec.sql, err)
				}
				if ct, isCreate := st.(*CreateTableStmt); isCreate && rec.epoch != 0 {
					// Restore the epoch this incarnation had when it was
					// logged; replay of a rolled-back CREATE never happens,
					// so auto-assignment can drift behind the original.
					if t, ok := e.Table(ct.Table); ok {
						t.epoch = rec.epoch
						if rec.epoch > e.epochCounter {
							e.epochCounter = rec.epoch
						}
					}
				}
			}
		case recGrant:
			e.grants.apply(rec.grant)
		default:
			return fmt.Errorf("%w: unknown record type %d", errReplay, rec.typ)
		}
	}
	return nil
}

// ErrCheckpointSkipped is retained for API compatibility: with MVCC
// snapshots, Checkpoint serializes only committed-visible versions, so open
// transactions no longer block it and this error is no longer returned.
//
// Deprecated: Checkpoint never returns ErrCheckpointSkipped anymore.
var ErrCheckpointSkipped = errors.New("sqldb: checkpoint skipped: a transaction is open")

// Checkpoint writes a snapshot of the latest committed state and retires
// the WAL segments (and older snapshots) it supersedes. It is a no-op on
// in-memory engines and when nothing has changed since the last
// checkpoint. Open transactions do not block it: the snapshot serializes
// only committed-visible versions, and a transaction that commits later
// lands its redo frame in the post-rotation segment, which replay applies
// on top of the snapshot.
func (e *Engine) Checkpoint() error {
	w := e.wal.Load()
	if w == nil {
		return nil
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	// Quiesce writers through the lock manager — the same order every
	// statement uses (table locks before Engine.mu) — so no commit can slip
	// between the segment rotation and the snapshot encoding. Readers are
	// not blocked: they run under Engine.mu.RLock, which the checkpoint
	// shares while serializing the catalog, and the rotation fsync happens
	// with no engine mutex held at all.
	unlock := e.locks.lockAll()
	defer unlock()

	lsn := w.currentLSN()
	ver := e.catalogVersion.Load()
	if lsn == e.lastCkptLSN && ver == e.lastCkptVersion {
		return nil
	}
	ckptStart := time.Now()
	newSeg, err := w.rotate()
	if err != nil {
		// Rotation failure is fail-stop on the WAL side (rotate already
		// recorded it); park the engine in degraded mode and remember the
		// error for \checkpoint / Health.
		err = fmt.Errorf("sqldb: checkpoint rotate: %w", err)
		e.degrade("checkpoint", err)
		e.noteCkptErr(err)
		return err
	}
	e.mu.RLock()
	data := encodeSnapshot(e, newSeg)
	e.mu.RUnlock()

	if err := writeSnapshotFile(e.fs, e.dir, newSeg, data); err != nil {
		// The snapshot never landed (the atomic rename protocol leaves the
		// previous one intact), but ENOSPC/EIO here means durability
		// maintenance can no longer make progress: degrade rather than let
		// the WAL grow unboundedly while checkpoints silently fail.
		err = fmt.Errorf("sqldb: checkpoint write: %w", err)
		e.degrade("checkpoint", err)
		e.noteCkptErr(err)
		return err
	}
	e.noteCkptErr(nil)
	e.lastCkptLSN = lsn
	e.lastCkptVersion = ver
	w.mu.Lock()
	w.checkpoints++
	w.mu.Unlock()
	w.retire(newSeg)
	e.metrics.ckptDur.Observe(time.Since(ckptStart))
	return nil
}

// checkpointLoop is the background checkpointer: it wakes up periodically
// and checkpoints once the active WAL segment outgrows the threshold (or the
// catalog changed and the WAL has real content). Checkpoint itself skips the
// write when the LSN and catalog version haven't moved.
func (e *Engine) checkpointLoop(every time.Duration, bytes int64) {
	defer close(e.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-e.ckptQuit:
			return
		case <-t.C:
			w := e.wal.Load()
			if w == nil {
				return
			}
			if w.currentSize() >= bytes {
				_ = e.Checkpoint()
			}
		}
	}
}

// Close makes the database durable and releases it: stop the background
// checkpointer, take a final checkpoint (so the next open replays nothing),
// drain and close the WAL, and release the directory lock. Close is
// idempotent; on an in-memory engine it is a no-op. The engine must not be
// used after Close.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	if e.ckptQuit != nil {
		close(e.ckptQuit)
		<-e.ckptDone
	}
	err := e.Checkpoint()
	if errors.Is(err, ErrCheckpointSkipped) {
		// An abandoned open transaction can't be committed now; its data was
		// never acknowledged. Committed work is already on the WAL and will
		// replay at the next open — skipping the final snapshot loses nothing.
		err = nil
	}

	e.mu.Lock()
	w := e.wal.Swap(nil)
	e.mu.Unlock()
	e.grants.logger.Store(nil)
	if w != nil {
		if cerr := w.close(); err == nil {
			err = cerr
		}
	}
	releaseDirLock(e.lockFile)
	e.lockFile = nil
	return err
}
