package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(sql string) (Stmt, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon(s).
	for p.peekOp(";") {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input near %q", p.peek().text)
	}
	return stmt, nil
}

// ParseScript splits and parses a semicolon-separated script.
func ParseScript(sql string) ([]Stmt, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for {
		for p.peekOp(";") {
			p.next()
		}
		if p.peek().kind == tokEOF {
			return out, nil
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
	}
}

// StatementVerb returns the leading SQL verb ("SELECT", "INSERT", ...) of a
// statement string without fully parsing it. Used by toolkits to classify
// statements cheaply.
func StatementVerb(sql string) string {
	toks, err := lexSQL(sql)
	if err != nil || len(toks) == 0 {
		return ""
	}
	for _, t := range toks {
		if t.kind == tokKeyword {
			return t.text
		}
		if t.kind != tokOp || t.text != ";" {
			break
		}
	}
	return ""
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("expected %s near %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) peekOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("expected %q near %q", op, p.peek().text)
	}
	return nil
}

// acceptWord consumes the next token when it is an identifier or keyword
// spelled word (case-insensitive). BEGIN's isolation-level clause is parsed
// this way so its words (ISOLATION, READ, COMMITTED, ...) stay usable as
// ordinary identifiers everywhere else.
func (p *parser) acceptWord(word string) bool {
	t := p.peek()
	if (t.kind == tokIdent || t.kind == tokKeyword) && strings.EqualFold(t.text, word) {
		p.next()
		return true
	}
	return false
}

// expectWord consumes the next identifier-or-keyword token and returns its
// text.
func (p *parser) expectWord() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokKeyword {
		p.next()
		return t.text, nil
	}
	return "", fmt.Errorf("expected a word near %q", t.text)
}

// expectIdent accepts an identifier or a non-reserved keyword used as a
// name (e.g. a column named "key" or "min").
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	// Allow a few keywords in identifier position.
	if t.kind == tokKeyword {
		switch t.text {
		case "KEY", "MIN", "MAX", "COUNT", "SUM", "AVG", "VIEW", "INDEX",
			"COLUMN", "CHECK", "OPTION", "IF", "END":
			p.next()
			return strings.ToLower(t.text), nil
		}
	}
	return "", fmt.Errorf("expected identifier near %q", t.text)
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("expected a SQL statement near %q", t.text)
	}
	switch t.text {
	case "EXPLAIN":
		p.next()
		// ANALYZE is not a reserved keyword (tables and columns may use the
		// name), so it is recognized positionally right after EXPLAIN.
		analyze := false
		if nt := p.peek(); nt.kind == tokIdent && strings.EqualFold(nt.text, "analyze") {
			p.next()
			analyze = true
		}
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, nested := inner.(*ExplainStmt); nested {
			return nil, fmt.Errorf("cannot nest EXPLAIN")
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "ALTER":
		return p.parseAlter()
	case "BEGIN":
		p.next()
		p.acceptKeyword("TRANSACTION")
		p.acceptWord("WORK")
		st := &BeginStmt{Level: LevelSnapshot}
		if p.acceptWord("ISOLATION") {
			if !p.acceptWord("LEVEL") {
				return nil, fmt.Errorf("expected LEVEL after ISOLATION near %q", p.peek().text)
			}
			spec, err := p.expectWord()
			if err != nil {
				return nil, err
			}
			// Two-word levels: READ COMMITTED/UNCOMMITTED, REPEATABLE READ.
			switch strings.ToUpper(spec) {
			case "READ", "REPEATABLE":
				w2, err := p.expectWord()
				if err != nil {
					return nil, err
				}
				spec += " " + w2
			}
			lvl, ok := ParseIsolationLevel(spec)
			if !ok {
				return nil, fmt.Errorf("unknown isolation level %q", spec)
			}
			st.Level = lvl
		}
		return st, nil
	case "COMMIT":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &RollbackStmt{}, nil
	case "GRANT":
		return p.parseGrantRevoke(true)
	case "REVOKE":
		return p.parseGrantRevoke(false)
	case "TRUNCATE":
		// TRUNCATE t is parsed as DELETE FROM t (delete privilege).
		p.next()
		p.acceptKeyword("TABLE")
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DeleteStmt{Table: name}, nil
	}
	return nil, fmt.Errorf("unsupported statement %q", t.text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		st.Distinct = true
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		refs, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		st.From = refs
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Offset = e
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// `*` or `tbl.*`
	if p.peekOp("*") {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if p.peek().kind == tokIdent && p.peekAt(1).kind == tokOp && p.peekAt(1).text == "." &&
		p.peekAt(2).kind == tokOp && p.peekAt(2).text == "*" {
		tbl := p.next().text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseFrom() ([]TableRef, error) {
	var refs []TableRef
	first, err := p.parseTableRef(JoinNone)
	if err != nil {
		return nil, err
	}
	refs = append(refs, first)
	for {
		switch {
		case p.acceptOp(","):
			r, err := p.parseTableRef(JoinCross)
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.peekKeyword("JOIN") || p.peekKeyword("INNER"):
			p.acceptKeyword("INNER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef(JoinInner)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.On = on
			refs = append(refs, r)
		case p.peekKeyword("LEFT"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef(JoinLeft)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.On = on
			refs = append(refs, r)
		case p.peekKeyword("CROSS"):
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef(JoinCross)
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) parseTableRef(kind JoinKind) (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, JoinKind: kind}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Column: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	case !unique && p.acceptKeyword("VIEW"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		query, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Query: query}, nil
	}
	return nil, fmt.Errorf("unsupported CREATE near %q", p.peek().text)
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	st := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekKeyword("PRIMARY"):
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			st.PrimaryKey = cols
		case p.peekKeyword("FOREIGN"):
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			fk, err := p.parseReferences()
			if err != nil {
				return nil, err
			}
			fk.Columns = cols
			st.ForeignKeys = append(st.ForeignKeys, *fk)
		default:
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseIdentList() ([]string, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) parseReferences() (*ForeignKeyDef, error) {
	if err := p.expectKeyword("REFERENCES"); err != nil {
		return nil, err
	}
	parent, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fk := &ForeignKeyDef{ParentTable: parent}
	if p.peekOp("(") {
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		fk.ParentColumns = cols
	}
	return fk, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	kind, err := p.parseType()
	if err != nil {
		return ColumnDef{}, err
	}
	col := ColumnDef{Name: name, Type: kind}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			col.PrimaryKey = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			col.NotNull = true
		case p.acceptKeyword("UNIQUE"):
			col.Unique = true
		case p.acceptKeyword("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return ColumnDef{}, err
			}
			col.Default = e
		case p.peekKeyword("REFERENCES"):
			fk, err := p.parseReferences()
			if err != nil {
				return ColumnDef{}, err
			}
			fk.Columns = []string{name}
			col.References = fk
		default:
			return col, nil
		}
	}
}

func (p *parser) parseType() (Kind, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, fmt.Errorf("expected a type near %q", t.text)
	}
	var kind Kind
	switch t.text {
	case "INT", "INTEGER", "BIGINT":
		kind = KindInt
	case "REAL", "FLOAT", "DOUBLE", "NUMERIC", "DECIMAL":
		kind = KindFloat
	case "TEXT", "VARCHAR", "CHAR":
		kind = KindText
	case "BOOLEAN", "BOOL":
		kind = KindBool
	default:
		return 0, fmt.Errorf("unsupported type %q", t.text)
	}
	p.next()
	// Optional length/precision, e.g. VARCHAR(255) or NUMERIC(10,2).
	if p.acceptOp("(") {
		for !p.peekOp(")") && p.peek().kind != tokEOF {
			p.next()
		}
		if err := p.expectOp(")"); err != nil {
			return 0, err
		}
	}
	return kind, nil
}

func (p *parser) parseCreateIndex(unique bool) (*CreateIndexStmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	if len(cols) != 1 {
		return nil, fmt.Errorf("only single-column indexes are supported")
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: cols[0], Unique: unique}, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	isView := false
	switch {
	case p.acceptKeyword("TABLE"):
	case p.acceptKeyword("VIEW"):
		isView = true
	default:
		return nil, fmt.Errorf("only DROP TABLE and DROP VIEW are supported, near %q", p.peek().text)
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if isView {
		return &DropViewStmt{Name: name, IfExists: ifExists}, nil
	}
	return &DropTableStmt{Table: name, IfExists: ifExists}, nil
}

func (p *parser) parseAlter() (Stmt, error) {
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &AlterTableStmt{Table: name}
	switch {
	case p.acceptKeyword("ADD"):
		p.acceptKeyword("COLUMN")
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		st.AddColumn = &col
	case p.acceptKeyword("RENAME"):
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		to, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.RenameTo = to
	default:
		return nil, fmt.Errorf("unsupported ALTER TABLE action near %q", p.peek().text)
	}
	return st, nil
}

func (p *parser) parseGrantRevoke(isGrant bool) (Stmt, error) {
	p.next() // GRANT or REVOKE
	var actions []Action
	var columns [][]string
	if p.acceptKeyword("ALL") {
		p.acceptKeyword("PRIVILEGES")
		actions = nil // ALL
	} else {
		for {
			t := p.peek()
			if t.kind != tokKeyword {
				return nil, fmt.Errorf("expected a privilege action near %q", t.text)
			}
			a, ok := actionFromKeyword(t.text)
			if !ok {
				return nil, fmt.Errorf("unknown privilege action %q", t.text)
			}
			p.next()
			actions = append(actions, a)
			// Optional column restriction: GRANT SELECT (a, b) ON ...
			if isGrant && p.peekOp("(") {
				cols, err := p.parseIdentList()
				if err != nil {
					return nil, err
				}
				columns = append(columns, cols)
			} else {
				columns = append(columns, nil)
			}
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	p.acceptKeyword("TABLE")
	var table string
	if p.acceptOp("*") {
		table = "*"
	} else if p.acceptKeyword("ALL") {
		// GRANT ... ON ALL TABLES
		// "TABLES" lexes as an identifier since it's not a keyword.
		if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "TABLES") {
			p.next()
		}
		table = "*"
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		table = name
	}
	kw := "TO"
	if !isGrant {
		kw = "FROM"
	}
	if isGrant {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	} else {
		// REVOKE ... FROM user ("FROM" is a keyword).
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
	}
	grantee, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if isGrant {
		return &GrantStmt{Actions: actions, Columns: columns, Table: table, Grantee: grantee}, nil
	}
	return &RevokeStmt{Actions: actions, Table: table, Grantee: grantee}, nil
}

func actionFromKeyword(kw string) (Action, bool) {
	switch kw {
	case "SELECT":
		return ActionSelect, true
	case "INSERT":
		return ActionInsert, true
	case "UPDATE":
		return ActionUpdate, true
	case "DELETE":
		return ActionDelete, true
	case "CREATE":
		return ActionCreate, true
	case "DROP":
		return ActionDrop, true
	case "ALTER":
		return ActionAlter, true
	}
	return 0, false
}

// --- expression parsing, precedence climbing ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("=") || p.peekOp("!=") || p.peekOp("<") || p.peekOp("<=") || p.peekOp(">") || p.peekOp(">="):
			op := p.next().text
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		case p.peekKeyword("IS"):
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Operand: left, Not: not}
		case p.peekKeyword("LIKE"):
			p.next()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &LikeExpr{Operand: left, Pattern: pat}
		case p.peekKeyword("IN"):
			p.next()
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case p.peekKeyword("BETWEEN"):
			p.next()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{Operand: left, Low: lo, High: hi}
		case p.peekKeyword("NOT"):
			// NOT LIKE / NOT IN / NOT BETWEEN
			save := p.pos
			p.next()
			switch {
			case p.acceptKeyword("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &LikeExpr{Operand: left, Pattern: pat, Not: true}
			case p.acceptKeyword("IN"):
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{Operand: left, Low: lo, High: hi, Not: true}
			default:
				p.pos = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseInTail(operand Expr, not bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.peekKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{Operand: operand, Subquery: &SubqueryExpr{Query: sub}, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &InExpr{Operand: operand, List: list, Not: not}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peekOp("+") || p.peekOp("-") || p.peekOp("||") {
		op := p.next().text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekOp("*") || p.peekOp("/") || p.peekOp("%") {
		op := p.next().text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals so "-3" is a literal, not an expression.
		if lit, ok := e.(*Literal); ok {
			switch lit.Val.Kind {
			case KindInt:
				return &Literal{Val: NewInt(-lit.Val.I)}, nil
			case KindFloat:
				return &Literal{Val: NewFloat(-lit.Val.F)}, nil
			}
		}
		return &UnaryExpr{Op: "-", Operand: e}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer literal %q", t.text)
		}
		return &Literal{Val: NewInt(i)}, nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad numeric literal %q", t.text)
		}
		return &Literal{Val: NewFloat(f)}, nil
	case tokString:
		p.next()
		return &Literal{Val: NewText(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncCall()
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "SELECT":
			// Bare subquery in expression position (scalar).
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			return &SubqueryExpr{Query: sub}, nil
		}
		return nil, fmt.Errorf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		// Function call or column reference.
		if p.peekAt(1).kind == tokOp && p.peekAt(1).text == "(" {
			return p.parseFuncCall()
		}
		p.next()
		if p.peekOp(".") {
			p.next()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: col}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.next()
			if p.peekKeyword("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("unexpected token %q in expression", t.text)
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := strings.ToUpper(p.next().text)
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fn := &FuncExpr{Name: name}
	if p.acceptOp("*") {
		fn.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fn, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fn.Distinct = true
	}
	if !p.peekOp(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fn.Args = append(fn.Args, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	kind, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Operand: e, Target: kind}, nil
}

// CastExpr converts a value to a target kind at evaluation time.
type CastExpr struct {
	Operand Expr
	Target  Kind
}

// Eval converts the operand, parsing numeric text when needed.
func (c *CastExpr) Eval(env *Env) (Value, error) {
	v, err := c.Operand.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return Null(), nil
	}
	switch c.Target {
	case KindInt:
		switch v.Kind {
		case KindInt:
			return v, nil
		case KindFloat:
			return NewInt(int64(v.F)), nil
		case KindText:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to INTEGER", v.S)
			}
			return NewInt(i), nil
		case KindBool:
			if v.B {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case KindFloat:
		switch v.Kind {
		case KindInt:
			return NewFloat(float64(v.I)), nil
		case KindFloat:
			return v, nil
		case KindText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Value{}, fmt.Errorf("cannot cast %q to REAL", v.S)
			}
			return NewFloat(f), nil
		}
	case KindText:
		return NewText(v.String()), nil
	case KindBool:
		switch v.Kind {
		case KindBool:
			return v, nil
		case KindInt:
			return NewBool(v.I != 0), nil
		}
	}
	return Value{}, fmt.Errorf("cannot cast %s to %s", v.Kind, c.Target)
}

func (c *CastExpr) String() string {
	return "CAST(" + c.Operand.String() + " AS " + c.Target.String() + ")"
}
