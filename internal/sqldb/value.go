// Package sqldb implements an embedded relational database engine: a SQL
// lexer/parser, an expression evaluator, an executor with joins and
// aggregates, MVCC transactions with snapshot isolation (row-version
// chains, first-committer-wins write-conflict detection, undo-log
// atomicity), PK/FK/NOT NULL constraints, hash indexes, and a
// PostgreSQL-style privilege system.
//
// It is the database substrate for the BridgeScope reproduction. The toolkit
// layers (internal/core, internal/pgmcp) only touch it through the
// database-agnostic adapter in internal/core, mirroring the paper's §2.6
// claim that all tools are built on a unified set of database interfaces.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the SQL NULL marker.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// NewInt wraps an int64 as a Value.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat wraps a float64 as a Value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewText wraps a string as a Value.
func NewText(s string) Value { return Value{Kind: KindText, S: s} }

// NewBool wraps a bool as a Value.
func NewBool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// Truthy reports whether v counts as true in a WHERE clause. NULL is false.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.B
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// String renders the value for result sets and error messages.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindText:
		return v.S
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// SQLLiteral renders the value as a literal that the parser accepts back.
func (v Value) SQLLiteral() string {
	switch v.Kind {
	case KindText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	default:
		return v.String()
	}
}

// Compare orders two non-NULL values. Numeric kinds compare numerically
// across int/float; text lexicographically; bool false < true. Comparing
// incompatible kinds is an error. Two ints compare in int64 space —
// routing them through float64 would collapse values above 2^53 (e.g.
// 9007199254740993 == 9007199254740992 as float64) and disagree with the
// exact keys the PK map and indexes store.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("cannot compare NULL values")
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	switch {
	case aNum && bNum:
		if af < bf {
			return -1, nil
		}
		if af > bf {
			return 1, nil
		}
		return 0, nil
	case a.Kind == KindText && b.Kind == KindText:
		return strings.Compare(a.S, b.S), nil
	case a.Kind == KindBool && b.Kind == KindBool:
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("cannot compare %s with %s", a.Kind, b.Kind)
}

// orderCompare is the total order ordered indexes sort by. It agrees with
// Compare wherever Compare is defined (same column after coercion: numeric
// with numeric, text with text, bool with bool) and falls back to ranking by
// kind for value pairs Compare rejects, so sorted index slices always have a
// consistent order even if a caller mixes kinds. NULLs order first, though
// ordered structures exclude them (they live in the hash bucket only).
func orderCompare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, err := Compare(a, b); err == nil {
		return c
	}
	switch {
	case a.Kind < b.Kind:
		return -1
	case a.Kind > b.Kind:
		return 1
	}
	return 0
}

// Equal reports whether two values are equal under Compare semantics.
// Two NULLs are considered equal here (used for grouping and index keys,
// matching SQL's IS NOT DISTINCT FROM), unlike the = operator which yields
// NULL.
func Equal(a, b Value) bool {
	if a.IsNull() && b.IsNull() {
		return true
	}
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Key returns a canonical string key for hashing a value in indexes and
// GROUP BY maps. Numeric values that are integral share one key across
// int/float so that index lookups match Compare semantics.
func (v Value) Key() string {
	switch v.Kind {
	case KindNull:
		return "\x00N"
	case KindInt:
		return "\x01" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return "\x01" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x02" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindText:
		return "\x03" + v.S
	case KindBool:
		if v.B {
			return "\x04t"
		}
		return "\x04f"
	}
	return "\x05?"
}

// writeKeySegment appends v's canonical key to b, length-prefixed. Composite
// hash keys (multi-column PKs, GROUP BY, DISTINCT) concatenate segments;
// a bare separator would let payloads containing it collide across segment
// boundaries — ("a", "b|c") vs ("a|b", "c") — so every segment carries its
// own length instead.
func writeKeySegment(b *strings.Builder, v Value) {
	k := v.Key()
	b.WriteString(strconv.Itoa(len(k)))
	b.WriteByte(':')
	b.WriteString(k)
}

// CoerceTo converts v to the column type t where a lossless conversion
// exists (int→float, numeric text forms are NOT auto-converted). NULL passes
// through any type.
func CoerceTo(v Value, t Kind) (Value, error) {
	if v.IsNull() || v.Kind == t {
		return v, nil
	}
	switch {
	case t == KindFloat && v.Kind == KindInt:
		return NewFloat(float64(v.I)), nil
	case t == KindInt && v.Kind == KindFloat && v.F == float64(int64(v.F)):
		return NewInt(int64(v.F)), nil
	case t == KindText:
		return NewText(v.String()), nil
	}
	return Value{}, fmt.Errorf("cannot store %s value %s in %s column", v.Kind, v, t)
}
