package sqldb

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func benchEngine(b *testing.B, rows int, withIndex bool) (*Engine, *Session) {
	b.Helper()
	e := NewEngine("bench")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val REAL, name TEXT)`)
	s.MustExec(`CREATE TABLE child (id INT PRIMARY KEY, t_id INT REFERENCES t(id), x REAL)`)
	if withIndex {
		s.MustExec(`CREATE INDEX idx_grp ON t (grp)`)
	}
	batch := ""
	for i := 0; i < rows; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d, %f, 'name%d')", i, i%50, float64(i)*1.5, i)
		if (i+1)%500 == 0 || i == rows-1 {
			s.MustExec("INSERT INTO t VALUES " + batch)
			batch = ""
		}
	}
	for i := 0; i < rows/2; i++ {
		if batch != "" {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, %d, %f)", i, i*2, float64(i))
		if (i+1)%500 == 0 || i == rows/2-1 {
			s.MustExec("INSERT INTO child VALUES " + batch)
			batch = ""
		}
	}
	b.ResetTimer()
	return e, s
}

func BenchmarkParseSelect(b *testing.B) {
	const q = `SELECT a.name, SUM(b.x) AS total FROM t a JOIN child b ON a.id = b.t_id WHERE a.grp BETWEEN 3 AND 17 AND a.name LIKE 'name%' GROUP BY a.name HAVING SUM(b.x) > 10 ORDER BY total DESC LIMIT 10`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertSingleRow(b *testing.B) {
	_, s := benchEngine(b, 1000, false)
	for i := 0; i < b.N; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1, 1.0, 'x')", 10_000+i))
	}
}

func BenchmarkSelectFullScan(b *testing.B) {
	_, s := benchEngine(b, 5000, false)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7")
		if r.Rows[0][0].I == 0 {
			b.Fatal("no rows matched")
		}
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	_, s := benchEngine(b, 5000, true)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7")
		if r.Rows[0][0].I == 0 {
			b.Fatal("no rows matched")
		}
	}
}

func BenchmarkSelectPKLookup(b *testing.B) {
	_, s := benchEngine(b, 5000, false)
	for i := 0; i < b.N; i++ {
		r := s.MustExec(fmt.Sprintf("SELECT val FROM t WHERE id = %d", i%5000))
		if len(r.Rows) != 1 {
			b.Fatal("pk lookup missed")
		}
	}
}

// BenchmarkParallelSelect measures concurrent read sessions sharing the
// engine's read lock. Before the planner refactor every statement held one
// exclusive mutex, so this workload serialized; compare against
// BenchmarkSelectIndexed for the single-session baseline.
func BenchmarkParallelSelect(b *testing.B) {
	e, _ := benchEngine(b, 5000, true)
	b.RunParallel(func(pb *testing.PB) {
		s := e.NewSession("root")
		for pb.Next() {
			r := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7")
			if r.Rows[0][0].I == 0 {
				b.Fatal("no rows matched")
			}
		}
	})
}

// BenchmarkParallelSelectWithWriter measures reader throughput while one
// session continuously commits full-table UPDATEs. Before MVCC every write
// statement held the engine lock exclusively for its whole run, so readers
// serialized behind it; now writers take it only for per-row version
// installation and readers resolve their snapshot in parallel. Compare
// against BenchmarkParallelSelect for the no-writer ceiling.
func BenchmarkParallelSelectWithWriter(b *testing.B) {
	e, _ := benchEngine(b, 5000, true)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := e.NewSession("root")
		for {
			select {
			case <-stop:
				return
			default:
				w.MustExec("UPDATE t SET val = val + 1 WHERE grp >= 0")
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := e.NewSession("root")
		for pb.Next() {
			r := s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7")
			if r.Rows[0][0].I == 0 {
				b.Fatal("no rows matched")
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkWriteConflictRetry measures the serialization-failure round
// trip: two sessions increment the same row in explicit transactions; the
// loser rolls back and retries. The reported rate includes the conflict
// detection, rollback, and retry cost; the engine's conflict counter is
// reported as conflicts/op.
func BenchmarkWriteConflictRetry(b *testing.B) {
	e := NewEngine("conflict")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE c (id INT PRIMARY KEY, n INT)`)
	root.MustExec(`INSERT INTO c VALUES (1, 0)`)
	before := e.WriteConflicts()
	b.ResetTimer()
	b.SetParallelism(max(1, (4+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
	b.RunParallel(func(pb *testing.PB) {
		s := e.NewSession("root")
		for pb.Next() {
			for {
				ok := true
				for _, q := range []string{"BEGIN", "UPDATE c SET n = n + 1 WHERE id = 1", "COMMIT"} {
					if _, err := s.Exec(q); err != nil {
						if !IsRetryable(err) {
							b.Fatalf("%s: %v", q, err)
						}
						s.MustExec("ROLLBACK")
						ok = false
						break
					}
				}
				if ok {
					break
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(e.WriteConflicts()-before)/float64(b.N), "conflicts/op")
	// Every increment must have landed exactly once despite the conflicts.
	if got := root.MustExec("SELECT n FROM c WHERE id = 1").Rows[0][0].I; got != int64(b.N) {
		b.Fatalf("lost updates: counter %d, want %d", got, b.N)
	}
}

// BenchmarkExplain measures plan construction alone (parse + plan, no
// execution).
func BenchmarkExplain(b *testing.B) {
	_, s := benchEngine(b, 1000, true)
	for i := 0; i < b.N; i++ {
		s.MustExec("EXPLAIN SELECT name FROM t WHERE grp = 7 ORDER BY val DESC LIMIT 5")
	}
}

func BenchmarkHashJoin(b *testing.B) {
	_, s := benchEngine(b, 2000, false)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT COUNT(*) FROM t JOIN child ON t.id = child.t_id")
		if r.Rows[0][0].I == 0 {
			b.Fatal("join empty")
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	_, s := benchEngine(b, 5000, false)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT grp, COUNT(*), AVG(val) FROM t GROUP BY grp")
		if len(r.Rows) != 50 {
			b.Fatalf("want 50 groups, got %d", len(r.Rows))
		}
	}
}

func BenchmarkOrderByLimit(b *testing.B) {
	_, s := benchEngine(b, 5000, false)
	for i := 0; i < b.N; i++ {
		s.MustExec("SELECT name, val FROM t ORDER BY val DESC LIMIT 10")
	}
}

// BenchmarkSelectRangeScan is the 10k-row full-scan baseline for a range
// predicate: without an ordered index every BETWEEN walks the whole table.
func BenchmarkSelectRangeScan(b *testing.B) {
	_, s := benchEngine(b, 10_000, false)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT COUNT(*) FROM t WHERE grp BETWEEN 3 AND 7")
		if r.Rows[0][0].I == 0 {
			b.Fatal("no rows matched")
		}
	}
}

// BenchmarkSelectRangeIndexed runs the same BETWEEN through the index's
// ordered face: only the in-range rows are visited. The >=10x gap against
// BenchmarkSelectRangeScan is this PR's acceptance criterion.
func BenchmarkSelectRangeIndexed(b *testing.B) {
	_, s := benchEngine(b, 10_000, true)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT COUNT(*) FROM t WHERE grp BETWEEN 3 AND 7")
		if r.Rows[0][0].I == 0 {
			b.Fatal("no rows matched")
		}
	}
}

// BenchmarkTopKLimit fuses ORDER BY + LIMIT into the ordered PK scan: the
// scan stops after 10 rows instead of materializing and sorting 10k.
// Compare BenchmarkOrderByLimit, which sorts the whole table.
func BenchmarkTopKLimit(b *testing.B) {
	_, s := benchEngine(b, 10_000, false)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT id, name FROM t ORDER BY id DESC LIMIT 10")
		if len(r.Rows) != 10 {
			b.Fatal("top-k row count wrong")
		}
	}
}

// BenchmarkOrderByIndexed emits a full table in index order (no LIMIT):
// the sort stage is skipped but every row is still materialized.
func BenchmarkOrderByIndexed(b *testing.B) {
	_, s := benchEngine(b, 10_000, true)
	for i := 0; i < b.N; i++ {
		r := s.MustExec("SELECT id FROM t ORDER BY grp")
		if len(r.Rows) != 10_000 {
			b.Fatal("ordered scan row count wrong")
		}
	}
}

// BenchmarkUpdateByPK measures the planned write path: a PK point UPDATE
// visits exactly one row on the 10k-row table instead of scanning all of
// them. rows-visited/op is reported as a custom metric; the ≥10× reduction
// against the old full-scan path is asserted in TestUpdateByPKVisitsOneRow.
func BenchmarkUpdateByPK(b *testing.B) {
	e, s := benchEngine(b, 10_000, false)
	before := e.DMLRowsVisited()
	for i := 0; i < b.N; i++ {
		s.MustExec(fmt.Sprintf("UPDATE t SET val = val + 1 WHERE id = %d", i%10_000))
	}
	b.ReportMetric(float64(e.DMLRowsVisited()-before)/float64(b.N), "rows-visited/op")
}

// BenchmarkUpdateFullScan is the unindexed counterpart — the predicate
// matches nothing, so all the time goes into visiting every live row.
func BenchmarkUpdateFullScan(b *testing.B) {
	e, s := benchEngine(b, 10_000, false)
	before := e.DMLRowsVisited()
	for i := 0; i < b.N; i++ {
		s.MustExec("UPDATE t SET val = 0 WHERE val < -1")
	}
	b.ReportMetric(float64(e.DMLRowsVisited()-before)/float64(b.N), "rows-visited/op")
}

// BenchmarkDeleteIndexed deletes through the hash index: each iteration
// inserts one row into an otherwise-empty bucket, then deletes it by the
// indexed column.
func BenchmarkDeleteIndexed(b *testing.B) {
	e, s := benchEngine(b, 10_000, true)
	before := e.DMLRowsVisited()
	for i := 0; i < b.N; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 77, 0.0, 'x')", 100_000+i))
		s.MustExec("DELETE FROM t WHERE grp = 77")
	}
	b.ReportMetric(float64(e.DMLRowsVisited()-before)/float64(b.N), "rows-visited/op")
}

// BenchmarkPlanCacheHit executes one hot statement: every iteration after
// the first skips the lexer, parser, and planner. Compare with
// BenchmarkPlanCacheCold, which varies the SQL text so each execution
// parses and plans from scratch.
func BenchmarkPlanCacheHit(b *testing.B) {
	e, s := benchEngine(b, 5000, true)
	const q = "SELECT name FROM t WHERE grp = 7 ORDER BY val DESC LIMIT 5"
	s.MustExec(q) // warm the cache
	h0, _ := e.PlanCacheStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MustExec(q)
	}
	b.StopTimer()
	if h1, _ := e.PlanCacheStats(); h1-h0 != int64(b.N) {
		b.Fatalf("want %d cache hits, got %d", b.N, h1-h0)
	}
}

func BenchmarkPlanCacheCold(b *testing.B) {
	_, s := benchEngine(b, 5000, true)
	for i := 0; i < b.N; i++ {
		s.MustExec(fmt.Sprintf("SELECT name FROM t WHERE grp = 7 ORDER BY val DESC LIMIT %d", 5+i))
	}
}

func BenchmarkTransactionCommit(b *testing.B) {
	_, s := benchEngine(b, 1000, false)
	for i := 0; i < b.N; i++ {
		s.MustExec("BEGIN")
		s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1, 1.0, 'x')", 100_000+i))
		s.MustExec(fmt.Sprintf("UPDATE t SET val = val + 1 WHERE id = %d", 100_000+i))
		s.MustExec("COMMIT")
	}
}

func BenchmarkTransactionRollback(b *testing.B) {
	_, s := benchEngine(b, 1000, false)
	for i := 0; i < b.N; i++ {
		s.MustExec("BEGIN")
		s.MustExec("UPDATE t SET val = val * 1.01 WHERE grp < 10")
		s.MustExec("ROLLBACK")
	}
}

// durableBenchEngine opens a WAL-backed engine in a fresh temp dir with one
// table, cleaned up when the benchmark ends.
func durableBenchEngine(b *testing.B, mode SyncMode) *Engine {
	b.Helper()
	e, err := OpenEngine(b.TempDir(), Options{Sync: mode, CheckpointEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = e.Close() })
	e.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY, val REAL)`)
	b.ResetTimer()
	return e
}

// BenchmarkCommitDurableAlways is the single-fsync baseline: every commit
// pays its own fsync before it is acknowledged.
func BenchmarkCommitDurableAlways(b *testing.B) {
	e := durableBenchEngine(b, SyncAlways)
	s := e.NewSession("root")
	for i := 0; i < b.N; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", i))
	}
}

// BenchmarkCommitDurableBatch measures group commit under concurrency:
// parallel sessions enqueue commits and share fsyncs, but each still waits
// for its group's fsync before returning.
func BenchmarkCommitDurableBatch(b *testing.B) {
	e := durableBenchEngine(b, SyncBatch)
	var next atomic.Int64
	// ~16 committing goroutines regardless of GOMAXPROCS (RunParallel spawns
	// p*GOMAXPROCS): group commit is about concurrent *commits*, not CPU
	// parallelism.
	b.SetParallelism(max(1, (16+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
	b.RunParallel(func(pb *testing.PB) {
		s := e.NewSession("root")
		for pb.Next() {
			s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", next.Add(1)))
		}
	})
}

// BenchmarkCommitDurableOff writes commits to the OS page cache only.
func BenchmarkCommitDurableOff(b *testing.B) {
	e := durableBenchEngine(b, SyncOff)
	s := e.NewSession("root")
	for i := 0; i < b.N; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", i))
	}
}
