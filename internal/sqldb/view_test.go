package sqldb

import (
	"strings"
	"testing"
)

func TestCreateAndQueryView(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE VIEW cheap_items AS SELECT name, price FROM items WHERE price < 20`)
	r := mustQuery(t, s, `SELECT * FROM cheap_items ORDER BY price`)
	if len(r.Rows) != 3 {
		t.Fatalf("view rows = %d, want 3: %v", len(r.Rows), r.Rows)
	}
	// Views compose with filters, aggregates and aliases.
	r = mustQuery(t, s, `SELECT COUNT(*) FROM cheap_items WHERE price > 5`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("filtered view count wrong: %v", r.Rows[0][0])
	}
	r = mustQuery(t, s, `SELECT c.name FROM cheap_items c ORDER BY c.name LIMIT 1`)
	if r.Rows[0][0].S != "mug" {
		t.Fatalf("aliased view wrong: %v", r.Rows)
	}
}

func TestViewReflectsBaseTableChanges(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE VIEW clothes AS SELECT name FROM items WHERE category = 'clothes'`)
	before := mustQuery(t, s, `SELECT COUNT(*) FROM clothes`).Rows[0][0].I
	s.MustExec(`INSERT INTO items (id, name, category) VALUES (99, 'coat', 'clothes')`)
	after := mustQuery(t, s, `SELECT COUNT(*) FROM clothes`).Rows[0][0].I
	if after != before+1 {
		t.Fatalf("view is stale: %d -> %d", before, after)
	}
}

func TestViewAggregateDefinition(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE VIEW cat_stats AS SELECT category, COUNT(*) AS n, AVG(price) AS avg_price FROM items GROUP BY category`)
	r := mustQuery(t, s, `SELECT category, n FROM cat_stats ORDER BY n DESC`)
	if len(r.Rows) != 2 || r.Rows[0][1].I != 3 {
		t.Fatalf("aggregate view wrong: %v", r.Rows)
	}
}

func TestDropView(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE VIEW v1 AS SELECT id FROM items`)
	s.MustExec(`DROP VIEW v1`)
	if _, err := s.Exec(`SELECT * FROM v1`); err == nil {
		t.Fatal("dropped view still queryable")
	}
	if _, err := s.Exec(`DROP VIEW v1`); err == nil {
		t.Fatal("dropping a missing view must error")
	}
	s.MustExec(`DROP VIEW IF EXISTS v1`)
}

func TestViewNameCollisions(t *testing.T) {
	_, s := newTestEngine(t)
	if _, err := s.Exec(`CREATE VIEW items AS SELECT id FROM sales`); err == nil {
		t.Fatal("view must not shadow a table")
	}
	s.MustExec(`CREATE VIEW v1 AS SELECT id FROM items`)
	if _, err := s.Exec(`CREATE TABLE v1 (a INT PRIMARY KEY)`); err == nil {
		t.Fatal("table must not shadow a view")
	}
	if _, err := s.Exec(`CREATE VIEW v1 AS SELECT id FROM items`); err == nil {
		t.Fatal("duplicate view must error")
	}
}

func TestViewTransactionRollback(t *testing.T) {
	e, s := newTestEngine(t)
	s.MustExec(`BEGIN`)
	s.MustExec(`CREATE VIEW tmpv AS SELECT id FROM items`)
	s.MustExec(`ROLLBACK`)
	if _, ok := e.ViewByName("tmpv"); ok {
		t.Fatal("rolled-back CREATE VIEW persisted")
	}
	s.MustExec(`CREATE VIEW keeper AS SELECT id FROM items`)
	s.MustExec(`BEGIN`)
	s.MustExec(`DROP VIEW keeper`)
	s.MustExec(`ROLLBACK`)
	if _, ok := e.ViewByName("keeper"); !ok {
		t.Fatal("rolled-back DROP VIEW lost the view")
	}
}

func TestViewPrivileges(t *testing.T) {
	e, s := newTestEngine(t)
	s.MustExec(`CREATE VIEW item_names AS SELECT name FROM items`)
	// A user granted SELECT on the view but not the table can use the view
	// (owner-style view execution) but not the table.
	e.Grants().Grant("viewer", ActionSelect, "item_names")
	viewer := e.NewSession("viewer")
	if _, err := viewer.Exec(`SELECT * FROM item_names`); err != nil {
		t.Fatalf("view access should be allowed: %v", err)
	}
	if _, err := viewer.Exec(`SELECT * FROM items`); err == nil {
		t.Fatal("base table access should be denied")
	}
	// Creating a view requires SELECT on its underlying tables.
	e.Grants().Grant("builder", ActionCreate, "*")
	builder := e.NewSession("builder")
	if _, err := builder.Exec(`CREATE VIEW sneaky AS SELECT * FROM items`); err == nil {
		t.Fatal("view creation without SELECT on base must be denied")
	}
}

func TestViewSQLRoundTrip(t *testing.T) {
	e, s := newTestEngine(t)
	def := `CREATE VIEW v2 AS SELECT category, COUNT(*) AS n FROM items WHERE price > 5 GROUP BY category ORDER BY n DESC LIMIT 3`
	s.MustExec(def)
	v, _ := e.ViewByName("v2")
	rendered := ViewSQL(v)
	for _, want := range []string{"CREATE VIEW v2 AS SELECT", "GROUP BY category", "ORDER BY n DESC", "LIMIT 3"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered view missing %q:\n%s", want, rendered)
		}
	}
	// The rendered DDL parses back.
	if _, err := Parse(rendered); err != nil {
		t.Fatalf("rendered view does not parse: %v\n%s", err, rendered)
	}
}

func TestColumnGrantSQL(t *testing.T) {
	e, s := newTestEngine(t)
	s.MustExec(`GRANT SELECT (id, name) ON items TO peeker`)
	peeker := e.NewSession("peeker")
	peeker.MustExec(`SELECT id, name FROM items`)
	if _, err := peeker.Exec(`SELECT price FROM items`); err == nil {
		t.Fatal("column grant must exclude other columns")
	}
	if _, err := peeker.Exec(`SELECT * FROM items`); err == nil {
		t.Fatal("star must be rejected under column grants")
	}
}

func TestViewWithSubquery(t *testing.T) {
	e := NewEngine("viewsub")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT)`)
	s.MustExec(`CREATE TABLE u (id INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES (1, 1), (2, 2), (3, 1)`)
	s.MustExec(`INSERT INTO u VALUES (1), (3)`)
	s.MustExec(`CREATE VIEW vs AS SELECT id FROM t WHERE id IN (SELECT id FROM u)`)

	r := s.MustExec("SELECT COUNT(*) FROM vs")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("view with subquery returned %d rows, want 2", r.Rows[0][0].I)
	}
	// Scalar subqueries inside views work too.
	s.MustExec(`CREATE VIEW vmax AS SELECT id FROM t WHERE grp = (SELECT MAX(grp) FROM t)`)
	r = s.MustExec("SELECT id FROM vmax")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 2 {
		t.Fatalf("scalar-subquery view wrong: %v", r.Rows)
	}
}
