package sqldb

import (
	"errors"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"bridgescope/internal/sqldb/vfs"
)

// Fault-injection tests: disk-full and I/O errors during snapshot writes and
// WAL segment rotation must leave the engine in read-only degraded mode with
// a retryable error on writes — never a panic, a torn snapshot, or a lost
// acknowledged commit.

// openFaultEngine opens an engine on a fresh FaultFS and seeds it with a
// table and rows, returning the engine, its session, and the filesystem.
func openFaultEngine(t *testing.T, mode SyncMode) (*Engine, *Session, *vfs.FaultFS) {
	t.Helper()
	fs := vfs.NewFaultFS()
	e, err := OpenEngine("/db", Options{Sync: mode, CheckpointEvery: -1, FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	s.MustExec(`INSERT INTO t (id, v) VALUES (1, 'one'), (2, 'two')`)
	return e, s, fs
}

// expectDegraded asserts the engine refuses writes with a retryable
// degraded error while still serving reads.
func expectDegraded(t *testing.T, e *Engine, s *Session) {
	t.Helper()
	h := e.Health()
	if !h.Degraded {
		t.Fatalf("engine should be degraded, health = %+v", h)
	}
	_, err := s.Exec(`INSERT INTO t (id, v) VALUES (99, 'nope')`)
	if err == nil {
		t.Fatal("write succeeded on a degraded engine")
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("write error should wrap ErrDegraded, got: %v", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("degraded write refusal should be retryable, got: %v", err)
	}
	res, err := s.Exec(`SELECT id FROM t`)
	if err != nil {
		t.Fatalf("reads must keep working in degraded mode: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("read returned %d rows, want 2", len(res.Rows))
	}
}

// reopenAndCheck reopens the directory with no faults and verifies the two
// seeded rows survived whatever the fault did.
func reopenAndCheck(t *testing.T, fs *vfs.FaultFS, mode SyncMode) {
	t.Helper()
	fs.SetHook(nil)
	e, err := OpenEngine("/db", Options{Sync: mode, CheckpointEvery: -1, FS: fs})
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	defer e.Close()
	if h := e.Health(); h.Degraded {
		t.Fatalf("fresh engine should not inherit degraded state: %+v", h)
	}
	res := e.NewSession("root").MustExec(`SELECT id FROM t`)
	if len(res.Rows) != 2 {
		t.Fatalf("after reopen got %d rows, want 2", len(res.Rows))
	}
	if errs := e.CheckConsistency(); len(errs) > 0 {
		t.Fatalf("inconsistent after reopen: %v", errs)
	}
}

func TestSnapshotTmpWriteENOSPC(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpWrite && strings.HasSuffix(op.Path, ".tmp") {
			return &vfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	err := e.Checkpoint()
	if err == nil || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint should surface ENOSPC, got: %v", err)
	}
	expectDegraded(t, e, s)
	if h := e.Health(); h.LastCheckpointErr == "" || !strings.Contains(h.DegradedBy, "checkpoint") {
		t.Fatalf("health should record the checkpoint failure: %+v", h)
	}
	e.Close()

	// The failed snapshot must not have left a torn file that recovery
	// would load: the data comes back intact from the WAL.
	reopenAndCheck(t, fs, SyncAlways)
}

// TestSnapshotTornWriteNotLoaded injects a partial snapshot write (half the
// bytes land, then EIO): recovery must never load the torn file.
func TestSnapshotTornWriteNotLoaded(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpWrite && strings.HasSuffix(op.Path, ".tmp") {
			return &vfs.Fault{Err: syscall.EIO, Partial: op.N / 2}
		}
		return nil
	})
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint should fail on torn tmp write")
	}
	expectDegraded(t, e, s)
	e.Close()
	reopenAndCheck(t, fs, SyncAlways)
}

func TestSnapshotRenameEIO(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpRename && strings.HasSuffix(op.From, ".tmp") {
			return &vfs.Fault{Err: syscall.EIO}
		}
		return nil
	})
	err := e.Checkpoint()
	if err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("checkpoint should surface the rename EIO, got: %v", err)
	}
	expectDegraded(t, e, s)
	e.Close()

	// The orphaned snap-*.tmp must be swept on reopen.
	fs.SetHook(nil)
	reopenAndCheck(t, fs, SyncAlways)
	ents, err := fs.ReadDir("/db")
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, name := range ents {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("orphan tmp file %q survived reopen", name)
		}
	}
}

func TestWALRotationSyncEIO(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	// Fail the segment fsync that rotation issues before switching files.
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpSync && strings.Contains(op.Path, "wal-") {
			return &vfs.Fault{Err: syscall.EIO}
		}
		return nil
	})
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint should fail when rotation cannot sync the old segment")
	}
	expectDegraded(t, e, s)
	e.Close()
	reopenAndCheck(t, fs, SyncAlways)
}

func TestWALAppendENOSPCFailStop(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	var tripped atomic.Bool
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpWrite && strings.Contains(op.Path, "wal-") && tripped.CompareAndSwap(false, true) {
			return &vfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	_, err := s.Exec(`INSERT INTO t (id, v) VALUES (3, 'three')`)
	if err == nil {
		t.Fatal("commit should fail when the WAL append hits ENOSPC")
	}
	// The WAL fail-stops and the engine degrades: later writes are refused
	// upfront with the retryable degraded error. The failed commit itself
	// stays applied in memory (its error says "applied in memory but not
	// durable"), so reads see 3 rows until the reopen drops it.
	h := e.Health()
	if !h.Degraded || !strings.Contains(h.DegradedBy, "wal") {
		t.Fatalf("engine should be degraded by the wal, health = %+v", h)
	}
	_, werr := s.Exec(`INSERT INTO t (id, v) VALUES (99, 'nope')`)
	if !errors.Is(werr, ErrDegraded) || !IsRetryable(werr) {
		t.Fatalf("later writes should be refused with the retryable degraded error, got: %v", werr)
	}
	if res := s.MustExec(`SELECT id FROM t`); len(res.Rows) != 3 {
		t.Fatalf("in-memory state should still hold the non-durable commit, got %d rows", len(res.Rows))
	}
	e.Close()

	// The lost frame never reached the disk: only the durable rows return.
	reopenAndCheck(t, fs, SyncAlways)
}

// TestDegradedCommitRollsBack: a transaction that buffered writes before the
// engine degraded must roll back at COMMIT with a retryable error, leaving
// no partial effects.
func TestDegradedCommitRollsBack(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO t (id, v) VALUES (50, 'fifty')`)

	// Degrade the engine out from under the open transaction.
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpRename {
			return &vfs.Fault{Err: syscall.EIO}
		}
		return nil
	})
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint should fail")
	}
	fs.SetHook(nil)

	_, err := s.Exec(`COMMIT`)
	if err == nil || !errors.Is(err, ErrDegraded) {
		t.Fatalf("COMMIT of a dirty txn on a degraded engine should fail with ErrDegraded, got: %v", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("rolled-back commit should be retryable: %v", err)
	}
	res := s.MustExec(`SELECT id FROM t WHERE id = 50`)
	if len(res.Rows) != 0 {
		t.Fatal("rolled-back insert is visible")
	}
	e.Close()
	reopenAndCheck(t, fs, SyncAlways)
}

// TestDegradedAllowsReadOnlyTxn: BEGIN/SELECT/COMMIT with no writes must
// still work on a degraded engine.
func TestDegradedAllowsReadOnlyTxn(t *testing.T) {
	e, s, fs := openFaultEngine(t, SyncAlways)
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if op.Kind == vfs.OpRename {
			return &vfs.Fault{Err: syscall.EIO}
		}
		return nil
	})
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint should fail")
	}
	fs.SetHook(nil)

	s.MustExec(`BEGIN`)
	res := s.MustExec(`SELECT id FROM t`)
	if len(res.Rows) != 2 {
		t.Fatalf("read-only txn got %d rows, want 2", len(res.Rows))
	}
	if _, err := s.Exec(`COMMIT`); err != nil {
		t.Fatalf("read-only COMMIT should succeed on a degraded engine: %v", err)
	}
	e.Close()
}

// TestBackgroundCheckpointErrSurfaced: a background checkpoint failure is
// recorded in Health().LastCheckpointErr, and a later success clears it.
func TestBackgroundCheckpointErrSurfaced(t *testing.T) {
	fs := vfs.NewFaultFS()
	e, err := OpenEngine("/db", Options{Sync: SyncAlways, CheckpointEvery: -1, FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)

	var failing atomic.Bool
	failing.Store(true)
	fs.SetHook(func(op vfs.Op) *vfs.Fault {
		if failing.Load() && op.Kind == vfs.OpRename {
			return &vfs.Fault{Err: syscall.ENOSPC}
		}
		return nil
	})
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint should fail")
	}
	if h := e.Health(); h.LastCheckpointErr == "" {
		t.Fatal("LastCheckpointErr should record the failure")
	}
	// Degraded mode is sticky for writes, but Health must reflect a later
	// checkpoint outcome; this engine stays degraded so the error stays.
	failing.Store(false)
	if h := e.Health(); !h.Degraded || h.LastCheckpointErr == "" {
		t.Fatalf("health lost the failure record: %+v", h)
	}
}
