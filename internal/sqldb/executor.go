package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Exec parses and executes one SQL statement under the session's user. It is
// the cache-aware entry point: a hot (user, SQL) pair whose plan is still
// valid against the catalog version skips the lexer, parser, and planner
// entirely (the engine's prepared-statement layer, see plancache.go).
func (s *Session) Exec(sql string) (*Result, error) {
	// A forced-seq-scan or parallelism-off session neither serves nor
	// produces cached plans: cache entries are shared engine-wide, and an
	// optimized entry would defeat the forcing just as a forced entry would
	// pessimize everyone else.
	if !s.forceSeqScan && !s.noParallel {
		if ent, ok := s.engine.plans.lookup(s.user, sql); ok {
			if res, done, err := s.execCached(ent, sql); done {
				return res, err
			}
		}
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("syntax error: %w", err)
	}
	return s.execStmt(stmt, sql)
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error.
func (s *Session) ExecScript(sql string) ([]*Result, error) {
	stmts, err := ParseScript(sql)
	if err != nil {
		return nil, fmt.Errorf("syntax error: %w", err)
	}
	var out []*Result
	for _, st := range stmts {
		r, err := s.ExecStmt(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MustExec executes a statement and panics on error; intended for test and
// benchmark fixtures.
func (s *Session) MustExec(sql string) *Result {
	r, err := s.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("MustExec(%q): %v", sql, err))
	}
	return r
}

// isReadOnly classifies a statement for engine locking: read-only
// statements run under the shared engine lock so independent sessions can
// execute SELECTs (and EXPLAINs) in parallel; everything else serializes on
// the writer lock.
func isReadOnly(stmt Stmt) bool {
	switch st := stmt.(type) {
	case *SelectStmt:
		return true
	case *ExplainStmt:
		// Plain EXPLAIN only plans; EXPLAIN ANALYZE executes the inner
		// statement and inherits its lock class.
		if st.Analyze {
			return isReadOnly(st.Stmt)
		}
		return true
	}
	return false
}

// holdsEngineLock classifies writer statements by how they take the engine
// (heap/catalog) write lock. DML and transaction control hold only the
// writer mutex for the statement and take the engine lock for short version
// installation and commit-stamping critical sections, so concurrent readers
// never stall behind a long write statement. DDL and grants mutate the
// catalog in many places and keep the whole-statement exclusive lock.
func holdsEngineLock(stmt Stmt) bool {
	if ex, ok := stmt.(*ExplainStmt); ok && ex.Analyze {
		stmt = ex.Stmt
	}
	switch stmt.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt,
		*BeginStmt, *CommitStmt, *RollbackStmt:
		return false
	}
	return true
}

// ExecStmt executes a parsed statement. The session lock serializes
// statements on this session (its transaction state is single-stream, like
// a database connection); the engine lock is shared for read-only
// statements so distinct sessions execute SELECTs in parallel. With no SQL
// text to key on, pre-parsed statements never touch the plan cache.
func (s *Session) ExecStmt(stmt Stmt) (*Result, error) {
	return s.execStmt(stmt, "")
}

// execStmt is the cold execution path: plan fresh and, when sql is non-empty
// and the statement is cacheable, record the prepared form for next time.
// The durability wait happens here, after every lock is released: the commit
// is already in the WAL writer's batch, so concurrent committers pile into
// one group fsync instead of serializing it under the engine lock.
func (s *Session) execStmt(stmt Stmt, sql string) (*Result, error) {
	start := time.Now()
	res, tok, err := s.execStmtLocked(stmt, sql)
	if werr := tok.wait(); werr != nil && err == nil {
		err = fmt.Errorf("commit applied in memory but not durable: %w", werr)
	}
	// Latency and slow-query recording happen after every lock is released
	// and the durability wait is over, so the measured time is what the
	// client experienced and recording can never extend a critical section.
	s.noteStmtDone(stmt, sql, start, res, err)
	return res, err
}

func (s *Session) execStmtLocked(stmt Stmt, sql string) (*Result, *syncToken, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.engine
	readOnly := isReadOnly(stmt)
	engineLocked := false
	if readOnly {
		e.mu.RLock()
		defer e.mu.RUnlock()
	} else {
		// DML locks just the tables it touches (plus FK neighbors); DDL,
		// grants, and transaction control take the all-tables lock.
		unlock := e.lockForWrite(stmt)
		defer unlock()
		if holdsEngineLock(stmt) {
			engineLocked = true
			e.mu.Lock()
			defer e.mu.Unlock()
		}
	}
	// Establish the statement's read snapshot after the locks are held: the
	// transaction's fixed snapshot under snapshot isolation, a fresh view of
	// the commit clock otherwise.
	s.curView = s.stmtView()

	if err := s.checkStmtPrivileges(stmt); err != nil {
		return nil, nil, err
	}

	// Transaction control bypasses the statement undo scope.
	switch st := stmt.(type) {
	case *BeginStmt:
		if err := s.begin(st.Level); err != nil {
			return nil, nil, err
		}
		return &Result{Message: "BEGIN"}, nil, nil
	case *CommitStmt:
		tok, err := s.commitTx()
		if err != nil {
			return nil, nil, err
		}
		return &Result{Message: "COMMIT"}, tok, nil
	case *RollbackStmt:
		if err := s.rollbackTx(); err != nil {
			return nil, nil, err
		}
		return &Result{Message: "ROLLBACK"}, nil, nil
	}

	// A degraded engine is read-only: refuse write statements before they do
	// any memory work, so the heap never diverges from what the WAL can
	// honestly make durable. SELECT/EXPLAIN (and the transaction control
	// handled above) keep working.
	if !readOnly {
		if derr := e.checkWritable(); derr != nil {
			return nil, nil, derr
		}
	}

	// A transaction aborted by a write conflict refuses further statements
	// until it is rolled back (PostgreSQL's aborted-transaction state).
	if s.txn != nil && s.txn.aborted {
		return nil, nil, fmt.Errorf("current transaction is aborted by a write conflict; ROLLBACK and retry: %w", ErrWriteConflict)
	}

	var ent *cachedStmt
	if sql != "" {
		if ent = s.prepare(stmt); ent != nil {
			e.plans.misses.Add(1)
		}
	}
	s.beginStmt()
	var res *Result
	var err error
	if ent != nil {
		//sqlvet:ignore lockorder -- the channel waits runPrepared can reach are the parallel scanner's, which only runs for SELECTs, and those execute under e.mu.RLock (the e.mu.Lock branch above is taken only for DDL-class statements)
		res, err = s.runPrepared(ent)
	} else {
		//sqlvet:ignore lockorder -- same split as runPrepared: dispatch's blocking paths are the read-only parallel scan, never reached on the DDL branch that holds e.mu exclusively
		res, err = s.dispatch(stmt)
	}
	tok := s.endStmt(err, engineLocked)
	if s.grantTok != nil {
		// GRANT/REVOKE parked its WAL claim on the session; fold it into the
		// statement token so the durability wait happens after unlock.
		tok = joinTokens(tok, s.grantTok)
		s.grantTok = nil
	}
	s.noteConflict(err)
	if err == nil && ent != nil {
		e.plans.put(s.user, sql, ent)
	}
	return res, tok, err
}

// noteConflict records a serialization failure: the conflict counter ticks,
// and an open transaction is marked aborted — its snapshot is stale, so the
// only useful continuation is ROLLBACK and retry. Degraded-engine refusals
// are retryable too but are not conflicts: they neither count here nor
// poison the transaction (its snapshot is still good for reads).
func (s *Session) noteConflict(err error) {
	if err == nil || !errors.Is(err, ErrWriteConflict) {
		return
	}
	s.engine.writeConflicts.Add(1)
	if s.txn != nil {
		s.txn.aborted = true
		s.engine.metrics.txnAborts.Add(1)
	}
}

// execCached executes a plan-cache hit under the entry's lock class. done is
// false when the entry is stale (the catalog version moved since it was
// planned): the caller falls back to the cold path, which re-plans and
// replaces the entry. The version check happens under the engine lock, so a
// fresh entry cannot be invalidated by DDL mid-execution.
func (s *Session) execCached(ent *cachedStmt, sql string) (res *Result, done bool, err error) {
	start := time.Now()
	res, done, tok, err := s.execCachedLocked(ent, sql)
	if werr := tok.wait(); werr != nil && err == nil {
		err = fmt.Errorf("commit applied in memory but not durable: %w", werr)
	}
	if done {
		// A stale entry (done=false) falls through to the cold path, which
		// records the whole statement itself.
		s.noteStmtDone(ent.stmt, sql, start, res, err)
	}
	return res, done, err
}

func (s *Session) execCachedLocked(ent *cachedStmt, sql string) (res *Result, done bool, tok *syncToken, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.engine
	if ent.readOnly {
		e.mu.RLock()
		defer e.mu.RUnlock()
	} else {
		// Cacheable writers are DML, which never holds the engine lock for
		// the whole statement (see holdsEngineLock). The entry carries its
		// precomputed lock set, so a hit skips the catalog walk.
		unlock := e.lockForWriteNames(ent.stmt, ent.lockNames)
		defer unlock()
	}
	s.curView = s.stmtView()
	if ent.version != e.catalogVersion.Load() {
		// Evict rather than leave the stale entry riding the LRU: if the
		// cold path fails (table dropped), nothing would ever replace it.
		e.plans.remove(s.user, sql)
		return nil, false, nil, nil
	}
	e.plans.hits.Add(1)
	if !ent.readOnly {
		// Same read-only gate as the cold path: a degraded engine refuses
		// cached DML before any memory mutation.
		if derr := e.checkWritable(); derr != nil {
			return nil, true, nil, derr
		}
	}
	if s.txn != nil && s.txn.aborted {
		return nil, true, nil, fmt.Errorf("current transaction is aborted by a write conflict; ROLLBACK and retry: %w", ErrWriteConflict)
	}
	// Privileges are re-checked on every execution; a grant change also
	// bumps the catalog version, but direct Grants() mutations make that
	// bump advisory rather than load-bearing.
	if err := s.checkStmtPrivileges(ent.stmt); err != nil {
		return nil, true, nil, err
	}
	s.beginStmt()
	res, err = s.runPrepared(ent)
	tok = s.endStmt(err, false)
	s.noteConflict(err)
	return res, true, tok, err
}

// prepare builds the cacheable form of a statement pinned to the current
// catalog version: the SELECT pipeline plan or the UPDATE/DELETE row-match
// plan. INSERT caches as parsed-only (a hit still skips lexer and parser).
// Everything else (DDL, grants, EXPLAIN) returns nil and is never cached.
func (s *Session) prepare(stmt Stmt) *cachedStmt {
	if s.forceSeqScan || s.noParallel {
		return nil
	}
	ent := &cachedStmt{
		stmt:     stmt,
		readOnly: isReadOnly(stmt),
		version:  s.engine.catalogVersion.Load(),
	}
	switch st := stmt.(type) {
	case *SelectStmt:
		ent.sel = s.planSelect(st)
	case *UpdateStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil
		}
		ent.write = s.planWrite(st.Table, st.Where)
	case *DeleteStmt:
		if _, ok := s.engine.Table(st.Table); !ok {
			return nil
		}
		ent.write = s.planWrite(st.Table, st.Where)
	case *InsertStmt:
	default:
		return nil
	}
	if !ent.readOnly {
		// prepare runs with the statement's write locks already held, so the
		// catalog is stable; the names stay valid for the entry's lifetime
		// because any DDL bumps the catalog version and evicts it.
		ent.lockNames = s.engine.writeLockNames(stmt)
	}
	return ent
}

// runPrepared executes a prepared statement's stored plan. Plans and
// statement trees are immutable during execution, so one entry may run in
// many sessions at once (SELECT hits share the engine read lock).
func (s *Session) runPrepared(ent *cachedStmt) (*Result, error) {
	switch st := ent.stmt.(type) {
	case *SelectStmt:
		if err := s.checkColumnPrivileges(st); err != nil {
			return nil, err
		}
		return s.runSelectPlan(ent.sel, nil)
	case *UpdateStmt:
		return s.execUpdate(st, ent.write)
	case *DeleteStmt:
		return s.execDelete(st, ent.write)
	case *InsertStmt:
		return s.execInsert(st)
	}
	return nil, fmt.Errorf("unsupported statement type %T", ent.stmt)
}

func (s *Session) dispatch(stmt Stmt) (*Result, error) {
	switch st := stmt.(type) {
	case *SelectStmt:
		return s.execSelect(st, nil)
	case *ExplainStmt:
		if st.Analyze {
			return s.execExplainAnalyze(st)
		}
		plan, err := s.planStmt(st.Stmt)
		if err != nil {
			return nil, err
		}
		return plan.ExplainRows(), nil
	case *InsertStmt:
		return s.execInsert(st)
	case *UpdateStmt:
		return s.execUpdate(st, nil)
	case *DeleteStmt:
		return s.execDelete(st, nil)
	case *CreateTableStmt:
		return s.execCreateTable(st)
	case *DropTableStmt:
		return s.execDropTable(st)
	case *CreateViewStmt:
		return s.execCreateView(st)
	case *DropViewStmt:
		return s.execDropView(st)
	case *CreateIndexStmt:
		return s.execCreateIndex(st)
	case *AlterTableStmt:
		return s.execAlterTable(st)
	case *GrantStmt:
		return s.execGrant(st)
	case *RevokeStmt:
		return s.execRevoke(st)
	}
	return nil, fmt.Errorf("unsupported statement type %T", stmt)
}

// checkStmtPrivileges enforces database-side privileges before execution
// (the engine's native security layer; BridgeScope's tool-side verification
// in internal/core is an additional, earlier gate).
func (s *Session) checkStmtPrivileges(stmt Stmt) error {
	g := s.engine.grants
	switch st := stmt.(type) {
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return nil
	case *ExplainStmt:
		// Explaining a statement requires the privileges to run it.
		return s.checkStmtPrivileges(st.Stmt)
	case *GrantStmt, *RevokeStmt:
		if !g.IsSuperuser(s.user) {
			return &PermissionError{User: s.user, Action: ActionGrant, Object: "database"}
		}
		return nil
	case *CreateTableStmt:
		if !g.Has(s.user, ActionCreate, "*") {
			return &PermissionError{User: s.user, Action: ActionCreate, Object: st.Table}
		}
		return nil
	case *CreateViewStmt:
		if !g.Has(s.user, ActionCreate, "*") {
			return &PermissionError{User: s.user, Action: ActionCreate, Object: st.Name}
		}
		// Creating a view requires SELECT on its underlying tables.
		for _, tbl := range ReferencedTables(st.Query) {
			if !g.Has(s.user, ActionSelect, tbl) {
				return &PermissionError{User: s.user, Action: ActionSelect, Object: tbl}
			}
		}
		return nil
	case *DropViewStmt:
		if !g.Has(s.user, ActionDrop, st.Name) {
			return &PermissionError{User: s.user, Action: ActionDrop, Object: st.Name}
		}
		return nil
	case *CreateIndexStmt:
		if !g.Has(s.user, ActionCreate, "*") && !g.Has(s.user, ActionAlter, st.Table) {
			return &PermissionError{User: s.user, Action: ActionCreate, Object: st.Table}
		}
		return nil
	}
	action := stmt.StmtAction()
	for _, tbl := range ReferencedTables(stmt) {
		// Reads embedded in writes (subqueries) need SELECT; the main table
		// needs the statement action.
		need := action
		if _, ok := stmt.(*SelectStmt); !ok {
			if !strings.EqualFold(tbl, mainTable(stmt)) {
				need = ActionSelect
			}
		}
		if !g.Has(s.user, need, tbl) {
			return &PermissionError{User: s.user, Action: need, Object: tbl}
		}
	}
	return nil
}

func mainTable(stmt Stmt) string {
	switch st := stmt.(type) {
	case *InsertStmt:
		return st.Table
	case *UpdateStmt:
		return st.Table
	case *DeleteStmt:
		return st.Table
	case *DropTableStmt:
		return st.Table
	case *AlterTableStmt:
		return st.Table
	}
	return ""
}

// rowSet is an intermediate relation: qualified column names plus rows.
type rowSet struct {
	cols []string
	rows [][]Value
}

func (s *Session) scanTable(name, alias string) (*rowSet, error) {
	t, ok := s.engine.Table(name)
	if !ok {
		// Views expand to their stored query's result, aliased under the
		// view's name (owner-style privileges: the outer statement needed
		// SELECT on the view itself, not on its underlying tables).
		if v, isView := s.engine.ViewByName(name); isView {
			return s.scanView(v, alias)
		}
		return nil, &NotFoundError{Kind: "table", Name: name}
	}
	q := strings.ToLower(alias)
	if q == "" {
		q = strings.ToLower(name)
	}
	// Preallocate to the table's estimated live size: a seq scan emits
	// about RowCount rows, so growth reallocations are pure waste on large
	// tables.
	rs := &rowSet{
		cols: make([]string, 0, len(t.Columns)),
		rows: make([][]Value, 0, t.RowCount()),
	}
	for _, c := range t.Columns {
		rs.cols = append(rs.cols, q+"."+strings.ToLower(c.Name))
	}
	_ = t.visibleRows(s.curView, func(_ *rowEntry, rv *rowVersion) error {
		rs.rows = append(rs.rows, rv.vals)
		return nil
	})
	s.engine.scanRowsVisited.Add(int64(len(rs.rows)))
	return rs, nil
}

// scanView materializes a view into a rowSet. The stored AST is shared
// across sessions, which is safe because execution never mutates statement
// trees (subqueries run through the Env's session, see Env.sess).
func (s *Session) scanView(v *View, alias string) (*rowSet, error) {
	res, err := s.execSelect(v.Query, nil)
	if err != nil {
		return nil, fmt.Errorf("view %q: %w", v.Name, err)
	}
	qual := strings.ToLower(alias)
	if qual == "" {
		qual = strings.ToLower(v.Name)
	}
	rs := &rowSet{}
	for _, c := range res.Columns {
		rs.cols = append(rs.cols, qual+"."+strings.ToLower(c))
	}
	rs.rows = res.Rows
	return rs, nil
}

// execSelect runs a SELECT and returns its result. outer provides the
// enclosing row for correlated subqueries.
func (s *Session) execSelect(st *SelectStmt, outer *Env) (*Result, error) {
	if err := s.checkColumnPrivileges(st); err != nil {
		return nil, err
	}
	// Lower the statement into a plan (scan/index-scan selection, predicate
	// pushdown, join strategy) and run it.
	return s.runSelectPlan(s.planSelect(st), outer)
}

// runSelectPlan executes a SELECT plan — freshly built or served from the
// plan cache — through the source tree and the projection/aggregation
// pipeline above it.
func (s *Session) runSelectPlan(plan *SelectPlan, outer *Env) (*Result, error) {
	st := plan.Stmt

	// FROM-less SELECT evaluates once against the outer env.
	if plan.Source == nil {
		env := &Env{outer: outer, sess: s}
		cols, row, err := projectRow(st.Items, env, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Columns: cols, Rows: [][]Value{row}}, nil
	}

	src, err := s.runSource(plan.Source, outer)
	if err != nil {
		return nil, err
	}

	// Residual predicate: conjuncts the planner could not push into the
	// source tree (multi-source, correlated, or subquery conditions).
	filtered, err := s.applyFilter(plan.Residual, src, outer)
	if err != nil {
		return nil, err
	}

	aggregated := len(st.GroupBy) > 0 || selectHasAggregate(st)
	var outCols []string
	var outRows [][]Value
	var orderEnvs []*Env
	// Row envs are only kept for the sort stage; an ordered scan that
	// already emits in ORDER BY order (SortPushed) doesn't need them.
	needEnvs := len(st.OrderBy) > 0 && !plan.SortPushed

	if aggregated {
		groups, err := s.groupRows(st, filtered, outer)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			env := &Env{cols: toEnvCols(filtered.cols), vals: g.firstRow, agg: g.agg, outer: outer, sess: s}
			if st.Having != nil {
				hv, err := st.Having.Eval(env)
				if err != nil {
					return nil, err
				}
				if hv.IsNull() || !hv.Truthy() {
					continue
				}
			}
			cols, row, err := projectRow(st.Items, env, filtered.cols)
			if err != nil {
				return nil, err
			}
			outCols = row2cols(outCols, cols)
			outRows = append(outRows, row)
			if needEnvs {
				orderEnvs = append(orderEnvs, env)
			}
		}
		if len(outCols) == 0 {
			cols, err := projectColsOnly(st.Items, filtered.cols)
			if err != nil {
				return nil, err
			}
			outCols = cols
		}
	} else {
		projected := false
		// The sort stage needs per-row envs, which the batched projection
		// does not keep — ORDER BY (unless pushed) stays row-at-a-time.
		if !needEnvs {
			cols, rows, handled, err := s.parProject(st.Items, filtered, outer)
			if err != nil {
				return nil, err
			}
			if handled {
				outCols, outRows = cols, rows
				projected = true
			}
		}
		if !projected {
			outRows = make([][]Value, 0, len(filtered.rows))
			envCols := toEnvCols(filtered.cols)
			for _, vals := range filtered.rows {
				env := &Env{cols: envCols, vals: vals, outer: outer, sess: s}
				cols, row, err := projectRow(st.Items, env, filtered.cols)
				if err != nil {
					return nil, err
				}
				outCols = row2cols(outCols, cols)
				outRows = append(outRows, row)
				if needEnvs {
					orderEnvs = append(orderEnvs, env)
				}
			}
		}
		if len(outCols) == 0 {
			cols, err := projectColsOnly(st.Items, filtered.cols)
			if err != nil {
				return nil, err
			}
			outCols = cols
		}
	}

	if st.Distinct {
		outRows, orderEnvs = s.distinctRows(outRows, orderEnvs)
	}

	// SortPushed plans emit rows in ORDER BY order straight from the
	// ordered index scan; the sort stage is skipped exactly as EXPLAIN
	// shows (no Sort node in the tree).
	if len(st.OrderBy) > 0 && !plan.SortPushed {
		if err := orderRows(st.OrderBy, outCols, outRows, orderEnvs); err != nil {
			return nil, err
		}
	}

	outRows, err = s.applyLimitOffset(st, outRows)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: outCols, Rows: outRows}, nil
}

func row2cols(existing, cols []string) []string {
	if existing == nil {
		return cols
	}
	return existing
}

func toEnvCols(qualified []string) []envCol {
	out := make([]envCol, len(qualified))
	for i, q := range qualified {
		tbl, name := "", q
		if j := strings.IndexByte(q, '.'); j >= 0 {
			tbl, name = q[:j], q[j+1:]
		}
		out[i] = envCol{table: tbl, name: name}
	}
	return out
}

func (s *Session) joinSets(left, right *rowSet, ref TableRef, outer *Env) (*rowSet, error) {
	out := &rowSet{cols: append(append([]string{}, left.cols...), right.cols...)}
	envCols := toEnvCols(out.cols)

	// Hash-join fast path for INNER JOIN on a simple column equality. The
	// build side preallocates both the bucket map and a shared index arena
	// (one int per build row), so building allocates O(1) slices instead of
	// one per distinct key.
	if ref.JoinKind == JoinInner && ref.On != nil {
		if li, ri, ok := equiJoinCols(ref.On, left.cols, right.cols); ok {
			if workers, slots, pok := s.parallelEligible(len(left.rows)+len(right.rows), outer); pok {
				return parHashJoin(out, left, right, li, ri, workers, slots), nil
			}
			ht := make(map[string][]int, len(right.rows))
			arena := make([]int, 0, len(right.rows))
			for idx, rrow := range right.rows {
				k := rrow[ri].Key()
				if b, hit := ht[k]; hit {
					ht[k] = append(b, idx)
				} else {
					arena = append(arena, idx)
					ht[k] = arena[len(arena)-1 : len(arena) : len(arena)]
				}
			}
			out.rows = make([][]Value, 0, len(left.rows))
			for _, lrow := range left.rows {
				lv := lrow[li]
				if lv.IsNull() {
					continue
				}
				for _, idx := range ht[lv.Key()] {
					combined := make([]Value, 0, len(lrow)+len(right.rows[idx]))
					combined = append(combined, lrow...)
					combined = append(combined, right.rows[idx]...)
					out.rows = append(out.rows, combined)
				}
			}
			return out, nil
		}
	}

	for _, lrow := range left.rows {
		matched := false
		for _, rrow := range right.rows {
			combined := make([]Value, 0, len(lrow)+len(rrow))
			combined = append(combined, lrow...)
			combined = append(combined, rrow...)
			if ref.On != nil {
				env := &Env{cols: envCols, vals: combined, outer: outer, sess: s}
				ov, err := ref.On.Eval(env)
				if err != nil {
					return nil, err
				}
				if ov.IsNull() || !ov.Truthy() {
					continue
				}
			}
			matched = true
			out.rows = append(out.rows, combined)
		}
		if ref.JoinKind == JoinLeft && !matched {
			combined := make([]Value, 0, len(lrow)+len(right.cols))
			combined = append(combined, lrow...)
			for range right.cols {
				combined = append(combined, Null())
			}
			out.rows = append(out.rows, combined)
		}
	}
	return out, nil
}

// equiJoinCols recognizes `a.x = b.y` ON clauses and resolves the two sides
// to left/right column positions.
func equiJoinCols(on Expr, leftCols, rightCols []string) (int, int, bool) {
	be, ok := on.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return 0, 0, false
	}
	lc, ok1 := be.Left.(*ColumnRef)
	rc, ok2 := be.Right.(*ColumnRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	li := resolveIn(lc, leftCols)
	ri := resolveIn(rc, rightCols)
	if li >= 0 && ri >= 0 {
		return li, ri, true
	}
	// The ON clause may name them in the other order.
	li = resolveIn(rc, leftCols)
	ri = resolveIn(lc, rightCols)
	if li >= 0 && ri >= 0 {
		return li, ri, true
	}
	return 0, 0, false
}

func resolveIn(c *ColumnRef, cols []string) int {
	want := strings.ToLower(c.Name)
	qual := strings.ToLower(c.Table)
	hit := -1
	for i, q := range cols {
		tbl, name := "", q
		if j := strings.IndexByte(q, '.'); j >= 0 {
			tbl, name = q[:j], q[j+1:]
		}
		if name != want {
			continue
		}
		if qual != "" && tbl != qual {
			continue
		}
		if hit >= 0 {
			return -1 // ambiguous
		}
		hit = i
	}
	return hit
}

// applyFilter filters a rowSet by a predicate; a nil predicate passes rows
// through unchanged.
func (s *Session) applyFilter(cond Expr, src *rowSet, outer *Env) (*rowSet, error) {
	if cond == nil {
		return src, nil
	}
	envCols := toEnvCols(src.cols)
	out := &rowSet{cols: src.cols}
	for _, vals := range src.rows {
		env := &Env{cols: envCols, vals: vals, outer: outer, sess: s}
		v, err := cond.Eval(env)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Truthy() {
			out.rows = append(out.rows, vals)
		}
	}
	return out, nil
}

// indexableEq finds a top-level `col = literal` conjunct and resolves the
// column position.
func indexableEq(where Expr, cols []string) (int, Value, bool) {
	switch e := where.(type) {
	case *BinaryExpr:
		switch e.Op {
		case "AND":
			if c, v, ok := indexableEq(e.Left, cols); ok {
				return c, v, ok
			}
			return indexableEq(e.Right, cols)
		case "=":
			if cr, ok := e.Left.(*ColumnRef); ok {
				if lit, ok2 := e.Right.(*Literal); ok2 {
					if i := resolveIn(cr, cols); i >= 0 {
						return i, lit.Val, true
					}
				}
			}
			if cr, ok := e.Right.(*ColumnRef); ok {
				if lit, ok2 := e.Left.(*Literal); ok2 {
					if i := resolveIn(cr, cols); i >= 0 {
						return i, lit.Val, true
					}
				}
			}
		}
	}
	return 0, Value{}, false
}

func selectHasAggregate(st *SelectStmt) bool {
	for _, it := range st.Items {
		if it.Expr != nil && HasAggregate(it.Expr) {
			return true
		}
	}
	if st.Having != nil && HasAggregate(st.Having) {
		return true
	}
	for _, k := range st.OrderBy {
		if HasAggregate(k.Expr) {
			return true
		}
	}
	return false
}

type groupResult struct {
	firstRow []Value
	rows     [][]Value
	agg      map[Expr]Value
}

// collectAggNodes gathers every distinct aggregate call node in the select
// list, HAVING, and ORDER BY. Group results are keyed by these original node
// pointers (see Env.agg), so the set must be collected from the statement
// tree itself, never from a rewritten copy.
func collectAggNodes(st *SelectStmt) []*FuncExpr {
	var aggNodes []*FuncExpr
	seen := map[*FuncExpr]bool{}
	scan := func(e Expr) {
		walkExpr(e, func(x Expr) {
			if f, ok := x.(*FuncExpr); ok && f.IsAggregate() && !seen[f] {
				seen[f] = true
				aggNodes = append(aggNodes, f)
			}
		})
	}
	for _, it := range st.Items {
		scan(it.Expr)
	}
	scan(st.Having)
	for _, k := range st.OrderBy {
		scan(k.Expr)
	}
	return aggNodes
}

// groupRows partitions rows by the GROUP BY keys and computes every
// aggregate node once per group.
func (s *Session) groupRows(st *SelectStmt, src *rowSet, outer *Env) ([]*groupResult, error) {
	if groups, handled, err := s.parGroupRows(st, src, outer); handled {
		return groups, err
	}
	envCols := toEnvCols(src.cols)
	aggNodes := collectAggNodes(st)

	keyed := map[string]*groupResult{}
	var order []string
	for _, vals := range src.rows {
		env := &Env{cols: envCols, vals: vals, outer: outer, sess: s}
		var kb strings.Builder
		for _, ge := range st.GroupBy {
			gv, err := ge.Eval(env)
			if err != nil {
				return nil, err
			}
			writeKeySegment(&kb, gv)
		}
		k := kb.String()
		g, ok := keyed[k]
		if !ok {
			g = &groupResult{firstRow: vals}
			keyed[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, vals)
	}
	// A query like SELECT COUNT(*) FROM empty (no GROUP BY) yields one
	// group over zero rows.
	if len(order) == 0 && len(st.GroupBy) == 0 {
		g := &groupResult{firstRow: make([]Value, len(src.cols))}
		for i := range g.firstRow {
			g.firstRow[i] = Null()
		}
		keyed[""] = g
		order = append(order, "")
	}

	var out []*groupResult
	for _, k := range order {
		g := keyed[k]
		g.agg = map[Expr]Value{}
		for _, f := range aggNodes {
			v, err := s.computeAggregate(f, g.rows, envCols, outer)
			if err != nil {
				return nil, err
			}
			g.agg[f] = v
		}
		out = append(out, g)
	}
	return out, nil
}

func (s *Session) computeAggregate(f *FuncExpr, rows [][]Value, envCols []envCol, outer *Env) (Value, error) {
	if f.Star {
		if f.Name != "COUNT" {
			return Value{}, fmt.Errorf("%s(*) is not supported", f.Name)
		}
		return NewInt(int64(len(rows))), nil
	}
	if len(f.Args) != 1 {
		return Value{}, fmt.Errorf("%s expects exactly one argument", f.Name)
	}
	var vals []Value
	distinct := map[string]bool{}
	for _, row := range rows {
		env := &Env{cols: envCols, vals: row, outer: outer, sess: s}
		v, err := f.Args[0].Eval(env)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.Key()
			if distinct[k] {
				continue
			}
			distinct[k] = true
		}
		vals = append(vals, v)
	}
	return finishAggregate(f, vals)
}

// finishAggregate folds the collected (non-NULL, DISTINCT-deduped) argument
// values according to the aggregate's semantics. Shared by the row-at-a-time
// and batched group paths so numeric behavior (e.g. float summation order)
// is decided in exactly one place.
func finishAggregate(f *FuncExpr, vals []Value) (Value, error) {
	switch f.Name {
	case "COUNT":
		return NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			fv, ok := v.AsFloat()
			if !ok {
				return Value{}, fmt.Errorf("%s requires numeric values, got %s", f.Name, v.Kind)
			}
			if v.Kind != KindInt {
				allInt = false
			}
			sum += fv
		}
		if f.Name == "AVG" {
			return NewFloat(sum / float64(len(vals))), nil
		}
		if allInt {
			return NewInt(int64(sum)), nil
		}
		return NewFloat(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := Compare(v, best)
			if err != nil {
				return Value{}, err
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("unknown aggregate %s", f.Name)
}

// projectRow evaluates the select list against one row environment.
func projectRow(items []SelectItem, env *Env, srcCols []string) ([]string, []Value, error) {
	var cols []string
	var row []Value
	for _, it := range items {
		if it.Star {
			for i, q := range srcCols {
				tbl, name := splitQualified(q)
				if it.Table != "" && !strings.EqualFold(tbl, it.Table) {
					continue
				}
				cols = append(cols, name)
				row = append(row, env.vals[i])
			}
			continue
		}
		v, err := it.Expr.Eval(env)
		if err != nil {
			return nil, nil, err
		}
		cols = append(cols, itemName(it))
		row = append(row, v)
	}
	return cols, row, nil
}

// projectColsOnly computes output column names for an empty result.
func projectColsOnly(items []SelectItem, srcCols []string) ([]string, error) {
	var cols []string
	for _, it := range items {
		if it.Star {
			for _, q := range srcCols {
				tbl, name := splitQualified(q)
				if it.Table != "" && !strings.EqualFold(tbl, it.Table) {
					continue
				}
				cols = append(cols, name)
			}
			continue
		}
		cols = append(cols, itemName(it))
	}
	return cols, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*ColumnRef); ok {
		return cr.Name
	}
	return it.Expr.String()
}

func splitQualified(q string) (table, name string) {
	if j := strings.IndexByte(q, '.'); j >= 0 {
		return q[:j], q[j+1:]
	}
	return "", q
}

func (s *Session) distinctRows(rows [][]Value, envs []*Env) ([][]Value, []*Env) {
	// Key computation is pure per-row work; precompute the keys in morsels
	// when the row count warrants it. The dedup loop itself stays
	// sequential, preserving first-appearance order.
	var parKeys []string
	if workers, slots, ok := s.parallelEligible(len(rows), nil); ok {
		parKeys = parDistinctKeys(rows, workers, slots)
	}
	seen := map[string]bool{}
	var outRows [][]Value
	var outEnvs []*Env
	for i, row := range rows {
		var k string
		if parKeys != nil {
			k = parKeys[i]
		} else {
			var kb strings.Builder
			for _, v := range row {
				writeKeySegment(&kb, v)
			}
			k = kb.String()
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		outRows = append(outRows, row)
		if envs != nil {
			outEnvs = append(outEnvs, envs[i])
		}
	}
	return outRows, outEnvs
}

// orderRows sorts rows in place by the ORDER BY keys. Keys may reference
// source columns (via the saved row envs), output aliases, or 1-based
// ordinals.
func orderRows(keys []OrderKey, outCols []string, rows [][]Value, envs []*Env) error {
	type sortKey struct{ vals []Value }
	sk := make([]sortKey, len(rows))
	lowerOut := make([]string, len(outCols))
	for i, c := range outCols {
		lowerOut[i] = strings.ToLower(c)
	}
	for i := range rows {
		for _, k := range keys {
			var v Value
			// Ordinal reference: ORDER BY 2.
			if lit, ok := k.Expr.(*Literal); ok && lit.Val.Kind == KindInt {
				idx := int(lit.Val.I) - 1
				if idx < 0 || idx >= len(rows[i]) {
					return fmt.Errorf("ORDER BY position %d is out of range", lit.Val.I)
				}
				v = rows[i][idx]
			} else {
				// Try output alias first, then the source environment.
				resolved := false
				if cr, ok := k.Expr.(*ColumnRef); ok && cr.Table == "" {
					for j, c := range lowerOut {
						if c == strings.ToLower(cr.Name) {
							v = rows[i][j]
							resolved = true
							break
						}
					}
				}
				if !resolved {
					ev, err := k.Expr.Eval(envs[i])
					if err != nil {
						// Fall back to alias-only resolution failure.
						return err
					}
					v = ev
				}
			}
			sk[i].vals = append(sk[i].vals, v)
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for ki, k := range keys {
			va, vb := sk[idx[a]].vals[ki], sk[idx[b]].vals[ki]
			c, null := compareForOrder(va, vb, k.Desc)
			if null {
				continue
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	// Apply the permutation.
	sortedRows := make([][]Value, len(rows))
	for i, j := range idx {
		sortedRows[i] = rows[j]
	}
	copy(rows, sortedRows)
	_ = sortErr
	return nil
}

// compareForOrder compares with PostgreSQL null ordering: NULL is treated
// as larger than every value, so NULLs sort last ascending and first
// descending (the desc parameter is kept for call-site symmetry; the
// caller's direction flip covers it). The desc branch used to return the
// inverted sign, which sorted NULLs last in both directions, contradicting
// both this comment and the ordered-index scan path. Returns null=true when
// both are NULL.
func compareForOrder(a, b Value, desc bool) (int, bool) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, true
	case a.IsNull():
		return 1, false
	case b.IsNull():
		return -1, false
	}
	c, err := Compare(a, b)
	if err != nil {
		return 0, true
	}
	return c, false
}

func (s *Session) applyLimitOffset(st *SelectStmt, rows [][]Value) ([][]Value, error) {
	evalInt := func(e Expr, what string) (int, error) {
		v, err := e.Eval(&Env{sess: s})
		if err != nil {
			return 0, err
		}
		if v.Kind != KindInt || v.I < 0 {
			return 0, fmt.Errorf("%s must be a non-negative integer", what)
		}
		return int(v.I), nil
	}
	if st.Offset != nil {
		n, err := evalInt(st.Offset, "OFFSET")
		if err != nil {
			return nil, err
		}
		if n >= len(rows) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if st.Limit != nil {
		n, err := evalInt(st.Limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < len(rows) {
			rows = rows[:n]
		}
	}
	return rows, nil
}

// checkColumnPrivileges enforces PostgreSQL-style column grants: when a
// user's SELECT on a table is restricted to named columns, referencing any
// other column (or `*`) is a permission error.
func (s *Session) checkColumnPrivileges(st *SelectStmt) error {
	g := s.engine.grants
	type restricted struct {
		alias   string
		table   string
		allowed map[string]bool
	}
	var rs []restricted
	for _, ref := range st.From {
		allowed := g.AllowedColumns(s.user, ActionSelect, ref.Table)
		if allowed == nil {
			continue
		}
		alias := strings.ToLower(ref.Alias)
		if alias == "" {
			alias = strings.ToLower(ref.Table)
		}
		rs = append(rs, restricted{alias: alias, table: ref.Table, allowed: allowed})
	}
	if len(rs) == 0 {
		return nil
	}
	for _, it := range st.Items {
		if it.Star {
			for _, r := range rs {
				if it.Table == "" || strings.EqualFold(it.Table, r.alias) {
					return &PermissionError{User: s.user, Action: ActionSelect,
						Object: r.table + ".*"}
				}
			}
		}
	}
	var bad error
	checkRef := func(e Expr) {
		walkExpr(e, func(x Expr) {
			cr, ok := x.(*ColumnRef)
			if !ok || bad != nil {
				return
			}
			for _, r := range rs {
				if cr.Table != "" && !strings.EqualFold(cr.Table, r.alias) {
					continue
				}
				// An unqualified ref may belong to another table; only
				// reject when this restricted table has the column.
				if t, ok := s.engine.Table(r.table); ok && t.ColIndex(cr.Name) < 0 {
					continue
				}
				if !r.allowed[strings.ToLower(cr.Name)] {
					bad = &PermissionError{User: s.user, Action: ActionSelect,
						Object: r.table + "." + cr.Name}
				}
			}
		})
	}
	for _, it := range st.Items {
		checkRef(it.Expr)
	}
	checkRef(st.Where)
	checkRef(st.Having)
	for _, k := range st.OrderBy {
		checkRef(k.Expr)
	}
	for _, ge := range st.GroupBy {
		checkRef(ge)
	}
	return bad
}
