package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// This file model-checks the engine: a long random sequence of inserts,
// updates, deletes, transactions, commits and rollbacks runs both against
// the engine and against a trivial in-memory model; after every barrier
// (commit/rollback/auto-commit) the two must agree exactly, and the PK map
// and indexes must stay consistent with the heap.

type modelRow struct {
	id int64 // PK
	v  int64
	s  string
}

type model struct {
	rows map[int64]modelRow
}

func (m *model) snapshot() map[int64]modelRow {
	out := make(map[int64]modelRow, len(m.rows))
	for k, v := range m.rows {
		out[k] = v
	}
	return out
}

func TestEngineMatchesModelUnderRandomOps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModelCheck(t, seed, 400)
		})
	}
}

func runModelCheck(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine("model")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)`)
	s.MustExec(`CREATE INDEX idx_v ON t (v)`)

	m := &model{rows: map[int64]modelRow{}}
	var pending map[int64]modelRow // state at txn start, nil when no txn

	for step := 0; step < steps; step++ {
		op := rng.Intn(100)
		switch {
		case op < 35: // insert
			id := int64(rng.Intn(60))
			v := int64(rng.Intn(10))
			str := fmt.Sprintf("s%d", rng.Intn(5))
			_, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, '%s')", id, v, str))
			_, exists := m.rows[id]
			if exists && err == nil {
				t.Fatalf("step %d: duplicate PK %d accepted", step, id)
			}
			if !exists && err != nil {
				t.Fatalf("step %d: valid insert rejected: %v", step, err)
			}
			if err == nil {
				m.rows[id] = modelRow{id: id, v: v, s: str}
			}
		case op < 55: // update by value predicate
			oldV := int64(rng.Intn(10))
			newV := int64(rng.Intn(10))
			res, err := s.Exec(fmt.Sprintf("UPDATE t SET v = %d WHERE v = %d", newV, oldV))
			if err != nil {
				t.Fatalf("step %d: update failed: %v", step, err)
			}
			n := 0
			for id, r := range m.rows {
				if r.v == oldV {
					r.v = newV
					m.rows[id] = r
					n++
				}
			}
			if res.Affected != n {
				t.Fatalf("step %d: update affected %d, model %d", step, res.Affected, n)
			}
		case op < 70: // delete by predicate
			v := int64(rng.Intn(10))
			res, err := s.Exec(fmt.Sprintf("DELETE FROM t WHERE v = %d", v))
			if err != nil {
				t.Fatalf("step %d: delete failed: %v", step, err)
			}
			n := 0
			for id, r := range m.rows {
				if r.v == v {
					delete(m.rows, id)
					n++
				}
			}
			if res.Affected != n {
				t.Fatalf("step %d: delete affected %d, model %d", step, res.Affected, n)
			}
		case op < 80: // begin
			if pending == nil {
				s.MustExec("BEGIN")
				pending = m.snapshot()
			}
		case op < 90: // commit
			if pending != nil {
				s.MustExec("COMMIT")
				pending = nil
			}
		default: // rollback
			if pending != nil {
				s.MustExec("ROLLBACK")
				m.rows = pending
				pending = nil
			}
		}
		// Outside transactions the engine must match the model exactly.
		if pending == nil {
			compareState(t, step, s, m)
		}
	}
	if pending != nil {
		s.MustExec("ROLLBACK")
		m.rows = pending
	}
	compareState(t, steps, s, m)
}

func compareState(t *testing.T, step int, s *Session, m *model) {
	t.Helper()
	r := s.MustExec("SELECT id, v, s FROM t ORDER BY id")
	if len(r.Rows) != len(m.rows) {
		t.Fatalf("step %d: engine has %d rows, model %d", step, len(r.Rows), len(m.rows))
	}
	ids := make([]int64, 0, len(m.rows))
	for id := range m.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		want := m.rows[id]
		got := r.Rows[i]
		if got[0].I != want.id || got[1].I != want.v || got[2].S != want.s {
			t.Fatalf("step %d: row %d mismatch: engine (%v,%v,%v) model %+v",
				step, i, got[0], got[1], got[2], want)
		}
	}
	// The index access path must agree with a full scan.
	for v := int64(0); v < 10; v++ {
		idx := s.MustExec(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE v = %d", v)).Rows[0][0].I
		n := int64(0)
		for _, row := range m.rows {
			if row.v == v {
				n++
			}
		}
		if idx != n {
			t.Fatalf("step %d: index count for v=%d is %d, model %d", step, v, idx, n)
		}
	}
}

// Property: Value Key equality is consistent with Compare equality for
// numeric values (the invariant indexes and GROUP BY rely on). Int/int
// comparison runs in int64 space, so the property holds over the FULL int64
// range; only int-vs-float unification is limited to the float64-exact
// range (|v| <= 2^53), like any engine comparing int64 against float64.
func TestValueKeyConsistencyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c, err := Compare(va, vb)
		if err != nil {
			return false
		}
		return (c == 0) == (va.Key() == vb.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	const exact = int64(1) << 53
	g := func(a int64) bool {
		// An integral float and the same int share one index key.
		v := a % exact
		return NewFloat(float64(v)).Key() == NewInt(v).Key()
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Int64s above 2^53 are indistinguishable as float64; Compare and Equal
// must not route both-int comparisons through floats, or WHERE id = <big>
// would match neighbouring ids and disagree with the exact PK-map keys.
func TestCompareInt64Above2p53(t *testing.T) {
	const base = int64(1) << 53 // 9007199254740992
	a, b := NewInt(base), NewInt(base+1)
	if float64(base) != float64(base+1) {
		t.Fatal("test premise broken: values distinguishable as float64")
	}
	if c, err := Compare(a, b); err != nil || c != -1 {
		t.Fatalf("Compare(2^53, 2^53+1) = %d, %v; want -1, nil", c, err)
	}
	if c, err := Compare(b, a); err != nil || c != 1 {
		t.Fatalf("Compare(2^53+1, 2^53) = %d, %v; want 1, nil", c, err)
	}
	if Equal(a, b) {
		t.Fatal("Equal(2^53, 2^53+1) must be false")
	}
	if a.Key() == b.Key() {
		t.Fatal("keys must stay distinct")
	}

	// End to end: a point predicate at the boundary matches exactly one row,
	// through both the PK access path and a forced scan.
	e := NewEngine("bigint")
	s := e.NewSession("root")
	s.MustExec("CREATE TABLE big (id INT PRIMARY KEY, tag TEXT)")
	s.MustExec(fmt.Sprintf("INSERT INTO big VALUES (%d, 'lo'), (%d, 'hi')", base, base+1))
	r := s.MustExec(fmt.Sprintf("SELECT tag FROM big WHERE id = %d", base+1))
	if len(r.Rows) != 1 || r.Rows[0][0].S != "hi" {
		t.Fatalf("PK lookup at 2^53+1 returned %v", r.Rows)
	}
	r = s.MustExec(fmt.Sprintf("SELECT tag FROM big WHERE id + 0 = %d", base))
	if len(r.Rows) != 1 || r.Rows[0][0].S != "lo" {
		t.Fatalf("scan compare at 2^53 returned %v", r.Rows)
	}
}

// Property: LIKE matching agrees with a naive recursive implementation.
func TestLikeMatchProperty(t *testing.T) {
	naive := func(s, p string) bool {
		var rec func(si, pi int) bool
		rec = func(si, pi int) bool {
			if pi == len(p) {
				return si == len(s)
			}
			if p[pi] == '%' {
				for k := si; k <= len(s); k++ {
					if rec(k, pi+1) {
						return true
					}
				}
				return false
			}
			if si == len(s) {
				return false
			}
			if p[pi] == '_' || p[pi] == s[si] {
				return rec(si+1, pi+1)
			}
			return false
		}
		return rec(0, 0)
	}
	rng := rand.New(rand.NewSource(7))
	alphabet := []byte("ab%_")
	for i := 0; i < 3000; i++ {
		s := randString(rng, alphabet[:2], 8)
		p := randString(rng, alphabet, 6)
		if likeMatch(s, p) != naive(s, p) {
			t.Fatalf("likeMatch(%q, %q) = %v, naive = %v", s, p, likeMatch(s, p), naive(s, p))
		}
	}
}

func randString(rng *rand.Rand, alphabet []byte, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// Property: parsing a rendered literal returns the same value.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(i int64, s string) bool {
		for _, v := range []Value{NewInt(i), NewText(s), NewBool(i%2 == 0), Null()} {
			stmt, err := Parse("SELECT " + v.SQLLiteral())
			if err != nil {
				return false
			}
			sel := stmt.(*SelectStmt)
			lit, ok := sel.Items[0].Expr.(*Literal)
			if !ok {
				return false
			}
			if !Equal(lit.Val, v) && !(lit.Val.IsNull() && v.IsNull()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
