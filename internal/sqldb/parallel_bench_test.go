package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

// benchParallelEngine builds a 40k-row fact table and a 64-row dimension
// table with 4 workers configured, plus a sequential (batched-off) session
// for baselines.
func benchParallelEngine(b *testing.B) (par, seq *Session) {
	b.Helper()
	e := NewEngine("parbench")
	e.SetParallelism(4, 1024)
	s := e.NewSession("root")
	s.MustExec("CREATE TABLE big (id INT PRIMARY KEY, grp INT, val REAL)")
	s.MustExec("CREATE TABLE dim (id INT PRIMARY KEY, label TEXT)")
	const rows = 40000
	const batch = 500
	for start := 0; start < rows; start += batch {
		vals := make([]string, 0, batch)
		for i := start; i < start+batch; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d.5)", i, i%64, i%10000))
		}
		s.MustExec("INSERT INTO big VALUES " + strings.Join(vals, ", "))
	}
	var dims []string
	for i := 0; i < 64; i++ {
		dims = append(dims, fmt.Sprintf("(%d, 'g%d')", i, i))
	}
	s.MustExec("INSERT INTO dim VALUES " + strings.Join(dims, ", "))
	seq = e.NewSession("root")
	seq.SetParallel(false)
	return s, seq
}

func benchQuery(b *testing.B, s *Session, sql string) {
	b.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExecStmt(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

const (
	parScanQuery  = "SELECT COUNT(*) FROM big WHERE val < 2500.0"
	parGroupQuery = "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM big GROUP BY grp"
	parJoinQuery  = "SELECT COUNT(*) FROM big JOIN dim ON big.grp = dim.id WHERE big.val < 5000.0"
)

func BenchmarkParallelSeqScan(b *testing.B) {
	par, _ := benchParallelEngine(b)
	benchQuery(b, par, parScanQuery)
}

func BenchmarkParallelSeqScanSequentialBaseline(b *testing.B) {
	_, seq := benchParallelEngine(b)
	benchQuery(b, seq, parScanQuery)
}

func BenchmarkParallelGroupBy(b *testing.B) {
	par, _ := benchParallelEngine(b)
	benchQuery(b, par, parGroupQuery)
}

func BenchmarkParallelGroupBySequentialBaseline(b *testing.B) {
	_, seq := benchParallelEngine(b)
	benchQuery(b, seq, parGroupQuery)
}

func BenchmarkParallelHashJoin(b *testing.B) {
	par, _ := benchParallelEngine(b)
	benchQuery(b, par, parJoinQuery)
}

func BenchmarkParallelHashJoinSequentialBaseline(b *testing.B) {
	_, seq := benchParallelEngine(b)
	benchQuery(b, seq, parJoinQuery)
}
