package sqldb

import (
	"fmt"
	"sync"
)

// undoKind identifies the inverse operation recorded in the undo log.
type undoKind uint8

const (
	undoInsert     undoKind = iota // row was inserted -> tombstone it
	undoDelete                     // row was tombstoned -> resurrect it
	undoUpdate                     // row was updated -> restore old values
	undoCreate                     // table was created -> drop it
	undoDrop                       // table was dropped -> restore it
	undoIndex                      // index was created -> remove it
	undoCreateView                 // view was created -> drop it
	undoDropView                   // view was dropped -> restore it
)

type undoOp struct {
	kind    undoKind
	table   *Table
	entry   *rowEntry
	oldVals []Value
	// for undoDrop: the catalog position so ordering is restored
	tablePos int
	indexCol string
	view     *View
}

// Txn is an open transaction: an undo log replayed in reverse on rollback,
// plus the redo records appended to the WAL on commit.
// ACID notes for this single-node engine: atomicity and consistency come
// from the undo log plus statement-level rollback; isolation is
// statement-level — writes hold the engine lock exclusively while reads
// share it, so each statement sees a consistent state, but an open
// transaction's uncommitted statements are visible to other sessions
// between statements (READ UNCOMMITTED; there are no snapshots or row
// locks); durability depends on how the engine was opened. NewEngine is
// in-memory (process-lifetime). OpenEngine appends every committed
// transaction to a CRC-framed write-ahead log before acknowledging it,
// at one of three levels (SyncMode): "always" fsyncs per commit, "batch"
// group-commits — concurrent committers share one fsync but still wait for
// it — and "off" leaves flushing to the OS. Checkpointed snapshots bound
// replay time, and open-time recovery replays the WAL tail, truncating any
// torn frame from a crash mid-write.
type Txn struct {
	undo []undoOp
	// redo holds the transaction's redo operations in execution order. Only
	// populated on durable engines; discarded on rollback. Row images are
	// captured at commit time, not statement time (see encodeRedo).
	redo []redoRec
}

// redoRec is one buffered redo operation. Insert/update records keep the
// table and row entry and serialize the row image when the transaction
// commits: under READ UNCOMMITTED another session may legally mutate a
// dirty row (or ALTER/RENAME the table) before this transaction commits,
// and the WAL must record what actually became durable — the commit-time
// state — or replay would resurrect stale images the heap never kept.
type redoRec struct {
	kind  byte
	table *Table    // insert/update/delete (name + epoch read at encode time)
	entry *rowEntry // insert/update
	rowID int64     // delete
	sql   string    // DDL
	epoch uint64    // DDL: the created table's epoch (0 otherwise)
}

// encodeRedo serializes buffered redo records into WAL frames at commit
// time. The caller holds the engine write lock, so entry values and table
// names are stable. Insert/update records whose row was tombstoned by a
// COMMITTED deletion (deadDurable) are dropped: the row's final state is
// "gone" and that deletion is (or will be) logged by its own transaction —
// exactly matching what the in-memory heap keeps. A tombstone from a
// still-open transaction keeps the record: if that transaction rolls back,
// its deletion is never logged, and dropping ours would silently lose this
// acknowledged commit on recovery.
func encodeRedo(recs []redoRec) [][]byte {
	out := make([][]byte, 0, len(recs))
	for _, r := range recs {
		switch r.kind {
		case recInsert:
			if !r.entry.dead || !r.entry.deadDurable {
				out = append(out, encodeInsertRec(r.table.Name, r.table.epoch, r.entry.id, r.entry.vals))
			}
		case recUpdate:
			if !r.entry.dead || !r.entry.deadDurable {
				out = append(out, encodeUpdateRec(r.table.Name, r.table.epoch, r.entry.id, r.entry.vals))
			}
		case recDelete:
			out = append(out, encodeDeleteRec(r.table.Name, r.table.epoch, r.rowID))
		case recDDL:
			out = append(out, encodeDDLRec(r.sql, r.epoch))
		}
	}
	return out
}

func (tx *Txn) record(op undoOp) { tx.undo = append(tx.undo, op) }

// rollback applies the undo log in reverse order against the engine.
func (tx *Txn) rollback(e *Engine) {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		op := tx.undo[i]
		switch op.kind {
		case undoInsert:
			op.table.markDead(op.entry)
		case undoDelete:
			op.table.resurrect(op.entry)
		case undoUpdate:
			op.table.replaceVals(op.entry, op.oldVals)
		case undoCreate:
			lo := lowerName(op.table.Name)
			delete(e.tables, lo)
			for j, n := range e.tableOrder {
				if n == lo {
					e.tableOrder = append(e.tableOrder[:j], e.tableOrder[j+1:]...)
					break
				}
			}
			e.bumpCatalog()
		case undoDrop:
			lo := lowerName(op.table.Name)
			e.tables[lo] = op.table
			pos := op.tablePos
			if pos < 0 || pos > len(e.tableOrder) {
				pos = len(e.tableOrder)
			}
			e.tableOrder = append(e.tableOrder[:pos],
				append([]string{lo}, e.tableOrder[pos:]...)...)
			e.bumpCatalog()
		case undoIndex:
			delete(op.table.indexes, op.indexCol)
			e.bumpCatalog()
		case undoCreateView:
			_, _ = e.dropView(op.view.Name)
		case undoDropView:
			_ = e.createView(op.view)
		}
	}
	tx.undo = nil
}

// Session is one connection: a user identity plus optional open
// transaction. Like a database connection, a session serializes its own
// statements (mu) — callers sharing one session get correct, serialized
// execution; parallelism comes from opening more sessions.
type Session struct {
	engine *Engine
	user   string
	mu     sync.Mutex
	txn    *Txn
	// stmtUndo accumulates undo ops for the statement being executed, so a
	// mid-statement failure (e.g. a constraint violation on the third row
	// of a multi-row INSERT) rolls back just that statement.
	stmtUndo *Txn
	// forceSeqScan makes the planner skip every access-path upgrade and
	// sort/limit pushdown for this session, the engine's equivalent of
	// PostgreSQL's enable_indexscan=off. Access-path equivalence tests
	// compare optimized plans against this forced baseline. A forced
	// session is excluded from the shared plan cache in both directions
	// (see Session.Exec and prepare).
	forceSeqScan bool
}

// NewSession opens a session for user.
func (e *Engine) NewSession(user string) *Session {
	return &Session{engine: e, user: user}
}

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// Engine returns the engine the session is bound to.
func (s *Session) Engine() *Engine { return s.engine }

// InTransaction reports whether a transaction is open.
func (s *Session) InTransaction() bool { return s.txn != nil }

// Begin starts a transaction. Like Commit and Rollback it takes the engine
// write lock itself; the SQL path (BEGIN through Exec) uses the unexported
// variants under the lock the executor already holds.
func (s *Session) Begin() error {
	s.engine.mu.Lock()
	defer s.engine.mu.Unlock()
	return s.begin()
}

func (s *Session) begin() error {
	if s.txn != nil {
		return fmt.Errorf("a transaction is already in progress")
	}
	s.txn = &Txn{}
	// Checkpoints are gated on this: a snapshot taken while a transaction
	// is open would capture its uncommitted (yet unlogged) rows as durable.
	s.engine.openTxns.Add(1)
	return nil
}

// Commit makes the transaction's effects permanent and, on a durable
// engine, blocks until they are on disk (per the engine's SyncMode). The
// engine write lock is held for the in-memory commit and redo encoding —
// encodeRedo reads row images that concurrent writers may otherwise be
// replacing — but released before the durability wait.
func (s *Session) Commit() error {
	s.engine.mu.Lock()
	tok, err := s.commitTx()
	s.engine.mu.Unlock()
	if err != nil {
		return err
	}
	return tok.wait()
}

// commitTx applies the commit in memory and enqueues the transaction's redo
// records on the WAL, returning the durability token WITHOUT waiting on it.
// The executor waits after releasing the engine lock, so concurrent
// committers can share one group fsync instead of serializing on it.
func (s *Session) commitTx() (*syncToken, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("no transaction is in progress")
	}
	// This transaction's deletions are now permanent: mark their tombstones
	// durable (before encoding, so a same-transaction insert+delete pair
	// collapses to nothing) so redo encoding — ours and later commits' —
	// can tell them from tombstones of still-open transactions.
	for _, op := range s.txn.undo {
		if op.kind == undoDelete {
			op.entry.deadDurable = true
		}
	}
	// Compact only while no OTHER transaction is open (the count still
	// includes us): an open transaction's rollback must be able to
	// resurrect entries it tombstoned, and compacting them away here would
	// corrupt the heap it resurrects into. Deferred tombstones are
	// reclaimed by the next commit that runs alone.
	if s.engine.openTxns.Load() == 1 {
		touched := map[*Table]bool{}
		for _, op := range s.txn.undo {
			if op.table != nil {
				touched[op.table] = true
			}
		}
		for t := range touched {
			t.compact()
		}
	}
	var tok *syncToken
	if w := s.engine.wal.Load(); w != nil && len(s.txn.redo) > 0 {
		if frames := encodeRedo(s.txn.redo); len(frames) > 0 {
			tok = w.commit(frames)
		}
	}
	s.txn = nil
	s.engine.openTxns.Add(-1)
	return tok, nil
}

// Rollback reverts every change made inside the transaction.
func (s *Session) Rollback() error {
	s.engine.mu.Lock()
	defer s.engine.mu.Unlock()
	return s.rollbackTx()
}

func (s *Session) rollbackTx() error {
	if s.txn == nil {
		return fmt.Errorf("no transaction is in progress")
	}
	s.txn.rollback(s.engine)
	s.txn = nil
	s.engine.openTxns.Add(-1)
	return nil
}

// record routes an undo entry to the statement-level log.
func (s *Session) record(op undoOp) {
	if s.stmtUndo != nil {
		s.stmtUndo.record(op)
	}
}

// durable reports whether mutations must produce redo records.
func (s *Session) durable() bool { return s.engine.wal.Load() != nil }

// redoAppend buffers a redo operation in the statement scope; serialization
// to WAL bytes happens at commit (see redoRec/encodeRedo).
func (s *Session) redoAppend(rec redoRec) {
	if s.stmtUndo != nil && s.durable() {
		s.stmtUndo.redo = append(s.stmtUndo.redo, rec)
	}
}

func (s *Session) redoInsert(t *Table, e *rowEntry) {
	s.redoAppend(redoRec{kind: recInsert, table: t, entry: e})
}

func (s *Session) redoUpdate(t *Table, e *rowEntry) {
	s.redoAppend(redoRec{kind: recUpdate, table: t, entry: e})
}

func (s *Session) redoDelete(t *Table, e *rowEntry) {
	s.redoAppend(redoRec{kind: recDelete, table: t, rowID: e.id})
}

// redoDDL logs a DDL statement as replayable SQL text. The text is rendered
// at execution time; DDL cannot be deferred to commit because its catalog
// effects (unlike dirty rows) are what later records in the same log depend
// on.
func (s *Session) redoDDL(sql string) {
	s.redoAppend(redoRec{kind: recDDL, sql: sql})
}

// redoCreateTable is redoDDL for CREATE TABLE: the record also carries the
// epoch this incarnation was assigned, so replay re-creates it under the
// same epoch and later row records pin to the right incarnation.
func (s *Session) redoCreateTable(t *Table) {
	s.redoAppend(redoRec{kind: recDDL, sql: SchemaSQL(t), epoch: t.epoch})
}

// beginStmt opens the statement-level undo/redo scope.
func (s *Session) beginStmt() { s.stmtUndo = &Txn{} }

// endStmt closes the statement scope: on error the statement is rolled
// back; on success its undo ops are promoted to the open transaction or
// discarded (auto-commit). The returned token, if any, is the auto-commit's
// claim on WAL durability — the executor waits on it after the engine lock
// is released.
func (s *Session) endStmt(execErr error) *syncToken {
	st := s.stmtUndo
	s.stmtUndo = nil
	if st == nil {
		return nil
	}
	if execErr != nil {
		st.rollback(s.engine)
		return nil
	}
	if s.txn != nil {
		s.txn.undo = append(s.txn.undo, st.undo...)
		s.txn.redo = append(s.txn.redo, st.redo...)
		return nil
	}
	// Auto-commit: same durable-tombstone marking and guarded compaction as
	// commitTx (auto-commits never increment openTxns, so "alone" is zero).
	for _, op := range st.undo {
		if op.kind == undoDelete {
			op.entry.deadDurable = true
		}
	}
	if s.engine.openTxns.Load() == 0 {
		touched := map[*Table]bool{}
		for _, op := range st.undo {
			if op.table != nil {
				touched[op.table] = true
			}
		}
		for t := range touched {
			t.compact()
		}
	}
	if w := s.engine.wal.Load(); w != nil && len(st.redo) > 0 {
		if frames := encodeRedo(st.redo); len(frames) > 0 {
			return w.commit(frames)
		}
	}
	return nil
}

func lowerName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
