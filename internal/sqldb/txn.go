package sqldb

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// undoKind identifies the inverse operation recorded in the undo log.
type undoKind uint8

const (
	undoInsert     undoKind = iota // row was inserted -> unlink its only version
	undoDelete                     // head version was delete-stamped -> clear the stamp
	undoUpdate                     // new version was installed -> pop it, unstamp the old head
	undoCreate                     // table was created -> drop it
	undoDrop                       // table was dropped -> restore it
	undoIndex                      // index was created -> remove it
	undoCreateView                 // view was created -> drop it
	undoDropView                   // view was dropped -> restore it
)

type undoOp struct {
	kind  undoKind
	table *Table
	entry *rowEntry
	// ver is the version the operation touched: the created version for
	// undoInsert/undoUpdate (its prev is the superseded head), the
	// delete-stamped version for undoDelete. Commit stamps these with the
	// commit timestamp; rollback reverses them.
	ver *rowVersion
	// for undoDrop: the catalog position so ordering is restored
	tablePos int
	indexCol string
	view     *View
}

// Txn is an open transaction: an undo log replayed in reverse on rollback,
// the redo records appended to the WAL on commit, and the MVCC identity its
// row versions carry while uncommitted.
//
// ACID notes for this single-node engine: atomicity and consistency come
// from the undo log plus statement-level rollback. Isolation is SNAPSHOT
// ISOLATION over per-row version chains: BEGIN fixes a read snapshot (each
// auto-commit statement gets its own), every read path resolves rows
// through snapshot visibility, and writers install new versions instead of
// mutating in place — so readers never block behind writers and never see
// uncommitted or later-committed data (no dirty or non-repeatable reads).
// Write-write conflicts are detected first-committer-wins: a transaction
// that tries to write a row with a newer concurrent version (committed
// after its snapshot, or still uncommitted) aborts with a retryable
// SerializationError; the caller should ROLLBACK and retry (see
// IsRetryable). BEGIN ISOLATION LEVEL READ COMMITTED instead refreshes the
// snapshot per statement. Durability depends on how the engine was opened:
// NewEngine is in-memory (process-lifetime); OpenEngine appends every
// committed transaction — prefixed with a commit-timestamp record so replay
// reconstructs visibility order — to a CRC-framed write-ahead log before
// acknowledging it, at one of three levels (SyncMode): "always" fsyncs per
// commit, "batch" group-commits, and "off" leaves flushing to the OS.
// Checkpointed snapshots (which serialize only committed-visible versions,
// so they are safe even while transactions are open) bound replay time, and
// open-time recovery replays the WAL tail, truncating any torn frame from a
// crash mid-write.
type Txn struct {
	undo []undoOp
	// redo holds the transaction's redo operations in execution order. Only
	// populated on durable engines; discarded on rollback. Row images are
	// captured at commit time, not statement time (see encodeRedo).
	redo []redoRec
	// snapTS is the read snapshot: the engine commit clock at BEGIN (or at
	// each statement under READ COMMITTED, tracked per statement).
	snapTS uint64
	level  IsolationLevel
	// aborted is set when a statement fails with a serialization conflict:
	// the transaction's snapshot is stale and must be retried, so further
	// statements are refused until ROLLBACK (or COMMIT, which rolls back).
	aborted bool
}

// redoRec is one buffered redo operation. Insert/update records keep the
// table and row entry and serialize the row image when the transaction
// commits: the transaction itself may update the row again (or ALTER/RENAME
// the table) before committing, and the WAL must record what actually
// became durable — the commit-time state.
type redoRec struct {
	kind  byte
	table *Table    // insert/update/delete (name + epoch read at encode time)
	entry *rowEntry // insert/update
	rowID int64     // delete
	sql   string    // DDL
	epoch uint64    // DDL: the created table's epoch (0 otherwise)
}

// encodeRedo serializes buffered redo records into WAL frames at commit
// time, after the commit timestamp has been stamped; the caller holds the
// engine write lock, so row images and table names are stable. The frame is
// prefixed with a commit-timestamp record so replay can reconstruct version
// visibility in commit order. Insert/update records whose row the SAME
// transaction also deleted are dropped (the head carries a committed xmax):
// the row's final state is "gone" and this transaction's own delete record
// says so. No other transaction can have deleted it — that write-write
// conflict would have aborted one of the two — which is what dissolved the
// old deadDurable tombstone bookkeeping into plain version visibility.
func encodeRedo(recs []redoRec, commitTS uint64) [][]byte {
	out := make([][]byte, 0, len(recs)+1)
	out = append(out, encodeCommitRec(commitTS))
	for _, r := range recs {
		switch r.kind {
		case recInsert:
			if r.entry.v != nil && r.entry.v.xmax == 0 {
				out = append(out, encodeInsertRec(r.table.Name, r.table.epoch, r.entry.id, r.entry.v.vals))
			}
		case recUpdate:
			if r.entry.v != nil && r.entry.v.xmax == 0 {
				out = append(out, encodeUpdateRec(r.table.Name, r.table.epoch, r.entry.id, r.entry.v.vals))
			}
		case recDelete:
			out = append(out, encodeDeleteRec(r.table.Name, r.table.epoch, r.rowID))
		case recDDL:
			out = append(out, encodeDDLRec(r.sql, r.epoch))
		}
	}
	if len(out) == 1 {
		return nil // nothing but the timestamp: log no frame
	}
	return out
}

func (tx *Txn) record(op undoOp) { tx.undo = append(tx.undo, op) }

// commitOps stamps every row version this undo log touched with the commit
// timestamp, converting uncommitted txn-pointer marks into committed
// visibility. The caller holds the engine write lock. Returns the set of
// tables touched (vacuum candidates).
func commitOps(undo []undoOp, ts uint64) map[*Table]bool {
	touched := map[*Table]bool{}
	for _, op := range undo {
		switch op.kind {
		case undoInsert:
			op.ver.xmin = ts
			op.ver.xminTxn = nil
			touched[op.table] = true
		case undoUpdate:
			op.ver.xmin = ts
			op.ver.xminTxn = nil
			op.ver.prev.xmax = ts
			op.ver.prev.xmaxTxn = nil
			op.table.garbage++
			touched[op.table] = true
		case undoDelete:
			op.ver.xmax = ts
			op.ver.xmaxTxn = nil
			if op.entry.v == op.ver {
				op.table.deadCnt++
			}
			op.table.garbage++
			touched[op.table] = true
		}
	}
	return touched
}

// rollback applies the undo log in reverse order against the engine. The
// caller holds the engine write lock.
func (tx *Txn) rollback(e *Engine) {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		op := tx.undo[i]
		switch op.kind {
		case undoInsert:
			op.table.undoInsertEntry(op.entry)
		case undoDelete:
			op.table.undoDeleteVersion(op.ver)
		case undoUpdate:
			op.table.undoInstallVersion(op.entry, op.ver)
		case undoCreate:
			lo := lowerName(op.table.Name)
			delete(e.tables, lo)
			for j, n := range e.tableOrder {
				if n == lo {
					e.tableOrder = append(e.tableOrder[:j], e.tableOrder[j+1:]...)
					break
				}
			}
			e.bumpCatalog()
		case undoDrop:
			lo := lowerName(op.table.Name)
			e.tables[lo] = op.table
			pos := op.tablePos
			if pos < 0 || pos > len(e.tableOrder) {
				pos = len(e.tableOrder)
			}
			e.tableOrder = append(e.tableOrder[:pos],
				append([]string{lo}, e.tableOrder[pos:]...)...)
			e.bumpCatalog()
		case undoIndex:
			delete(op.table.indexes, op.indexCol)
			e.bumpCatalog()
		case undoCreateView:
			_, _ = e.dropView(op.view.Name)
		case undoDropView:
			_ = e.createView(op.view)
		}
	}
	tx.undo = nil
}

// Session is one connection: a user identity plus optional open
// transaction. Like a database connection, a session serializes its own
// statements (mu) — callers sharing one session get correct, serialized
// execution; parallelism comes from opening more sessions.
type Session struct {
	engine *Engine
	user   string
	mu     sync.Mutex
	txn    *Txn
	// stmtUndo accumulates undo ops for the statement being executed, so a
	// mid-statement failure (e.g. a constraint violation on the third row
	// of a multi-row INSERT) rolls back just that statement. Outside an
	// explicit transaction it doubles as the auto-commit transaction
	// identity row versions carry until endStmt stamps them.
	stmtUndo *Txn
	// curView is the statement's read snapshot, established when the
	// statement takes its locks (the transaction's snapshot under snapshot
	// isolation, a fresh one per statement otherwise).
	curView snapView
	// forceSeqScan makes the planner skip every access-path upgrade and
	// sort/limit pushdown for this session, the engine's equivalent of
	// PostgreSQL's enable_indexscan=off. Access-path equivalence tests
	// compare optimized plans against this forced baseline. A forced
	// session is excluded from the shared plan cache in both directions
	// (see Session.Exec and prepare).
	forceSeqScan bool
	// noParallel forces the batched/morsel execution paths off for this
	// session (see SetParallel); the equivalence suite compares normal
	// sessions against it. Like forceSeqScan, such a session is excluded
	// from the shared plan cache in both directions.
	noParallel bool
	// grantTok parks the WAL durability claim of a GRANT/REVOKE statement
	// (see Engine.logGrantsBatched): execGrant/execRevoke run under the
	// engine write lock, so they stash the token here and execStmtLocked
	// joins it into the statement token, which the executor waits on after
	// every lock is released.
	grantTok *syncToken
	// analyze, when non-nil, is the per-operator collector for the EXPLAIN
	// ANALYZE statement currently executing on this session (see analyze.go).
	// Guarded by mu like the rest of the statement state.
	analyze *analyzeState
	// retryStreak counts consecutive retryable failures (write conflicts,
	// degraded refusals) on this session; the first success drains it into
	// the slow-query entry's retry count. Atomic so noteStmtDone can touch
	// it without s.mu.
	retryStreak atomic.Int64
}

// SetParallel enables or disables batched/parallel query execution for this
// session. It defaults to on; the parallel-vs-sequential equivalence tests
// and benchmarks use a disabled session as the row-at-a-time baseline.
func (s *Session) SetParallel(enabled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noParallel = !enabled
}

// NewSession opens a session for user.
func (e *Engine) NewSession(user string) *Session {
	return &Session{engine: e, user: user}
}

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// Engine returns the engine the session is bound to.
func (s *Session) Engine() *Engine { return s.engine }

// InTransaction reports whether a transaction is open.
func (s *Session) InTransaction() bool { return s.txn != nil }

// writerTxn returns the transaction identity the session's writes carry:
// the open transaction, or the statement scope for auto-commit statements.
func (s *Session) writerTxn() *Txn {
	if s.txn != nil {
		return s.txn
	}
	return s.stmtUndo
}

// stmtView computes the statement's read snapshot: the transaction's fixed
// snapshot under snapshot isolation, otherwise (READ COMMITTED or
// auto-commit) the commit clock now.
func (s *Session) stmtView() snapView {
	if s.txn != nil && s.txn.level == LevelSnapshot {
		return snapView{ts: s.txn.snapTS, txn: s.txn}
	}
	return snapView{ts: s.engine.lastCommitTS.Load(), txn: s.txn}
}

// Begin starts a transaction at the default snapshot isolation level. Like
// Commit and Rollback it serializes against other writers itself; the SQL
// path (BEGIN through Exec) uses the unexported variants under the writer
// lock the executor already holds.
func (s *Session) Begin() error { return s.BeginLevel(LevelSnapshot) }

// BeginLevel starts a transaction at the given isolation level.
func (s *Session) BeginLevel(level IsolationLevel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock := s.engine.locks.lockAll()
	defer unlock()
	return s.begin(level)
}

func (s *Session) begin(level IsolationLevel) error {
	if s.txn != nil {
		return fmt.Errorf("a transaction is already in progress")
	}
	s.txn = &Txn{snapTS: s.engine.lastCommitTS.Load(), level: level}
	// Register the snapshot so vacuum keeps every version it may read.
	s.engine.registerTxn(s.txn)
	return nil
}

// Commit makes the transaction's effects permanent and, on a durable
// engine, blocks until they are on disk (per the engine's SyncMode). The
// engine write lock is held only for the commit-stamping critical section —
// version timestamps, redo encoding, and the WAL enqueue — and released
// before the durability wait.
func (s *Session) Commit() error {
	s.mu.Lock()
	unlock := s.engine.locks.lockAll()
	tok, err := s.commitTx()
	unlock()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return tok.wait()
}

// commitTx applies the commit in memory and enqueues the transaction's redo
// records on the WAL, returning the durability token WITHOUT waiting on it.
// The executor waits after releasing every lock, so concurrent committers
// can share one group fsync instead of serializing on it. The caller holds
// the all-tables write lock; the engine lock is taken here for the stamping
// section.
func (s *Session) commitTx() (*syncToken, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("no transaction is in progress")
	}
	if s.txn.aborted {
		// PostgreSQL-style: COMMIT of an aborted transaction rolls back.
		tx := s.txn
		s.engine.mu.Lock()
		tx.rollback(s.engine)
		s.engine.mu.Unlock()
		s.txn = nil
		s.engine.unregisterTxn(tx)
		// Wrapped with ErrWriteConflict so IsRetryable-driven retry loops
		// treat the failed COMMIT like the conflict that caused it.
		return nil, fmt.Errorf("transaction was aborted by a write conflict and has been rolled back; retry it: %w", ErrWriteConflict)
	}
	tx := s.txn
	e := s.engine
	if len(tx.undo) > 0 || len(tx.redo) > 0 {
		// The engine went read-only (durability I/O failure) while this
		// transaction was open: its writes can no longer be honestly made
		// durable, so COMMIT rolls them back and reports the degraded state.
		// A read-only transaction commits fine.
		if derr := e.checkWritable(); derr != nil {
			e.mu.Lock()
			tx.rollback(e)
			e.mu.Unlock()
			s.txn = nil
			e.unregisterTxn(tx)
			return nil, fmt.Errorf("transaction rolled back: %w", derr)
		}
	}
	// Deregister first so the GC horizon no longer includes our own
	// snapshot when vacuum runs below.
	e.unregisterTxn(tx)
	e.mu.Lock()
	tok := e.commitLocked(tx.undo, tx.redo)
	e.mu.Unlock()
	s.txn = nil
	return tok, nil
}

// commitLocked is the one commit-stamping critical section, shared by
// explicit COMMIT and auto-commit statements; the caller holds the engine
// write lock. It allocates the commit timestamp, stamps every touched
// version, enqueues the redo frame, and only then advances the clock — a
// snapshot taken at ts sees all of the transaction or none of it — before
// vacuuming the touched tables.
func (e *Engine) commitLocked(undo []undoOp, redo []redoRec) *syncToken {
	ts := e.lastCommitTS.Load() + 1
	touched := commitOps(undo, ts)
	var tok *syncToken
	if w := e.wal.Load(); w != nil && len(redo) > 0 {
		if frames := encodeRedo(redo, ts); len(frames) > 0 {
			tok = w.commit(frames)
		}
	}
	e.lastCommitTS.Store(ts)
	e.vacuumTouched(touched)
	return tok
}

// vacuumTouched garbage-collects superseded versions in the given tables
// when enough have accumulated. The caller holds the engine write lock.
func (e *Engine) vacuumTouched(touched map[*Table]bool) {
	horizon := e.gcHorizon()
	for t := range touched {
		if t.garbage == 0 {
			continue
		}
		// Vacuum is O(rows); amortize it against the garbage produced.
		if t.garbage >= 1024 || t.garbage*4 >= len(t.rows) {
			t.vacuum(horizon)
		}
	}
}

// Rollback reverts every change made inside the transaction.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock := s.engine.locks.lockAll()
	defer unlock()
	return s.rollbackTx()
}

func (s *Session) rollbackTx() error {
	if s.txn == nil {
		return fmt.Errorf("no transaction is in progress")
	}
	tx := s.txn
	s.engine.mu.Lock()
	tx.rollback(s.engine)
	s.engine.mu.Unlock()
	s.txn = nil
	s.engine.unregisterTxn(tx)
	return nil
}

// record routes an undo entry to the statement-level log.
func (s *Session) record(op undoOp) {
	if s.stmtUndo != nil {
		s.stmtUndo.record(op)
	}
}

// durable reports whether mutations must produce redo records.
func (s *Session) durable() bool { return s.engine.wal.Load() != nil }

// redoAppend buffers a redo operation in the statement scope; serialization
// to WAL bytes happens at commit (see redoRec/encodeRedo).
func (s *Session) redoAppend(rec redoRec) {
	if s.stmtUndo != nil && s.durable() {
		s.stmtUndo.redo = append(s.stmtUndo.redo, rec)
	}
}

func (s *Session) redoInsert(t *Table, e *rowEntry) {
	s.redoAppend(redoRec{kind: recInsert, table: t, entry: e})
}

func (s *Session) redoUpdate(t *Table, e *rowEntry) {
	s.redoAppend(redoRec{kind: recUpdate, table: t, entry: e})
}

func (s *Session) redoDelete(t *Table, e *rowEntry) {
	s.redoAppend(redoRec{kind: recDelete, table: t, rowID: e.id})
}

// redoDDL logs a DDL statement as replayable SQL text. The text is rendered
// at execution time; DDL cannot be deferred to commit because its catalog
// effects (unlike dirty rows) are what later records in the same log depend
// on.
func (s *Session) redoDDL(sql string) {
	s.redoAppend(redoRec{kind: recDDL, sql: sql})
}

// redoCreateTable is redoDDL for CREATE TABLE: the record also carries the
// epoch this incarnation was assigned, so replay re-creates it under the
// same epoch and later row records pin to the right incarnation.
func (s *Session) redoCreateTable(t *Table) {
	s.redoAppend(redoRec{kind: recDDL, sql: SchemaSQL(t), epoch: t.epoch})
}

// beginStmt opens the statement-level undo/redo scope.
func (s *Session) beginStmt() { s.stmtUndo = &Txn{} }

// endStmt closes the statement scope: on error the statement is rolled
// back; on success its undo ops are promoted to the open transaction or
// committed in place (auto-commit: stamp with a fresh commit timestamp and
// enqueue the redo frame, exactly like commitTx). The returned token, if
// any, is the auto-commit's claim on WAL durability — the executor waits on
// it after every lock is released. engineLocked tells endStmt whether the
// caller (a DDL statement) already holds the engine write lock; DML callers
// do not, so the commit critical section takes it here.
func (s *Session) endStmt(execErr error, engineLocked bool) *syncToken {
	st := s.stmtUndo
	s.stmtUndo = nil
	if st == nil {
		return nil
	}
	if len(st.undo) == 0 && len(st.redo) == 0 {
		// Read-only statement (or a write that matched nothing): nothing to
		// roll back, promote, or commit — and the fast path keeps readers,
		// who hold only the engine read lock, away from the write lock.
		return nil
	}
	e := s.engine
	lock := func() {
		if !engineLocked {
			e.mu.Lock()
		}
	}
	unlock := func() {
		if !engineLocked {
			e.mu.Unlock()
		}
	}
	if execErr != nil {
		lock()
		st.rollback(e)
		unlock()
		return nil
	}
	if s.txn != nil {
		// Re-stamp the statement's versions with the durable transaction
		// identity: they were created under it already (writerTxn), so only
		// the undo/redo logs move.
		s.txn.undo = append(s.txn.undo, st.undo...)
		s.txn.redo = append(s.txn.redo, st.redo...)
		return nil
	}
	// Auto-commit: the same stamping protocol as an explicit COMMIT.
	lock()
	tok := e.commitLocked(st.undo, st.redo)
	unlock()
	return tok
}

func lowerName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
