package sqldb

import (
	"fmt"
	"sync"
)

// undoKind identifies the inverse operation recorded in the undo log.
type undoKind uint8

const (
	undoInsert     undoKind = iota // row was inserted -> tombstone it
	undoDelete                     // row was tombstoned -> resurrect it
	undoUpdate                     // row was updated -> restore old values
	undoCreate                     // table was created -> drop it
	undoDrop                       // table was dropped -> restore it
	undoIndex                      // index was created -> remove it
	undoCreateView                 // view was created -> drop it
	undoDropView                   // view was dropped -> restore it
)

type undoOp struct {
	kind    undoKind
	table   *Table
	entry   *rowEntry
	oldVals []Value
	// for undoDrop: the catalog position so ordering is restored
	tablePos int
	indexCol string
	view     *View
}

// Txn is an open transaction: an undo log replayed in reverse on rollback.
// ACID notes for this single-node engine: atomicity and consistency come
// from the undo log plus statement-level rollback; isolation is
// statement-level — writes hold the engine lock exclusively while reads
// share it, so each statement sees a consistent state, but an open
// transaction's uncommitted statements are visible to other sessions
// between statements (READ UNCOMMITTED; there are no snapshots or row
// locks); durability is process-lifetime (in-memory store).
type Txn struct {
	undo []undoOp
}

func (tx *Txn) record(op undoOp) { tx.undo = append(tx.undo, op) }

// rollback applies the undo log in reverse order against the engine.
func (tx *Txn) rollback(e *Engine) {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		op := tx.undo[i]
		switch op.kind {
		case undoInsert:
			op.table.markDead(op.entry)
		case undoDelete:
			op.table.resurrect(op.entry)
		case undoUpdate:
			op.table.replaceVals(op.entry, op.oldVals)
		case undoCreate:
			lo := lowerName(op.table.Name)
			delete(e.tables, lo)
			for j, n := range e.tableOrder {
				if n == lo {
					e.tableOrder = append(e.tableOrder[:j], e.tableOrder[j+1:]...)
					break
				}
			}
			e.bumpCatalog()
		case undoDrop:
			lo := lowerName(op.table.Name)
			e.tables[lo] = op.table
			pos := op.tablePos
			if pos < 0 || pos > len(e.tableOrder) {
				pos = len(e.tableOrder)
			}
			e.tableOrder = append(e.tableOrder[:pos],
				append([]string{lo}, e.tableOrder[pos:]...)...)
			e.bumpCatalog()
		case undoIndex:
			delete(op.table.indexes, op.indexCol)
			e.bumpCatalog()
		case undoCreateView:
			_, _ = e.dropView(op.view.Name)
		case undoDropView:
			_ = e.createView(op.view)
		}
	}
	tx.undo = nil
}

// Session is one connection: a user identity plus optional open
// transaction. Like a database connection, a session serializes its own
// statements (mu) — callers sharing one session get correct, serialized
// execution; parallelism comes from opening more sessions.
type Session struct {
	engine *Engine
	user   string
	mu     sync.Mutex
	txn    *Txn
	// stmtUndo accumulates undo ops for the statement being executed, so a
	// mid-statement failure (e.g. a constraint violation on the third row
	// of a multi-row INSERT) rolls back just that statement.
	stmtUndo *Txn
	// forceSeqScan makes the planner skip every access-path upgrade and
	// sort/limit pushdown for this session, the engine's equivalent of
	// PostgreSQL's enable_indexscan=off. Access-path equivalence tests
	// compare optimized plans against this forced baseline. A forced
	// session is excluded from the shared plan cache in both directions
	// (see Session.Exec and prepare).
	forceSeqScan bool
}

// NewSession opens a session for user.
func (e *Engine) NewSession(user string) *Session {
	return &Session{engine: e, user: user}
}

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// Engine returns the engine the session is bound to.
func (s *Session) Engine() *Engine { return s.engine }

// InTransaction reports whether a transaction is open.
func (s *Session) InTransaction() bool { return s.txn != nil }

// Begin starts a transaction.
func (s *Session) Begin() error {
	if s.txn != nil {
		return fmt.Errorf("a transaction is already in progress")
	}
	s.txn = &Txn{}
	return nil
}

// Commit makes the transaction's effects permanent.
func (s *Session) Commit() error {
	if s.txn == nil {
		return fmt.Errorf("no transaction is in progress")
	}
	// Dead rows tombstoned by this txn can now be compacted.
	touched := map[*Table]bool{}
	for _, op := range s.txn.undo {
		if op.table != nil {
			touched[op.table] = true
		}
	}
	for t := range touched {
		t.compact()
	}
	s.txn = nil
	return nil
}

// Rollback reverts every change made inside the transaction.
func (s *Session) Rollback() error {
	if s.txn == nil {
		return fmt.Errorf("no transaction is in progress")
	}
	s.txn.rollback(s.engine)
	s.txn = nil
	return nil
}

// record routes an undo entry to the statement-level log.
func (s *Session) record(op undoOp) {
	if s.stmtUndo != nil {
		s.stmtUndo.record(op)
	}
}

// beginStmt opens the statement-level undo scope.
func (s *Session) beginStmt() { s.stmtUndo = &Txn{} }

// endStmt closes the statement scope: on error the statement is rolled
// back; on success its undo ops are promoted to the open transaction or
// discarded (auto-commit).
func (s *Session) endStmt(execErr error) {
	st := s.stmtUndo
	s.stmtUndo = nil
	if st == nil {
		return
	}
	if execErr != nil {
		st.rollback(s.engine)
		return
	}
	if s.txn != nil {
		s.txn.undo = append(s.txn.undo, st.undo...)
		return
	}
	// Auto-commit: compact tombstones now.
	touched := map[*Table]bool{}
	for _, op := range st.undo {
		if op.table != nil {
			touched[op.table] = true
		}
	}
	for t := range touched {
		t.compact()
	}
}

func lowerName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
