package sqldb

// The engine's observability layer: engineMetrics aggregates the lock-free
// histograms and counters every hot path records into, Engine.Stats
// assembles them (plus the existing Durability/Health/LockStats surfaces)
// into one stats.Snapshot, and Session.noteStmtDone does per-statement
// latency, rows-returned, and slow-query-log recording.
//
// Placement contract, mechanically enforced by the sqlvet lockorder
// analyzer (rule L4): recording never happens while Engine.mu is held
// exclusively or inside the WAL's ioMu write/fsync critical section.
// Statement latency is recorded after every lock is released and the
// durability wait is over, so it measures what the client experienced.

import (
	"sync/atomic"
	"time"

	"bridgescope/internal/sqldb/stats"
)

// slowLogCap bounds the slow-query ring buffer.
const slowLogCap = 128

// defaultSlowThreshold is the initial slow-query threshold; tune per
// engine with SetSlowQueryThreshold.
const defaultSlowThreshold = 100 * time.Millisecond

// stmtKind buckets statements for the per-kind latency histograms.
type stmtKind int

const (
	kindSelect stmtKind = iota
	kindInsert
	kindUpdate
	kindDelete
	kindTxn
	kindDDL
	kindOther
	numStmtKinds
)

var stmtKindNames = [numStmtKinds]string{"select", "insert", "update", "delete", "txn", "ddl", "other"}

// classifyStmt maps a statement to its latency bucket. EXPLAIN ANALYZE
// executes its inner statement, so it counts as that statement's kind;
// plain EXPLAIN is read-only planning and counts as a select.
func classifyStmt(stmt Stmt) stmtKind {
	if ex, ok := stmt.(*ExplainStmt); ok && ex.Analyze {
		stmt = ex.Stmt
	}
	switch stmt.(type) {
	case *SelectStmt, *ExplainStmt:
		return kindSelect
	case *InsertStmt:
		return kindInsert
	case *UpdateStmt:
		return kindUpdate
	case *DeleteStmt:
		return kindDelete
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return kindTxn
	case *CreateTableStmt, *DropTableStmt, *CreateIndexStmt, *AlterTableStmt,
		*CreateViewStmt, *DropViewStmt, *GrantStmt, *RevokeStmt:
		return kindDDL
	}
	return kindOther
}

// engineMetrics is the engine's recording surface: plain atomics and
// lock-free histograms, safe to touch from any goroutine with any locks
// held — though rule L4 (see package comment) keeps recording out of the
// exclusive critical sections anyway.
type engineMetrics struct {
	// stmt is the per-kind statement latency histogram set.
	stmt [numStmtKinds]stats.Histogram
	// rowsReturned counts rows handed back to clients (SELECT results).
	rowsReturned atomic.Int64

	// WAL I/O, recorded by the flusher after it leaves ioMu.
	walAppend stats.Histogram // write(2) latency per group flush
	walFsync  stats.Histogram // fsync latency per group flush
	walBatch  stats.Histogram // commits per group flush (group-commit size)

	// lockWait is the write-lock acquisition wait per mutating statement.
	lockWait stats.Histogram

	// Parallel scanner activity (see parallelEligible).
	parBatches atomic.Int64
	parMorsels atomic.Int64
	parWorkers stats.Histogram

	// ckptDur is checkpoint wall time (rotate + snapshot + retire).
	ckptDur stats.Histogram

	// degradedTransitions counts healthy→degraded flips (at most one per
	// open engine, but visible across a scrape history).
	degradedTransitions atomic.Int64

	// txnAborts counts transactions poisoned by a write conflict;
	// txnRetries counts client-side retries reported through
	// Engine.NoteTxnRetry (core.RunInTransaction's backoff loop).
	txnAborts  atomic.Int64
	txnRetries atomic.Int64
}

// Stats assembles the engine's full observability snapshot. It is safe to
// call from any goroutine at any time: everything it reads is either
// atomic or guarded by its own short-lived mutex, and it never touches
// Engine.mu.
func (e *Engine) Stats() stats.Snapshot {
	m := &e.metrics
	snap := stats.Snapshot{
		Enabled:        stats.Enabled(),
		Statements:     map[string]stats.HistogramSnapshot{},
		RowsScanned:    e.scanRowsVisited.Load(),
		DMLRowsVisited: e.dmlRowsVisited.Load(),
		RowsReturned:   m.rowsReturned.Load(),
		PlanCache:      e.plans.snapshot(),
	}
	for k := range m.stmt {
		if hs := m.stmt[k].Snapshot(); hs.Count > 0 {
			snap.Statements[stmtKindNames[k]] = hs
		}
	}

	d := e.Durability()
	snap.WAL = stats.WALStats{
		Durable:      d.Durable,
		Mode:         d.Mode,
		Commits:      d.Commits,
		Records:      d.Records,
		Fsyncs:       d.Fsyncs,
		GroupFlushes: d.GroupFlushes,
		WALBytes:     d.WALBytes,
		WALSize:      d.WALSize,
		Segment:      int64(d.Segment),
		LSN:          int64(d.LSN),
		Checkpoints:  d.Checkpoints,
		AppendNs:     m.walAppend.Snapshot(),
		FsyncNs:      m.walFsync.Snapshot(),
		BatchCommits: m.walBatch.Snapshot(),
	}

	last := e.lastCommitTS.Load()
	snap.MVCC = stats.MVCCStats{
		Conflicts: e.writeConflicts.Load(),
		Aborts:    m.txnAborts.Load(),
		Retries:   m.txnRetries.Load(),
		OpenTxns:  e.openTxnCount(),
		// How far the oldest active snapshot trails the commit clock — the
		// version-GC backlog a long-running transaction is holding open.
		GCHorizonLag: int64(last - e.gcHorizon()),
	}

	ls := e.LockStats()
	snap.Locks = stats.LockStats{
		TableAcquires:        ls.TableAcquires,
		GlobalAcquires:       ls.GlobalAcquires,
		MaxConcurrentWriters: ls.MaxConcurrentWriters,
		WaitNs:               m.lockWait.Snapshot(),
	}

	snap.Parallel = stats.ParallelStats{
		Batches: m.parBatches.Load(),
		Morsels: m.parMorsels.Load(),
		Workers: m.parWorkers.Snapshot(),
	}

	ck := m.ckptDur.Snapshot()
	snap.Checkpoint = stats.CheckpointStats{Count: int64(ck.Count), DurationNs: ck}

	h := e.Health()
	snap.Health = stats.HealthStats{
		Degraded:          h.Degraded,
		Reason:            h.Reason,
		Transitions:       m.degradedTransitions.Load(),
		LastCheckpointErr: h.LastCheckpointErr,
	}

	if e.slow != nil {
		snap.SlowLog = stats.SlowLogStats{
			ThresholdNs: e.slow.Threshold().Nanoseconds(),
			Total:       e.slow.Total(),
			Entries:     e.slow.Entries(),
		}
	}
	return snap
}

// SetSlowQueryThreshold sets the duration at or above which statements are
// recorded in the slow-query log. Zero records every statement; a negative
// threshold disables the log.
func (e *Engine) SetSlowQueryThreshold(d time.Duration) { e.slow.SetThreshold(d) }

// SlowQueryThreshold returns the current slow-query threshold.
func (e *Engine) SlowQueryThreshold() time.Duration { return e.slow.Threshold() }

// SlowQueries returns the retained slow-query log entries, oldest first.
func (e *Engine) SlowQueries() []stats.SlowQuery { return e.slow.Entries() }

// NoteTxnRetry records one client-side transaction retry; the core
// adapter's backoff loop calls it so retry pressure is visible engine-side.
func (e *Engine) NoteTxnRetry() { e.metrics.txnRetries.Add(1) }

// noteStmtDone records a finished statement: its latency histogram, the
// rows-returned counter, the session's retry streak, and — when the
// statement had SQL text and crossed the threshold — a slow-query entry
// with the rendered plan. Called with no locks held.
func (s *Session) noteStmtDone(stmt Stmt, sql string, start time.Time, res *Result, err error) {
	d := time.Since(start)
	e := s.engine
	if stats.Enabled() {
		e.metrics.stmt[classifyStmt(stmt)].Observe(d)
		if err == nil && res != nil && len(res.Rows) > 0 {
			e.metrics.rowsReturned.Add(int64(len(res.Rows)))
		}
	}
	if err != nil && IsRetryable(err) {
		// The client is expected to retry this statement/transaction; the
		// streak is drained into the next successful statement's slow-log
		// entry so a conflict-thrashing query is visible as such.
		s.retryStreak.Add(1)
		return
	}
	retries := s.retryStreak.Swap(0)
	slow := e.slow
	if err != nil || slow == nil || sql == "" || !slow.ShouldRecord(d) {
		return
	}
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	entry := stats.SlowQuery{
		Time:       time.Now(),
		User:       s.user,
		SQL:        sql,
		DurationNs: d.Nanoseconds(),
		Rows:       rows,
		Retries:    retries,
	}
	// Best-effort plan: re-planned against the current catalog (the
	// statement itself already finished and released its locks). Statements
	// without plans (DDL, transaction control) log without one.
	if p, perr := s.Plan(sql); perr == nil {
		entry.Plan = p.Explain()
	}
	slow.Record(entry)
}
