package sqldb

import (
	"container/list"
	"sync"
	"sync/atomic"

	"bridgescope/internal/sqldb/stats"
)

// The plan cache is the engine's prepared-statement layer: an LRU of
// parsed+planned statements keyed by (user, SQL text), shared by every
// session of an engine. A hit skips the lexer, parser, and planner
// entirely; validity is decided by comparing the entry's catalog version
// against the engine's current one (DDL and grant changes bump it), so
// invalidation never walks the cache.
//
// Cached plans are safe to share across sessions: plan nodes and ASTs are
// immutable during execution (see Env.sess), privileges are re-checked per
// execution, and SELECT hits run under the engine's read lock while
// UPDATE/DELETE hits run under the write lock, exactly like cold
// statements.

// planCacheCap bounds the number of cached statements per engine.
const planCacheCap = 256

// cachedStmt is one prepared statement.
type cachedStmt struct {
	stmt      Stmt
	readOnly  bool     // engine lock class (property of the SQL text)
	version   uint64   // catalog version the plan was built against
	lockNames []string // DML write-lock set, precomputed at this version
	sel       *SelectPlan
	write     *WritePlan
}

type cacheSlot struct {
	key string
	ent *cachedStmt
}

type planCache struct {
	mu        sync.Mutex
	entries   map[string]*list.Element
	lru       *list.List // of *cacheSlot, front = most recently used
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newPlanCache() *planCache {
	return &planCache{entries: map[string]*list.Element{}, lru: list.New()}
}

func cacheKey(user, sql string) string { return user + "\x00" + sql }

// lookup returns the entry for (user, sql) and marks it recently used.
// Staleness against the catalog version is the caller's concern. The cache
// has its own mutex because SELECT sessions only hold the engine read lock.
func (c *planCache) lookup(user, sql string) (*cachedStmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey(user, sql)]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheSlot).ent, true
}

// put stores (or replaces) an entry, evicting the least recently used one
// past capacity.
func (c *planCache) put(user, sql string, ent *cachedStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey(user, sql)
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheSlot).ent = ent
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheSlot{key: k, ent: ent})
	if c.lru.Len() > planCacheCap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheSlot).key)
		c.evictions.Add(1)
	}
}

// remove drops the entry for (user, sql) if present. Stale entries are
// removed at hit time rather than left for replacement: a statement that
// keeps failing after a catalog change (e.g. its table was dropped) never
// reaches the successful re-put, and letting its dead entry ride the LRU
// would evict live plans instead.
func (c *planCache) remove(user, sql string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey(user, sql)
	if el, ok := c.entries[k]; ok {
		c.lru.Remove(el)
		delete(c.entries, k)
	}
}

func (c *planCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// snapshot reports the full counter set plus the resident entry count.
func (c *planCache) snapshot() stats.CacheStats {
	c.mu.Lock()
	size := len(c.entries)
	c.mu.Unlock()
	return stats.CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      size,
	}
}
