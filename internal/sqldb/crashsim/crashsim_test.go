package crashsim

import (
	"testing"

	"bridgescope/internal/sqldb"
	"bridgescope/internal/sqldb/vfs"
)

// TestCrashSimAllPoints is the smoke run: a seeded workload under each sync
// mode, every recorded I/O step enumerated as a crash point under every tear
// policy. Zero violations means every acknowledged commit survived, no
// partial or rolled-back effects resurfaced, internal structures stayed
// consistent, and recovery was idempotent at every single point.
func TestCrashSimAllPoints(t *testing.T) {
	for _, tc := range []struct {
		name string
		sync sqldb.SyncMode
	}{
		{"always", sqldb.SyncAlways},
		{"batch", sqldb.SyncBatch},
		{"off", sqldb.SyncOff},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{Seed: 42, Ops: 14, Sync: tc.sync})
			if err != nil {
				t.Fatalf("crashsim run: %v", err)
			}
			if rep.WorkloadErr != nil {
				t.Fatalf("workload failed: %v", rep.WorkloadErr)
			}
			if rep.Commits < 5 {
				t.Fatalf("workload only committed %d transactions; seed produced a degenerate run", rep.Commits)
			}
			if rep.Points != rep.Steps+1 {
				t.Fatalf("expected every I/O step enumerated (%d+1 points), got %d", rep.Steps, rep.Points)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
			t.Logf("sync=%s: %d steps, %d points x 3 policies, %d commits, 0 violations",
				tc.sync, rep.Steps, rep.Points, rep.Commits)
		})
	}
}

// TestCrashSimSecondSeed varies the seed so the DML mix, checkpoint timing,
// and rollback placement differ from the smoke run.
func TestCrashSimSecondSeed(t *testing.T) {
	t.Parallel()
	rep, err := Run(Config{Seed: 7, Ops: 10, Sync: sqldb.SyncBatch})
	if err != nil {
		t.Fatalf("crashsim run: %v", err)
	}
	if rep.WorkloadErr != nil {
		t.Fatalf("workload failed: %v", rep.WorkloadErr)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestCrashSimCatchesLyingFsync proves the simulator is not vacuously
// green: a deliberately broken build whose fsyncs report success without
// persisting anything must produce durability violations under power loss.
// If this test ever fails, the simulator has lost its teeth.
func TestCrashSimCatchesLyingFsync(t *testing.T) {
	t.Parallel()
	rep, err := Run(Config{
		Seed:     42,
		Ops:      12,
		Sync:     sqldb.SyncAlways,
		Policies: []vfs.TearPolicy{vfs.TearLoseUnsynced},
		Hook: func(op vfs.Op) *vfs.Fault {
			if op.Kind == vfs.OpSync || op.Kind == vfs.OpSyncDir {
				return &vfs.Fault{LieSync: true}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("crashsim run: %v", err)
	}
	if rep.WorkloadErr != nil {
		t.Fatalf("workload failed: %v", rep.WorkloadErr)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("a build that skips fsync survived power-loss simulation: the simulator failed to detect the broken durability promise")
	}
	t.Logf("lying fsync correctly detected: %d violations, first: %s", len(rep.Violations), rep.Violations[0])
}

// TestCrashSimBounded exercises the MaxPoints stride used by CI: the final
// state must always be among the tested points.
func TestCrashSimBounded(t *testing.T) {
	t.Parallel()
	rep, err := Run(Config{Seed: 3, Ops: 8, Sync: sqldb.SyncAlways, MaxPoints: 25,
		Policies: []vfs.TearPolicy{vfs.TearKill}})
	if err != nil {
		t.Fatalf("crashsim run: %v", err)
	}
	if rep.Points > 25 {
		t.Fatalf("MaxPoints=25 but %d points tested", rep.Points)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}
