// Package crashsim is a deterministic crash-recovery simulator for the sqldb
// engine. It runs a seeded random workload of DML, DDL, and transactions on
// an engine backed by a fault-injecting filesystem (vfs.FaultFS) that records
// every durability I/O operation, then treats every recorded step as a crash
// point: it reconstructs the simulated on-disk state at that step under a
// tear policy (process kill, strict power loss, or power loss with torn
// writes), reopens the engine on the wreckage, and asserts the ACID
// invariants:
//
//   - recovery succeeds (no panic, no refusal to open),
//   - every commit acknowledged before the crash point is visible,
//   - no unacknowledged or rolled-back effects survive (recovered state
//     equals the model state at some committed prefix),
//   - catalog, primary-key, and index structures are internally consistent
//     (Engine.CheckConsistency), and
//   - a second reopen of the recovered directory yields the same state
//     (recovery is idempotent).
//
// The workload follows a ledger protocol: every committed transaction n also
// inserts row n into a ledger table, so the recovered ledger must always be
// an exact prefix {1..P} of the commit sequence, and P pins which model
// snapshot the rest of the database must equal. Because the filesystem,
// workload, and tear offsets are all seeded, any violation is exactly
// reproducible from (Seed, Ops, Sync, policy, crash point).
package crashsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"bridgescope/internal/sqldb"
	"bridgescope/internal/sqldb/vfs"
)

// Config parameterizes one simulator run.
type Config struct {
	// Seed drives the workload generator and the torn-write offsets.
	Seed int64
	// Ops is the number of workload units (transactions, rollbacks, or
	// checkpoints) to run after the schema-creating first transaction.
	Ops int
	// Sync is the engine durability mode under test.
	Sync sqldb.SyncMode
	// Policies are the tear policies to enumerate at each crash point.
	// Empty means all three (kill, power loss, power loss with torn tail).
	Policies []vfs.TearPolicy
	// MaxPoints bounds how many crash points are tested per policy (evenly
	// strided, always including the final state). 0 means every point.
	MaxPoints int
	// Hook, if non-nil, is installed on the workload filesystem. Tests use
	// it to simulate broken builds (e.g. lying fsyncs) and prove the
	// simulator catches them.
	Hook func(vfs.Op) *vfs.Fault
	// MaxViolations stops the enumeration early once this many violations
	// have been collected (0 means 20); a broken engine would otherwise
	// report thousands of identical failures.
	MaxViolations int
}

// Violation is one invariant failure at one simulated crash.
type Violation struct {
	Point  int    // crash point: I/O step count at which the crash occurred
	Policy string // tear policy in effect
	Desc   string // what went wrong
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d [%s]: %s", v.Point, v.Policy, v.Desc)
}

// Report summarizes a simulator run.
type Report struct {
	Steps      int         // total durability I/O steps the workload issued
	Points     int         // crash points actually tested (per policy)
	Commits    int         // transactions acknowledged during the workload
	Violations []Violation // invariant failures (nil means the engine held)
	// WorkloadErr is set when the workload itself failed (a statement or
	// commit errored on the live engine); the enumeration still runs over
	// the history recorded up to that point.
	WorkloadErr error
}

// dbdir is the simulated database directory inside the fault filesystem.
const dbdir = "/crashsim-db"

// tables the workload touches, in dump order. The dump treats a missing
// table as "absent", so the list can name tables a prefix state lacks.
var workTables = []string{"ledger", "kv", "t2"}

// Run executes the workload, enumerates crash points, and returns the
// report. It only returns a non-nil error for simulator-level failures
// (e.g. the initial engine refusing to open); engine misbehavior at a crash
// point is reported as a Violation, not an error.
func Run(cfg Config) (*Report, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 20
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []vfs.TearPolicy{vfs.TearKill, vfs.TearLoseUnsynced, vfs.TearPartial}
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 20
	}

	fs := vfs.NewFaultFS()
	fs.RecordHistory(true)
	if cfg.Hook != nil {
		fs.SetHook(cfg.Hook)
	}

	w := &workload{
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		fs:    fs,
		dumps: map[int]string{},
	}
	rep := &Report{}
	rep.WorkloadErr = w.run(cfg)
	rep.Steps = fs.Steps()
	rep.Commits = len(w.ackStep)

	points := crashPoints(rep.Steps, cfg.MaxPoints)
	rep.Points = len(points)

	for _, policy := range cfg.Policies {
		for _, k := range points {
			if len(rep.Violations) >= cfg.MaxViolations {
				return rep, nil
			}
			v := w.checkPoint(cfg, k, policy)
			rep.Violations = append(rep.Violations, v...)
		}
	}
	return rep, nil
}

// crashPoints returns the step counts to test: 0..steps inclusive (crashing
// before any I/O and after all of it are both valid points), strided to at
// most max when max > 0, always keeping the final point.
func crashPoints(steps, max int) []int {
	total := steps + 1
	if max <= 0 || total <= max {
		pts := make([]int, total)
		for i := range pts {
			pts[i] = i
		}
		return pts
	}
	pts := make([]int, 0, max)
	stride := float64(steps) / float64(max-1)
	for i := 0; i < max; i++ {
		pts = append(pts, int(float64(i)*stride+0.5))
	}
	pts[len(pts)-1] = steps
	return pts
}

// workload holds the generator state shared between the live run and the
// crash-point checks.
type workload struct {
	rng *rand.Rand
	fs  *vfs.FaultFS

	// ackStep[i] is the fs step count observed right after commit i+1 (the
	// ledger seq) was acknowledged: any crash at or after that step must
	// preserve the commit (modulo sync mode and policy).
	ackStep []int
	// dumps[n] is the canonical model state after the first n commits.
	dumps map[int]string
}

// run drives the live engine and the in-memory model through the same
// seeded statement stream, recording acknowledged commits and model dumps.
func (w *workload) run(cfg Config) error {
	eng, err := sqldb.OpenEngine(dbdir, sqldb.Options{
		Name:            "crash",
		Sync:            cfg.Sync,
		CheckpointEvery: -1, // checkpoints are explicit workload units
		FS:              w.fs,
	})
	if err != nil {
		return fmt.Errorf("initial open: %w", err)
	}
	live := eng.NewSession("root")

	model := sqldb.NewEngine("crash")
	modelSess := model.NewSession("root")

	// dumps[0]: the empty database, before the schema transaction commits.
	w.dumps[0] = dumpState(modelSess)

	// Unit 0 (commit #1): create the schema and open the ledger, all in one
	// transaction so a crash either preserves everything or nothing.
	first := []string{
		"BEGIN",
		"CREATE TABLE ledger (seq INT PRIMARY KEY)",
		"CREATE TABLE kv (id INT PRIMARY KEY, val TEXT, num INT)",
		"INSERT INTO ledger (seq) VALUES (1)",
		"COMMIT",
	}
	if err := w.commitUnit(live, modelSess, first); err != nil {
		eng.Close()
		return err
	}

	madeIndex, madeT2 := false, false
	for i := 0; i < cfg.Ops; i++ {
		roll := w.rng.Intn(100)
		switch {
		case roll < 10:
			// Checkpoint unit: rotate the WAL and write a snapshot. No
			// logical state change, but plenty of crash points.
			if err := eng.Checkpoint(); err != nil {
				eng.Close()
				return fmt.Errorf("checkpoint: %w", err)
			}
		case roll < 25:
			// Rollback unit: effects must never survive recovery.
			stmts := []string{"BEGIN"}
			for n := 1 + w.rng.Intn(3); n > 0; n-- {
				stmts = append(stmts, w.dml())
			}
			stmts = append(stmts, "ROLLBACK")
			if err := runBoth(live, modelSess, stmts); err != nil {
				eng.Close()
				return err
			}
		default:
			// Committed unit: random DML (sometimes DDL), then the ledger
			// row that makes the commit observable.
			stmts := []string{"BEGIN"}
			for n := 1 + w.rng.Intn(4); n > 0; n-- {
				stmts = append(stmts, w.dml())
			}
			if !madeIndex && w.rng.Intn(4) == 0 {
				stmts = append(stmts, "CREATE INDEX idx_num ON kv (num)")
				madeIndex = true
			}
			if !madeT2 && w.rng.Intn(6) == 0 {
				stmts = append(stmts, "CREATE TABLE t2 (id INT PRIMARY KEY, tag TEXT)")
				madeT2 = true
			}
			seq := len(w.ackStep) + 1
			stmts = append(stmts,
				fmt.Sprintf("INSERT INTO ledger (seq) VALUES (%d)", seq),
				"COMMIT")
			if err := w.commitUnit(live, modelSess, stmts); err != nil {
				eng.Close()
				return err
			}
		}
	}
	// Closing is part of the history too: it checkpoints, so crashes during
	// shutdown are enumerated like any other.
	if err := eng.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}

// commitUnit runs one committing transaction on the live engine; on
// acknowledgement it records the ack step, replays the unit into the model,
// and snapshots the model state.
func (w *workload) commitUnit(live, model *sqldb.Session, stmts []string) error {
	for i, stmt := range stmts {
		_, err := live.Exec(stmt)
		if isStmtError(err, i, stmts) {
			continue // statement-level failure (e.g. PK conflict); txn continues
		}
		if err != nil {
			live.Exec("ROLLBACK")
			return fmt.Errorf("workload stmt %q: %w", stmt, err)
		}
	}
	w.ackStep = append(w.ackStep, w.fs.Steps())
	if err := replay(model, stmts); err != nil {
		return fmt.Errorf("model replay: %w", err)
	}
	w.dumps[len(w.ackStep)] = dumpState(model)
	return nil
}

// runBoth replays a non-committing unit (rollback) on both sessions.
func runBoth(live, model *sqldb.Session, stmts []string) error {
	for i, stmt := range stmts {
		_, err := live.Exec(stmt)
		if isStmtError(err, i, stmts) {
			continue
		}
		if err != nil {
			live.Exec("ROLLBACK")
			return fmt.Errorf("workload stmt %q: %w", stmt, err)
		}
	}
	return replay(model, stmts)
}

// replay runs stmts on the model, tolerating the same statement-level
// errors the live engine tolerated (determinism makes them identical).
func replay(model *sqldb.Session, stmts []string) error {
	for i, stmt := range stmts {
		_, err := model.Exec(stmt)
		if isStmtError(err, i, stmts) {
			continue
		}
		if err != nil {
			model.Exec("ROLLBACK")
			return fmt.Errorf("stmt %q: %w", stmt, err)
		}
	}
	return nil
}

// isStmtError reports whether err is a tolerable statement-level failure:
// a constraint violation on a random INSERT rolls back that statement only,
// and both engines hit it identically. Errors on BEGIN/COMMIT/ROLLBACK are
// never tolerable.
func isStmtError(err error, i int, stmts []string) bool {
	if err == nil {
		return false
	}
	s := strings.ToUpper(strings.Fields(stmts[i] + " x")[0])
	if s == "BEGIN" || s == "COMMIT" || s == "ROLLBACK" {
		return false
	}
	return strings.Contains(err.Error(), "duplicate") ||
		strings.Contains(err.Error(), "already exists")
}

// dml generates one random DML statement against kv.
func (w *workload) dml() string {
	id := 1 + w.rng.Intn(60)
	switch w.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("INSERT INTO kv (id, val, num) VALUES (%d, 'v%d', %d)",
			id, w.rng.Intn(1000), w.rng.Intn(500))
	case 1:
		return fmt.Sprintf("UPDATE kv SET val = 'u%d', num = %d WHERE id = %d",
			w.rng.Intn(1000), w.rng.Intn(500), id)
	case 2:
		return fmt.Sprintf("DELETE FROM kv WHERE id = %d", id)
	default:
		return fmt.Sprintf("UPDATE kv SET num = num + 1 WHERE num < %d", w.rng.Intn(200))
	}
}

// checkPoint reconstructs the disk at step k under policy, reopens the
// engine, and checks every invariant. Each failure becomes a Violation.
func (w *workload) checkPoint(cfg Config, k int, policy vfs.TearPolicy) []Violation {
	fail := func(format string, args ...any) []Violation {
		return []Violation{{Point: k, Policy: policy.String(), Desc: fmt.Sprintf(format, args...)}}
	}

	img, err := w.fs.ImageAt(k, policy, cfg.Seed)
	if err != nil {
		return fail("reconstructing disk image: %v", err)
	}

	eng, err := sqldb.OpenEngine(dbdir, sqldb.Options{
		Name:            "crash",
		Sync:            cfg.Sync,
		CheckpointEvery: -1,
		FS:              img,
	})
	if err != nil {
		return fail("recovery failed to open: %v", err)
	}

	var vs []Violation
	add := func(format string, args ...any) {
		vs = append(vs, Violation{Point: k, Policy: policy.String(), Desc: fmt.Sprintf(format, args...)})
	}

	sess := eng.NewSession("root")
	p, err := ledgerPrefix(sess)
	if err != nil {
		add("ledger check: %v", err)
	}

	// Durability: every commit acknowledged at or before step k must be
	// visible. Process kill preserves the page cache, so this holds in
	// every sync mode; under power loss it only holds when the engine
	// promised fsync-before-ack (i.e. not SyncOff).
	if err == nil && (policy == vfs.TearKill || cfg.Sync != sqldb.SyncOff) {
		if minP := ackedBy(w.ackStep, k); p < minP {
			add("durability: %d commits were acknowledged by step %d but only %d survived recovery", minP, k, p)
		}
	}

	// Atomicity/consistency: the recovered database must be exactly the
	// model state after its surviving commit prefix — no partial
	// transactions, no resurrected rollbacks.
	if err == nil {
		want, ok := w.dumps[p]
		if !ok {
			add("recovered ledger prefix %d exceeds the %d commits the workload made", p, len(w.ackStep))
		} else if got := dumpState(sess); got != want {
			add("state mismatch after %d recovered commits:\n--- recovered ---\n%s--- expected ---\n%s", p, got, want)
		}
	}

	if errs := eng.CheckConsistency(); len(errs) > 0 {
		add("internal consistency: %v", errs[0])
	}

	firstDump := dumpState(sess)
	if err := eng.Close(); err != nil {
		add("close after recovery: %v", err)
	}

	// Idempotence: recovering the recovered directory must change nothing.
	eng2, err := sqldb.OpenEngine(dbdir, sqldb.Options{
		Name: "crash", Sync: cfg.Sync, CheckpointEvery: -1, FS: img,
	})
	if err != nil {
		add("second reopen failed: %v", err)
		return append([]Violation{}, vs...)
	}
	if got := dumpState(eng2.NewSession("root")); got != firstDump {
		add("second reopen changed the state:\n--- first ---\n%s--- second ---\n%s", firstDump, got)
	}
	eng2.Close()
	return vs
}

// ledgerPrefix reads the ledger and verifies it is exactly {1..P},
// returning P. A missing ledger table is the empty prefix (the schema
// transaction did not survive).
func ledgerPrefix(s *sqldb.Session) (int, error) {
	res, err := s.Exec("SELECT seq FROM ledger")
	if err != nil {
		var nf *sqldb.NotFoundError
		if errors.As(err, &nf) {
			return 0, nil // the schema transaction did not survive
		}
		return 0, fmt.Errorf("reading ledger: %w", err)
	}
	seqs := make([]int, 0, len(res.Rows))
	for _, row := range res.Rows {
		if row[0].Kind != sqldb.KindInt {
			return 0, fmt.Errorf("ledger seq %v is not an integer", row[0])
		}
		seqs = append(seqs, int(row[0].I))
	}
	sort.Ints(seqs)
	for i, n := range seqs {
		if n != i+1 {
			return 0, fmt.Errorf("ledger is not a contiguous prefix: %v", seqs)
		}
	}
	return len(seqs), nil
}

// ackedBy returns how many commits were acknowledged at or before step k.
func ackedBy(ackStep []int, k int) int {
	n := 0
	for _, s := range ackStep {
		if s <= k {
			n++
		}
	}
	return n
}

// dumpState renders the workload tables into a canonical, order-independent
// text form. Both the model and recovered engines are dumped through it, so
// equality of the strings is equality of logical state.
func dumpState(s *sqldb.Session) string {
	var b strings.Builder
	for _, t := range workTables {
		res, err := s.Exec("SELECT * FROM " + t)
		if err != nil {
			fmt.Fprintf(&b, "%s: absent\n", t)
			continue
		}
		fmt.Fprintf(&b, "%s (%s):\n", t, strings.Join(res.Columns, ","))
		rows := make([]string, 0, len(res.Rows))
		for _, row := range res.Rows {
			keys := make([]string, len(row))
			for i, v := range row {
				keys[i] = v.Key()
			}
			rows = append(rows, "  "+strings.Join(keys, "|"))
		}
		sort.Strings(rows)
		for _, r := range rows {
			b.WriteString(r + "\n")
		}
	}
	return b.String()
}
