package sqldb

import (
	"strings"
	"testing"
)

func TestLexerComments(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `
		-- leading comment
		SELECT COUNT(*) /* inline
		block comment */ FROM items -- trailing
	`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("comments broke parsing: %v", r.Rows)
	}
}

func TestLexerQuotedIdentifiers(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT "name" FROM "items" WHERE "id" = 1`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "shirt" {
		t.Fatalf("quoted identifiers wrong: %v", r.Rows)
	}
}

func TestStringEscapes(t *testing.T) {
	e := NewEngine("esc")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	s.MustExec(`INSERT INTO t VALUES (1, 'women''s wear')`)
	r := mustQuery(t, s, `SELECT v FROM t WHERE v = 'women''s wear'`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "women's wear" {
		t.Fatalf("escaped quote wrong: %v", r.Rows)
	}
}

func TestNumericLiteralForms(t *testing.T) {
	e := NewEngine("num")
	s := e.NewSession("root")
	r := mustQuery(t, s, `SELECT 1.5e2, .5, -3, 2e-1`)
	if r.Rows[0][0].F != 150 || r.Rows[0][1].F != 0.5 || r.Rows[0][2].I != -3 || r.Rows[0][3].F != 0.2 {
		t.Fatalf("numeric literals wrong: %v", r.Rows[0])
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e := NewEngine("prec")
	s := e.NewSession("root")
	r := mustQuery(t, s, `SELECT 2 + 3 * 4, (2 + 3) * 4, 10 - 2 - 3, 7 % 3, TRUE OR FALSE AND FALSE`)
	row := r.Rows[0]
	if row[0].I != 14 || row[1].I != 20 || row[2].I != 5 || row[3].I != 1 {
		t.Fatalf("arithmetic precedence wrong: %v", row)
	}
	// OR binds looser than AND: TRUE OR (FALSE AND FALSE) = TRUE.
	if !row[4].B {
		t.Fatalf("boolean precedence wrong: %v", row[4])
	}
}

func TestNotPrecedence(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE NOT category = 'clothes'`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("NOT precedence wrong: %v", r.Rows[0][0])
	}
	r = mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE NOT (category = 'clothes' OR price > 20)`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("NOT with parens wrong: %v", r.Rows[0][0])
	}
}

func TestNotVariants(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE id NOT IN (1, 2)`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("NOT IN wrong: %v", r.Rows[0][0])
	}
	r = mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE price NOT BETWEEN 5 AND 25`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("NOT BETWEEN wrong: %v", r.Rows[0][0])
	}
	r = mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE name NOT LIKE 's%'`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("NOT LIKE wrong: %v", r.Rows[0][0])
	}
}

func TestConcatAndFunctionsInPredicates(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE UPPER(name) = 'SHIRT'`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("function predicate wrong: %v", r.Rows[0][0])
	}
	r = mustQuery(t, s, `SELECT name || '-' || category FROM items WHERE id = 1`)
	if r.Rows[0][0].S != "shirt-clothes" {
		t.Fatalf("concat wrong: %v", r.Rows[0][0])
	}
}

func TestCastForms(t *testing.T) {
	e := NewEngine("cast")
	s := e.NewSession("root")
	r := mustQuery(t, s, `SELECT CAST(3.7 AS INTEGER), CAST('2.5' AS REAL), CAST(42 AS TEXT), CAST(0 AS BOOLEAN)`)
	row := r.Rows[0]
	if row[0].I != 3 || row[1].F != 2.5 || row[2].S != "42" || row[3].B {
		t.Fatalf("casts wrong: %v", row)
	}
	if _, err := s.Exec(`SELECT CAST('abc' AS INTEGER)`); err == nil {
		t.Fatal("bad cast must error")
	}
}

func TestVarcharPrecisionSyntax(t *testing.T) {
	e := NewEngine("vc")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (a VARCHAR(255) NOT NULL, b NUMERIC(10, 2), c INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES ('x', 1.25, 1)`)
	r := mustQuery(t, s, `SELECT a, b FROM t`)
	if r.Rows[0][0].S != "x" || r.Rows[0][1].F != 1.25 {
		t.Fatalf("typed insert wrong: %v", r.Rows)
	}
}

func TestParseScriptSplitsStatements(t *testing.T) {
	stmts, err := ParseScript(`SELECT 1; SELECT 2;; SELECT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("want 3 statements, got %d", len(stmts))
	}
}

func TestOffsetPagination(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT id FROM items ORDER BY id LIMIT 2 OFFSET 2`)
	if len(r.Rows) != 2 || r.Rows[0][0].I != 3 {
		t.Fatalf("offset wrong: %v", r.Rows)
	}
	r = mustQuery(t, s, `SELECT id FROM items ORDER BY id LIMIT 10 OFFSET 10`)
	if len(r.Rows) != 0 {
		t.Fatalf("offset past end should be empty: %v", r.Rows)
	}
}

func TestTruncateAliasesToDelete(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`TRUNCATE TABLE sales`)
	r := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if r.Rows[0][0].I != 0 {
		t.Fatalf("truncate left rows: %v", r.Rows[0][0])
	}
}

func TestRenderSelectRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT DISTINCT a.name, COUNT(*) AS n FROM items a JOIN sales b ON a.id = b.item_id WHERE a.price > 10 GROUP BY a.name HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5 OFFSET 1`,
		`SELECT * FROM items WHERE category IN ('a', 'b') AND price BETWEEN 1 AND 2`,
		`SELECT name FROM items WHERE name LIKE 's%' OR name IS NOT NULL`,
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rendered := RenderSelect(stmt.(*SelectStmt))
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("re-parse of %q failed: %v", rendered, err)
		}
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	_, s := newTestEngine(t)
	// Both items and sales could own an unqualified conflicting name when
	// self-joining; ambiguity must be reported, not silently resolved.
	if _, err := s.Exec(`SELECT id FROM items a, items b`); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous reference should error, got %v", err)
	}
}
