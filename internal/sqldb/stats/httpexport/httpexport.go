// Package httpexport serves a stats.Snapshot over HTTP in two formats:
// Prometheus text exposition at /metrics and raw JSON at /stats.json.
// It is deliberately thin — a snapshot function in, an http.Handler out —
// so any engine (SQL, CSV, a future wire server) can mount it.
package httpexport

import (
	"encoding/json"
	"net/http"

	"bridgescope/internal/sqldb/stats"
)

// Handler returns an http.Handler exposing the snapshot:
//
//	GET /metrics     Prometheus text exposition (version 0.0.4)
//	GET /stats.json  the full snapshot as JSON
//	GET /            a tiny index linking the two
//
// The snapshot function is called once per request; it must be safe for
// concurrent use (Engine.Stats is).
func Handler(snapshot func() stats.Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = stats.WritePrometheus(w, snapshot())
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("sqldb metrics\n  /metrics     Prometheus text exposition\n  /stats.json  full snapshot as JSON\n"))
	})
	return mux
}

// ListenAndServe starts an HTTP server for the snapshot on addr in a new
// goroutine and returns immediately. Errors after startup (port in use,
// listener closed) are delivered on the returned channel.
func ListenAndServe(addr string, snapshot func() stats.Snapshot) <-chan error {
	errc := make(chan error, 1)
	srv := &http.Server{Addr: addr, Handler: Handler(snapshot)}
	go func() { errc <- srv.ListenAndServe() }()
	return errc
}
