package httpexport

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bridgescope/internal/sqldb/stats"
)

func testHandler() http.Handler {
	return Handler(func() stats.Snapshot {
		return stats.Snapshot{
			Enabled:     true,
			RowsScanned: 77,
			PlanCache:   stats.CacheStats{Hits: 5, Misses: 2},
		}
	})
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus 0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE sqldb_rows_scanned_total counter",
		"sqldb_rows_scanned_total 77",
		"sqldb_plan_cache_hits_total 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q", want)
		}
	}
}

func TestStatsJSONEndpoint(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()

	resp, body := get(t, srv, "/stats.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap stats.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.RowsScanned != 77 || snap.PlanCache.Hits != 5 {
		t.Errorf("round-trip mismatch: %+v", snap)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()

	if resp, body := get(t, srv, "/"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", resp.StatusCode, body)
	}
	if resp, _ := get(t, srv, "/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}
