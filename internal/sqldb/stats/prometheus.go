// Prometheus text exposition (version 0.0.4) for a stats Snapshot. The
// format is simple enough that hand-rolling it keeps the engine
// dependency-free: `# TYPE` headers, one `name{labels} value` line per
// sample, histograms as cumulative `_bucket{le=...}` series plus `_sum`
// and `_count`.
package stats

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders s in Prometheus text exposition format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	p := &promWriter{w: w}

	p.gauge("sqldb_metrics_enabled", "whether metric recording is on", boolVal(s.Enabled))

	// Per-statement-kind latency histograms under one metric name.
	p.typ("sqldb_statement_duration_ns", "statement latency by kind, nanoseconds", "histogram")
	kinds := make([]string, 0, len(s.Statements))
	for k := range s.Statements {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		p.histSeries("sqldb_statement_duration_ns", fmt.Sprintf(`kind=%q`, k), s.Statements[k])
	}

	p.counter("sqldb_rows_scanned_total", "rows visited by sequential/parallel scans", s.RowsScanned)
	p.counter("sqldb_dml_rows_visited_total", "rows inspected by UPDATE/DELETE row matching", s.DMLRowsVisited)
	p.counter("sqldb_rows_returned_total", "rows returned to clients", s.RowsReturned)

	p.counter("sqldb_plan_cache_hits_total", "plan cache hits", s.PlanCache.Hits)
	p.counter("sqldb_plan_cache_misses_total", "plan cache misses", s.PlanCache.Misses)
	p.counter("sqldb_plan_cache_evictions_total", "plan cache LRU evictions", s.PlanCache.Evictions)
	p.gauge("sqldb_plan_cache_size", "cached plans currently resident", float64(s.PlanCache.Size))

	p.gauge("sqldb_wal_durable", "whether the engine runs with a WAL", boolVal(s.WAL.Durable))
	p.counter("sqldb_wal_commits_total", "commits appended to the WAL", s.WAL.Commits)
	p.counter("sqldb_wal_records_total", "redo records appended to the WAL", s.WAL.Records)
	p.counter("sqldb_wal_fsyncs_total", "WAL fsync calls", s.WAL.Fsyncs)
	p.counter("sqldb_wal_group_flushes_total", "group-commit flushes", s.WAL.GroupFlushes)
	p.counter("sqldb_wal_bytes_total", "bytes appended to the WAL", s.WAL.WALBytes)
	p.gauge("sqldb_wal_size_bytes", "current WAL segment size", float64(s.WAL.WALSize))
	p.gauge("sqldb_wal_lsn", "last durable log sequence number", float64(s.WAL.LSN))
	p.counter("sqldb_checkpoints_total", "snapshot checkpoints taken", s.WAL.Checkpoints)
	p.hist("sqldb_wal_append_duration_ns", "WAL write(2) latency, nanoseconds", s.WAL.AppendNs)
	p.hist("sqldb_wal_fsync_duration_ns", "WAL fsync latency, nanoseconds", s.WAL.FsyncNs)
	p.hist("sqldb_wal_group_commit_size", "commits per group-commit flush", s.WAL.BatchCommits)

	p.counter("sqldb_mvcc_conflicts_total", "first-committer-wins write conflicts", s.MVCC.Conflicts)
	p.counter("sqldb_mvcc_aborts_total", "transactions aborted by conflicts", s.MVCC.Aborts)
	p.counter("sqldb_mvcc_retries_total", "client-side transaction retries", s.MVCC.Retries)
	p.gauge("sqldb_mvcc_open_transactions", "transactions currently open", float64(s.MVCC.OpenTxns))
	p.gauge("sqldb_mvcc_gc_horizon_lag", "commit timestamps between the GC horizon and the newest commit", float64(s.MVCC.GCHorizonLag))

	p.counter("sqldb_lock_table_acquires_total", "per-table write-lock acquisitions", s.Locks.TableAcquires)
	p.counter("sqldb_lock_global_acquires_total", "exclusive global (DDL) lock acquisitions", s.Locks.GlobalAcquires)
	p.gauge("sqldb_lock_max_concurrent_writers", "peak concurrent write-lock holders", float64(s.Locks.MaxConcurrentWriters))
	p.hist("sqldb_lock_wait_duration_ns", "write-lock acquisition wait, nanoseconds", s.Locks.WaitNs)

	p.counter("sqldb_parallel_batches_total", "statements executed by the parallel scanner", s.Parallel.Batches)
	p.counter("sqldb_parallel_morsels_total", "morsels dispatched to parallel workers", s.Parallel.Morsels)
	p.hist("sqldb_parallel_workers", "workers used per parallel batch", s.Parallel.Workers)

	p.hist("sqldb_checkpoint_duration_ns", "checkpoint wall time, nanoseconds", s.Checkpoint.DurationNs)

	p.gauge("sqldb_degraded", "1 when the engine is fail-stopped read-only", boolVal(s.Health.Degraded))
	p.counter("sqldb_degraded_transitions_total", "healthy-to-degraded transitions", s.Health.Transitions)

	p.counter("sqldb_slow_queries_total", "statements recorded by the slow-query log", s.SlowLog.Total)

	return p.err
}

// promWriter accumulates the first write error so every emit call can be
// unchecked at the call site.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) typ(name, help, kind string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (p *promWriter) counter(name, help string, v int64) {
	p.typ(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.typ(name, help, "gauge")
	p.printf("%s %g\n", name, v)
}

// hist emits a full histogram metric: TYPE header plus one series.
func (p *promWriter) hist(name, help string, h HistogramSnapshot) {
	p.typ(name, help, "histogram")
	p.histSeries(name, "", h)
}

// histSeries emits the cumulative bucket/sum/count lines for one labeled
// series of an already-typed histogram metric.
func (p *promWriter) histSeries(name, labels string, h HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		p.printf("%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, b.UpperNs, cum)
	}
	p.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	if labels == "" {
		p.printf("%s_sum %d\n%s_count %d\n", name, h.SumNs, name, h.Count)
	} else {
		p.printf("%s_sum{%s} %d\n%s_count{%s} %d\n", name, labels, h.SumNs, name, labels, h.Count)
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
