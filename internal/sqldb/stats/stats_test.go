package stats

import (
	"sync"
	"testing"
	"time"
)

// TestBucketMath pins the log2 bucket layout: bucket 0 holds non-positive
// values, bucket i holds [2^(i-1), 2^i), and the last bucket absorbs
// everything at or above 2^(histBuckets-2).
func TestBucketMath(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 37, 38},
		{1<<38 - 1, 38},
		{1 << 38, 39},
		{1 << 60, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds are inclusive and consistent with bucketFor: a value
	// equal to a bucket's upper bound lands in that bucket, one more lands
	// in the next.
	for i := 1; i < histBuckets-1; i++ {
		up := bucketUpper(i)
		if got := bucketFor(up); got != i {
			t.Errorf("bucketFor(bucketUpper(%d)=%d) = %d, want %d", i, up, got, i)
		}
		if got := bucketFor(up + 1); got != i+1 {
			t.Errorf("bucketFor(%d) = %d, want %d", up+1, got, i+1)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Nanosecond)  // bucket 2
	h.Observe(3 * time.Nanosecond)  // bucket 2
	h.Observe(10 * time.Nanosecond) // bucket 4
	h.ObserveValue(0)               // bucket 0

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.SumNs != 16 {
		t.Fatalf("SumNs = %d, want 16", s.SumNs)
	}
	// Trailing empty buckets are omitted: highest non-empty is bucket 4.
	if len(s.Buckets) != 5 {
		t.Fatalf("len(Buckets) = %d, want 5", len(s.Buckets))
	}
	wantCounts := []uint64{1, 0, 2, 0, 1}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if got := s.Mean(); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := s.Quantile(0.5); got != bucketUpper(2) {
		t.Errorf("Quantile(0.5) = %d, want %d", got, bucketUpper(2))
	}
	if got := s.Quantile(1.0); got != bucketUpper(4) {
		t.Errorf("Quantile(1.0) = %d, want %d", got, bucketUpper(4))
	}
}

func TestHistogramDisabled(t *testing.T) {
	defer SetEnabled(true)
	var h Histogram
	SetEnabled(false)
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 || s.SumNs != 0 {
		t.Fatalf("disabled Observe recorded: %+v", s)
	}
	SetEnabled(true)
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("enabled Observe did not record: %+v", s)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshots run; run under -race this is the lock-freedom proof, and the
// final count must be exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.ObserveValue(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if s := h.Snapshot(); s.Count != goroutines*perG {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*perG)
	}
}

func TestSlowLogRingWraparound(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 7; i++ {
		l.Record(SlowQuery{SQL: string(rune('a' + i))})
	}
	if got := l.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len(Entries) = %d, want 3", len(got))
	}
	// Oldest-first: the last three recorded were e, f, g.
	for i, want := range []string{"e", "f", "g"} {
		if got[i].SQL != want {
			t.Errorf("entry %d = %q, want %q", i, got[i].SQL, want)
		}
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(4, 10*time.Millisecond)
	if l.ShouldRecord(5 * time.Millisecond) {
		t.Error("5ms recorded under a 10ms threshold")
	}
	if !l.ShouldRecord(10 * time.Millisecond) {
		t.Error("threshold should be inclusive")
	}
	l.SetThreshold(0)
	if !l.ShouldRecord(0) {
		t.Error("zero threshold should record everything")
	}
	l.SetThreshold(-1)
	if l.ShouldRecord(time.Hour) {
		t.Error("negative threshold should disable the log")
	}
}
