package stats

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func sampleSnapshot() Snapshot {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(200 * time.Nanosecond)
	h.Observe(5 * time.Microsecond)
	return Snapshot{
		Enabled:     true,
		Statements:  map[string]HistogramSnapshot{"select": h.Snapshot(), "insert": h.Snapshot()},
		RowsScanned: 1234,
		PlanCache:   CacheStats{Hits: 10, Misses: 3, Evictions: 1, Size: 2},
		WAL: WALStats{
			Durable: true, Mode: "batch", Commits: 42, Fsyncs: 7,
			AppendNs: h.Snapshot(), FsyncNs: h.Snapshot(), BatchCommits: h.Snapshot(),
		},
		MVCC:    MVCCStats{Conflicts: 2, Aborts: 1, Retries: 3, OpenTxns: 1, GCHorizonLag: 5},
		Health:  HealthStats{Degraded: true, Reason: "disk on fire", Transitions: 1},
		SlowLog: SlowLogStats{ThresholdNs: 1e6, Total: 9},
	}
}

// TestPrometheusWellFormed parses every line of the exposition: comments
// are HELP/TYPE pairs, samples are `name{labels} value` with a numeric
// value, and every sample's metric family has a preceding TYPE.
func TestPrometheusWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("malformed comment line: %q", line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = true
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("non-numeric value %q in line %q", val, line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] {
				family = base
				break
			}
		}
		if !typed[family] {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
	}

	for _, want := range []string{
		"sqldb_statement_duration_ns_bucket{kind=\"select\",le=\"+Inf\"} 3",
		"sqldb_wal_fsync_duration_ns_bucket",
		"sqldb_mvcc_conflicts_total 2",
		"sqldb_degraded 1",
		"sqldb_degraded_transitions_total 1",
		"sqldb_slow_queries_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPrometheusCumulativeBuckets checks the histogram contract: bucket
// counts are cumulative, monotonically non-decreasing, and +Inf equals
// _count.
func TestPrometheusCumulativeBuckets(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	var infVal, countVal float64 = -1, -1
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, `sqldb_statement_duration_ns_bucket{kind="select"`):
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("bucket counts not monotone: %q after %v", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				infVal = v
			}
		case strings.HasPrefix(line, `sqldb_statement_duration_ns_count{kind="select"}`):
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatal(err)
			}
			countVal = v
		}
	}
	if infVal < 0 || countVal < 0 {
		t.Fatal("select histogram series missing")
	}
	if infVal != countVal {
		t.Fatalf("+Inf bucket %v != _count %v", infVal, countVal)
	}
}
